// Command maritimelint runs the project-invariant analyzer suite
// (internal/lint) over the module: the machine-checked form of the
// concurrency and error-handling contracts documented in INVARIANTS.md.
//
// Usage:
//
//	go run ./cmd/maritimelint ./...
//	go run ./cmd/maritimelint ./internal/store ./internal/query
//
// Exit status: 0 clean, 1 findings, 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fail(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				fail(err)
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(arg)
			if err != nil {
				fail(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := 0
	for _, pkg := range pkgs {
		// Analyzer fixtures are loaded by path when named explicitly, but
		// the suite itself must not lint its own testdata.
		if strings.Contains(pkg.Dir, string(filepath.Separator)+"testdata"+string(filepath.Separator)) {
			continue
		}
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "maritimelint: %s: type error: %v\n", pkg.Path, e)
			}
			os.Exit(2)
		}
		for _, d := range lint.RunPackage(pkg, analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "maritimelint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("maritimelint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "maritimelint:", err)
	os.Exit(2)
}
