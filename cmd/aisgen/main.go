// Command aisgen generates a synthetic AIS feed as NMEA AIVDM sentences on
// stdout — the library's stand-in for a live receiver. Pipe it anywhere an
// AIS tool expects !AIVDM traffic.
//
// Usage:
//
//	aisgen [-vessels N] [-minutes M] [-seed S] [-world med|global]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ais"
	"repro/internal/sim"
)

func main() {
	vessels := flag.Int("vessels", 100, "fleet size")
	minutes := flag.Int("minutes", 30, "simulated duration in minutes")
	seed := flag.Int64("seed", 1, "random seed")
	world := flag.String("world", "med", "world: med or global")
	flag.Parse()

	cfg := sim.Config{
		Seed:       *seed,
		NumVessels: *vessels,
		Duration:   time.Duration(*minutes) * time.Minute,
		TickSec:    2,
	}
	if *world == "global" {
		cfg.World = sim.GlobalWorld(*seed)
	}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	n := 0
	for i := range run.Positions {
		obs := &run.Positions[i]
		lines, err := ais.EncodeSentences(&obs.Report, i, "A")
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Fprintln(w, l)
			n++
		}
	}
	for i := range run.Statics {
		so := &run.Statics[i]
		lines, err := ais.EncodeSentences(&so.Msg, i, "B")
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Fprintln(w, l)
			n++
		}
	}
	// A swallowed flush error (full pipe, closed stdout) would silently
	// truncate the feed — fail loudly instead.
	if err := w.Flush(); err != nil {
		log.Fatalf("aisgen: flushing stdout: %v", err)
	}
	fmt.Fprintf(os.Stderr, "aisgen: %d sentences (%d position reports, %d statics) from %d vessels over %dm\n",
		n, len(run.Positions), len(run.Statics), *vessels, *minutes)
}
