// Command aisgen generates a synthetic AIS feed as NMEA AIVDM sentences on
// stdout — the library's stand-in for a live receiver. Pipe it anywhere an
// AIS tool expects !AIVDM traffic.
//
// Usage:
//
//	aisgen [-vessels N] [-minutes M] [-seed S] [-world med|global] [-radar-range M] [-truth FILE]
//
// With -radar-range > 0 the simulated coastal radar stations are on and
// their contacts are interleaved into the feed, in time order, as
// proprietary sentences:
//
//	$PRADAR,<station>,<lat>,<lon>
//
// maritimed -detections parses these into the online track stage; every
// other consumer skips non-!AIVDM lines as NMEA noise.
//
// With -truth FILE the injected-anomaly ground truth (go-dark windows,
// course deviations, loiters, rendezvous…) is written to FILE as one
// JSON object per line — the scoring key experiments E8 and E21 compare
// detector output against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ais"
	"repro/internal/sim"
)

// truthRecord is the ground-truth wire form: one injected anomaly per
// line, stable field names so scoring tools need no sim import.
type truthRecord struct {
	Kind  string    `json:"kind"`
	MMSI  uint32    `json:"mmsi"`
	Other uint32    `json:"other,omitempty"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Lat   float64   `json:"lat,omitempty"`
	Lon   float64   `json:"lon,omitempty"`
}

// writeTruth dumps the injected-anomaly log as JSON lines.
func writeTruth(path string, events []sim.TruthEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range events {
		r := truthRecord{
			Kind: string(e.Kind), MMSI: e.MMSI, Other: e.Other,
			Start: e.Start, End: e.End, Lat: e.Where.Lat, Lon: e.Where.Lon,
		}
		if err := enc.Encode(r); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	vessels := flag.Int("vessels", 100, "fleet size")
	minutes := flag.Int("minutes", 30, "simulated duration in minutes")
	seed := flag.Int64("seed", 1, "random seed")
	world := flag.String("world", "med", "world: med or global")
	radarRange := flag.Float64("radar-range", 0, "coastal radar range in metres (0 = no radar); contacts interleave as $PRADAR sentences")
	truthPath := flag.String("truth", "", "write injected-anomaly ground truth to this file (one JSON event per line)")
	flag.Parse()

	cfg := sim.Config{
		Seed:        *seed,
		NumVessels:  *vessels,
		Duration:    time.Duration(*minutes) * time.Minute,
		TickSec:     2,
		RadarRangeM: *radarRange,
	}
	if *world == "global" {
		cfg.World = sim.GlobalWorld(*seed)
	}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *truthPath != "" {
		if err := writeTruth(*truthPath, run.Events); err != nil {
			log.Fatalf("aisgen: writing truth log: %v", err)
		}
	}
	w := bufio.NewWriter(os.Stdout)
	n := 0
	// Radar contacts merge into the position stream by simulated time
	// (both slices are time-ordered), so a consumer replaying the feed
	// line by line sees one consistent timeline.
	radar := run.Radar
	emitRadarUpTo := func(at time.Time) {
		for len(radar) > 0 && !radar[0].At.After(at) {
			c := &radar[0]
			fmt.Fprintf(w, "$PRADAR,%d,%.6f,%.6f\n", c.Station, c.Pos.Lat, c.Pos.Lon)
			n++
			radar = radar[1:]
		}
	}
	for i := range run.Positions {
		obs := &run.Positions[i]
		emitRadarUpTo(obs.At)
		lines, err := ais.EncodeSentences(&obs.Report, i, "A")
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Fprintln(w, l)
			n++
		}
	}
	if len(radar) > 0 {
		emitRadarUpTo(radar[len(radar)-1].At)
	}
	for i := range run.Statics {
		so := &run.Statics[i]
		lines, err := ais.EncodeSentences(&so.Msg, i, "B")
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Fprintln(w, l)
			n++
		}
	}
	// A swallowed flush error (full pipe, closed stdout) would silently
	// truncate the feed — fail loudly instead.
	if err := w.Flush(); err != nil {
		log.Fatalf("aisgen: flushing stdout: %v", err)
	}
	fmt.Fprintf(os.Stderr, "aisgen: %d sentences (%d position reports, %d statics, %d radar contacts) from %d vessels over %dm\n",
		n, len(run.Positions), len(run.Statics), len(run.Radar), *vessels, *minutes)
	if *truthPath != "" {
		fmt.Fprintf(os.Stderr, "aisgen: %d ground-truth events -> %s\n", len(run.Events), *truthPath)
	}
}
