// Command maritimed runs the integrated pipeline (the paper's Figure 2)
// over an AIS NMEA stream read from stdin — feed it `aisgen` output or any
// AIVDM log — and prints alerts as they are recognised plus a final
// situation board.
//
// Usage:
//
//	aisgen -vessels 200 -minutes 60 | maritimed
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	maritime "repro"
	"repro/internal/ais"
	"repro/internal/sim"
)

func main() {
	synopsisTol := flag.Float64("synopsis", 60, "synopsis tolerance in metres (0 = archive everything)")
	minSeverity := flag.Int("severity", 2, "minimum alert severity to print")
	flag.Parse()

	world := sim.MediterraneanWorld(1)
	p := maritime.NewPipeline(maritime.PipelineConfig{
		Zones:              world.Zones,
		SynopsisToleranceM: *synopsisTol,
	})
	dec := ais.NewDecoder()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<16)

	// NMEA has no timestamps; synthesise event time from arrival order at
	// a nominal 10 Hz per vessel-interleaved stream (good enough for a
	// demo over replayed logs; production feeds carry receiver timestamps).
	at := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	var latest time.Time
	n := 0
	start := time.Now()
	for sc.Scan() {
		msg, err := dec.Decode(sc.Text())
		if err != nil || msg == nil {
			continue
		}
		n++
		at = at.Add(100 * time.Millisecond)
		latest = at
		switch m := msg.(type) {
		case *ais.PositionReport:
			for _, a := range p.Ingest(at, m) {
				if a.Severity >= *minSeverity {
					fmt.Println(a)
				}
			}
		case *ais.StaticVoyage:
			for _, issue := range p.IngestStatic(at, m) {
				fmt.Printf("[quality] vessel %d: %s (%s)\n", issue.MMSI, issue.Rule, issue.Note)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "maritimed: read:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	snap := p.Metrics.Snapshot()
	fmt.Printf("\n%d messages in %v (%.0f msg/s); archived %d (%.1f%% compression); %d alerts\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		snap.Archived, p.CompressionRatio()*100, snap.Alerts)
	fmt.Print(p.Situation(latest, world.Bounds, 12, 48).Summary())
}
