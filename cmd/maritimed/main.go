// Command maritimed runs the integrated pipeline (the paper's Figure 2)
// over an AIS NMEA stream read from stdin — feed it `aisgen` output or any
// AIVDM log — and prints alerts as they are recognised plus a final
// situation board.
//
// Ingest is fully asynchronous: a reader goroutine stamps and fans lines
// out to N parallel decode workers, decoded reports are partitioned by
// MMSI across per-shard pipelines behind bounded queues (backpressure all
// the way back to stdin), and merged alerts stream to stdout as they are
// raised. See internal/ingest for the dataflow.
//
// With -data-dir the archive persists across runs: post-synopsis records
// stream through an asynchronous flush stage into a segmented,
// checksummed write-ahead log (snapshot-compacted as it grows), and on
// startup the daemon recovers the persisted state — snapshot plus WAL
// tail, torn trailing writes truncated — and resumes ingesting on top of
// it. Kill it mid-ingest and restart: the picture continues from exactly
// what reached disk.
//
// With -http the daemon serves the unified query surface while it
// ingests: POST a QueryRequest to /v1/query (or use the per-kind GET
// routes — /v1/trajectory, /v1/spacetime, /v1/nearest, /v1/live,
// /v1/situation, /v1/alerts, /v1/stats, /v1/track, /v1/predict,
// /v1/quality) and read the live picture, the
// accumulated archive, situation boards and alert history as JSON, from
// any host, mid-ingest. POST a StreamRequest to /v1/stream and the same
// typed request becomes a standing query: incremental updates pushed as
// NDJSON while ingest runs (box watches, per-vessel follows, alert
// feeds, situation tickers). cmd/msaquery -http is the CLI client
// (-watch / -follow for the streaming modes).
//
// With -peer URL (repeatable) the daemon federates: every query it
// serves merges the named daemons' pictures into its own, deduplicated
// on (MMSI, timestamp). A peer that is down or slow degrades (skipped,
// surfaced under /v1/stats) instead of failing the query, and federated
// reads are marked local-only so mutually-peered daemons cannot loop.
//
// The daemon is fully instrumented through the obs registry: with -http,
// GET /metrics serves the Prometheus text exposition and GET /debug/vars
// a JSON snapshot of the same registry — counters, gauges and latency
// histograms from every layer (ingest, store, tier, query, hub). -pprof
// additionally mounts net/http/pprof under /debug/pprof/. With
// -stats-every the daemon prints a periodic one-line health summary read
// from the same registry the scrape endpoints serve.
//
// Incident-grade observability rides on top of the metrics: an always-on
// flight recorder (a fixed-size ring of structured events — segment
// seals and uploads, upload-queue stalls, flush backpressure, tier
// evictions and page-back failures, subscriber drops, peer degradation)
// is served on GET /debug/flight, dumped to stderr on SIGQUIT and at
// daemon exit, and fed by the -slow-query hook with any query exceeding
// the threshold (full stage trace attached). GET /healthz answers
// liveness; GET /readyz aggregates per-layer readiness checks (flush
// backlog, upload-queue age, storage errors, peer reachability, hub
// drops) into a machine-readable verdict.
//
// With -track the daemon runs the online track-intelligence stage:
// fused per-vessel Kalman state, incrementally learned route forecasts
// and integrity scores, answering the track/predict/quality query kinds
// live instead of by archive replay. With -detections it additionally
// parses $PRADAR radar-contact lines interleaved in the feed (aisgen
// -radar-range emits them) and fuses those identity-less contacts into
// the vessel tracks. With -data-dir, anonymous radar-only tracks (which
// exist nowhere in the archive) are snapshotted to orphans.json at
// shutdown and resumed at startup, so the whole track picture survives
// a restart.
//
// With -anomaly the daemon runs the streaming anomaly lane: a behavior
// profile per vessel (sliding-window distribution shift against the
// vessel's own history), stop/move episodes materialised into a
// semantic store as they close, and continuous open-world CEP —
// reporting gaps matched across vessels for physically feasible covert
// meetings, raised as possible-rendezvous alerts on the daemon's alert
// stream (and every /v1/stream alert subscription). The anomalies query
// kind (/v1/anomalies, msaquery -anomalies / -watch anomalies) answers
// live from the stage. Failure semantics: the stage never refuses
// traffic or fails a query; without -anomaly the kind still answers,
// derived from the archive on demand.
//
// With -mem-budget the archive exceeds RAM: once resident points pass
// the budget, the coldest vessels are evicted down to compact stubs and
// their history spills to the object store (-remote-dir, or a tier/
// subdirectory of -data-dir); queries keep answering, paging evicted
// spans back in on demand. With -remote-dir, sealed WAL segments and
// snapshots also migrate off local disk on seal (upload confirmed before
// the local copy is deleted; recovery re-uploads anything a crash left
// behind).
//
// Usage:
//
//	aisgen -vessels 200 -minutes 60 | maritimed [-shards N] [-decoders N] [-data-dir DIR] [-fsync MODE] [-remote-dir DIR] [-mem-budget SIZE] [-http ADDR] [-pprof] [-stats-every D] [-slow-query D] [-track] [-detections] [-anomaly] [-peer URL]...
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	maritime "repro"
	"repro/internal/ais"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/sim"
)

// parseBytes reads a human byte size: plain bytes, decimal suffixes
// (KB/MB/GB) or binary ones (KiB/MiB/GiB).
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			mult = u.mult
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("want a positive size like 64MiB or 500MB, got %q", s)
	}
	return n * mult, nil
}

// parseRadarLine parses one "$PRADAR,<station>,<lat>,<lon>" contact
// sentence, stamping it with the feed's synthesized timeline.
func parseRadarLine(line string, at time.Time) (maritime.Detection, bool) {
	parts := strings.Split(line, ",")
	if len(parts) != 4 {
		return maritime.Detection{}, false
	}
	station, err1 := strconv.Atoi(parts[1])
	lat, err2 := strconv.ParseFloat(parts[2], 64)
	lon, err3 := strconv.ParseFloat(parts[3], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return maritime.Detection{}, false
	}
	return maritime.Detection{
		At: at, Pos: maritime.Point{Lat: lat, Lon: lon}, Station: station,
	}, true
}

func main() {
	synopsisTol := flag.Float64("synopsis", 60, "synopsis tolerance in metres (0 = archive everything)")
	minSeverity := flag.Int("severity", 2, "minimum alert severity to print")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "pipeline shards")
	decoders := flag.Int("decoders", 0, "NMEA decode workers (default = shards)")
	dataDir := flag.String("data-dir", "", "persist the archive in this directory (WAL + snapshots) and resume on restart")
	fsync := flag.String("fsync", "rotate", "fsync policy with -data-dir: rotate, always or never")
	remoteDir := flag.String("remote-dir", "", "migrate sealed WAL segments, snapshots and evicted chunks to this object-store directory (local disk keeps only the active segment)")
	memBudget := flag.String("mem-budget", "", "resident archive memory budget (e.g. 64MiB): evict cold vessels past it, paging them back on demand (needs -data-dir or -remote-dir)")
	httpAddr := flag.String("http", "", "serve the query API on this address (e.g. :8080) while ingesting")
	pprofOn := flag.Bool("pprof", false, "with -http, mount net/http/pprof under /debug/pprof/")
	statsEvery := flag.Duration("stats-every", 0, "print a periodic health line read from the metrics registry (0 = off)")
	slowQuery := flag.Duration("slow-query", time.Second, "record any query exceeding this duration in the flight ring with its full stage trace (0 = off)")
	trackOn := flag.Bool("track", false, "run the online track-intelligence stage (fused Kalman state, route forecasts, integrity scores behind the track/predict/quality query kinds)")
	detections := flag.Bool("detections", false, "parse $PRADAR radar-contact lines from the feed into the track stage (implies -track); aisgen -radar-range emits them")
	anomalyOn := flag.Bool("anomaly", false, "run the streaming anomaly lane (behavior profiles behind the anomalies query kind, continuous episode extraction, possible-rendezvous CEP alerts)")
	var peers []string
	flag.Func("peer", "federate another maritimed -http daemon's picture into query answers (repeatable)",
		func(u string) error { peers = append(peers, u); return nil })
	flag.Parse()

	world := sim.MediterraneanWorld(1)
	// One registry is the single source of truth for every stat the
	// daemon reports: the /metrics and /debug/vars scrapes, the periodic
	// -stats-every line and the final summary all read from it.
	reg := maritime.NewObsRegistry()
	revision, goVersion := maritime.RegisterObsBuildInfo(reg, time.Now())
	// The flight recorder is always on: recording is an atomic add plus a
	// short per-slot mutex hold, cheap enough that the black box exists
	// before anyone knows they need it. Served on /debug/flight with
	// -http, dumped to stderr on SIGQUIT and at exit.
	flight := maritime.NewObsFlight(4096)
	fmt.Printf("[build] %s (%s)\n", revision, goVersion)
	cfg := maritime.IngestConfig{
		Pipeline: maritime.PipelineConfig{
			Zones:              world.Zones,
			SynopsisToleranceM: *synopsisTol,
		},
		Shards:        *shards,
		DecodeWorkers: *decoders,
		Obs:           reg,
		Flight:        flight,
	}
	for _, u := range peers {
		c := maritime.NewQueryClient(u)
		c.Flight = flight // peer degraded/recovered + epoch rewinds, on the record
		cfg.Peers = append(cfg.Peers, c)
		fmt.Printf("[federation] peer %s merged into query answers\n", u)
	}
	// SIGQUIT dumps the black box without killing the daemon — the
	// incident-investigation tap (kill -QUIT <pid>).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGQUIT)
	go func() {
		for range sigc {
			flight.Dump(os.Stderr)
		}
	}()
	if *trackOn || *detections {
		cfg.Track = &maritime.TrackConfig{}
		if *detections {
			fmt.Println("[track] online tracker on; fusing $PRADAR radar contacts from the feed")
		} else {
			fmt.Println("[track] online tracker on")
		}
	}
	var semantic *maritime.SemanticStore
	if *anomalyOn {
		semantic = maritime.NewSemanticStore()
		cfg.Anomaly = &maritime.AnomalyConfig{Semantic: semantic, Zones: world.Zones}
		fmt.Println("[anomaly] streaming anomaly lane on: behavior profiles, episode extraction, possible-rendezvous CEP")
	}

	// Tiered storage: -remote-dir is the object store sealed segments,
	// snapshots and evicted chunks migrate to; -mem-budget arms eviction.
	var objects maritime.ObjectStore
	if *remoteDir != "" {
		fs, err := maritime.NewFSObjects(*remoteDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maritimed: opening remote object store:", err)
			os.Exit(1)
		}
		objects = fs
		if *dataDir != "" {
			fmt.Printf("[tier] sealed segments and snapshots migrate to %s\n", *remoteDir)
		}
	}
	if *memBudget != "" {
		budget, err := parseBytes(*memBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maritimed: bad -mem-budget: %v\n", err)
			os.Exit(2)
		}
		// Spill chunks are a paging cache (stubs referencing them die
		// with the process), so their store skips fsync.
		spillDir := *remoteDir
		if spillDir == "" {
			if *dataDir == "" {
				fmt.Fprintln(os.Stderr, "maritimed: -mem-budget needs somewhere to spill: pass -remote-dir or -data-dir")
				os.Exit(2)
			}
			// Spill next to the WAL: a subdirectory the segment scanner
			// ignores.
			spillDir = filepath.Join(*dataDir, "tier")
		}
		spill, err := maritime.NewFSObjectsCache(spillDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maritimed: opening spill store:", err)
			os.Exit(1)
		}
		cfg.MemoryBudget = budget
		cfg.TierObjects = spill
		fmt.Printf("[tier] resident archive budget %s: cold vessels evict and page back on demand\n", *memBudget)
	}

	var arch *maritime.Archive
	if *dataDir != "" {
		policy, ok := map[string]maritime.SyncPolicy{
			"rotate": maritime.SyncRotate, "always": maritime.SyncAlways, "never": maritime.SyncNever,
		}[*fsync]
		if !ok {
			fmt.Fprintf(os.Stderr, "maritimed: unknown -fsync policy %q\n", *fsync)
			os.Exit(2)
		}
		scfg := maritime.StoreConfig{Dir: *dataDir, Sync: policy}
		if *remoteDir != "" {
			scfg.Remote = objects
		}
		var err error
		arch, err = maritime.OpenArchive(scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maritimed: opening archive:", err)
			os.Exit(1)
		}
		cfg.Backend = arch.Backend
		arch.Instrument(reg) // recovery stats + WAL/upload latency series
	}

	engine := maritime.NewIngestEngine(cfg)
	if arch != nil {
		resumed := engine.Resume(arch.Store)
		fmt.Printf("[archive] %s: recovered %d records (%d from snapshot, %d from WAL over %d segments",
			*dataDir, arch.Stats.Total(), arch.Stats.SnapshotPoints,
			arch.Stats.WALRecords, arch.Stats.WALSegments)
		if arch.Stats.RemoteSegments > 0 {
			fmt.Printf(", %d remote", arch.Stats.RemoteSegments)
		}
		if arch.Stats.Reuploaded > 0 {
			fmt.Printf("; re-uploaded %d segments", arch.Stats.Reuploaded)
		}
		if arch.Stats.TornBytes > 0 {
			fmt.Printf("; truncated %d torn bytes", arch.Stats.TornBytes)
		}
		fmt.Printf("); resumed %d points across %d shards\n", resumed, *shards)
		flight.Record(obs.FlightInfo, "store", "archive recovered",
			obs.FI("records", int64(arch.Stats.Total())),
			obs.FI("segments", int64(arch.Stats.WALSegments)),
			obs.FI("torn_bytes", arch.Stats.TornBytes))
	}
	ctx := context.Background()
	engine.Start(ctx)

	// Anonymous radar-only tracks exist nowhere in the archive (identified
	// tracks rebuild from it), so with -track and -data-dir the orphan
	// picture parked at the previous shutdown is resumed here.
	orphansPath := ""
	if *dataDir != "" && (*trackOn || *detections) {
		orphansPath = filepath.Join(*dataDir, "orphans.json")
		if data, err := os.ReadFile(orphansPath); err == nil {
			if err := engine.Tracks().DecodeOrphans(data); err != nil {
				// A stale or resharded snapshot starts fresh, not fatally.
				fmt.Fprintln(os.Stderr, "maritimed: resuming orphan tracks:", err)
			} else if n := engine.Tracks().OrphanCount(); n > 0 {
				fmt.Printf("[track] resumed %d anonymous radar tracks from %s\n", n, orphansPath)
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "maritimed: reading orphan snapshot:", err)
		}
	}

	// Query API: the unified read surface over the ingesting shards,
	// served concurrently with ingest (reads see each shard's consistent
	// current state).
	var httpSrv *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maritimed: query API listen:", err)
			os.Exit(1)
		}
		srv := maritime.NewQueryServer(engine)
		srv.ServeMetrics(reg)
		srv.ServeFlight(flight)
		srv.ServeHealth(engine.Health(maritime.IngestHealthOptions{}))
		if *slowQuery > 0 {
			srv.RecordSlowQueries(*slowQuery, flight)
		}
		if *pprofOn {
			srv.ServePprof()
		}
		httpSrv = &http.Server{Handler: srv}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "maritimed: query API:", err)
			}
		}()
		fmt.Printf("[query] serving /v1 (one-shot + /v1/stream standing queries), /metrics, /healthz, /readyz and /debug/flight on %s\n", ln.Addr())
		if *pprofOn {
			fmt.Printf("[query] profiling on http://%s/debug/pprof/\n", ln.Addr())
		}
	}

	// Static/voyage quality issues surface from decode workers; serialise
	// them onto stdout.
	var outMu sync.Mutex
	onStatic := func(_ time.Time, _ *ais.StaticVoyage, issues []quality.Issue) {
		if len(issues) == 0 {
			return
		}
		outMu.Lock()
		defer outMu.Unlock()
		for _, issue := range issues {
			fmt.Printf("[quality] vessel %d: %s (%s)\n", issue.MMSI, issue.Rule, issue.Note)
		}
	}
	lines := make(chan maritime.IngestLine, 1024)
	engine.StartLines(ctx, lines, onStatic)

	// Periodic health line: the same registry the scrape endpoints
	// serve, printed. reg.Value tolerates series that are not registered
	// yet (no backend / no tier), reading as zero.
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for range tick.C {
				in, _ := reg.Value("ingest_messages_in_total")
				out, _ := reg.Value("ingest_messages_out_total")
				queued, _ := reg.Value("ingest_queue_depth")
				flushQ, _ := reg.Value("store_flush_queue_depth")
				resident, _ := reg.Value("tier_resident_points")
				evicted, _ := reg.Value("tier_evicted_points")
				p50, _ := reg.Quantile("ingest_batch_append_ns", 0.50)
				p99, _ := reg.Quantile("ingest_batch_append_ns", 0.99)
				outMu.Lock()
				fmt.Printf("[stats] in=%.0f out=%.0f queued=%.0f flushq=%.0f resident=%.0f evicted=%.0f batch p50=%s p99=%s\n",
					in, out, queued, flushQ, resident, evicted,
					time.Duration(p50), time.Duration(p99))
				outMu.Unlock()
			}
		}()
	}

	// Alert printer: drains the merged alert stream until the engine has
	// fully flushed; doubles as the completion barrier.
	var latest time.Time
	var latestMu sync.Mutex
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for ev := range engine.Alerts() {
			latestMu.Lock()
			if ev.Time.After(latest) {
				latest = ev.Time
			}
			latestMu.Unlock()
			if ev.Value.Severity >= *minSeverity {
				outMu.Lock()
				fmt.Println(ev.Value)
				outMu.Unlock()
			}
		}
	}()

	// Reader: stamp lines in arrival order and feed the decode fan-out.
	// NMEA has no timestamps; synthesise event time from arrival order at
	// a nominal 10 Hz per vessel-interleaved stream (good enough for a
	// demo over replayed logs; production feeds carry receiver timestamps).
	at := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	n := 0
	radarSeen, radarFused, radarBad := 0, 0, 0
	start := time.Now()
	for sc.Scan() {
		n++
		at = at.Add(100 * time.Millisecond)
		line := sc.Text()
		// $PRADAR contact lines (aisgen -radar-range) are not AIS: they
		// never enter the decode path. With -detections they feed the
		// track stage, stamped on the same synthesized timeline as the
		// surrounding sentences.
		if strings.HasPrefix(line, "$PRADAR,") {
			if *detections {
				radarSeen++
				if d, ok := parseRadarLine(line, at); ok {
					radarFused += engine.IngestDetections([]maritime.Detection{d})
				} else {
					radarBad++
				}
			}
			continue
		}
		lines <- maritime.IngestLine{At: at, Text: line}
	}
	close(lines)
	<-printed // engine auto-closes once decode drains; alerts close last
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "maritimed: read:", err)
		os.Exit(1)
	}
	end := at
	if latest.After(end) {
		end = latest
	}
	elapsed := time.Since(start)
	sharded := engine.Sharded()
	snap := engine.Snapshot()
	dm := engine.DecodeMetrics.Snapshot()
	compression := sharded.CompressionRatio()
	fmt.Printf("\n%d lines → %d messages in %v (%.0f msg/s over %d shards); "+
		"archived %d (%.1f%% compression); %d alerts; %d undecodable\n",
		n, dm.Out, elapsed.Round(time.Millisecond), float64(dm.Out)/elapsed.Seconds(),
		len(sharded.Shards), snap.Archived, compression*100, snap.Alerts, dm.Dropped)

	// Situation board over the merged live picture of every shard.
	fmt.Printf("%d vessels live; per-shard ingest: ", sharded.LiveCount())
	for i, p := range sharded.Shards {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(p.Metrics.Ingested.Load())
	}
	fmt.Println()
	fmt.Print(sharded.Situation(end, world.Bounds, 12, 48).Summary())

	if tracks := engine.Tracks(); tracks != nil {
		fmt.Printf("[track] %d fused vessel tracks, %d anonymous radar tracks",
			tracks.VesselCount(), tracks.OrphanCount())
		if *detections {
			fmt.Printf("; %d contacts (%d fused to vessels", radarSeen, radarFused)
			if radarBad > 0 {
				fmt.Printf(", %d malformed", radarBad)
			}
			fmt.Print(")")
		}
		fmt.Println()
		// Park the anonymous picture for the next process; identified
		// tracks need no snapshot (the archive replays them).
		if orphansPath != "" {
			if data, err := tracks.EncodeOrphans(); err != nil {
				fmt.Fprintln(os.Stderr, "maritimed: snapshotting orphan tracks:", err)
			} else if err := os.WriteFile(orphansPath, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "maritimed: writing orphan snapshot:", err)
			}
		}
	}

	if anoms := engine.Anomalies(); anoms != nil {
		fmt.Printf("[anomaly] %d vessels profiled; %d episodes closed (%d triples), %d reporting gaps, %d possible rendezvous\n",
			anoms.VesselCount(), anoms.EpisodeCount(), semantic.Len(), anoms.GapCount(), anoms.RendezvousCount())
	}

	// Final summaries read from the registry — the same numbers a
	// /metrics scrape would have reported at this instant.
	if arch != nil {
		engine.Wait() // flush stage drained and final-synced
		if err := engine.FlushErr(); err != nil {
			fmt.Fprintln(os.Stderr, "maritimed: persistence:", err)
		}
		if err := arch.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "maritimed: closing archive:", err)
		}
		persisted, _ := reg.Value("store_flush_out_total")
		dropped, _ := reg.Value("store_flush_dropped_total")
		fmt.Printf("[archive] persisted %.0f records to %s (%.0f dropped)\n", persisted, *dataDir, dropped)
	}
	if cfg.MemoryBudget > 0 {
		engine.Wait()
		resident, _ := reg.Value("tier_resident_points")
		evicted, _ := reg.Value("tier_evicted_points")
		stubs, _ := reg.Value("tier_evicted_vessels")
		evictions, _ := reg.Value("tier_evictions_total")
		pageIns, _ := reg.Value("tier_pageins_total")
		pagedPts, _ := reg.Value("tier_paged_points_total")
		spilled, _ := reg.Value("tier_spilled_bytes_total")
		fmt.Printf("[tier] %.0f resident / %.0f evicted points (%.0f stub vessels); %.0f evictions, %.0f page-ins (%.0f points back), %.1f MiB spilled\n",
			resident, evicted, stubs, evictions, pageIns, pagedPts, spilled/(1<<20))
	}

	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			// Standing /v1/stream connections never drain on their own;
			// after the graceful window, cut them.
			httpSrv.Close()
		}
	}

	// Last act: empty the black box onto stderr, so the run's event
	// record survives the process whether or not anyone scraped it.
	flight.Dump(os.Stderr)
}
