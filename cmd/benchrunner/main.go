// Command benchrunner regenerates every experiment in DESIGN.md's index
// (E1–E14) and prints the paper-style tables EXPERIMENTS.md records.
//
// Usage:
//
//	benchrunner             # run everything
//	benchrunner -only E2,E9 # run a subset
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	seed := flag.Int64("seed", 42, "master seed")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string, fn func() experiments.Table) {
		if len(want) > 0 && !want[id] {
			return
		}
		start := time.Now()
		t := fn()
		fmt.Println(t.Format())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	run("E1", func() experiments.Table { return experiments.E1(*seed, 400, 40*time.Minute) })
	run("E2", func() experiments.Table { return experiments.E2(*seed) })
	run("E3", func() experiments.Table { return experiments.E3(*seed) })
	run("E4", func() experiments.Table { return experiments.E4(*seed) })
	run("E5", func() experiments.Table { return experiments.E5(*seed, []int{1, 2, 4, 8}) })
	run("E6", func() experiments.Table { return experiments.E6(*seed) })
	run("E7", func() experiments.Table { return experiments.E7(*seed) })
	run("E8", func() experiments.Table { return experiments.E8(*seed) })
	run("E9", func() experiments.Table { return experiments.E9(*seed) })
	run("E10", func() experiments.Table { return experiments.E10(*seed) })
	run("E11", func() experiments.Table { return experiments.E11(*seed, 200000) })
	run("E12", func() experiments.Table { return experiments.E12(*seed, 1000) })
	run("E13", func() experiments.Table { return experiments.E13(*seed) })
	run("E14", func() experiments.Table { return experiments.E14(*seed, []int{1, 2, 4, 8}) })
}
