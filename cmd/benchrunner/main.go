// Command benchrunner regenerates every experiment in DESIGN.md's index
// (E1–E22) and prints the paper-style tables EXPERIMENTS.md records. It
// also emits a machine-readable BENCH_<n>.json next to the working
// directory's previous ones (auto-numbered), so the repository accumulates
// a perf trajectory across PRs; disable with -json off or redirect with
// -json PATH.
//
// Usage:
//
//	benchrunner               # run everything, write BENCH_<n>.json
//	benchrunner -only E2,E9   # run a subset
//	benchrunner -json off     # skip the JSON record
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// benchDoc is the schema of a BENCH_<n>.json perf-trajectory record.
type benchDoc struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Seed        int64        `json:"seed"`
	Experiments []benchEntry `json:"experiments"`
}

type benchEntry struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Cols      []string   `json:"cols"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	seed := flag.Int64("seed", 42, "master seed")
	jsonOut := flag.String("json", "auto", `perf record: "auto" (next BENCH_<n>.json), "off", or a path`)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	doc := benchDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        *seed,
	}
	run := func(id string, fn func() experiments.Table) {
		if len(want) > 0 && !want[id] {
			return
		}
		start := time.Now()
		t := fn()
		elapsed := time.Since(start)
		fmt.Println(t.Format())
		fmt.Printf("(%s in %v)\n\n", id, elapsed.Round(time.Millisecond))
		doc.Experiments = append(doc.Experiments, benchEntry{
			ID: t.ID, Title: t.Title, Cols: t.Cols, Rows: t.Rows, Notes: t.Notes,
			ElapsedMS: elapsed.Milliseconds(),
		})
	}
	run("E1", func() experiments.Table { return experiments.E1(*seed, 400, 40*time.Minute) })
	run("E2", func() experiments.Table { return experiments.E2(*seed) })
	run("E3", func() experiments.Table { return experiments.E3(*seed) })
	run("E4", func() experiments.Table { return experiments.E4(*seed) })
	run("E5", func() experiments.Table { return experiments.E5(*seed, []int{1, 2, 4, 8}) })
	run("E6", func() experiments.Table { return experiments.E6(*seed) })
	run("E7", func() experiments.Table { return experiments.E7(*seed) })
	run("E8", func() experiments.Table { return experiments.E8(*seed) })
	run("E9", func() experiments.Table { return experiments.E9(*seed) })
	run("E10", func() experiments.Table { return experiments.E10(*seed) })
	run("E11", func() experiments.Table { return experiments.E11(*seed, 200000) })
	run("E12", func() experiments.Table { return experiments.E12(*seed, 1000) })
	run("E13", func() experiments.Table { return experiments.E13(*seed) })
	run("E14", func() experiments.Table { return experiments.E14(*seed, []int{1, 2, 4, 8}) })
	run("E15", func() experiments.Table { return experiments.E15(*seed) })
	run("E16", func() experiments.Table { return experiments.E16(*seed) })
	run("E17", func() experiments.Table { return experiments.E17(*seed) })
	run("E18", func() experiments.Table { return experiments.E18(*seed) })
	run("E19", func() experiments.Table { return experiments.E19(*seed) })
	run("E20", func() experiments.Table { return experiments.E20(*seed) })
	run("E21", func() experiments.Table { return experiments.E21(*seed) })
	run("E22", func() experiments.Table { return experiments.E22(*seed) })

	if *jsonOut == "off" || *jsonOut == "" {
		return
	}
	path := *jsonOut
	if path == "auto" && len(want) > 0 {
		// A -only subset is not comparable with the full-run trajectory;
		// don't pollute the auto-numbered series with it.
		fmt.Println("perf record skipped for -only subset (pass -json PATH to force)")
		return
	}
	if path == "auto" {
		n := 1
		for {
			path = fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				break
			}
			n++
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner: encoding perf record:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner: writing perf record:", err)
		os.Exit(1)
	}
	fmt.Printf("perf record → %s\n", path)
}
