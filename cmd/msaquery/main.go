// Command msaquery demonstrates archive queries against stored
// trajectories: build a snapshot file with -write, then query it with
// -read, or open a maritimed -data-dir archive directory directly with
// -data (read-only snapshot + WAL recovery: nothing on disk is touched,
// so it is safe while a daemon owns the directory). This is the §2.3
// moving-object query surface as a CLI.
//
// Usage:
//
//	msaquery -write archive.bin -vessels 100 -minutes 120
//	msaquery -read archive.bin -vessel 201000091
//	msaquery -read archive.bin -box "42,4,44,9"
//	msaquery -read archive.bin -knn "43.2,5.3" -k 5
//	msaquery -data /var/lib/maritimed -vessel 201000091
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tstore"
)

func main() {
	write := flag.String("write", "", "simulate traffic and write an archive to this path")
	read := flag.String("read", "", "load an archive snapshot file from this path")
	data := flag.String("data", "", "open an archive directory (maritimed -data-dir) with WAL recovery")
	vessels := flag.Int("vessels", 100, "fleet size for -write")
	minutes := flag.Int("minutes", 120, "duration for -write")
	vessel := flag.Uint("vessel", 0, "print this vessel's trajectory summary")
	box := flag.String("box", "", "space-time query: minLat,minLon,maxLat,maxLon")
	knn := flag.String("knn", "", "nearest-vessel query: lat,lon")
	k := flag.Int("k", 5, "number of neighbours for -knn")
	flag.Parse()

	switch {
	case *write != "":
		run, err := sim.Simulate(sim.Config{
			Seed: 1, NumVessels: *vessels,
			Duration: time.Duration(*minutes) * time.Minute, TickSec: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := tstore.New()
		for mmsi, pts := range run.Truth {
			for _, p := range pts {
				st.Append(model.VesselState{
					MMSI: mmsi, At: p.At, Pos: p.Pos,
					SpeedKn: p.SpeedKn, CourseDeg: p.CourseDeg,
				})
			}
		}
		f, err := os.Create(*write)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		n, err := st.WriteTo(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d points (%d vessels, %d bytes) to %s\n",
			st.Len(), st.VesselCount(), n, *write)

	case *read != "":
		f, err := os.Open(*read)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		st := tstore.New()
		if _, err := st.Load(f); err != nil {
			log.Fatal(err)
		}
		query(st, uint32(*vessel), *box, *knn, *k)

	case *data != "":
		// Read-only recovery: mutates nothing, takes no lock — safe to
		// query a directory a running maritimed owns (replay stops at the
		// writer's in-flight tail).
		arch, err := store.OpenReadOnly(store.Config{Dir: *data})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered %d records (%d snapshot + %d WAL over %d segments",
			arch.Stats.Total(), arch.Stats.SnapshotPoints,
			arch.Stats.WALRecords, arch.Stats.WALSegments)
		if arch.Stats.TornBytes > 0 {
			fmt.Printf("; skipped %d in-flight/torn tail bytes", arch.Stats.TornBytes)
		}
		fmt.Printf(") from %s\n", *data)
		query(arch.Store, uint32(*vessel), *box, *knn, *k)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// query runs one of the -vessel / -box / -knn queries against the store.
func query(st *tstore.Store, vessel uint32, box, knn string, k int) {
	fmt.Printf("archive: %d points, %d vessels\n", st.Len(), st.VesselCount())
	switch {
	case vessel != 0:
		tr := st.Trajectory(vessel)
		if tr.Len() == 0 {
			log.Fatalf("vessel %d not in archive", vessel)
		}
		fmt.Printf("vessel %d: %d points, %s → %s, %.1f km travelled\n",
			vessel, tr.Len(),
			tr.Start().Format(time.RFC3339), tr.End().Format(time.RFC3339),
			tr.Length()/1000)
	case box != "":
		var r geo.Rect
		if _, err := fmt.Sscanf(strings.ReplaceAll(box, " ", ""), "%f,%f,%f,%f",
			&r.MinLat, &r.MinLon, &r.MaxLat, &r.MaxLon); err != nil {
			log.Fatalf("bad -box: %v", err)
		}
		sn := st.SpatialSnapshot()
		hits := sn.Search(r, time.Time{}, time.Now().AddDate(10, 0, 0))
		seen := map[uint32]bool{}
		for _, h := range hits {
			seen[h.MMSI] = true
		}
		fmt.Printf("box query: %d points from %d vessels\n", len(hits), len(seen))
	case knn != "":
		var p geo.Point
		if _, err := fmt.Sscanf(strings.ReplaceAll(knn, " ", ""), "%f,%f", &p.Lat, &p.Lon); err != nil {
			log.Fatalf("bad -knn: %v", err)
		}
		sn := st.SpatialSnapshot()
		// Query at the archive's temporal midpoint.
		var mid time.Time
		if ms := st.MMSIs(); len(ms) > 0 {
			tr := st.Trajectory(ms[0])
			mid = tr.Start().Add(tr.Duration() / 2)
		}
		for i, s := range sn.NearestVessels(p, mid, 30*time.Minute, k) {
			fmt.Printf("%d. vessel %d at %s (%.1f km away, %s)\n",
				i+1, s.MMSI, s.Pos, geo.Distance(p, s.Pos)/1000,
				s.At.Format("15:04:05"))
		}
	default:
		log.Fatal("pass one of -vessel, -box, -knn")
	}
}
