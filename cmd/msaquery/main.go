// Command msaquery is the CLI of the unified query surface (§2.3 moving
// object queries, internal/query): the same typed requests a program
// issues in-process, pointed at a snapshot file (-read), an archive
// directory a daemon owns (-data; read-only recovery, nothing on disk is
// touched), or a running maritimed's query API (-http). -write still
// simulates traffic into a snapshot file for the other modes to read.
//
// Usage:
//
//	msaquery -write archive.bin -vessels 100 -minutes 120
//	msaquery -read archive.bin -vessel 201000091
//	msaquery -read archive.bin -box "42,4,44,9"
//	msaquery -data /var/lib/maritimed -knn "43.2,5.3" -k 5
//	msaquery -http localhost:8080 -live "42,4,44,9"
//	msaquery -http localhost:8080 -situation "42,4,44,9"
//	msaquery -data /var/lib/maritimed -stats -json
//	msaquery -http localhost:8080 -track 201000091
//	msaquery -http localhost:8080 -predict 201000091 -horizon 15m
//	msaquery -http localhost:8080 -quality 201000091
//	msaquery -http localhost:8080 -anomalies ranked -limit 10
//	msaquery -http localhost:8080 -anomalies 201000091
//
// Exactly one query flag (-vessel, -box, -knn, -live, -situation,
// -alerts, -stats, -track, -predict, -quality, -anomalies) runs per
// invocation; -from/-to/-at bound time where
// the kind supports it, and -json dumps the raw Result encoding instead
// of the human summary. -trace asks the executor to record where the
// query spent its time and prints the per-stage breakdown (per-source
// fan-out, merge/dedup, end-to-end) under the answer.
//
// With -http the same requests also run as standing queries over
// /v1/stream — updates stream until interrupted (or -count updates
// arrive):
//
//	msaquery -http localhost:8080 -watch "42,4,44,9"       # box watch
//	msaquery -http localhost:8080 -follow 201000091        # vessel follow
//	msaquery -http localhost:8080 -watch "42,4,44,9" -count 100 -json
//	msaquery -http localhost:8080 -watch predict -predict 201000091 -horizon 10m
//	msaquery -http localhost:8080 -watch anomalies                    # ranked board ticker
//	msaquery -http localhost:8080 -watch anomalies -anomalies 201000091
//
// -watch predict is the forecast ticker: a standing predict query that
// pushes a fresh dead-reckoned (or route-model) fix every tick, showing
// the vessel's expected motion between AIS reports. -watch anomalies is
// the deviation ticker: the fleet ranked by behavior-shift score (or one
// vessel's report, with -anomalies MMSI) pushed every tick — a client
// watching "vessels deviating from their own history".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/tstore"
)

func main() {
	write := flag.String("write", "", "simulate traffic and write an archive to this path")
	read := flag.String("read", "", "load an archive snapshot file from this path")
	data := flag.String("data", "", "open an archive directory (maritimed -data-dir) with read-only WAL recovery")
	remote := flag.String("remote", "", "with -data: also read segments/snapshots migrated to this object-store directory (maritimed -remote-dir)")
	httpAddr := flag.String("http", "", "query a running maritimed -http daemon at this address")
	vessels := flag.Int("vessels", 100, "fleet size for -write")
	minutes := flag.Int("minutes", 120, "duration for -write")

	vessel := flag.Uint("vessel", 0, "trajectory query: print this vessel's summary")
	box := flag.String("box", "", "space-time query: minLat,minLon,maxLat,maxLon")
	knn := flag.String("knn", "", "nearest-vessel query: lat,lon")
	k := flag.Int("k", 5, "number of neighbours for -knn")
	live := flag.String("live", "", "live-picture query: minLat,minLon,maxLat,maxLon")
	situation := flag.String("situation", "", "situation query: minLat,minLon,maxLat,maxLon")
	alerts := flag.Bool("alerts", false, "alert-history query")
	severity := flag.Int("severity", 0, "minimum severity for -alerts / -situation")
	stats := flag.Bool("stats", false, "store statistics query")
	track := flag.Uint("track", 0, "track query: fused Kalman state + error ellipse for this MMSI")
	predict := flag.Uint("predict", 0, "predict query: forecast this MMSI's position -horizon ahead")
	horizon := flag.Duration("horizon", 0, "forecast horizon for -predict (e.g. 15m; required, at most 24h)")
	quality := flag.Uint("quality", 0, "quality query: data-integrity score for this MMSI")
	anomalies := flag.String("anomalies", "", "anomalies query: an MMSI for one vessel's deviation report, or \"ranked\" for the fleet board (cap with -limit)")
	from := flag.String("from", "", "lower time bound, RFC 3339")
	to := flag.String("to", "", "upper time bound, RFC 3339")
	at := flag.String("at", "", "reference instant for -knn, RFC 3339 (default: any time)")
	tol := flag.Duration("tol", 0, "time tolerance around -at for -knn (default 30m when -at is set)")
	limit := flag.Int("limit", 0, "cap returned states/alerts (0 = unlimited)")
	asJSON := flag.Bool("json", false, "print the raw Result JSON instead of a summary")
	trace := flag.Bool("trace", false, "request a per-stage trace and print where the query spent its time")

	watch := flag.String("watch", "", "standing box watch (requires -http): minLat,minLon,maxLat,maxLon — or the literal \"predict\" with -predict/-horizon for a forecast ticker, or \"anomalies\" (optionally with -anomalies MMSI) for a deviation ticker")
	follow := flag.Uint("follow", 0, "standing per-vessel follow (requires -http): MMSI")
	count := flag.Int("count", 0, "stop a -watch/-follow stream after this many updates (0 = until interrupted)")
	fromSeq := flag.Uint64("from-seq", 0, "resume a -watch/-follow stream after this sequence number")
	flag.Parse()

	if *write != "" {
		writeArchive(*write, *vessels, *minutes)
		return
	}

	if *watch != "" || *follow != 0 {
		if *httpAddr == "" {
			log.Fatal("-watch/-follow are standing queries against a daemon: pass -http ADDR")
		}
		streamUpdates(*httpAddr, *watch, uint32(*follow), uint32(*predict), *horizon, *anomalies, *count, *fromSeq, *asJSON)
		return
	}

	req, err := buildRequest(reqFlags{
		vessel: uint32(*vessel), box: *box, knn: *knn, k: *k,
		live: *live, situation: *situation, alerts: *alerts, stats: *stats,
		track: uint32(*track), predict: uint32(*predict), horizon: *horizon, quality: uint32(*quality),
		anomalies: *anomalies,
		severity:  *severity, from: *from, to: *to, at: *at, tol: *tol, limit: *limit,
	})
	if err != nil {
		log.Fatal(err)
	}
	req.Trace = *trace

	exec, describe, err := openExecutor(*read, *data, *remote, *httpAddr)
	if err != nil {
		log.Fatal(err)
	}
	if describe != "" {
		fmt.Println(describe)
	}
	res, err := exec.Query(req)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	printResult(req, res)
	if *trace {
		printTrace(res)
	}
}

// printTrace renders the per-stage breakdown a Trace: true request
// returns as a tree: spans nest under their Parent, so a federated
// query reads as one hierarchy spanning daemons — local stages at the
// root, each peer's stages indented under its peer/<addr> span (a dead
// peer shows a single degraded leaf).
func printTrace(res *query.Result) {
	if len(res.Trace) == 0 {
		fmt.Println("trace: (empty — the executor does not record stage spans)")
		return
	}
	var total int64
	for _, sp := range res.Trace {
		if sp.Name == "total" {
			total = sp.DurNS
		}
	}
	// Children in wire order (already sorted by start, name): the render
	// walks roots depth-first. A span whose parent never arrived (peer
	// truncated its trace) renders as a root rather than vanishing.
	named := make(map[string]bool, len(res.Trace))
	for _, sp := range res.Trace {
		named[sp.Name] = true
	}
	children := make(map[string][]query.TraceSpan, len(res.Trace))
	for _, sp := range res.Trace {
		parent := sp.Parent
		if parent != "" && !named[parent] {
			parent = ""
		}
		children[parent] = append(children[parent], sp)
	}
	fmt.Println("trace:")
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, sp := range children[parent] {
			name := strings.Repeat("  ", depth) + sp.Name
			line := fmt.Sprintf("  %-32s @%-10v %10v", name,
				time.Duration(sp.StartNS).Round(time.Microsecond),
				time.Duration(sp.DurNS).Round(time.Microsecond))
			if total > 0 && sp.Name != "total" {
				line += fmt.Sprintf("  %5.1f%%", 100*float64(sp.DurNS)/float64(total))
			}
			fmt.Println(line)
			walk(sp.Name, depth+1)
		}
	}
	walk("", 0)
}

// reqFlags collects the raw query flags for translation into a Request.
type reqFlags struct {
	vessel          uint32
	box, knn        string
	k               int
	live, situation string
	alerts, stats   bool
	track, predict  uint32
	horizon         time.Duration
	quality         uint32
	anomalies       string
	severity        int
	from, to, at    string
	tol             time.Duration
	limit           int
}

// buildRequest translates the flags into exactly one validated Request.
func buildRequest(f reqFlags) (query.Request, error) {
	req := query.Request{MinSeverity: f.severity, Limit: f.limit}
	modes := 0
	switch {
	case f.vessel != 0:
		modes++
		req.Kind = query.KindTrajectory
		req.MMSI = f.vessel
	}
	if f.box != "" {
		modes++
		b, err := query.ParseBox(f.box)
		if err != nil {
			return req, fmt.Errorf("bad -box: %w", err)
		}
		req.Kind = query.KindSpaceTime
		req.Box = &b
	}
	if f.knn != "" {
		modes++
		p, err := query.ParsePoint(f.knn)
		if err != nil {
			return req, fmt.Errorf("bad -knn: %w", err)
		}
		req.Kind = query.KindNearest
		req.Lat, req.Lon = p.Lat, p.Lon
		req.K = f.k
		req.Tol = query.Duration(f.tol)
	}
	if f.live != "" {
		modes++
		b, err := query.ParseBox(f.live)
		if err != nil {
			return req, fmt.Errorf("bad -live: %w", err)
		}
		req.Kind = query.KindLivePicture
		req.Box = &b
	}
	if f.situation != "" {
		modes++
		b, err := query.ParseBox(f.situation)
		if err != nil {
			return req, fmt.Errorf("bad -situation: %w", err)
		}
		req.Kind = query.KindSituation
		req.Box = &b
	}
	if f.alerts {
		modes++
		req.Kind = query.KindAlertHistory
	}
	if f.stats {
		modes++
		req.Kind = query.KindStats
	}
	if f.track != 0 {
		modes++
		req.Kind = query.KindTrack
		req.MMSI = f.track
	}
	if f.predict != 0 {
		modes++
		req.Kind = query.KindPredict
		req.MMSI = f.predict
		req.Horizon = query.Duration(f.horizon)
	}
	if f.quality != 0 {
		modes++
		req.Kind = query.KindQuality
		req.MMSI = f.quality
	}
	if f.anomalies != "" {
		modes++
		req.Kind = query.KindAnomalies
		mmsi, err := parseAnomalyTarget(f.anomalies)
		if err != nil {
			return req, err
		}
		req.MMSI = mmsi
	}
	if modes != 1 {
		return req, fmt.Errorf("pass exactly one of -vessel, -box, -knn, -live, -situation, -alerts, -stats, -track, -predict, -quality, -anomalies (got %d)", modes)
	}
	var err error
	if req.From, err = parseTime(f.from, "-from"); err != nil {
		return req, err
	}
	if req.To, err = parseTime(f.to, "-to"); err != nil {
		return req, err
	}
	if req.At, err = parseTime(f.at, "-at"); err != nil {
		return req, err
	}
	return req, req.Validate()
}

// parseAnomalyTarget interprets the -anomalies value: "ranked" (or
// "all") asks for the fleet board (MMSI 0), anything else must be the
// MMSI of the vessel whose deviation report to fetch.
func parseAnomalyTarget(s string) (uint32, error) {
	if s == "ranked" || s == "all" {
		return 0, nil
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad -anomalies (want an MMSI or \"ranked\"): %q", s)
	}
	return uint32(n), nil
}

func parseTime(s, flagName string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad %s (want RFC 3339): %w", flagName, err)
	}
	return t, nil
}

// openExecutor builds the query executor for the selected mode: a local
// engine over a loaded snapshot or recovered directory, or a client of a
// running daemon. The description line reports what was opened (empty
// for remote, which describes itself via -stats).
func openExecutor(read, data, remote, httpAddr string) (query.Executor, string, error) {
	picked := 0
	for _, s := range []string{read, data, httpAddr} {
		if s != "" {
			picked++
		}
	}
	if picked != 1 {
		return nil, "", fmt.Errorf("pass exactly one of -read, -data, -http (or -write)")
	}
	if remote != "" && data == "" {
		return nil, "", fmt.Errorf("-remote extends -data recovery; pass -data DIR too")
	}
	switch {
	case httpAddr != "":
		return query.NewClient(httpAddr), "", nil
	case read != "":
		f, err := os.Open(read)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		st := tstore.New()
		if _, err := st.Load(f); err != nil {
			return nil, "", err
		}
		desc := fmt.Sprintf("archive %s: %d points, %d vessels", read, st.Len(), st.VesselCount())
		return query.NewEngine(query.NewStoreSource("archive", st)), desc, nil
	default:
		// Read-only recovery: mutates nothing, takes no lock — safe to
		// query a directory a running maritimed owns (replay stops at
		// the writer's in-flight tail). With -remote the migrated
		// segments and snapshots are read back from the object store.
		cfg := store.Config{Dir: data}
		if remote != "" {
			objects, err := store.NewFSObjects(remote)
			if err != nil {
				return nil, "", err
			}
			cfg.Remote = objects
		}
		arch, err := store.OpenReadOnly(cfg)
		if err != nil {
			return nil, "", err
		}
		desc := fmt.Sprintf("recovered %d records (%d snapshot + %d WAL over %d segments",
			arch.Stats.Total(), arch.Stats.SnapshotPoints,
			arch.Stats.WALRecords, arch.Stats.WALSegments)
		if arch.Stats.RemoteSegments > 0 {
			desc += fmt.Sprintf(", %d remote", arch.Stats.RemoteSegments)
		}
		if arch.Stats.TornBytes > 0 {
			desc += fmt.Sprintf("; skipped %d in-flight/torn tail bytes", arch.Stats.TornBytes)
		}
		desc += fmt.Sprintf(") from %s", data)
		return query.NewEngine(query.NewStoreSource("archive", arch.Store)), desc, nil
	}
}

// streamUpdates runs a standing query (-watch / -follow) over /v1/stream
// and prints updates as they arrive. -watch predict (with -predict and
// -horizon) is the forecast ticker: a fresh dead-reckoned or route-model
// fix every tick, showing expected motion between AIS reports. -watch
// anomalies is the deviation ticker: the ranked behavior-shift board
// (or one vessel's report, with -anomalies MMSI) every tick.
func streamUpdates(httpAddr, watch string, follow, predict uint32, horizon time.Duration, anomalies string, count int, fromSeq uint64, asJSON bool) {
	var req query.Request
	switch {
	case watch != "" && follow != 0:
		log.Fatal("pass exactly one of -watch, -follow")
	case watch == "predict":
		if predict == 0 {
			log.Fatal("-watch predict needs the vessel: pass -predict MMSI (and -horizon)")
		}
		req = query.Request{Kind: query.KindPredict, MMSI: predict, Horizon: query.Duration(horizon)}
		if err := req.Validate(); err != nil {
			log.Fatal(err)
		}
	case watch == "anomalies":
		var mmsi uint32
		if anomalies != "" {
			m, err := parseAnomalyTarget(anomalies)
			if err != nil {
				log.Fatal(err)
			}
			mmsi = m
		}
		req = query.Request{Kind: query.KindAnomalies, MMSI: mmsi}
		if err := req.Validate(); err != nil {
			log.Fatal(err)
		}
	case watch != "":
		b, err := query.ParseBox(watch)
		if err != nil {
			log.Fatalf("bad -watch: %v", err)
		}
		req = query.Request{Kind: query.KindSpaceTime, Box: &b}
	default:
		req = query.Request{Kind: query.KindTrajectory, MMSI: follow}
	}
	c := query.NewClient(httpAddr)
	sub, err := c.Subscribe(req, query.SubOptions{FromSeq: fromSeq})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Cancel()
	fmt.Fprintf(os.Stderr, "streaming %s from %s (seq %d)...\n", req.Kind, httpAddr, sub.StartSeq())
	enc := json.NewEncoder(os.Stdout)
	n := 0
	for u := range sub.Updates() {
		if asJSON {
			if err := enc.Encode(u); err != nil {
				log.Fatal(err)
			}
		} else if u.State != nil {
			s := u.State
			fmt.Printf("#%-8d vessel %-9d %8.4f,%9.4f  %5.1f kn  %s\n",
				u.Seq, s.MMSI, s.Lat, s.Lon, s.SpeedKn, s.At.Format("15:04:05"))
		} else if u.Alert != nil {
			a := u.Alert
			fmt.Printf("#%-8d [sev%d] %-18s vessel %d: %s\n", u.Seq, a.Severity, a.Kind, a.MMSI, a.Note)
		} else if u.Prediction != nil {
			p := u.Prediction
			fmt.Printf("#%-8d vessel %-9d %8.4f,%9.4f  at %s (+%s, %s, ±%.0f m)\n",
				u.Seq, p.MMSI, p.Lat, p.Lon, p.At.Format("15:04:05"),
				time.Duration(p.Horizon), p.Method, p.ConfidenceM)
		} else if u.Track != nil {
			s := u.Track
			fmt.Printf("#%-8d vessel %-9d %8.4f,%9.4f  %5.1f kn  ±%.0f m  %s\n",
				u.Seq, s.MMSI, s.Lat, s.Lon, s.SpeedKn, s.SigmaM, s.At.Format("15:04:05"))
		} else if u.Quality != nil {
			q := u.Quality
			fmt.Printf("#%-8d vessel %-9d reliability %.3f (lower %.3f), %d/%d flagged\n",
				u.Seq, q.MMSI, q.Reliability, q.LowerBound, q.Flagged, q.Checked)
		} else if u.Anomalies != nil {
			if v := u.Anomalies.Vessel; v != nil {
				fmt.Printf("#%-8d vessel %-9d score %.3f (spd %.3f hdg %.3f pos %.3f)  %d gaps  %s\n",
					u.Seq, v.MMSI, v.Score, v.SpeedShift, v.HeadingShift, v.PositionShift,
					v.Gaps, v.At.Format("15:04:05"))
			} else {
				fmt.Printf("#%-8d %d vessels by deviation score\n", u.Seq, len(u.Anomalies.Ranked))
				top := u.Anomalies.Ranked
				if len(top) > 5 {
					top = top[:5]
				}
				for i, v := range top {
					fmt.Printf("  %d. vessel %-9d score %.3f  %d gaps\n", i+1, v.MMSI, v.Score, v.Gaps)
				}
			}
		} else if u.Kind == query.UpdateRewound {
			fmt.Fprintf(os.Stderr, "(stream rewound: daemon restarted — cursor reset to seq %d in epoch %x; retained-but-undelivered updates from the old epoch are gone)\n",
				u.Seq, u.Epoch)
		}
		n++
		if count > 0 && n >= count {
			break
		}
	}
	if err := sub.Err(); err != nil {
		log.Fatal(err)
	}
	if d := sub.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "(%d updates dropped server-side: consumer slower than the feed)\n", d)
	}
	if r := sub.Rewound(); r > 0 {
		fmt.Fprintf(os.Stderr, "(%d epoch rewinds: the stream crossed daemon restarts)\n", r)
	}
}

// printResult renders the human summary for each kind.
func printResult(req query.Request, res *query.Result) {
	switch res.Kind {
	case query.KindTrajectory:
		if res.Count == 0 {
			log.Fatalf("vessel %d not found", req.MMSI)
		}
		tr := &model.Trajectory{MMSI: req.MMSI, Points: res.ModelStates()}
		fmt.Printf("vessel %d: %d points, %s → %s, %.1f km travelled\n",
			req.MMSI, tr.Len(),
			tr.Start().Format(time.RFC3339), tr.End().Format(time.RFC3339),
			tr.Length()/1000)
	case query.KindSpaceTime:
		seen := map[uint32]bool{}
		for _, s := range res.States {
			seen[s.MMSI] = true
		}
		fmt.Printf("box query: %d points from %d vessels\n", res.Count, len(seen))
	case query.KindNearest:
		p := geo.Point{Lat: req.Lat, Lon: req.Lon}
		for i, s := range res.States {
			sp := geo.Point{Lat: s.Lat, Lon: s.Lon}
			fmt.Printf("%d. vessel %d at %s (%.1f km away, %s)\n",
				i+1, s.MMSI, sp, geo.Distance(p, sp)/1000, s.At.Format("15:04:05"))
		}
	case query.KindLivePicture:
		fmt.Printf("live picture: %d vessels\n", res.Count)
		for _, s := range res.States {
			fmt.Printf("  vessel %-9d %8.4f,%9.4f  %5.1f kn  %s\n",
				s.MMSI, s.Lat, s.Lon, s.SpeedKn, s.At.Format("15:04:05"))
		}
	case query.KindSituation:
		sit := res.Situation
		fmt.Printf("SITUATION %s — %d vessels, %d alerts\n",
			sit.At.Format("2006-01-02 15:04:05"), len(sit.Vessels), len(sit.Alerts))
		renderDensity(sit)
		n := len(sit.Alerts)
		if n > 8 {
			n = 8
		}
		for _, a := range sit.Alerts[:n] {
			fmt.Printf("  [sev%d] %-18s vessel %-9d %s\n", a.Severity, a.Kind, a.MMSI, a.Note)
		}
	case query.KindAlertHistory:
		fmt.Printf("%d alerts\n", res.Count)
		for _, a := range res.Alerts {
			fmt.Printf("  [%s] sev%d %-18s vessel %d: %s\n",
				a.At.Format("15:04:05"), a.Severity, a.Kind, a.MMSI, a.Note)
		}
	case query.KindTrack:
		if res.Track == nil {
			log.Fatalf("vessel %d not found", req.MMSI)
		}
		s := res.Track
		status := "tentative"
		if s.Confirmed {
			status = "confirmed"
		}
		fmt.Printf("vessel %d track (%s, %d hits): %.5f,%.5f  %.1f kn @ %.0f°  at %s\n",
			s.MMSI, status, s.Hits, s.Lat, s.Lon, s.SpeedKn, s.CourseDeg, s.At.Format(time.RFC3339))
		fmt.Printf("  uncertainty ±%.0f m (ellipse %.0f×%.0f m @ %.0f°)\n",
			s.SigmaM, s.MajorM, s.MinorM, s.OrientDeg)
		for _, src := range sortedKeys(s.Sources) {
			fmt.Printf("  %d %s measurements\n", s.Sources[src], src)
		}
	case query.KindPredict:
		if res.Prediction == nil {
			log.Fatalf("vessel %d not found", req.MMSI)
		}
		p := res.Prediction
		fmt.Printf("vessel %d at %s (+%s from %s): %.5f,%.5f  (%s, ±%.0f m)\n",
			p.MMSI, p.At.Format(time.RFC3339), time.Duration(p.Horizon),
			p.From.Format("15:04:05"), p.Lat, p.Lon, p.Method, p.ConfidenceM)
	case query.KindQuality:
		if res.Quality == nil {
			log.Fatalf("vessel %d not found", req.MMSI)
		}
		q := res.Quality
		fmt.Printf("vessel %d reliability %.3f (lower bound %.3f): %d of %d messages flagged\n",
			q.MMSI, q.Reliability, q.LowerBound, q.Flagged, q.Checked)
		for _, rule := range sortedKeys(q.Issues) {
			fmt.Printf("  %-16s %d\n", rule, q.Issues[rule])
		}
	case query.KindAnomalies:
		if res.Anomalies == nil {
			log.Fatal("no anomaly report (is the daemon running, or the archive empty?)")
		}
		if req.MMSI != 0 {
			v := res.Anomalies.Vessel
			if v == nil {
				log.Fatalf("vessel %d not found", req.MMSI)
			}
			printVesselAnomaly(v)
			break
		}
		fmt.Printf("%d vessels by deviation score\n", len(res.Anomalies.Ranked))
		for i, v := range res.Anomalies.Ranked {
			fmt.Printf("%2d. vessel %-9d score %.3f (spd %.3f hdg %.3f pos %.3f)  %d gaps  %d samples\n",
				i+1, v.MMSI, v.Score, v.SpeedShift, v.HeadingShift, v.PositionShift,
				v.Gaps, v.Samples)
		}
	case query.KindStats:
		st := res.Stats
		fmt.Printf("%d points, %d vessels, %d live, %d alerts\n",
			st.Points, st.Vessels, st.Live, st.Alerts)
		for _, s := range st.Sources {
			fmt.Printf("  source %-8s %8d points  %6d vessels  %6d live  %6d alerts",
				s.Name, s.Points, s.Vessels, s.Live, s.Alerts)
			if s.EvictedVessels > 0 || s.ResidentPoints > 0 {
				fmt.Printf("  [tiered: %d resident points, %d vessels evicted]",
					s.ResidentPoints, s.EvictedVessels)
			}
			if s.Err != "" {
				fmt.Printf("  (degraded: %s)", s.Err)
			}
			fmt.Println()
		}
	}
	if res.Truncated {
		fmt.Printf("(truncated to -limit %d of %d)\n", req.Limit, res.Count)
	}
}

// printVesselAnomaly renders one vessel's full deviation report: the
// headline score, the per-dimension shifts behind it, the reporting-gap
// bookkeeping and the recent stop/move episode timeline.
func printVesselAnomaly(v *query.VesselAnomaly) {
	fmt.Printf("vessel %d deviation %.3f (speed %.3f, heading %.3f, position %.3f) over %d samples, at %s\n",
		v.MMSI, v.Score, v.SpeedShift, v.HeadingShift, v.PositionShift,
		v.Samples, v.At.Format(time.RFC3339))
	if v.Gaps > 0 && v.LastGap != nil {
		g := v.LastGap
		fmt.Printf("  %d reporting gaps; last %s → %s (%s dark)\n",
			v.Gaps, g.Start.Format("15:04:05"), g.End.Format("15:04:05"),
			time.Duration(g.Duration).Round(time.Second))
	}
	for _, e := range v.Episodes {
		fmt.Printf("  episode %-8s %s → %s  %8.4f,%9.4f  %4.1f kn\n",
			e.Activity, e.Start.Format("15:04:05"), e.End.Format("15:04:05"),
			e.Lat, e.Lon, e.AvgSpeedKn)
	}
	if e := v.Current; e != nil {
		fmt.Printf("  current %-8s since %s  %8.4f,%9.4f  %4.1f kn\n",
			e.Activity, e.Start.Format("15:04:05"), e.Lat, e.Lon, e.AvgSpeedKn)
	}
}

// sortedKeys returns a count map's keys in stable order for printing.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// renderDensity draws the situation's density surface the way va.Density
// renders it (north up, light-to-heavy ASCII ramp).
func renderDensity(sit *query.Situation) {
	ramp := []byte(" .:-=+*#%@")
	maxBin := 0
	for _, c := range sit.Density {
		if c > maxBin {
			maxBin = c
		}
	}
	for r := sit.Rows - 1; r >= 0; r-- {
		row := make([]byte, sit.Cols)
		for c := 0; c < sit.Cols; c++ {
			v := sit.Density[r*sit.Cols+c]
			if maxBin == 0 || v == 0 {
				row[c] = ramp[0]
				continue
			}
			idx := 1 + v*(len(ramp)-2)/maxBin
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			row[c] = ramp[idx]
		}
		fmt.Println(string(row))
	}
}

// writeArchive simulates traffic and writes a snapshot file (-write).
func writeArchive(path string, vessels, minutes int) {
	run, err := sim.Simulate(sim.Config{
		Seed: 1, NumVessels: vessels,
		Duration: time.Duration(minutes) * time.Minute, TickSec: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := tstore.New()
	for mmsi, pts := range run.Truth {
		for _, p := range pts {
			st.Append(model.VesselState{
				MMSI: mmsi, At: p.At, Pos: p.Pos,
				SpeedKn: p.SpeedKn, CourseDeg: p.CourseDeg,
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := st.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d points (%d vessels, %d bytes) to %s\n",
		st.Len(), st.VesselCount(), n, path)
}
