// Package maritime is the public facade of the library: a stable surface
// over the integrated maritime data integration and analysis
// infrastructure reproduced from Claramunt et al., "Maritime Data
// Integration and Analysis: Recent Progress and Research Challenges"
// (EDBT 2017).
//
// The facade re-exports the pieces an application composes:
//
//   - Pipeline — the Figure 2 infrastructure: ingest AIS, get quality
//     assessment, synopses, storage, event recognition, forecasting and
//     situation pictures (package internal/core).
//   - IngestEngine — the asynchronous, backpressure-aware sharded front
//     door over Pipeline for real AIS volumes (package internal/ingest).
//   - Simulator — the synthetic world standing in for live feeds
//     (package internal/sim).
//   - The AIS codec, geodesy primitives and analytic building blocks.
//
// # Building
//
// The module is self-contained (no external dependencies):
//
//	go build ./...
//	go test ./...
//	go test -race ./...   # the ingest engine is concurrent; keep it clean
//
// # Quick start (synchronous)
//
//	run, _ := maritime.Simulate(maritime.SimConfig{Seed: 1, NumVessels: 50, Duration: time.Hour})
//	p := maritime.NewPipeline(maritime.PipelineConfig{Zones: run.Config.World.Zones})
//	for i := range run.Positions {
//	    obs := &run.Positions[i]
//	    alerts := p.Ingest(obs.At, &obs.Report)
//	    for _, a := range alerts {
//	        fmt.Println(a)
//	    }
//	}
//
// # Sharded ingest (asynchronous)
//
// For multi-core scaling, feed the same stream through the ingest engine:
// reports are partitioned by MMSI across per-shard pipelines behind
// bounded queues (a saturated shard backpressures the submitter), batches
// amortise the pipeline lock, and alerts from all shards arrive merged on
// one channel:
//
//	e := maritime.NewIngestEngine(maritime.IngestConfig{
//	    Pipeline: maritime.PipelineConfig{Zones: run.Config.World.Zones},
//	    Shards:   8,
//	})
//	ctx := context.Background()
//	e.Start(ctx)
//	go func() {
//	    for i := range run.Positions {
//	        obs := &run.Positions[i]
//	        e.Ingest(ctx, obs.At, &obs.Report)
//	    }
//	    e.Close()
//	}()
//	for ev := range e.Alerts() { // closes once everything in flight drains
//	    fmt.Println(ev.Value)
//	}
//
// The engine produces the same alert multiset as the sequential Pipeline
// over the same input (per-vessel order is preserved end to end); see
// internal/ingest for the dataflow details and cmd/maritimed for a
// complete NMEA-to-alerts daemon built on it.
//
// # Persistence (durable archive)
//
// By default everything is in-memory. To make the archive survive
// restarts, open an archive directory and hand its backend to the
// engine: archived records stream through an asynchronous flush stage
// into a segmented, CRC32C-checksummed write-ahead log that is
// periodically compacted into snapshots. On the next start, OpenArchive
// recovers the persisted state (snapshot + WAL tail, truncating torn
// trailing writes at the last valid record) and Resume seeds the engine
// with it:
//
//	arch, err := maritime.OpenArchive(maritime.StoreConfig{Dir: "/var/lib/maritimed"})
//	if err != nil { ... }
//	e := maritime.NewIngestEngine(maritime.IngestConfig{
//	    Pipeline: maritime.PipelineConfig{Zones: run.Config.World.Zones},
//	    Backend:  arch.Backend, // async batched flush; queue bound + fsync policy in Flush
//	})
//	fmt.Printf("recovered %d records\n", e.Resume(arch.Store))
//	e.Start(ctx)
//	// ... feed it, drain Alerts ...
//	e.Wait()     // flush queue drained, backend synced
//	arch.Close() // archive is durable
//
// The same Backend interface has an in-memory implementation (NewMem)
// for tests, and any store can attach a flush stage directly via
// Store.Attach — see internal/store for the subsystem and cmd/maritimed
// (-data-dir) for the resume-on-restart daemon built on it.
//
// # Tiered storage (archives that exceed RAM)
//
// With a memory budget, the in-memory archive becomes a cache over the
// durable store: an eviction manager watches per-vessel heat (last
// append or read) and, past the budget, evicts the coldest vessels down
// to compact stubs — chunk directory, newest sample, counts — spilling
// their history as immutable objects. Every query kind keeps working
// over a partially evicted archive; reads page back only the chunks
// their window and box reach, singleflighted and block-cached:
//
//	objects, _ := maritime.NewFSObjects("/var/lib/maritimed-tier") // or any ObjectStore
//	e := maritime.NewIngestEngine(maritime.IngestConfig{
//	    Pipeline:     maritime.PipelineConfig{Zones: run.Config.World.Zones},
//	    Backend:      arch.Backend,       // durability (WAL) as before
//	    MemoryBudget: 256 << 20,          // resident points capped at ~256 MiB
//	    TierObjects:  objects,            // evicted chunks spill here
//	})
//	// ... ingest 4× the budget; queries stay exact throughout ...
//	fmt.Printf("%+v\n", e.TierStats())   // resident vs evicted, page-ins, spill volume
//
// The same ObjectStore can back the WAL itself (StoreConfig.Remote):
// sealed segments and snapshots migrate off local disk on seal, with the
// local copy deleted only after the upload is confirmed — a crash
// between seal and upload re-uploads on the next OpenArchive. maritimed
// wires both with -mem-budget and -remote-dir.
//
// # Querying (unified read surface)
//
// Every read — trajectory retrieval, space–time range, nearest vessel,
// the live picture, situation assembly, alert history, store stats —
// goes through one typed request against a QueryEngine. The ingest
// engine exposes its shards directly:
//
//	res, err := e.Query(maritime.QueryRequest{
//	    Kind: maritime.QuerySpaceTime,
//	    Box:  &maritime.QueryBox{MinLat: 42, MinLon: 4, MaxLat: 44, MaxLon: 9},
//	    From: t0, To: t1,
//	})
//	for _, s := range res.States { fmt.Println(s.MMSI, s.At, s.Lat, s.Lon) }
//
// To answer from a durable archive too — one query surface over the
// running picture plus everything recovered from disk, merged and
// deduplicated on (MMSI, timestamp) — compose sources explicitly:
//
//	arch, _ := maritime.OpenArchiveReadOnly(maritime.StoreConfig{Dir: dir})
//	qe := maritime.NewQueryEngine(
//	    maritime.NewLiveQuerySource(e.Sharded()),
//	    maritime.NewStoreQuerySource("archive", arch.Store),
//	)
//	res, _ := qe.Query(maritime.QueryRequest{Kind: maritime.QueryTrajectory, MMSI: 235098765})
//
// The same surface serves over HTTP (cmd/maritimed -http): POST a
// QueryRequest to /v1/query — or use the per-kind GET routes — and a
// QueryClient is a drop-in remote Executor:
//
//	c := maritime.NewQueryClient("localhost:8080")
//	res, _ := c.Query(maritime.QueryRequest{Kind: maritime.QueryStats})
//
// Results have a stable JSON encoding, so the HTTP answer and a locally
// marshalled in-process answer are byte-identical; cmd/msaquery is the
// CLI form of this client. One-shot client calls take a context
// (QueryContext) and retry transient connection errors with exponential
// backoff (Client.Retry).
//
// # Subscriptions (standing queries)
//
// Every streamable request kind also runs as a standing query: the same
// typed QueryRequest, subscribed instead of executed, delivers its
// incremental results as they happen — a spacetime box watch, a
// per-vessel follow, an alert feed or a periodically assembled situation
// ticker. The ingest engine publishes every record that reaches the
// archive (and every alert) to bounded per-subscriber queues; a slow
// consumer drops updates (counted, surfaced in QueryHub metrics and on
// the subscription), never blocking ingest:
//
//	sub, _ := e.Subscribe(maritime.QueryRequest{
//	    Kind: maritime.QuerySpaceTime,
//	    Box:  &maritime.QueryBox{MinLat: 42, MinLon: 4, MaxLat: 44, MaxLon: 9},
//	}, maritime.QuerySubOptions{})
//	for u := range sub.Updates() {
//	    fmt.Println(u.Seq, u.State.MMSI, u.State.Lat, u.State.Lon)
//	}
//
// Remotely the same subscription rides /v1/stream as NDJSON (maritimed
// -http serves it): QueryClient.Subscribe is the remote twin, with
// heartbeats absorbed into transport bookkeeping and automatic
// resume-from-sequence when the connection blips. cmd/msaquery -watch /
// -follow are the CLI forms.
//
// # Federation (daemons as sources)
//
// A QueryClient is itself a QuerySource, so a remote daemon's picture
// composes into a local engine like any store — merged and deduplicated
// on (MMSI, timestamp), one hop deep (peers answer locally, so
// mutually-peered daemons cannot loop), and degraded rather than fatal
// when the peer is down (the error surfaces in stats):
//
//	peer := maritime.NewQueryClient("peer-a:8080") // also a QuerySource
//	qe := maritime.NewQueryEngine(maritime.NewLiveQuerySource(e.Sharded()), peer)
//
// maritimed -peer URL wires exactly this into a running daemon.
//
// # Track intelligence (fusion, forecasting, integrity)
//
// Three more query kinds answer per-vessel inference: track (the fused
// Kalman state with its covariance error ellipse), predict (position at
// t+Δ with a confidence envelope; learned route prior with
// dead-reckoning fallback) and quality (a Beta-Bernoulli data-integrity
// score with per-rule issue counts). With IngestConfig.Track set, an
// online stage in each shard's dataflow maintains that state
// incrementally — and fuses identity-less radar contacts into it via
// IngestEngine.IngestDetections; without it, the engine derives the
// same answers by replaying the archived trajectory, so the kinds work
// against any source (and byte-identically across tiering eviction):
//
//	e := maritime.NewIngestEngine(maritime.IngestConfig{
//	    Pipeline: maritime.PipelineConfig{Zones: run.Config.World.Zones},
//	    Track:    &maritime.TrackConfig{}, // online stage on (zero value = defaults)
//	})
//	// ... ingest ...
//	res, _ := e.Query(maritime.QueryRequest{
//	    Kind: maritime.QueryPredict, MMSI: 235098765,
//	    Horizon: maritime.QueryDuration(15 * time.Minute),
//	})
//	fmt.Println(res.Prediction.Lat, res.Prediction.Lon, res.Prediction.Method)
//
// Subscribed instead of executed, the same kinds become tickers: a
// predict subscription pushes a fresh dead-reckoned (or route-model)
// fix every tick, showing expected motion between AIS reports. msaquery
// -track / -predict / -quality are the CLI forms (-watch predict for
// the ticker).
//
// # Anomaly detection (behavior profiles, episodes, open-world CEP)
//
// The anomalies query kind scores each vessel against its own history: a
// sliding-window distribution shift over speed, heading and position
// (0 = behaving like itself), reporting-gap bookkeeping and the vessel's
// recent stop/move episodes. With IngestConfig.Anomaly set, a streaming
// stage maintains the profiles online, materialises each episode into a
// semantic store the moment it closes, and continuously matches
// reporting gaps across vessels for physically feasible covert meetings
// (possible-rendezvous alerts join the engine's alert stream); without
// it, the engine replays the archived trajectory through the same fold,
// so answers are byte-identical either way:
//
//	sem := maritime.NewSemanticStore()
//	e := maritime.NewIngestEngine(maritime.IngestConfig{
//	    Pipeline: maritime.PipelineConfig{Zones: world.Zones},
//	    Anomaly:  &maritime.AnomalyConfig{Semantic: sem, Zones: world.Zones},
//	})
//	// ... ingest ...
//	res, _ := e.Query(maritime.QueryRequest{Kind: maritime.QueryAnomalies, Limit: 10})
//	for _, v := range res.Anomalies.Ranked {
//	    fmt.Println(v.MMSI, v.Score, v.Gaps)
//	}
//
// Subscribed (QueryAnomalies with no MMSI, or per-vessel with one), the
// kind becomes a ticker: a ranked deviation board or one vessel's score
// pushed every tick. msaquery -anomalies / -watch anomalies are the CLI
// forms; maritimed -anomaly turns the stage on in the daemon.
package maritime

import (
	"context"
	"time"

	"repro/internal/ais"
	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/semstore"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/synopsis"
	"repro/internal/tier"
	"repro/internal/track"
	"repro/internal/tstore"
	"repro/internal/va"
	"repro/internal/zones"
)

// Geodesy.
type (
	// Point is a geographic position in degrees.
	Point = geo.Point
	// Rect is a geographic bounding box.
	Rect = geo.Rect
	// Velocity is speed and course over ground.
	Velocity = geo.Velocity
)

// AIS wire format.
type (
	// PositionReport is a decoded AIS position message (types 1–3, 18).
	PositionReport = ais.PositionReport
	// StaticVoyage is a decoded AIS type 5 message.
	StaticVoyage = ais.StaticVoyage
	// AISDecoder assembles and decodes NMEA AIVDM sentences.
	AISDecoder = ais.Decoder
)

// NewAISDecoder returns a decoder for an NMEA sentence stream.
func NewAISDecoder() *AISDecoder { return ais.NewDecoder() }

// Pipeline: the paper's Figure 2 infrastructure.
type (
	// Pipeline is the integrated processing pipeline.
	Pipeline = core.Pipeline
	// PipelineConfig parameterises a pipeline.
	PipelineConfig = core.Config
	// ShardedPipeline scales ingest across cores by fleet sharding.
	ShardedPipeline = core.Sharded
	// Alert is one recognised event.
	Alert = events.Alert
)

// NewPipeline builds the integrated pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline { return core.New(cfg) }

// NewShardedPipeline builds an n-way sharded pipeline.
func NewShardedPipeline(cfg PipelineConfig, n int) *ShardedPipeline { return core.NewSharded(cfg, n) }

// Asynchronous ingest: the backpressure-aware sharded dataflow.
type (
	// IngestEngine is the async front door: decode workers → partition by
	// MMSI → per-shard batched pipelines → merged alerts.
	IngestEngine = ingest.Engine
	// IngestConfig parameterises the engine (shards, buffers, batch size).
	IngestConfig = ingest.Config
	// IngestLine is one raw NMEA sentence with its receive timestamp, the
	// input unit of the engine's decode front-end.
	IngestLine = ingest.Line
	// TimedReport pairs a position report with its receive time — the unit
	// of batched ingest (Pipeline.IngestBatch, ShardedPipeline.IngestBatch).
	TimedReport = core.TimedReport
)

// NewIngestEngine builds the async sharded ingest engine (call Start, then
// Ingest or StartLines; drain Alerts until it closes).
func NewIngestEngine(cfg IngestConfig) *IngestEngine { return ingest.New(cfg) }

// Simulation: the synthetic maritime world.
type (
	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimRun is a completed simulation with streams and ground truth.
	SimRun = sim.Run
	// World is the static stage (ports, routes, zones, stations).
	World = sim.World
)

// Simulate executes a scenario.
func Simulate(cfg SimConfig) (*SimRun, error) { return sim.Simulate(cfg) }

// MediterraneanWorld builds the default regional stage.
func MediterraneanWorld(seed int64) *World { return sim.MediterraneanWorld(seed) }

// GlobalWorld builds the planetary stage of Figure 1.
func GlobalWorld(seed int64) *World { return sim.GlobalWorld(seed) }

// Storage.
type (
	// Store is the trajectory archive.
	Store = tstore.Store
	// Live is the current-picture layer.
	Live = tstore.Live
	// Trajectory is a vessel's time-ordered state sequence.
	Trajectory = model.Trajectory
	// VesselState is one timestamped kinematic sample.
	VesselState = model.VesselState
	// StoreSink receives appended records — the hook persistence attaches
	// to (Store.Attach / Live.Attach).
	StoreSink = tstore.Sink
)

// NewStore returns an empty trajectory archive.
func NewStore() *Store { return tstore.New() }

// Persistence: the durable archive subsystem (segmented WAL + snapshots).
type (
	// StoreBackend is the pluggable persistence target for vessel states.
	StoreBackend = store.Backend
	// StoreConfig parameterises an on-disk archive (directory, segment
	// cap, fsync policy, compaction cadence).
	StoreConfig = store.Config
	// SyncPolicy selects when the disk backend fsyncs.
	SyncPolicy = store.SyncPolicy
	// Archive is an opened on-disk archive: recovered store + backend.
	Archive = store.Archive
	// RecoverStats describes what OpenArchive found on disk.
	RecoverStats = store.RecoverStats
	// DiskBackend is the durable WAL+snapshot backend.
	DiskBackend = store.Disk
	// MemBackend is the in-memory backend (tests, ephemeral runs).
	MemBackend = store.Mem
	// FlushConfig parameterises the asynchronous flush stage between an
	// ingesting store and a backend.
	FlushConfig = store.FlushConfig
	// Flusher is the asynchronous flush stage; it implements StoreSink.
	Flusher = store.Flusher
)

// Tiered storage: the exceeding-RAM layer — an object store cold bytes
// migrate to, and an eviction manager that keeps the in-memory archive
// inside a budget (package internal/store + internal/tier).
type (
	// ObjectStore is the minimal immutable-blob interface sealed WAL
	// segments, snapshots and evicted trajectory chunks migrate to
	// (atomic Put, immutable objects, prefix List).
	ObjectStore = store.ObjectStore
	// FSObjectStore is the local-filesystem ObjectStore reference
	// implementation (atomic write-temp + rename Puts).
	FSObjectStore = store.FSObjects
	// BlockCache is the byte-bounded, singleflight read cache object
	// fetches go through.
	BlockCache = store.BlockCache
	// TierManager evicts the coldest vessels down to compact stubs when
	// the resident archive exceeds its memory budget; reads page them
	// back transparently.
	TierManager = tier.Manager
	// TierConfig parameterises a TierManager (budget, check cadence,
	// spill object store).
	TierConfig = tier.Config
	// TierStats snapshots the tiered archive: resident vs evicted points
	// and vessels, evictions, page-ins, spill volume, cache behaviour.
	TierStats = tier.Stats
	// TierChunkStore spills evicted runs as immutable objects and pages
	// them back through a block cache; it implements StoreChunkStore.
	TierChunkStore = tier.ChunkStore
	// StoreChunkStore is the paging hook a trajectory Store evicts
	// through (tstore.ChunkStore).
	StoreChunkStore = tstore.ChunkStore
)

// NewFSObjects opens (creating if needed) a filesystem object store
// rooted at dir, with fully durable Puts — the store migrated WAL
// segments and snapshots require.
func NewFSObjects(dir string) (*FSObjectStore, error) { return store.NewFSObjects(dir) }

// NewFSObjectsCache is NewFSObjects without fsync: fit for paging
// caches like tier spill chunks (reconstructable after a crash), unfit
// for WAL migration.
func NewFSObjectsCache(dir string) (*FSObjectStore, error) { return store.NewFSObjectsCache(dir) }

// NewTierManager builds the eviction manager over one or more trajectory
// stores, attaches its spill store to them, garbage-collects stale spill
// objects and starts the budget loop. The ingest engine wires this up
// itself from IngestConfig.MemoryBudget/TierObjects; use this directly
// only when composing stores by hand.
func NewTierManager(cfg TierConfig, stores ...*Store) (*TierManager, error) {
	return tier.NewManager(cfg, stores...)
}

// Fsync policies for StoreConfig.Sync.
const (
	SyncRotate = store.SyncRotate
	SyncAlways = store.SyncAlways
	SyncNever  = store.SyncNever
)

// OpenArchive opens (creating if needed) an archive directory and
// recovers the persisted state: newest snapshot plus WAL tail, with torn
// trailing records truncated at the last valid record. The directory is
// flock-protected: a second concurrent writer fails fast.
func OpenArchive(cfg StoreConfig) (*Archive, error) { return store.Open(cfg) }

// OpenArchiveReadOnly recovers the persisted state without mutating the
// directory or taking the writer lock — safe against a directory a live
// daemon owns (replay stops at the writer's in-flight tail).
func OpenArchiveReadOnly(cfg StoreConfig) (*Archive, error) { return store.OpenReadOnly(cfg) }

// NewMem returns an in-memory storage backend.
func NewMem() *MemBackend { return store.NewMem() }

// NewFlusher starts an asynchronous flush stage over a backend; attach
// it to a Store (or Live) to persist its appends without putting disk
// latency on the ingest path.
func NewFlusher(b StoreBackend, cfg FlushConfig) *Flusher { return store.NewFlusher(b, cfg) }

// Unified query surface: one typed read API over live + archive,
// servable over HTTP (package internal/query).
type (
	// QueryRequest is one typed read (kind + kind-specific fields).
	QueryRequest = query.Request
	// QueryResult is the answer, with a stable JSON encoding.
	QueryResult = query.Result
	// QueryEngine executes requests against one or more sources, merging
	// and deduplicating on (MMSI, timestamp).
	QueryEngine = query.Engine
	// QuerySource is one store an engine answers from; implement it to
	// plug a new backend into the whole read surface.
	QuerySource = query.Source
	// QueryKind selects what a request retrieves.
	QueryKind = query.Kind
	// QueryBox is the wire form of a bounding box (validated).
	QueryBox = query.Box
	// QueryServer serves the surface over HTTP (/v1/query + GET routes +
	// /v1/stream standing queries).
	QueryServer = query.Server
	// QueryClient answers requests by calling a remote QueryServer; it is
	// also a QuerySource (federation member) and a QuerySubscriber.
	QueryClient = query.Client
	// QueryExecutor is anything that answers a QueryRequest: an engine,
	// an ingest engine, or a client.
	QueryExecutor = query.Executor
	// QueryRetryPolicy is the client's backoff over transient transport
	// errors.
	QueryRetryPolicy = query.RetryPolicy

	// QuerySubscription is one standing query: read Updates until closed.
	QuerySubscription = query.Subscription
	// QueryUpdate is one pushed increment of a standing query.
	QueryUpdate = query.Update
	// QueryUpdateKind discriminates a pushed update's payload.
	QueryUpdateKind = query.UpdateKind
	// QuerySubOptions tunes a subscription (queue bound, resume sequence,
	// heartbeat and situation-tick cadence).
	QuerySubOptions = query.SubOptions
	// QuerySubscriber turns requests into standing queries: the ingest
	// engine, a QueryHub/Streamer, or a QueryClient.
	QuerySubscriber = query.Subscriber
	// QueryHub is the publish/subscribe core: bounded per-subscriber
	// queues, slow-consumer drop accounting, replay ring for resume.
	QueryHub = query.Hub
	// QueryHubConfig parameterises a hub.
	QueryHubConfig = query.HubConfig
	// QueryStreamRequest is the wire form of a /v1/stream subscription.
	QueryStreamRequest = query.StreamRequest
	// QueryPeerSource is a source backed by another daemon; engines skip
	// peers on Local requests (the one-hop federation guard).
	QueryPeerSource = query.PeerSource
)

// The update kinds a subscription delivers.
const (
	QueryUpdateState     = query.UpdateState
	QueryUpdateAlert     = query.UpdateAlert
	QueryUpdateSituation = query.UpdateSituation
	QueryUpdateHeartbeat = query.UpdateHeartbeat
	QueryUpdateTrack     = query.UpdateTrack
	QueryUpdatePredict   = query.UpdatePredict
	QueryUpdateQuality   = query.UpdateQuality
	QueryUpdateAnomalies = query.UpdateAnomalies
)

// The query kinds.
const (
	QueryTrajectory   = query.KindTrajectory
	QuerySpaceTime    = query.KindSpaceTime
	QueryNearest      = query.KindNearest
	QueryLivePicture  = query.KindLivePicture
	QuerySituation    = query.KindSituation
	QueryAlertHistory = query.KindAlertHistory
	QueryStats        = query.KindStats
	QueryTrack        = query.KindTrack
	QueryPredict      = query.KindPredict
	QueryQuality      = query.KindQuality
	QueryAnomalies    = query.KindAnomalies
)

// NewQueryEngine builds a query engine over the given sources.
func NewQueryEngine(sources ...QuerySource) *QueryEngine { return query.NewEngine(sources...) }

// NewLiveQuerySource exposes a sharded pipeline as a query source
// (cross-shard fan-out with consistent per-shard snapshots).
func NewLiveQuerySource(s *ShardedPipeline) QuerySource { return query.NewLiveSource(s) }

// NewStoreQuerySource exposes a trajectory archive as a query source.
func NewStoreQuerySource(name string, st *Store) QuerySource { return query.NewStoreSource(name, st) }

// NewQueryServer builds the HTTP handler serving an executor. When the
// executor also implements QuerySubscriber (the ingest engine does),
// /v1/stream serves standing queries over it.
func NewQueryServer(exec QueryExecutor) *QueryServer { return query.NewServer(exec) }

// NewQueryClient builds a client for a running query server
// ("host:port" or a full URL). The client is a remote QueryExecutor, a
// remote QuerySubscriber (Subscribe over /v1/stream with automatic
// resume) and a QuerySource federation member (maritimed -peer).
func NewQueryClient(base string) *QueryClient { return query.NewClient(base) }

// NewQueryHub builds a standalone publish/subscribe hub (the ingest
// engine owns one already — Engine.Hub / Engine.Subscribe).
func NewQueryHub(cfg QueryHubConfig) *QueryHub { return query.NewHub(cfg) }

// ParseQueryBox parses and validates "minLat,minLon,maxLat,maxLon".
func ParseQueryBox(s string) (QueryBox, error) { return query.ParseBox(s) }

// Track intelligence: online per-vessel fusion, forecasting and
// integrity scoring behind the track/predict/quality query kinds
// (packages internal/track and internal/query).
type (
	// QueryDuration is a JSON-friendly duration ("15m") used by
	// QueryRequest.Horizon and the prediction wire form.
	QueryDuration = query.Duration
	// TrackState is a vessel's fused Kalman state with its covariance
	// error ellipse — the track kind's answer.
	TrackState = query.TrackState
	// Prediction is a position forecast with a confidence envelope — the
	// predict kind's answer.
	Prediction = query.Prediction
	// QualityScore is a vessel's data-integrity profile — the quality
	// kind's answer.
	QualityScore = query.QualityScore
	// TrackConfig parameterises the online track stage; assign a
	// (possibly zero) value to IngestConfig.Track to enable it.
	TrackConfig = track.Config
	// Detection is one identity-less sensor measurement (radar contact)
	// for IngestEngine.IngestDetections.
	Detection = track.Detection
	// TrackStages is the sharded online tracker, readable directly.
	TrackStages = track.Stages
)

// Streaming anomaly lane: online behavior profiles, incremental
// stop/move episode extraction and continuous open-world CEP behind the
// anomalies query kind (packages internal/anomaly, internal/query and
// internal/semstore).
type (
	// AnomalyConfig parameterises the streaming anomaly lane; assign a
	// (possibly zero) value to IngestConfig.Anomaly to enable it.
	AnomalyConfig = anomaly.Config
	// AnomalyStages is the sharded online anomaly stage, readable
	// directly (IngestEngine.Anomalies).
	AnomalyStages = anomaly.Stages
	// VesselAnomaly is one vessel's deviation report — distribution
	// shift against its own history, reporting gaps, recent episodes.
	VesselAnomaly = query.VesselAnomaly
	// AnomalyReport is the anomalies kind's answer (per-vessel or
	// fleet-ranked).
	AnomalyReport = query.AnomalyReport
	// AnomalyEpisode is the wire form of one stop/move episode.
	AnomalyEpisode = query.EpisodeInfo
	// AnomalyGap is the wire form of one reporting gap.
	AnomalyGap = query.GapInfo
	// SemanticStore is the triple store incrementally closed episodes
	// materialise into (AnomalyConfig.Semantic).
	SemanticStore = semstore.Store
)

// NewSemanticStore returns an empty semantic triple store.
func NewSemanticStore() *SemanticStore { return semstore.NewStore() }

// Observability: the unified metrics registry and per-request trace
// (package internal/obs). Hand an ObsRegistry to IngestConfig.Obs and
// every stage of the dataflow — ingest, store, tier, query, hub —
// reports through it; QueryServer.ServeMetrics exposes it as GET
// /metrics (Prometheus text) and GET /debug/vars (JSON).
type (
	// ObsRegistry holds named metrics and renders them for scraping.
	ObsRegistry = obs.Registry
	// ObsCounter is a monotonically increasing metric.
	ObsCounter = obs.Counter
	// ObsGauge is a metric that can go up and down.
	ObsGauge = obs.Gauge
	// ObsHistogram is a lock-free bounded-bucket latency histogram with
	// p50/p90/p99 snapshots.
	ObsHistogram = obs.Histogram
	// ObsHistSnapshot is a point-in-time histogram summary.
	ObsHistSnapshot = obs.HistSnapshot
	// ObsTrace records named stage spans for one request; carry it with
	// WithObsTrace and the query engine fills it in.
	ObsTrace = obs.Trace
	// ObsSpan is one recorded stage of a trace.
	ObsSpan = obs.Span
	// QueryTraceSpan is the wire form of one stage span on QueryResult
	// (populated when QueryRequest.Trace is set).
	QueryTraceSpan = query.TraceSpan
	// ObsFlight is the always-on black-box flight recorder: a fixed-size
	// ring of structured events every layer writes its load-bearing
	// transitions into. Assign one to IngestConfig.Flight and serve it
	// with QueryServer.ServeFlight (GET /debug/flight).
	ObsFlight = obs.Flight
	// ObsFlightEvent is one recorded flight transition.
	ObsFlightEvent = obs.FlightEvent
	// ObsFlightFilter selects flight events for dumps and scrapes.
	ObsFlightFilter = obs.FlightFilter
	// ObsHealth aggregates per-layer readiness checks into the /readyz
	// verdict (QueryServer.ServeHealth; IngestEngine.Health builds one
	// over a running engine).
	ObsHealth = obs.Health
	// ObsHealthVerdict is one readiness evaluation with per-check detail.
	ObsHealthVerdict = obs.HealthVerdict
	// IngestHealthOptions tunes IngestEngine.Health's thresholds.
	IngestHealthOptions = ingest.HealthOptions
)

// NewObsFlight builds a flight recorder ring of at least size events
// (rounded up to a power of two; default 1024 when size <= 0).
func NewObsFlight(size int) *ObsFlight { return obs.NewFlight(size) }

// RegisterObsBuildInfo exports the binary's build identity
// (maritime_build_info{revision,go}) and process uptime on reg,
// returning the identity for startup logging.
func RegisterObsBuildInfo(reg *ObsRegistry, start time.Time) (revision, goVersion string) {
	return obs.RegisterBuildInfo(reg, start)
}

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsTrace starts an empty per-request trace.
func NewObsTrace() *ObsTrace { return obs.NewTrace() }

// WithObsTrace attaches a trace to a context; QueryEngine.QueryContext
// records its stage spans into it.
func WithObsTrace(ctx context.Context, tr *ObsTrace) context.Context { return obs.WithTrace(ctx, tr) }

// ObsTraceFromContext returns the trace carried by ctx, or nil.
func ObsTraceFromContext(ctx context.Context) *ObsTrace { return obs.FromContext(ctx) }

// Forecasting.
type (
	// Predictor forecasts future vessel positions.
	Predictor = forecast.Predictor
	// RouteModel is the patterns-of-life predictor.
	RouteModel = forecast.RouteModel
)

// NewRouteModel returns an untrained patterns-of-life model.
func NewRouteModel(cellDeg float64) *RouteModel { return forecast.NewRouteModel(cellDeg) }

// Synopses.
type (
	// Compressor reduces trajectories to critical points.
	Compressor = synopsis.Compressor
	// CompressionReport quantifies a compression outcome.
	CompressionReport = synopsis.Report
)

// Zones.
type (
	// Zone is a named geographic context area.
	Zone = zones.Zone
	// ZoneSet is a queryable zone collection.
	ZoneSet = zones.ZoneSet
)

// Visual analytics.
type (
	// Situation is a computed operational picture.
	Situation = va.Situation
	// Density is a spatial histogram surface.
	Density = va.Density
)
