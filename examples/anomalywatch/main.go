// Command anomalywatch runs the §3.1 early-warning scenario: a fleet with
// injected suspicious behaviours (go-dark, spoofing, rendezvous,
// loitering, protected-area fishing) flows through the pipeline, and the
// detector output is scored live against the simulator's ground truth —
// the E8 experiment as an interactive demonstration.
package main

import (
	"fmt"
	"log"
	"time"

	maritime "repro"
	"repro/internal/events"
	"repro/internal/sim"
)

func main() {
	cfg := maritime.SimConfig{
		Seed:       7,
		NumVessels: 150,
		Duration:   3 * time.Hour,
	}
	cfg.DefaultAnomalyRates()
	run, err := maritime.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	byKind := map[sim.EventKind]int{}
	for _, e := range run.Events {
		byKind[e.Kind]++
	}
	fmt.Println("injected anomalies (ground truth):")
	for k, n := range byKind {
		fmt.Printf("  %-18s %d\n", k, n)
	}

	p := maritime.NewPipeline(maritime.PipelineConfig{
		Zones:         run.Config.World.Zones,
		DarkThreshold: 25 * time.Minute,
	})
	start := time.Now()
	for i := range run.Positions {
		obs := &run.Positions[i]
		for _, a := range p.Ingest(obs.At, &obs.Report) {
			if a.Severity >= 3 {
				fmt.Printf("  ALERT %s\n", a)
			}
		}
	}
	elapsed := time.Since(start)

	// Score each detector against the injected truth.
	var truths []events.TruthWindow
	for _, e := range run.Events {
		truths = append(truths, events.TruthWindow{
			Kind: events.Kind(e.Kind), MMSI: e.MMSI, Other: e.Other,
			Start: e.Start, End: e.End,
		})
	}
	fmt.Printf("\nprocessed %d reports in %v (%.0f msg/s)\n",
		len(run.Positions), elapsed.Round(time.Millisecond),
		float64(len(run.Positions))/elapsed.Seconds())
	fmt.Println("\ndetector scorecard (vs injected truth):")
	fmt.Printf("  %-18s %6s %6s %10s %7s %7s\n", "kind", "truth", "alerts", "latency", "prec", "recall")
	for _, kind := range []events.Kind{
		events.KindDark, events.KindTeleport, events.KindIdentity,
		events.KindRendezvous, events.KindLoiter, events.KindDrift,
		events.KindZoneViolation,
	} {
		r := events.Score(kind, p.Alerts(), truths, 5*time.Minute)
		if r.Truth == 0 && r.Alerts == 0 {
			continue
		}
		fmt.Printf("  %-18s %6d %6d %10s %6.0f%% %6.0f%%\n",
			kind, r.Truth, r.Alerts, r.MeanLatency.Round(time.Second),
			r.Precision*100, r.Recall*100)
	}
}
