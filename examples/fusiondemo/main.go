// Command fusiondemo reproduces the §2.4 multi-source story: coastal
// radar contacts (anonymous, noisy) are fused with AIS reports
// (identified, accurate) into a single track picture, and two conflicting
// vessel registers are reconciled with reliability weighting — the E6
// experiment as a walkthrough.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	maritime "repro"
	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/registry"
)

func main() {
	cfg := maritime.SimConfig{
		Seed:        21,
		NumVessels:  60,
		Duration:    time.Hour,
		RadarRangeM: 60000,
		NumRadar:    4,
	}
	run, err := maritime.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AIS reports: %d, radar contacts: %d\n", len(run.Positions), len(run.Radar))

	// Interleave AIS and radar into scans and track them together.
	tracker := fusion.NewTracker(fusion.DefaultTrackerConfig())
	type timed struct {
		at    time.Time
		m     fusion.Measurement
		truth uint32
	}
	var feed []timed
	for _, o := range run.Positions {
		feed = append(feed, timed{at: o.At, truth: o.TrueMMSI, m: fusion.Measurement{
			At: o.At, Pos: o.Report.Position, SigmaM: 10,
			Identity: o.Report.MMSI, Source: "ais",
		}})
	}
	for _, c := range run.Radar {
		feed = append(feed, timed{at: c.At, truth: c.TrueMMSI, m: fusion.Measurement{
			At: c.At, Pos: c.Pos, SigmaM: 120, Source: "radar",
		}})
	}
	// Sort by time and process in 10-second scans.
	for i := 1; i < len(feed); i++ {
		for j := i; j > 0 && feed[j].at.Before(feed[j-1].at); j-- {
			feed[j], feed[j-1] = feed[j-1], feed[j]
		}
	}
	var batch []fusion.Measurement
	var batchStart time.Time
	correct, radarTotal := 0, 0
	truthOf := map[int]uint32{} // measurement index in batch -> truth
	flush := func(at time.Time) {
		if len(batch) == 0 {
			return
		}
		tracker.Process(at, batch)
		// Score anonymous (radar) measurements: did they land on a track
		// already bound to their true identity?
		for idx, m := range batch {
			if m.Identity != 0 {
				continue
			}
			radarTotal++
			want := truthOf[idx]
			for _, tr := range tracker.Tracks {
				if tr.Identity == want &&
					geo.Distance(tr.Filter.Position(), m.Pos) < 500 {
					correct++
					break
				}
			}
		}
		batch = batch[:0]
		truthOf = map[int]uint32{}
	}
	for _, f := range feed {
		if batchStart.IsZero() || f.at.Sub(batchStart) > 10*time.Second {
			flush(f.at)
			batchStart = f.at
		}
		truthOf[len(batch)] = f.truth
		batch = append(batch, f.m)
	}
	flush(batchStart)

	confirmed := tracker.ConfirmedTracks()
	multi := 0
	for _, tr := range confirmed {
		if len(tr.Sources) > 1 {
			multi++
		}
	}
	fmt.Printf("confirmed tracks: %d (%d fused from both sensors)\n", len(confirmed), multi)
	if radarTotal > 0 {
		fmt.Printf("radar contacts landing on the correct identified track: %.0f%%\n",
			100*float64(correct)/float64(radarTotal))
	}

	// Register reconciliation with reliability weighting (§4).
	rng := rand.New(rand.NewSource(5))
	truth, ra, rb := registry.SyntheticPair(rng, 400, 0.02, 0.30)
	conflicts := registry.FindConflicts(ra, rb)
	fmt.Printf("\nregister conflicts between %s and %s: %d (e.g. %s)\n",
		ra.Provider, rb.Provider, len(conflicts), conflicts[0])

	resolve := func(rv *registry.Resolver) float64 {
		resolved := map[uint32]*registry.Record{}
		for _, mmsi := range ra.MMSIs() {
			recs := map[string]*registry.Record{"A": ra.Get(mmsi), "B": rb.Get(mmsi)}
			resolved[mmsi] = rv.Resolve(recs)
		}
		return registry.ResolutionAccuracy(truth, resolved)
	}
	uniform := registry.NewResolver()
	weighted := registry.NewResolver()
	weighted.Reliability["A"] = 0.95
	weighted.Reliability["B"] = 0.40
	fmt.Printf("resolution accuracy: uniform=%.1f%% reliability-weighted=%.1f%%\n",
		resolve(uniform)*100, resolve(weighted)*100)
}
