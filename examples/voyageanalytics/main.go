// Command voyageanalytics is the archive-side (§2.3 + §3.2) walkthrough:
// store a day of traffic in the moving-object store, compute semantic
// trajectory episodes, run spatio-temporal queries, and build the
// multi-scale density and port-to-port flow pictures.
package main

import (
	"fmt"
	"log"
	"time"

	maritime "repro"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/semstore"
	"repro/internal/va"
)

func main() {
	run, err := maritime.Simulate(maritime.SimConfig{
		Seed: 17, NumVessels: 150, Duration: 6 * time.Hour, TickSec: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	world := run.Config.World

	// 1. Archive everything.
	store := maritime.NewStore()
	for mmsi, pts := range run.Truth {
		for _, p := range pts {
			store.Append(model.VesselState{
				MMSI: mmsi, At: p.At, Pos: p.Pos, SpeedKn: p.SpeedKn, CourseDeg: p.CourseDeg,
			})
		}
	}
	fmt.Printf("archived %d points for %d vessels\n", store.Len(), store.VesselCount())

	// 2. Spatio-temporal query: who crossed the Gulf of Lions mid-run?
	gulf := geo.Rect{MinLat: 42.2, MinLon: 3.2, MaxLat: 43.5, MaxLon: 5.5}
	from := run.Config.Start.Add(2 * time.Hour)
	to := run.Config.Start.Add(4 * time.Hour)
	snap := store.SpatialSnapshot()
	hits := snap.Search(gulf, from, to)
	vesselsSeen := map[uint32]bool{}
	for _, h := range hits {
		vesselsSeen[h.MMSI] = true
	}
	fmt.Printf("gulf query: %d points / %d vessels in the window\n", len(hits), len(vesselsSeen))

	// 3. Semantic episodes into the triple store.
	st := semstore.NewStore()
	totalEpisodes := 0
	flows := va.NewFlowMatrix()
	for _, mmsi := range store.MMSIs() {
		tr := store.Trajectory(mmsi)
		eps := semstore.SegmentEpisodes(tr, world.Zones, semstore.DefaultEpisodeConfig())
		totalEpisodes += len(eps)
		semstore.MaterialiseEpisodes(st, eps)
		// Port-call sequence → OD flows.
		var lastPort string
		for _, e := range eps {
			if e.Activity != semstore.ActivityMoored {
				continue
			}
			for _, z := range e.ZoneIDs {
				if len(z) > 5 && z[:5] == "port-" {
					if lastPort != "" {
						flows.Add(lastPort, z)
					}
					lastPort = z
				}
			}
		}
	}
	fmt.Printf("segmented %d episodes into %d triples\n", totalEpisodes, st.Len())

	// Query the knowledge graph: fishing-like episodes (slow movement).
	slow := st.Match(semstore.Pattern{
		P: semstore.T(semstore.IRI(semstore.PredActivity)),
		O: semstore.T(semstore.Str(string(semstore.ActivitySlowMove))),
	})
	fmt.Printf("slow-movement episodes in the graph: %d\n", len(slow))

	// 4. Flows and density.
	fmt.Println("\nbusiest port-to-port flows:")
	top := flows.Top(5)
	if len(top) == 0 {
		fmt.Println("  (no vessel completed two port calls in this window —")
		fmt.Println("   lengthen the run to see origin–destination flows)")
	}
	for _, f := range top {
		fmt.Printf("  %-12s → %-12s %d voyages\n", f.From, f.To, f.Count)
	}

	var pts []geo.Point
	for _, tps := range run.Truth {
		for _, p := range tps {
			pts = append(pts, p.Pos)
		}
	}
	levels := va.MultiScaleDensity(world.Bounds, []int{12}, pts)
	fmt.Println("\ntraffic density (coarse):")
	fmt.Print(levels[0].Render())

	hist := va.NewTimeHistogram(run.Config.Start, 30*time.Minute, 12)
	for i := range run.Positions {
		hist.Add(run.Positions[i].At)
	}
	fmt.Printf("\nreceived-message volume over time: %s\n", hist.Render())
}
