// Command forecastdemo runs the E9 story: learn patterns-of-life from a
// day of historical traffic, then predict vessel positions at increasing
// horizons and compare pure kinematics against the route model — the
// "anticipated trajectories" of §3.1.
package main

import (
	"fmt"
	"log"
	"time"

	maritime "repro"
	"repro/internal/forecast"
	"repro/internal/model"
)

func main() {
	// History: one simulated day to learn from. Train and test share one
	// world — patterns-of-life belong to the lanes, not the vessels.
	world := maritime.MediterraneanWorld(31)
	hist, err := maritime.Simulate(maritime.SimConfig{
		Seed: 31, World: world, NumVessels: 120, Duration: 8 * time.Hour, TickSec: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	var trainSet []*model.Trajectory
	for mmsi, pts := range hist.Truth {
		tr := &model.Trajectory{MMSI: mmsi}
		for _, p := range pts {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: mmsi, At: p.At, Pos: p.Pos, SpeedKn: p.SpeedKn, CourseDeg: p.CourseDeg,
			})
		}
		trainSet = append(trainSet, tr)
	}
	rm := forecast.NewRouteModel(0.05)
	rm.TrainAll(trainSet)
	fmt.Printf("trained route model on %d trajectories\n", rm.Trained())

	// Evaluation: a fresh run on the same world (same seed world, new
	// vessel draws) — same lanes, unseen vessels.
	test, err := maritime.Simulate(maritime.SimConfig{
		Seed: 97, World: world, NumVessels: 40, Duration: 6 * time.Hour, TickSec: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	var testSet []*model.Trajectory
	for mmsi, pts := range test.Truth {
		tr := &model.Trajectory{MMSI: mmsi}
		for _, p := range pts {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: mmsi, At: p.At, Pos: p.Pos, SpeedKn: p.SpeedKn, CourseDeg: p.CourseDeg,
			})
		}
		testSet = append(testSet, tr)
	}

	predictors := []forecast.Predictor{
		forecast.DeadReckoning{},
		forecast.Kalman{},
		rm,
		forecast.Hybrid{Route: rm, Fallback: forecast.Kalman{}},
	}
	horizons := []time.Duration{
		10 * time.Minute, 30 * time.Minute, 60 * time.Minute, 2 * time.Hour,
	}
	results := forecast.Evaluate(predictors, testSet, horizons, 20*time.Minute)

	fmt.Printf("\nmean prediction error (m) by horizon:\n%-16s", "predictor")
	for _, h := range horizons {
		fmt.Printf("%10s", h)
	}
	fmt.Println()
	for _, p := range predictors {
		fmt.Printf("%-16s", p.Name())
		for _, h := range horizons {
			for _, r := range results {
				if r.Predictor == p.Name() && r.Horizon == h {
					fmt.Printf("%10.0f", r.MeanM)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(the route model and hybrid should pull ahead at long horizons,")
	fmt.Println(" where dead reckoning sails straight through the lane bends)")
}
