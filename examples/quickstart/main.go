// Command quickstart is the smallest complete use of the library: simulate
// an hour of Mediterranean traffic, run the integrated pipeline over it,
// and print the situation picture plus the alerts it raised.
package main

import (
	"fmt"
	"log"
	"time"

	maritime "repro"
)

func main() {
	// 1. A synthetic world stands in for live AIS feeds (the library's
	// substitution for radio receivers; see DESIGN.md).
	cfg := maritime.SimConfig{
		Seed:       42,
		NumVessels: 80,
		Duration:   90 * time.Minute,
	}
	cfg.DefaultAnomalyRates() // the paper-calibrated defect profile
	run, err := maritime.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d vessels, %d position reports, %d injected anomalies\n",
		len(run.Vessels), len(run.Positions), len(run.Events))

	// 2. The integrated pipeline of the paper's Figure 2.
	p := maritime.NewPipeline(maritime.PipelineConfig{
		Zones:              run.Config.World.Zones,
		SynopsisToleranceM: 60, // archive synopses, not raw firehose
	})
	for i := range run.Positions {
		obs := &run.Positions[i]
		p.Ingest(obs.At, &obs.Report)
	}
	for i := range run.Statics {
		so := &run.Statics[i]
		p.IngestStatic(so.At, &so.Msg)
	}

	// 3. What came out the other side.
	snap := p.Metrics.Snapshot()
	fmt.Printf("\ningested=%d archived=%d (%.1f%% synopsis compression) alerts=%d\n",
		snap.Ingested, snap.Archived, p.CompressionRatio()*100, snap.Alerts)

	fmt.Println("\nfirst alerts:")
	alerts := p.Alerts()
	for i, a := range alerts {
		if i == 8 {
			fmt.Printf("  … and %d more\n", len(alerts)-8)
			break
		}
		fmt.Printf("  %s\n", a)
	}

	// 4. The operator's situation board.
	end := run.Config.Start.Add(run.Config.Duration)
	fmt.Println()
	fmt.Print(p.Situation(end, run.Config.World.Bounds, 12, 48).Summary())
}
