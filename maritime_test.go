package maritime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
)

// TestFacadeEndToEndNMEA exercises the whole public surface through the
// wire format: simulate traffic, encode it as NMEA sentences, decode it
// back with the public decoder, run the pipeline, and assemble a
// situation — the full Figure 2 path a downstream user would build.
func TestFacadeEndToEndNMEA(t *testing.T) {
	cfg := SimConfig{Seed: 3, NumVessels: 30, Duration: 30 * time.Minute, TickSec: 2}
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Positions) == 0 {
		t.Fatal("no traffic")
	}

	// Wire round trip: every observation encodes to sentences and decodes
	// back to the same vessel.
	var lines []string
	times := make([]time.Time, 0, len(run.Positions))
	for i := range run.Positions {
		obs := &run.Positions[i]
		ss, err := ais.EncodeSentences(&obs.Report, i, "A")
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ss...)
		times = append(times, obs.At)
	}

	dec := NewAISDecoder()
	p := NewPipeline(PipelineConfig{
		Zones:              run.Config.World.Zones,
		SynopsisToleranceM: 50,
	})
	decoded := 0
	for i, line := range lines {
		msg, err := dec.Decode(line)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		rep, ok := msg.(*PositionReport)
		if !ok {
			t.Fatalf("line %d decoded to %T", i, msg)
		}
		p.Ingest(times[i], rep)
		decoded++
	}
	if decoded != len(run.Positions) {
		t.Fatalf("decoded %d of %d", decoded, len(run.Positions))
	}

	snap := p.Metrics.Snapshot()
	if snap.Ingested != int64(decoded) {
		t.Errorf("pipeline ingested %d of %d", snap.Ingested, decoded)
	}
	if snap.Archived == 0 || p.CompressionRatio() <= 0 {
		t.Errorf("synopsis filter inactive: archived=%d ratio=%.2f",
			snap.Archived, p.CompressionRatio())
	}
	if p.Live.Count() == 0 || p.Store.VesselCount() == 0 {
		t.Error("storage layers empty after ingest")
	}

	end := run.Config.Start.Add(run.Config.Duration)
	s := p.Situation(end, run.Config.World.Bounds, 8, 16)
	if len(s.Vessels) == 0 {
		t.Error("situation sees no vessels")
	}
	if !strings.Contains(s.Summary(), "SITUATION") {
		t.Error("summary malformed")
	}

	// Forecast through the facade.
	if n := p.TrainForecaster(0.05); n == 0 {
		t.Error("forecaster trained on nothing")
	}
	mmsis := p.Store.MMSIs()
	if _, ok := p.Forecast(mmsis[0], 15*time.Minute); !ok {
		t.Log("first vessel had no forecast basis (acceptable for short histories)")
	}
}

// TestFacadeWorlds sanity-checks the exported world builders.
func TestFacadeWorlds(t *testing.T) {
	med := MediterraneanWorld(1)
	glob := GlobalWorld(1)
	if med.Zones.Len() == 0 || glob.Zones.Len() == 0 {
		t.Error("worlds must carry zones")
	}
	if len(med.Routes) == 0 || len(glob.Routes) == 0 {
		t.Error("worlds must carry routes")
	}
}

// TestFacadeSharded verifies the sharded pipeline through the facade.
func TestFacadeSharded(t *testing.T) {
	run, err := Simulate(SimConfig{Seed: 5, NumVessels: 20, Duration: 20 * time.Minute, TickSec: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShardedPipeline(PipelineConfig{Zones: run.Config.World.Zones}, 3)
	for i := range run.Positions {
		obs := &run.Positions[i]
		sp.Ingest(obs.At, &obs.Report)
	}
	if got := sp.Snapshot().Ingested; got != int64(len(run.Positions)) {
		t.Errorf("sharded ingest %d of %d", got, len(run.Positions))
	}
	alerts := sp.Alerts()
	for i := 1; i < len(alerts); i++ {
		if alerts[i].At.Before(alerts[i-1].At) {
			t.Fatal("merged alerts not time-ordered")
		}
	}
}
