package weather

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
)

var testBounds = geo.Rect{MinLat: 40, MinLon: 0, MaxLat: 45, MaxLon: 10}

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func TestGridSampleExactOnNodes(t *testing.T) {
	g := NewGrid(testBounds, 1.0, t0())
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			g.Set(r, c, float64(r*100+c))
		}
	}
	// Sampling exactly on a node returns the node value.
	p := geo.Point{Lat: 42, Lon: 3}
	want := g.AtCell(2, 3)
	if got := g.Sample(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("node sample = %f, want %f", got, want)
	}
}

func TestGridSampleBilinear(t *testing.T) {
	g := NewGrid(testBounds, 1.0, t0())
	// A plane v = lat + 2*lon is reproduced exactly by bilinear interpolation.
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			lat := testBounds.MinLat + float64(r)
			lon := testBounds.MinLon + float64(c)
			g.Set(r, c, lat+2*lon)
		}
	}
	p := geo.Point{Lat: 42.37, Lon: 6.81}
	want := p.Lat + 2*p.Lon
	if got := g.Sample(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("bilinear plane sample = %f, want %f", got, want)
	}
}

func TestGridSampleClampsOutside(t *testing.T) {
	g := NewGrid(testBounds, 1.0, t0())
	for i := range g.Values {
		g.Values[i] = 7
	}
	outside := []geo.Point{{Lat: 39, Lon: 5}, {Lat: 46, Lon: 5}, {Lat: 42, Lon: -3}, {Lat: 42, Lon: 30}}
	for _, p := range outside {
		if got := g.Sample(p); math.Abs(got-7) > 1e-9 {
			t.Errorf("outside sample at %v = %f, want clamped 7", p, got)
		}
	}
}

func TestSeriesTemporalInterpolation(t *testing.T) {
	g1 := NewGrid(testBounds, 1.0, t0())
	g2 := NewGrid(testBounds, 1.0, t0().Add(time.Hour))
	for i := range g1.Values {
		g1.Values[i] = 10
		g2.Values[i] = 20
	}
	s := &Series{Variable: WaveHeightM, Slices: []*Grid{g1, g2}}
	p := geo.Point{Lat: 42, Lon: 5}
	cases := []struct {
		at   time.Time
		want float64
	}{
		{t0(), 10},
		{t0().Add(30 * time.Minute), 15},
		{t0().Add(time.Hour), 20},
		{t0().Add(-time.Hour), 10},    // clamps before
		{t0().Add(2 * time.Hour), 20}, // clamps after
	}
	for _, c := range cases {
		got, err := s.Sample(p, c.at)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("at %v: got %f want %f", c.at, got, c.want)
		}
	}
}

func TestSeriesBinarySearchManySlices(t *testing.T) {
	f := AnalyticField{Base: 5, Amplitude: 3, WaveLatDeg: 8, WaveLonDeg: 12, Period: 12 * time.Hour}
	s := f.BuildSeries(WindSpeedMS, testBounds, 0.5, t0(), time.Hour, 24)
	if len(s.Slices) != 24 {
		t.Fatalf("expected 24 slices")
	}
	// Interpolated values must lie between the bracketing slices' samples.
	p := geo.Point{Lat: 42.3, Lon: 5.7}
	at := t0().Add(5*time.Hour + 17*time.Minute)
	got, err := s.Sample(p, at)
	if err != nil {
		t.Fatal(err)
	}
	lo := s.Slices[5].Sample(p)
	hi := s.Slices[6].Sample(p)
	min, max := math.Min(lo, hi), math.Max(lo, hi)
	if got < min-1e-9 || got > max+1e-9 {
		t.Errorf("temporal interpolation %f outside bracket [%f,%f]", got, min, max)
	}
}

func TestEmptySeries(t *testing.T) {
	s := &Series{Variable: WindSpeedMS}
	if _, err := s.Sample(geo.Point{}, t0()); err == nil {
		t.Error("empty series must error")
	}
}

func TestProvider(t *testing.T) {
	pv := NewProvider()
	f := AnalyticField{Base: 2, Amplitude: 1, WaveLatDeg: 5, WaveLonDeg: 7, Period: time.Hour}
	pv.Add(f.BuildSeries(WaveHeightM, testBounds, 1.0, t0(), time.Hour, 3))
	if _, err := pv.Sample(WaveHeightM, geo.Point{Lat: 42, Lon: 5}, t0()); err != nil {
		t.Errorf("registered variable should sample: %v", err)
	}
	if _, err := pv.Sample(SeaTempC, geo.Point{Lat: 42, Lon: 5}, t0()); err == nil {
		t.Error("unregistered variable must error")
	}
	if len(pv.Variables()) != 1 {
		t.Error("Variables() should list one entry")
	}
}

func TestInterpolationErrorShrinksWithResolution(t *testing.T) {
	// The E7 premise: finer grids approximate the analytic truth better.
	f := AnalyticField{Base: 10, Amplitude: 4, WaveLatDeg: 6, WaveLonDeg: 9, Period: 6 * time.Hour}
	at := t0().Add(90 * time.Minute)
	probe := []geo.Point{}
	for lat := 41.0; lat <= 44.0; lat += 0.37 {
		for lon := 1.0; lon <= 9.0; lon += 0.53 {
			probe = append(probe, geo.Point{Lat: lat, Lon: lon})
		}
	}
	rmse := func(cellDeg float64) float64 {
		s := f.BuildSeries(WindSpeedMS, testBounds, cellDeg, t0(), time.Hour, 4)
		var se float64
		for _, p := range probe {
			got, err := s.Sample(p, at)
			if err != nil {
				t.Fatal(err)
			}
			d := got - f.Eval(p, at)
			se += d * d
		}
		return math.Sqrt(se / float64(len(probe)))
	}
	coarse := rmse(2.0)
	fine := rmse(0.25)
	if fine >= coarse {
		t.Errorf("finer grid should reduce RMSE: coarse=%f fine=%f", coarse, fine)
	}
	if fine > 0.5 {
		t.Errorf("fine grid RMSE too large: %f", fine)
	}
}

func TestAnalyticFieldBounded(t *testing.T) {
	f := AnalyticField{Base: 5, Amplitude: 2, WaveLatDeg: 8, WaveLonDeg: 12, Period: time.Hour}
	for lat := -80.0; lat <= 80; lat += 7 {
		for lon := -170.0; lon <= 170; lon += 13 {
			v := f.Eval(geo.Point{Lat: lat, Lon: lon}, t0())
			if v < 3-1e-9 || v > 7+1e-9 {
				t.Fatalf("field value %f outside [base±amp]", v)
			}
		}
	}
}

func BenchmarkSeriesSample(b *testing.B) {
	f := AnalyticField{Base: 5, Amplitude: 3, WaveLatDeg: 8, WaveLonDeg: 12, Period: 12 * time.Hour}
	s := f.BuildSeries(WindSpeedMS, testBounds, 0.25, t0(), time.Hour, 24)
	p := geo.Point{Lat: 42.3, Lon: 5.7}
	at := t0().Add(7*time.Hour + 11*time.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(p, at); err != nil {
			b.Fatal(err)
		}
	}
}
