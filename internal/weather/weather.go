// Package weather provides gridded environmental fields (wind, waves,
// surface current) with bilinear spatial and linear temporal interpolation.
// The paper (§2.5) stresses that freely available meteorological data come
// at kilometre-scale spatial resolution and hourly or daily means, while
// AIS positions arrive at ~10 m accuracy every few seconds to minutes;
// this package is the "coarse side" of that multi-granularity integration
// problem, including a synthetic field generator whose analytic ground
// truth makes interpolation error measurable (experiment E7).
package weather

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
)

// Variable identifies an environmental variable carried by a field.
type Variable string

// Common variables.
const (
	WindSpeedMS    Variable = "wind_speed_ms"
	WindDirDeg     Variable = "wind_dir_deg"
	WaveHeightM    Variable = "wave_height_m"
	CurrentEastMS  Variable = "current_east_ms"
	CurrentNorthMS Variable = "current_north_ms"
	SeaTempC       Variable = "sea_temp_c"
)

// Grid is one time-slice of a regular lat/lon raster.
type Grid struct {
	Bounds  geo.Rect
	CellDeg float64 // cell size in degrees
	Rows    int
	Cols    int
	Values  []float64 // row-major, Rows*Cols
	ValidAt time.Time // nominal validity time of the slice
}

// NewGrid allocates a grid covering bounds at the given resolution.
func NewGrid(bounds geo.Rect, cellDeg float64, at time.Time) *Grid {
	if cellDeg <= 0 {
		cellDeg = 0.5
	}
	rows := int(math.Ceil((bounds.MaxLat-bounds.MinLat)/cellDeg)) + 1
	cols := int(math.Ceil((bounds.MaxLon-bounds.MinLon)/cellDeg)) + 1
	if rows < 2 {
		rows = 2
	}
	if cols < 2 {
		cols = 2
	}
	return &Grid{
		Bounds: bounds, CellDeg: cellDeg,
		Rows: rows, Cols: cols,
		Values:  make([]float64, rows*cols),
		ValidAt: at,
	}
}

// Set assigns the value at (row, col).
func (g *Grid) Set(row, col int, v float64) { g.Values[row*g.Cols+col] = v }

// AtCell returns the value at (row, col), clamping indices to the raster.
func (g *Grid) AtCell(row, col int) float64 {
	if row < 0 {
		row = 0
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	if col < 0 {
		col = 0
	}
	if col >= g.Cols {
		col = g.Cols - 1
	}
	return g.Values[row*g.Cols+col]
}

// Sample bilinearly interpolates the field at p. Points outside the grid
// are clamped to the border values (fields extend smoothly offshore).
func (g *Grid) Sample(p geo.Point) float64 {
	fr := (p.Lat - g.Bounds.MinLat) / g.CellDeg
	fc := (p.Lon - g.Bounds.MinLon) / g.CellDeg
	r0 := int(math.Floor(fr))
	c0 := int(math.Floor(fc))
	dr := fr - float64(r0)
	dc := fc - float64(c0)
	if r0 < 0 {
		r0, dr = 0, 0
	}
	if r0 >= g.Rows-1 {
		r0, dr = g.Rows-2, 1
	}
	if c0 < 0 {
		c0, dc = 0, 0
	}
	if c0 >= g.Cols-1 {
		c0, dc = g.Cols-2, 1
	}
	v00 := g.AtCell(r0, c0)
	v01 := g.AtCell(r0, c0+1)
	v10 := g.AtCell(r0+1, c0)
	v11 := g.AtCell(r0+1, c0+1)
	return v00*(1-dr)*(1-dc) + v01*(1-dr)*dc + v10*dr*(1-dc) + v11*dr*dc
}

// Series is a time-ordered sequence of grids for one variable, supporting
// space-time interpolation.
type Series struct {
	Variable Variable
	Slices   []*Grid // ascending ValidAt
}

// Sample interpolates the variable at position p and time t: bilinear in
// space on the two bracketing slices, linear in time between them. Times
// outside the series clamp to the first/last slice.
func (s *Series) Sample(p geo.Point, t time.Time) (float64, error) {
	if len(s.Slices) == 0 {
		return 0, fmt.Errorf("weather: series %q has no slices", s.Variable)
	}
	if len(s.Slices) == 1 || !t.After(s.Slices[0].ValidAt) {
		return s.Slices[0].Sample(p), nil
	}
	last := s.Slices[len(s.Slices)-1]
	if !t.Before(last.ValidAt) {
		return last.Sample(p), nil
	}
	// Binary search for the bracketing pair.
	lo, hi := 0, len(s.Slices)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.Slices[mid].ValidAt.After(t) {
			hi = mid
		} else {
			lo = mid
		}
	}
	a, b := s.Slices[lo], s.Slices[hi]
	span := b.ValidAt.Sub(a.ValidAt).Seconds()
	if span <= 0 {
		return a.Sample(p), nil
	}
	f := t.Sub(a.ValidAt).Seconds() / span
	return a.Sample(p)*(1-f) + b.Sample(p)*f, nil
}

// Provider bundles several variables' series into one lookup service.
type Provider struct {
	series map[Variable]*Series
}

// NewProvider returns an empty provider.
func NewProvider() *Provider {
	return &Provider{series: make(map[Variable]*Series)}
}

// Add registers a series, replacing any previous series for the variable.
func (pv *Provider) Add(s *Series) { pv.series[s.Variable] = s }

// Sample returns the value of variable v at (p, t).
func (pv *Provider) Sample(v Variable, p geo.Point, t time.Time) (float64, error) {
	s, ok := pv.series[v]
	if !ok {
		return 0, fmt.Errorf("weather: no series for variable %q", v)
	}
	return s.Sample(p, t)
}

// Variables lists the registered variables.
func (pv *Provider) Variables() []Variable {
	out := make([]Variable, 0, len(pv.series))
	for v := range pv.series {
		out = append(out, v)
	}
	return out
}

// AnalyticField is a smooth synthetic field with a closed form, used both
// to fill synthetic grids and as ground truth when measuring interpolation
// error. It is a sum of travelling sinusoids — smooth, bounded, and rich
// enough in gradients to expose resolution effects.
type AnalyticField struct {
	Base      float64 // mean value
	Amplitude float64
	// Spatial wavelengths in degrees and temporal period.
	WaveLatDeg, WaveLonDeg float64
	Period                 time.Duration
	Phase                  float64
}

// Eval returns the field value at (p, t).
func (f AnalyticField) Eval(p geo.Point, t time.Time) float64 {
	tau := 0.0
	if f.Period > 0 {
		tau = 2 * math.Pi * float64(t.UnixNano()) / float64(f.Period.Nanoseconds())
	}
	a := math.Sin(2*math.Pi*p.Lat/f.WaveLatDeg + tau + f.Phase)
	b := math.Cos(2*math.Pi*p.Lon/f.WaveLonDeg - tau/2 + f.Phase)
	return f.Base + f.Amplitude*(a+b)/2
}

// BuildSeries rasterises the analytic field into a series of grids covering
// bounds at the given spatial resolution and time step, from t0 for n steps.
// This is the synthetic stand-in for a forecast download (§2.5).
func (f AnalyticField) BuildSeries(v Variable, bounds geo.Rect, cellDeg float64, t0 time.Time, step time.Duration, n int) *Series {
	s := &Series{Variable: v}
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * step)
		g := NewGrid(bounds, cellDeg, at)
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				p := geo.Point{
					Lat: bounds.MinLat + float64(r)*cellDeg,
					Lon: bounds.MinLon + float64(c)*cellDeg,
				}
				g.Set(r, c, f.Eval(p, at))
			}
		}
		s.Slices = append(s.Slices, g)
	}
	return s
}
