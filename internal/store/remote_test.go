package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/tstore"
)

// remoteFixture opens a tiered archive: tiny segments so appends rotate
// (and migrate) quickly, compaction disabled unless asked for.
func remoteFixture(t *testing.T, compactEvery int) (Config, *FSObjects) {
	t.Helper()
	objects, err := NewFSObjects(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if compactEvery == 0 {
		compactEvery = -1
	}
	return Config{
		Dir: t.TempDir(), SegmentBytes: 200, Sync: SyncNever,
		CompactEvery: compactEvery, Remote: objects,
	}, objects
}

func appendN(t *testing.T, b Backend, n int, seed int64) []model.VesselState {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]model.VesselState, n)
	for i := range recs {
		recs[i] = Quantize(randState(rng, i))
	}
	if err := b.Append(recs); err != nil {
		t.Fatal(err)
	}
	return recs
}

func localWALs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestRemoteMigrationAndRecovery pins upload-on-seal: sealed segments
// leave local disk for the object store, only the active segment stays,
// and recovery reads the migrated objects back into exactly the appended
// state.
func TestRemoteMigrationAndRecovery(t *testing.T) {
	cfg, objects := remoteFixture(t, -1)
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := appendN(t, arch.Backend, 40, 1)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	if got := localWALs(t, cfg.Dir); len(got) != 1 {
		t.Fatalf("local dir should hold only the active segment, has %v", got)
	}
	keys, err := objects.List("wal-")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 3 {
		t.Fatalf("expected several migrated segments, got %v", keys)
	}
	if err := arch.Backend.UploadErr(); err != nil {
		t.Fatalf("upload error: %v", err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats.RemoteSegments < 3 {
		t.Fatalf("recovery replayed %d remote segments, want >= 3 (%+v)", re.Stats.RemoteSegments, re.Stats)
	}
	if got := states(re.Store); !reflect.DeepEqual(got, orderStates(recs)) {
		t.Fatalf("recovered %d records, want %d and equal", len(got), len(recs))
	}
}

// TestCrashBeforeUploadIsReuploaded pins the seal/upload crash window: a
// sealed segment still on local disk (the crash hit between seal and
// upload confirmation — including the half-uploaded case, where a
// non-atomic store left a truncated object) is re-uploaded by the next
// Open and only then removed locally. Nothing is lost either way.
func TestCrashBeforeUploadIsReuploaded(t *testing.T) {
	cfg, objects := remoteFixture(t, -1)
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := appendN(t, arch.Backend, 40, 2)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	keys, err := objects.List("wal-")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 2 {
		t.Fatalf("need at least two migrated segments, got %v", keys)
	}
	// Crash shape 1 — upload never happened: put the segment back on
	// local disk and delete the object outright.
	lost := keys[0]
	data, err := objects.Get(lost)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, lost), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := objects.Delete(lost); err != nil {
		t.Fatal(err)
	}
	// Crash shape 2 — half-uploaded: local copy survives next to a
	// truncated object (what a store without atomic Put would leave).
	torn := keys[1]
	data2, err := objects.Get(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfg.Dir, torn), data2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(objects.Root(), torn), data2[:len(data2)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// At least the two crafted crash shapes — plus the previous run's
	// active tail, which is sealed by this recovery and migrates too.
	if re.Stats.Reuploaded < 2 {
		t.Fatalf("recovery re-uploaded %d segments, want >= 2 (%+v)", re.Stats.Reuploaded, re.Stats)
	}
	for _, key := range []string{lost, torn} {
		got, err := objects.Get(key)
		if err != nil {
			t.Fatalf("segment %s missing from object store after recovery: %v", key, err)
		}
		if len(got) != len(data) && len(got) != len(data2) {
			t.Fatalf("segment %s re-uploaded truncated: %d bytes", key, len(got))
		}
		if _, err := os.Stat(filepath.Join(cfg.Dir, key)); !os.IsNotExist(err) {
			t.Fatalf("segment %s still on local disk after confirmed upload", key)
		}
	}
	if got := states(re.Store); !reflect.DeepEqual(got, orderStates(recs)) {
		t.Fatalf("recovered %d records, want %d and equal", len(got), len(recs))
	}
}

// TestCompactionFoldsRemoteSegments pins tiered compaction: sealed
// segments living in the object store fold into a snapshot object, the
// covered objects are deleted, and recovery loads the remote snapshot.
func TestCompactionFoldsRemoteSegments(t *testing.T) {
	cfg, objects := remoteFixture(t, 3)
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := appendN(t, arch.Backend, 60, 3)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := objects.List("snap-")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("expected exactly one snapshot object, got %v", snaps)
	}
	wals, err := objects.List("wal-")
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) >= 6 {
		t.Fatalf("compaction left every segment behind: %v", wals)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats.SnapshotPoints == 0 {
		t.Fatalf("recovery ignored the remote snapshot (%+v)", re.Stats)
	}
	if got := states(re.Store); !reflect.DeepEqual(got, orderStates(recs)) {
		t.Fatalf("recovered %d records, want %d and equal", len(got), len(recs))
	}
}

// TestRemoteMarkerRefusesLocalOpen pins the guard against the silent
// partial-recovery trap: a directory that ever migrated segments is
// marked, and opening it without the object store errors instead of
// recovering only the local tail (which a later compaction could turn
// into deletion of migrated history).
func TestRemoteMarkerRefusesLocalOpen(t *testing.T) {
	cfg, _ := remoteFixture(t, -1)
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, arch.Backend, 40, 4)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	local := cfg
	local.Remote = nil
	if _, err := Open(local); err == nil || !strings.Contains(err.Error(), "REMOTE marker") {
		t.Fatalf("Open without Remote on a marked archive: got %v, want a REMOTE-marker refusal", err)
	}
	if _, err := OpenReadOnly(local); err == nil || !strings.Contains(err.Error(), "REMOTE marker") {
		t.Fatalf("OpenReadOnly without Remote on a marked archive: got %v, want a REMOTE-marker refusal", err)
	}
	re, err := Open(cfg) // with the object store: fine
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}

// TestFSObjectsTmpInvisible pins the atomic-Put contract plumbing: an
// in-flight (or abandoned) Put temporary is never listed as an object.
func TestFSObjectsTmpInvisible(t *testing.T) {
	objects, err := NewFSObjects(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := objects.Put("wal-00000001.log", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(objects.Root(), "wal-00000002.log.tmp-obj"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := objects.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "wal-00000001.log" {
		t.Fatalf("List = %v, want only the completed object", keys)
	}
}

// orderStates sorts a record batch the way a recovered store reports it:
// grouped per vessel in (MMSI, time) order.
func orderStates(recs []model.VesselState) []model.VesselState {
	st := tstore.New()
	for _, s := range recs {
		st.Append(s)
	}
	return states(st)
}
