package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stream"
)

// FlushConfig parameterises the asynchronous flush stage between an
// ingesting store and a Backend. The zero value is usable.
type FlushConfig struct {
	// Queue bounds the number of records pending flush; a full queue
	// blocks the appender — backpressure, consistent with every other
	// stage of the ingest dataflow (default 8192).
	Queue int
	// Batch caps how many records go into one Backend.Append call
	// (default 512).
	Batch int
	// SyncEvery adds a periodic Backend.Sync on top of the backend's own
	// policy, bounding how much acknowledged-but-unsynced data a crash
	// can lose (0 disables; the backend policy still applies).
	SyncEvery time.Duration
}

func (c *FlushConfig) normalize() {
	if c.Queue < 1 {
		c.Queue = 8192
	}
	if c.Batch < 1 {
		c.Batch = 512
	}
}

// Flusher decouples ingest latency from storage latency: Append enqueues
// into a bounded buffer and returns; a single background goroutine drains
// the buffer into batched Backend.Append calls under the fsync policy.
// It implements tstore.Sink, so it attaches directly to an ingesting
// store. Close drains, syncs and stops the stage (the Backend itself
// stays open).
type Flusher struct {
	// Metrics counts records through the stage: In on enqueue, Out when
	// the backend accepted them, Dropped for records refused (stage
	// closed) or failed at the backend.
	Metrics stream.Metrics

	b   Backend
	cfg FlushConfig

	mu      sync.Mutex
	notFull *sync.Cond
	kick    chan struct{}
	pending []model.VesselState
	err     error
	closing bool

	// batchNS, when instrumented, times each Backend.Append batch. The
	// flush goroutine is already running when Instrument is called, so
	// the handoff is an atomic pointer.
	batchNS atomic.Pointer[obs.Histogram]

	// flight, when attached (SetFlight), records backpressure episodes:
	// a warn when an appender first blocks on the full queue, an info
	// when the drain clears it. stalled (under mu) edge-detects the
	// episode so a sustained stall is two events, not thousands.
	flight  atomic.Pointer[obs.Flight]
	stalled bool

	done chan struct{}
}

// SetFlight attaches a flight recorder for backpressure transitions.
// Safe on a live stage.
func (f *Flusher) SetFlight(fl *obs.Flight) { f.flight.Store(fl) }

// QueueBound returns the configured queue capacity — the denominator a
// readiness check compares Depth against.
func (f *Flusher) QueueBound() int { return f.cfg.Queue }

// Instrument registers the flush stage's series with reg: record
// counters (windows onto Metrics — In on enqueue, Out accepted by the
// backend, Dropped refused or failed), the queue depth, and the
// per-batch backend append latency (store_flush_batch_ns).
func (f *Flusher) Instrument(reg *obs.Registry) {
	f.batchNS.Store(reg.Histogram("store_flush_batch_ns"))
	reg.CounterFunc("store_flush_in_total", func() float64 { return float64(f.Metrics.In.Load()) })
	reg.CounterFunc("store_flush_out_total", func() float64 { return float64(f.Metrics.Out.Load()) })
	reg.CounterFunc("store_flush_dropped_total", func() float64 { return float64(f.Metrics.Dropped.Load()) })
	reg.GaugeFunc("store_flush_queue_depth", func() float64 { return float64(f.Depth()) })
}

// NewFlusher starts a flush stage over the backend.
func NewFlusher(b Backend, cfg FlushConfig) *Flusher {
	cfg.normalize()
	f := &Flusher{
		b:    b,
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	f.notFull = sync.NewCond(&f.mu)
	go f.run()
	return f
}

// Append enqueues the records for flushing, blocking while the queue is
// full. It never blocks on the disk itself. Safe for concurrent use.
func (f *Flusher) Append(recs ...model.VesselState) error {
	f.mu.Lock()
	if len(f.pending) >= f.cfg.Queue && !f.closing && !f.stalled {
		f.stalled = true
		f.flight.Load().Record(obs.FlightWarn, "ingest", "flush backpressure: queue full",
			obs.FI("depth", int64(len(f.pending))), obs.FI("bound", int64(f.cfg.Queue)))
	}
	for len(f.pending) >= f.cfg.Queue && !f.closing {
		f.notFull.Wait()
	}
	if f.closing {
		f.mu.Unlock()
		f.Metrics.Dropped.Add(int64(len(recs)))
		return fmt.Errorf("store: append to closed flusher")
	}
	f.pending = append(f.pending, recs...)
	// Count In before releasing the lock so a concurrent metrics
	// snapshot never observes Out ahead of In.
	f.Metrics.In.Add(int64(len(recs)))
	f.mu.Unlock()
	select {
	case f.kick <- struct{}{}:
	default:
	}
	return nil
}

// run is the flush goroutine: swap out the pending buffer, write it in
// batches, repeat until closed and drained. With SyncEvery set, idle
// periods are covered by a timer so the last written batch never sits
// unsynced longer than the configured bound.
func (f *Flusher) run() {
	defer close(f.done)
	var buf []model.VesselState
	lastSync := time.Now()
	dirty := false // records written to the backend since the last sync
	for {
		f.mu.Lock()
		for len(f.pending) == 0 && !f.closing {
			f.mu.Unlock()
			if f.cfg.SyncEvery > 0 && dirty {
				t := time.NewTimer(f.cfg.SyncEvery - time.Since(lastSync))
				select {
				case <-f.kick:
					t.Stop()
				case <-t.C:
					f.setErr(f.b.Sync())
					dirty, lastSync = false, time.Now()
				}
			} else {
				<-f.kick
			}
			f.mu.Lock()
		}
		if len(f.pending) == 0 && f.closing {
			f.mu.Unlock()
			f.setErr(f.b.Sync()) // final durability point
			return
		}
		buf, f.pending = f.pending, buf[:0]
		if f.stalled {
			f.stalled = false
			f.flight.Load().Record(obs.FlightInfo, "ingest", "flush backpressure cleared",
				obs.FI("batch", int64(len(buf))))
		}
		f.notFull.Broadcast()
		f.mu.Unlock()

		h := f.batchNS.Load()
		for lo := 0; lo < len(buf); lo += f.cfg.Batch {
			hi := lo + f.cfg.Batch
			if hi > len(buf) {
				hi = len(buf)
			}
			var t0 time.Time
			if h != nil {
				t0 = time.Now()
			}
			if err := f.b.Append(buf[lo:hi]); err != nil {
				f.setErr(err)
				f.Metrics.Dropped.Add(int64(hi - lo))
			} else {
				f.Metrics.Out.Add(int64(hi - lo))
			}
			if h != nil {
				h.ObserveSince(t0)
			}
		}
		dirty = true
		if f.cfg.SyncEvery > 0 && time.Since(lastSync) >= f.cfg.SyncEvery {
			f.setErr(f.b.Sync())
			dirty, lastSync = false, time.Now()
		}
	}
}

func (f *Flusher) setErr(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Err returns the first backend error the stage has seen.
func (f *Flusher) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Depth returns the current queue depth (records pending flush).
func (f *Flusher) Depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Close drains the queue, syncs the backend and stops the stage. Further
// Appends fail (counted as Dropped). It returns the first error seen,
// including the final sync. Safe to call more than once.
func (f *Flusher) Close() error {
	f.mu.Lock()
	if !f.closing {
		f.closing = true
		f.notFull.Broadcast()
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
	f.mu.Unlock()
	<-f.done
	return f.Err()
}
