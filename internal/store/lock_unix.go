//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireLock takes the archive directory's exclusive writer lock: a
// non-blocking flock on Dir/LOCK. flock is advisory, crash-safe (the
// kernel drops it with the process, so no stale-lockfile recovery is
// needed) and inherited across forks — exactly the single-writer fence
// the WAL wants.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: archive %s is locked by another process (%w)", dir, err)
	}
	return f, nil
}

func releaseLock(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
