package store

import (
	"container/list"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ObjectStore is the remote half of the tiered archive: a minimal
// immutable-blob interface the durable layers migrate cold bytes to —
// sealed WAL segments and snapshots (Disk with Config.Remote) and
// evicted trajectory chunks (internal/tier). The contract is
// deliberately the S3 subset every object service offers:
//
//   - Put is atomic: a reader never observes a partially written object,
//     only presence or absence (FSObjects implements this with a
//     write-to-temp + rename). Re-putting a key overwrites it.
//   - Objects are immutable once written: callers never modify in place,
//     so any cache over Get needs no invalidation protocol.
//   - Get on a missing key returns an error satisfying
//     errors.Is(err, fs.ErrNotExist).
//   - List returns the keys under a prefix in lexical order.
//   - Delete is idempotent: deleting a missing key is not an error.
//
// Keys are slash-separated relative paths ("wal-00000001.log",
// "tier/201000001/000000000001.chk"). Implementations must be safe for
// concurrent use.
type ObjectStore interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	List(prefix string) ([]string, error)
	Delete(key string) error
}

// --- filesystem reference implementation ---------------------------------------

// FSObjects is the local-filesystem ObjectStore: objects are files under
// a root directory, keys map to relative paths. It is the reference
// implementation (tests, single-node tiering onto a second disk or a
// network mount); a real deployment would implement ObjectStore over an
// object service with the same atomicity contract.
type FSObjects struct {
	root   string
	noSync bool
}

// NewFSObjects returns an object store rooted at dir (created if
// absent). Puts are fully durable (fsync + directory fsync before the
// rename is visible) — the contract migrated WAL segments rely on.
func NewFSObjects(dir string) (*FSObjects, error) {
	return newFSObjects(dir, false)
}

// NewFSObjectsCache returns an object store that skips fsync on Put.
// Appropriate for paging caches — tier spill chunks are reconstructable
// from the archive after a crash (and unreachable after one anyway, the
// stubs referencing them being in-memory) — and roughly an order of
// magnitude cheaper per Put. Never use it for migrated WAL segments or
// snapshots: their local copies are deleted on upload confirmation, so
// the uploaded object must actually be durable.
func NewFSObjectsCache(dir string) (*FSObjects, error) {
	return newFSObjects(dir, true)
}

func newFSObjects(dir string, noSync bool) (*FSObjects, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: FSObjects root directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FSObjects{root: dir, noSync: noSync}, nil
}

// Root returns the root directory.
func (f *FSObjects) Root() string { return f.root }

// objTmpSuffix marks in-flight Put temporaries. They are never listed as
// objects, and a crash mid-Put leaves at most one behind (cleaned up by
// the next Put of the same key or ignored forever).
const objTmpSuffix = ".tmp-obj"

func (f *FSObjects) path(key string) (string, error) {
	if key == "" || path.Clean("/"+key) != "/"+key || strings.HasSuffix(key, objTmpSuffix) {
		return "", fmt.Errorf("store: bad object key %q", key)
	}
	return filepath.Join(f.root, filepath.FromSlash(key)), nil
}

// Put writes the object atomically: temp file in the destination
// directory, fsync, rename, directory fsync — a crash at any point
// leaves either the previous object (or nothing) or the complete new
// one, never a torn blob.
func (f *FSObjects) Put(key string, data []byte) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := p + objTmpSuffix
	t, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := t.Write(data); err != nil {
		t.Close()
		//lint:ignore errsink best-effort .tmp cleanup on a path already returning the write error
		os.Remove(tmp)
		return err
	}
	if !f.noSync {
		if err := t.Sync(); err != nil {
			t.Close()
			//lint:ignore errsink best-effort .tmp cleanup on a path already returning the sync error
			os.Remove(tmp)
			return err
		}
	}
	if err := t.Close(); err != nil {
		//lint:ignore errsink best-effort .tmp cleanup on a path already returning the close error
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		//lint:ignore errsink best-effort .tmp cleanup on a path already returning the rename error
		os.Remove(tmp)
		return err
	}
	if f.noSync {
		return nil
	}
	return syncDir(dir)
}

// Get reads the whole object; a missing key reports fs.ErrNotExist.
func (f *FSObjects) Get(key string) ([]byte, error) {
	p, err := f.path(key)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// List returns every object key under the prefix, sorted. A prefix is a
// plain string prefix over keys, not a directory: "wal-" matches
// "wal-00000001.log".
func (f *FSObjects) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(f.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(p, objTmpSuffix) {
			return nil // in-flight or abandoned Put temporary, not an object
		}
		rel, err := filepath.Rel(f.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete removes the object; deleting a missing key succeeds.
func (f *FSObjects) Delete(key string) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// --- read-through block cache --------------------------------------------------

// BlockCache is a byte-bounded LRU over immutable object reads with
// per-key singleflight: concurrent Gets of the same missing key share
// one load instead of hammering the backing store — the property the
// tiered archive's page-back path relies on so concurrent queries of an
// evicted vessel don't double-load its chunks. Because objects are
// immutable, there is no invalidation protocol; Drop exists only to
// release bytes early after an explicit Delete.
type BlockCache struct {
	mu       sync.Mutex
	capBytes int64
	size     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	loads    map[string]*cacheLoad

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	data []byte
}

type cacheLoad struct {
	done chan struct{}
	data []byte
	err  error
}

// NewBlockCache returns a cache bounded at capBytes (minimum 1 MiB).
func NewBlockCache(capBytes int64) *BlockCache {
	if capBytes < 1<<20 {
		capBytes = 1 << 20
	}
	return &BlockCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		loads:    make(map[string]*cacheLoad),
	}
}

// Get returns the cached bytes for key, calling load exactly once per
// residency to fill a miss (concurrent callers of the same key wait for
// that one load). Returned bytes are shared and must not be modified.
// Load errors are not cached: the next Get retries.
func (c *BlockCache) Get(key string, load func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, nil
	}
	if fl, ok := c.loads[key]; ok {
		// Someone is already loading it: share their result.
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.data, fl.err
	}
	fl := &cacheLoad{done: make(chan struct{})}
	c.loads[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.data, fl.err = load()
	c.mu.Lock()
	delete(c.loads, key)
	if fl.err == nil {
		c.insertLocked(key, fl.data)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.data, fl.err
}

func (c *BlockCache) insertLocked(key string, data []byte) {
	if int64(len(data)) > c.capBytes {
		return // larger than the whole cache: serve uncached
	}
	if el, ok := c.items[key]; ok { // raced re-insert of an immutable object
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.items[key] = el
	c.size += int64(len(data))
	for c.size > c.capBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.data))
	}
}

// Drop evicts one key (after an explicit object Delete).
func (c *BlockCache) Drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.data))
	}
}

// CacheStats is a point-in-time BlockCache counter snapshot.
type CacheStats struct {
	Hits, Misses uint64
	Bytes        int64
	Objects      int
}

// Stats snapshots the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Bytes: c.size, Objects: len(c.items)}
}
