package store

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// gatedStore wraps an ObjectStore, parking every Put on a gate until the
// test releases it — a stand-in for a slow or stalled object store.
type gatedStore struct {
	ObjectStore
	gate    chan struct{} // closed to release parked Puts
	entered chan struct{} // one token per Put that reached the gate
}

func newGatedStore(inner ObjectStore) *gatedStore {
	return &gatedStore{ObjectStore: inner, gate: make(chan struct{}), entered: make(chan struct{}, 64)}
}

func (g *gatedStore) Put(key string, data []byte) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.ObjectStore.Put(key, data)
}

// TestBlockedUploadDoesNotBlockAppend pins the PR 6 lockio fix: upload-
// on-seal runs on a background goroutine, so an ObjectStore.Put that
// never returns must not stall the append path. Before the fix the
// upload ran under the backend lock and the second rotation would hang.
func TestBlockedUploadDoesNotBlockAppend(t *testing.T) {
	cfg, objects := remoteFixture(t, -1)
	gated := newGatedStore(objects)
	cfg.Remote = gated
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// First batch rotates at least once; the uploader parks in Put.
	appendN(t, arch.Backend, 10, 1)
	select {
	case <-gated.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("uploader never reached Put")
	}

	// With the upload parked, appends (including further rotations) must
	// still complete promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		appendN(t, arch.Backend, 30, 2)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("append blocked behind a stalled ObjectStore.Put")
	}

	// Release the store: Close drains the queue, after which every sealed
	// segment has migrated and only the active tail is local.
	close(gated.gate)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	if err := arch.Backend.UploadErr(); err != nil {
		t.Fatalf("upload error after drain: %v", err)
	}
	keys, err := objects.List("wal-")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 3 {
		t.Fatalf("expected several migrated segments after Close drained the queue, got %v", keys)
	}
	if got := localWALs(t, cfg.Dir); len(got) != 1 {
		t.Fatalf("local dir should hold only the active segment, has %v", got)
	}
}

// failingDeleteStore delegates everything but fails Delete.
type failingDeleteStore struct {
	ObjectStore
}

func (f *failingDeleteStore) Delete(key string) error {
	return errors.New("object store refused the delete")
}

// TestCompactRemoteDeleteFailureSurfaces is the errsink regression test:
// removeRemote used to discard ObjectStore.Delete errors during
// compaction, so an object store that silently stopped accepting deletes
// leaked garbage without a trace. The error now parks in UploadErr.
func TestCompactRemoteDeleteFailureSurfaces(t *testing.T) {
	cfg, objects := remoteFixture(t, -1)
	cfg.Remote = &failingDeleteStore{ObjectStore: objects}
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()

	appendN(t, arch.Backend, 40, 3)
	if len(arch.Backend.SealedSegments()) == 0 {
		t.Fatal("fixture never sealed a segment")
	}
	if err := arch.Backend.Compact(); err != nil {
		t.Fatal(err)
	}
	err = arch.Backend.UploadErr()
	if err == nil {
		t.Fatal("Delete failure during compaction was swallowed; want it surfaced in UploadErr")
	}
	if !strings.Contains(err.Error(), "deleting compacted") {
		t.Fatalf("unexpected error: %v", err)
	}
}
