package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/tstore"
)

// writeWAL appends recs through a fresh archive in dir and closes it,
// returning the path of the segment that received them.
func writeWAL(t *testing.T, dir string, recs []model.VesselState) string {
	t.Helper()
	arch, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Backend.Append(recs); err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, arch.Backend.seq)
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	return seg
}

// TestTornWriteTruncation is the crash-fixture matrix: a segment cut at
// every interesting byte boundary must recover exactly the records before
// the tear, truncate the file back to the last valid frame, and leave the
// archive appendable.
func TestTornWriteTruncation(t *testing.T) {
	const nRecs = 10
	const frameSize = frameHeadSize + recordSize
	cases := []struct {
		name     string
		cutAfter int64 // file size to truncate to
		wantRecs int
	}{
		{"mid frame header", segHeaderSize + 5*frameSize + 3, 5},
		{"mid payload", segHeaderSize + 7*frameSize + frameHeadSize + recordSize/2, 7},
		{"after full frame", segHeaderSize + 4*frameSize, 4},
		{"empty tail after header", segHeaderSize, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var recs []model.VesselState
			for i := 0; i < nRecs; i++ {
				recs = append(recs, sample(uint32(1+i), i*10, 40+float64(i), 5))
			}
			seg := writeWAL(t, dir, recs)
			if err := os.Truncate(seg, tc.cutAfter); err != nil {
				t.Fatal(err)
			}

			re, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if re.Stats.WALRecords != tc.wantRecs {
				t.Fatalf("recovered %d records, want %d", re.Stats.WALRecords, tc.wantRecs)
			}
			wantTorn := tc.cutAfter - int64(segHeaderSize) - int64(tc.wantRecs*frameSize)
			if re.Stats.TornBytes != wantTorn {
				t.Fatalf("torn bytes = %d, want %d", re.Stats.TornBytes, wantTorn)
			}
			if fi, err := os.Stat(seg); err != nil {
				t.Fatal(err)
			} else if want := int64(segHeaderSize + tc.wantRecs*frameSize); fi.Size() != want {
				t.Fatalf("segment not truncated to last valid record: size %d, want %d", fi.Size(), want)
			}

			// The archive keeps working: append, close, recover again.
			extra := sample(200, 999, 50, 10)
			if err := re.Backend.Append([]model.VesselState{extra}); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if got := re2.Stats.Total(); got != tc.wantRecs+1 {
				t.Fatalf("after post-tear append: recovered %d, want %d", got, tc.wantRecs+1)
			}
			if _, ok := re2.Live().Get(200); !ok {
				t.Fatal("post-tear append lost")
			}
		})
	}
}

// TestCorruptCRCTruncates flips a payload byte of the final frame: the
// checksum must catch it and recovery must drop exactly that record.
func TestCorruptCRCTruncates(t *testing.T) {
	dir := t.TempDir()
	var recs []model.VesselState
	for i := 0; i < 6; i++ {
		recs = append(recs, sample(uint32(1+i), i*10, 40+float64(i), 5))
	}
	seg := writeWAL(t, dir, recs)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF // inside the last frame's payload
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats.WALRecords != 5 {
		t.Fatalf("recovered %d records, want 5 (corrupt final frame dropped)", re.Stats.WALRecords)
	}
	if re.Stats.TornBytes != frameHeadSize+recordSize {
		t.Fatalf("torn bytes = %d, want one frame", re.Stats.TornBytes)
	}
}

// TestCorruptMidSegmentIsError pins the integrity stance: only the newest
// segment may be torn. A checksum failure in a sealed (non-final) segment
// is data corruption and recovery must refuse rather than silently
// truncate away good newer segments.
func TestCorruptMidSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 512, CompactEvery: -1}
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []model.VesselState
	for i := 0; i < 100; i++ {
		recs = append(recs, sample(uint32(1+i%5), i*10, 40, 5))
	}
	if err := arch.Backend.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %v", segs)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("recovery accepted a corrupt sealed segment")
	}
}

// TestReplayEqualsInMemory is the WAL-replay property test: for random
// batches appended through the full disk lifecycle — rotations,
// compactions, reopens — the recovered store must equal an in-memory
// store fed the same (quantised) records.
func TestReplayEqualsInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 4096, CompactEvery: 2}
	mem := tstore.New()

	i := 0
	for round := 0; round < 4; round++ {
		arch, err := Open(cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Verify this round's recovery against the reference before
		// appending more.
		if !reflect.DeepEqual(states(arch.Store), states(mem)) {
			t.Fatalf("round %d: recovered store diverges from reference", round)
		}
		var batch []model.VesselState
		for j := 0; j < 250+rng.Intn(250); j++ {
			s := randState(rng, i)
			i++
			mem.Append(Quantize(s))
			batch = append(batch, s)
			if len(batch) >= 1+rng.Intn(40) {
				if err := arch.Backend.Append(batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		if err := arch.Backend.Append(batch); err != nil {
			t.Fatal(err)
		}
		if err := arch.Close(); err != nil {
			t.Fatal(err)
		}
	}

	final, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if mem.Len() != final.Store.Len() {
		t.Fatalf("recovered %d points, reference holds %d", final.Store.Len(), mem.Len())
	}
	if !reflect.DeepEqual(states(final.Store), states(mem)) {
		t.Fatal("final recovered store diverges from in-memory reference")
	}
}

// TestHeaderlessFinalSegment pins the pre-header crash window: a final
// segment of zero (or partial-header) length is fully torn — recovery
// must drop the file, not error, and the archive must keep working.
func TestHeaderlessFinalSegment(t *testing.T) {
	for _, size := range []int64{0, segHeaderSize - 2} {
		dir := t.TempDir()
		recs := []model.VesselState{sample(1, 0, 40, 5), sample(1, 10, 40.1, 5)}
		seg := writeWAL(t, dir, recs)
		next := segPath(dir, 2) // the segment a crashed restart opened but never flushed
		if seg == next {
			t.Fatal("unexpected segment numbering")
		}
		if err := os.WriteFile(next, make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if re.Stats.WALRecords != 2 {
			t.Fatalf("size %d: recovered %d records, want 2", size, re.Stats.WALRecords)
		}
		if re.Stats.TornBytes != size {
			t.Fatalf("size %d: torn bytes = %d", size, re.Stats.TornBytes)
		}
		if _, err := os.Stat(next); !os.IsNotExist(err) {
			t.Fatalf("size %d: headerless segment survived recovery", size)
		}
		if err := re.Backend.Append([]model.VesselState{sample(2, 20, 41, 6)}); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if re2.Stats.Total() != 3 {
			t.Fatalf("size %d: second recovery found %d records, want 3", size, re2.Stats.Total())
		}
		re2.Close()
	}
}

// TestWriterLockExcludesSecondWriter pins the archive-directory lock: a
// second concurrent writer must fail fast, and the lock must release on
// Close. Read-only opens are lockless and coexist with a writer.
func TestWriterLockExcludesSecondWriter(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no flock on this platform: writer exclusion is advisory-only (lock_fallback.go)")
	}
	dir := t.TempDir()
	arch, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("second writer acquired a locked archive")
	}
	if _, err := OpenReadOnly(Config{Dir: dir}); err != nil {
		t.Fatalf("read-only open blocked by writer lock: %v", err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("lock not released on Close: %v", err)
	}
	re.Close()
}

// TestOpenReadOnlyMutatesNothing pins the read-only contract: recovery of
// a torn archive reads the valid prefix but leaves every byte on disk as
// it found it — no truncation, no cleanup, no new segment, no lock file.
func TestOpenReadOnlyMutatesNothing(t *testing.T) {
	dir := t.TempDir()
	var recs []model.VesselState
	for i := 0; i < 8; i++ {
		recs = append(recs, sample(uint32(1+i), i*10, 40+float64(i), 5))
	}
	seg := writeWAL(t, dir, recs)
	const frameSize = frameHeadSize + recordSize
	cut := int64(segHeaderSize + 5*frameSize + 3) // torn mid-header of frame 6
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "LOCK"))
	before := dirListing(t, dir)

	ro, err := OpenReadOnly(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ro.Backend != nil || !ro.ReadOnly {
		t.Fatal("read-only archive exposes a backend")
	}
	if ro.Stats.WALRecords != 5 {
		t.Fatalf("recovered %d records, want 5", ro.Stats.WALRecords)
	}
	if ro.Stats.TornBytes != cut-int64(segHeaderSize+5*frameSize) {
		t.Fatalf("torn bytes = %d", ro.Stats.TornBytes)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	if after := dirListing(t, dir); !reflect.DeepEqual(before, after) {
		t.Fatalf("read-only open mutated the directory:\nbefore %v\nafter  %v", before, after)
	}
}

// dirListing returns name→size for every file in dir.
func dirListing(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fi.Size()
	}
	return out
}

func TestOpenReadOnlyMissingDirErrors(t *testing.T) {
	if _, err := OpenReadOnly(Config{Dir: filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("read-only open of a missing directory should fail, not create it")
	}
}

// Read-only recovery must also refuse mid-archive corruption — only the
// final segment's tail may be skipped.
func TestOpenReadOnlyCorruptMidSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 512, CompactEvery: -1}
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []model.VesselState
	for i := 0; i < 100; i++ {
		recs = append(recs, sample(uint32(1+i%5), i*10, 40, 5))
	}
	if err := arch.Backend.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReadOnly(cfg); err == nil {
		t.Fatal("read-only recovery accepted a corrupt sealed segment")
	}
}
