// Package store is the persistence subsystem of the infrastructure: it
// makes the trajectory archive and the live maritime picture survive
// process restarts, the top ROADMAP open item toward exceeding-RAM
// archives and multi-backend scaling.
//
// The design is a classic write-ahead log with snapshots:
//
//   - Appended records land in an append-only segmented WAL
//     (length-prefixed, CRC32C-checksummed frames; fixed-cap segments
//     with rotation — see wal.go for the layout).
//   - Compaction folds sealed segments into a compact snapshot in the
//     existing tstore WriteTo/Load encoding, bounding recovery time and
//     disk usage; the snapshot file name records the newest segment it
//     covers, so a crash between snapshot rename and segment deletion
//     cannot double-count.
//   - Open recovers by loading the newest snapshot and replaying the WAL
//     tail, truncating torn writes at the last valid record — the state
//     after a kill -9 mid-ingest is exactly the persisted prefix.
//
// Backends implement the minimal Backend interface so the rest of the
// stack (tstore attachment points, the ingest flush stage, the CLIs) is
// storage-agnostic: Mem keeps records in memory (tests, ephemeral runs),
// Disk is the durable WAL+snapshot implementation. The asynchronous
// Flusher (flusher.go) decouples ingest latency from disk latency.
package store

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tstore"
)

// Backend is the pluggable persistence target for appended vessel states.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Append persists a batch of records per the backend's sync policy.
	Append(recs []model.VesselState) error
	// Sync forces buffered appends down to durable storage.
	Sync() error
	// Close flushes, syncs and releases the backend.
	Close() error
}

// --- in-memory backend --------------------------------------------------------------

// Mem is the in-memory Backend: records accumulate in an ordinary slice.
// It exists for tests, benchmarks (the zero-durability baseline) and
// ephemeral runs that still want the flush-stage wiring.
type Mem struct {
	mu     sync.Mutex
	recs   []model.VesselState
	closed bool
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{} }

// Append stores the batch.
func (m *Mem) Append(recs []model.VesselState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("store: append to closed Mem backend")
	}
	m.recs = append(m.recs, recs...)
	return nil
}

// Sync is a no-op: memory is as durable as Mem gets.
func (m *Mem) Sync() error { return nil }

// Close marks the backend closed; further appends fail.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Len returns the number of records appended so far.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// States returns a copy of the appended records in append order.
func (m *Mem) States() []model.VesselState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]model.VesselState(nil), m.recs...)
}

// --- disk backend --------------------------------------------------------------------

// SyncPolicy selects when the disk backend calls fsync.
type SyncPolicy int

const (
	// SyncRotate (the default) fsyncs when a segment seals and on
	// Sync/Close — at most one segment of recent records is exposed to an
	// OS crash; a process crash alone loses only unflushed buffers.
	SyncRotate SyncPolicy = iota
	// SyncAlways fsyncs after every Append batch: maximum durability,
	// disk-latency-bound ingest.
	SyncAlways
	// SyncNever leaves flushing entirely to the OS page cache.
	SyncNever
)

// Config parameterises a disk archive. The zero value of every field but
// Dir is usable.
type Config struct {
	// Dir is the archive directory (created if absent). Required.
	Dir string
	// SegmentBytes caps a WAL segment before rotation (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncRotate).
	Sync SyncPolicy
	// CompactEvery folds sealed segments into the snapshot once this many
	// have accumulated (default 8; negative disables auto-compaction).
	CompactEvery int
	// LiveCellDeg is the grid cell size of the live layer Archive.Live
	// rebuilds (default 0.25°, matching core.Pipeline).
	LiveCellDeg float64
	// Remote, when set, tiers the archive onto an object store: a sealed
	// WAL segment is uploaded on rotation (and a compacted snapshot on
	// compaction) and its local file removed, so local disk holds only
	// the active segment. Upload is confirmed-before-delete: a crash
	// between seal and upload leaves the local file, and the next Open
	// re-uploads it; a half-written remote object cannot be observed at
	// all when the store honours the ObjectStore atomic-Put contract.
	// Recovery and compaction read migrated objects back through a block
	// cache. A failed upload degrades to local (the segment stays on
	// local disk, retried at the next Open) and surfaces in UploadErr.
	Remote ObjectStore
	// RemoteCacheBytes bounds the read-through cache over Remote reads
	// (default 32 MiB).
	RemoteCacheBytes int64
}

func (c *Config) normalize() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 8
	}
	if c.LiveCellDeg <= 0 {
		c.LiveCellDeg = 0.25
	}
	if c.RemoteCacheBytes <= 0 {
		c.RemoteCacheBytes = 32 << 20
	}
}

// Disk is the durable Backend: a segmented WAL plus snapshot compaction
// in an archive directory. Build one with Open, which also recovers the
// persisted state.
type Disk struct {
	cfg    Config
	rcache *BlockCache // read-through cache over cfg.Remote (nil without Remote)

	mu        sync.Mutex
	seg       *os.File
	bw        *bufio.Writer
	seq       uint64 // active segment sequence number
	segBytes  int64  // bytes written to the active segment
	sealed    []uint64
	snapSeq   uint64   // newest segment folded into the snapshot (0 = none)
	frame     []byte   // reusable frame-encoding scratch
	lock      *os.File // flock-held LOCK file; released on Close
	closed    bool
	uploadErr error // first failed segment/snapshot migration (degraded to local)

	// Upload-on-seal runs on a background goroutine so a slow remote Put
	// never stalls the append path (it used to run under mu). The queue
	// and in-flight marker live under mu; upCond (on mu) is signalled on
	// enqueue, on upload completion and on close. upQAt parallels upQ
	// with enqueue instants so the queue's age is observable (a stalled
	// remote shows up as an old head, not just a deep queue).
	upQ        []uint64             // sealed segments awaiting upload, FIFO
	upQAt      []time.Time          // enqueue instant of each upQ entry
	upInflight map[uint64]time.Time // segment being uploaded -> its enqueue instant
	upClosed   bool                 // tells the uploader to drain and exit
	upStalled  bool                 // an upload-stall flight event is outstanding
	upCond     *sync.Cond
	upWG       sync.WaitGroup
	compacting bool // re-entrancy guard: compactLocked waits on upCond, releasing mu

	// Observability instruments (Instrument). Atomic pointers because
	// the uploader goroutine is already running when Instrument is
	// called on a live backend.
	appendNS     atomic.Pointer[obs.Histogram]
	uploadNS     atomic.Pointer[obs.Histogram]
	sealedCtr    atomic.Pointer[obs.Counter]
	uploadCtr    atomic.Pointer[obs.Counter]
	uploadErrCtr atomic.Pointer[obs.Counter]

	// flight, when attached (SetFlight), records the WAL's load-bearing
	// transitions: segment seals, upload outcomes, and upload-queue
	// stall/drain episodes.
	flight atomic.Pointer[obs.Flight]
}

// SetFlight attaches a flight recorder. Safe on a live backend — the
// append path and the uploader pick it up atomically.
func (d *Disk) SetFlight(f *obs.Flight) { d.flight.Store(f) }

// uploadStallAge is how old the upload queue's head may grow before the
// backend records a stall episode: long enough that a merely slow
// remote doesn't cry wolf, short enough that a blocked one is on record
// while the incident is still live.
const uploadStallAge = 5 * time.Second

// UploadQueue reports the migration backlog: how many sealed objects
// await (or are in) upload, and the age of the oldest — the two numbers
// a readiness check needs (a healthy queue drains young; a blocked
// remote shows as a head that only gets older).
func (d *Disk) UploadQueue() (depth int, oldest time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	depth = len(d.upQ) + len(d.upInflight)
	now := time.Now()
	if len(d.upQAt) > 0 {
		oldest = now.Sub(d.upQAt[0])
	}
	for _, at := range d.upInflight {
		if age := now.Sub(at); age > oldest {
			oldest = age
		}
	}
	return depth, oldest
}

// Instrument registers the backend's series with reg: WAL append
// latency (store_wal_append_ns, the whole framed write including any
// rotation it triggers), seal count, background upload latency and
// outcomes, and queue-depth gauges. Safe on a live backend — the
// running goroutines pick the instruments up atomically.
func (d *Disk) Instrument(reg *obs.Registry) {
	d.appendNS.Store(reg.Histogram("store_wal_append_ns"))
	d.uploadNS.Store(reg.Histogram("store_upload_ns"))
	d.sealedCtr.Store(reg.Counter("store_wal_sealed_total"))
	d.uploadCtr.Store(reg.Counter("store_uploads_total"))
	d.uploadErrCtr.Store(reg.Counter("store_upload_failures_total"))
	reg.GaugeFunc("store_upload_queue_depth", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.upQ) + len(d.upInflight))
	})
	reg.GaugeFunc("store_wal_sealed_segments", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.sealed))
	})
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.bin", seq) }

// Local file names and remote object keys are identical, so an archive
// directory and its object store read as one namespace.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, segName(seq))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, snapName(seq))
}

// Append frames the batch into the active segment, rotating when the
// segment cap is reached. Durability follows the Sync policy.
func (d *Disk) Append(recs []model.VesselState) error {
	if h := d.appendNS.Load(); h != nil {
		defer h.ObserveSince(time.Now()) // includes lock wait + any rotation
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: append to closed archive %s", d.cfg.Dir)
	}
	for i := range recs {
		if d.segBytes >= d.cfg.SegmentBytes {
			if err := d.rotateLocked(); err != nil {
				return err
			}
		}
		d.frame = appendFrame(d.frame[:0], recs[i])
		if _, err := d.bw.Write(d.frame); err != nil {
			return err
		}
		d.segBytes += int64(len(d.frame))
	}
	if d.cfg.Sync == SyncAlways {
		return d.syncLocked()
	}
	return nil
}

// Sync flushes buffered frames and fsyncs the active segment.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	return d.syncLocked()
}

func (d *Disk) syncLocked() error {
	if err := d.bw.Flush(); err != nil {
		return err
	}
	return d.seg.Sync()
}

func (d *Disk) flushLocked() error {
	if err := d.bw.Flush(); err != nil {
		return err
	}
	if d.cfg.Sync != SyncNever {
		return d.seg.Sync()
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one,
// migrating the sealed segment to the remote store (upload-on-seal) and
// compacting if enough sealed segments have accumulated.
func (d *Disk) rotateLocked() error {
	if err := d.flushLocked(); err != nil {
		return err
	}
	if err := d.seg.Close(); err != nil {
		return err
	}
	d.sealed = append(d.sealed, d.seq)
	if c := d.sealedCtr.Load(); c != nil {
		c.Inc()
	}
	// Record is atomic-add + short slot mutex, no IO — fine under mu.
	d.flight.Load().Record(obs.FlightInfo, "store", "segment sealed",
		obs.FI("seq", int64(d.seq)), obs.FI("bytes", d.segBytes))
	d.enqueueUploadLocked(d.seq)
	if err := d.openSegmentLocked(d.seq + 1); err != nil {
		return err
	}
	if d.cfg.CompactEvery > 0 && len(d.sealed) >= d.cfg.CompactEvery {
		//lint:ignore lockio compaction is documented stop-the-world (see Compact); streaming compaction is a ROADMAP item
		return d.compactLocked()
	}
	return nil
}

// enqueueUploadLocked hands a sealed segment to the background uploader.
// Called with d.mu held; the actual IO happens on the uploader goroutine
// with no lock, so a slow or blocked remote Put cannot stall appends.
func (d *Disk) enqueueUploadLocked(seq uint64) {
	if d.remote() == nil {
		return
	}
	d.upQ = append(d.upQ, seq)
	d.upQAt = append(d.upQAt, time.Now())
	// Stall detection happens here, on the hot evidence: if the queue's
	// head has aged past the bound while new seals keep arriving, the
	// uploader is stuck behind the remote. One event per episode; the
	// uploader records the matching drain.
	if !d.upStalled && time.Since(d.upQAt[0]) > uploadStallAge {
		d.upStalled = true
		d.flight.Load().Record(obs.FlightWarn, "store", "upload queue stalled",
			obs.FI("depth", int64(len(d.upQ)+len(d.upInflight))),
			obs.FI("oldest_ms", time.Since(d.upQAt[0]).Milliseconds()))
	}
	d.upCond.Signal()
}

// startUploader initialises the queue state and, for tiered archives,
// launches the upload-on-seal goroutine. Called once from open, before
// the Disk is shared.
func (d *Disk) startUploader() {
	d.upInflight = make(map[uint64]time.Time)
	d.upCond = sync.NewCond(&d.mu)
	if d.remote() == nil {
		return
	}
	d.upWG.Add(1)
	go d.uploader()
}

// uploader drains the seal queue: dequeue under mu, do the IO unlocked,
// re-acquire to record the outcome. Exits once Close marks upClosed and
// the queue is empty — Close waits for that, so pending migrations
// complete before Close returns.
func (d *Disk) uploader() {
	defer d.upWG.Done()
	d.mu.Lock()
	for {
		for !d.upClosed && len(d.upQ) == 0 {
			d.upCond.Wait()
		}
		if len(d.upQ) == 0 {
			d.mu.Unlock()
			return
		}
		seq := d.upQ[0]
		queuedAt := d.upQAt[0]
		d.upQ = d.upQ[1:]
		d.upQAt = d.upQAt[1:]
		d.upInflight[seq] = queuedAt
		d.mu.Unlock()

		h := d.uploadNS.Load()
		t0 := time.Now()
		err := d.uploadSegment(seq)
		if h != nil {
			h.ObserveSince(t0)
		}
		if c := d.uploadCtr.Load(); c != nil {
			c.Inc()
		}
		if err != nil {
			if c := d.uploadErrCtr.Load(); c != nil {
				c.Inc()
			}
			d.flight.Load().Record(obs.FlightError, "store", "segment upload failed",
				obs.FI("seq", int64(seq)), obs.FS("error", err.Error()))
		} else {
			d.flight.Load().Record(obs.FlightInfo, "store", "segment uploaded",
				obs.FI("seq", int64(seq)), obs.FI("ms", time.Since(t0).Milliseconds()))
		}

		d.mu.Lock()
		delete(d.upInflight, seq)
		if err != nil {
			d.setUploadErrLocked(err)
		}
		if d.upStalled && len(d.upQ) == 0 && len(d.upInflight) == 0 {
			d.upStalled = false
			d.flight.Load().Record(obs.FlightInfo, "store", "upload queue drained",
				obs.FI("last_seq", int64(seq)))
		}
		d.upCond.Broadcast()
	}
}

// uploadSegment migrates one sealed segment to the remote store and
// removes the local file. No lock is held. The local copy is removed
// only after the Put succeeded, so a crash anywhere in between leaves
// the segment local and the next Open re-uploads it. A failed upload
// degrades to local-only (the WAL stays durable on local disk) and
// parks in uploadErr; it does not fail the append path.
func (d *Disk) uploadSegment(seq uint64) error {
	path := segPath(d.cfg.Dir, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: reading sealed segment for upload: %w", err)
	}
	if err := d.remote().Put(segName(seq), data); err != nil {
		return fmt.Errorf("store: uploading %s: %w", segName(seq), err)
	}
	if err := os.Remove(path); err != nil {
		// The migration itself succeeded; the stale local copy just gets
		// re-uploaded (identical bytes) at the next Open. Still worth the
		// operator's attention.
		return fmt.Errorf("store: removing migrated segment %s: %w", path, err)
	}
	return nil
}

func (d *Disk) remote() ObjectStore { return d.cfg.Remote }

func (d *Disk) setUploadErrLocked(err error) {
	if d.uploadErr == nil {
		d.uploadErr = err
	}
}

// UploadErr returns the first failed remote migration (nil while every
// seal and snapshot reached the object store). A non-nil value means the
// archive is degraded to local disk for the named object, not that data
// was lost.
func (d *Disk) UploadErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.uploadErr
}

// remoteGet reads one migrated object through the block cache.
func (d *Disk) remoteGet(key string) ([]byte, error) {
	return d.rcache.Get(key, func() ([]byte, error) { return d.remote().Get(key) })
}

// replaySealedLocked replays one sealed segment wherever it lives: the
// local file when still present (not yet migrated), otherwise the remote
// object. Sealed segments can never legitimately be torn.
func (d *Disk) replaySealedLocked(seq uint64, fn func(model.VesselState)) error {
	path := segPath(d.cfg.Dir, seq)
	if _, err := os.Stat(path); err == nil {
		_, _, rerr := replaySegment(path, tornError, fn)
		return rerr
	}
	if d.remote() == nil {
		return fmt.Errorf("store: sealed segment %s missing", path)
	}
	data, err := d.remoteGet(segName(seq))
	if err != nil {
		return fmt.Errorf("store: fetching migrated segment %s: %w", segName(seq), err)
	}
	_, err = replaySegmentBytes(segName(seq), data, fn)
	return err
}

// loadSnapLocked loads the snapshot covering seq from the local file or
// the remote object.
func (d *Disk) loadSnapLocked(seq uint64, into *tstore.Store) error {
	path := snapPath(d.cfg.Dir, seq)
	if _, err := os.Stat(path); err == nil {
		return loadSnapshot(path, into)
	}
	if d.remote() == nil {
		return fmt.Errorf("store: snapshot %s missing", path)
	}
	data, err := d.remoteGet(snapName(seq))
	if err != nil {
		return fmt.Errorf("store: fetching migrated snapshot %s: %w", snapName(seq), err)
	}
	if _, err := into.Load(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("store: loading migrated snapshot %s: %w", snapName(seq), err)
	}
	return nil
}

func (d *Disk) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(segPath(d.cfg.Dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if d.cfg.Sync != SyncNever {
		if err := syncDir(d.cfg.Dir); err != nil {
			f.Close()
			return err
		}
	}
	d.seg = f
	d.seq = seq
	d.bw = bufio.NewWriterSize(f, 1<<16)
	d.segBytes = segHeaderSize
	return writeSegmentHeader(d.bw)
}

// Compact folds the sealed WAL segments into a fresh snapshot (tstore
// WriteTo encoding) and deletes them. Appends block for the duration; run
// it from a maintenance path, or let rotation trigger it (CompactEvery).
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("store: compact on closed archive %s", d.cfg.Dir)
	}
	//lint:ignore lockio compaction is documented stop-the-world (see Compact); streaming compaction is a ROADMAP item
	return d.compactLocked()
}

func (d *Disk) compactLocked() error {
	if len(d.sealed) == 0 || d.compacting {
		return nil
	}
	// Settle the background uploader before folding: still-queued
	// segments are dropped from the queue (the fold reads them from
	// local disk; uploading first would be wasted work), and in-flight
	// ones are waited out so the fold and the uploader don't race on the
	// segment files. upCond.Wait releases d.mu, so appends can slip in
	// and seal more segments meanwhile — the compacting flag keeps a
	// second rotation from folding concurrently, and d.sealed is read
	// only after the queue is quiet.
	d.compacting = true
	defer func() { d.compacting = false }()
	d.upQ, d.upQAt = d.upQ[:0], d.upQAt[:0]
	for len(d.upInflight) > 0 {
		d.upCond.Wait()
		d.upQ, d.upQAt = d.upQ[:0], d.upQAt[:0]
	}
	// The fold consumes whatever the queue held, so any stall episode
	// ends here — without a drain event, since nothing was uploaded.
	d.upStalled = false
	folded := tstore.New()
	if d.snapSeq > 0 {
		if err := d.loadSnapLocked(d.snapSeq, folded); err != nil {
			return err
		}
	}
	for _, seq := range d.sealed {
		if err := d.replaySealedLocked(seq, folded.Append); err != nil {
			return err
		}
	}
	newSeq := d.sealed[len(d.sealed)-1]
	if d.remote() != nil {
		// Migrated archive: the new snapshot goes straight to the object
		// store (atomic Put), never touching local disk. A failed Put
		// aborts the compaction — the sealed segments stay wherever they
		// are and the next rotation retries.
		var buf bytes.Buffer
		if _, err := folded.WriteTo(&buf); err != nil {
			return err
		}
		//lint:ignore lockio compaction is documented stop-the-world (see Compact); streaming compaction is a ROADMAP item
		if err := d.remote().Put(snapName(newSeq), buf.Bytes()); err != nil {
			return fmt.Errorf("store: uploading %s: %w", snapName(newSeq), err)
		}
	} else {
		if err := writeSnapshot(snapPath(d.cfg.Dir, newSeq), folded); err != nil {
			return err
		}
		// The snapshot rename must reach the directory before the covered
		// files are unlinked — otherwise a power cut could persist the
		// deletions but not the rename, losing the compacted data.
		if err := syncDir(d.cfg.Dir); err != nil {
			return err
		}
	}
	// Now everything the snapshot covers can go — local files and remote
	// objects both. A crash anywhere below re-deletes on the next Open
	// (covered files are ignored by recovery).
	if d.snapSeq > 0 {
		//lint:ignore errsink covered file; a leftover is ignored by recovery and re-deleted at the next Open
		os.Remove(snapPath(d.cfg.Dir, d.snapSeq))
		//lint:ignore lockio compaction is documented stop-the-world (see Compact); streaming compaction is a ROADMAP item
		d.removeRemote(snapName(d.snapSeq))
	}
	for _, seq := range d.sealed {
		//lint:ignore errsink covered file; a leftover is ignored by recovery and re-deleted at the next Open
		os.Remove(segPath(d.cfg.Dir, seq))
		//lint:ignore lockio compaction is documented stop-the-world (see Compact); streaming compaction is a ROADMAP item
		d.removeRemote(segName(seq))
	}
	d.snapSeq = newSeq
	d.sealed = d.sealed[:0]
	return syncDir(d.cfg.Dir)
}

// removeRemote deletes a migrated object (and its cache entry). Caller
// holds d.mu. A leftover object below the snapshot horizon is ignored by
// recovery and re-deleted at the next Open, so a failed Delete costs
// only garbage — but it is still surfaced through UploadErr so a
// misbehaving object store is visible to the operator.
func (d *Disk) removeRemote(key string) {
	if d.remote() == nil {
		return
	}
	if err := d.remote().Delete(key); err != nil {
		d.setUploadErrLocked(fmt.Errorf("store: deleting compacted %s: %w", key, err))
	}
	d.rcache.Drop(key)
}

// syncDir fsyncs the archive directory so renames, creations and
// deletions are ordered against a power loss.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close flushes and fsyncs the active segment, drains pending segment
// migrations (so a Close-then-assert sequence observes the final remote
// state), releases the directory lock and retires the backend.
func (d *Disk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	err := d.syncLocked()
	if cerr := d.seg.Close(); err == nil {
		err = cerr
	}
	d.upClosed = true
	d.upCond.Broadcast()
	d.mu.Unlock()
	d.upWG.Wait()
	releaseLock(d.lock)
	return err
}

// Dir returns the archive directory.
func (d *Disk) Dir() string { return d.cfg.Dir }

// SealedSegments returns the sequence numbers of sealed, uncompacted
// segments (diagnostics).
func (d *Disk) SealedSegments() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]uint64(nil), d.sealed...)
}

func writeSnapshot(path string, st *tstore.Store) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := st.WriteTo(f); err != nil {
		f.Close()
		//lint:ignore errsink best-effort .tmp cleanup on a path already returning the write error; Open removes leftovers
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		//lint:ignore errsink best-effort .tmp cleanup on a path already returning the sync error; Open removes leftovers
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		//lint:ignore errsink best-effort .tmp cleanup on a path already returning the close error; Open removes leftovers
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func loadSnapshot(path string, into *tstore.Store) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := into.Load(f); err != nil {
		return fmt.Errorf("store: loading snapshot %s: %w", path, err)
	}
	return nil
}

// --- open / recovery ----------------------------------------------------------------

// RecoverStats describes what Open found on disk (and, for tiered
// archives, in the object store).
type RecoverStats struct {
	SnapshotPoints int   // points loaded from the newest snapshot
	WALRecords     int   // records replayed from WAL segments
	WALSegments    int   // segments replayed
	TornBytes      int64 // bytes truncated off the newest segment's torn tail
	RemoteSegments int   // segments replayed from the object store
	Reuploaded     int   // local sealed segments (re-)migrated during recovery
	CleanupErrs    int   // stale local files / remote objects that failed to delete (retried next Open)
}

// Total returns the recovered point count.
func (r RecoverStats) Total() int { return r.SnapshotPoints + r.WALRecords }

// instrument exposes what recovery found as gauges. Recovery numbers
// are facts about one Open, so they are set once, not computed at
// scrape.
func (r RecoverStats) instrument(reg *obs.Registry) {
	reg.Gauge("store_recovered_snapshot_points").Set(int64(r.SnapshotPoints))
	reg.Gauge("store_recovered_wal_records").Set(int64(r.WALRecords))
	reg.Gauge("store_recovered_wal_segments").Set(int64(r.WALSegments))
	reg.Gauge("store_recovered_torn_bytes").Set(r.TornBytes)
	reg.Gauge("store_recovered_remote_segments").Set(int64(r.RemoteSegments))
	reg.Gauge("store_recovery_reuploaded").Set(int64(r.Reuploaded))
	reg.Gauge("store_recovery_cleanup_errors").Set(int64(r.CleanupErrs))
}

// Archive is an opened on-disk archive: the recovered store plus (for
// writable opens) the disk backend positioned to continue appending.
type Archive struct {
	// Store holds the recovered trajectory archive. Records appended to
	// the backend after Open are NOT mirrored into it automatically —
	// attach the backend (or a Flusher over it) to the live store doing
	// the ingesting (tstore.Store.Attach).
	Store *tstore.Store
	// Backend is the disk backend, ready for appends. Nil when the
	// archive was opened with OpenReadOnly.
	Backend *Disk
	// Stats describes the recovery.
	Stats RecoverStats
	// ReadOnly reports whether this archive came from OpenReadOnly.
	ReadOnly bool

	cfg Config
}

// Open opens (creating if needed) the archive directory, recovers the
// persisted state — newest snapshot plus WAL tail, with torn trailing
// records truncated — and returns the recovered store with the backend
// ready to continue appending into a fresh segment. The directory is
// locked (flock on Dir/LOCK) for the lifetime of the backend, so a
// second writer — or a crashed writer's survivor racing a restart —
// fails fast instead of corrupting the WAL.
func Open(cfg Config) (*Archive, error) {
	return open(cfg, false)
}

// OpenReadOnly recovers the persisted state without mutating the
// directory in any way: no torn-tail truncation, no stale-file cleanup,
// no new segment, no lock. It is safe to run against a directory a live
// writer owns — replay simply stops at the writer's in-flight tail
// (counted in Stats.TornBytes). The returned Archive has a nil Backend;
// Close is a no-op. Point-in-time caveat: a concurrent compaction can
// delete a segment between the directory scan and its replay, which
// surfaces as an open error — just retry.
func OpenReadOnly(cfg Config) (*Archive, error) {
	return open(cfg, true)
}

func open(cfg Config, readOnly bool) (*Archive, error) {
	cfg.normalize()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Config.Dir is required")
	}
	var lock *os.File
	if readOnly {
		// Read-only must not create anything — a missing directory is an
		// error, not an empty archive.
		if fi, err := os.Stat(cfg.Dir); err != nil {
			return nil, err
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("store: %s is not a directory", cfg.Dir)
		}
	} else {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if lock, err = acquireLock(cfg.Dir); err != nil {
			return nil, err
		}
		// Every mutation below happens under the directory lock.
	}
	// A remote-backed directory is marked: opening it without the object
	// store would silently recover only the local tail — and, worse, a
	// compaction in that state could later cover (and delete) migrated
	// segments whose data the snapshot never saw. Refuse instead.
	marker := filepath.Join(cfg.Dir, "REMOTE")
	if _, err := os.Stat(marker); err == nil && cfg.Remote == nil {
		releaseLock(lock)
		return nil, fmt.Errorf(
			"store: %s is a remote-backed archive (REMOTE marker present): its segments migrate to an object store; open it with Config.Remote (maritimed -remote-dir / msaquery -remote)",
			cfg.Dir)
	} else if cfg.Remote != nil && !readOnly && os.IsNotExist(err) {
		if werr := os.WriteFile(marker, []byte("segments and snapshots migrate to an object store; open with Config.Remote\n"), 0o644); werr != nil {
			releaseLock(lock)
			return nil, werr
		}
		if serr := syncDir(cfg.Dir); serr != nil {
			releaseLock(lock)
			return nil, serr
		}
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	var stats RecoverStats
	// cleanup deletes a stale file or object, best-effort: recovery
	// ignores leftovers and re-deletes them at the next Open, but a
	// failing janitor is counted so operators can see a directory or
	// object store that has stopped accepting deletes.
	cleanup := func(err error) {
		if err != nil {
			stats.CleanupErrs++
		}
	}
	localSeg := map[uint64]bool{}
	localSnap := map[uint64]bool{}
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		switch {
		case len(name) == len("wal-00000000.log") && name[:4] == "wal-":
			if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err == nil {
				localSeg[seq] = true
			}
		case len(name) == len("snap-00000000.bin") && name[:5] == "snap-":
			if _, err := fmt.Sscanf(name, "snap-%08d.bin", &seq); err == nil {
				localSnap[seq] = true
			}
		case filepath.Ext(name) == ".tmp" && !readOnly:
			// Leftover from a crashed compaction; never referenced.
			cleanup(os.Remove(filepath.Join(cfg.Dir, name)))
		}
	}
	// A tiered archive spreads across the directory and the object store:
	// merge both listings. The active tail is always local (only sealed
	// segments migrate); remote objects are always complete (atomic Put,
	// local copy deleted only after a confirmed upload).
	remoteSeg := map[uint64]bool{}
	remoteSnap := map[uint64]bool{}
	var rcache *BlockCache
	if cfg.Remote != nil {
		rcache = NewBlockCache(cfg.RemoteCacheBytes)
		keys, err := cfg.Remote.List("")
		if err != nil {
			releaseLock(lock)
			return nil, fmt.Errorf("store: listing object store: %w", err)
		}
		for _, key := range keys {
			var seq uint64
			switch {
			case len(key) == len("wal-00000000.log") && key[:4] == "wal-":
				if _, err := fmt.Sscanf(key, "wal-%08d.log", &seq); err == nil {
					remoteSeg[seq] = true
				}
			case len(key) == len("snap-00000000.bin") && key[:5] == "snap-":
				if _, err := fmt.Sscanf(key, "snap-%08d.bin", &seq); err == nil {
					remoteSnap[seq] = true
				}
			}
		}
	}
	segs := sortedSeqs(localSeg, remoteSeg)
	snaps := sortedSeqs(localSnap, remoteSnap)
	remoteGet := func(key string) ([]byte, error) {
		return rcache.Get(key, func() ([]byte, error) { return cfg.Remote.Get(key) })
	}

	st := tstore.New()
	var snapSeq uint64
	if len(snaps) > 0 {
		snapSeq = snaps[len(snaps)-1]
		if localSnap[snapSeq] {
			err = loadSnapshot(snapPath(cfg.Dir, snapSeq), st)
		} else {
			var data []byte
			if data, err = remoteGet(snapName(snapSeq)); err == nil {
				_, err = st.Load(bytes.NewReader(data))
			}
		}
		if err != nil {
			releaseLock(lock)
			return nil, fmt.Errorf("store: loading snapshot %d: %w", snapSeq, err)
		}
		stats.SnapshotPoints = st.Len()
		// Older snapshots and covered segments are leftovers of a crashed
		// compaction — the newest snapshot subsumes them.
		if !readOnly {
			for _, s := range snaps[:len(snaps)-1] {
				if localSnap[s] {
					cleanup(os.Remove(snapPath(cfg.Dir, s)))
				}
				if remoteSnap[s] {
					cleanup(cfg.Remote.Delete(snapName(s)))
				}
			}
		}
	}
	maxSeq := snapSeq
	var lastLocal uint64 // the active tail at crash time, if any
	for seq := range localSeg {
		if seq > lastLocal {
			lastLocal = seq
		}
	}
	var sealed []uint64
	for _, seq := range segs {
		if seq <= snapSeq {
			if !readOnly {
				if localSeg[seq] {
					cleanup(os.Remove(segPath(cfg.Dir, seq)))
				}
				if remoteSeg[seq] {
					cleanup(cfg.Remote.Delete(segName(seq)))
				}
			}
			continue
		}
		if localSeg[seq] {
			// Only the newest local segment can legitimately be mid-write
			// (it was the active tail): readers skip its tail, writers
			// repair it. A tear anywhere else is real corruption for both.
			mode := tornError
			if seq == lastLocal && seq == maxSegSeq(segs) {
				if readOnly {
					mode = tornIgnore
				} else {
					mode = tornTruncate
				}
			}
			path := segPath(cfg.Dir, seq)
			n, torn, err := replaySegment(path, mode, st.Append)
			if err != nil {
				releaseLock(lock)
				return nil, err
			}
			stats.WALRecords += n
			stats.WALSegments++
			stats.TornBytes += torn
			// A segment torn before its header flushed is removed outright;
			// only files still on disk become sealed (compaction input).
			if _, err := os.Stat(path); err == nil {
				sealed = append(sealed, seq)
			}
		} else {
			data, err := remoteGet(segName(seq))
			if err != nil {
				releaseLock(lock)
				return nil, fmt.Errorf("store: fetching migrated segment %s: %w", segName(seq), err)
			}
			n, err := replaySegmentBytes(segName(seq), data, st.Append)
			if err != nil {
				releaseLock(lock)
				return nil, err
			}
			stats.WALRecords += n
			stats.WALSegments++
			stats.RemoteSegments++
			sealed = append(sealed, seq)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}

	if readOnly {
		return &Archive{Store: st, Stats: stats, ReadOnly: true, cfg: cfg}, nil
	}
	d := &Disk{cfg: cfg, rcache: rcache, sealed: sealed, snapSeq: snapSeq, lock: lock}
	d.startUploader()
	if cfg.Remote != nil {
		// Migrate every sealed segment still sitting on local disk: a
		// crash between seal and upload (or a previously failed upload,
		// or a half-written object next to a surviving local copy) left
		// it here, and the local copy is authoritative until a Put
		// confirms. Re-putting an already-uploaded segment just
		// overwrites it with identical bytes. Recovery uploads
		// synchronously — nothing else can touch the archive yet, and
		// Open's contract is a settled directory.
		for _, seq := range sealed {
			if _, err := os.Stat(segPath(d.cfg.Dir, seq)); err == nil {
				if uerr := d.uploadSegment(seq); uerr != nil {
					d.setUploadErrLocked(uerr) // not yet shared; no lock needed
				}
				if _, err := os.Stat(segPath(d.cfg.Dir, seq)); err != nil {
					stats.Reuploaded++
				}
			}
		}
	}
	if err := d.openSegmentLocked(maxSeq + 1); err != nil {
		releaseLock(lock)
		return nil, err
	}
	return &Archive{Store: st, Backend: d, Stats: stats, cfg: cfg}, nil
}

// sortedSeqs merges sequence-number sets into one ascending list.
func sortedSeqs(sets ...map[uint64]bool) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, set := range sets {
		for seq := range set {
			if !seen[seq] {
				seen[seq] = true
				out = append(out, seq)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxSegSeq(segs []uint64) uint64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1]
}

// Live rebuilds the live-picture layer from the recovered archive: each
// vessel's newest persisted state under the grid index. With a synopsis
// filter upstream this is the latest archived (not latest received)
// state — exactly what the persisted picture can know.
func (a *Archive) Live() *tstore.Live {
	l := tstore.NewLive(a.cfg.LiveCellDeg)
	for _, mmsi := range a.Store.MMSIs() {
		tr := a.Store.Trajectory(mmsi)
		if n := len(tr.Points); n > 0 {
			l.Update(tr.Points[n-1])
		}
	}
	return l
}

// Close closes the backend (a no-op for read-only archives).
func (a *Archive) Close() error {
	if a.Backend == nil {
		return nil
	}
	return a.Backend.Close()
}

// Instrument exposes the archive's recovery outcome as gauges and, for
// writable archives, instruments the backend itself (see
// Disk.Instrument).
func (a *Archive) Instrument(reg *obs.Registry) {
	a.Stats.instrument(reg)
	if a.Backend != nil {
		a.Backend.Instrument(reg)
	}
}
