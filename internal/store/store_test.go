package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/tstore"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func sample(mmsi uint32, sec int, lat, lon float64) model.VesselState {
	return model.VesselState{
		MMSI: mmsi, At: t0().Add(time.Duration(sec) * time.Second),
		Pos: geo.Point{Lat: lat, Lon: lon}, SpeedKn: 10.5, CourseDeg: 92.25,
		Status: ais.StatusUnderWayEngine,
	}
}

// randState builds the i-th random sample. Timestamps are a scrambled
// permutation of unique seconds (7919 is coprime to 100000), so replay
// order vs time order differ while per-vessel tie-breaking — which disk
// round trips do not preserve — never matters.
func randState(rng *rand.Rand, i int) model.VesselState {
	return model.VesselState{
		MMSI: uint32(201000000 + rng.Intn(50)),
		At:   t0().Add(time.Duration(i*7919%100000) * time.Second),
		Pos: geo.Point{
			Lat: -80 + rng.Float64()*160,
			Lon: -179 + rng.Float64()*358,
		},
		SpeedKn:   rng.Float64() * 40,
		CourseDeg: rng.Float64() * 360,
		Status:    ais.NavStatus(rng.Intn(16)),
	}
}

// states returns the full contents of a store as one flat (MMSI, time)
// ordered slice, for equality comparison.
func states(st *tstore.Store) []model.VesselState {
	var out []model.VesselState
	for _, m := range st.MMSIs() {
		out = append(out, st.Trajectory(m).Points...)
	}
	return out
}

func TestQuantizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := randState(rng, i)
		q := Quantize(s)
		if !reflect.DeepEqual(q, Quantize(q)) {
			t.Fatalf("Quantize not idempotent for %+v", s)
		}
	}
}

// TestQuantizeMatchesTstoreEncoding pins that store.Quantize predicts the
// tstore WriteTo/Load round trip exactly — the property the WAL and the
// snapshot encoding must agree on for compaction to be value-preserving.
func TestQuantizeMatchesTstoreEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := tstore.New()
	var want []model.VesselState
	for i := 0; i < 300; i++ {
		s := randState(rng, i)
		src.Append(s)
	}
	for _, s := range states(src) {
		want = append(want, Quantize(s))
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := tstore.New()
	if _, err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := states(dst); !reflect.DeepEqual(got, want) {
		t.Fatalf("WriteTo/Load round trip diverges from Quantize:\n got %v\nwant %v", got[:3], want[:3])
	}
}

func TestMemBackend(t *testing.T) {
	m := NewMem()
	if err := m.Append([]model.VesselState{sample(1, 0, 40, 5), sample(2, 10, 41, 6)}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append([]model.VesselState{sample(3, 20, 42, 7)}); err == nil {
		t.Fatal("append after Close should fail")
	}
	if m.Len() != 2 {
		t.Fatalf("Len after refused append = %d, want 2", m.Len())
	}
}

func TestDiskAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	arch, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if arch.Stats.Total() != 0 {
		t.Fatalf("fresh dir recovered %d records", arch.Stats.Total())
	}
	rng := rand.New(rand.NewSource(3))
	mem := tstore.New()
	var batch []model.VesselState
	for i := 0; i < 1000; i++ {
		s := randState(rng, i)
		mem.Append(Quantize(s))
		batch = append(batch, s)
		if len(batch) == 64 {
			if err := arch.Backend.Append(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := arch.Backend.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats.WALRecords != 1000 {
		t.Fatalf("recovered %d WAL records, want 1000", re.Stats.WALRecords)
	}
	if re.Stats.TornBytes != 0 {
		t.Fatalf("clean close reported %d torn bytes", re.Stats.TornBytes)
	}
	if !reflect.DeepEqual(states(re.Store), states(mem)) {
		t.Fatal("recovered store diverges from in-memory reference")
	}
}

// TestRotationAndCompaction drives enough records through tiny segments
// to force rotation and auto-compaction, then checks the recovered state
// is complete and the directory holds only the snapshot + recent WAL.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 2048, CompactEvery: 3}
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mem := tstore.New()
	for i := 0; i < 2000; i++ {
		s := randState(rng, i)
		mem.Append(Quantize(s))
		if err := arch.Backend.Append([]model.VesselState{s}); err != nil {
			t.Fatal(err)
		}
	}
	if len(arch.Backend.SealedSegments()) >= cfg.CompactEvery {
		t.Fatalf("auto-compaction never ran: %d sealed segments", len(arch.Backend.SealedSegments()))
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.bin"))
	if len(snaps) != 1 {
		t.Fatalf("expected exactly one snapshot after compaction, got %v", snaps)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats.Total(); got != 2000 {
		t.Fatalf("recovered %d records, want 2000 (snapshot %d + wal %d)",
			got, re.Stats.SnapshotPoints, re.Stats.WALRecords)
	}
	if re.Stats.SnapshotPoints == 0 {
		t.Fatal("compaction produced an empty snapshot")
	}
	if !reflect.DeepEqual(states(re.Store), states(mem)) {
		t.Fatal("recovered store diverges from in-memory reference across rotation+compaction")
	}
}

// TestManualCompactThenRecover pins the compacted-snapshot path in
// isolation: compact explicitly, delete nothing by hand, reopen.
func TestManualCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 1024, CompactEvery: -1}
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var all []model.VesselState
	for i := 0; i < 300; i++ {
		all = append(all, sample(uint32(1+i%7), i*10, 40+float64(i)*0.01, 5))
	}
	if err := arch.Backend.Append(all); err != nil {
		t.Fatal(err)
	}
	if len(arch.Backend.SealedSegments()) == 0 {
		t.Fatal("expected sealed segments before compaction")
	}
	if err := arch.Backend.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(arch.Backend.SealedSegments()) != 0 {
		t.Fatal("compaction left sealed segments behind")
	}
	// Records appended after compaction land in the active segment.
	post := sample(99, 999999, 43, 8)
	if err := arch.Backend.Append([]model.VesselState{post}); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats.Total() != 301 {
		t.Fatalf("recovered %d records, want 301", re.Stats.Total())
	}
	if got, ok := re.Live().Get(99); !ok || got.Pos.Lat != 43 {
		t.Fatalf("post-compaction record lost: %+v ok=%v", got, ok)
	}
}

// TestArchiveLive pins that the rebuilt live picture is the newest
// persisted state per vessel.
func TestArchiveLive(t *testing.T) {
	dir := t.TempDir()
	arch, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := []model.VesselState{
		sample(1, 0, 40, 5), sample(1, 100, 40.5, 5.5),
		sample(2, 50, 41, 6),
	}
	if err := arch.Backend.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	live := re.Live()
	if live.Count() != 2 {
		t.Fatalf("live count = %d, want 2", live.Count())
	}
	got, ok := live.Get(1)
	if !ok || got.Pos.Lat != 40.5 {
		t.Fatalf("live picture holds %+v, want the newest persisted state of vessel 1", got)
	}
}

func TestFlusherDrainsToBackend(t *testing.T) {
	mem := NewMem()
	f := NewFlusher(mem, FlushConfig{Queue: 32, Batch: 8})
	var want []model.VesselState
	for i := 0; i < 100; i++ {
		s := Quantize(sample(uint32(1+i%5), i*7, 40+float64(i)*0.01, 5))
		want = append(want, s)
		if err := f.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got := mem.States()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("backend saw %d records in wrong order/content, want %d", len(got), len(want))
	}
	ms := f.Metrics.Snapshot()
	if ms.In != 100 || ms.Out != 100 || ms.Dropped != 0 {
		t.Fatalf("metrics = %+v, want 100/100/0", ms)
	}
	if err := f.Append(sample(9, 0, 40, 5)); err == nil {
		t.Fatal("append after Close should fail")
	}
	if f.Metrics.Snapshot().Dropped != 1 {
		t.Fatalf("refused append not counted as Dropped")
	}
}

func TestFlusherAsSinkOnStore(t *testing.T) {
	mem := NewMem()
	f := NewFlusher(mem, FlushConfig{})
	st := tstore.New()
	st.Attach(f)
	for i := 0; i < 50; i++ {
		st.Append(sample(uint32(1+i%3), i*10, 40+float64(i)*0.01, 5))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if st.SinkErr() != nil {
		t.Fatal(st.SinkErr())
	}
	if mem.Len() != 50 {
		t.Fatalf("backend saw %d records, want 50", mem.Len())
	}
}

// TestOpenCleansCrashedCompactionLeftovers simulates a crash between the
// snapshot rename and the segment deletions: both the snapshot and the
// covered segments exist on disk. Recovery must not double-count.
func TestOpenCleansCrashedCompactionLeftovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, SegmentBytes: 1024, CompactEvery: -1}
	arch, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []model.VesselState
	for i := 0; i < 200; i++ {
		recs = append(recs, sample(uint32(1+i%5), i*10, 40+float64(i)*0.01, 5))
	}
	if err := arch.Backend.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	// Freeze the segment set, then compact via a fresh archive but
	// restore the deleted segments afterwards to fake the crash window.
	saved := map[string][]byte{}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, p := range segs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = b
	}
	arch2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch2.Backend.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := arch2.Close(); err != nil {
		t.Fatal(err)
	}
	for p, b := range saved {
		if _, err := os.Stat(p); os.IsNotExist(err) {
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats.Total(); got != 200 {
		t.Fatalf("recovered %d records, want 200 (covered segments double-counted?)", got)
	}
	// The covered segments must be gone after recovery cleaned them.
	for p := range saved {
		if _, err := os.Stat(p); err == nil {
			t.Fatalf("covered segment %s survived recovery", p)
		}
	}
}

// syncCounter wraps a backend and counts Sync calls.
type syncCounter struct {
	*Mem
	mu    sync.Mutex
	syncs int
}

func (s *syncCounter) Sync() error {
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	return s.Mem.Sync()
}

func (s *syncCounter) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// TestFlusherSyncEveryCoversIdle pins the SyncEvery loss bound: a batch
// written just before the stage goes idle must still be synced within
// the configured interval, without waiting for more traffic or Close.
func TestFlusherSyncEveryCoversIdle(t *testing.T) {
	b := &syncCounter{Mem: NewMem()}
	f := NewFlusher(b, FlushConfig{SyncEvery: 20 * time.Millisecond})
	if err := f.Append(sample(1, 0, 40, 5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle flusher never synced within SyncEvery")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
