//go:build !unix

package store

import (
	"os"
	"path/filepath"
)

// acquireLock on platforms without flock merely touches Dir/LOCK and
// provides no inter-process exclusion — double-writer protection is
// advisory-only there. The WAL itself stays safe against crashes of a
// single writer; run one writer per archive directory.
func acquireLock(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
}

func releaseLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
