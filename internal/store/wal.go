package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
)

// WAL segment layout (version 1):
//
//	header:  magic u32 "MWAL" | version u16
//	frame:   length u32 | crc32c u32 (of payload) | payload
//	payload: mmsi u32 | unixnano i64 | lat f64 | lon f64 |
//	         speed u16 (centi-knots) | course u16 (centi-degrees) | status u8
//
// Everything is little-endian. Records carry the same quantisation as the
// tstore snapshot encoding (WriteTo/Load), so a record read back from the
// WAL equals the same record read back from a compacted snapshot —
// TestDiskRoundTripMatchesWriteTo pins the equivalence. Frames are CRC32C
// (Castagnoli) checksummed so recovery can tell a torn tail from good data.
const (
	segMagic   = 0x4D57414C // "MWAL"
	segVersion = 1

	segHeaderSize = 6
	frameHeadSize = 8
	recordSize    = 33
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Quantize returns s as it will read back after a disk round trip: time
// truncated to nanoseconds UTC, speed and course clamped to [0, 655.35]
// and rounded to centi-units — the same quantisation tstore's snapshot
// encoding applies.
func Quantize(s model.VesselState) model.VesselState {
	s.At = time.Unix(0, s.At.UnixNano()).UTC()
	s.SpeedKn = float64(quant100(s.SpeedKn)) / 100
	s.CourseDeg = float64(quant100(s.CourseDeg)) / 100
	return s
}

func quant100(v float64) uint16 {
	if v < 0 {
		v = 0
	}
	if v > 655.35 {
		v = 655.35
	}
	return uint16(math.Round(v * 100))
}

// appendRecord appends the 33-byte record payload encoding of s to dst.
func appendRecord(dst []byte, s model.VesselState) []byte {
	var b [recordSize]byte
	binary.LittleEndian.PutUint32(b[0:], s.MMSI)
	binary.LittleEndian.PutUint64(b[4:], uint64(s.At.UnixNano()))
	binary.LittleEndian.PutUint64(b[12:], math.Float64bits(s.Pos.Lat))
	binary.LittleEndian.PutUint64(b[20:], math.Float64bits(s.Pos.Lon))
	binary.LittleEndian.PutUint16(b[28:], quant100(s.SpeedKn))
	binary.LittleEndian.PutUint16(b[30:], quant100(s.CourseDeg))
	b[32] = uint8(s.Status)
	return append(dst, b[:]...)
}

// decodeRecord is the inverse of appendRecord.
func decodeRecord(b []byte) model.VesselState {
	return model.VesselState{
		MMSI: binary.LittleEndian.Uint32(b[0:]),
		At:   time.Unix(0, int64(binary.LittleEndian.Uint64(b[4:]))).UTC(),
		Pos: geo.Point{
			Lat: math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
			Lon: math.Float64frombits(binary.LittleEndian.Uint64(b[20:])),
		},
		SpeedKn:   float64(binary.LittleEndian.Uint16(b[28:])) / 100,
		CourseDeg: float64(binary.LittleEndian.Uint16(b[30:])) / 100,
		Status:    ais.NavStatus(b[32]),
	}
}

// appendFrame appends one length-prefixed, checksummed frame holding s.
func appendFrame(dst []byte, s model.VesselState) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = appendRecord(dst, s)
	payload := dst[start+frameHeadSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// writeSegmentHeader writes the magic and version of a fresh segment.
func writeSegmentHeader(w io.Writer) error {
	var h [segHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], segMagic)
	binary.LittleEndian.PutUint16(h[4:], segVersion)
	_, err := w.Write(h[:])
	return err
}

// tornMode selects how replaySegment handles a torn tail (a segment that
// ends mid-frame or whose final frames fail the checksum — the expected
// state of the active segment after a crash).
type tornMode int

const (
	// tornError treats any tear as corruption: sealed, non-final
	// segments can never legitimately be mid-write.
	tornError tornMode = iota
	// tornTruncate repairs the tear: the file is truncated back to the
	// last valid frame boundary (a fully headerless file is removed).
	// Writer recovery uses this on the final segment.
	tornTruncate
	// tornIgnore stops at the tear and leaves the file untouched —
	// read-only recovery, safe against a directory a live writer owns.
	tornIgnore
)

// checkSegmentHeader validates a segment's 6-byte header.
func checkSegmentHeader(head []byte, name string) error {
	if m := binary.LittleEndian.Uint32(head[0:]); m != segMagic {
		return fmt.Errorf("store: %s: bad segment magic %08x", name, m)
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != segVersion {
		return fmt.Errorf("store: %s: unsupported segment version %d", name, v)
	}
	return nil
}

// frameLength validates a frame header's length field; a non-empty
// reason reports a tear.
func frameLength(head []byte) (uint32, string) {
	length := binary.LittleEndian.Uint32(head[0:])
	if length != recordSize {
		return 0, fmt.Sprintf("bad frame length %d", length)
	}
	return length, ""
}

// frameDecode checks a frame's payload against its header checksum and
// decodes the record; a non-empty reason reports a tear. Shared by the
// file and migrated-object replay paths so the frame format lives in
// one place.
func frameDecode(head, payload []byte) (model.VesselState, string) {
	if want := binary.LittleEndian.Uint32(head[4:]); crc32.Checksum(payload, castagnoli) != want {
		return model.VesselState{}, "checksum mismatch"
	}
	return decodeRecord(payload), ""
}

// replaySegmentBytes reads every frame of a fully materialised segment
// (a migrated object fetched back from the ObjectStore) into fn. A
// migrated segment was sealed before upload and uploads are atomic, so
// any tear is real corruption — the strictness of tornError without the
// file plumbing.
func replaySegmentBytes(name string, data []byte, fn func(model.VesselState)) (int, error) {
	if len(data) < segHeaderSize {
		return 0, fmt.Errorf("store: %s: migrated segment shorter than its header", name)
	}
	if err := checkSegmentHeader(data, name); err != nil {
		return 0, err
	}
	records := 0
	for off := segHeaderSize; off < len(data); {
		if off+frameHeadSize > len(data) {
			return records, fmt.Errorf("store: %s: partial frame header at offset %d", name, off)
		}
		head := data[off : off+frameHeadSize]
		length, reason := frameLength(head)
		if reason != "" {
			return records, fmt.Errorf("store: %s: %s at offset %d", name, reason, off)
		}
		if off+frameHeadSize+int(length) > len(data) {
			return records, fmt.Errorf("store: %s: partial frame payload at offset %d", name, off)
		}
		rec, reason := frameDecode(head, data[off+frameHeadSize:off+frameHeadSize+int(length)])
		if reason != "" {
			return records, fmt.Errorf("store: %s: %s at offset %d", name, reason, off)
		}
		fn(rec)
		records++
		off += frameHeadSize + int(length)
	}
	return records, nil
}

// replaySegment reads every valid frame of the segment at path into fn,
// handling a torn tail per mode and returning the number of bytes past
// the last valid frame (whether repaired or merely skipped).
func replaySegment(path string, mode tornMode, fn func(model.VesselState)) (records int, torn int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var head [segHeaderSize]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		if mode != tornError && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			// The crash predates even the header flush: nothing in the
			// file is valid.
			size, serr := f.Seek(0, io.SeekEnd)
			if serr != nil {
				return 0, 0, serr
			}
			if mode == tornIgnore {
				return 0, size, nil
			}
			// Remove it so it cannot trip a later recovery as a
			// non-final segment.
			f.Close()
			return 0, size, os.Remove(path)
		}
		return 0, 0, fmt.Errorf("store: %s: reading segment header: %w", path, err)
	}
	if err := checkSegmentHeader(head[:], path); err != nil {
		return 0, 0, err
	}

	good := int64(segHeaderSize) // offset of the byte after the last valid frame
	var frame [frameHeadSize + recordSize]byte
	for {
		_, err := io.ReadFull(br, frame[:frameHeadSize])
		if err == io.EOF {
			return records, 0, nil // clean end
		}
		tornAt := func(reason string) (int, int64, error) {
			size, serr := f.Seek(0, io.SeekEnd)
			if serr != nil {
				return records, 0, serr
			}
			switch mode {
			case tornError:
				return records, 0, fmt.Errorf(
					"store: %s: %s at offset %d (only the newest segment may be torn)",
					path, reason, good)
			case tornIgnore:
				return records, size - good, nil
			}
			if terr := os.Truncate(path, good); terr != nil {
				return records, 0, terr
			}
			return records, size - good, nil
		}
		if err != nil {
			return tornAt("partial frame header")
		}
		length, reason := frameLength(frame[:frameHeadSize])
		if reason != "" {
			return tornAt(reason)
		}
		payload := frame[frameHeadSize : frameHeadSize+length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return tornAt("partial frame payload")
		}
		rec, reason := frameDecode(frame[:frameHeadSize], payload)
		if reason != "" {
			return tornAt(reason)
		}
		fn(rec)
		records++
		good += int64(frameHeadSize) + int64(length)
	}
}
