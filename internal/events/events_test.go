package events

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/zones"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func testCtx() *Context {
	return &Context{Zones: zones.NewZoneSet([]*zones.Zone{
		zones.PortZone("port-x", "Port X", geo.Point{Lat: 43.0, Lon: 5.0}, 5000),
		zones.RectZone("mpa-1", "Reserve", zones.KindProtectedArea,
			geo.Rect{MinLat: 42.0, MinLon: 6.0, MaxLat: 42.5, MaxLon: 6.8}),
	})}
}

func st(mmsi uint32, sec int, pos geo.Point, speedKn, course float64) model.VesselState {
	return model.VesselState{
		MMSI: mmsi, At: t0().Add(time.Duration(sec) * time.Second),
		Pos: pos, SpeedKn: speedKn, CourseDeg: course,
		Status: ais.StatusUnderWayEngine,
	}
}

func TestDarkDetector(t *testing.T) {
	d := &DarkDetector{Threshold: 5 * time.Minute}
	p := geo.Point{Lat: 41, Lon: 7}
	if got := d.Process(st(1, 0, p, 10, 90), nil); len(got) != 0 {
		t.Fatal("first sample should not alert")
	}
	if got := d.Process(st(1, 60, p, 10, 90), nil); len(got) != 0 {
		t.Fatal("one-minute gap should not alert")
	}
	got := d.Process(st(1, 60+700, p, 10, 90), nil)
	if len(got) != 1 || got[0].Kind != KindDark {
		t.Fatalf("11-minute gap should alert: %v", got)
	}
	if got[0].Start != t0().Add(60*time.Second) {
		t.Errorf("dark start should anchor at last fix: %v", got[0].Start)
	}
}

func TestTeleportDetector(t *testing.T) {
	d := &TeleportDetector{MaxSpeedKn: 60}
	a := geo.Point{Lat: 41, Lon: 7}
	b := geo.Destination(a, 90, 40000) // 40 km in 60 s: ≈1300 kn
	d.Process(st(1, 0, a, 12, 90), nil)
	got := d.Process(st(1, 60, b, 12, 90), nil)
	if len(got) != 1 || got[0].Kind != KindTeleport {
		t.Fatalf("teleport not flagged: %v", got)
	}
	// Plausible movement does not alert.
	c := geo.Destination(b, 90, 400)
	if got := d.Process(st(1, 120, c, 12, 90), nil); len(got) != 0 {
		t.Errorf("normal movement flagged: %v", got)
	}
}

func TestIdentityDetector(t *testing.T) {
	d := IdentityDetector{}
	if got := d.Process(st(227000001, 0, geo.Point{Lat: 41, Lon: 7}, 10, 0), nil); len(got) != 0 {
		t.Error("valid MMSI flagged")
	}
	if got := d.Process(st(912345678, 0, geo.Point{Lat: 41, Lon: 7}, 10, 0), nil); len(got) != 1 {
		t.Error("9xx MMSI not flagged")
	}
}

func TestLoiterDetector(t *testing.T) {
	ctx := testCtx()
	d := &LoiterDetector{RadiusM: 2000, MinDuration: 20 * time.Minute, MaxSpeedKn: 3.5}
	base := geo.Point{Lat: 41.5, Lon: 8.0} // open sea
	// 40 minutes of sub-1kn wandering within 500 m.
	var alerts []Alert
	for i := 0; i <= 80; i++ {
		p := geo.Destination(base, float64(i*37%360), float64(i%5)*100)
		alerts = append(alerts, d.Process(st(1, i*30, p, 0.8, float64(i%360)), ctx)...)
	}
	if len(alerts) != 1 || alerts[0].Kind != KindLoiter {
		t.Fatalf("expected exactly one loiter alert, got %d", len(alerts))
	}
	// The same pattern inside a port must not alert.
	d2 := &LoiterDetector{RadiusM: 2000, MinDuration: 20 * time.Minute, MaxSpeedKn: 3.5}
	port := geo.Point{Lat: 43.0, Lon: 5.0}
	for i := 0; i <= 80; i++ {
		p := geo.Destination(port, float64(i*37%360), float64(i%5)*100)
		if got := d2.Process(st(2, i*30, p, 0.5, 0), ctx); len(got) != 0 {
			t.Fatal("loiter alert inside port")
		}
	}
}

func TestDriftDetector(t *testing.T) {
	ctx := testCtx()
	d := &DriftDetector{NumSamples: 10}
	pos := geo.Point{Lat: 41.5, Lon: 8.0}
	var alerts []Alert
	course := 10.0
	for i := 0; i < 30; i++ {
		course += float64((i%7 - 3) * 4) // wandering course
		s := st(1, i*30, pos, 1.2, course)
		s.Status = ais.StatusNotUnderCmd
		alerts = append(alerts, d.Process(s, ctx)...)
		pos = geo.Project(pos, geo.Velocity{SpeedMS: 1.2 * geo.Knot, CourseDg: course}, 30)
	}
	if len(alerts) != 1 || alerts[0].Kind != KindDrift {
		t.Fatalf("drift alerts: %v", alerts)
	}
	// A vessel transiting normally never alerts.
	d2 := &DriftDetector{NumSamples: 10}
	pos = geo.Point{Lat: 41.5, Lon: 8.0}
	for i := 0; i < 30; i++ {
		if got := d2.Process(st(2, i*30, pos, 14, 90), ctx); len(got) != 0 {
			t.Fatal("transit flagged as drift")
		}
		pos = geo.Project(pos, geo.Velocity{SpeedMS: 14 * geo.Knot, CourseDg: 90}, 30)
	}
}

func TestZoneViolationDetector(t *testing.T) {
	ctx := testCtx()
	d := &ZoneViolationDetector{MinSamples: 5}
	inside := geo.Point{Lat: 42.2, Lon: 6.4}
	var alerts []Alert
	for i := 0; i < 10; i++ {
		s := st(1, i*30, inside, 3, float64(i*20))
		s.Status = ais.StatusFishing
		alerts = append(alerts, d.Process(s, ctx)...)
	}
	if len(alerts) != 1 || alerts[0].Kind != KindZoneViolation {
		t.Fatalf("zone violation alerts: %v", alerts)
	}
	// Fast transit through the reserve does not alert.
	d2 := &ZoneViolationDetector{MinSamples: 5}
	for i := 0; i < 10; i++ {
		if got := d2.Process(st(2, i*30, inside, 15, 90), ctx); len(got) != 0 {
			t.Fatal("transit through reserve flagged")
		}
	}
}

func TestRendezvousDetectorViaEngine(t *testing.T) {
	ctx := testCtx()
	e := NewEngine(ctx, 0.1)
	e.RegisterPair(&RendezvousDetector{ProximityM: 1000, MaxSpeedKn: 2.5, MinDuration: 10 * time.Minute})
	meet := geo.Point{Lat: 41.0, Lon: 8.5}
	// Two vessels hold within 300 m for 30 minutes.
	for i := 0; i <= 60; i++ {
		pa := geo.Destination(meet, 0, 150)
		pb := geo.Destination(meet, 180, 150)
		e.Process(st(100, i*30, pa, 0.4, 0))
		e.Process(st(200, i*30, pb, 0.5, 180))
	}
	got := e.AlertsOf(KindRendezvous)
	if len(got) != 1 {
		t.Fatalf("rendezvous alerts: %d", len(got))
	}
	if got[0].MMSI != 100 || got[0].Other != 200 {
		t.Errorf("pair wrong: %d/%d", got[0].MMSI, got[0].Other)
	}
	// Two vessels merely passing each other do not alert.
	e2 := NewEngine(ctx, 0.1)
	e2.RegisterPair(&RendezvousDetector{ProximityM: 1000, MaxSpeedKn: 2.5, MinDuration: 10 * time.Minute})
	a := geo.Point{Lat: 41.0, Lon: 8.0}
	b := geo.Destination(a, 90, 20000)
	for i := 0; i <= 60; i++ {
		e2.Process(st(100, i*30, a, 12, 90))
		e2.Process(st(200, i*30, b, 12, 270))
		a = geo.Project(a, geo.Velocity{SpeedMS: 12 * geo.Knot, CourseDg: 90}, 30)
		b = geo.Project(b, geo.Velocity{SpeedMS: 12 * geo.Knot, CourseDg: 270}, 30)
	}
	if got := e2.AlertsOf(KindRendezvous); len(got) != 0 {
		t.Errorf("passing vessels flagged as rendezvous: %v", got)
	}
}

func TestCPA(t *testing.T) {
	// Head-on: A eastbound, B westbound on the same latitude, 10 km apart.
	a := st(1, 0, geo.Point{Lat: 41, Lon: 8.0}, 10, 90)
	b := st(2, 0, geo.Point{Lat: 41, Lon: 8.12}, 10, 270)
	cpa, tcpa := CPA(a, b)
	if cpa > 200 {
		t.Errorf("head-on CPA should be ~0, got %.0f m", cpa)
	}
	if tcpa <= 0 {
		t.Errorf("TCPA should be positive, got %.0f", tcpa)
	}
	// Parallel same-direction: CPA stays the lateral separation.
	c := st(3, 0, geo.Point{Lat: 41.02, Lon: 8.0}, 10, 90)
	cpa2, _ := CPA(a, c)
	if cpa2 < 2000 {
		t.Errorf("parallel CPA should be ≈2.2 km, got %.0f", cpa2)
	}
}

func TestCollisionRiskDetector(t *testing.T) {
	ctx := testCtx()
	e := NewEngine(ctx, 0.1)
	e.RegisterPair(&CollisionRiskDetector{})
	// Head-on collision course 6 km apart at 12 kn each: TCPA ≈ 8 min.
	a := geo.Point{Lat: 41, Lon: 8.0}
	b := geo.Destination(a, 90, 6000)
	e.Process(st(1, 0, a, 12, 90))
	got := e.Process(st(2, 0, b, 12, 270))
	if len(got) != 1 || got[0].Kind != KindCollisionRisk {
		t.Fatalf("collision risk not raised: %v", got)
	}
	// Cooldown suppresses immediate re-alert.
	got = e.Process(st(1, 10, geo.Destination(a, 90, 60), 12, 90))
	if len(got) != 0 {
		t.Errorf("cooldown violated: %v", got)
	}
}

func TestPatternEngineSequence(t *testing.T) {
	ctx := testCtx()
	pe := NewPatternEngine(ctx)
	pe.Register(SmugglingRunPattern(4 * time.Hour))
	sea := geo.Point{Lat: 41.2, Lon: 8.3}
	var alerts []Alert
	i := 0
	feed := func(speed float64, minutes int) {
		for m := 0; m < minutes*2; m++ { // 30 s steps
			alerts = append(alerts, pe.Process(st(7, i*30, sea, speed, 90))...)
			i++
		}
	}
	feed(12, 30)  // transit
	feed(0.5, 20) // stop at sea ≥ 10 min
	feed(12, 10)  // resume
	if len(alerts) != 1 {
		t.Fatalf("pattern alerts: %d", len(alerts))
	}
	if alerts[0].Kind != "pattern:stop-and-go-at-sea" {
		t.Errorf("kind: %s", alerts[0].Kind)
	}
}

func TestPatternResetInPort(t *testing.T) {
	ctx := testCtx()
	pe := NewPatternEngine(ctx)
	pe.Register(SmugglingRunPattern(4 * time.Hour))
	port := geo.Point{Lat: 43.0, Lon: 5.0}
	var alerts []Alert
	i := 0
	feed := func(pos geo.Point, speed float64, minutes int) {
		for m := 0; m < minutes*2; m++ {
			alerts = append(alerts, pe.Process(st(7, i*30, pos, speed, 90))...)
			i++
		}
	}
	sea := geo.Point{Lat: 41.2, Lon: 8.3}
	feed(sea, 12, 30)   // transit
	feed(port, 0.2, 20) // stop — but IN PORT: resets
	feed(sea, 12, 10)   // transit again
	if len(alerts) != 0 {
		t.Fatalf("port stop should reset the pattern: %v", alerts)
	}
}

func TestPatternWindowExpiry(t *testing.T) {
	ctx := testCtx()
	pe := NewPatternEngine(ctx)
	pe.Register(SmugglingRunPattern(30 * time.Minute)) // tight window
	sea := geo.Point{Lat: 41.2, Lon: 8.3}
	var alerts []Alert
	i := 0
	feed := func(speed float64, minutes int) {
		for m := 0; m < minutes*2; m++ {
			alerts = append(alerts, pe.Process(st(7, i*30, sea, speed, 90))...)
			i++
		}
	}
	feed(12, 10)
	feed(0.5, 40) // stop longer than the whole window
	feed(12, 10)
	if len(alerts) != 0 {
		t.Fatalf("window-expired pattern should not fire: %v", alerts)
	}
}

func TestFindGaps(t *testing.T) {
	tr := &model.Trajectory{MMSI: 1}
	p := geo.Point{Lat: 41, Lon: 8}
	add := func(sec int) {
		tr.Points = append(tr.Points, st(1, sec, p, 10, 90))
	}
	add(0)
	add(60)
	add(60 + 3600) // one-hour gap
	add(60 + 3660)
	gaps := FindGaps(tr, 10*time.Minute)
	if len(gaps) != 1 {
		t.Fatalf("gaps: %d", len(gaps))
	}
	if gaps[0].Duration() != time.Hour {
		t.Errorf("gap duration %v", gaps[0].Duration())
	}
}

func TestPossibleRendezvousFeasibility(t *testing.T) {
	cfg := DefaultOpenWorldConfig()
	base := geo.Point{Lat: 41, Lon: 8}
	near := geo.Destination(base, 90, 5000)
	// Both vessels dark for 2 h, anchors 5 km apart: easily feasible.
	ga := Gap{MMSI: 1, Before: st(1, 0, base, 10, 90), After: st(1, 7200, base, 10, 90)}
	gb := Gap{MMSI: 2, Before: st(2, 0, near, 10, 270), After: st(2, 7200, near, 10, 270)}
	if _, ok := PossibleRendezvous(ga, gb, cfg); !ok {
		t.Error("nearby long dark periods should admit a possible rendezvous")
	}
	// Vessels 600 km apart with 30-minute gaps: infeasible.
	far := geo.Destination(base, 90, 600000)
	gc := Gap{MMSI: 3, Before: st(3, 0, far, 10, 270), After: st(3, 1800, far, 10, 270)}
	gd := Gap{MMSI: 1, Before: st(1, 0, base, 10, 90), After: st(1, 1800, base, 10, 90)}
	if _, ok := PossibleRendezvous(gd, gc, cfg); ok {
		t.Error("distant short dark periods cannot meet")
	}
	// Non-overlapping windows: infeasible.
	ge := Gap{MMSI: 4, Before: st(4, 7300, near, 10, 90), After: st(4, 10000, near, 10, 90)}
	if _, ok := PossibleRendezvous(ga, ge, cfg); ok {
		t.Error("non-overlapping dark windows cannot meet")
	}
}

func TestScoreMatching(t *testing.T) {
	truth := []TruthWindow{
		{Kind: KindLoiter, MMSI: 1, Start: t0(), End: t0().Add(time.Hour)},
		{Kind: KindLoiter, MMSI: 2, Start: t0(), End: t0().Add(time.Hour)},
	}
	alerts := []Alert{
		{Kind: KindLoiter, MMSI: 1, Start: t0().Add(10 * time.Minute), At: t0().Add(30 * time.Minute)}, // TP
		{Kind: KindLoiter, MMSI: 3, Start: t0(), At: t0().Add(time.Minute)},                            // FP
		{Kind: KindDark, MMSI: 2, At: t0()},                                                            // other kind: ignored
	}
	r := Score(KindLoiter, alerts, truth, time.Minute)
	if r.TP != 1 || r.FP != 1 || r.FN != 1 {
		t.Errorf("score: %+v", r)
	}
	if r.Precision != 0.5 || r.Recall != 0.5 {
		t.Errorf("precision/recall: %+v", r)
	}
	if r.MeanLatency != 30*time.Minute {
		t.Errorf("latency: %v", r.MeanLatency)
	}
}

func TestScorePairOrderInsensitive(t *testing.T) {
	truth := []TruthWindow{{Kind: KindRendezvous, MMSI: 1, Other: 2, Start: t0(), End: t0().Add(time.Hour)}}
	alerts := []Alert{{Kind: KindRendezvous, MMSI: 2, Other: 1, Start: t0(), At: t0().Add(time.Minute)}}
	r := Score(KindRendezvous, alerts, truth, time.Minute)
	if r.TP != 1 || r.Recall != 1 {
		t.Errorf("pair matching should be order-insensitive: %+v", r)
	}
}

func BenchmarkEngineProcess(b *testing.B) {
	ctx := testCtx()
	e := NewEngine(ctx, 0.1)
	for _, d := range DefaultDetectors() {
		e.Register(d)
	}
	for _, d := range DefaultPairDetectors() {
		e.RegisterPair(d)
	}
	pos := geo.Point{Lat: 41, Lon: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st(uint32(201000000+i%200), i, geo.Destination(pos, float64(i%360), float64(i%50)*1000), 12, 90)
		e.Process(s)
	}
}
