package events

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// Gap is a reporting gap: a period with no AIS data for a vessel, with the
// last state before and the first state after the silence.
type Gap struct {
	MMSI   uint32
	Before model.VesselState
	After  model.VesselState
}

// Duration returns the silent interval length.
func (g Gap) Duration() time.Duration { return g.After.At.Sub(g.Before.At) }

// FindGaps extracts every reporting gap longer than threshold from a
// trajectory (as reconstructed from received messages).
func FindGaps(tr *model.Trajectory, threshold time.Duration) []Gap {
	var out []Gap
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].At.Sub(tr.Points[i-1].At) > threshold {
			out = append(out, Gap{MMSI: tr.MMSI, Before: tr.Points[i-1], After: tr.Points[i]})
		}
	}
	return out
}

// OpenWorldConfig tunes the possible-event qualification.
type OpenWorldConfig struct {
	// MaxSpeedKn bounds how fast a silent vessel could have moved.
	MaxSpeedKn float64
	// MeetProximityM is the rendezvous proximity assumption.
	MeetProximityM float64
	// MinOverlap requires the two silent windows to overlap at least this
	// long for a meeting to be physically meaningful.
	MinOverlap time.Duration
}

// DefaultOpenWorldConfig returns cautious defaults.
func DefaultOpenWorldConfig() OpenWorldConfig {
	return OpenWorldConfig{MaxSpeedKn: 25, MeetProximityM: 1000, MinOverlap: 10 * time.Minute}
}

// PossibleRendezvous performs the open-world qualification of §4: given
// the reporting gaps of two vessels, it reports whether the vessels COULD
// have met while both were silent — i.e. whether there exists a point
// reachable by both within their silent windows, meeting for MinOverlap.
// A closed-world query over the received data alone would answer "no
// rendezvous"; the open-world answer is "possible", with the feasibility
// window.
func PossibleRendezvous(a, b Gap, cfg OpenWorldConfig) (Alert, bool) {
	// Overlapping silent intervals.
	start := a.Before.At
	if b.Before.At.After(start) {
		start = b.Before.At
	}
	end := a.After.At
	if b.After.At.Before(end) {
		end = b.After.At
	}
	if !end.After(start.Add(cfg.MinOverlap)) {
		return Alert{}, false
	}
	// Feasibility: each vessel must be able to reach a common point from
	// its last known position and still make its next known position.
	// Check the midpoint of the two silent tracks as the candidate meeting
	// point (a sufficient witness, not a necessary one — we accept slight
	// under-reporting to stay conservative).
	meet := geo.Midpoint(
		geo.Midpoint(a.Before.Pos, a.After.Pos),
		geo.Midpoint(b.Before.Pos, b.After.Pos),
	)
	vmax := cfg.MaxSpeedKn * geo.Knot
	hold := cfg.MinOverlap
	feasible := func(g Gap) bool {
		// Time to reach meet from last fix, dwell, then reach next fix.
		inDist := geo.Distance(g.Before.Pos, meet)
		outDist := geo.Distance(meet, g.After.Pos)
		need := inDist/vmax + hold.Seconds() + outDist/vmax
		return need <= g.Duration().Seconds()
	}
	if !feasible(a) || !feasible(b) {
		return Alert{}, false
	}
	return Alert{
		Kind: KindPossibleRendezvous, MMSI: a.MMSI, Other: b.MMSI,
		At: end, Start: start, Where: meet, Severity: 2,
		Note: fmt.Sprintf("both dark %s; meeting physically feasible",
			end.Sub(start).Round(time.Minute)),
	}, true
}

// QualifyRendezvous runs the full open-world sweep: given reconstructed
// trajectories, it returns closed-world alerts (from detected rendezvous,
// passed through) plus possible-rendezvous alerts for every dark-gap pair
// that could have met. Pairs are pruned to those whose gap anchor
// positions are within reachDistance of each other.
func QualifyRendezvous(trajectories map[uint32]*model.Trajectory, detected []Alert, gapThreshold time.Duration, cfg OpenWorldConfig) []Alert {
	out := append([]Alert(nil), detected...)
	// Collect gaps per vessel.
	var all []Gap
	for _, tr := range trajectories {
		all = append(all, FindGaps(tr, gapThreshold)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].MMSI != all[j].MMSI {
			return all[i].MMSI < all[j].MMSI
		}
		return all[i].Before.At.Before(all[j].Before.At)
	})
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			ga, gb := all[i], all[j]
			if ga.MMSI == gb.MMSI {
				continue
			}
			// Prune: anchors too far to plausibly meet.
			reach := cfg.MaxSpeedKn * geo.Knot *
				(ga.Duration().Seconds() + gb.Duration().Seconds()) / 2
			if geo.Distance(ga.Before.Pos, gb.Before.Pos) > reach {
				continue
			}
			if a, ok := PossibleRendezvous(ga, gb, cfg); ok {
				out = append(out, a)
			}
		}
	}
	return out
}
