package events

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/zones"
)

// --- dark periods ---------------------------------------------------------------

// DarkDetector flags reporting gaps longer than Threshold. The alert is
// raised when the vessel reappears (streaming semantics); its Start/At
// span the silent interval. Expected cadence differences (moored vessels
// report every 3 min) are absorbed by the threshold choice.
type DarkDetector struct {
	Threshold time.Duration
	last      map[uint32]model.VesselState
}

// Name implements VesselDetector.
func (d *DarkDetector) Name() string { return "dark" }

// Process implements VesselDetector.
func (d *DarkDetector) Process(s model.VesselState, _ *Context) []Alert {
	if d.Threshold == 0 {
		d.Threshold = 10 * time.Minute
	}
	if d.last == nil {
		d.last = make(map[uint32]model.VesselState)
	}
	prev, ok := d.last[s.MMSI]
	d.last[s.MMSI] = s
	if !ok {
		return nil
	}
	gap := s.At.Sub(prev.At)
	if gap <= d.Threshold {
		return nil
	}
	return []Alert{{
		Kind: KindDark, MMSI: s.MMSI, At: s.At, Start: prev.At,
		Where: prev.Pos, Severity: 2,
		Note: fmt.Sprintf("silent for %s", gap.Round(time.Second)),
	}}
}

// LastSeen exposes the last state per vessel (the open-world layer needs
// it to reason about what could have happened during silence).
func (d *DarkDetector) LastSeen(mmsi uint32) (model.VesselState, bool) {
	s, ok := d.last[mmsi]
	return s, ok
}

// --- teleport / position spoofing --------------------------------------------------

// TeleportDetector flags position jumps implying speeds beyond MaxSpeedKn:
// the kinematic signature of GPS/position spoofing (§1, [36][43]).
type TeleportDetector struct {
	MaxSpeedKn float64
	last       map[uint32]model.VesselState
}

// Name implements VesselDetector.
func (d *TeleportDetector) Name() string { return "teleport" }

// Process implements VesselDetector.
func (d *TeleportDetector) Process(s model.VesselState, _ *Context) []Alert {
	if d.MaxSpeedKn == 0 {
		d.MaxSpeedKn = 60
	}
	if d.last == nil {
		d.last = make(map[uint32]model.VesselState)
	}
	prev, ok := d.last[s.MMSI]
	d.last[s.MMSI] = s
	if !ok {
		return nil
	}
	dt := s.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return nil
	}
	impliedKn := geo.Distance(prev.Pos, s.Pos) / dt / geo.Knot
	if impliedKn <= d.MaxSpeedKn {
		return nil
	}
	return []Alert{{
		Kind: KindTeleport, MMSI: s.MMSI, At: s.At, Start: prev.At,
		Where: s.Pos, Severity: 3,
		Note: fmt.Sprintf("implied speed %.0f kn", impliedKn),
	}}
}

// --- identity anomalies ---------------------------------------------------------------

// IdentityDetector flags structurally invalid MMSIs — the cheap but
// effective half of identity-spoofing detection (the simulator's fake
// identities use the unallocated 9xx MID space, as real spoofers often do).
type IdentityDetector struct{}

// Name implements VesselDetector.
func (IdentityDetector) Name() string { return "identity" }

// Process implements VesselDetector.
func (IdentityDetector) Process(s model.VesselState, _ *Context) []Alert {
	if s.MMSI >= 200000000 && s.MMSI <= 799999999 {
		return nil
	}
	return []Alert{{
		Kind: KindIdentity, MMSI: s.MMSI, At: s.At, Start: s.At, Where: s.Pos,
		Severity: 3, Note: fmt.Sprintf("implausible MMSI %d", s.MMSI),
	}}
}

// --- loitering -------------------------------------------------------------------------

// LoiterDetector flags vessels that stay within RadiusM for at least
// MinDuration while away from ports — the paper's "suspicious of dangerous
// activities" staple. One anchor state per vessel; the anchor slides when
// the vessel leaves the radius.
type LoiterDetector struct {
	RadiusM     float64
	MinDuration time.Duration
	MaxSpeedKn  float64

	anchor  map[uint32]model.VesselState
	alerted map[uint32]bool
}

// Name implements VesselDetector.
func (d *LoiterDetector) Name() string { return "loiter" }

// Process implements VesselDetector.
func (d *LoiterDetector) Process(s model.VesselState, ctx *Context) []Alert {
	if d.RadiusM == 0 {
		d.RadiusM = 2000
	}
	if d.MinDuration == 0 {
		d.MinDuration = 25 * time.Minute
	}
	if d.MaxSpeedKn == 0 {
		d.MaxSpeedKn = 3.5
	}
	if d.anchor == nil {
		d.anchor = make(map[uint32]model.VesselState)
		d.alerted = make(map[uint32]bool)
	}
	anchor, ok := d.anchor[s.MMSI]
	moved := !ok || geo.Distance(anchor.Pos, s.Pos) > d.RadiusM || s.SpeedKn > d.MaxSpeedKn
	inPort := ctx.InPort(s.Pos)
	if moved || inPort {
		d.anchor[s.MMSI] = s
		d.alerted[s.MMSI] = false
		return nil
	}
	if d.alerted[s.MMSI] {
		return nil
	}
	dwell := s.At.Sub(anchor.At)
	if dwell < d.MinDuration {
		return nil
	}
	d.alerted[s.MMSI] = true
	return []Alert{{
		Kind: KindLoiter, MMSI: s.MMSI, At: s.At, Start: anchor.At,
		Where: anchor.Pos, Severity: 2,
		Note: fmt.Sprintf("holding within %.0f m for %s", d.RadiusM, dwell.Round(time.Minute)),
	}}
}

// --- drifting ----------------------------------------------------------------------------

// DriftDetector flags not-under-command drift: sustained 0.3–2.5 kn with
// wandering course away from ports — the engine-failure signature. It
// needs NumSamples consecutive drifting samples to fire.
type DriftDetector struct {
	NumSamples int
	state      map[uint32]*driftState
}

type driftState struct {
	count      int
	firstAt    time.Time
	lastCourse float64
	courseVar  float64
	alerted    bool
}

// Name implements VesselDetector.
func (d *DriftDetector) Name() string { return "drift" }

// Process implements VesselDetector.
func (d *DriftDetector) Process(s model.VesselState, ctx *Context) []Alert {
	if d.NumSamples == 0 {
		d.NumSamples = 20
	}
	if d.state == nil {
		d.state = make(map[uint32]*driftState)
	}
	st, ok := d.state[s.MMSI]
	if !ok {
		st = &driftState{}
		d.state[s.MMSI] = st
	}
	drifting := s.SpeedKn >= 0.3 && s.SpeedKn <= 2.5 && !ctx.InPort(s.Pos)
	if s.Status == ais.StatusNotUnderCmd {
		drifting = true
	}
	if !drifting {
		st.count = 0
		st.courseVar = 0
		st.alerted = false
		return nil
	}
	if st.count == 0 {
		st.firstAt = s.At
		st.lastCourse = s.CourseDeg
	} else {
		diff := math.Abs(geo.NormalizeBearing(s.CourseDeg - st.lastCourse))
		if diff > 180 {
			diff = 360 - diff
		}
		st.courseVar += diff
		st.lastCourse = s.CourseDeg
	}
	st.count++
	if st.alerted || st.count < d.NumSamples {
		return nil
	}
	// Require either explicit NUC status or visible course wander.
	if s.Status != ais.StatusNotUnderCmd && st.courseVar/float64(st.count) < 1.5 {
		return nil
	}
	st.alerted = true
	return []Alert{{
		Kind: KindDrift, MMSI: s.MMSI, At: s.At, Start: st.firstAt,
		Where: s.Pos, Severity: 3,
		Note: fmt.Sprintf("adrift since %s", st.firstAt.Format("15:04")),
	}}
}

// --- speed anomaly ---------------------------------------------------------------------------

// SpeedAnomalyDetector flags reported speeds that are impossible for the
// vessel or inconsistent sentinel abuse.
type SpeedAnomalyDetector struct {
	MaxKn float64
}

// Name implements VesselDetector.
func (d *SpeedAnomalyDetector) Name() string { return "speed" }

// Process implements VesselDetector.
func (d *SpeedAnomalyDetector) Process(s model.VesselState, _ *Context) []Alert {
	max := d.MaxKn
	if max == 0 {
		max = 50
	}
	if s.SpeedKn <= max || s.SpeedKn >= 102.3 {
		return nil
	}
	return []Alert{{
		Kind: KindSpeedAnomaly, MMSI: s.MMSI, At: s.At, Start: s.At, Where: s.Pos,
		Severity: 1, Note: fmt.Sprintf("reported %.1f kn", s.SpeedKn),
	}}
}

// --- protected-area fishing --------------------------------------------------------------------

// ZoneViolationDetector flags fishing-like behaviour (slow speed or
// explicit fishing status) sustained inside protected areas.
type ZoneViolationDetector struct {
	MinSamples int
	counts     map[uint32]int
	alerted    map[uint32]bool
}

// Name implements VesselDetector.
func (d *ZoneViolationDetector) Name() string { return "zone-violation" }

// Process implements VesselDetector.
func (d *ZoneViolationDetector) Process(s model.VesselState, ctx *Context) []Alert {
	if d.MinSamples == 0 {
		d.MinSamples = 10
	}
	if d.counts == nil {
		d.counts = make(map[uint32]int)
		d.alerted = make(map[uint32]bool)
	}
	if ctx == nil || ctx.Zones == nil {
		return nil
	}
	fishingLike := s.Status == ais.StatusFishing || (s.SpeedKn > 0.5 && s.SpeedKn < 6)
	inside := ctx.Zones.InAny(s.Pos, zones.KindProtectedArea)
	if !inside || !fishingLike {
		d.counts[s.MMSI] = 0
		d.alerted[s.MMSI] = false
		return nil
	}
	d.counts[s.MMSI]++
	if d.alerted[s.MMSI] || d.counts[s.MMSI] < d.MinSamples {
		return nil
	}
	d.alerted[s.MMSI] = true
	return []Alert{{
		Kind: KindZoneViolation, MMSI: s.MMSI, At: s.At, Start: s.At, Where: s.Pos,
		Severity: 3, Note: "fishing-like behaviour inside protected area",
	}}
}

// --- rendezvous (pairwise) ------------------------------------------------------------------------

// RendezvousDetector flags pairs of vessels holding within ProximityM of
// each other at near-zero speed for MinDuration, away from ports: the
// ship-to-ship transfer signature.
type RendezvousDetector struct {
	ProximityM  float64
	MaxSpeedKn  float64
	MinDuration time.Duration

	pairs map[uint64]*pairState
}

type pairState struct {
	since   time.Time
	lastAt  time.Time
	where   geo.Point
	alerted bool
}

// Name implements PairDetector.
func (d *RendezvousDetector) Name() string { return "rendezvous" }

func pairKey(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// ProcessPair implements PairDetector.
func (d *RendezvousDetector) ProcessPair(a, b model.VesselState, ctx *Context) []Alert {
	if d.ProximityM == 0 {
		d.ProximityM = 1000
	}
	if d.MaxSpeedKn == 0 {
		d.MaxSpeedKn = 2.5
	}
	if d.MinDuration == 0 {
		d.MinDuration = 10 * time.Minute
	}
	if d.pairs == nil {
		d.pairs = make(map[uint64]*pairState)
	}
	key := pairKey(a.MMSI, b.MMSI)
	isClose := geo.Distance(a.Pos, b.Pos) <= d.ProximityM &&
		a.SpeedKn <= d.MaxSpeedKn && b.SpeedKn <= d.MaxSpeedKn &&
		!ctx.InPort(a.Pos) && !ctx.InPort(b.Pos)
	now := a.At
	if b.At.After(now) {
		now = b.At
	}
	st, ok := d.pairs[key]
	if !isClose {
		if ok {
			delete(d.pairs, key)
		}
		return nil
	}
	if !ok {
		d.pairs[key] = &pairState{since: now, lastAt: now, where: geo.Midpoint(a.Pos, b.Pos)}
		return nil
	}
	st.lastAt = now
	st.where = geo.Midpoint(a.Pos, b.Pos)
	if st.alerted || now.Sub(st.since) < d.MinDuration {
		return nil
	}
	st.alerted = true
	return []Alert{{
		Kind: KindRendezvous, MMSI: a.MMSI, Other: b.MMSI, At: now, Start: st.since,
		Where: st.where, Severity: 3,
		Note: fmt.Sprintf("stationary together for %s", now.Sub(st.since).Round(time.Minute)),
	}}
}

// --- collision risk (pairwise) ----------------------------------------------------------------------

// CollisionRiskDetector computes the closest point of approach between
// co-located moving vessels and alerts when CPA < CPAThresholdM within
// TCPAHorizon. Alerts are rate-limited per pair.
type CollisionRiskDetector struct {
	CPAThresholdM float64
	TCPAHorizon   time.Duration
	MinSpeedKn    float64
	Cooldown      time.Duration

	lastAlert map[uint64]time.Time
}

// Name implements PairDetector.
func (d *CollisionRiskDetector) Name() string { return "collision-risk" }

// ProcessPair implements PairDetector.
func (d *CollisionRiskDetector) ProcessPair(a, b model.VesselState, _ *Context) []Alert {
	if d.CPAThresholdM == 0 {
		d.CPAThresholdM = 500
	}
	if d.TCPAHorizon == 0 {
		d.TCPAHorizon = 15 * time.Minute
	}
	if d.MinSpeedKn == 0 {
		d.MinSpeedKn = 4
	}
	if d.Cooldown == 0 {
		d.Cooldown = 10 * time.Minute
	}
	if d.lastAlert == nil {
		d.lastAlert = make(map[uint64]time.Time)
	}
	if a.SpeedKn < d.MinSpeedKn || b.SpeedKn < d.MinSpeedKn {
		return nil
	}
	cpa, tcpa := CPA(a, b)
	if cpa > d.CPAThresholdM || tcpa <= 0 || tcpa > d.TCPAHorizon.Seconds() {
		return nil
	}
	key := pairKey(a.MMSI, b.MMSI)
	now := a.At
	if b.At.After(now) {
		now = b.At
	}
	if last, ok := d.lastAlert[key]; ok && now.Sub(last) < d.Cooldown {
		return nil
	}
	d.lastAlert[key] = now
	return []Alert{{
		Kind: KindCollisionRisk, MMSI: a.MMSI, Other: b.MMSI, At: now, Start: now,
		Where: geo.Midpoint(a.Pos, b.Pos), Severity: 3,
		Note: fmt.Sprintf("CPA %.0f m in %.0f s", cpa, tcpa),
	}}
}

// CPA returns the closest point of approach distance in metres and the
// time to it in seconds for two vessels extrapolated at constant velocity
// on a local plane. A negative TCPA means the vessels are already past
// their closest point.
func CPA(a, b model.VesselState) (cpaM, tcpaSec float64) {
	plane := geo.NewLocalPlane(geo.Midpoint(a.Pos, b.Pos))
	ax, ay := plane.Forward(a.Pos)
	bx, by := plane.Forward(b.Pos)
	av := a.Velocity()
	bv := b.Velocity()
	avx := av.SpeedMS * math.Sin(geo.Radians(av.CourseDg))
	avy := av.SpeedMS * math.Cos(geo.Radians(av.CourseDg))
	bvx := bv.SpeedMS * math.Sin(geo.Radians(bv.CourseDg))
	bvy := bv.SpeedMS * math.Cos(geo.Radians(bv.CourseDg))
	dx, dy := bx-ax, by-ay
	dvx, dvy := bvx-avx, bvy-avy
	dv2 := dvx*dvx + dvy*dvy
	if dv2 < 1e-9 {
		return math.Hypot(dx, dy), 0
	}
	tcpa := -(dx*dvx + dy*dvy) / dv2
	cx := dx + dvx*tcpa
	cy := dy + dvy*tcpa
	return math.Hypot(cx, cy), tcpa
}

// DefaultDetectors returns the standard per-vessel detector battery wired
// with maritime defaults.
func DefaultDetectors() []VesselDetector {
	return []VesselDetector{
		&DarkDetector{Threshold: 10 * time.Minute},
		&TeleportDetector{MaxSpeedKn: 60},
		IdentityDetector{},
		&LoiterDetector{},
		&DriftDetector{},
		&SpeedAnomalyDetector{},
		&ZoneViolationDetector{},
	}
}

// DefaultPairDetectors returns the standard pairwise battery.
func DefaultPairDetectors() []PairDetector {
	return []PairDetector{
		&RendezvousDetector{},
		&CollisionRiskDetector{},
	}
}
