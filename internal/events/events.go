// Package events implements complex event recognition over vessel state
// streams (§3.1): a library of streaming anomaly detectors (dark periods,
// teleports/spoofing, loitering, drifting, speed anomalies, protected-area
// fishing, rendezvous, collision risk), an NFA-style sequence-pattern
// engine for composite behaviours, and the open-world qualification of
// query answers that §4 argues is essential when 27% of ships go dark.
//
// Detectors are deterministic stream processors: feed time-ordered
// model.VesselState values into an Engine and collect Alerts.
package events

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/zones"
)

// Kind labels an alert type. The values align with the simulator's
// injected event kinds where a ground truth exists, so detector output is
// directly scoreable.
type Kind string

// Alert kinds.
const (
	KindDark          Kind = "dark"
	KindTeleport      Kind = "spoof-offset" // teleporting reports ⇒ position spoofing
	KindIdentity      Kind = "spoof-identity"
	KindRendezvous    Kind = "rendezvous"
	KindLoiter        Kind = "loiter"
	KindDrift         Kind = "drift"
	KindZoneViolation Kind = "zone-violation"
	KindSpeedAnomaly  Kind = "speed-anomaly"
	KindCollisionRisk Kind = "collision-risk"
	// KindPossibleRendezvous marks open-world qualified answers: a meeting
	// that COULD have happened while both vessels were dark.
	KindPossibleRendezvous Kind = "possible-rendezvous"
)

// Alert is one recognised event.
type Alert struct {
	Kind     Kind
	MMSI     uint32
	Other    uint32 // peer vessel for pairwise events
	At       time.Time
	Start    time.Time // event extent when known (Start ≤ At)
	Where    geo.Point
	Severity int // 1 info, 2 warning, 3 critical
	Note     string
}

// String renders the alert for logs and consoles.
func (a Alert) String() string {
	if a.Other != 0 {
		return fmt.Sprintf("[%s] %s vessels %d/%d at %s: %s",
			a.At.Format("15:04:05"), a.Kind, a.MMSI, a.Other, a.Where, a.Note)
	}
	return fmt.Sprintf("[%s] %s vessel %d at %s: %s",
		a.At.Format("15:04:05"), a.Kind, a.MMSI, a.Where, a.Note)
}

// Context carries the quasi-static knowledge detectors correlate against.
type Context struct {
	Zones *zones.ZoneSet
}

// InPort reports whether p is inside a port or anchorage zone.
func (c *Context) InPort(p geo.Point) bool {
	if c == nil || c.Zones == nil {
		return false
	}
	return c.Zones.InAny(p, zones.KindPort) || c.Zones.InAny(p, zones.KindAnchorage)
}

// VesselDetector is a per-vessel streaming detector. Implementations keep
// per-vessel state internally, keyed by MMSI.
type VesselDetector interface {
	Name() string
	// Process consumes the next state of any vessel (time-ordered per
	// vessel) and returns zero or more alerts.
	Process(s model.VesselState, ctx *Context) []Alert
}

// Engine fans states to detectors and maintains the proximity structure
// pairwise detectors need.
type Engine struct {
	Ctx       *Context
	detectors []VesselDetector
	pairwise  []PairDetector

	grid    geo.Grid
	cells   map[geo.CellID]map[uint32]model.VesselState
	lastPos map[uint32]geo.CellID

	alerts []Alert
}

// PairDetector observes co-located vessel pairs.
type PairDetector interface {
	Name() string
	// ProcessPair is called for each (a, b) pair currently within the
	// engine's proximity horizon, once per state update of either vessel,
	// with a.MMSI < b.MMSI.
	ProcessPair(a, b model.VesselState, ctx *Context) []Alert
}

// NewEngine returns an engine with the given context. proximityDeg sets
// the pairing horizon (cell size) for pairwise detectors; 0.1° ≈ 11 km.
func NewEngine(ctx *Context, proximityDeg float64) *Engine {
	if proximityDeg <= 0 {
		proximityDeg = 0.1
	}
	return &Engine{
		Ctx:     ctx,
		grid:    geo.NewGrid(proximityDeg),
		cells:   make(map[geo.CellID]map[uint32]model.VesselState),
		lastPos: make(map[uint32]geo.CellID),
	}
}

// Register adds a per-vessel detector.
func (e *Engine) Register(d VesselDetector) { e.detectors = append(e.detectors, d) }

// RegisterPair adds a pairwise detector.
func (e *Engine) RegisterPair(d PairDetector) { e.pairwise = append(e.pairwise, d) }

// Process consumes one state update and returns the alerts it raised
// (also accumulated in Alerts).
func (e *Engine) Process(s model.VesselState) []Alert {
	var out []Alert
	for _, d := range e.detectors {
		out = append(out, d.Process(s, e.Ctx)...)
	}
	if len(e.pairwise) > 0 {
		out = append(out, e.processPairs(s)...)
	}
	e.alerts = append(e.alerts, out...)
	return out
}

// processPairs updates the proximity grid and runs pairwise detectors
// against neighbours.
func (e *Engine) processPairs(s model.VesselState) []Alert {
	cell := e.grid.Cell(s.Pos)
	if prev, ok := e.lastPos[s.MMSI]; ok && prev != cell {
		delete(e.cells[prev], s.MMSI)
	}
	m, ok := e.cells[cell]
	if !ok {
		m = make(map[uint32]model.VesselState)
		e.cells[cell] = m
	}
	m[s.MMSI] = s
	e.lastPos[s.MMSI] = cell

	// Collect neighbours in this and adjacent cells, deterministically.
	var neighbours []model.VesselState
	consider := func(c geo.CellID) {
		for mm, st := range e.cells[c] {
			if mm == s.MMSI {
				continue
			}
			// Ignore stale co-location (no update in 30 min — generous,
			// because satellite revisit gaps legitimately silence open-sea
			// vessels for ~25 min between passes).
			if s.At.Sub(st.At) > 30*time.Minute || st.At.Sub(s.At) > 30*time.Minute {
				continue
			}
			neighbours = append(neighbours, st)
		}
	}
	consider(cell)
	for _, c := range e.grid.Neighbors(cell, nil) {
		consider(c)
	}
	sort.Slice(neighbours, func(i, j int) bool { return neighbours[i].MMSI < neighbours[j].MMSI })

	var out []Alert
	for _, nb := range neighbours {
		a, b := s, nb
		if b.MMSI < a.MMSI {
			a, b = b, a
		}
		for _, d := range e.pairwise {
			out = append(out, d.ProcessPair(a, b, e.Ctx)...)
		}
	}
	return out
}

// Alerts returns every alert raised so far.
func (e *Engine) Alerts() []Alert { return e.alerts }

// AlertsOf filters accumulated alerts by kind.
func (e *Engine) AlertsOf(k Kind) []Alert {
	var out []Alert
	for _, a := range e.alerts {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}
