package events

import (
	"fmt"
	"time"

	"repro/internal/model"
)

// Step is one stage of a sequence pattern: a predicate that must hold,
// sustained for at least MinDuration (0 = a single matching sample
// suffices).
type Step struct {
	Name        string
	Match       func(s model.VesselState, ctx *Context) bool
	MinDuration time.Duration
}

// Pattern is a CEP sequence: steps must be satisfied in order, with the
// whole sequence completing within Window (0 = unbounded). Non-matching
// samples between steps are tolerated (skip-till-next-match semantics),
// but a sample matching ResetOn aborts the partial match.
type Pattern struct {
	Name    string
	Steps   []Step
	Window  time.Duration
	ResetOn func(s model.VesselState, ctx *Context) bool
	// Severity of the emitted alert.
	Severity int
}

// PatternEngine runs sequence patterns over per-vessel state streams.
type PatternEngine struct {
	Ctx      *Context
	patterns []*Pattern
	state    map[patternKey]*patternProgress
	alerts   []Alert
}

type patternKey struct {
	pattern string
	mmsi    uint32
}

type patternProgress struct {
	step      int
	stepSince time.Time
	stepOpen  bool
	startedAt time.Time
}

// NewPatternEngine returns an engine with the given context.
func NewPatternEngine(ctx *Context) *PatternEngine {
	return &PatternEngine{Ctx: ctx, state: make(map[patternKey]*patternProgress)}
}

// Register adds a pattern.
func (pe *PatternEngine) Register(p *Pattern) { pe.patterns = append(pe.patterns, p) }

// Process consumes a state sample and returns alerts for any patterns the
// sample completes.
func (pe *PatternEngine) Process(s model.VesselState) []Alert {
	var out []Alert
	for _, p := range pe.patterns {
		if a, ok := pe.step(p, s); ok {
			out = append(out, a)
		}
	}
	pe.alerts = append(pe.alerts, out...)
	return out
}

func (pe *PatternEngine) step(p *Pattern, s model.VesselState) (Alert, bool) {
	key := patternKey{pattern: p.Name, mmsi: s.MMSI}
	prog, ok := pe.state[key]
	if !ok {
		prog = &patternProgress{}
		pe.state[key] = prog
	}
	if p.ResetOn != nil && p.ResetOn(s, pe.Ctx) {
		*prog = patternProgress{}
		return Alert{}, false
	}
	// Window expiry aborts a partial match.
	if prog.step > 0 && p.Window > 0 && s.At.Sub(prog.startedAt) > p.Window {
		*prog = patternProgress{}
	}
	if prog.step >= len(p.Steps) {
		*prog = patternProgress{}
	}
	st := p.Steps[prog.step]
	if !st.Match(s, pe.Ctx) {
		// Skip-till-next-match: an open dwell requirement is interrupted.
		prog.stepOpen = false
		return Alert{}, false
	}
	if !prog.stepOpen {
		prog.stepOpen = true
		prog.stepSince = s.At
		if prog.step == 0 {
			prog.startedAt = s.At
		}
	}
	if s.At.Sub(prog.stepSince) < st.MinDuration {
		return Alert{}, false
	}
	// Step satisfied: advance.
	prog.step++
	prog.stepOpen = false
	if prog.step < len(p.Steps) {
		return Alert{}, false
	}
	started := prog.startedAt
	*prog = patternProgress{}
	return Alert{
		Kind: Kind("pattern:" + p.Name), MMSI: s.MMSI,
		At: s.At, Start: started, Where: s.Pos,
		Severity: max(1, p.Severity),
		Note:     fmt.Sprintf("sequence %q completed", p.Name),
	}, true
}

// Alerts returns the accumulated pattern alerts.
func (pe *PatternEngine) Alerts() []Alert { return pe.alerts }

// --- canonical maritime patterns ---------------------------------------------------

// SmugglingRunPattern encodes the §3.1 motivating composite: transit →
// stop at sea (possible transfer) → transit resumes, all within the
// window and away from ports.
func SmugglingRunPattern(window time.Duration) *Pattern {
	transit := func(s model.VesselState, _ *Context) bool { return s.SpeedKn > 6 }
	stopAtSea := func(s model.VesselState, ctx *Context) bool {
		return s.SpeedKn < 1.5 && !ctx.InPort(s.Pos)
	}
	return &Pattern{
		Name:     "stop-and-go-at-sea",
		Window:   window,
		Severity: 3,
		Steps: []Step{
			{Name: "transit", Match: transit},
			{Name: "stop-at-sea", Match: stopAtSea, MinDuration: 10 * time.Minute},
			{Name: "resume", Match: transit},
		},
		ResetOn: func(s model.VesselState, ctx *Context) bool { return ctx.InPort(s.Pos) },
	}
}

// FishingStartPattern recognises transit → sustained slow manoeuvring:
// the start-of-fishing signature used for patterns-of-life.
func FishingStartPattern() *Pattern {
	return &Pattern{
		Name:     "fishing-start",
		Severity: 1,
		Steps: []Step{
			{Name: "transit", Match: func(s model.VesselState, _ *Context) bool { return s.SpeedKn > 6 }},
			{Name: "trawl", Match: func(s model.VesselState, _ *Context) bool {
				return s.SpeedKn > 1 && s.SpeedKn < 5.5
			}, MinDuration: 15 * time.Minute},
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
