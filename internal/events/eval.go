package events

import (
	"sort"
	"time"
)

// TruthWindow is a ground-truth event interval used for scoring detector
// output (the simulator's injected anomalies map 1:1 onto this).
type TruthWindow struct {
	Kind  Kind
	MMSI  uint32
	Other uint32
	Start time.Time
	End   time.Time
}

// MatchResult scores one detector kind against ground truth.
type MatchResult struct {
	Kind      Kind
	Truth     int
	Alerts    int
	TP        int // alerts matching a truth window
	FP        int
	FN        int // truth windows never alerted
	Precision float64
	Recall    float64
	F1        float64
	// MeanLatency is the mean delay from truth start to first alert.
	MeanLatency time.Duration
}

// Score matches alerts to truth windows of the same kind: an alert is a
// true positive when the same vessel (or pair, order-insensitive) has a
// truth window of that kind overlapping [alert.Start−slack, alert.At+slack].
// Each truth window is credited at most once for recall; extra alerts on
// an already-credited window are not penalised (a detector may re-raise).
func Score(kind Kind, alerts []Alert, truths []TruthWindow, slack time.Duration) MatchResult {
	r := MatchResult{Kind: kind}
	var relevantTruth []TruthWindow
	for _, t := range truths {
		if t.Kind == kind {
			relevantTruth = append(relevantTruth, t)
		}
	}
	r.Truth = len(relevantTruth)
	matched := make([]bool, len(relevantTruth))
	var latencies []time.Duration
	firstAlert := make(map[int]time.Time)

	pairEq := func(t TruthWindow, a Alert) bool {
		// Identity-spoofing alerts carry the OBSERVED (fake) identity —
		// that is the point of the fraud — so they match on time overlap
		// alone.
		if kind == KindIdentity {
			return true
		}
		if t.Other == 0 && a.Other == 0 {
			return t.MMSI == a.MMSI
		}
		return (t.MMSI == a.MMSI && t.Other == a.Other) ||
			(t.MMSI == a.Other && t.Other == a.MMSI)
	}
	for _, a := range alerts {
		if a.Kind != kind {
			continue
		}
		r.Alerts++
		hit := false
		for i, t := range relevantTruth {
			if !pairEq(t, a) {
				continue
			}
			aStart := a.Start
			if aStart.IsZero() {
				aStart = a.At
			}
			if aStart.Add(-slack).After(t.End) || a.At.Add(slack).Before(t.Start) {
				continue
			}
			hit = true
			matched[i] = true
			if ts, ok := firstAlert[i]; !ok || a.At.Before(ts) {
				firstAlert[i] = a.At
			}
		}
		if hit {
			r.TP++
		} else {
			r.FP++
		}
	}
	for i, m := range matched {
		if !m {
			r.FN++
			continue
		}
		lat := firstAlert[i].Sub(relevantTruth[i].Start)
		if lat < 0 {
			lat = 0
		}
		latencies = append(latencies, lat)
	}
	if r.TP+r.FP > 0 {
		r.Precision = float64(r.TP) / float64(r.TP+r.FP)
	}
	detected := 0
	for _, m := range matched {
		if m {
			detected++
		}
	}
	if r.Truth > 0 {
		r.Recall = float64(detected) / float64(r.Truth)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		r.MeanLatency = sum / time.Duration(len(latencies))
	}
	return r
}

// Kinds lists the distinct alert kinds present, sorted.
func Kinds(alerts []Alert) []Kind {
	seen := map[Kind]bool{}
	for _, a := range alerts {
		seen[a.Kind] = true
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
