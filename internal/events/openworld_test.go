package events

import (
	"testing"
	"time"

	"repro/internal/geo"
)

// TestPossibleRendezvousGeometry pins the qualification's edges, as the
// oracle the online CEP matcher (internal/anomaly) is compared against:
// the overlap bound is strict (exactly MinOverlap rejects), feasibility
// must fit reach + dwell + return inside each gap at MaxSpeedKn, and an
// admitted alert carries the overlap window and meeting point.
func TestPossibleRendezvousGeometry(t *testing.T) {
	cfg := DefaultOpenWorldConfig() // 25 kn, 1000 m, 10 m overlap
	base := geo.Point{Lat: 41, Lon: 8}
	near := geo.Destination(base, 90, 2000)
	gap := func(mmsi uint32, fromSec, toSec int, p geo.Point) Gap {
		return Gap{MMSI: mmsi, Before: st(mmsi, fromSec, p, 10, 90), After: st(mmsi, toSec, p, 10, 90)}
	}

	t.Run("zero overlap rejects", func(t *testing.T) {
		a := gap(1, 0, 3600, base)
		b := gap(2, 3600, 7200, near) // touches a's end: no shared silence
		if _, ok := PossibleRendezvous(a, b, cfg); ok {
			t.Fatal("disjoint silent windows admitted")
		}
	})

	t.Run("exactly MinOverlap rejects", func(t *testing.T) {
		// Overlap is [3000, 3600]: exactly 10 minutes. The bound is
		// strict — meeting for the minimum leaves no travel slack.
		a := gap(1, 0, 3600, base)
		b := gap(2, 3000, 7200, near)
		if _, ok := PossibleRendezvous(a, b, cfg); ok {
			t.Fatal("exactly-MinOverlap windows admitted; the bound is strict")
		}
		// One second more of shared silence (with room to travel and
		// dwell) admits.
		c := gap(2, 2000, 7200, near)
		if _, ok := PossibleRendezvous(a, c, cfg); !ok {
			t.Fatal("window past MinOverlap with trivial travel rejected")
		}
	})

	t.Run("unreachable meeting point at MaxSpeedKn rejects", func(t *testing.T) {
		// Anchors 30 km apart, 15 km each way to the midpoint; at 25 kn
		// (~12.9 m/s) that is ~2333 s of travel + 600 s dwell per vessel,
		// but each gap is only 2400 s long.
		farPoint := geo.Destination(base, 90, 30000)
		a := gap(1, 0, 2400, base)
		b := gap(2, 0, 2400, farPoint)
		if _, ok := PossibleRendezvous(a, b, cfg); ok {
			t.Fatal("meeting point beyond MaxSpeedKn reach admitted")
		}
		// The same geometry with three-hour gaps is feasible.
		al := gap(1, 0, 10800, base)
		bl := gap(2, 0, 10800, farPoint)
		if _, ok := PossibleRendezvous(al, bl, cfg); !ok {
			t.Fatal("reachable meeting rejected")
		}
	})

	t.Run("alert carries the overlap window and meeting point", func(t *testing.T) {
		a := gap(1, 0, 7200, base)
		b := gap(2, 600, 6000, near)
		alert, ok := PossibleRendezvous(a, b, cfg)
		if !ok {
			t.Fatal("feasible pair rejected")
		}
		if alert.Kind != KindPossibleRendezvous || alert.MMSI != 1 || alert.Other != 2 {
			t.Fatalf("alert identity off: %+v", alert)
		}
		wantStart := t0().Add(600 * time.Second)
		wantEnd := t0().Add(6000 * time.Second)
		if !alert.Start.Equal(wantStart) || !alert.At.Equal(wantEnd) {
			t.Fatalf("overlap window off: [%v, %v], want [%v, %v]",
				alert.Start, alert.At, wantStart, wantEnd)
		}
		wantMeet := geo.Midpoint(geo.Midpoint(a.Before.Pos, a.After.Pos),
			geo.Midpoint(b.Before.Pos, b.After.Pos))
		if d := geo.Distance(alert.Where, wantMeet); d > 1 {
			t.Fatalf("meeting point %v, want %v (off by %.1f m)", alert.Where, wantMeet, d)
		}
	})
}
