package track

import (
	"encoding/json"
	"fmt"

	"repro/internal/fusion"
)

// Orphan persistence: identified vessel tracks rebuild from the archive
// on restart (the store replays them through the stage), but anonymous
// radar-only tracks exist nowhere else — without a snapshot they die
// with the process. SnapshotOrphans/RestoreOrphans capture exactly that
// state, one fusion.TrackerSnapshot per shard, so a daemon can park the
// picture at shutdown and resume it at startup (maritimed keeps it next
// to the WAL in -data-dir). JSON round-trips float64 exactly, so a
// restored filter continues bit-for-bit where the old process stopped.

// SnapshotOrphans captures every shard's anonymous-track picture,
// indexed by shard.
func (ss Stages) SnapshotOrphans() []fusion.TrackerSnapshot {
	out := make([]fusion.TrackerSnapshot, len(ss))
	for i, st := range ss {
		st.mu.Lock()
		out[i] = st.orphans.Snapshot()
		st.mu.Unlock()
	}
	return out
}

// RestoreOrphans resumes a snapshot taken by SnapshotOrphans. The stage
// set must be freshly built with the same shard count (orphans are
// homed per shard; a resharded daemon starts its anonymous picture
// empty rather than mishoming old tracks).
func (ss Stages) RestoreOrphans(snaps []fusion.TrackerSnapshot) error {
	if len(snaps) != len(ss) {
		return fmt.Errorf("track: orphan snapshot has %d shards, stage set has %d", len(snaps), len(ss))
	}
	for i, st := range ss {
		st.mu.Lock()
		err := st.orphans.Restore(snaps[i])
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// EncodeOrphans renders the orphan snapshot as JSON for persistence.
func (ss Stages) EncodeOrphans() ([]byte, error) {
	return json.Marshal(ss.SnapshotOrphans())
}

// DecodeOrphans parses a snapshot EncodeOrphans wrote and restores it.
func (ss Stages) DecodeOrphans(data []byte) error {
	var snaps []fusion.TrackerSnapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		return fmt.Errorf("track: decoding orphan snapshot: %w", err)
	}
	return ss.RestoreOrphans(snaps)
}
