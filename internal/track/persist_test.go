package track

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/geo"
)

// orphanScan returns the i-th radar scan of an anonymous contact
// marching north-east with no AIS identity anywhere near it.
func orphanScan(i int) Detection {
	return Detection{
		At:      t0.Add(time.Duration(i) * time.Minute),
		Pos:     geo.Point{Lat: 40.0 + float64(i)*0.002, Lon: 3.0 + float64(i)*0.002},
		Station: 0,
	}
}

// TestOrphanKillAndResume pins the daemon-restart path for anonymous
// radar tracks: identified tracks rebuild from the archive, but orphans
// exist only in the tracker — so a snapshot taken at shutdown, encoded,
// decoded and restored into a fresh stage set must resume the picture
// bit-for-bit: same counts, same serialised state, and the next scan
// associates to the restored track exactly as it would have to the
// original.
func TestOrphanKillAndResume(t *testing.T) {
	ss := NewStages(2, Config{})
	const scans = 6
	for i := 0; i < scans; i++ {
		ss.Process([]Detection{orphanScan(i)})
	}
	if got := ss.OrphanCount(); got != 1 {
		t.Fatalf("fixture grew %d orphan tracks, want 1 (scans must associate)", got)
	}

	data, err := ss.EncodeOrphans()
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the daemon: the restored process starts from fresh stages.
	resumed := NewStages(2, Config{})
	if err := resumed.DecodeOrphans(data); err != nil {
		t.Fatal(err)
	}
	if got := resumed.OrphanCount(); got != 1 {
		t.Fatalf("restored OrphanCount %d, want 1", got)
	}
	// JSON round-trips float64 exactly: re-encoding the restored picture
	// reproduces the snapshot byte-for-byte.
	again, err := resumed.EncodeOrphans()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("restore is not bit-identical:\n%s\n%s", data, again)
	}

	// The next scan continues the track in the resumed process exactly as
	// it would have in the never-killed one: it associates (no new track)
	// and leaves both trackers in identical serialised state.
	next := orphanScan(scans)
	ss.Process([]Detection{next})
	resumed.Process([]Detection{next})
	if got := resumed.OrphanCount(); got != 1 {
		t.Fatalf("follow-up scan opened a new track: OrphanCount %d", got)
	}
	a, _ := ss.EncodeOrphans()
	b, _ := resumed.EncodeOrphans()
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed process diverged from the original after one scan:\n%s\n%s", a, b)
	}
	snap := resumed.SnapshotOrphans()
	var hits int
	for _, sh := range snap {
		for _, tr := range sh.Tracks {
			hits += tr.Hits
		}
	}
	if hits != scans+1 {
		t.Fatalf("restored track has %d hits, want %d", hits, scans+1)
	}

	// A resharded daemon must not mishome old orphans: shard-count
	// mismatch refuses the snapshot (the daemon starts fresh instead).
	if err := NewStages(3, Config{}).DecodeOrphans(data); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	// Restoring over a live picture is refused too.
	dirty := NewStages(2, Config{})
	dirty.Process([]Detection{orphanScan(0)})
	if err := dirty.DecodeOrphans(data); err == nil {
		t.Fatal("restore into a non-empty tracker accepted")
	}
	// Corrupt snapshot: a parse error, not a panic.
	if err := NewStages(2, Config{}).DecodeOrphans([]byte("{")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
