// Package track is the online track-intelligence stage: a per-shard
// sink behind the ingest engine's post-synopsis tee (alongside the hub
// and the persistence flusher) that maintains fused per-vessel state as
// the feed arrives —
//
//   - a constant-velocity Kalman track per vessel, updated exactly as a
//     fusion.Tracker replay of the vessel's archived trajectory would be
//     (pinned by TestStageMatchesOfflineReplay), optionally fused with
//     anonymous radar detections (Mahalanobis-gated, Hungarian-assigned,
//     identity bound to the owning MMSI by the assignment);
//   - a shard-shared forecast.RouteModel trained incrementally per
//     vessel (forecast.Trainer), backing route-model predictions with
//     dead-reckoning fallback;
//   - a quality.Profile integrity score folded per vessel
//     (query.QualityAccumulator).
//
// The stage answers the engine's three track-intelligence kinds through
// query.TrackIntelSource (Stages routes each vessel to its owning
// shard's stage), so one-shot HTTP, standing /v1/stream queries,
// federation and tiering all read the same state. Everything is
// off-switchable: a nil ingest Config.Track means no stage in the tee
// and zero cost.
package track

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/forecast"
	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tstore"
)

// Detection is one non-AIS sensor measurement: a position without an
// identity (radar contact). Callers convert from their sensor type
// (e.g. sim.RadarContact) so the stage stays sensor-agnostic.
type Detection struct {
	At      time.Time
	Pos     geo.Point
	SigmaM  float64 // sensor noise (1-sigma); Config.RadarSigmaM when 0
	Station int     // producing sensor, used to home orphaned contacts
}

// Config tunes the stage. The zero value is usable: default tracker
// lifecycle, 120 m radar noise, 64 recent points per vessel.
type Config struct {
	// Tracker is the fusion lifecycle (gate, process noise, confirmation,
	// drop); zero value = fusion.DefaultTrackerConfig(). The AIS
	// measurement model itself is fixed (query.AISPositionSigmaM) so the
	// online state stays replay-equivalent to the offline derivation.
	Tracker fusion.TrackerConfig
	// RadarSigmaM is the default detection noise (1-sigma, metres).
	RadarSigmaM float64
	// RecentPoints bounds the per-vessel history ring predictions read
	// their recent kinematics from.
	RecentPoints int
}

func (c Config) normalize() Config {
	if c.Tracker == (fusion.TrackerConfig{}) {
		c.Tracker = fusion.DefaultTrackerConfig()
	}
	if c.RadarSigmaM <= 0 {
		c.RadarSigmaM = 120
	}
	if c.RecentPoints <= 0 {
		c.RecentPoints = 64
	}
	return c
}

// vesselTrack is one vessel's fused state. The Kalman bookkeeping
// mirrors fusion.Tracker's identity-bound path exactly — predict to the
// measurement instant, update, hits/confirmation — without the
// per-scan association scaffolding a one-vessel scan does not need, so
// the ingest hot path pays filter arithmetic only.
type vesselTrack struct {
	filter    *fusion.KalmanCV
	hits      int
	misses    int
	confirmed bool
	lastSeen  time.Time
	// Per-sensor measurement counts, held as plain ints (a map increment
	// per record would hash a string key on the ingest hot path); asTrack
	// materialises the fusion.Track.Sources map at read time.
	srcAIS   int
	srcRadar int

	qa      *query.QualityAccumulator
	trainer *forecast.Trainer

	// recent is a ring of the vessel's latest samples (time order is
	// reconstructed from head on read).
	recent []model.VesselState
	head   int
}

// Stage is one shard's online tracker. It implements tstore.Sink, so
// the ingest engine tees archived records into it, and answers the
// track-intelligence reads for the vessels its shard owns.
type Stage struct {
	cfg Config

	mu      sync.Mutex
	vessels map[uint32]*vesselTrack
	route   *forecast.RouteModel
	orphans *fusion.Tracker // anonymous contacts gating to no vessel

	appends   atomic.Int64
	contacts  atomic.Int64
	assocHits atomic.Int64
	orphaned  atomic.Int64
	predicts  atomic.Int64
	predMiss  atomic.Int64

	appendNS *obs.Histogram // sampled (1/64); nil when uninstrumented
	assocNS  *obs.Histogram // per radar scan; nil when uninstrumented
}

var _ tstore.Sink = (*Stage)(nil)
var _ query.TrackIntelSource = (*Stage)(nil)

// NewStage builds one shard's stage.
func NewStage(cfg Config) *Stage {
	cfg = cfg.normalize()
	return &Stage{
		cfg:     cfg,
		vessels: make(map[uint32]*vesselTrack),
		route:   forecast.NewRouteModel(query.RouteCellDeg),
		orphans: fusion.NewTracker(cfg.Tracker),
	}
}

// Append implements tstore.Sink: every archived record advances its
// vessel's fused state. It never fails — like the hub, a stage cannot
// refuse traffic.
func (s *Stage) Append(recs ...model.VesselState) error {
	if len(recs) == 0 {
		return nil
	}
	var t0 time.Time
	timed := s.appendNS != nil && s.appends.Add(1)&63 == 0
	if timed {
		t0 = time.Now()
	}
	s.mu.Lock()
	for i := range recs {
		s.observe(recs[i])
	}
	s.mu.Unlock()
	if timed {
		s.appendNS.ObserveSince(t0)
	}
	return nil
}

// observe folds one AIS record into its vessel (s.mu held).
func (s *Stage) observe(rec model.VesselState) {
	v, ok := s.vessels[rec.MMSI]
	if !ok {
		v = &vesselTrack{
			qa:      query.NewQualityAccumulator(rec.MMSI),
			trainer: s.route.NewTrainer(),
			recent:  make([]model.VesselState, 0, s.cfg.RecentPoints),
		}
		s.vessels[rec.MMSI] = v
	}
	m := query.AISMeasurement(rec)
	if v.filter == nil {
		// First measurement: like fusion.Tracker, the vessel's first
		// position anchors the local plane and initialises the filter.
		v.filter = fusion.NewKalmanCV(rec.Pos, s.cfg.Tracker.ProcessNoise)
		v.filter.Init(rec.At, rec.Pos, m.SigmaM)
		v.hits = 1
	} else {
		v.filter.Predict(rec.At)
		v.filter.Update(rec.Pos, m.SigmaM)
		v.hits++
		v.misses = 0
		if !v.confirmed && v.hits >= s.cfg.Tracker.ConfirmHits {
			v.confirmed = true
		}
	}
	v.lastSeen = rec.At
	v.srcAIS++

	v.qa.Observe(rec)
	v.trainer.Observe(rec)
	if len(v.recent) < cap(v.recent) {
		v.recent = append(v.recent, rec)
	} else {
		v.recent[v.head] = rec
		v.head = (v.head + 1) % len(v.recent)
	}
}

// recentPoints materialises the ring in time order (s.mu held).
func (v *vesselTrack) recentPoints() []model.VesselState {
	out := make([]model.VesselState, 0, len(v.recent))
	out = append(out, v.recent[v.head:]...)
	out = append(out, v.recent[:v.head]...)
	return out
}

// asTrack views the vessel as a fusion.Track for wire rendering
// (s.mu held; the view shares the live filter, render before unlocking).
// Sources carries only sensors that actually measured the vessel,
// matching the maps fusion.Tracker grows key by key.
func (v *vesselTrack) asTrack(mmsi uint32) *fusion.Track {
	sources := make(map[string]int, 2)
	if v.srcAIS > 0 {
		sources["ais"] = v.srcAIS
	}
	if v.srcRadar > 0 {
		sources["radar"] = v.srcRadar
	}
	return &fusion.Track{
		ID: 1, Filter: v.filter, Identity: mmsi,
		Hits: v.hits, Misses: v.misses, Confirmed: v.confirmed,
		LastSeen: v.lastSeen, Sources: sources,
	}
}

// Track implements query.TrackIntelSource for this shard's vessels.
func (s *Stage) Track(mmsi uint32) (*query.TrackState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vessels[mmsi]
	if !ok || v.filter == nil {
		return nil, false
	}
	return query.TrackStateOf(v.asTrack(mmsi)), true
}

// Predict implements query.TrackIntelSource: the shard-shared route
// model (every vessel's lanes) with dead-reckoning fallback, over the
// vessel's recent points.
func (s *Stage) Predict(mmsi uint32, horizon time.Duration) (*query.Prediction, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vessels[mmsi]
	if !ok {
		return nil, false
	}
	s.predicts.Add(1)
	p := query.PredictFrom(mmsi, v.recentPoints(), horizon, s.route)
	if p == nil {
		s.predMiss.Add(1)
		return nil, false
	}
	return p, true
}

// Quality implements query.TrackIntelSource.
func (s *Stage) Quality(mmsi uint32) (*query.QualityScore, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vessels[mmsi]
	if !ok {
		return nil, false
	}
	qs := v.qa.Score()
	return qs, qs != nil
}

// VesselCount returns the number of vessels with fused state.
func (s *Stage) VesselCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vessels)
}

// OrphanCount returns the anonymous (never identity-bound) tracks held
// for detections that gated to no known vessel.
func (s *Stage) OrphanCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.orphans.Tracks)
}

// bestGate returns the smallest gated squared Mahalanobis distance from
// the detection to any of this stage's vessel tracks (predicted,
// non-mutating, to the detection instant).
func (s *Stage) bestGate(d Detection) (float64, bool) {
	sigma := d.SigmaM
	if sigma <= 0 {
		sigma = s.cfg.RadarSigmaM
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best := math.Inf(1)
	for _, v := range s.vessels {
		if v.filter == nil {
			continue
		}
		f := *v.filter // value copy: predicted gating must not advance the live filter
		f.Predict(d.At)
		if d2 := f.MahalanobisSq(d.Pos, sigma); d2 < best {
			best = d2
		}
	}
	return best, best <= s.cfg.Tracker.GateChi2
}

// detect fuses one radar scan's contacts into this stage's vessels:
// a cost matrix of gated Mahalanobis distances (vessels × contacts),
// solved by the Hungarian assignment, committed as anonymous updates to
// the winning tracks — which binds each contact to that track's MMSI.
// Contacts the assignment leaves free go to the orphan tracker.
func (s *Stage) detect(at time.Time, contacts []Detection) int {
	var t0 time.Time
	if s.assocNS != nil {
		t0 = time.Now()
	}
	s.mu.Lock()
	// Deterministic row order: map iteration must not decide ties.
	mmsis := make([]uint32, 0, len(s.vessels))
	for m, v := range s.vessels {
		if v.filter != nil {
			mmsis = append(mmsis, m)
		}
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	costs := make([][]float64, len(mmsis))
	for i, m := range mmsis {
		costs[i] = make([]float64, len(contacts))
		f := *s.vessels[m].filter
		f.Predict(at)
		for j, d := range contacts {
			sigma := d.SigmaM
			if sigma <= 0 {
				sigma = s.cfg.RadarSigmaM
			}
			d2 := f.MahalanobisSq(d.Pos, sigma)
			if d2 > s.cfg.Tracker.GateChi2 {
				d2 = math.Inf(1)
			}
			costs[i][j] = d2
		}
	}
	assigned, _, freeMeas := fusion.Associate(costs)
	n := 0
	for _, a := range assigned {
		v, d := s.vessels[mmsis[a.Track]], contacts[a.Measurement]
		sigma := d.SigmaM
		if sigma <= 0 {
			sigma = s.cfg.RadarSigmaM
		}
		v.filter.Predict(at)
		v.filter.Update(d.Pos, sigma)
		v.hits++
		v.misses = 0
		v.lastSeen = at
		v.srcRadar++
		if !v.confirmed && v.hits >= s.cfg.Tracker.ConfirmHits {
			v.confirmed = true
		}
		n++
	}
	for _, j := range freeMeas {
		s.orphanLocked(contacts[j])
	}
	s.mu.Unlock()
	s.assocHits.Add(int64(n))
	s.orphaned.Add(int64(len(freeMeas)))
	if s.assocNS != nil {
		s.assocNS.ObserveSince(t0)
	}
	return n
}

// orphan routes one contact that gated to no vessel anywhere into this
// stage's anonymous tracker (which associates it among the orphans).
func (s *Stage) orphan(d Detection) {
	s.mu.Lock()
	s.orphanLocked(d)
	s.mu.Unlock()
	s.orphaned.Add(1)
}

func (s *Stage) orphanLocked(d Detection) {
	sigma := d.SigmaM
	if sigma <= 0 {
		sigma = s.cfg.RadarSigmaM
	}
	s.orphans.Process(d.At, []fusion.Measurement{{
		At: d.At, Pos: d.Pos, SigmaM: sigma, Source: "radar",
	}})
}

// Stages is the sharded stage set: one Stage per ingest shard, vessels
// routed by the same hash the pipelines shard by. It implements
// query.TrackIntelSource, so the engine's live source reads fused state
// straight from it.
type Stages []*Stage

// NewStages builds n stages (one per shard).
func NewStages(n int, cfg Config) Stages {
	if n < 1 {
		n = 1
	}
	out := make(Stages, n)
	for i := range out {
		out[i] = NewStage(cfg)
	}
	return out
}

// ShardFor returns the stage owning a vessel.
func (ss Stages) ShardFor(mmsi uint32) *Stage {
	return ss[stream.ShardOf(uint64(mmsi), len(ss))]
}

// Track implements query.TrackIntelSource.
func (ss Stages) Track(mmsi uint32) (*query.TrackState, bool) {
	return ss.ShardFor(mmsi).Track(mmsi)
}

// Predict implements query.TrackIntelSource.
func (ss Stages) Predict(mmsi uint32, horizon time.Duration) (*query.Prediction, bool) {
	return ss.ShardFor(mmsi).Predict(mmsi, horizon)
}

// Quality implements query.TrackIntelSource.
func (ss Stages) Quality(mmsi uint32) (*query.QualityScore, bool) {
	return ss.ShardFor(mmsi).Quality(mmsi)
}

// Process fuses a batch of detections, grouped into scans by timestamp
// (contacts of one scan arrive adjacent, as sensors emit them). Each
// contact is homed to the stage whose vessels gate it best, each
// stage's scan is Hungarian-assigned jointly, and contacts no vessel
// gates go to an orphan tracker (homed by station). Returns the number
// of contacts fused into identified vessel tracks.
func (ss Stages) Process(ds []Detection) int {
	if len(ss) == 0 || len(ds) == 0 {
		return 0
	}
	for i := range ss {
		ss[i].contacts.Add(0) // touch nothing; counts added per scan below
	}
	n := 0
	i := 0
	for i < len(ds) {
		j := i + 1
		for j < len(ds) && ds[j].At.Equal(ds[i].At) {
			j++
		}
		n += ss.scan(ds[i].At, ds[i:j])
		i = j
	}
	return n
}

func (ss Stages) scan(at time.Time, contacts []Detection) int {
	perStage := make([][]Detection, len(ss))
	for _, d := range contacts {
		best, bestD2 := -1, math.Inf(1)
		for si, st := range ss {
			if d2, ok := st.bestGate(d); ok && d2 < bestD2 {
				best, bestD2 = si, d2
			}
		}
		home := d.Station
		if home < 0 {
			home = -home
		}
		ss[home%len(ss)].contacts.Add(1)
		if best < 0 {
			ss[home%len(ss)].orphan(d)
			continue
		}
		perStage[best] = append(perStage[best], d)
	}
	n := 0
	for si, batch := range perStage {
		if len(batch) > 0 {
			n += ss[si].detect(at, batch)
		}
	}
	return n
}

// VesselCount sums fused vessels across stages.
func (ss Stages) VesselCount() int {
	n := 0
	for _, st := range ss {
		n += st.VesselCount()
	}
	return n
}

// OrphanCount sums anonymous tracks across stages.
func (ss Stages) OrphanCount() int {
	n := 0
	for _, st := range ss {
		n += st.OrphanCount()
	}
	return n
}

// Instrument registers the stage-set series with reg: vessel/orphan
// track gauges, contact counters (seen / fused / orphaned), predict
// counters (total / missed — the predict-error signal: a miss is a
// predict with no kinematic basis), sampled append cost and per-scan
// association latency.
func (ss Stages) Instrument(reg *obs.Registry) {
	sum := func(f func(*Stage) int64) func() float64 {
		return func() float64 {
			var n int64
			for _, st := range ss {
				n += f(st)
			}
			return float64(n)
		}
	}
	reg.GaugeFunc("track_vessels", func() float64 { return float64(ss.VesselCount()) })
	reg.GaugeFunc("track_orphan_tracks", func() float64 { return float64(ss.OrphanCount()) })
	reg.CounterFunc("track_contacts_total", sum(func(st *Stage) int64 { return st.contacts.Load() }))
	reg.CounterFunc("track_contacts_fused_total", sum(func(st *Stage) int64 { return st.assocHits.Load() }))
	reg.CounterFunc("track_contacts_orphaned_total", sum(func(st *Stage) int64 { return st.orphaned.Load() }))
	reg.CounterFunc("track_predicts_total", sum(func(st *Stage) int64 { return st.predicts.Load() }))
	reg.CounterFunc("track_predict_misses_total", sum(func(st *Stage) int64 { return st.predMiss.Load() }))
	appendNS := reg.Histogram("track_append_ns")
	assocNS := reg.Histogram("track_associate_ns")
	for _, st := range ss {
		st.appendNS = appendNS
		st.assocNS = assocNS
	}
}
