package track

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/sim"
)

var t0 = time.Date(2017, 3, 21, 12, 0, 0, 0, time.UTC)

// vesselStates builds one vessel's trajectory: a steady north-east run
// in the Ligurian Sea, 1-minute cadence. The 0.002°/min step implies
// ~5 kn, kinematically consistent with the reported speed so the
// quality checks see a clean feed (like the vast majority of real
// traffic — benchmarks on this fixture measure the clean-path cost).
func vesselStates(mmsi uint32, v, n int) []model.VesselState {
	out := make([]model.VesselState, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, model.VesselState{
			MMSI: mmsi,
			At:   t0.Add(time.Duration(i) * time.Minute),
			Pos: geo.Point{
				Lat: 42.0 + float64(v)*0.3 + float64(i)*0.002,
				Lon: 5.0 + float64(v)*0.3 + float64(i)*0.002,
			},
			SpeedKn:   5.4,
			CourseDeg: 37,
		})
	}
	return out
}

// TestStageMatchesOfflineReplay pins the replay-equivalence contract:
// the online stage's fused state and quality score, fed record by
// record as the tee delivers them (concurrently across vessels, one
// goroutine each, exercised under -race), must equal what the offline
// derivation computes from the archived trajectory.
func TestStageMatchesOfflineReplay(t *testing.T) {
	const vessels, points = 6, 40
	s := NewStage(Config{})
	byVessel := make(map[uint32][]model.VesselState, vessels)
	for v := 1; v <= vessels; v++ {
		mmsi := uint32(201000000 + v)
		byVessel[mmsi] = vesselStates(mmsi, v, points)
	}

	var wg sync.WaitGroup
	for _, pts := range byVessel {
		wg.Add(1)
		go func(pts []model.VesselState) {
			defer wg.Done()
			for _, p := range pts {
				if err := s.Append(p); err != nil {
					t.Error(err)
				}
			}
		}(pts)
	}
	wg.Wait()

	if got := s.VesselCount(); got != vessels {
		t.Fatalf("VesselCount %d, want %d", got, vessels)
	}
	for mmsi, pts := range byVessel {
		online, ok := s.Track(mmsi)
		if !ok {
			t.Fatalf("vessel %d: no online track", mmsi)
		}
		offline := query.DeriveTrack(mmsi, pts)
		oj, _ := json.Marshal(online)
		fj, _ := json.Marshal(offline)
		if string(oj) != string(fj) {
			t.Errorf("vessel %d track: online != replay\nonline: %s\nreplay: %s", mmsi, oj, fj)
		}

		oq, ok := s.Quality(mmsi)
		if !ok {
			t.Fatalf("vessel %d: no online quality", mmsi)
		}
		fq := query.DeriveQuality(mmsi, pts)
		oj, _ = json.Marshal(oq)
		fj, _ = json.Marshal(fq)
		if string(oj) != string(fj) {
			t.Errorf("vessel %d quality: online != replay\nonline: %s\nreplay: %s", mmsi, oj, fj)
		}

		// Predictions read the shard-shared route model (trained on every
		// vessel's lanes), so they are richer than the single-trajectory
		// replay — pin the timeline and shape instead of exact equality.
		p, ok := s.Predict(mmsi, 15*time.Minute)
		if !ok || p == nil {
			t.Fatalf("vessel %d: no online prediction", mmsi)
		}
		last := pts[len(pts)-1]
		if !p.From.Equal(last.At) || !p.At.Equal(last.At.Add(15*time.Minute)) {
			t.Errorf("vessel %d prediction timeline off: %+v", mmsi, p)
		}
		if p.Method == "" || p.ConfidenceM <= 0 {
			t.Errorf("vessel %d prediction shape off: %+v", mmsi, p)
		}
	}

	// Unknown vessels answer ok=false on all three kinds.
	if _, ok := s.Track(999); ok {
		t.Error("unknown vessel answered a track")
	}
	if _, ok := s.Predict(999, time.Minute); ok {
		t.Error("unknown vessel answered a prediction")
	}
	if _, ok := s.Quality(999); ok {
		t.Error("unknown vessel answered a quality score")
	}
}

// TestRadarAssociation pins the fusion path: a contact near a tracked
// vessel is gated, assigned and committed to that vessel's track
// (identity bound by the assignment); a contact near nothing lands in
// the orphan tracker. Runs through Stages.Process so cross-shard homing
// is exercised too.
func TestRadarAssociation(t *testing.T) {
	ss := NewStages(2, Config{})
	a := vesselStates(201000001, 0, 10) // around 42.0, 5.0
	b := vesselStates(201000002, 8, 10) // around 44.4, 7.4 — far from a
	for _, pts := range [][]model.VesselState{a, b} {
		for _, p := range pts {
			if err := ss.ShardFor(p.MMSI).Append(p); err != nil {
				t.Fatal(err)
			}
		}
	}

	lastA := a[len(a)-1]
	scanAt := lastA.At.Add(30 * time.Second)
	// The fleet advances 0.002°/min; put the contact on the extrapolated
	// path so it falls inside the predicted gate.
	nearPos := geo.Point{Lat: lastA.Pos.Lat + 0.001, Lon: lastA.Pos.Lon + 0.001}
	near := Detection{At: scanAt, Pos: nearPos, Station: 0}
	far := Detection{At: scanAt, Pos: geo.Point{Lat: 39.0, Lon: 2.0}, Station: 1}

	if n := ss.Process([]Detection{near, far}); n != 1 {
		t.Fatalf("Process fused %d contacts, want 1", n)
	}
	ts, ok := ss.Track(lastA.MMSI)
	if !ok {
		t.Fatal("vessel lost after radar fusion")
	}
	if ts.Sources["radar"] != 1 || ts.Sources["ais"] != len(a) {
		t.Fatalf("sources after fusion: %v", ts.Sources)
	}
	if !ts.At.Equal(scanAt) {
		t.Fatalf("track At %v, want the scan instant %v", ts.At, scanAt)
	}
	if tsB, _ := ss.Track(201000002); tsB.Sources["radar"] != 0 {
		t.Fatalf("distant vessel caught the contact: %v", tsB.Sources)
	}
	if got := ss.OrphanCount(); got != 1 {
		t.Fatalf("OrphanCount %d, want 1", got)
	}

	// The radar update tightened (or at least did not corrupt) the track:
	// the fused position stays near the vessel's true line of advance.
	if d := geo.Distance(geo.Point{Lat: ts.Lat, Lon: ts.Lon}, nearPos); d > 500 {
		t.Fatalf("fused position drifted %.0f m from the contact", d)
	}

	// An empty batch and an empty stage set are no-ops.
	if n := ss.Process(nil); n != 0 {
		t.Fatalf("empty batch fused %d", n)
	}
	if n := (Stages{}).Process([]Detection{near}); n != 0 {
		t.Fatalf("empty stage set fused %d", n)
	}
}

// truthAt linearly interpolates a vessel's ground-truth position.
func truthAt(pts []sim.TruthPoint, at time.Time) (geo.Point, bool) {
	for i := 1; i < len(pts); i++ {
		if pts[i].At.Before(at) {
			continue
		}
		a, b := pts[i-1], pts[i]
		span := b.At.Sub(a.At).Seconds()
		if span <= 0 {
			return b.Pos, true
		}
		f := at.Sub(a.At).Seconds() / span
		return geo.Point{
			Lat: a.Pos.Lat + (b.Pos.Lat-a.Pos.Lat)*f,
			Lon: a.Pos.Lon + (b.Pos.Lon-a.Pos.Lon)*f,
		}, true
	}
	return geo.Point{}, false
}

// TestPredictAccuracy checks the stage's forecasts against simulator
// ground truth at 5- and 15-minute horizons: the hybrid predictor
// (route prior + dead-reckoning fallback) must not be meaningfully
// worse than the pure dead-reckoning baseline it falls back to.
func TestPredictAccuracy(t *testing.T) {
	run, err := sim.Simulate(sim.Config{Seed: 11, NumVessels: 25, Duration: 90 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	cut := run.Config.Start.Add(60 * time.Minute)

	s := NewStage(Config{})
	histories := map[uint32][]model.VesselState{}
	for i := range run.Positions {
		o := &run.Positions[i]
		if o.At.After(cut) {
			break
		}
		st := model.FromReport(o.At, &o.Report)
		if err := s.Append(st); err != nil {
			t.Fatal(err)
		}
		histories[st.MMSI] = append(histories[st.MMSI], st)
	}

	for _, horizon := range []time.Duration{5 * time.Minute, 15 * time.Minute} {
		var stageSum, drSum float64
		var n int
		for mmsi, pts := range histories {
			last := pts[len(pts)-1]
			// Need a real history and a recent fix, and the run must still
			// have truth at the target instant.
			if len(pts) < 10 || cut.Sub(last.At) > 10*time.Minute {
				continue
			}
			truth, ok := truthAt(run.Truth[mmsi], last.At.Add(horizon))
			if !ok {
				continue
			}
			p, ok := s.Predict(mmsi, horizon)
			if !ok {
				continue
			}
			drPos, ok := (forecast.DeadReckoning{}).Predict(
				&model.Trajectory{MMSI: mmsi, Points: pts}, horizon)
			if !ok {
				continue
			}
			stageSum += geo.Distance(geo.Point{Lat: p.Lat, Lon: p.Lon}, truth)
			drSum += geo.Distance(drPos, truth)
			n++
		}
		if n < 5 {
			t.Fatalf("horizon %v: only %d vessels usable", horizon, n)
		}
		stageMean, drMean := stageSum/float64(n), drSum/float64(n)
		t.Logf("horizon %v: %d vessels, stage mean error %.0f m, dead-reckoning %.0f m",
			horizon, n, stageMean, drMean)
		// The stage may beat DR (lane prior) or match it (fallback); it must
		// never be meaningfully worse.
		if stageMean > drMean*1.3+100 {
			t.Errorf("horizon %v: stage error %.0f m exceeds dead-reckoning bound (%.0f m)",
				horizon, stageMean, drMean*1.3+100)
		}
		if math.IsNaN(stageMean) || stageMean > 20000 {
			t.Errorf("horizon %v: stage error %.0f m implausible", horizon, stageMean)
		}
	}
}

// BenchmarkTrackerStage measures the tee-side cost of the stage: one
// archived record folded into its vessel's fused state (filter update,
// quality check, route training, ring write).
func BenchmarkTrackerStage(b *testing.B) {
	const vessels = 64
	states := make([]model.VesselState, 0, vessels*32)
	for v := 1; v <= vessels; v++ {
		states = append(states, vesselStates(uint32(201000000+v), v%10, 32)...)
	}
	s := NewStage(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := states[i%len(states)]
		// Keep time monotonic across passes: a wrapped clock would turn
		// every record into a (Sprintf-formatting) time-regression issue
		// and measure the defect path instead of the clean one.
		st.At = st.At.Add(time.Duration(i/len(states)) * time.Hour)
		if err := s.Append(st); err != nil {
			b.Fatal(err)
		}
	}
}
