package fusion

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func TestKalmanTracksStraightMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	origin := geo.Point{Lat: 43, Lon: 5}
	truth := origin
	v := geo.Velocity{SpeedMS: 8, CourseDg: 60}
	k := NewKalmanCV(origin, 0.05)
	at := t0()
	for i := 0; i < 120; i++ {
		noisy := geo.Destination(truth, rng.Float64()*360, math.Abs(rng.NormFloat64())*10)
		if !k.Initialised() {
			k.Init(at, noisy, 10)
		} else {
			k.Predict(at)
			k.Update(noisy, 10)
		}
		truth = geo.Project(truth, v, 10)
		at = at.Add(10 * time.Second)
	}
	// After two minutes the velocity estimate must be close to truth.
	est := k.Velocity()
	if math.Abs(est.SpeedMS-8) > 1.0 {
		t.Errorf("speed estimate %.2f, want ≈8", est.SpeedMS)
	}
	courseDiff := math.Abs(geo.NormalizeBearing(est.CourseDg - 60))
	if courseDiff > 180 {
		courseDiff = 360 - courseDiff
	}
	if courseDiff > 8 {
		t.Errorf("course estimate %.1f, want ≈60", est.CourseDg)
	}
	// The filtered position must beat the raw 10 m measurement noise.
	backOneStep := geo.Project(truth, geo.Velocity{SpeedMS: 8, CourseDg: 60 + 180}, 10)
	if d := geo.Distance(k.Position(), backOneStep); d > 12 {
		t.Errorf("filtered position %.1f m from truth", d)
	}
	if k.PositionUncertaintyM() > 10 {
		t.Errorf("uncertainty did not converge: %.1f m", k.PositionUncertaintyM())
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	// Filtered RMSE must beat raw measurement RMSE on a long steady track.
	rng := rand.New(rand.NewSource(2))
	origin := geo.Point{Lat: 40, Lon: 10}
	truth := origin
	v := geo.Velocity{SpeedMS: 6, CourseDg: 135}
	k := NewKalmanCV(origin, 0.05)
	at := t0()
	var rawSq, filtSq float64
	n := 0
	for i := 0; i < 200; i++ {
		noisy := geo.Destination(truth, rng.Float64()*360, math.Abs(rng.NormFloat64())*15)
		if !k.Initialised() {
			k.Init(at, noisy, 15)
		} else {
			k.Predict(at)
			k.Update(noisy, 15)
		}
		if i > 20 { // after convergence
			dr := geo.Distance(noisy, truth)
			df := geo.Distance(k.Position(), truth)
			rawSq += dr * dr
			filtSq += df * df
			n++
		}
		truth = geo.Project(truth, v, 10)
		at = at.Add(10 * time.Second)
	}
	rawRMSE := math.Sqrt(rawSq / float64(n))
	filtRMSE := math.Sqrt(filtSq / float64(n))
	if filtRMSE >= rawRMSE {
		t.Errorf("filter (%.1f m) should beat raw (%.1f m)", filtRMSE, rawRMSE)
	}
}

func TestMahalanobisGate(t *testing.T) {
	k := NewKalmanCV(geo.Point{Lat: 43, Lon: 5}, 0.05)
	k.Init(t0(), geo.Point{Lat: 43, Lon: 5}, 10)
	k.Predict(t0().Add(10 * time.Second))
	near := geo.Destination(geo.Point{Lat: 43, Lon: 5}, 45, 20)
	far := geo.Destination(geo.Point{Lat: 43, Lon: 5}, 45, 5000)
	dNear := k.MahalanobisSq(near, 10)
	dFar := k.MahalanobisSq(far, 10)
	if dNear > 9.21 {
		t.Errorf("nearby measurement gated out: %.2f", dNear)
	}
	if dFar < 9.21 {
		t.Errorf("far measurement inside gate: %.2f", dFar)
	}
}

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := Hungarian(cost)
	total := 0.0
	seen := map[int]bool{}
	for i, j := range assign {
		total += cost[i][j]
		if seen[j] {
			t.Fatal("column assigned twice")
		}
		seen[j] = true
	}
	if total != 5 { // optimal: 1 + 2 + 2
		t.Errorf("total cost %.0f, want 5", total)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	perms := func(n int) [][]int {
		var out [][]int
		var rec func(cur []int, rest []int)
		rec = func(cur, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				rec(append(cur, rest[i]), next)
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		rec(nil, idx)
		return out
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 100)
			}
		}
		best := math.Inf(1)
		for _, p := range perms(n) {
			s := 0.0
			for i, j := range p {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
		}
		assign := Hungarian(cost)
		got := 0.0
		for i, j := range assign {
			got += cost[i][j]
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: hungarian %.0f, brute force %.0f", trial, got, best)
		}
	}
}

func TestAssociateGating(t *testing.T) {
	costs := [][]float64{
		{1, math.Inf(1)},
		{math.Inf(1), math.Inf(1)},
	}
	assigned, freeTracks, freeMeas := Associate(costs)
	if len(assigned) != 1 || assigned[0].Track != 0 || assigned[0].Measurement != 0 {
		t.Fatalf("assignment wrong: %+v", assigned)
	}
	if len(freeTracks) != 1 || freeTracks[0] != 1 {
		t.Errorf("free tracks: %v", freeTracks)
	}
	if len(freeMeas) != 1 || freeMeas[0] != 1 {
		t.Errorf("free measurements: %v", freeMeas)
	}
}

func TestAssociateRectangular(t *testing.T) {
	// More measurements than tracks and vice versa.
	a, ft, fm := Associate([][]float64{{1, 2, 3}})
	if len(a) != 1 || len(ft) != 0 || len(fm) != 2 {
		t.Errorf("1x3: %v %v %v", a, ft, fm)
	}
	a, ft, fm = Associate([][]float64{{1}, {2}, {3}})
	if len(a) != 1 || len(ft) != 2 || len(fm) != 0 {
		t.Errorf("3x1: %v %v %v", a, ft, fm)
	}
	a, ft, fm = Associate(nil)
	if a != nil || ft != nil || fm != nil {
		t.Error("empty associate should be empty")
	}
}

// simulateTwoVessels produces parallel tracks 2 km apart with radar-like
// anonymous measurements, and returns per-scan measurement batches plus
// the ground-truth positions.
func simulateTwoVessels(rng *rand.Rand, scans int, noise float64) (batches [][]Measurement, truthA, truthB []geo.Point) {
	a := geo.Point{Lat: 43.0, Lon: 5.0}
	b := geo.Destination(a, 0, 2000)
	va := geo.Velocity{SpeedMS: 7, CourseDg: 90}
	vb := geo.Velocity{SpeedMS: 7, CourseDg: 90}
	at := t0()
	for s := 0; s < scans; s++ {
		ma := Measurement{At: at, Pos: geo.Destination(a, rng.Float64()*360, math.Abs(rng.NormFloat64())*noise), SigmaM: noise, Source: "radar"}
		mb := Measurement{At: at, Pos: geo.Destination(b, rng.Float64()*360, math.Abs(rng.NormFloat64())*noise), SigmaM: noise, Source: "radar"}
		batches = append(batches, []Measurement{ma, mb})
		truthA = append(truthA, a)
		truthB = append(truthB, b)
		a = geo.Project(a, va, 10)
		b = geo.Project(b, vb, 10)
		at = at.Add(10 * time.Second)
	}
	return batches, truthA, truthB
}

func TestTrackerMaintainsTwoTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	batches, truthA, truthB := simulateTwoVessels(rng, 60, 50)
	tk := NewTracker(DefaultTrackerConfig())
	at := t0()
	for _, batch := range batches {
		tk.Process(at, batch)
		at = at.Add(10 * time.Second)
	}
	confirmed := tk.ConfirmedTracks()
	if len(confirmed) != 2 {
		t.Fatalf("expected 2 confirmed tracks, got %d (total %d)", len(confirmed), len(tk.Tracks))
	}
	// Each confirmed track must end near one of the true endpoints.
	endA, endB := truthA[len(truthA)-1], truthB[len(truthB)-1]
	for _, tr := range confirmed {
		p := tr.Filter.Position()
		dA, dB := geo.Distance(p, endA), geo.Distance(p, endB)
		if math.Min(dA, dB) > 300 {
			t.Errorf("track %d ended %.0f m from both truths", tr.ID, math.Min(dA, dB))
		}
	}
}

func TestTrackerBindsIdentity(t *testing.T) {
	tk := NewTracker(DefaultTrackerConfig())
	at := t0()
	pos := geo.Point{Lat: 43, Lon: 5}
	// Radar-only first: anonymous track.
	tk.Process(at, []Measurement{{At: at, Pos: pos, SigmaM: 100, Source: "radar"}})
	at = at.Add(10 * time.Second)
	// AIS report arrives for the same object: identity binds via GNN.
	tk.Process(at, []Measurement{{At: at, Pos: geo.Destination(pos, 90, 70), SigmaM: 10, Identity: 227000001, Source: "ais"}})
	found := false
	for _, tr := range tk.Tracks {
		if tr.Identity == 227000001 {
			found = true
		}
	}
	if !found {
		t.Error("identity did not bind to any track")
	}
	// The AIS measurement should not have spawned a duplicate track if it
	// fell in the radar track's gate — allow either 1 or 2 depending on
	// gate, but identity must exist exactly once.
	count := 0
	for _, tr := range tk.Tracks {
		if tr.Identity == 227000001 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("identity bound to %d tracks", count)
	}
}

func TestTrackerDropsStaleTracks(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.DropAfter = time.Minute
	tk := NewTracker(cfg)
	at := t0()
	tk.Process(at, []Measurement{{At: at, Pos: geo.Point{Lat: 43, Lon: 5}, SigmaM: 10, Identity: 1, Source: "ais"}})
	if len(tk.Tracks) != 1 {
		t.Fatal("track not created")
	}
	// Scans far in the future with unrelated traffic age the track out.
	at = at.Add(5 * time.Minute)
	tk.Process(at, []Measurement{{At: at, Pos: geo.Point{Lat: 44, Lon: 6}, SigmaM: 10, Identity: 2, Source: "ais"}})
	for _, tr := range tk.Tracks {
		if tr.Identity == 1 {
			t.Error("stale track not dropped")
		}
	}
}

func TestCovarianceIntersection(t *testing.T) {
	// Two estimates of the same point with orthogonal confidence: the fused
	// estimate must be tighter than either and sit between them.
	x1 := [2]float64{0, 0}
	P1 := Mat2{100, 0, 0, 10000} // confident in x, vague in y
	x2 := [2]float64{10, 10}
	P2 := Mat2{10000, 0, 0, 100} // vague in x, confident in y
	xf, Pf := CovarianceIntersection(x1, P1, x2, P2)
	if Pf.det() >= P1.det() || Pf.det() >= P2.det() {
		t.Errorf("fused covariance not tighter: det %e vs %e/%e", Pf.det(), P1.det(), P2.det())
	}
	// Fused x should lean toward x1's x (more confident) and x2's y.
	if math.Abs(xf[0]-0) > 5 {
		t.Errorf("fused x %f should be near 0", xf[0])
	}
	if math.Abs(xf[1]-10) > 5 {
		t.Errorf("fused y %f should be near 10", xf[1])
	}
}

func TestSourceReliability(t *testing.T) {
	r := NewSourceReliability()
	if r.Score("unknown") != 0.5 {
		t.Error("unknown source should score 0.5")
	}
	for i := 0; i < 100; i++ {
		r.Observe("honest", 2.0) // consistent with claimed noise
		r.Observe("liar", 40.0)  // wildly optimistic noise model
	}
	if r.Score("honest") != 1 {
		t.Errorf("honest score %.2f", r.Score("honest"))
	}
	if s := r.Score("liar"); s > 0.2 {
		t.Errorf("liar score %.2f should be low", s)
	}
	if got := r.Sources(); len(got) != 2 || got[0] != "honest" {
		t.Errorf("sources: %v", got)
	}
}

func BenchmarkKalmanPredictUpdate(b *testing.B) {
	k := NewKalmanCV(geo.Point{Lat: 43, Lon: 5}, 0.05)
	k.Init(t0(), geo.Point{Lat: 43, Lon: 5}, 10)
	at := t0()
	p := geo.Point{Lat: 43, Lon: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at = at.Add(10 * time.Second)
		k.Predict(at)
		k.Update(p, 10)
	}
}

func BenchmarkHungarian20x20(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Hungarian(cost)
	}
}

func BenchmarkTrackerScan50(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	// 50 parallel vessels, one scan each iteration.
	base := geo.Point{Lat: 43, Lon: 5}
	var meas []Measurement
	for i := 0; i < 50; i++ {
		meas = append(meas, Measurement{
			Pos:    geo.Destination(base, float64(i*7%360), float64(1000+i*500)),
			SigmaM: 50, Source: "radar",
		})
	}
	tk := NewTracker(DefaultTrackerConfig())
	at := t0()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(10 * time.Second)
		for j := range meas {
			meas[j].Pos = geo.Destination(meas[j].Pos, 90, 70+rng.Float64()*5)
			meas[j].At = at
		}
		tk.Process(at, meas)
	}
}

// TestPredictMatchesDenseAlgebra pins the specialised covariance
// propagation in Predict against the dense P = F P Fᵀ + Q it replaced:
// the zero/one entries of the CV transition contribute exact no-ops, so
// the two must agree bit for bit — replay equivalence (online stage vs
// offline derivation, evicted vs resident) depends on the filter being
// deterministic, not merely close.
func TestPredictMatchesDenseAlgebra(t *testing.T) {
	densePredict := func(k *KalmanCV, at time.Time) {
		dt := at.Sub(k.T).Seconds()
		if dt <= 0 {
			return
		}
		F := Identity4()
		F[2] = dt
		F[7] = dt
		Q := processNoiseQ(k.ProcessNoise, dt)
		k.X = mulVec4(F, k.X)
		k.P = add4(mul4(mul4(F, k.P), transpose4(F)), Q)
		k.T = at
	}

	rng := rand.New(rand.NewSource(5))
	origin := geo.Point{Lat: 43.1, Lon: 5.2}
	for trial := 0; trial < 50; trial++ {
		a := NewKalmanCV(origin, 0.01+rng.Float64())
		a.Init(t0(), origin, 5+20*rng.Float64())
		b := *a
		at := t0()
		for step := 0; step < 20; step++ {
			at = at.Add(time.Duration(1+rng.Intn(600)) * time.Second)
			a.Predict(at)
			densePredict(&b, at)
			if a.X != b.X || a.P != b.P {
				t.Fatalf("trial %d step %d: specialised Predict diverged from dense algebra\nX %v vs %v\nP %v vs %v",
					trial, step, a.X, b.X, a.P, b.P)
			}
			// Occasional updates keep the covariance realistic (it would
			// otherwise grow without bound and hide cancellation bugs).
			if step%3 == 0 {
				p := a.Plane.Inverse(a.X[0]+rng.NormFloat64()*50, a.X[1]+rng.NormFloat64()*50)
				a.Update(p, 15)
				b.Update(p, 15)
			}
		}
	}
}
