package fusion

import (
	"math"
	"sort"
	"time"

	"repro/internal/geo"
)

// Measurement is one sensor position report fed to the tracker.
type Measurement struct {
	At     time.Time
	Pos    geo.Point
	SigmaM float64 // sensor position noise (1-sigma)
	// Identity carried by the sensor (MMSI for AIS), 0 for anonymous
	// sensors such as radar. Identified measurements bind to their track.
	Identity uint32
	// Source labels the producing sensor ("ais", "radar-2"…).
	Source string
}

// Track is one maintained object hypothesis.
type Track struct {
	ID        int
	Filter    *KalmanCV
	Identity  uint32 // 0 until an identified measurement binds one
	Hits      int
	Misses    int
	Confirmed bool
	LastSeen  time.Time
	Sources   map[string]int // per-source measurement counts
}

// TrackerConfig tunes the track lifecycle.
type TrackerConfig struct {
	// GateChi2 is the association gate on the squared Mahalanobis
	// distance (χ², 2 dof): 9.21 ≈ 99%.
	GateChi2 float64
	// ProcessNoise is the Kalman white-acceleration density (m²/s³).
	ProcessNoise float64
	// ConfirmHits promotes a tentative track after this many updates.
	ConfirmHits int
	// DropAfter deletes a track not updated for this long.
	DropAfter time.Duration
}

// DefaultTrackerConfig returns maritime-plausible settings.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		GateChi2:     9.21,
		ProcessNoise: 0.05,
		ConfirmHits:  3,
		DropAfter:    10 * time.Minute,
	}
}

// Tracker maintains the track picture over successive measurement scans.
type Tracker struct {
	Config TrackerConfig
	Tracks []*Track

	nextID int
	origin geo.Point
	hasOrg bool
}

// NewTracker returns an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	return &Tracker{Config: cfg, nextID: 1}
}

// Process consumes one scan: a batch of measurements with (approximately)
// a common timestamp. Identified measurements associate by identity first;
// anonymous ones are assigned globally (GNN) within the gate. It returns
// the tracks updated in this scan.
func (t *Tracker) Process(at time.Time, meas []Measurement) []*Track {
	if !t.hasOrg && len(meas) > 0 {
		t.origin = meas[0].Pos
		t.hasOrg = true
	}
	// Predict every track to scan time.
	for _, tr := range t.Tracks {
		tr.Filter.Predict(at)
	}

	updated := map[*Track]bool{}
	byIdentity := map[uint32]*Track{}
	for _, tr := range t.Tracks {
		if tr.Identity != 0 {
			byIdentity[tr.Identity] = tr
		}
	}

	// Pass 1: identity-bound association.
	var anonymous []Measurement
	for _, m := range meas {
		if m.Identity == 0 {
			anonymous = append(anonymous, m)
			continue
		}
		tr, ok := byIdentity[m.Identity]
		if !ok {
			tr = t.newTrack(at, m)
			byIdentity[m.Identity] = tr
			updated[tr] = true
			continue
		}
		t.updateTrack(tr, at, m)
		updated[tr] = true
	}

	// Pass 2: GNN over anonymous measurements and all tracks not yet
	// updated this scan.
	var candidates []*Track
	for _, tr := range t.Tracks {
		if !updated[tr] {
			candidates = append(candidates, tr)
		}
	}
	if len(anonymous) > 0 && len(candidates) > 0 {
		costs := make([][]float64, len(candidates))
		for i, tr := range candidates {
			costs[i] = make([]float64, len(anonymous))
			for j, m := range anonymous {
				d2 := tr.Filter.MahalanobisSq(m.Pos, m.SigmaM)
				if d2 > t.Config.GateChi2 {
					costs[i][j] = math.Inf(1)
				} else {
					costs[i][j] = d2
				}
			}
		}
		assigned, _, freeMeas := Associate(costs)
		for _, a := range assigned {
			tr := candidates[a.Track]
			t.updateTrack(tr, at, anonymous[a.Measurement])
			updated[tr] = true
		}
		for _, j := range freeMeas {
			tr := t.newTrack(at, anonymous[j])
			updated[tr] = true
		}
	} else {
		for _, m := range anonymous {
			tr := t.newTrack(at, m)
			updated[tr] = true
		}
	}

	// Lifecycle: count misses, drop stale tracks.
	kept := t.Tracks[:0]
	for _, tr := range t.Tracks {
		if !updated[tr] {
			tr.Misses++
		}
		if at.Sub(tr.LastSeen) <= t.Config.DropAfter {
			kept = append(kept, tr)
		}
	}
	t.Tracks = kept

	var out []*Track
	for tr := range updated {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (t *Tracker) newTrack(at time.Time, m Measurement) *Track {
	f := NewKalmanCV(t.origin, t.Config.ProcessNoise)
	f.Init(at, m.Pos, m.SigmaM)
	tr := &Track{
		ID:       t.nextID,
		Filter:   f,
		Identity: m.Identity,
		Hits:     1,
		LastSeen: at,
		Sources:  map[string]int{m.Source: 1},
	}
	t.nextID++
	t.Tracks = append(t.Tracks, tr)
	return tr
}

func (t *Tracker) updateTrack(tr *Track, at time.Time, m Measurement) {
	tr.Filter.Update(m.Pos, m.SigmaM)
	tr.Hits++
	tr.Misses = 0
	tr.LastSeen = at
	tr.Sources[m.Source]++
	if tr.Identity == 0 && m.Identity != 0 {
		tr.Identity = m.Identity
	}
	if !tr.Confirmed && tr.Hits >= t.Config.ConfirmHits {
		tr.Confirmed = true
	}
}

// ConfirmedTracks returns the confirmed tracks sorted by ID.
func (t *Tracker) ConfirmedTracks() []*Track {
	var out []*Track
	for _, tr := range t.Tracks {
		if tr.Confirmed {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SourceReliability estimates per-source quality from innovation behaviour:
// the mean squared Mahalanobis distance of accepted associations should be
// ≈2 (χ², 2 dof) for an honest sensor; values far above flag optimistic
// noise models or corrupted sources. It is the plug-in the resolver and
// the uncertainty layer use to discount sources (§4).
type SourceReliability struct {
	stats map[string]*reliabilityStat
}

type reliabilityStat struct {
	n     int
	sumD2 float64
}

// NewSourceReliability returns an empty estimator.
func NewSourceReliability() *SourceReliability {
	return &SourceReliability{stats: make(map[string]*reliabilityStat)}
}

// Observe records one accepted association's squared Mahalanobis distance.
func (r *SourceReliability) Observe(source string, d2 float64) {
	s, ok := r.stats[source]
	if !ok {
		s = &reliabilityStat{}
		r.stats[source] = s
	}
	s.n++
	s.sumD2 += d2
}

// Score returns a reliability in (0, 1]: 1 when the source's innovations
// are consistent with its claimed noise (mean χ² ≤ 2), decaying as they
// grow. Unknown sources score 0.5.
func (r *SourceReliability) Score(source string) float64 {
	s, ok := r.stats[source]
	if !ok || s.n == 0 {
		return 0.5
	}
	mean := s.sumD2 / float64(s.n)
	if mean <= 2 {
		return 1
	}
	return math.Max(0.05, 2/mean)
}

// Sources lists the observed sources sorted by name.
func (r *SourceReliability) Sources() []string {
	out := make([]string, 0, len(r.stats))
	for s := range r.stats {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
