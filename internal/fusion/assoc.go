package fusion

import "math"

// Hungarian solves the square assignment problem: given an n×n cost
// matrix, it returns rowAssign where rowAssign[i] is the column assigned
// to row i, minimising total cost. It is the Jonker-style O(n³) shortest
// augmenting path formulation with potentials. Infinite costs are allowed
// (forbidden pairs) as long as a finite-cost perfect matching exists on
// padded matrices.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	const inf = math.MaxFloat64 / 4
	// 1-indexed potentials and matching, per the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				c := cost[i0-1][j-1]
				if c > inf {
					c = inf
				}
				cur := c - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowAssign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowAssign[p[j]-1] = j - 1
		}
	}
	return rowAssign
}

// Assignment pairs measurement indices with track indices.
type Assignment struct {
	Track       int
	Measurement int
	Cost        float64
}

// unassigned marks a padded (dummy) pairing.
const unassignedCost = 1e9

// Associate solves the gated assignment between tracks and measurements:
// costs[i][j] is the association cost of track i with measurement j, with
// math.Inf(1) meaning "outside the gate". It returns the accepted
// assignments plus the indices of unassigned tracks and measurements.
// The matrix is padded to square with dummy rows/columns so that every
// real pairing beats "leave both unassigned" only when its cost is below
// unassignedCost.
func Associate(costs [][]float64) (assigned []Assignment, freeTracks, freeMeas []int) {
	nT := len(costs)
	nM := 0
	if nT > 0 {
		nM = len(costs[0])
	}
	if nT == 0 && nM == 0 {
		return nil, nil, nil
	}
	n := nT
	if nM > n {
		n = nM
	}
	pad := make([][]float64, n)
	for i := 0; i < n; i++ {
		pad[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case i < nT && j < nM:
				c := costs[i][j]
				if math.IsInf(c, 1) {
					c = unassignedCost * 2 // worse than any dummy: never chosen over a dummy pair
				}
				pad[i][j] = c
			default:
				pad[i][j] = unassignedCost
			}
		}
	}
	rowAssign := Hungarian(pad)
	for i := 0; i < nT; i++ {
		j := rowAssign[i]
		if j < nM && pad[i][j] < unassignedCost {
			assigned = append(assigned, Assignment{Track: i, Measurement: j, Cost: pad[i][j]})
		} else {
			freeTracks = append(freeTracks, i)
		}
	}
	taken := make([]bool, nM)
	for _, a := range assigned {
		taken[a.Measurement] = true
	}
	for j := 0; j < nM; j++ {
		if !taken[j] {
			freeMeas = append(freeMeas, j)
		}
	}
	return assigned, freeTracks, freeMeas
}
