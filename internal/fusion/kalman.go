// Package fusion implements the "low-level" information-fusion chain of
// the paper's §2.4: building vessel tracks from position measurements,
// associating new contacts to tracks, recognising when two sources
// describe the same object, and fusing track estimates. The pieces are a
// constant-velocity Kalman filter on a local tangent plane, Mahalanobis
// gating, global-nearest-neighbour association via the Hungarian
// algorithm, a track lifecycle manager, and covariance intersection for
// track-to-track fusion.
package fusion

import (
	"math"
	"time"

	"repro/internal/geo"
)

// Vec4 is a column vector [x, y, vx, vy]: position in metres on the local
// plane and velocity in m/s.
type Vec4 [4]float64

// Mat4 is a 4×4 matrix in row-major order.
type Mat4 [16]float64

// Identity4 returns the identity matrix.
func Identity4() Mat4 {
	var m Mat4
	m[0], m[5], m[10], m[15] = 1, 1, 1, 1
	return m
}

// mul4 multiplies two 4×4 matrices.
func mul4(a, b Mat4) Mat4 {
	var c Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += a[i*4+k] * b[k*4+j]
			}
			c[i*4+j] = s
		}
	}
	return c
}

// transpose4 transposes a 4×4 matrix.
func transpose4(a Mat4) Mat4 {
	var t Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			t[j*4+i] = a[i*4+j]
		}
	}
	return t
}

// add4 adds two 4×4 matrices.
func add4(a, b Mat4) Mat4 {
	var c Mat4
	for i := range c {
		c[i] = a[i] + b[i]
	}
	return c
}

// mulVec4 multiplies a 4×4 matrix by a vector.
func mulVec4(a Mat4, v Vec4) Vec4 {
	var r Vec4
	for i := 0; i < 4; i++ {
		r[i] = a[i*4]*v[0] + a[i*4+1]*v[1] + a[i*4+2]*v[2] + a[i*4+3]*v[3]
	}
	return r
}

// Mat2 is a 2×2 matrix (measurement space).
type Mat2 [4]float64

func (m Mat2) det() float64 { return m[0]*m[3] - m[1]*m[2] }

func (m Mat2) inv() (Mat2, bool) {
	d := m.det()
	if math.Abs(d) < 1e-12 {
		return Mat2{}, false
	}
	return Mat2{m[3] / d, -m[1] / d, -m[2] / d, m[0] / d}, true
}

// KalmanCV is a constant-velocity Kalman filter over a local tangent
// plane. ProcessNoise is the white-acceleration spectral density q
// (m²/s³); larger values track manoeuvres faster at the price of noisier
// estimates.
type KalmanCV struct {
	Plane        geo.LocalPlane
	ProcessNoise float64

	X Vec4 // state estimate
	P Mat4 // state covariance
	T time.Time

	initialised bool
}

// NewKalmanCV returns a filter anchored at origin with the given process
// noise density.
func NewKalmanCV(origin geo.Point, processNoise float64) *KalmanCV {
	return &KalmanCV{Plane: geo.NewLocalPlane(origin), ProcessNoise: processNoise}
}

// Initialised reports whether the filter has consumed a measurement.
func (k *KalmanCV) Initialised() bool { return k.initialised }

// Init seeds the filter from a first measurement with the given position
// standard deviation in metres.
func (k *KalmanCV) Init(at time.Time, p geo.Point, sigmaM float64) {
	e, n := k.Plane.Forward(p)
	k.X = Vec4{e, n, 0, 0}
	k.P = Mat4{}
	k.P[0] = sigmaM * sigmaM
	k.P[5] = sigmaM * sigmaM
	k.P[10] = 100 // generous initial velocity variance: 10 m/s sigma
	k.P[15] = 100
	k.T = at
	k.initialised = true
}

// Predict advances the state to time at without a measurement.
//
// The covariance propagation P = F P Fᵀ + Q is specialised for the CV
// transition (F = I with F[0,2] = F[1,3] = dt): F·P adds dt-scaled rows
// 2/3 into rows 0/1, then ·Fᵀ adds dt-scaled columns 2/3 into columns
// 0/1. This is the ingest hot path (one Predict per archived record in
// the track stage), and the specialised sums round identically to the
// dense 4×4 multiplies they replace — the zero and one entries of F
// contribute exact no-ops — so filter state is bit-for-bit unchanged.
func (k *KalmanCV) Predict(at time.Time) {
	dt := at.Sub(k.T).Seconds()
	if dt <= 0 {
		return
	}
	k.X[0] += dt * k.X[2]
	k.X[1] += dt * k.X[3]
	p := &k.P
	for j := 0; j < 4; j++ {
		p[j] += dt * p[8+j]    // row 0 += dt·row 2
		p[4+j] += dt * p[12+j] // row 1 += dt·row 3
	}
	for i := 0; i < 16; i += 4 {
		p[i] += dt * p[i+2]   // col 0 += dt·col 2
		p[i+1] += dt * p[i+3] // col 1 += dt·col 3
	}
	q := k.ProcessNoise
	dt2 := dt * dt
	dt3 := dt2 * dt
	dt4 := dt3 * dt
	p[0] += q * dt4 / 4
	p[5] += q * dt4 / 4
	p[2] += q * dt3 / 2
	p[7] += q * dt3 / 2
	p[8] += q * dt3 / 2
	p[13] += q * dt3 / 2
	p[10] += q * dt2
	p[15] += q * dt2
	k.T = at
}

// processNoiseQ builds the discrete white-acceleration process noise.
func processNoiseQ(q, dt float64) Mat4 {
	dt2 := dt * dt
	dt3 := dt2 * dt
	dt4 := dt3 * dt
	var Q Mat4
	Q[0] = q * dt4 / 4
	Q[5] = q * dt4 / 4
	Q[2] = q * dt3 / 2
	Q[7] = q * dt3 / 2
	Q[8] = q * dt3 / 2
	Q[13] = q * dt3 / 2
	Q[10] = q * dt2
	Q[15] = q * dt2
	return Q
}

// innovation returns the measurement residual and its covariance for a
// position measurement with noise sigmaM, WITHOUT updating the state.
func (k *KalmanCV) innovation(p geo.Point, sigmaM float64) (dy [2]float64, S Mat2) {
	e, n := k.Plane.Forward(p)
	dy[0] = e - k.X[0]
	dy[1] = n - k.X[1]
	S = Mat2{
		k.P[0] + sigmaM*sigmaM, k.P[1],
		k.P[4], k.P[5] + sigmaM*sigmaM,
	}
	return dy, S
}

// MahalanobisSq returns the squared Mahalanobis distance of the position
// measurement from the predicted state (χ²-distributed with 2 dof under
// the correct-association hypothesis).
func (k *KalmanCV) MahalanobisSq(p geo.Point, sigmaM float64) float64 {
	dy, S := k.innovation(p, sigmaM)
	Si, ok := S.inv()
	if !ok {
		return math.Inf(1)
	}
	return dy[0]*(Si[0]*dy[0]+Si[1]*dy[1]) + dy[1]*(Si[2]*dy[0]+Si[3]*dy[1])
}

// Update fuses a position measurement taken at the filter's current time
// (call Predict first to advance).
func (k *KalmanCV) Update(p geo.Point, sigmaM float64) {
	if !k.initialised {
		k.Init(k.T, p, sigmaM)
		return
	}
	dy, S := k.innovation(p, sigmaM)
	Si, ok := S.inv()
	if !ok {
		return
	}
	// K = P Hᵀ S⁻¹ with H = [I₂ 0]; P Hᵀ is the first two columns of P.
	var K [4][2]float64
	for i := 0; i < 4; i++ {
		ph0 := k.P[i*4]   // column 0
		ph1 := k.P[i*4+1] // column 1
		K[i][0] = ph0*Si[0] + ph1*Si[2]
		K[i][1] = ph0*Si[1] + ph1*Si[3]
	}
	for i := 0; i < 4; i++ {
		k.X[i] += K[i][0]*dy[0] + K[i][1]*dy[1]
	}
	// P = (I − K H) P : subtract K·(first two rows of P).
	var KP Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			KP[i*4+j] = K[i][0]*k.P[j] + K[i][1]*k.P[4+j]
		}
	}
	for i := range k.P {
		k.P[i] -= KP[i]
	}
}

// Position returns the current geographic position estimate.
func (k *KalmanCV) Position() geo.Point {
	return k.Plane.Inverse(k.X[0], k.X[1])
}

// Velocity returns the current velocity estimate.
func (k *KalmanCV) Velocity() geo.Velocity {
	speed := math.Hypot(k.X[2], k.X[3])
	course := geo.NormalizeBearing(geo.Degrees(math.Atan2(k.X[2], k.X[3])))
	return geo.Velocity{SpeedMS: speed, CourseDg: course}
}

// PositionUncertaintyM returns the 1-sigma circular position uncertainty
// (square root of the mean position variance).
func (k *KalmanCV) PositionUncertaintyM() float64 {
	return math.Sqrt((k.P[0] + k.P[5]) / 2)
}

// PredictedPosition returns the geographic position the filter would
// predict at the given time without mutating the filter state.
func (k *KalmanCV) PredictedPosition(at time.Time) geo.Point {
	dt := at.Sub(k.T).Seconds()
	return k.Plane.Inverse(k.X[0]+k.X[2]*dt, k.X[1]+k.X[3]*dt)
}

// CovarianceIntersection fuses two (position, covariance) estimates of the
// same object without knowing their cross-correlation — the standard
// conservative rule for track-to-track fusion across systems. omega is
// chosen to minimise the fused covariance determinant over a small grid.
func CovarianceIntersection(x1 [2]float64, P1 Mat2, x2 [2]float64, P2 Mat2) ([2]float64, Mat2) {
	best := math.Inf(1)
	var bestX [2]float64
	var bestP Mat2
	for w := 0.05; w <= 0.951; w += 0.05 {
		P1i, ok1 := P1.inv()
		P2i, ok2 := P2.inv()
		if !ok1 || !ok2 {
			continue
		}
		var Ci Mat2
		for i := range Ci {
			Ci[i] = w*P1i[i] + (1-w)*P2i[i]
		}
		C, ok := Ci.inv()
		if !ok {
			continue
		}
		// y = C (w P1⁻¹ x1 + (1-w) P2⁻¹ x2)
		a0 := w*(P1i[0]*x1[0]+P1i[1]*x1[1]) + (1-w)*(P2i[0]*x2[0]+P2i[1]*x2[1])
		a1 := w*(P1i[2]*x1[0]+P1i[3]*x1[1]) + (1-w)*(P2i[2]*x2[0]+P2i[3]*x2[1])
		y := [2]float64{C[0]*a0 + C[1]*a1, C[2]*a0 + C[3]*a1}
		if d := C.det(); d < best {
			best = d
			bestX = y
			bestP = C
		}
	}
	return bestX, bestP
}
