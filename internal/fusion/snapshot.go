package fusion

import (
	"fmt"
	"time"

	"repro/internal/geo"
)

// FilterSnapshot is the persistable state of a KalmanCV: everything the
// filter needs to resume exactly where it stopped. JSON round-trips
// float64 exactly (shortest-representation encoding), so a restored
// filter is bit-for-bit the one snapshotted.
type FilterSnapshot struct {
	Origin       geo.Point `json:"origin"`
	ProcessNoise float64   `json:"process_noise"`
	X            Vec4      `json:"x"`
	P            Mat4      `json:"p"`
	T            time.Time `json:"t"`
	Initialised  bool      `json:"initialised"`
}

// Snapshot captures the filter's state.
func (k *KalmanCV) Snapshot() FilterSnapshot {
	return FilterSnapshot{
		Origin: k.Plane.Origin, ProcessNoise: k.ProcessNoise,
		X: k.X, P: k.P, T: k.T, Initialised: k.initialised,
	}
}

// RestoreFilter rebuilds a filter from its snapshot.
func RestoreFilter(s FilterSnapshot) *KalmanCV {
	k := NewKalmanCV(s.Origin, s.ProcessNoise)
	k.X, k.P, k.T = s.X, s.P, s.T
	k.initialised = s.Initialised
	return k
}

// TrackSnapshot is the persistable state of one track hypothesis.
type TrackSnapshot struct {
	ID        int            `json:"id"`
	Identity  uint32         `json:"identity,omitempty"`
	Hits      int            `json:"hits"`
	Misses    int            `json:"misses"`
	Confirmed bool           `json:"confirmed"`
	LastSeen  time.Time      `json:"last_seen"`
	Sources   map[string]int `json:"sources,omitempty"`
	Filter    FilterSnapshot `json:"filter"`
}

// TrackerSnapshot is the persistable state of a whole Tracker (its
// lifecycle config is NOT part of the snapshot — the restoring side
// constructs the tracker with whatever config it runs, and the snapshot
// resumes the picture under it).
type TrackerSnapshot struct {
	NextID    int             `json:"next_id"`
	Origin    geo.Point       `json:"origin"`
	HasOrigin bool            `json:"has_origin"`
	Tracks    []TrackSnapshot `json:"tracks,omitempty"`
}

// Snapshot captures the tracker's full track picture. The caller must
// hold whatever lock serialises Process calls.
func (t *Tracker) Snapshot() TrackerSnapshot {
	s := TrackerSnapshot{NextID: t.nextID, Origin: t.origin, HasOrigin: t.hasOrg}
	for _, tr := range t.Tracks {
		ts := TrackSnapshot{
			ID: tr.ID, Identity: tr.Identity,
			Hits: tr.Hits, Misses: tr.Misses, Confirmed: tr.Confirmed,
			LastSeen: tr.LastSeen, Filter: tr.Filter.Snapshot(),
		}
		if len(tr.Sources) > 0 {
			ts.Sources = make(map[string]int, len(tr.Sources))
			for k, v := range tr.Sources {
				ts.Sources[k] = v
			}
		}
		s.Tracks = append(s.Tracks, ts)
	}
	return s
}

// Restore replaces the tracker's track picture with a snapshot's. The
// tracker must be freshly constructed (no tracks yet); restoring over a
// live picture would splice two inconsistent ID sequences.
func (t *Tracker) Restore(s TrackerSnapshot) error {
	if len(t.Tracks) > 0 {
		return fmt.Errorf("fusion: restore into a tracker holding %d tracks", len(t.Tracks))
	}
	t.origin, t.hasOrg = s.Origin, s.HasOrigin
	t.nextID = s.NextID
	if t.nextID < 1 {
		t.nextID = 1
	}
	for _, ts := range s.Tracks {
		tr := &Track{
			ID: ts.ID, Identity: ts.Identity,
			Hits: ts.Hits, Misses: ts.Misses, Confirmed: ts.Confirmed,
			LastSeen: ts.LastSeen, Filter: RestoreFilter(ts.Filter),
			Sources: map[string]int{},
		}
		for k, v := range ts.Sources {
			tr.Sources[k] = v
		}
		if tr.ID >= t.nextID {
			t.nextID = tr.ID + 1
		}
		t.Tracks = append(t.Tracks, tr)
	}
	return nil
}
