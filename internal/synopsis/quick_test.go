package synopsis

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// trackFromWalk builds a trajectory from a bounded random walk encoded in
// the fuzz input: each byte contributes a small course change.
func trackFromWalk(turns []byte) *model.Trajectory {
	tr := &model.Trajectory{MMSI: 1}
	pos := geo.Point{Lat: 40, Lon: 5}
	course := 45.0
	at := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	for _, b := range turns {
		course = geo.NormalizeBearing(course + float64(int(b%21)-10))
		tr.Points = append(tr.Points, model.VesselState{
			MMSI: 1, At: at, Pos: pos, SpeedKn: 12, CourseDeg: course,
		})
		pos = geo.Project(pos, geo.Velocity{SpeedMS: 12 * geo.Knot, CourseDg: course}, 10)
		at = at.Add(10 * time.Second)
	}
	return tr
}

// TestQuickCompressorInvariants property-checks every compressor on
// arbitrary bounded random walks: output is a subset, endpoints are
// preserved, output is time-ordered, and the ratio is in [0, 1).
func TestQuickCompressorInvariants(t *testing.T) {
	compressors := []Compressor{
		DouglasPeucker{ToleranceM: 80},
		DeadReckoning{ToleranceM: 80, MaxGap: 5 * time.Minute},
		SquishE{Capacity: 20},
		Uniform{Every: 7},
	}
	f := func(turns []byte) bool {
		if len(turns) > 400 {
			turns = turns[:400]
		}
		tr := trackFromWalk(turns)
		// Index original timestamps for the subset check.
		orig := map[int64]geo.Point{}
		for _, p := range tr.Points {
			orig[p.At.UnixNano()] = p.Pos
		}
		for _, c := range compressors {
			comp := c.Compress(tr)
			if tr.Len() == 0 {
				if comp.Len() != 0 {
					return false
				}
				continue
			}
			if comp.Len() == 0 || comp.Len() > tr.Len() {
				return false
			}
			// Endpoints preserved.
			if comp.Points[0].At != tr.Points[0].At ||
				comp.Points[comp.Len()-1].At != tr.Points[tr.Len()-1].At {
				return false
			}
			for i, p := range comp.Points {
				// Subset: every kept point existed in the original.
				if pos, ok := orig[p.At.UnixNano()]; !ok || pos != p.Pos {
					return false
				}
				// Time-ordered.
				if i > 0 && p.At.Before(comp.Points[i-1].At) {
					return false
				}
			}
			rep := Evaluate(tr, comp, c.Name())
			if rep.Ratio < 0 || rep.Ratio >= 1.0000001 {
				return false
			}
			if math.IsNaN(rep.RMSESEDM) || math.IsInf(rep.RMSESEDM, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDouglasPeuckerBound property-checks the DP error guarantee:
// every original point lies within tolerance (plus spherical slack) of the
// reconstruction, for arbitrary walks and tolerances.
func TestQuickDouglasPeuckerBound(t *testing.T) {
	f := func(turns []byte, tolRaw uint16) bool {
		if len(turns) > 300 {
			turns = turns[:300]
		}
		tol := 20 + float64(tolRaw%500)
		tr := trackFromWalk(turns)
		if tr.Len() < 3 {
			return true
		}
		comp := DouglasPeucker{ToleranceM: tol}.Compress(tr)
		rep := Evaluate(tr, comp, "dp")
		return rep.MaxSEDM <= tol*1.05+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
