package synopsis

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

// straightTrack is a constant-velocity trajectory: every compressor should
// collapse it to (nearly) its endpoints.
func straightTrack(n int) *model.Trajectory {
	tr := &model.Trajectory{MMSI: 1}
	pos := geo.Point{Lat: 43, Lon: 5}
	v := geo.Velocity{SpeedMS: 12 * geo.Knot, CourseDg: 77}
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, model.VesselState{
			MMSI: 1, At: t0().Add(time.Duration(i*10) * time.Second),
			Pos: pos, SpeedKn: 12, CourseDeg: 77,
		})
		pos = geo.Project(pos, v, 10)
	}
	return tr
}

// windingTrack mimics a realistic voyage: long steady legs joined by
// turns, with GPS-like noise.
func windingTrack(rng *rand.Rand, legs, pointsPerLeg int) *model.Trajectory {
	tr := &model.Trajectory{MMSI: 2}
	pos := geo.Point{Lat: 41, Lon: 6}
	course := 45.0
	at := t0()
	speed := 14.0
	for l := 0; l < legs; l++ {
		for i := 0; i < pointsPerLeg; i++ {
			noisy := geo.Destination(pos, rng.Float64()*360, math.Abs(rng.NormFloat64())*8)
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: 2, At: at, Pos: noisy, SpeedKn: speed, CourseDeg: course,
			})
			pos = geo.Project(pos, geo.Velocity{SpeedMS: speed * geo.Knot, CourseDg: course}, 10)
			at = at.Add(10 * time.Second)
		}
		course = geo.NormalizeBearing(course + 40 + rng.Float64()*60)
	}
	return tr
}

func endpointsPreserved(t *testing.T, orig, comp *model.Trajectory) {
	t.Helper()
	if comp.Len() < 2 && orig.Len() >= 2 {
		t.Fatalf("compressed to %d points", comp.Len())
	}
	if comp.Points[0].At != orig.Points[0].At ||
		comp.Points[comp.Len()-1].At != orig.Points[orig.Len()-1].At {
		t.Fatal("endpoints must be preserved")
	}
}

func TestDouglasPeuckerStraightLine(t *testing.T) {
	tr := straightTrack(500)
	comp := DouglasPeucker{ToleranceM: 50}.Compress(tr)
	endpointsPreserved(t, tr, comp)
	if comp.Len() > 5 {
		t.Errorf("straight line should compress to almost nothing, kept %d", comp.Len())
	}
	rep := Evaluate(tr, comp, "dp")
	if rep.MaxSEDM > 50 {
		t.Errorf("DP must respect its tolerance: max SED %.1f", rep.MaxSEDM)
	}
	if rep.Ratio < 0.98 {
		t.Errorf("ratio %.3f", rep.Ratio)
	}
}

func TestDouglasPeuckerToleranceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := windingTrack(rng, 6, 80)
	for _, tol := range []float64{30, 100, 300} {
		comp := DouglasPeucker{ToleranceM: tol}.Compress(tr)
		rep := Evaluate(tr, comp, "dp")
		// The DP guarantee: every original point within tol of the
		// reconstruction (small slack for spherical interpolation).
		if rep.MaxSEDM > tol*1.05+1 {
			t.Errorf("tol %.0f: max SED %.1f exceeds bound", tol, rep.MaxSEDM)
		}
	}
}

func TestDeadReckoningBoundsError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := windingTrack(rng, 6, 80)
	comp := DeadReckoning{ToleranceM: 100}.Compress(tr)
	endpointsPreserved(t, tr, comp)
	rep := Evaluate(tr, comp, "dr")
	// Dead reckoning bounds the *prediction* error at decision time, not
	// the SED against linear reconstruction, but the two stay same-order.
	if rep.RMSESEDM > 300 {
		t.Errorf("dead reckoning RMSE too big: %.1f", rep.RMSESEDM)
	}
	if rep.Ratio < 0.5 {
		t.Errorf("dead reckoning should compress a mostly-straight track: ratio %.2f", rep.Ratio)
	}
}

func TestDeadReckoningMaxGapHeartbeat(t *testing.T) {
	tr := straightTrack(100) // 990 s long, 10 s steps
	comp := DeadReckoning{ToleranceM: 1e9, MaxGap: 60 * time.Second}.Compress(tr)
	// With an unreachable tolerance, only the heartbeat emits: every 60 s.
	for i := 1; i < comp.Len(); i++ {
		if gap := comp.Points[i].At.Sub(comp.Points[i-1].At); gap > 61*time.Second {
			t.Errorf("gap %v exceeds MaxGap", gap)
		}
	}
	if comp.Len() < 15 {
		t.Errorf("heartbeat should keep ~17 points, kept %d", comp.Len())
	}
}

func TestSquishERespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := windingTrack(rng, 8, 100)
	for _, capa := range []int{10, 40, 80} {
		comp := SquishE{Capacity: capa}.Compress(tr)
		if comp.Len() > capa {
			t.Errorf("capacity %d exceeded: kept %d", capa, comp.Len())
		}
		endpointsPreserved(t, tr, comp)
	}
}

func TestSquishEBeatsUniformAtSameBudget(t *testing.T) {
	// Shape-dominated, noise-free track with sharp turns: a fixed point
	// budget spent adaptively (SQUISH) must beat a uniform spend, because
	// uniform sampling cuts the corners.
	tr := &model.Trajectory{MMSI: 3}
	pos := geo.Point{Lat: 41, Lon: 6}
	at := t0()
	course := 0.0
	for leg := 0; leg < 10; leg++ {
		for i := 0; i < 80; i++ {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: 3, At: at, Pos: pos, SpeedKn: 14, CourseDeg: course,
			})
			pos = geo.Project(pos, geo.Velocity{SpeedMS: 14 * geo.Knot, CourseDg: course}, 10)
			at = at.Add(10 * time.Second)
		}
		course = geo.NormalizeBearing(course + 85)
	}
	capa := 25
	sq := SquishE{Capacity: capa}.Compress(tr)
	un := Uniform{Every: tr.Len() / capa}.Compress(tr)
	repSq := Evaluate(tr, sq, "squish")
	repUn := Evaluate(tr, un, "uniform")
	if repSq.RMSESEDM >= repUn.RMSESEDM {
		t.Errorf("SQUISH (%.1f m RMSE) should beat uniform (%.1f m RMSE) at equal budget",
			repSq.RMSESEDM, repUn.RMSESEDM)
	}
}

func TestUniformKeepsEndpoints(t *testing.T) {
	tr := straightTrack(101)
	comp := Uniform{Every: 10}.Compress(tr)
	endpointsPreserved(t, tr, comp)
	if comp.Len() != 11 {
		t.Errorf("kept %d, want 11", comp.Len())
	}
}

func TestEmptyAndTinyTrajectories(t *testing.T) {
	empty := &model.Trajectory{}
	two := straightTrack(2)
	compressors := []Compressor{
		DouglasPeucker{ToleranceM: 10},
		DeadReckoning{ToleranceM: 10},
		SquishE{Capacity: 10},
		Uniform{Every: 5},
	}
	for _, c := range compressors {
		if got := c.Compress(empty); got.Len() != 0 {
			t.Errorf("%s: empty input should stay empty", c.Name())
		}
		if got := c.Compress(two); got.Len() != 2 {
			t.Errorf("%s: 2-point input should stay 2 points, got %d", c.Name(), got.Len())
		}
	}
}

func TestNinetyFivePercentClaim(t *testing.T) {
	// The paper's §2.1 claim: synopses reach ~95% compression on AIS
	// traces without destroying accuracy. A realistic voyage (long steady
	// legs, occasional turns) must compress ≥95% with bounded error.
	rng := rand.New(rand.NewSource(5))
	tr := windingTrack(rng, 5, 400) // 2000 points, mostly steady
	comp := DouglasPeucker{ToleranceM: 80}.Compress(tr)
	rep := Evaluate(tr, comp, "dp")
	if rep.Ratio < 0.95 {
		t.Errorf("expected ≥95%% compression on steady voyage, got %.1f%%", rep.Ratio*100)
	}
	if rep.MaxSEDM > 85 {
		t.Errorf("error bound violated: %.1f m", rep.MaxSEDM)
	}
	t.Logf("DP: ratio=%.3f rmse=%.1fm max=%.1fm kept=%d/%d",
		rep.Ratio, rep.RMSESEDM, rep.MaxSEDM, rep.Kept, rep.Original)
}

func TestStreamingCompressorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := windingTrack(rng, 4, 60)
	var sc StreamingCompressor
	sc.ToleranceM = 100
	var kept int
	for _, p := range tr.Points {
		if _, ok := sc.Push(p); ok {
			kept++
		}
	}
	batch := DeadReckoning{ToleranceM: 100}.Compress(tr)
	// The streaming version has no final-point forcing, so it may keep one
	// fewer point than the batch version.
	if diff := batch.Len() - kept; diff < 0 || diff > 1 {
		t.Errorf("streaming kept %d, batch kept %d", kept, batch.Len())
	}
}

func TestEvaluateOnIdentity(t *testing.T) {
	tr := straightTrack(50)
	rep := Evaluate(tr, tr, "identity")
	if rep.Ratio != 0 || rep.MaxSEDM > 0.001 {
		t.Errorf("identity compression should have zero ratio and error: %+v", rep)
	}
	if got := Evaluate(&model.Trajectory{}, &model.Trajectory{}, "x"); got.Original != 0 {
		t.Error("empty evaluate should be zero")
	}
}

func BenchmarkDouglasPeucker2000(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tr := windingTrack(rng, 5, 400)
	c := DouglasPeucker{ToleranceM: 80}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Compress(tr)
	}
}

func BenchmarkDeadReckoning2000(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tr := windingTrack(rng, 5, 400)
	c := DeadReckoning{ToleranceM: 80}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Compress(tr)
	}
}

func BenchmarkSquishE2000(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tr := windingTrack(rng, 5, 400)
	c := SquishE{Capacity: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Compress(tr)
	}
}
