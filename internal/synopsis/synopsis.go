// Package synopsis implements trajectory compression ("synopses" in the
// paper's §2.1 vocabulary): reducing an AIS trace to a small subset of
// critical points while bounding the spatio-temporal reconstruction error.
// The paper reports state-of-the-art techniques reach a 95% compression
// ratio over AIS vessel traces; experiment E2 reproduces that trade-off
// curve with four algorithms:
//
//   - DouglasPeucker: offline, time-synchronised (TD-TR) — the quality
//     reference.
//   - DeadReckoning: online, one point of state — keeps a point only when
//     the dead-reckoned prediction misses by more than the threshold.
//   - SquishE: online with bounded memory — a priority queue of removal
//     errors, as in SQUISH-E(λ).
//   - Uniform: every k-th point — the naive baseline.
//
// All operate on model.Trajectory and are evaluated with the synchronised
// Euclidean distance (SED) against the original trace.
package synopsis

import (
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// Compressor reduces a trajectory to a subset of its points.
type Compressor interface {
	// Compress returns a new trajectory containing a subset of tr's points
	// (including, when tr is non-empty, its first and last point).
	Compress(tr *model.Trajectory) *model.Trajectory
	// Name identifies the algorithm in reports.
	Name() string
}

// sedAt returns the synchronised Euclidean distance of original point p
// against the segment (a, b): the distance between p.Pos and the position
// interpolated on (a,b) at p's timestamp.
func sedAt(p, a, b model.VesselState) float64 {
	span := b.At.Sub(a.At).Seconds()
	if span <= 0 {
		return geo.Distance(p.Pos, a.Pos)
	}
	f := p.At.Sub(a.At).Seconds() / span
	expected := geo.Interpolate(a.Pos, b.Pos, f)
	return geo.Distance(p.Pos, expected)
}

// DouglasPeucker is the time-synchronised Douglas–Peucker (TD-TR)
// compressor: split recursively at the point of maximum SED until every
// point lies within ToleranceM of the simplified trajectory.
type DouglasPeucker struct {
	ToleranceM float64
}

// Name implements Compressor.
func (DouglasPeucker) Name() string { return "douglas-peucker" }

// Compress implements Compressor.
func (c DouglasPeucker) Compress(tr *model.Trajectory) *model.Trajectory {
	n := len(tr.Points)
	out := &model.Trajectory{MMSI: tr.MMSI}
	if n == 0 {
		return out
	}
	if n <= 2 {
		out.Points = append(out.Points, tr.Points...)
		return out
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	type span struct{ lo, hi int }
	stack := []span{{0, n - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		a, b := tr.Points[s.lo], tr.Points[s.hi]
		worst, worstIdx := -1.0, -1
		for i := s.lo + 1; i < s.hi; i++ {
			if d := sedAt(tr.Points[i], a, b); d > worst {
				worst, worstIdx = d, i
			}
		}
		if worst > c.ToleranceM {
			keep[worstIdx] = true
			stack = append(stack, span{s.lo, worstIdx}, span{worstIdx, s.hi})
		}
	}
	for i, k := range keep {
		if k {
			out.Points = append(out.Points, tr.Points[i])
		}
	}
	return out
}

// DeadReckoning is the online threshold compressor: it emits a point when
// the position dead-reckoned from the last emitted point (using that
// point's speed and course) deviates from the actual position by more than
// ToleranceM, and always after MaxGap without an emission. This is the
// algorithm a shipboard/edge "in-situ" filter would run (§2.1): O(1) state
// per vessel, single pass.
type DeadReckoning struct {
	ToleranceM float64
	MaxGap     time.Duration // 0 disables the forced-emission heartbeat
}

// Name implements Compressor.
func (DeadReckoning) Name() string { return "dead-reckoning" }

// Compress implements Compressor.
func (c DeadReckoning) Compress(tr *model.Trajectory) *model.Trajectory {
	out := &model.Trajectory{MMSI: tr.MMSI}
	n := len(tr.Points)
	if n == 0 {
		return out
	}
	last := tr.Points[0]
	out.Points = append(out.Points, last)
	if n == 1 {
		return out
	}
	for i := 1; i < n-1; i++ {
		p := tr.Points[i]
		dt := p.At.Sub(last.At).Seconds()
		predicted := geo.Project(last.Pos, last.Velocity(), dt)
		if geo.Distance(predicted, p.Pos) > c.ToleranceM ||
			(c.MaxGap > 0 && p.At.Sub(last.At) >= c.MaxGap) {
			out.Points = append(out.Points, p)
			last = p
		}
	}
	out.Points = append(out.Points, tr.Points[n-1])
	return out
}

// SquishE is a bounded-memory online compressor in the SQUISH-E family: it
// holds at most Capacity points in a buffer; when full, it evicts the
// buffered point whose removal introduces the least SED error, accumulating
// the evicted error into its neighbours so repeated evictions stay honest.
type SquishE struct {
	Capacity int
}

// Name implements Compressor.
func (SquishE) Name() string { return "squish-e" }

type squishEntry struct {
	state    model.VesselState
	priority float64 // accumulated SED error if this point is removed
}

// Compress implements Compressor.
func (c SquishE) Compress(tr *model.Trajectory) *model.Trajectory {
	out := &model.Trajectory{MMSI: tr.MMSI}
	n := len(tr.Points)
	if n == 0 {
		return out
	}
	capa := c.Capacity
	if capa < 3 {
		capa = 3
	}
	buf := make([]squishEntry, 0, capa+1)
	recomputePriority := func(i int) {
		if i <= 0 || i >= len(buf)-1 {
			buf[i].priority = math.Inf(1) // endpoints are never evicted
			return
		}
		base := sedAt(buf[i].state, buf[i-1].state, buf[i+1].state)
		// Keep the accumulated component: priority only grows over time.
		if math.IsInf(buf[i].priority, 1) || buf[i].priority < base {
			buf[i].priority = base
		}
	}
	evict := func() {
		// Find the interior point with minimal priority.
		minIdx, minP := -1, math.Inf(1)
		for i := 1; i < len(buf)-1; i++ {
			if buf[i].priority < minP {
				minIdx, minP = i, buf[i].priority
			}
		}
		if minIdx < 0 {
			return
		}
		// Transfer the evicted error to the neighbours (SQUISH-E rule).
		if minIdx-1 > 0 {
			buf[minIdx-1].priority += minP
		}
		if minIdx+1 < len(buf)-1 {
			buf[minIdx+1].priority += minP
		}
		buf = append(buf[:minIdx], buf[minIdx+1:]...)
		if minIdx-1 >= 0 && minIdx-1 < len(buf) {
			recomputePriority(minIdx - 1)
		}
		if minIdx < len(buf) {
			recomputePriority(minIdx)
		}
	}
	for _, p := range tr.Points {
		buf = append(buf, squishEntry{state: p, priority: math.Inf(1)})
		if len(buf) >= 3 {
			recomputePriority(len(buf) - 2)
		}
		if len(buf) > capa {
			evict()
		}
	}
	for _, e := range buf {
		out.Points = append(out.Points, e.state)
	}
	return out
}

// Uniform keeps every Every-th point (plus the endpoints): the baseline
// that ignores trajectory shape entirely.
type Uniform struct {
	Every int
}

// Name implements Compressor.
func (Uniform) Name() string { return "uniform" }

// Compress implements Compressor.
func (c Uniform) Compress(tr *model.Trajectory) *model.Trajectory {
	out := &model.Trajectory{MMSI: tr.MMSI}
	n := len(tr.Points)
	if n == 0 {
		return out
	}
	k := c.Every
	if k < 1 {
		k = 1
	}
	for i := 0; i < n; i += k {
		out.Points = append(out.Points, tr.Points[i])
	}
	if out.Points[len(out.Points)-1].At != tr.Points[n-1].At {
		out.Points = append(out.Points, tr.Points[n-1])
	}
	return out
}

// Report quantifies a compression outcome against the original trace.
type Report struct {
	Algorithm string
	Original  int
	Kept      int
	Ratio     float64 // 1 - kept/original, the paper's "compression ratio"
	MeanSEDM  float64
	RMSESEDM  float64
	MaxSEDM   float64
}

// Evaluate reconstructs the compressed trajectory at each original
// timestamp and reports SED statistics plus the compression ratio.
func Evaluate(orig, comp *model.Trajectory, algorithm string) Report {
	r := Report{Algorithm: algorithm, Original: orig.Len(), Kept: comp.Len()}
	if orig.Len() == 0 {
		return r
	}
	r.Ratio = 1 - float64(comp.Len())/float64(orig.Len())
	var sum, sumSq, maxd float64
	for _, p := range orig.Points {
		rec, ok := comp.At(p.At)
		if !ok {
			continue
		}
		d := geo.Distance(p.Pos, rec.Pos)
		sum += d
		sumSq += d * d
		if d > maxd {
			maxd = d
		}
	}
	n := float64(orig.Len())
	r.MeanSEDM = sum / n
	r.RMSESEDM = math.Sqrt(sumSq / n)
	r.MaxSEDM = maxd
	return r
}

// StreamingCompressor wraps DeadReckoning as a push-style online filter
// suitable for the stream engine: feed points one at a time, receive the
// kept points. One instance per vessel.
type StreamingCompressor struct {
	ToleranceM float64
	MaxGap     time.Duration

	last    model.VesselState
	started bool
}

// Push offers the next point; it returns (kept point, true) when the point
// becomes part of the synopsis.
func (s *StreamingCompressor) Push(p model.VesselState) (model.VesselState, bool) {
	if !s.started {
		s.started = true
		s.last = p
		return p, true
	}
	dt := p.At.Sub(s.last.At).Seconds()
	predicted := geo.Project(s.last.Pos, s.last.Velocity(), dt)
	if geo.Distance(predicted, p.Pos) > s.ToleranceM ||
		(s.MaxGap > 0 && p.At.Sub(s.last.At) >= s.MaxGap) {
		s.last = p
		return p, true
	}
	return model.VesselState{}, false
}
