package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

func smallConfig() Config {
	return Config{
		Seed:       1,
		NumVessels: 40,
		Duration:   45 * time.Minute,
		TickSec:    2,
	}
}

func TestSimulateDeterministic(t *testing.T) {
	r1, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Positions) != len(r2.Positions) {
		t.Fatalf("nondeterministic position count: %d vs %d", len(r1.Positions), len(r2.Positions))
	}
	for i := range r1.Positions {
		a, b := r1.Positions[i], r2.Positions[i]
		if a.Report.MMSI != b.Report.MMSI || !a.At.Equal(b.At) ||
			a.Report.Position != b.Report.Position {
			t.Fatalf("position %d differs between runs", i)
		}
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatal("nondeterministic event schedule")
	}
}

func TestSimulateProducesTraffic(t *testing.T) {
	run, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Vessels) != 40 {
		t.Fatalf("fleet size %d", len(run.Vessels))
	}
	if run.Emitted == 0 || len(run.Positions) == 0 {
		t.Fatal("no traffic produced")
	}
	if len(run.Positions) > run.Emitted {
		t.Fatal("received more than emitted")
	}
	// Every vessel should have truth samples covering the run.
	for _, v := range run.Vessels {
		pts := run.Truth[v.MMSI]
		if len(pts) < 10 {
			t.Fatalf("vessel %d has only %d truth points", v.MMSI, len(pts))
		}
	}
}

func TestTruthKinematicsConsistent(t *testing.T) {
	// Successive truth points must be reachable at the recorded speeds:
	// the simulator must not teleport vessels.
	run, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for mmsi, pts := range run.Truth {
		for i := 1; i < len(pts); i++ {
			dt := pts[i].At.Sub(pts[i-1].At).Seconds()
			d := geo.Distance(pts[i-1].Pos, pts[i].Pos)
			// Max plausible speed 35 kn plus slack.
			if d > 40*geo.Knot*dt+50 {
				t.Fatalf("vessel %d teleported %.0f m in %.0f s", mmsi, d, dt)
			}
		}
	}
}

func TestReportsStayNearTruth(t *testing.T) {
	cfg := smallConfig()
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without spoofing, reported positions must sit within GPS noise of the
	// true track (interpolated between truth samples).
	for _, obs := range run.Positions {
		if obs.Report.MMSI != obs.TrueMMSI {
			t.Fatal("unexpected identity spoofing in clean run")
		}
		pts := run.Truth[obs.TrueMMSI]
		tp, ok := nearestTruth(pts, obs.At)
		if !ok {
			continue
		}
		// Truth samples are 30 s apart; a 20 kn vessel moves ~300 m between
		// samples. Allow generous slack plus noise.
		if d := geo.Distance(tp.Pos, obs.Report.Position); d > 800 {
			t.Fatalf("report %.0f m from truth for %d", d, obs.TrueMMSI)
		}
	}
}

func nearestTruth(pts []TruthPoint, at time.Time) (TruthPoint, bool) {
	best := TruthPoint{}
	bestDt := math.Inf(1)
	for _, p := range pts {
		dt := math.Abs(p.At.Sub(at).Seconds())
		if dt < bestDt {
			bestDt = dt
			best = p
		}
	}
	return best, bestDt < 60
}

func TestAnomalyScheduling(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVessels = 150
	cfg.Duration = 3 * time.Hour
	cfg.DefaultAnomalyRates()
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	for _, e := range run.Events {
		counts[e.Kind]++
		if !e.Start.Before(e.End) {
			t.Fatalf("event %v has empty window", e)
		}
		if e.Start.Before(run.Config.Start) || e.End.After(run.Config.Start.Add(run.Config.Duration)) {
			t.Fatalf("event %v escapes the run window", e)
		}
	}
	if counts[EventDark] == 0 {
		t.Error("no dark events scheduled at 27% rate")
	}
	if counts[EventRendezvous] == 0 {
		t.Error("no rendezvous scheduled")
	}
	t.Logf("event mix: %v", counts)
}

func TestDarkSuppressesTransmissions(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVessels = 80
	cfg.Duration = 2 * time.Hour
	cfg.DarkShipFrac = 0.5
	cfg.DarkTimeFrac = 0.2
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// During a dark window a vessel must emit nothing.
	darkWindows := map[uint32][]TruthEvent{}
	for _, e := range run.Events {
		if e.Kind == EventDark {
			darkWindows[e.MMSI] = append(darkWindows[e.MMSI], e)
		}
	}
	if len(darkWindows) == 0 {
		t.Fatal("expected dark windows")
	}
	for _, obs := range run.Positions {
		for _, w := range darkWindows[obs.TrueMMSI] {
			if !obs.At.Before(w.Start) && obs.At.Before(w.End) {
				t.Fatalf("vessel %d transmitted at %v inside dark window [%v,%v)",
					obs.TrueMMSI, obs.At, w.Start, w.End)
			}
		}
	}
}

func TestSpoofOffsetDisplacesReports(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVessels = 100
	cfg.Duration = 2 * time.Hour
	cfg.SpoofShipFrac = 0.3
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spoofed := map[uint32]TruthEvent{}
	for _, e := range run.Events {
		if e.Kind == EventSpoofOffset {
			spoofed[e.MMSI] = e
		}
	}
	if len(spoofed) == 0 {
		t.Skip("no offset spoof scheduled with this seed")
	}
	found := false
	for _, obs := range run.Positions {
		w, ok := spoofed[obs.TrueMMSI]
		if !ok || obs.At.Before(w.Start) || !obs.At.Before(w.End) {
			continue
		}
		tp, ok := nearestTruth(run.Truth[obs.TrueMMSI], obs.At)
		if !ok {
			continue
		}
		if d := geo.Distance(tp.Pos, obs.Report.Position); d > 10000 {
			found = true
		}
	}
	if !found {
		t.Error("offset spoofing should displace reports by tens of km")
	}
}

func TestRendezvousVesselsActuallyMeet(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVessels = 60
	cfg.Duration = 4 * time.Hour
	cfg.RendezvousFrac = 0.2
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rdv []TruthEvent
	for _, e := range run.Events {
		if e.Kind == EventRendezvous {
			rdv = append(rdv, e)
		}
	}
	if len(rdv) == 0 {
		t.Fatal("no rendezvous scheduled")
	}
	met := 0
	for _, e := range rdv {
		// Late in the window (past any approach remainder) both vessels
		// should be within ~1.5 km of each other.
		mid := e.Start.Add(e.End.Sub(e.Start) * 4 / 5)
		pa, oka := truthAt(run.Truth[e.MMSI], mid)
		pb, okb := truthAt(run.Truth[e.Other], mid)
		if !oka || !okb {
			continue
		}
		if geo.Distance(pa.Pos, pb.Pos) < 2500 {
			met++
		}
	}
	if met == 0 {
		t.Errorf("none of %d rendezvous pairs actually met", len(rdv))
	}
}

func truthAt(pts []TruthPoint, at time.Time) (TruthPoint, bool) {
	return nearestTruth(pts, at)
}

func TestStaticErrorRateCalibrated(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVessels = 120
	cfg.Duration = 3 * time.Hour
	cfg.StaticErrorRate = 0.05
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Statics) < 100 {
		t.Fatalf("too few static messages: %d", len(run.Statics))
	}
	bad := 0
	for _, s := range run.Statics {
		if s.Corrupted {
			bad++
			if s.BadField == "" {
				t.Fatal("corrupted static without field label")
			}
		}
	}
	rate := float64(bad) / float64(len(run.Statics))
	if rate < 0.02 || rate > 0.09 {
		t.Errorf("static error rate %.3f not near configured 0.05", rate)
	}
}

func TestRadarContacts(t *testing.T) {
	cfg := smallConfig()
	cfg.RadarRangeM = 60000
	cfg.NumRadar = 4
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Radar) == 0 {
		t.Fatal("radar enabled but no contacts")
	}
	for _, c := range run.Radar {
		if c.Station < 0 || c.Station >= 4 {
			t.Fatalf("bad station %d", c.Station)
		}
		sp := run.Config.World.Ports[c.Station].Pos
		if geo.Distance(c.Pos, sp) > run.Config.RadarRangeM+2000 {
			t.Fatalf("contact outside radar range")
		}
	}
}

func TestObservationsTimeOrdered(t *testing.T) {
	run, err := Simulate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(run.Positions); i++ {
		if run.Positions[i].At.Before(run.Positions[i-1].At) {
			t.Fatal("positions out of time order")
		}
	}
}

func TestGlobalWorldFeed(t *testing.T) {
	cfg := Config{
		Seed:       3,
		World:      GlobalWorld(3),
		NumVessels: 150,
		Duration:   30 * time.Minute,
		TickSec:    5,
	}
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var terr, sat int
	for _, o := range run.Positions {
		if o.Terrestrial {
			terr++
		}
		if o.Satellite {
			sat++
		}
	}
	if terr == 0 {
		t.Error("no terrestrial receptions in global run")
	}
	if sat == 0 {
		t.Error("no satellite receptions in global run")
	}
	// Traffic must be geographically spread (Figure 1's point).
	g := geo.NewGrid(10)
	cells := map[geo.CellID]bool{}
	for _, o := range run.Positions {
		cells[g.Cell(o.Report.Position)] = true
	}
	if len(cells) < 10 {
		t.Errorf("global traffic concentrated in %d cells", len(cells))
	}
}

func TestReportIntervalByClassAndSpeed(t *testing.T) {
	rngSeed := smallConfig()
	_ = rngSeed
	a := &Vessel{Class: ClassA, SpeedKn: 10, Status: ais.StatusUnderWayEngine}
	b := &Vessel{Class: ClassA, SpeedKn: 20, Status: ais.StatusUnderWayEngine}
	fast := &Vessel{Class: ClassA, SpeedKn: 25, Status: ais.StatusUnderWayEngine}
	moored := &Vessel{Class: ClassA, SpeedKn: 0, Status: ais.StatusMoored}
	classB := &Vessel{Class: ClassB, SpeedKn: 10}
	rng := newTestRand()
	mean := func(v *Vessel) float64 {
		var sum time.Duration
		const n = 200
		for i := 0; i < n; i++ {
			sum += reportInterval(v, rng)
		}
		return sum.Seconds() / n
	}
	if !(mean(fast) < mean(b) && mean(b) < mean(a) && mean(a) < mean(classB) && mean(classB) < mean(moored)) {
		t.Errorf("interval ordering broken: fast=%.1f b=%.1f a=%.1f classB=%.1f moored=%.1f",
			mean(fast), mean(b), mean(a), mean(classB), mean(moored))
	}
}

func TestWorldsAreSane(t *testing.T) {
	for _, w := range []*World{MediterraneanWorld(1), GlobalWorld(1)} {
		if len(w.Ports) < 10 || len(w.Routes) == 0 || len(w.Stations) == 0 {
			t.Fatalf("world %s underpopulated", w.Name)
		}
		for _, r := range w.Routes {
			if r.Path.Length() < 1000 {
				t.Fatalf("degenerate route in %s", w.Name)
			}
			for _, p := range r.Path.Points {
				if !p.Valid() {
					t.Fatalf("invalid route point in %s", w.Name)
				}
			}
		}
		if w.Zones == nil || w.Zones.Len() == 0 {
			t.Fatalf("world %s has no zones", w.Name)
		}
	}
}

func BenchmarkSimulate100Vessels30Min(b *testing.B) {
	cfg := Config{Seed: 1, NumVessels: 100, Duration: 30 * time.Minute, TickSec: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// newTestRand returns a deterministic rand for interval tests.
func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
