package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// Class distinguishes AIS transponder classes, which differ in reporting
// cadence and message types.
type Class int

// Transponder classes.
const (
	ClassA Class = iota // SOLAS vessels: types 1–3 position, type 5 static
	ClassB              // small craft: type 18 position, type 24 static
)

// Vessel is one simulated ship: identity, physical characteristics,
// kinematic state and a behaviour that steers it.
type Vessel struct {
	MMSI     uint32
	IMO      uint32
	Name     string
	CallSign string
	Type     ais.ShipType
	Class    Class
	CruiseKn float64
	LengthM  float64
	BeamM    float64
	Draught  float64

	// Kinematic state, updated every tick.
	Pos       geo.Point
	SpeedKn   float64
	CourseDeg float64
	Status    ais.NavStatus

	behavior  behavior
	overrides []*directive

	// Emission bookkeeping.
	nextPosAt    time.Time
	nextStaticAt time.Time
}

// steerTowards turns the vessel toward target with a bounded turn rate and
// sets the requested speed with a little noise; it advances the position by
// dt seconds and returns the remaining distance to the target.
func (v *Vessel) steerTowards(rng *rand.Rand, target geo.Point, speedKn, dt float64) float64 {
	dist := geo.Distance(v.Pos, target)
	want := geo.Bearing(v.Pos, target)
	v.CourseDeg = turnToward(v.CourseDeg, want, 8*dt) // ≤8°/s turn rate
	v.SpeedKn = speedKn * (0.97 + rng.Float64()*0.06)
	v.Pos = geo.Project(v.Pos, geo.Velocity{SpeedMS: v.SpeedKn * geo.Knot, CourseDg: v.CourseDeg}, dt)
	return dist
}

// drift advances the vessel with its current course/speed.
func (v *Vessel) drift(dt float64) {
	v.Pos = geo.Project(v.Pos, geo.Velocity{SpeedMS: v.SpeedKn * geo.Knot, CourseDg: v.CourseDeg}, dt)
}

func turnToward(course, want, maxStep float64) float64 {
	diff := geo.NormalizeBearing(want - course)
	if diff > 180 {
		diff -= 360
	}
	if diff > maxStep {
		diff = maxStep
	} else if diff < -maxStep {
		diff = -maxStep
	}
	return geo.NormalizeBearing(course + diff)
}

// behavior is a vessel's autopilot: it mutates the kinematic state each
// tick according to the vessel's role.
type behavior interface {
	step(v *Vessel, s *Simulator, dt float64)
}

// voyager sails port to port along the world's routes: the cargo, tanker
// and passenger pattern. It dwells moored in port between legs.
type voyager struct {
	route      int
	distAlong  float64
	dwellUntil time.Time
	inPort     bool
}

func (b *voyager) step(v *Vessel, s *Simulator, dt float64) {
	w := s.World
	if b.inPort {
		v.SpeedKn = 0
		v.Status = ais.StatusMoored
		if s.Now.Before(b.dwellUntil) {
			return
		}
		// Depart on a new route out of the current port.
		here := w.Routes[b.route].To
		options := w.routesFrom(here)
		if len(options) == 0 {
			// Dead-end port: stay moored.
			b.dwellUntil = s.Now.Add(time.Hour)
			return
		}
		b.route = options[s.rng.Intn(len(options))]
		b.distAlong = 0
		b.inPort = false
		v.Status = ais.StatusUnderWayEngine
	}
	path := w.Routes[b.route].Path
	total := path.Length()
	b.distAlong += v.SpeedKn * geo.Knot * dt
	if b.distAlong >= total {
		// Arrived: moor and dwell 2–8 hours.
		v.Pos = path.Points[len(path.Points)-1]
		v.SpeedKn = 0
		v.Status = ais.StatusMoored
		b.inPort = true
		b.dwellUntil = s.Now.Add(time.Duration(2+s.rng.Intn(7)) * time.Hour)
		return
	}
	target := path.PointAt(b.distAlong + 500)
	v.Status = ais.StatusUnderWayEngine
	v.steerTowards(s.rng, target, v.CruiseKn, dt)
}

// fisher transits to a fishing ground, works it with slow erratic legs,
// then returns to port: the paper's "fishing pattern" whose interruption
// (e.g. inside a protected area) is an event of interest.
type fisher struct {
	home     geo.Point
	ground   geo.Point
	phase    int // 0 transit out, 1 fishing, 2 transit home
	until    time.Time
	legUntil time.Time
	legBrg   float64
}

func (b *fisher) step(v *Vessel, s *Simulator, dt float64) {
	switch b.phase {
	case 0:
		v.Status = ais.StatusUnderWayEngine
		if b.ground == (geo.Point{}) {
			// Work the nearest ground (with an occasional second choice):
			// fishing fleets are local, and a basin-wide draw would spend
			// whole runs in transit.
			b.ground = nearestGround(s.World, v.Pos, s.rng.Intn(4) == 0)
		}
		if d := v.steerTowards(s.rng, b.ground, v.CruiseKn, dt); d < 1500 {
			b.phase = 1
			b.until = s.Now.Add(time.Duration(4+s.rng.Intn(8)) * time.Hour)
		}
	case 1:
		v.Status = ais.StatusFishing
		if b.until.IsZero() {
			// Mid-trip starts enter here without a planned end.
			b.until = s.Now.Add(time.Duration(2+s.rng.Intn(8)) * time.Hour)
		}
		if s.Now.After(b.until) {
			b.phase = 2
			return
		}
		// Slow zig-zag legs of 5–15 minutes around the ground.
		if s.Now.After(b.legUntil) {
			b.legBrg = s.rng.Float64() * 360
			// Bias legs back toward the ground so the vessel orbits it.
			if geo.Distance(v.Pos, b.ground) > 8000 {
				b.legBrg = geo.Bearing(v.Pos, b.ground)
			}
			b.legUntil = s.Now.Add(time.Duration(5+s.rng.Intn(11)) * time.Minute)
		}
		v.CourseDeg = turnToward(v.CourseDeg, b.legBrg, 6*dt)
		v.SpeedKn = 2.5 + s.rng.Float64()*2
		v.drift(dt)
	case 2:
		v.Status = ais.StatusUnderWayEngine
		if d := v.steerTowards(s.rng, b.home, v.CruiseKn, dt); d < 1500 {
			b.phase = 0
			b.ground = geo.Point{}
			v.SpeedKn = 0
			v.Status = ais.StatusMoored
		}
	}
}

// tug works a small patch around its home port at modest speed.
type tug struct {
	home   geo.Point
	target geo.Point
}

func (b *tug) step(v *Vessel, s *Simulator, dt float64) {
	v.Status = ais.StatusUnderWayEngine
	if b.target == (geo.Point{}) || geo.Distance(v.Pos, b.target) < 500 {
		b.target = geo.Destination(b.home, s.rng.Float64()*360, s.rng.Float64()*12000)
	}
	v.steerTowards(s.rng, b.target, v.CruiseKn*0.8, dt)
}

// vesselNames feed deterministic but varied ship names.
var namePrefixes = []string{
	"NORTHERN", "PACIFIC", "ATLANTIC", "GOLDEN", "SILVER", "BLUE", "CRIMSON",
	"EASTERN", "ROYAL", "COASTAL", "GRAND", "SWIFT", "IRON", "BRAVE", "CALM",
}
var nameSuffixes = []string{
	"STAR", "WAVE", "HORIZON", "SPIRIT", "PIONEER", "TRADER", "GULL",
	"DOLPHIN", "MERIDIAN", "VOYAGER", "CREST", "HARVESTER", "GLORY", "DAWN",
}

// newFleet builds n vessels with a realistic class mix and assigns
// behaviours: ~45% cargo, 15% tanker, 20% fishing, 10% passenger, 10% tug.
func newFleet(rng *rand.Rand, w *World, n int) []*Vessel {
	fleet := make([]*Vessel, 0, n)
	for i := 0; i < n; i++ {
		v := &Vessel{
			MMSI:     uint32(201000000 + i*91),
			IMO:      uint32(9100000 + i),
			Name:     fmt.Sprintf("%s %s %d", namePrefixes[rng.Intn(len(namePrefixes))], nameSuffixes[rng.Intn(len(nameSuffixes))], i%97),
			CallSign: fmt.Sprintf("S%04X", i),
		}
		roll := rng.Float64()
		port := w.Ports[rng.Intn(len(w.Ports))]
		switch {
		case roll < 0.45: // cargo
			v.Type = ais.ShipTypeCargo
			v.Class = ClassA
			v.CruiseKn = 12 + rng.Float64()*8
			v.LengthM = 120 + rng.Float64()*200
			v.BeamM = 20 + rng.Float64()*25
			v.Draught = 8 + rng.Float64()*8
			v.behavior = startVoyage(rng, w, v)
		case roll < 0.60: // tanker
			v.Type = ais.ShipTypeTanker
			v.Class = ClassA
			v.CruiseKn = 11 + rng.Float64()*5
			v.LengthM = 180 + rng.Float64()*150
			v.BeamM = 30 + rng.Float64()*20
			v.Draught = 10 + rng.Float64()*10
			v.behavior = startVoyage(rng, w, v)
		case roll < 0.80: // fishing
			v.Type = ais.ShipTypeFishing
			v.Class = ClassB
			if rng.Float64() < 0.3 {
				v.Class = ClassA
			}
			v.CruiseKn = 8 + rng.Float64()*4
			v.LengthM = 15 + rng.Float64()*25
			v.BeamM = 5 + rng.Float64()*4
			v.Draught = 2 + rng.Float64()*3
			v.Pos = jitterNear(rng, port.Pos, 2000)
			fb := &fisher{home: port.Pos}
			if rng.Float64() < 0.5 {
				// Start mid-trip, already working the nearest ground, so
				// short runs still contain fishing activity.
				fb.ground = nearestGround(w, port.Pos, false)
				fb.phase = 1
				v.Pos = jitterNear(rng, fb.ground, 3000)
			}
			v.behavior = fb
		case roll < 0.90: // passenger
			v.Type = ais.ShipTypePassenger
			v.Class = ClassA
			v.CruiseKn = 16 + rng.Float64()*10
			v.LengthM = 90 + rng.Float64()*220
			v.BeamM = 18 + rng.Float64()*20
			v.Draught = 6 + rng.Float64()*3
			v.behavior = startVoyage(rng, w, v)
		default: // tug / service
			v.Type = ais.ShipTypeTug
			v.Class = ClassB
			v.CruiseKn = 8 + rng.Float64()*4
			v.LengthM = 20 + rng.Float64()*15
			v.BeamM = 7 + rng.Float64()*4
			v.Draught = 3 + rng.Float64()*2
			v.Pos = jitterNear(rng, port.Pos, 3000)
			v.behavior = &tug{home: port.Pos}
		}
		v.CourseDeg = rng.Float64() * 360
		fleet = append(fleet, v)
	}
	return fleet
}

// startVoyage places the vessel somewhere along a random route so the fleet
// does not start bunched up in ports.
func startVoyage(rng *rand.Rand, w *World, v *Vessel) *voyager {
	b := &voyager{route: rng.Intn(len(w.Routes))}
	path := w.Routes[b.route].Path
	b.distAlong = rng.Float64() * path.Length() * 0.9
	v.Pos = path.PointAt(b.distAlong)
	v.SpeedKn = v.CruiseKn
	v.Status = ais.StatusUnderWayEngine
	return b
}

// nearestGround returns the closest fishing ground to p (or the second
// closest when second is true, for variety).
func nearestGround(w *World, p geo.Point, second bool) geo.Point {
	type cand struct {
		pt geo.Point
		d  float64
	}
	var best, runner cand
	best.d = -1
	runner.d = -1
	for _, g := range w.FishingGrounds {
		d := geo.Distance(p, g)
		switch {
		case best.d < 0 || d < best.d:
			runner = best
			best = cand{pt: g, d: d}
		case runner.d < 0 || d < runner.d:
			runner = cand{pt: g, d: d}
		}
	}
	if second && runner.d >= 0 {
		return runner.pt
	}
	return best.pt
}

func jitterNear(rng *rand.Rand, p geo.Point, radius float64) geo.Point {
	return geo.Destination(p, rng.Float64()*360, rng.Float64()*radius)
}
