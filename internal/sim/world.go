// Package sim is the synthetic maritime world that stands in for the data
// sources the paper assumes: worldwide AIS feeds (terrestrial and
// satellite), VTS radar, vessel registers and scripted vessel behaviour
// with ground truth. Every run is driven by a seeded PRNG, so experiments
// are reproducible bit for bit.
//
// The simulator generates the defect profile the paper describes —
// position noise, receiver gaps, go-dark periods (27% of ships dark at
// least 10% of the time, Windward [43]), static-data errors (~5% of
// transmissions, USCG [44]), spoofing and anomalous behaviours — and
// records when and where each defect was injected, so detector
// precision/recall is measurable.
package sim

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/zones"
)

// Port is a named harbour vessels sail between.
type Port struct {
	ID   string
	Name string
	Pos  geo.Point
}

// Route is a sailable path between two ports (indices into World.Ports).
type Route struct {
	From, To int
	Path     geo.Polyline
}

// World is the static stage of a simulation: ports, routes, fishing
// grounds, context zones and shore-side AIS stations.
type World struct {
	Name           string
	Bounds         geo.Rect
	Ports          []Port
	Routes         []Route
	FishingGrounds []geo.Point
	Zones          *zones.ZoneSet
	Stations       []geo.Point // terrestrial AIS receiver sites
}

// routesFrom returns the indices of routes starting at the given port.
func (w *World) routesFrom(port int) []int {
	var out []int
	for i, r := range w.Routes {
		if r.From == port {
			out = append(out, i)
		}
	}
	return out
}

// buildRoute creates a route with gently jittered intermediate waypoints so
// traffic does not ride a single mathematical line.
func buildRoute(rng *rand.Rand, ports []Port, from, to int, jitterM float64) Route {
	a, b := ports[from].Pos, ports[to].Pos
	n := 2 + rng.Intn(3) // 2–4 intermediate waypoints
	pts := make([]geo.Point, 0, n+2)
	pts = append(pts, a)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n+1)
		mid := geo.Interpolate(a, b, f)
		brg := geo.Bearing(a, b) + 90
		off := (rng.Float64()*2 - 1) * jitterM
		pts = append(pts, geo.Destination(mid, brg, off))
	}
	pts = append(pts, b)
	return Route{From: from, To: to, Path: geo.Polyline{Points: pts}}
}

// MediterraneanWorld builds a regional basin: a dozen ports around a
// Mediterranean-like rectangle, bidirectional routes, fishing grounds,
// protected areas and shipping lanes. This is the default stage for the
// event-detection, fusion and forecasting experiments.
func MediterraneanWorld(seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	ports := []Port{
		{ID: "MRS", Name: "Marseille", Pos: geo.Point{Lat: 43.30, Lon: 5.37}},
		{ID: "GOA", Name: "Genoa", Pos: geo.Point{Lat: 44.40, Lon: 8.93}},
		{ID: "BCN", Name: "Barcelona", Pos: geo.Point{Lat: 41.35, Lon: 2.16}},
		{ID: "NAP", Name: "Naples", Pos: geo.Point{Lat: 40.84, Lon: 14.26}},
		{ID: "PIR", Name: "Piraeus", Pos: geo.Point{Lat: 37.94, Lon: 23.62}},
		{ID: "VAL", Name: "Valencia", Pos: geo.Point{Lat: 39.45, Lon: -0.32}},
		{ID: "ALG", Name: "Algiers", Pos: geo.Point{Lat: 36.76, Lon: 3.07}},
		{ID: "TUN", Name: "Tunis", Pos: geo.Point{Lat: 36.84, Lon: 10.30}},
		{ID: "VLT", Name: "Valletta", Pos: geo.Point{Lat: 35.90, Lon: 14.52}},
		{ID: "ALX", Name: "Alexandria", Pos: geo.Point{Lat: 31.20, Lon: 29.89}},
		{ID: "IST", Name: "Istanbul", Pos: geo.Point{Lat: 40.98, Lon: 28.95}},
		{ID: "PMO", Name: "Palermo", Pos: geo.Point{Lat: 38.13, Lon: 13.36}},
	}
	w := &World{
		Name:   "mediterranean",
		Bounds: geo.Rect{MinLat: 30, MinLon: -6, MaxLat: 46, MaxLon: 36},
		Ports:  ports,
	}
	// Fully connect a deterministic subset of port pairs, both directions.
	for i := range ports {
		for j := range ports {
			if i == j {
				continue
			}
			// Connect ~2/3 of pairs so route choice is non-trivial.
			if (i+2*j)%3 == 0 {
				continue
			}
			w.Routes = append(w.Routes, buildRoute(rng, ports, i, j, 8000))
		}
	}
	w.FishingGrounds = []geo.Point{
		{Lat: 42.6, Lon: 3.9},
		{Lat: 40.1, Lon: 5.8},
		{Lat: 37.5, Lon: 11.6},
		{Lat: 38.7, Lon: 20.2},
		{Lat: 34.8, Lon: 25.0},
	}
	// Zones: a port zone per port, protected areas next to two fishing
	// grounds, and lanes along three busy routes.
	var zs []*zones.Zone
	for _, p := range ports {
		zs = append(zs, zones.PortZone("port-"+p.ID, p.Name, p.Pos, 6000))
	}
	zs = append(zs,
		zones.RectZone("mpa-lions", "Gulf of Lions Reserve", zones.KindProtectedArea,
			geo.Rect{MinLat: 42.3, MinLon: 3.4, MaxLat: 42.9, MaxLon: 4.5}),
		zones.RectZone("mpa-ionian", "Ionian Reserve", zones.KindProtectedArea,
			geo.Rect{MinLat: 38.4, MinLon: 19.8, MaxLat: 39.0, MaxLon: 20.7}),
		zones.RectZone("eez-west", "Western Basin EEZ", zones.KindEEZ,
			geo.Rect{MinLat: 36, MinLon: -2, MaxLat: 44, MaxLon: 10}),
	)
	for i := 0; i < 3 && i < len(w.Routes); i++ {
		r := w.Routes[i*7%len(w.Routes)]
		zs = append(zs, zones.LaneZone(
			"lane-"+ports[r.From].ID+"-"+ports[r.To].ID,
			ports[r.From].Name+"–"+ports[r.To].Name+" Lane",
			r.Path.Points, 12000))
	}
	w.Zones = zones.NewZoneSet(zs)
	// Terrestrial AIS stations at every port plus a few coastal sites.
	for _, p := range ports {
		w.Stations = append(w.Stations, p.Pos)
	}
	w.Stations = append(w.Stations,
		geo.Point{Lat: 43.0, Lon: 6.4},
		geo.Point{Lat: 38.0, Lon: 15.6},
		geo.Point{Lat: 35.3, Lon: 25.1},
	)
	return w
}

// GlobalWorld builds a planetary stage with major world ports connected by
// long-haul great-circle routes. It exists for experiment E1 (Figure 1):
// worldwide feed volume and satellite-versus-terrestrial coverage shares.
func GlobalWorld(seed int64) *World {
	rng := rand.New(rand.NewSource(seed))
	ports := []Port{
		{ID: "RTM", Name: "Rotterdam", Pos: geo.Point{Lat: 51.95, Lon: 4.14}},
		{ID: "HAM", Name: "Hamburg", Pos: geo.Point{Lat: 53.54, Lon: 9.97}},
		{ID: "ALG", Name: "Algeciras", Pos: geo.Point{Lat: 36.13, Lon: -5.44}},
		{ID: "PIR", Name: "Piraeus", Pos: geo.Point{Lat: 37.94, Lon: 23.62}},
		{ID: "SUZ", Name: "Suez", Pos: geo.Point{Lat: 29.93, Lon: 32.55}},
		{ID: "DXB", Name: "Jebel Ali", Pos: geo.Point{Lat: 25.01, Lon: 55.06}},
		{ID: "BOM", Name: "Mumbai", Pos: geo.Point{Lat: 18.95, Lon: 72.84}},
		{ID: "SIN", Name: "Singapore", Pos: geo.Point{Lat: 1.26, Lon: 103.84}},
		{ID: "HKG", Name: "Hong Kong", Pos: geo.Point{Lat: 22.30, Lon: 114.17}},
		{ID: "SHA", Name: "Shanghai", Pos: geo.Point{Lat: 31.23, Lon: 121.49}},
		{ID: "PUS", Name: "Busan", Pos: geo.Point{Lat: 35.10, Lon: 129.04}},
		{ID: "TYO", Name: "Tokyo", Pos: geo.Point{Lat: 35.61, Lon: 139.79}},
		{ID: "SYD", Name: "Sydney", Pos: geo.Point{Lat: -33.86, Lon: 151.20}},
		{ID: "LAX", Name: "Los Angeles", Pos: geo.Point{Lat: 33.74, Lon: -118.26}},
		{ID: "OAK", Name: "Oakland", Pos: geo.Point{Lat: 37.80, Lon: -122.32}},
		{ID: "VAN", Name: "Vancouver", Pos: geo.Point{Lat: 49.29, Lon: -123.11}},
		{ID: "PAN", Name: "Panama", Pos: geo.Point{Lat: 8.95, Lon: -79.56}},
		{ID: "NYC", Name: "New York", Pos: geo.Point{Lat: 40.67, Lon: -74.04}},
		{ID: "SAV", Name: "Savannah", Pos: geo.Point{Lat: 32.08, Lon: -81.09}},
		{ID: "SSZ", Name: "Santos", Pos: geo.Point{Lat: -23.98, Lon: -46.29}},
		{ID: "BUE", Name: "Buenos Aires", Pos: geo.Point{Lat: -34.60, Lon: -58.37}},
		{ID: "CPT", Name: "Cape Town", Pos: geo.Point{Lat: -33.91, Lon: 18.43}},
		{ID: "LOS", Name: "Lagos", Pos: geo.Point{Lat: 6.44, Lon: 3.40}},
		{ID: "DUR", Name: "Durban", Pos: geo.Point{Lat: -29.87, Lon: 31.03}},
	}
	w := &World{
		Name:   "global",
		Bounds: geo.Rect{MinLat: -60, MinLon: -180, MaxLat: 70, MaxLon: 180},
		Ports:  ports,
	}
	for i := range ports {
		for j := range ports {
			if i == j {
				continue
			}
			// Sparser connectivity than a regional basin; long-haul routes.
			if (i*3+j)%4 != 0 {
				continue
			}
			// Skip routes that would cross the antimeridian to keep the
			// simple geometry honest (traffic still spans the globe).
			if crossesAntimeridian(ports[i].Pos, ports[j].Pos) {
				continue
			}
			w.Routes = append(w.Routes, buildRoute(rng, ports, i, j, 30000))
		}
	}
	w.FishingGrounds = []geo.Point{
		{Lat: 55, Lon: -8}, {Lat: 44, Lon: -52}, {Lat: -12, Lon: 80},
		{Lat: 5, Lon: -90}, {Lat: -38, Lon: 15}, {Lat: 40, Lon: 145},
	}
	var zs []*zones.Zone
	for _, p := range ports {
		zs = append(zs, zones.PortZone("port-"+p.ID, p.Name, p.Pos, 10000))
	}
	w.Zones = zones.NewZoneSet(zs)
	for _, p := range ports {
		w.Stations = append(w.Stations, p.Pos)
	}
	return w
}

func crossesAntimeridian(a, b geo.Point) bool {
	d := a.Lon - b.Lon
	if d < 0 {
		d = -d
	}
	return d > 180
}
