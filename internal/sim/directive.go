package sim

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/zones"
)

// EventKind labels an injected anomaly in the ground-truth log.
type EventKind string

// Injected anomaly kinds; these are the behaviours experiment E8 scores
// detectors against.
const (
	EventDark          EventKind = "dark"           // AIS transmission suppressed
	EventSpoofOffset   EventKind = "spoof-offset"   // reported positions displaced
	EventSpoofIdentity EventKind = "spoof-identity" // reported MMSI replaced
	EventRendezvous    EventKind = "rendezvous"     // two vessels meet mid-sea
	EventLoiter        EventKind = "loiter"         // drifting in a small area off-lane
	EventDrift         EventKind = "drift"          // not under command, drifting
	EventZoneViolation EventKind = "zone-violation" // fishing inside a protected area
	// EventCourseDeviation steers a vessel far off its normal heading
	// while it keeps transmitting honestly — the pure behaviour-change
	// anomaly the online profile lane (distribution shift against the
	// vessel's own history) is scored on.
	EventCourseDeviation EventKind = "course-deviation"
)

// TruthEvent records one injected anomaly with its exact extent, the
// scoring key for detector evaluation.
type TruthEvent struct {
	Kind  EventKind
	MMSI  uint32
	Other uint32 // peer vessel for rendezvous, else 0
	Start time.Time
	End   time.Time
	Where geo.Point // representative location (meeting point, zone centre…)
}

// directive is a scheduled behaviour override attached to a vessel.
type directive struct {
	kind  EventKind
	start time.Time
	end   time.Time

	// Parameters by kind.
	offsetM   float64   // spoof-offset displacement
	offsetBrg float64   // spoof-offset direction; course-deviation delta (degrees), resolved to an absolute course once active
	fakeMMSI  uint32    // spoof-identity replacement
	meet      geo.Point // rendezvous meeting point / loiter centre / violation target
	arrived   bool
}

func (d *directive) activeAt(t time.Time) bool {
	return !t.Before(d.start) && t.Before(d.end)
}

// activeDirective returns the vessel's active override at t, or nil.
// Motion-shaping directives (rendezvous, loiter, drift, violation) take
// precedence over transmission-only ones (dark, spoofing), which matters
// when a dark window overlays a rendezvous.
func (v *Vessel) activeDirective(t time.Time) *directive {
	var fallback *directive
	for _, d := range v.overrides {
		if !d.activeAt(t) {
			continue
		}
		switch d.kind {
		case EventDark, EventSpoofOffset, EventSpoofIdentity:
			if fallback == nil {
				fallback = d
			}
		default:
			return d
		}
	}
	return fallback
}

// activeDark reports whether any dark window covers t.
func (v *Vessel) activeDark(t time.Time) bool {
	for _, d := range v.overrides {
		if d.kind == EventDark && d.activeAt(t) {
			return true
		}
	}
	return false
}

// applyDirective drives the vessel during an override window instead of
// its normal behaviour. Dark and spoofing directives do not change motion
// (the vessel sails on; only its transmissions are affected), so they
// return false to let the normal behaviour run.
func applyDirective(d *directive, v *Vessel, s *Simulator, dt float64) (overrode bool) {
	switch d.kind {
	case EventDark, EventSpoofOffset, EventSpoofIdentity:
		return false
	case EventRendezvous:
		if !d.arrived {
			if dist := v.steerTowards(s.rng, d.meet, v.CruiseKn, dt); dist < 300 {
				d.arrived = true
			}
			return true
		}
		// On station: hold position, nudging back toward the meeting
		// point so the pair stays within ship-to-ship transfer range.
		if geo.Distance(v.Pos, d.meet) > 250 {
			v.CourseDeg = geo.Bearing(v.Pos, d.meet)
			v.SpeedKn = 1.0
		} else {
			v.SpeedKn = 0.2
		}
		v.drift(dt)
		return true
	case EventLoiter:
		if !d.arrived {
			if dist := v.steerTowards(s.rng, d.meet, v.CruiseKn, dt); dist < 800 {
				d.arrived = true
			}
			return true
		}
		v.SpeedKn = 0.5 + s.rng.Float64()*0.7
		v.CourseDeg = geo.NormalizeBearing(v.CourseDeg + (s.rng.Float64()*2-1)*12*dt)
		v.drift(dt)
		return true
	case EventDrift:
		v.Status = ais.StatusNotUnderCmd
		v.SpeedKn = 1.0 + s.rng.Float64()*0.5
		v.CourseDeg = geo.NormalizeBearing(v.CourseDeg + (s.rng.Float64()*2-1)*2*dt)
		v.drift(dt)
		return true
	case EventCourseDeviation:
		if !d.arrived {
			// Resolve the planned delta against whatever course the vessel
			// happens to hold when the window opens.
			d.offsetBrg = geo.NormalizeBearing(v.CourseDeg + d.offsetBrg)
			d.arrived = true
		}
		v.CourseDeg = geo.NormalizeBearing(d.offsetBrg + (s.rng.Float64()*2-1)*3)
		v.SpeedKn = v.CruiseKn * (0.95 + s.rng.Float64()*0.1)
		v.drift(dt)
		return true
	case EventZoneViolation:
		if !d.arrived {
			if dist := v.steerTowards(s.rng, d.meet, v.CruiseKn, dt); dist < 800 {
				d.arrived = true
			}
			return true
		}
		// Fish inside the protected area: slow erratic legs.
		v.Status = ais.StatusFishing
		v.SpeedKn = 2.5 + s.rng.Float64()*1.5
		v.CourseDeg = geo.NormalizeBearing(v.CourseDeg + (s.rng.Float64()*2-1)*10*dt)
		v.drift(dt)
		if geo.Distance(v.Pos, d.meet) > 4000 {
			v.CourseDeg = geo.Bearing(v.Pos, d.meet)
		}
		return true
	}
	return false
}

// scheduleAnomalies attaches directives to the fleet according to the
// configured rates and returns the ground-truth event log. Windows are
// planned inside (start, start+dur) with margins so every event completes.
func scheduleAnomalies(rng *rand.Rand, cfg *Config, fleet []*Vessel) []TruthEvent {
	var events []TruthEvent
	dur := cfg.Duration
	start := cfg.Start

	windowIn := func(margin, length time.Duration) (time.Time, time.Time) {
		span := dur - 2*margin - length
		if span <= 0 {
			return start.Add(margin), start.Add(margin + length)
		}
		off := time.Duration(rng.Int63n(int64(span)))
		s0 := start.Add(margin + off)
		return s0, s0.Add(length)
	}

	// Go-dark: the Windward [43] profile — a fraction of the fleet goes
	// dark for a fraction of the run, possibly in several episodes.
	for _, v := range fleet {
		if rng.Float64() >= cfg.DarkShipFrac {
			continue
		}
		darkTotal := time.Duration(float64(dur) * cfg.DarkTimeFrac * (0.8 + rng.Float64()*0.6))
		episodes := 1 + rng.Intn(2)
		per := darkTotal / time.Duration(episodes)
		if per < 2*time.Minute {
			per = 2 * time.Minute
		}
		for e := 0; e < episodes; e++ {
			s0, e0 := windowIn(5*time.Minute, per)
			v.overrides = append(v.overrides, &directive{kind: EventDark, start: s0, end: e0})
			events = append(events, TruthEvent{Kind: EventDark, MMSI: v.MMSI, Start: s0, End: e0})
		}
	}

	// Spoofing: offset or identity fraud on a small fraction of the fleet.
	for _, v := range fleet {
		if rng.Float64() >= cfg.SpoofShipFrac {
			continue
		}
		s0, e0 := windowIn(10*time.Minute, time.Duration(20+rng.Intn(40))*time.Minute)
		if rng.Float64() < 0.5 {
			d := &directive{
				kind: EventSpoofOffset, start: s0, end: e0,
				offsetM:   20000 + rng.Float64()*50000,
				offsetBrg: rng.Float64() * 360,
			}
			v.overrides = append(v.overrides, d)
			events = append(events, TruthEvent{Kind: EventSpoofOffset, MMSI: v.MMSI, Start: s0, End: e0})
		} else {
			d := &directive{
				kind: EventSpoofIdentity, start: s0, end: e0,
				fakeMMSI: uint32(900000000 + rng.Intn(99999999)),
			}
			v.overrides = append(v.overrides, d)
			events = append(events, TruthEvent{Kind: EventSpoofIdentity, MMSI: v.MMSI, Start: s0, End: e0})
		}
	}

	// Rendezvous: pair nearby vessels; the approach time is derived from
	// their actual separation so every pair can really make the meeting
	// point before the hold phase starts.
	nRdv := int(float64(len(fleet)) * cfg.RendezvousFrac / 2)
	candidates := make([]*Vessel, 0, len(fleet))
	for _, v := range fleet {
		if len(v.overrides) == 0 { // keep rendezvous clean of other overrides
			candidates = append(candidates, v)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].MMSI < candidates[j].MMSI })
	const maxPairSep = 120000 // only pair vessels within 120 km
	used := make(map[uint32]bool)
	scheduled := 0
	for i := 0; i < len(candidates) && scheduled < nRdv; i++ {
		a := candidates[i]
		if used[a.MMSI] {
			continue
		}
		var b *Vessel
		bestD := maxPairSep + 1.0
		for j := i + 1; j < len(candidates); j++ {
			c := candidates[j]
			if used[c.MMSI] {
				continue
			}
			if d := geo.Distance(a.Pos, c.Pos); d < bestD {
				bestD, b = d, c
			}
		}
		if b == nil || bestD > maxPairSep {
			continue
		}
		used[a.MMSI], used[b.MMSI] = true, true
		meet := geo.Midpoint(a.Pos, b.Pos)
		meet = geo.Destination(meet, float64(i*37%360), 5000)
		// A rendezvous at berth is normal port life, not the ship-to-ship
		// transfer scenario: push the meeting point offshore of any port.
		for hop := 0; hop < 8; hop++ {
			moved := false
			for _, port := range cfg.World.Ports {
				if geo.Distance(meet, port.Pos) < 9000 {
					meet = geo.Destination(port.Pos, geo.Bearing(port.Pos, meet), 14000)
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		// Slowest participant must cover its distance to the (possibly
		// relocated) meeting point; pad 50% for turning and speed noise.
		slowest := a.CruiseKn
		if b.CruiseKn < slowest {
			slowest = b.CruiseKn
		}
		if slowest < 4 {
			slowest = 4
		}
		furthest := geo.Distance(a.Pos, meet)
		if d := geo.Distance(b.Pos, meet); d > furthest {
			furthest = d
		}
		approachSec := (furthest + 3000) / (slowest * geo.Knot) * 1.5
		approach := time.Duration(approachSec * float64(time.Second))
		if approach < 10*time.Minute {
			approach = 10 * time.Minute
		}
		hold := time.Duration(30+rng.Intn(30)) * time.Minute
		if approach+hold+20*time.Minute > dur {
			continue // cannot fit in this run
		}
		// Start the approach shortly after the run begins: the approach
		// duration was computed from the vessels' starting positions, and
		// letting them wander first would invalidate it.
		s0 := start.Add(2*time.Minute + time.Duration(rng.Int63n(int64(8*time.Minute))))
		e0 := s0.Add(approach + hold)
		for _, v := range []*Vessel{a, b} {
			v.overrides = append(v.overrides, &directive{
				kind: EventRendezvous, start: s0, end: e0, meet: meet,
			})
		}
		// The truth window spans the whole directive: vessels typically
		// arrive before the padded approach estimate, and the meeting
		// genuinely begins at arrival (detectors cannot fire earlier
		// anyway, since the pair is neither close nor slow during the
		// approach).
		events = append(events, TruthEvent{
			Kind: EventRendezvous, MMSI: a.MMSI, Other: b.MMSI,
			Start: s0, End: e0, Where: meet,
		})
		scheduled++
	}

	// Dark rendezvous: pairs that meet with transponders off (§4's
	// closed-world blind spot). Reuse the rendezvous mechanics, then
	// overlay a dark window covering the meeting.
	nDarkRdv := int(float64(len(fleet)) * cfg.DarkRendezvousFrac / 2)
	for i := 0; i < len(candidates) && nDarkRdv > 0; i++ {
		a := candidates[i]
		if used[a.MMSI] {
			continue
		}
		var b *Vessel
		bestD := maxPairSep + 1.0
		for j := i + 1; j < len(candidates); j++ {
			c := candidates[j]
			if used[c.MMSI] {
				continue
			}
			if d := geo.Distance(a.Pos, c.Pos); d < bestD {
				bestD, b = d, c
			}
		}
		if b == nil || bestD > maxPairSep {
			continue
		}
		used[a.MMSI], used[b.MMSI] = true, true
		meet := geo.Destination(geo.Midpoint(a.Pos, b.Pos), float64(i*53%360), 5000)
		slowest := a.CruiseKn
		if b.CruiseKn < slowest {
			slowest = b.CruiseKn
		}
		if slowest < 4 {
			slowest = 4
		}
		furthest := geo.Distance(a.Pos, meet)
		if d := geo.Distance(b.Pos, meet); d > furthest {
			furthest = d
		}
		approach := time.Duration((furthest + 3000) / (slowest * geo.Knot) * 1.5 * float64(time.Second))
		if approach < 10*time.Minute {
			approach = 10 * time.Minute
		}
		hold := time.Duration(30+rng.Intn(30)) * time.Minute
		if approach+hold+25*time.Minute > dur {
			continue
		}
		s0 := start.Add(2*time.Minute + time.Duration(rng.Int63n(int64(8*time.Minute))))
		e0 := s0.Add(approach + hold)
		darkFrom := s0.Add(approach / 2)
		darkTo := e0.Add(10 * time.Minute)
		for _, v := range []*Vessel{a, b} {
			v.overrides = append(v.overrides,
				&directive{kind: EventRendezvous, start: s0, end: e0, meet: meet},
				&directive{kind: EventDark, start: darkFrom, end: darkTo})
		}
		events = append(events,
			TruthEvent{Kind: EventRendezvous, MMSI: a.MMSI, Other: b.MMSI, Start: s0, End: e0, Where: meet},
			TruthEvent{Kind: EventDark, MMSI: a.MMSI, Start: darkFrom, End: darkTo},
			TruthEvent{Kind: EventDark, MMSI: b.MMSI, Start: darkFrom, End: darkTo})
		nDarkRdv--
	}

	// Loitering, drifting, zone violations on further unmodified vessels.
	for _, v := range fleet {
		if len(v.overrides) > 0 {
			continue
		}
		switch {
		case rng.Float64() < cfg.CourseDeviationFrac:
			s0, e0 := windowIn(10*time.Minute, time.Duration(25+rng.Intn(35))*time.Minute)
			dev := 60 + rng.Float64()*90
			if rng.Float64() < 0.5 {
				dev = -dev
			}
			v.overrides = append(v.overrides, &directive{kind: EventCourseDeviation, start: s0, end: e0, offsetBrg: dev})
			events = append(events, TruthEvent{Kind: EventCourseDeviation, MMSI: v.MMSI, Start: s0, End: e0})
		case rng.Float64() < cfg.LoiterFrac:
			// The loiter spot must be reachable early in the window, so
			// keep it within a few kilometres and start soon after the
			// run begins (positions are known at schedule time).
			s0 := start.Add(2*time.Minute + time.Duration(rng.Int63n(int64(8*time.Minute))))
			e0 := s0.Add(time.Duration(45+rng.Intn(45)) * time.Minute)
			if e0.After(start.Add(dur)) {
				continue
			}
			centre := geo.Destination(v.Pos, rng.Float64()*360, 2000+rng.Float64()*4000)
			v.overrides = append(v.overrides, &directive{kind: EventLoiter, start: s0, end: e0, meet: centre})
			events = append(events, TruthEvent{Kind: EventLoiter, MMSI: v.MMSI, Start: s0, End: e0, Where: centre})
		case rng.Float64() < cfg.DriftFrac:
			s0, e0 := windowIn(10*time.Minute, time.Duration(30+rng.Intn(90))*time.Minute)
			v.overrides = append(v.overrides, &directive{kind: EventDrift, start: s0, end: e0})
			events = append(events, TruthEvent{Kind: EventDrift, MMSI: v.MMSI, Start: s0, End: e0})
		case rng.Float64() < cfg.ZoneViolationFrac && v.Type == ais.ShipTypeFishing:
			target := protectedAreaTarget(cfg.World, rng)
			if target == (geo.Point{}) {
				continue
			}
			// Budget the approach from the vessel's start position; skip
			// vessels that cannot reach a protected area in this run.
			speed := v.CruiseKn
			if speed < 4 {
				speed = 4
			}
			travel := time.Duration(geo.Distance(v.Pos, target) / (speed * geo.Knot) * 1.4 * float64(time.Second))
			fish := time.Duration(45+rng.Intn(45)) * time.Minute
			s0 := start.Add(2*time.Minute + time.Duration(rng.Int63n(int64(8*time.Minute))))
			e0 := s0.Add(travel + fish)
			if e0.After(start.Add(dur - 5*time.Minute)) {
				continue
			}
			v.overrides = append(v.overrides, &directive{kind: EventZoneViolation, start: s0, end: e0, meet: target})
			// The scoreable violation is the in-area fishing phase.
			events = append(events, TruthEvent{Kind: EventZoneViolation, MMSI: v.MMSI, Start: s0.Add(travel), End: e0, Where: target})
		}
	}

	sort.Slice(events, func(i, j int) bool {
		if !events[i].Start.Equal(events[j].Start) {
			return events[i].Start.Before(events[j].Start)
		}
		return events[i].MMSI < events[j].MMSI
	})
	return events
}

// protectedAreaTarget picks a point inside some protected area, or the zero
// point if the world has none.
func protectedAreaTarget(w *World, rng *rand.Rand) geo.Point {
	if w.Zones == nil {
		return geo.Point{}
	}
	var areas []geo.Point
	for _, z := range w.Zones.All() {
		if z.Kind == zones.KindProtectedArea {
			areas = append(areas, z.Area.Centroid())
		}
	}
	if len(areas) == 0 {
		return geo.Point{}
	}
	c := areas[rng.Intn(len(areas))]
	return geo.Destination(c, rng.Float64()*360, rng.Float64()*3000)
}
