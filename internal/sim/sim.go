package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/registry"
)

// Config parameterises a simulation run. Zero values select sensible
// defaults (see Normalize).
type Config struct {
	Seed       int64
	World      *World
	NumVessels int
	Start      time.Time
	Duration   time.Duration
	TickSec    float64 // integration step
	TruthEvery time.Duration

	// Defect and anomaly rates.
	GPSNoiseM       float64 // reported-position noise sigma
	StaticErrorRate float64 // fraction of static transmissions corrupted [44]
	DarkShipFrac    float64 // fraction of fleet that goes dark [43]
	DarkTimeFrac    float64 // fraction of run a dark ship stays dark [43]
	SpoofShipFrac   float64
	RendezvousFrac  float64 // fraction of fleet involved in a rendezvous
	// DarkRendezvousFrac schedules rendezvous whose participants switch
	// their transponders off around the meeting — the §4 scenario where
	// closed-world queries structurally miss the event.
	DarkRendezvousFrac float64
	LoiterFrac         float64
	DriftFrac          float64
	ZoneViolationFrac  float64
	// CourseDeviationFrac steers a fraction of the fleet far off its
	// normal heading for a window while transmitting honestly — no
	// transponder games, just behaviour unlike the vessel's own history,
	// the signature the behaviour-profile anomaly lane scores on.
	CourseDeviationFrac float64

	// Receiver model.
	TerrestrialRangeM float64 // range of shore stations
	TerrestrialLoss   float64 // per-message loss probability in range
	SatSwathDeg       float64 // half-width in longitude of a satellite swath
	SatPeriod         time.Duration
	SatCount          int
	SatLoss           float64

	// Radar sensor model (enabled when RadarRangeM > 0): contacts without
	// identity from stations co-located with the first NumRadar ports.
	RadarRangeM float64
	RadarPeriod time.Duration
	RadarNoiseM float64
	NumRadar    int
}

// Normalize fills in defaults for unset fields.
func (c *Config) Normalize() {
	if c.World == nil {
		c.World = MediterraneanWorld(c.Seed + 1)
	}
	if c.NumVessels == 0 {
		c.NumVessels = 100
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Hour
	}
	if c.TickSec == 0 {
		c.TickSec = 2
	}
	if c.TruthEvery == 0 {
		c.TruthEvery = 30 * time.Second
	}
	if c.GPSNoiseM == 0 {
		c.GPSNoiseM = 10 // the paper's "GPS position accuracy ... around 10m"
	}
	if c.TerrestrialRangeM == 0 {
		c.TerrestrialRangeM = 70000 // ~40 NM
	}
	if c.SatSwathDeg == 0 {
		c.SatSwathDeg = 25
	}
	if c.SatPeriod == 0 {
		c.SatPeriod = 100 * time.Minute
	}
	if c.SatCount == 0 {
		c.SatCount = 4
	}
	if c.SatLoss == 0 {
		c.SatLoss = 0.35 // satellite AIS suffers message collisions
	}
	if c.TerrestrialLoss == 0 {
		c.TerrestrialLoss = 0.02
	}
	if c.RadarRangeM > 0 {
		if c.RadarPeriod == 0 {
			c.RadarPeriod = 5 * time.Second
		}
		if c.RadarNoiseM == 0 {
			c.RadarNoiseM = 120
		}
		if c.NumRadar == 0 {
			c.NumRadar = 3
		}
	}
}

// DefaultAnomalyRates sets the paper-calibrated defect profile: 27% of
// ships dark ≥10% of the time, ~5% static errors, plus a sprinkling of the
// suspicious behaviours of §3.1.
func (c *Config) DefaultAnomalyRates() {
	c.StaticErrorRate = 0.05
	c.DarkShipFrac = 0.27
	c.DarkTimeFrac = 0.12
	c.SpoofShipFrac = 0.03
	c.RendezvousFrac = 0.04
	c.LoiterFrac = 0.03
	c.DriftFrac = 0.02
	c.CourseDeviationFrac = 0.03
	c.ZoneViolationFrac = 0.15 // of fishing vessels without other overrides
}

// Observation is one received AIS position report with reception metadata.
type Observation struct {
	At          time.Time
	Terrestrial bool
	Satellite   bool
	Report      ais.PositionReport
	// TrueMMSI is the transmitting vessel even under identity spoofing;
	// evaluation-only, never fed to detectors.
	TrueMMSI uint32
}

// StaticObservation is one received static/voyage message with corruption
// ground truth for E3.
type StaticObservation struct {
	At        time.Time
	Msg       ais.StaticVoyage
	Corrupted bool
	BadField  string
}

// RadarContact is an identity-less position measurement from a coastal
// radar. TrueMMSI is evaluation-only.
type RadarContact struct {
	At       time.Time
	Pos      geo.Point
	Station  int
	TrueMMSI uint32
}

// TruthPoint samples a vessel's true state.
type TruthPoint struct {
	At        time.Time
	Pos       geo.Point
	SpeedKn   float64
	CourseDeg float64
	Dark      bool
}

// Run is the full output of a simulation: streams plus ground truth.
type Run struct {
	Config  Config
	Vessels []*Vessel
	Truth   map[uint32][]TruthPoint
	// Positions is ordered by time; it interleaves the whole fleet.
	Positions []Observation
	Statics   []StaticObservation
	Radar     []RadarContact
	Events    []TruthEvent
	// Emitted counts transmissions before reception filtering; the
	// received count is len(Positions).
	Emitted int
	// Register is the fleet's true static data as a register snapshot.
	Register *registry.Register
}

// Simulator holds the mutable state of a run in progress.
type Simulator struct {
	World *World
	Now   time.Time
	rng   *rand.Rand
}

// Simulate executes the configured scenario and returns its streams and
// ground truth.
func Simulate(cfg Config) (*Run, error) {
	cfg.Normalize()
	if len(cfg.World.Routes) == 0 {
		return nil, fmt.Errorf("sim: world %q has no routes", cfg.World.Name)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulator{World: cfg.World, Now: cfg.Start, rng: rng}
	fleet := newFleet(rng, cfg.World, cfg.NumVessels)
	events := scheduleAnomalies(rng, &cfg, fleet)

	run := &Run{
		Config:   cfg,
		Vessels:  fleet,
		Truth:    make(map[uint32][]TruthPoint, len(fleet)),
		Events:   events,
		Register: registry.NewRegister("fleet-truth"),
	}
	for _, v := range fleet {
		run.Register.Put(&registry.Record{
			MMSI: v.MMSI, IMO: v.IMO, Name: v.Name, CallSign: v.CallSign,
			Flag: "FR", LengthM: v.LengthM, BeamM: v.BeamM,
			ShipType: v.Type.String(),
		})
	}

	end := cfg.Start.Add(cfg.Duration)
	dt := cfg.TickSec
	tick := time.Duration(dt * float64(time.Second))
	lastTruth := cfg.Start.Add(-cfg.TruthEvery)
	lastRadar := cfg.Start.Add(-cfg.RadarPeriod)

	// Stagger initial emission times so the fleet does not transmit in
	// lockstep.
	for _, v := range fleet {
		v.nextPosAt = cfg.Start.Add(time.Duration(rng.Float64() * float64(10*time.Second)))
		v.nextStaticAt = cfg.Start.Add(time.Duration(rng.Float64() * float64(6*time.Minute)))
	}

	for s.Now.Before(end) {
		// 1. Advance vessel kinematics.
		for _, v := range fleet {
			d := v.activeDirective(s.Now)
			if d == nil || !applyDirective(d, v, s, dt) {
				v.behavior.step(v, s, dt)
			}
		}

		// 2. Truth sampling.
		if s.Now.Sub(lastTruth) >= cfg.TruthEvery {
			lastTruth = s.Now
			for _, v := range fleet {
				run.Truth[v.MMSI] = append(run.Truth[v.MMSI], TruthPoint{
					At: s.Now, Pos: v.Pos, SpeedKn: v.SpeedKn, CourseDeg: v.CourseDeg,
					Dark: v.activeDark(s.Now),
				})
			}
		}

		// 3. AIS emissions.
		for _, v := range fleet {
			if s.Now.Before(v.nextPosAt) {
				continue
			}
			v.nextPosAt = s.Now.Add(reportInterval(v, rng))
			run.Emitted++
			if v.activeDark(s.Now) {
				continue // transponder off
			}
			rep := s.buildReport(v, v.activeDirective(s.Now), cfg.GPSNoiseM)
			terr, sat := s.receive(&cfg, v.Pos)
			if terr || sat {
				run.Positions = append(run.Positions, Observation{
					At: s.Now, Terrestrial: terr, Satellite: sat,
					Report: rep, TrueMMSI: v.MMSI,
				})
			}
		}

		// 4. Static/voyage emissions.
		for _, v := range fleet {
			if s.Now.Before(v.nextStaticAt) {
				continue
			}
			v.nextStaticAt = s.Now.Add(6 * time.Minute)
			if v.activeDark(s.Now) {
				continue
			}
			terr, sat := s.receive(&cfg, v.Pos)
			if !terr && !sat {
				continue
			}
			msg, corrupted, badField := s.buildStatic(v, cfg.StaticErrorRate)
			run.Statics = append(run.Statics, StaticObservation{
				At: s.Now, Msg: msg, Corrupted: corrupted, BadField: badField,
			})
		}

		// 5. Radar contacts.
		if cfg.RadarRangeM > 0 && s.Now.Sub(lastRadar) >= cfg.RadarPeriod {
			lastRadar = s.Now
			n := cfg.NumRadar
			if n > len(cfg.World.Ports) {
				n = len(cfg.World.Ports)
			}
			for st := 0; st < n; st++ {
				sp := cfg.World.Ports[st].Pos
				for _, v := range fleet {
					if geo.Distance(v.Pos, sp) > cfg.RadarRangeM {
						continue
					}
					run.Radar = append(run.Radar, RadarContact{
						At:       s.Now,
						Pos:      noisyPoint(rng, v.Pos, cfg.RadarNoiseM),
						Station:  st,
						TrueMMSI: v.MMSI,
					})
				}
			}
		}

		s.Now = s.Now.Add(tick)
	}
	return run, nil
}

// reportInterval returns the SOLAS-style reporting cadence for the
// vessel's class and speed, with jitter.
func reportInterval(v *Vessel, rng *rand.Rand) time.Duration {
	var base time.Duration
	if v.Class == ClassB {
		base = 30 * time.Second
	} else {
		switch {
		case v.Status == ais.StatusMoored || v.Status == ais.StatusAtAnchor:
			base = 3 * time.Minute
		case v.SpeedKn < 14:
			base = 10 * time.Second
		case v.SpeedKn < 23:
			base = 6 * time.Second
		default:
			base = 2 * time.Second
		}
	}
	jitter := time.Duration((rng.Float64()*0.2 - 0.1) * float64(base))
	return base + jitter
}

// buildReport constructs the transmitted position report, applying GPS
// noise and any active spoofing directive.
func (s *Simulator) buildReport(v *Vessel, d *directive, gpsNoise float64) ais.PositionReport {
	pos := noisyPoint(s.rng, v.Pos, gpsNoise)
	mmsi := v.MMSI
	if d != nil {
		switch d.kind {
		case EventSpoofOffset:
			pos = geo.Destination(pos, d.offsetBrg, d.offsetM)
		case EventSpoofIdentity:
			mmsi = d.fakeMMSI
		}
	}
	t := ais.TypePositionA
	if v.Class == ClassB {
		t = ais.TypePositionB
	}
	return ais.PositionReport{
		Type:      t,
		MMSI:      mmsi,
		Status:    v.Status,
		SpeedKn:   quantize(v.SpeedKn, 0.1),
		Accuracy:  true,
		Position:  pos,
		CourseDeg: quantize(v.CourseDeg, 0.1),
		Heading:   int(v.CourseDeg+0.5) % 360,
		Second:    s.Now.Second(),
	}
}

// Static-data field names for corruption ground truth (E3).
const (
	BadFieldMMSI     = "mmsi"
	BadFieldName     = "name"
	BadFieldDims     = "dimensions"
	BadFieldShipType = "ship_type"
	BadFieldCallSign = "call_sign"
)

// buildStatic constructs the transmitted static message, corrupting one
// field with probability errRate — the ~5% static-data error profile [44].
func (s *Simulator) buildStatic(v *Vessel, errRate float64) (msg ais.StaticVoyage, corrupted bool, badField string) {
	msg = ais.StaticVoyage{
		MMSI:     v.MMSI,
		IMO:      v.IMO,
		CallSign: v.CallSign,
		ShipName: v.Name,
		ShipType: v.Type,
		DimBow:   int(v.LengthM * 0.6),
		DimStern: int(v.LengthM * 0.4),
		DimPort:  int(v.BeamM * 0.5),
		DimStarb: int(v.BeamM * 0.5),
		Draught:  v.Draught,
	}
	if s.rng.Float64() >= errRate {
		return msg, false, ""
	}
	switch s.rng.Intn(5) {
	case 0: // invalid MMSI (fat-fingered configuration)
		msg.MMSI = uint32(s.rng.Intn(199999999))
		badField = BadFieldMMSI
	case 1: // blank or junk name
		if s.rng.Float64() < 0.5 {
			msg.ShipName = ""
		} else {
			msg.ShipName = "NONAME"
		}
		badField = BadFieldName
	case 2: // absurd dimensions
		msg.DimBow = 500
		msg.DimStern = 511
		badField = BadFieldDims
	case 3: // type zero (unknown)
		msg.ShipType = ais.ShipTypeUnknown
		badField = BadFieldShipType
	default: // empty call sign
		msg.CallSign = ""
		badField = BadFieldCallSign
	}
	return msg, true, badField
}

// receive runs the receiver model: terrestrial reception when within range
// of any station, satellite reception when a swath covers the position.
func (s *Simulator) receive(cfg *Config, p geo.Point) (terrestrial, satellite bool) {
	for _, st := range cfg.World.Stations {
		if geo.Distance(p, st) <= cfg.TerrestrialRangeM {
			if s.rng.Float64() >= cfg.TerrestrialLoss {
				terrestrial = true
			}
			break
		}
	}
	if s.satCovered(cfg, p) && s.rng.Float64() >= cfg.SatLoss {
		satellite = true
	}
	return terrestrial, satellite
}

// satCovered models SatCount polar-orbit satellites whose coverage swaths
// sweep westward in longitude with the given period: bursty, gappy
// coverage like real satellite AIS.
func (s *Simulator) satCovered(cfg *Config, p geo.Point) bool {
	if cfg.SatCount == 0 {
		return false
	}
	elapsed := s.Now.Sub(cfg.Start).Seconds()
	period := cfg.SatPeriod.Seconds()
	for k := 0; k < cfg.SatCount; k++ {
		phase := float64(k) / float64(cfg.SatCount)
		centre := math.Mod(-360*(elapsed/period+phase), 360)
		diff := math.Abs(geo.NormalizeLon(p.Lon - centre))
		if diff <= cfg.SatSwathDeg {
			return true
		}
	}
	return false
}

func noisyPoint(rng *rand.Rand, p geo.Point, sigmaM float64) geo.Point {
	if sigmaM <= 0 {
		return p
	}
	return geo.Destination(p, rng.Float64()*360, math.Abs(rng.NormFloat64())*sigmaM)
}

func quantize(v, step float64) float64 {
	return math.Round(v/step) * step
}
