package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/va"
	"repro/internal/weather"
)

func runScenario(t *testing.T, cfg sim.Config) *sim.Run {
	t.Helper()
	run, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func feed(p *Pipeline, run *sim.Run) {
	for i := range run.Positions {
		obs := &run.Positions[i]
		p.Ingest(obs.At, &obs.Report)
	}
	for i := range run.Statics {
		so := &run.Statics[i]
		p.IngestStatic(so.At, &so.Msg)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	simCfg := sim.Config{Seed: 5, NumVessels: 80, Duration: 2 * time.Hour, TickSec: 2}
	simCfg.DefaultAnomalyRates()
	run := runScenario(t, simCfg)

	p := New(Config{
		Zones:              run.Config.World.Zones,
		SynopsisToleranceM: 60,
	})
	feed(p, run)

	snap := p.Metrics.Snapshot()
	if snap.Ingested == 0 || snap.Ingested != int64(len(run.Positions)) {
		t.Fatalf("ingested %d of %d", snap.Ingested, len(run.Positions))
	}
	if snap.Archived == 0 || snap.Archived >= snap.Ingested {
		t.Fatalf("synopsis filter pass-through: %d of %d", snap.Archived, snap.Ingested)
	}
	if ratio := p.CompressionRatio(); ratio < 0.3 {
		t.Errorf("compression ratio %.2f suspiciously low", ratio)
	}
	if p.Live.Count() == 0 {
		t.Error("live picture empty")
	}
	if p.Store.VesselCount() == 0 {
		t.Error("archive empty")
	}
	if snap.Alerts == 0 {
		t.Error("no alerts despite injected anomalies")
	}
	if snap.StaticChecked != int64(len(run.Statics)) {
		t.Errorf("static checked %d of %d", snap.StaticChecked, len(run.Statics))
	}
}

func TestPipelineDetectsInjectedDarkness(t *testing.T) {
	simCfg := sim.Config{
		Seed: 9, NumVessels: 100, Duration: 3 * time.Hour, TickSec: 2,
		DarkShipFrac: 0.27, DarkTimeFrac: 0.12,
	}
	run := runScenario(t, simCfg)
	p := New(Config{Zones: run.Config.World.Zones, DarkThreshold: 10 * time.Minute})
	feed(p, run)

	var truths []events.TruthWindow
	for _, e := range run.Events {
		truths = append(truths, events.TruthWindow{
			Kind: events.Kind(e.Kind), MMSI: e.MMSI, Other: e.Other,
			Start: e.Start, End: e.End,
		})
	}
	r := events.Score(events.KindDark, p.Alerts(), truths, 5*time.Minute)
	if r.Truth == 0 {
		t.Skip("no dark events with this seed")
	}
	if r.Recall < 0.6 {
		t.Errorf("dark recall %.2f (tp=%d fn=%d)", r.Recall, r.TP, r.FN)
	}
	t.Logf("dark: truth=%d alerts=%d precision=%.2f recall=%.2f", r.Truth, r.Alerts, r.Precision, r.Recall)
}

func TestPipelineSituationAndForecast(t *testing.T) {
	simCfg := sim.Config{Seed: 11, NumVessels: 60, Duration: 2 * time.Hour, TickSec: 2}
	run := runScenario(t, simCfg)
	p := New(Config{Zones: run.Config.World.Zones})
	feed(p, run)

	end := run.Config.Start.Add(run.Config.Duration)
	s := p.Situation(end, run.Config.World.Bounds, 10, 20)
	if len(s.Vessels) == 0 {
		t.Fatal("situation sees no vessels")
	}
	if s.Density.Total != len(s.Vessels) {
		t.Errorf("density total %d vs vessels %d", s.Density.Total, len(s.Vessels))
	}

	if n := p.TrainForecaster(0.05); n == 0 {
		t.Fatal("forecaster trained on nothing")
	}
	// Forecast every vessel 30 minutes out: predictions must be finite
	// and within plausible reach.
	horizon := 30 * time.Minute
	ok := 0
	for _, mmsi := range p.Store.MMSIs() {
		pred, good := p.Forecast(mmsi, horizon)
		if !good {
			continue
		}
		ok++
		last, _ := p.Live.Get(mmsi)
		maxReach := 40 * geo.Knot * horizon.Seconds()
		if d := geo.Distance(last.Pos, pred); d > maxReach {
			t.Fatalf("vessel %d forecast %.0f m away (max reach %.0f)", mmsi, d, maxReach)
		}
	}
	if ok == 0 {
		t.Error("no forecasts produced")
	}
}

func TestPipelineEnrichment(t *testing.T) {
	world := sim.MediterraneanWorld(1)
	pv := weather.NewProvider()
	f := weather.AnalyticField{Base: 8, Amplitude: 3, WaveLatDeg: 6, WaveLonDeg: 9, Period: 6 * time.Hour}
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	pv.Add(f.BuildSeries(weather.WindSpeedMS, world.Bounds, 0.5, t0, time.Hour, 6))

	p := New(Config{Zones: world.Zones, Weather: pv})
	// A point inside the Marseille port zone.
	e := p.Enrich(geo.Point{Lat: 43.30, Lon: 5.37}, t0.Add(90*time.Minute))
	foundPort := false
	for _, id := range e.ZoneIDs {
		if id == "port-MRS" {
			foundPort = true
		}
	}
	if !foundPort {
		t.Errorf("port zone not found in enrichment: %v", e.ZoneIDs)
	}
	if _, ok := e.Values[weather.WindSpeedMS]; !ok {
		t.Error("weather variable missing from enrichment")
	}
}

func TestPipelineRejectsPositionlessReports(t *testing.T) {
	p := New(Config{})
	rep := &ais.PositionReport{
		MMSI:     227000001,
		Position: geo.Point{Lat: ais.LatNotAvailable, Lon: ais.LonNotAvailable},
	}
	p.Ingest(time.Now(), rep)
	snap := p.Metrics.Snapshot()
	if snap.Rejected != 1 || snap.Archived != 0 {
		t.Errorf("positionless report handling: %+v", snap)
	}
}

func TestPipelineConcurrentIngest(t *testing.T) {
	simCfg := sim.Config{Seed: 3, NumVessels: 40, Duration: time.Hour, TickSec: 2}
	run := runScenario(t, simCfg)
	p := New(Config{Zones: run.Config.World.Zones})
	var wg sync.WaitGroup
	chunk := (len(run.Positions) + 3) / 4
	for w := 0; w < 4; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(run.Positions) {
			hi = len(run.Positions)
		}
		wg.Add(1)
		go func(obs []sim.Observation) {
			defer wg.Done()
			for i := range obs {
				p.Ingest(obs[i].At, &obs[i].Report)
			}
		}(run.Positions[lo:hi])
	}
	wg.Wait()
	if got := p.Metrics.Snapshot().Ingested; got != int64(len(run.Positions)) {
		t.Errorf("concurrent ingest lost messages: %d of %d", got, len(run.Positions))
	}
}

func TestShardedMatchesSingleOnPerVesselMetrics(t *testing.T) {
	simCfg := sim.Config{Seed: 13, NumVessels: 60, Duration: time.Hour, TickSec: 2}
	run := runScenario(t, simCfg)

	single := New(Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60})
	sharded := NewSharded(Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60}, 4)
	for i := range run.Positions {
		obs := &run.Positions[i]
		single.Ingest(obs.At, &obs.Report)
		sharded.Ingest(obs.At, &obs.Report)
	}
	ss := single.Metrics.Snapshot()
	hs := sharded.Snapshot()
	if ss.Ingested != hs.Ingested {
		t.Errorf("ingested differ: %d vs %d", ss.Ingested, hs.Ingested)
	}
	// Per-vessel stages are shard-independent: archived counts match.
	if ss.Archived != hs.Archived {
		t.Errorf("archived differ: %d vs %d", ss.Archived, hs.Archived)
	}
}

// TestShardedSituationMatchesSinglePipeline pins the Sharded.Situation
// merge: over the same input, the sharded operational picture — density
// grid, live vessel set, per-vessel alert board — equals a single
// pipeline's. Pairwise detectors are shard-local by design (DESIGN.md
// trade-off), so the comparison runs the per-vessel detector battery
// only; the grid and vessel equality below is what the merge must
// guarantee regardless.
func TestShardedSituationMatchesSinglePipeline(t *testing.T) {
	simCfg := sim.Config{Seed: 23, NumVessels: 50, Duration: 30 * time.Minute, TickSec: 2}
	simCfg.DefaultAnomalyRates()
	run := runScenario(t, simCfg)

	cfg := Config{Zones: run.Config.World.Zones}
	single := New(cfg)
	for _, shards := range []int{2, 4, 7} {
		sharded := NewSharded(cfg, shards)
		for i := range run.Positions {
			obs := &run.Positions[i]
			if shards == 2 { // feed the single pipeline once
				single.Ingest(obs.At, &obs.Report)
			}
			sharded.Ingest(obs.At, &obs.Report)
		}
		at := run.Positions[len(run.Positions)-1].At
		bounds := run.Config.World.Bounds
		want := single.Situation(at, bounds, 10, 30)
		got := sharded.Situation(at, bounds, 10, 30)

		if got.Density.Total != want.Density.Total || got.Density.MaxBin != want.Density.MaxBin {
			t.Fatalf("%d shards: density total/max %d/%d, want %d/%d",
				shards, got.Density.Total, got.Density.MaxBin, want.Density.Total, want.Density.MaxBin)
		}
		for i := range want.Density.Counts {
			if got.Density.Counts[i] != want.Density.Counts[i] {
				t.Fatalf("%d shards: density bin %d = %d, want %d",
					shards, i, got.Density.Counts[i], want.Density.Counts[i])
			}
		}
		if len(got.Vessels) != len(want.Vessels) {
			t.Fatalf("%d shards: %d vessels, want %d", shards, len(got.Vessels), len(want.Vessels))
		}
		wantVessels := map[uint32]time.Time{}
		for _, v := range want.Vessels {
			wantVessels[v.MMSI] = v.At
		}
		for _, v := range got.Vessels {
			at, ok := wantVessels[v.MMSI]
			if !ok || !at.Equal(v.At) {
				t.Fatalf("%d shards: vessel %d state diverges from single pipeline", shards, v.MMSI)
			}
		}
		// Per-vessel alerts are shard-independent; compare them as a
		// multiset, ignoring the shard-local pairwise kinds.
		pairwise := map[string]bool{
			string(events.KindRendezvous):    true,
			string(events.KindCollisionRisk): true,
		}
		count := func(alerts []va.SituationAlert) map[string]int {
			m := map[string]int{}
			for _, a := range alerts {
				if pairwise[a.Kind] {
					continue
				}
				m[fmt.Sprintf("%s|%s|%d", a.Kind, a.At.Format(time.RFC3339Nano), a.MMSI)]++
			}
			return m
		}
		gc, wc := count(got.Alerts), count(want.Alerts)
		if len(gc) != len(wc) {
			t.Fatalf("%d shards: %d distinct per-vessel alerts, want %d", shards, len(gc), len(wc))
		}
		for k, n := range wc {
			if gc[k] != n {
				t.Fatalf("%d shards: alert %s count %d, want %d", shards, k, gc[k], n)
			}
		}
	}
}

func TestShardedRouting(t *testing.T) {
	s := NewSharded(Config{}, 3)
	seen := map[int]bool{}
	for mmsi := uint32(201000000); mmsi < 201000300; mmsi++ {
		idx := s.ShardIndex(mmsi)
		if idx != stream.ShardOf(uint64(mmsi), 3) {
			t.Fatalf("ShardIndex(%d) = %d, disagrees with stream.ShardOf", mmsi, idx)
		}
		if s.ShardFor(mmsi) != s.Shards[idx] {
			t.Fatalf("ShardFor(%d) inconsistent with ShardIndex", mmsi)
		}
		if s.ShardFor(mmsi) != s.ShardFor(mmsi) {
			t.Fatalf("routing for %d not stable", mmsi)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Errorf("300 consecutive MMSIs hit only %d of 3 shards", len(seen))
	}
}

func BenchmarkPipelineIngest(b *testing.B) {
	simCfg := sim.Config{Seed: 2, NumVessels: 200, Duration: time.Hour, TickSec: 2}
	run, err := sim.Simulate(simCfg)
	if err != nil {
		b.Fatal(err)
	}
	p := New(Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := &run.Positions[i%len(run.Positions)]
		p.Ingest(obs.At, &obs.Report)
	}
}
