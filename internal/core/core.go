// Package core assembles the integrated maritime information
// infrastructure of the paper's Figure 2: in-situ stream processing of
// position reports through quality assessment, trajectory reconstruction
// and synopsis computation, archival and live storage, contextual
// enrichment, complex event recognition, trajectory forecasting and
// situation assembly — one configurable pipeline with per-stage metrics.
//
// A Pipeline is fed decoded AIS messages (or NMEA lines via the codec) in
// event-time order per vessel and exposes the live picture, the archive,
// the alert stream and forecasts. For multi-core scaling, a Sharded
// pipeline partitions the fleet by MMSI across independent pipelines
// (pairwise detection then happens per shard; the E5 bench quantifies the
// throughput gain and DESIGN.md records the cross-shard trade-off).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ais"
	"repro/internal/events"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/quality"
	"repro/internal/stream"
	"repro/internal/synopsis"
	"repro/internal/tstore"
	"repro/internal/va"
	"repro/internal/weather"
	"repro/internal/zones"
)

// Config parameterises a pipeline.
type Config struct {
	// Zones provides geographic context (nil disables zone-aware stages).
	Zones *zones.ZoneSet
	// Weather provides environmental enrichment (nil disables it).
	Weather *weather.Provider
	// SynopsisToleranceM controls the dead-reckoning synopsis filter that
	// decides which positions reach the archive; 0 archives everything.
	SynopsisToleranceM float64
	// SynopsisMaxGap forces an archive point after this long regardless of
	// deviation (default 3 min when synopses are on).
	SynopsisMaxGap time.Duration
	// DarkThreshold configures the dark-period detector (default 10 min).
	DarkThreshold time.Duration
	// DisableQuality skips the veracity stage (ablation).
	DisableQuality bool
	// DisableEvents skips event recognition (ablation).
	DisableEvents bool
}

// Metrics counts pipeline activity; all fields are atomic and safe to
// read while the pipeline runs.
type Metrics struct {
	Ingested      atomic.Int64
	Rejected      atomic.Int64 // failed veracity hard checks
	Archived      atomic.Int64 // survived the synopsis filter
	Alerts        atomic.Int64
	StaticChecked atomic.Int64
	StaticFlagged atomic.Int64

	// Per-stage cumulative nanoseconds.
	NsQuality  atomic.Int64
	NsSynopsis atomic.Int64
	NsStore    atomic.Int64
	NsEvents   atomic.Int64
	NsEnrich   atomic.Int64
}

// Snapshot is a plain copy of the metrics.
type Snapshot struct {
	Ingested, Rejected, Archived, Alerts     int64
	StaticChecked, StaticFlagged             int64
	NsQuality, NsSynopsis, NsStore, NsEvents int64
	NsEnrich                                 int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Ingested: m.Ingested.Load(), Rejected: m.Rejected.Load(),
		Archived: m.Archived.Load(), Alerts: m.Alerts.Load(),
		StaticChecked: m.StaticChecked.Load(), StaticFlagged: m.StaticFlagged.Load(),
		NsQuality: m.NsQuality.Load(), NsSynopsis: m.NsSynopsis.Load(),
		NsStore: m.NsStore.Load(), NsEvents: m.NsEvents.Load(),
		NsEnrich: m.NsEnrich.Load(),
	}
}

// Pipeline is one instance of the integrated infrastructure. Ingest is
// safe for concurrent use (internally serialised); use Sharded for
// parallel scaling.
type Pipeline struct {
	cfg Config

	mu          sync.Mutex
	Store       *tstore.Store
	Live        *tstore.Live
	Engine      *events.Engine
	Patterns    *events.PatternEngine
	Quality     *quality.Profile
	compressors map[uint32]*synopsis.StreamingCompressor
	checkers    map[uint32]*quality.KinematicChecker
	alerts      []events.Alert

	forecaster *forecast.Hybrid

	Metrics Metrics
}

// New builds a pipeline with the full detector battery wired in.
func New(cfg Config) *Pipeline {
	if cfg.DarkThreshold == 0 {
		cfg.DarkThreshold = 10 * time.Minute
	}
	if cfg.SynopsisToleranceM > 0 && cfg.SynopsisMaxGap == 0 {
		cfg.SynopsisMaxGap = 3 * time.Minute
	}
	ctx := &events.Context{Zones: cfg.Zones}
	engine := events.NewEngine(ctx, 0.1)
	for _, d := range events.DefaultDetectors() {
		if dd, ok := d.(*events.DarkDetector); ok {
			dd.Threshold = cfg.DarkThreshold
		}
		engine.Register(d)
	}
	for _, d := range events.DefaultPairDetectors() {
		engine.RegisterPair(d)
	}
	pe := events.NewPatternEngine(ctx)
	pe.Register(events.SmugglingRunPattern(4 * time.Hour))

	return &Pipeline{
		cfg:         cfg,
		Store:       tstore.New(),
		Live:        tstore.NewLive(0.25),
		Engine:      engine,
		Patterns:    pe,
		Quality:     quality.NewProfile(),
		compressors: make(map[uint32]*synopsis.StreamingCompressor),
		checkers:    make(map[uint32]*quality.KinematicChecker),
	}
}

// TimedReport pairs a position report with its receive timestamp — the
// unit of batched ingest.
type TimedReport struct {
	At  time.Time
	Rep *ais.PositionReport
	// Arrived is the wall-clock submission instant, stamped on a sampled
	// subset of reports when the ingest engine is instrumented so the
	// shard-queue wait can be measured without a clock read per message.
	// Zero on unsampled reports; never serialised.
	Arrived time.Time
}

// Ingest runs one position report through every stage and returns the
// alerts it raised.
func (p *Pipeline) Ingest(at time.Time, rep *ais.PositionReport) []events.Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ingestLocked(at, rep)
}

// IngestBatch runs a batch of reports through the pipeline under a single
// lock acquisition, amortising the per-call synchronisation overhead that
// dominates when a high-rate feed is funnelled through Ingest one message
// at a time. Reports are processed in slice order; the returned alerts are
// the concatenation of the per-report alert slices.
func (p *Pipeline) IngestBatch(batch []TimedReport) []events.Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []events.Alert
	for _, tr := range batch {
		out = append(out, p.ingestLocked(tr.At, tr.Rep)...)
	}
	return out
}

// ingestLocked is the stage sequence of Ingest; p.mu must be held.
func (p *Pipeline) ingestLocked(at time.Time, rep *ais.PositionReport) []events.Alert {
	p.Metrics.Ingested.Add(1)
	s := model.FromReport(at, rep)

	// Stage 1 — veracity. Hard failures (no usable position) reject the
	// message; soft issues only depress the vessel's reliability profile.
	if !p.cfg.DisableQuality {
		t0 := time.Now()
		if !rep.HasPosition() {
			p.Metrics.Rejected.Add(1)
			p.Metrics.NsQuality.Add(time.Since(t0).Nanoseconds())
			return nil
		}
		ck, ok := p.checkers[s.MMSI]
		if !ok {
			ck = &quality.KinematicChecker{}
			p.checkers[s.MMSI] = ck
		}
		issues := ck.Check(s)
		p.Quality.Record(subjectOf(s.MMSI), len(issues) == 0)
		p.Metrics.NsQuality.Add(time.Since(t0).Nanoseconds())
	}

	// Stage 2 — live picture (always full rate).
	t0 := time.Now()
	p.Live.Update(s)
	p.Metrics.NsStore.Add(time.Since(t0).Nanoseconds())

	// Stage 3 — synopsis filter decides what the archive keeps.
	t0 = time.Now()
	archive := true
	if p.cfg.SynopsisToleranceM > 0 {
		sc, ok := p.compressors[s.MMSI]
		if !ok {
			sc = &synopsis.StreamingCompressor{
				ToleranceM: p.cfg.SynopsisToleranceM,
				MaxGap:     p.cfg.SynopsisMaxGap,
			}
			p.compressors[s.MMSI] = sc
		}
		_, archive = sc.Push(s)
	}
	p.Metrics.NsSynopsis.Add(time.Since(t0).Nanoseconds())
	if archive {
		t0 = time.Now()
		p.Store.Append(s)
		p.Metrics.Archived.Add(1)
		p.Metrics.NsStore.Add(time.Since(t0).Nanoseconds())
	}

	// Stage 4 — event recognition (detectors + sequence patterns).
	var alerts []events.Alert
	if !p.cfg.DisableEvents {
		t0 = time.Now()
		alerts = append(alerts, p.Engine.Process(s)...)
		alerts = append(alerts, p.Patterns.Process(s)...)
		p.Metrics.NsEvents.Add(time.Since(t0).Nanoseconds())
		if len(alerts) > 0 {
			p.alerts = append(p.alerts, alerts...)
			p.Metrics.Alerts.Add(int64(len(alerts)))
		}
	}
	return alerts
}

// IngestStatic runs a static/voyage message through the veracity stage.
func (p *Pipeline) IngestStatic(at time.Time, msg *ais.StaticVoyage) []quality.Issue {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Metrics.StaticChecked.Add(1)
	issues := quality.CheckStatic(msg)
	if len(issues) > 0 {
		p.Metrics.StaticFlagged.Add(1)
	}
	p.Quality.Record(subjectOf(msg.MMSI), len(issues) == 0)
	return issues
}

func subjectOf(mmsi uint32) string { return fmt.Sprintf("vessel/%d", mmsi) }

// Alerts returns all alerts raised so far (copy).
func (p *Pipeline) Alerts() []events.Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]events.Alert(nil), p.alerts...)
}

// Enrich annotates a vessel state with its zone and weather context — the
// §2.5 multi-granularity join, exposed for per-alert enrichment and used
// by the enrichment benchmark (E7).
type Enrichment struct {
	ZoneIDs []string
	Values  map[weather.Variable]float64
}

// Enrich computes the contextual annotation of (pos, at).
func (p *Pipeline) Enrich(pos geo.Point, at time.Time) Enrichment {
	t0 := time.Now()
	defer func() { p.Metrics.NsEnrich.Add(time.Since(t0).Nanoseconds()) }()
	e := Enrichment{Values: make(map[weather.Variable]float64)}
	if p.cfg.Zones != nil {
		for _, z := range p.cfg.Zones.At(pos) {
			e.ZoneIDs = append(e.ZoneIDs, z.ID)
		}
	}
	if p.cfg.Weather != nil {
		for _, v := range p.cfg.Weather.Variables() {
			if val, err := p.cfg.Weather.Sample(v, pos, at); err == nil {
				e.Values[v] = val
			}
		}
	}
	return e
}

// TrainForecaster fits the patterns-of-life route model on the archive
// accumulated so far and installs a hybrid forecaster.
func (p *Pipeline) TrainForecaster(cellDeg float64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	rm := forecast.NewRouteModel(cellDeg)
	for _, mmsi := range p.Store.MMSIs() {
		rm.Train(p.Store.Trajectory(mmsi))
	}
	p.forecaster = &forecast.Hybrid{Route: rm, Fallback: forecast.Kalman{}}
	return rm.Trained()
}

// Forecast predicts the vessel's position at now+horizon using the
// trained hybrid (dead reckoning before TrainForecaster is called).
func (p *Pipeline) Forecast(mmsi uint32, horizon time.Duration) (geo.Point, bool) {
	p.mu.Lock()
	f := p.forecaster
	p.mu.Unlock()
	tr := p.Store.Trajectory(mmsi)
	if f == nil {
		return forecast.DeadReckoning{}.Predict(tr, horizon)
	}
	return f.Predict(tr, horizon)
}

// Situation assembles the current operational picture over the given
// bounds (§3.2): live vessel states, density surface and the alert board.
func (p *Pipeline) Situation(at time.Time, bounds geo.Rect, rows, cols int) *va.Situation {
	vessels := p.Live.InRect(bounds)
	var alerts []va.SituationAlert
	for _, a := range p.Alerts() {
		alerts = append(alerts, va.SituationAlert{
			At: a.At, Kind: string(a.Kind), MMSI: a.MMSI,
			Where: a.Where, Severity: a.Severity, Note: a.Note,
		})
	}
	return va.BuildSituation(at, bounds, vessels, alerts, rows, cols)
}

// CompressionRatio reports the archive-side synopsis ratio achieved so
// far: 1 − archived/ingested (0 when synopses are disabled).
func (p *Pipeline) CompressionRatio() float64 {
	in := p.Metrics.Ingested.Load()
	ar := p.Metrics.Archived.Load()
	if in == 0 || p.cfg.SynopsisToleranceM == 0 {
		return 0
	}
	return 1 - float64(ar)/float64(in)
}

// --- sharded scaling -------------------------------------------------------------

// Sharded partitions the fleet across n independent pipelines by MMSI:
// per-vessel stages scale linearly; pairwise detection happens within a
// shard only (vessels of a pair usually co-locate in a shard only by
// luck, so pairwise detectors should run on a dedicated shard count of 1
// when cross-vessel recall matters more than throughput).
//
// Sharded is the shard container; its Ingest/IngestBatch route on the
// caller's goroutine. The asynchronous, backpressure-aware ingest path —
// decode workers, per-shard goroutines with bounded queues, merged alert
// output — lives in internal/ingest, which drives a Sharded underneath.
// Routing uses the same key hash as stream.Partition (stream.ShardOf), so
// synchronous calls and the async engine agree on shard placement.
type Sharded struct {
	Shards []*Pipeline
}

// NewSharded builds n pipelines with the same configuration.
func NewSharded(cfg Config, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{}
	for i := 0; i < n; i++ {
		s.Shards = append(s.Shards, New(cfg))
	}
	return s
}

// ShardIndex returns the shard index responsible for the vessel — the
// stream.Partition hash, shared with the internal/ingest engine.
func (s *Sharded) ShardIndex(mmsi uint32) int {
	return stream.ShardOf(uint64(mmsi), len(s.Shards))
}

// ShardFor returns the pipeline responsible for the vessel.
func (s *Sharded) ShardFor(mmsi uint32) *Pipeline {
	return s.Shards[s.ShardIndex(mmsi)]
}

// Ingest routes the report to its shard.
func (s *Sharded) Ingest(at time.Time, rep *ais.PositionReport) []events.Alert {
	return s.ShardFor(rep.MMSI).Ingest(at, rep)
}

// IngestBatch groups the batch per shard (preserving slice order within
// each group) and runs one IngestBatch per touched shard, so a caller
// holding a burst of reports pays one lock acquisition per shard instead
// of one per message.
func (s *Sharded) IngestBatch(batch []TimedReport) []events.Alert {
	if len(s.Shards) == 1 {
		return s.Shards[0].IngestBatch(batch)
	}
	groups := make(map[int][]TimedReport, len(s.Shards))
	for _, tr := range batch {
		idx := s.ShardIndex(tr.Rep.MMSI)
		groups[idx] = append(groups[idx], tr)
	}
	var out []events.Alert
	for i := range s.Shards {
		if g := groups[i]; len(g) > 0 {
			out = append(out, s.Shards[i].IngestBatch(g)...)
		}
	}
	return out
}

// Alerts merges all shards' alerts, time-ordered.
func (s *Sharded) Alerts() []events.Alert {
	var out []events.Alert
	for _, p := range s.Shards {
		out = append(out, p.Alerts()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// CompressionRatio reports the archive-side synopsis ratio across all
// shards — the Pipeline.CompressionRatio definition over summed counters.
func (s *Sharded) CompressionRatio() float64 {
	var in, ar int64
	for _, p := range s.Shards {
		in += p.Metrics.Ingested.Load()
		ar += p.Metrics.Archived.Load()
	}
	if in == 0 || s.Shards[0].cfg.SynopsisToleranceM == 0 {
		return 0
	}
	return 1 - float64(ar)/float64(in)
}

// LiveCount sums the shards' live pictures.
func (s *Sharded) LiveCount() int {
	n := 0
	for _, p := range s.Shards {
		n += p.Live.Count()
	}
	return n
}

// Situation assembles the operational picture across every shard: the
// merged live layer plus the combined alert board, aggregated exactly as
// a single pipeline's Situation would be.
func (s *Sharded) Situation(at time.Time, bounds geo.Rect, rows, cols int) *va.Situation {
	var vessels []model.VesselState
	for _, p := range s.Shards {
		vessels = append(vessels, p.Live.InRect(bounds)...)
	}
	var alerts []va.SituationAlert
	for _, a := range s.Alerts() {
		alerts = append(alerts, va.SituationAlert{
			At: a.At, Kind: string(a.Kind), MMSI: a.MMSI,
			Where: a.Where, Severity: a.Severity, Note: a.Note,
		})
	}
	return va.BuildSituation(at, bounds, vessels, alerts, rows, cols)
}

// Snapshot sums the shards' metrics.
func (s *Sharded) Snapshot() Snapshot {
	var total Snapshot
	for _, p := range s.Shards {
		sn := p.Metrics.Snapshot()
		total.Ingested += sn.Ingested
		total.Rejected += sn.Rejected
		total.Archived += sn.Archived
		total.Alerts += sn.Alerts
		total.StaticChecked += sn.StaticChecked
		total.StaticFlagged += sn.StaticFlagged
		total.NsQuality += sn.NsQuality
		total.NsSynopsis += sn.NsSynopsis
		total.NsStore += sn.NsStore
		total.NsEvents += sn.NsEvents
		total.NsEnrich += sn.NsEnrich
	}
	return total
}
