package va

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

var bounds = geo.Rect{MinLat: 30, MinLon: -6, MaxLat: 46, MaxLon: 36}

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func TestDensityBinning(t *testing.T) {
	d := NewDensity(bounds, 8, 16)
	d.Add(geo.Point{Lat: 38, Lon: 15})
	d.Add(geo.Point{Lat: 38, Lon: 15})
	d.Add(geo.Point{Lat: 31, Lon: -5})
	d.Add(geo.Point{Lat: 90, Lon: 170}) // outside: dropped
	if d.Total != 3 {
		t.Errorf("total %d", d.Total)
	}
	if d.MaxBin != 2 {
		t.Errorf("max bin %d", d.MaxBin)
	}
	if d.NonEmptyBins() != 2 {
		t.Errorf("non-empty bins %d", d.NonEmptyBins())
	}
	if d.CoverageFraction() <= 0 || d.CoverageFraction() > 1 {
		t.Errorf("coverage %f", d.CoverageFraction())
	}
}

func TestDensityEdgesClamped(t *testing.T) {
	d := NewDensity(bounds, 4, 8)
	// Exactly on the max corner must clamp into the last bin, not panic.
	d.Add(geo.Point{Lat: bounds.MaxLat, Lon: bounds.MaxLon})
	if d.Total != 1 {
		t.Error("corner point dropped")
	}
	if d.At(3, 7) != 1 {
		t.Error("corner point not in last bin")
	}
}

func TestDensityRender(t *testing.T) {
	d := NewDensity(bounds, 4, 8)
	for i := 0; i < 50; i++ {
		d.Add(geo.Point{Lat: 38, Lon: 15})
	}
	d.Add(geo.Point{Lat: 31, Lon: -5})
	out := d.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d rows", len(lines))
	}
	for _, l := range lines {
		if len(l) != 8 {
			t.Fatalf("row width %d", len(l))
		}
	}
	if !strings.Contains(out, "@") {
		t.Error("hottest bin should render as @")
	}
	// An empty surface renders all blanks without dividing by zero.
	empty := NewDensity(bounds, 2, 2).Render()
	if strings.Trim(empty, " \n") != "" {
		t.Error("empty density should render blank")
	}
}

func TestMultiScaleDensity(t *testing.T) {
	pts := []geo.Point{{Lat: 38, Lon: 15}, {Lat: 39, Lon: 16}, {Lat: 43, Lon: 5}}
	levels := MultiScaleDensity(bounds, []int{4, 16, 64}, pts)
	if len(levels) != 3 {
		t.Fatal("level count")
	}
	for _, d := range levels {
		if d.Total != 3 {
			t.Errorf("level lost points: %d", d.Total)
		}
	}
	// Finer levels spread the same points over at least as many bins.
	if levels[2].NonEmptyBins() < levels[0].NonEmptyBins() {
		t.Error("finer level should have >= occupied bins")
	}
}

func TestFlowMatrix(t *testing.T) {
	f := NewFlowMatrix()
	f.Add("MRS", "GOA")
	f.Add("MRS", "GOA")
	f.Add("GOA", "MRS")
	f.Add("MRS", "BCN")
	f.Add("MRS", "MRS") // self-flow ignored
	f.Add("", "GOA")    // blank ignored
	if f.Len() != 3 {
		t.Fatalf("distinct flows %d", f.Len())
	}
	top := f.Top(2)
	if len(top) != 2 || top[0].From != "MRS" || top[0].To != "GOA" || top[0].Count != 2 {
		t.Errorf("top flows: %+v", top)
	}
	// Deterministic tie-break.
	a := f.Top(3)
	b := f.Top(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Top not deterministic")
		}
	}
}

func TestTimeHistogram(t *testing.T) {
	h := NewTimeHistogram(t0(), time.Hour, 24)
	h.Add(t0().Add(30 * time.Minute))
	h.Add(t0().Add(90 * time.Minute))
	h.Add(t0().Add(95 * time.Minute))
	h.Add(t0().Add(-time.Hour))     // before: dropped
	h.Add(t0().Add(25 * time.Hour)) // after: dropped
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Errorf("buckets: %v", h.Counts[:3])
	}
	pi, pc := h.Peak()
	if pi != 1 || pc != 2 {
		t.Errorf("peak %d/%d", pi, pc)
	}
	spark := h.Render()
	if len([]rune(spark)) != 24 {
		t.Errorf("sparkline length %d", len([]rune(spark)))
	}
}

func TestBuildSituation(t *testing.T) {
	vessels := []model.VesselState{
		{MMSI: 1, At: t0(), Pos: geo.Point{Lat: 38, Lon: 15}},
		{MMSI: 2, At: t0(), Pos: geo.Point{Lat: 43, Lon: 5}},
	}
	alerts := []SituationAlert{
		{At: t0(), Kind: "dark", MMSI: 1, Where: geo.Point{Lat: 38, Lon: 15}, Severity: 2, Note: "silent"},
		{At: t0(), Kind: "rendezvous", MMSI: 2, Where: geo.Point{Lat: 43, Lon: 5}, Severity: 3, Note: "meeting"},
		{At: t0(), Kind: "far", MMSI: 3, Where: geo.Point{Lat: 0, Lon: 100}, Severity: 3, Note: "outside"},
	}
	s := BuildSituation(t0(), bounds, vessels, alerts, 8, 16)
	if len(s.Alerts) != 2 {
		t.Fatalf("alerts in bounds: %d", len(s.Alerts))
	}
	// Sorted by severity descending.
	if s.Alerts[0].Severity != 3 {
		t.Error("alerts not sorted by severity")
	}
	sum := s.Summary()
	if !strings.Contains(sum, "2 vessels") || !strings.Contains(sum, "2 alerts") {
		t.Errorf("summary header wrong:\n%s", sum)
	}
	if !strings.Contains(sum, "rendezvous") {
		t.Error("summary should list the critical alert")
	}
}

func BenchmarkDensityAdd(b *testing.B) {
	d := NewDensity(bounds, 64, 128)
	p := geo.Point{Lat: 38, Lon: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Add(p)
	}
}

func BenchmarkMultiScale100k(b *testing.B) {
	pts := make([]geo.Point, 100000)
	for i := range pts {
		pts[i] = geo.Point{Lat: 30 + float64(i%160)*0.1, Lon: -6 + float64(i%420)*0.1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MultiScaleDensity(bounds, []int{8, 32, 128}, pts)
	}
}
