// Package va is the visual-analytics backend of §3.2: multi-scale
// spatio-temporal density surfaces, origin–destination flow matrices,
// temporal histograms, and situation snapshots with alert overlays — the
// server-side aggregations an interactive maritime console drills into.
// Rendering targets the terminal (ASCII heat maps), which keeps the
// stdlib-only constraint while demonstrating the full aggregation path.
package va

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// Density is a 2-D histogram of positions over a bounding box.
type Density struct {
	Bounds geo.Rect
	Rows   int
	Cols   int
	Counts []int
	Total  int
	MaxBin int
}

// NewDensity allocates a rows×cols density surface over bounds.
func NewDensity(bounds geo.Rect, rows, cols int) *Density {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	return &Density{Bounds: bounds, Rows: rows, Cols: cols, Counts: make([]int, rows*cols)}
}

// Add bins one position (ignored when outside the bounds).
func (d *Density) Add(p geo.Point) {
	if !d.Bounds.Contains(p) {
		return
	}
	r := int(float64(d.Rows) * (p.Lat - d.Bounds.MinLat) / (d.Bounds.MaxLat - d.Bounds.MinLat))
	c := int(float64(d.Cols) * (p.Lon - d.Bounds.MinLon) / (d.Bounds.MaxLon - d.Bounds.MinLon))
	if r >= d.Rows {
		r = d.Rows - 1
	}
	if c >= d.Cols {
		c = d.Cols - 1
	}
	idx := r*d.Cols + c
	d.Counts[idx]++
	d.Total++
	if d.Counts[idx] > d.MaxBin {
		d.MaxBin = d.Counts[idx]
	}
}

// At returns the count in bin (row, col).
func (d *Density) At(row, col int) int { return d.Counts[row*d.Cols+col] }

// NonEmptyBins returns how many bins hold at least one point — the
// coverage statistic behind Figure 1.
func (d *Density) NonEmptyBins() int {
	n := 0
	for _, c := range d.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// CoverageFraction returns the fraction of bins with data.
func (d *Density) CoverageFraction() float64 {
	if len(d.Counts) == 0 {
		return 0
	}
	return float64(d.NonEmptyBins()) / float64(len(d.Counts))
}

// densityRamp maps intensity to ASCII, light to heavy.
var densityRamp = []byte(" .:-=+*#%@")

// Render draws the surface as an ASCII heat map, north up.
func (d *Density) Render() string {
	var sb strings.Builder
	for r := d.Rows - 1; r >= 0; r-- {
		for c := 0; c < d.Cols; c++ {
			v := d.At(r, c)
			if d.MaxBin == 0 || v == 0 {
				sb.WriteByte(densityRamp[0])
				continue
			}
			idx := 1 + v*(len(densityRamp)-2)/d.MaxBin
			if idx >= len(densityRamp) {
				idx = len(densityRamp) - 1
			}
			sb.WriteByte(densityRamp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MultiScaleDensity builds the same surface at several zoom levels — the
// drill-down structure of §3.2 ("desired scales and levels of detail").
func MultiScaleDensity(bounds geo.Rect, levels []int, points []geo.Point) []*Density {
	out := make([]*Density, len(levels))
	for i, n := range levels {
		out[i] = NewDensity(bounds, n, n*2)
	}
	for _, p := range points {
		for _, d := range out {
			d.Add(p)
		}
	}
	return out
}

// --- flows ---------------------------------------------------------------------

// Flow is one aggregated origin→destination movement count.
type Flow struct {
	From  string
	To    string
	Count int
}

// FlowMatrix aggregates origin–destination transitions between named
// regions (ports, cells).
type FlowMatrix struct {
	counts map[[2]string]int
}

// NewFlowMatrix returns an empty matrix.
func NewFlowMatrix() *FlowMatrix {
	return &FlowMatrix{counts: make(map[[2]string]int)}
}

// Add records one movement from origin to destination.
func (f *FlowMatrix) Add(from, to string) {
	if from == "" || to == "" || from == to {
		return
	}
	f.counts[[2]string{from, to}]++
}

// Top returns the k heaviest flows, descending, ties broken by name.
func (f *FlowMatrix) Top(k int) []Flow {
	flows := make([]Flow, 0, len(f.counts))
	for key, n := range f.counts {
		flows = append(flows, Flow{From: key[0], To: key[1], Count: n})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Count != flows[j].Count {
			return flows[i].Count > flows[j].Count
		}
		if flows[i].From != flows[j].From {
			return flows[i].From < flows[j].From
		}
		return flows[i].To < flows[j].To
	})
	if k < len(flows) {
		flows = flows[:k]
	}
	return flows
}

// Len returns the number of distinct OD pairs.
func (f *FlowMatrix) Len() int { return len(f.counts) }

// --- temporal histogram -----------------------------------------------------------

// TimeHistogram counts events in fixed time buckets.
type TimeHistogram struct {
	Start  time.Time
	Bucket time.Duration
	Counts []int
}

// NewTimeHistogram covers [start, start+n*bucket).
func NewTimeHistogram(start time.Time, bucket time.Duration, n int) *TimeHistogram {
	return &TimeHistogram{Start: start, Bucket: bucket, Counts: make([]int, n)}
}

// Add bins one timestamp (out-of-range times are dropped).
func (h *TimeHistogram) Add(at time.Time) {
	idx := int(at.Sub(h.Start) / h.Bucket)
	if idx < 0 || idx >= len(h.Counts) {
		return
	}
	h.Counts[idx]++
}

// Peak returns the index and count of the fullest bucket.
func (h *TimeHistogram) Peak() (int, int) {
	bi, bc := 0, 0
	for i, c := range h.Counts {
		if c > bc {
			bi, bc = i, c
		}
	}
	return bi, bc
}

// Render draws a vertical-bar sparkline of the histogram.
func (h *TimeHistogram) Render() string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	_, max := h.Peak()
	var sb strings.Builder
	for _, c := range h.Counts {
		if max == 0 {
			sb.WriteRune(ramp[0])
			continue
		}
		idx := c * (len(ramp) - 1) / max
		sb.WriteRune(ramp[idx])
	}
	return sb.String()
}

// --- situation snapshot --------------------------------------------------------------

// SituationAlert is the display form of an alert on the board.
type SituationAlert struct {
	At       time.Time
	Kind     string
	MMSI     uint32
	Where    geo.Point
	Severity int
	Note     string
}

// Situation is the computed operational picture of §3.2: current vessel
// states, traffic density, and an alert board — everything a monitoring
// console needs for one refresh.
type Situation struct {
	At      time.Time
	Bounds  geo.Rect
	Vessels []model.VesselState
	Density *Density
	Alerts  []SituationAlert
}

// BuildSituation assembles the picture from the current fleet states and
// pending alerts, binning density at the requested resolution.
func BuildSituation(at time.Time, bounds geo.Rect, vessels []model.VesselState, alerts []SituationAlert, rows, cols int) *Situation {
	s := &Situation{At: at, Bounds: bounds, Vessels: vessels, Density: NewDensity(bounds, rows, cols)}
	for _, v := range vessels {
		s.Density.Add(v.Pos)
	}
	for _, a := range alerts {
		if bounds.Contains(a.Where) {
			s.Alerts = append(s.Alerts, a)
		}
	}
	sort.Slice(s.Alerts, func(i, j int) bool {
		if s.Alerts[i].Severity != s.Alerts[j].Severity {
			return s.Alerts[i].Severity > s.Alerts[j].Severity
		}
		return s.Alerts[i].At.Before(s.Alerts[j].At)
	})
	return s
}

// Summary renders a one-screen text overview.
func (s *Situation) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SITUATION %s — %d vessels, %d alerts\n",
		s.At.Format("2006-01-02 15:04:05"), len(s.Vessels), len(s.Alerts))
	sb.WriteString(s.Density.Render())
	n := len(s.Alerts)
	if n > 8 {
		n = 8
	}
	for _, a := range s.Alerts[:n] {
		fmt.Fprintf(&sb, "  [sev%d] %-18s vessel %-9d %s\n", a.Severity, a.Kind, a.MMSI, a.Note)
	}
	if len(s.Alerts) > n {
		fmt.Fprintf(&sb, "  … and %d more alerts\n", len(s.Alerts)-n)
	}
	return sb.String()
}
