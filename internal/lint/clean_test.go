package lint

import "testing"

// TestRepoIsLintClean is the dogfood gate: the committed tree must have
// zero findings. New violations either get fixed or get an explicit
// //lint:ignore with a written reason — silent regressions fail CI here
// even before the cmd/maritimelint step runs.
func TestRepoIsLintClean(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
		for _, d := range RunPackage(pkg, Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}
