package lint

import "testing"

// BenchmarkSuiteRepo measures a full cold run of the analyzer suite over
// the module — load, type-check and all six analyzers — which is what
// the CI lint step pays on every push.
func BenchmarkSuiteRepo(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.ModulePackages()
		if err != nil {
			b.Fatal(err)
		}
		var findings int
		for _, pkg := range pkgs {
			findings += len(RunPackage(pkg, Analyzers()))
		}
		if findings != 0 {
			b.Fatalf("expected a clean tree, got %d findings", findings)
		}
	}
}
