package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the PR 3/PR 4 cancellation contract: a request's
// context flows from the HTTP edge through every query, stream and peer
// hop. Re-rooting a call chain at context.Background() silently detaches
// it from the caller's deadline — the peer fan-out keeps running after
// the client gave up.
//
// Three rules:
//
//   - a function that already has a context.Context parameter must not
//     call context.Background()/context.TODO() — thread the parameter;
//   - a function without a ctx parameter must not conjure a context
//     inline at a call site (context.Background()/TODO() nested inside
//     another call's arguments). A named root (ctx := context.Background())
//     at a process or experiment entry point is deliberate and exempt, as
//     is func main and the Foo -> FooContext wrapper idiom (the wrapped
//     sibling is where callers with a real ctx go);
//   - IO helpers must accept cancellation: http.NewRequest is flagged in
//     favour of http.NewRequestWithContext.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "thread context.Context; no inline context.Background()/TODO() re-rooting, no ctx-less HTTP requests",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	pkg := pass.Pkg

	isContextFunc := func(call *ast.CallExpr, names ...string) string {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return ""
		}
		for _, n := range names {
			if fn.Name() == n {
				return n
			}
		}
		return ""
	}

	// hasCtxParam reports whether the function type declares a
	// context.Context parameter.
	hasCtxParam := func(ft *ast.FuncType) bool {
		if ft.Params == nil {
			return false
		}
		for _, fld := range ft.Params.List {
			if tv, ok := pkg.Info.Types[fld.Type]; ok {
				if named, ok := tv.Type.(*types.Named); ok &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context" {
					return true
				}
			}
		}
		return false
	}

	// siblings: every function/method name declared in this package, to
	// recognise the Foo -> FooContext wrapper idiom.
	siblings := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				siblings[fd.Name.Name] = true
			}
		}
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := hasCtxParam(fd.Type)
			isWrapper := !ctxParam && siblings[fd.Name.Name+"Context"]
			isMain := fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init")

			// Track call nesting so we can tell an inline
			// context.Background() argument from a named root.
			var callStack []*ast.CallExpr
			var visit func(n ast.Node) bool
			visit = func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := isContextFunc(call, "Background", "TODO"); name != "" {
					switch {
					case ctxParam:
						pass.Report(call.Pos(), "%s has a context.Context parameter but calls context.%s(): thread the parameter instead of re-rooting",
							funcName(fd), name)
					case len(callStack) > 0 && !isWrapper && !isMain:
						pass.Report(call.Pos(), "%s conjures context.%s() inline at a call site: accept a ctx parameter (add a %sContext variant) or hoist a named root",
							funcName(fd), name, fd.Name.Name)
					}
				}
				if fn, ok := pkg.Info.Uses[calleeIdent(call)].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequest" {
					pass.Report(call.Pos(), "%s builds a request without cancellation: use http.NewRequestWithContext", funcName(fd))
				}
				callStack = append(callStack, call)
				for _, arg := range call.Args {
					ast.Inspect(arg, visit)
				}
				callStack = callStack[:len(callStack)-1]
				// Fun was not walked above; do it outside the arg context.
				ast.Inspect(call.Fun, visit)
				return false
			}
			ast.Inspect(fd.Body, visit)
		}
	}
}

// calleeIdent returns the identifier naming the called function, if any.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}
