package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO enforces the PR 5 storage contract: no sync.Mutex/RWMutex may
// be held across a call that can do network or bulk disk IO — a slow
// remote ObjectStore.Put under the backend lock stalls every concurrent
// append (the exact upload-on-seal hazard the ROADMAP flagged).
//
// Detection is deliberately an under-approximation tuned for zero noise:
//
//   - Locked regions are tracked per function in source order — a
//     Lock/RLock opens a region on its receiver, the next Unlock/RUnlock
//     on the same receiver closes it, a deferred unlock (or none) keeps
//     it open to the end of the function.
//   - Functions named *Locked are, by this codebase's convention, called
//     with the lock already held: their whole body is a locked region.
//   - Inside a locked region, both direct IO calls and calls to
//     same-package functions whose bodies directly perform IO (one
//     interprocedural level) are findings. Function-literal bodies are
//     skipped on both sides: a closure is typically run later, on a
//     different goroutine or after the unlock.
//
// IO means: ObjectStore.{Put,Get,List,Delete} (by interface name —
// remote storage), net/http Client calls and package-level requests,
// net dials and Conn reads/writes, and whole-file os.ReadFile/WriteFile.
// The WAL's own buffered segment writes are deliberately NOT in the set:
// the disk backend serialises its segment under its lock by design, and
// the async Flusher exists to keep that latency off the ingest path.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "no mutex held across network/disk IO (ObjectStore, net/http, net, whole-file os calls)",
	Run:  runLockIO,
}

// ioCall classifies a call expression as IO, returning a description or
// "".
func ioCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Method call: classify by receiver type.
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return ""
		}
		name, method := named.Obj().Name(), sel.Sel.Name
		pkgPath := ""
		if named.Obj().Pkg() != nil {
			pkgPath = named.Obj().Pkg().Path()
		}
		switch {
		case name == "ObjectStore" && (method == "Put" || method == "Get" || method == "List" || method == "Delete"):
			return "ObjectStore." + method + " (remote object store)"
		case pkgPath == "net/http" && name == "Client" &&
			(method == "Do" || method == "Get" || method == "Post" || method == "PostForm" || method == "Head"):
			return "http.Client." + method + " (network)"
		case pkgPath == "net" && name == "Conn" && (method == "Read" || method == "Write"):
			return "net.Conn." + method + " (network)"
		}
		return ""
	}
	// Package-level function call.
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "os":
		if fn.Name() == "ReadFile" || fn.Name() == "WriteFile" {
			return "os." + fn.Name() + " (whole-file disk IO)"
		}
	case "net/http":
		switch fn.Name() {
		case "Get", "Post", "Head", "PostForm":
			return "http." + fn.Name() + " (network)"
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout":
			return "net." + fn.Name() + " (network)"
		}
	}
	return ""
}

// directIO scans a function body (skipping nested function literals) for
// the first direct IO call, returning its description or "".
func directIO(pkg *Package, body *ast.BlockStmt) string {
	found := ""
	walkSkipFuncLits(body, func(n ast.Node) {
		if found != "" {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			found = ioCall(pkg, call)
		}
	})
	return found
}

// walkSkipFuncLits walks n in source order, not descending into function
// literals.
func walkSkipFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// lockRegions computes the held-lock intervals of one function body:
// position ranges during which some mutex receiver is locked.
type lockRegion struct {
	from, to token.Pos
	key      string // receiver expression, for the diagnostic
}

// mutexMethod reports whether the call is a Lock/RLock/Unlock/RUnlock on
// a sync.Mutex or sync.RWMutex, and which.
func mutexMethod(pkg *Package, call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, isMeth := pkg.Info.Selections[sel]
	if !isMeth || s.Kind() != types.MethodVal {
		return "", "", false
	}
	recvT := s.Recv()
	if p, isPtr := recvT.(*types.Pointer); isPtr {
		recvT = p.Elem()
	}
	named, isNamed := recvT.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

func regionsOf(pkg *Package, fd *ast.FuncDecl) []lockRegion {
	if fd.Body == nil {
		return nil
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") || strings.HasSuffix(fd.Name.Name, "locked") {
		// Convention: called with the caller's lock held.
		return []lockRegion{{from: fd.Body.Pos(), to: fd.Body.End(), key: "caller's lock (name ends in Locked)"}}
	}
	type event struct {
		pos     token.Pos
		key     string
		lock    bool
		defered bool
	}
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the region open to function end; a
			// deferred lock makes no sense — skip the whole statement.
			if recv, method, ok := mutexMethod(pkg, x.Call); ok && (method == "Unlock" || method == "RUnlock") {
				events = append(events, event{pos: x.Pos(), key: recv, lock: false, defered: true})
			}
			return false
		case *ast.CallExpr:
			if recv, method, ok := mutexMethod(pkg, x); ok {
				events = append(events, event{pos: x.Pos(), key: recv, lock: method == "Lock" || method == "RLock"})
			}
		}
		return true
	})
	// events arrive in source order (ast.Inspect is a pre-order walk).
	open := map[string]token.Pos{}
	var regions []lockRegion
	for _, e := range events {
		if e.lock {
			if _, isOpen := open[e.key]; !isOpen {
				open[e.key] = e.pos
			}
			continue
		}
		if e.defered {
			continue // region stays open to the end
		}
		if from, isOpen := open[e.key]; isOpen {
			regions = append(regions, lockRegion{from: from, to: e.pos, key: e.key})
			delete(open, e.key)
		}
	}
	for key, from := range open {
		regions = append(regions, lockRegion{from: from, to: fd.Body.End(), key: key})
	}
	return regions
}

func runLockIO(pass *Pass) {
	pkg := pass.Pkg
	// Map function objects to their declarations for the one-level
	// interprocedural check.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	calleeObj := func(call *ast.CallExpr) types.Object {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return pkg.Info.Uses[fun]
		case *ast.SelectorExpr:
			return pkg.Info.Uses[fun.Sel]
		}
		return nil
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			regions := regionsOf(pkg, fd)
			if len(regions) == 0 {
				continue
			}
			held := func(pos token.Pos) (lockRegion, bool) {
				for _, r := range regions {
					if pos > r.from && pos < r.to {
						return r, true
					}
				}
				return lockRegion{}, false
			}
			walkSkipFuncLits(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				r, isHeld := held(call.Pos())
				if !isHeld {
					return
				}
				if io := ioCall(pkg, call); io != "" {
					pass.Report(call.Pos(), "%s holds %s across %s: move the IO off the lock (background stage or copy-then-release)",
						funcName(fd), r.key, io)
					return
				}
				// One interprocedural level: a call to a same-package
				// function that directly does IO.
				obj := calleeObj(call)
				if obj == nil || obj.Pkg() == nil || obj.Pkg() != pkg.Types {
					return
				}
				callee, ok := decls[obj]
				if !ok || callee.Body == nil || callee == fd {
					return
				}
				if io := directIO(pkg, callee.Body); io != "" {
					pass.Report(call.Pos(), "%s holds %s across call to %s, which does %s: move the IO off the lock",
						funcName(fd), r.key, fmt.Sprintf("%s", funcName(callee)), io)
				}
			})
		}
	}
}
