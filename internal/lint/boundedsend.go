package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// BoundedSend enforces the PR 2/PR 4 fan-out contract: a publisher must
// never block on a consumer. Shard workers and the pub/sub hub deliver
// through bounded per-subscriber queues and count drops; one blocking
// send on a publish path lets a single stuck subscriber wedge every
// vessel behind it.
//
// A send is "bounded" only when it is a case of a select statement that
// also has a default (drop) arm. The analyzer flags unbounded sends in
// two scopes:
//
//   - inside publish-path functions — any function whose name matches
//     publish/broadcast/fanout/offer (case-insensitive);
//   - on subscriber queues anywhere — sends to a channel-typed field of
//     a struct whose type name contains "Subscription" (or "Subscriber").
//
// Ordinary pipeline sends between owned goroutines (shard worker ->
// flusher, etc.) are intentional backpressure and are not flagged.
var BoundedSend = &Analyzer{
	Name: "boundedsend",
	Doc:  "publish paths and subscriber queues must send via select with a default/drop arm",
	Run:  runBoundedSend,
}

var publishNameRe = regexp.MustCompile(`(?i)publish|broadcast|fanout|offer`)

func runBoundedSend(pass *Pass) {
	pkg := pass.Pkg

	// subscriberChan reports whether the channel expression is a field of
	// a *Subscription-like struct.
	subscriberChan := func(ch ast.Expr) bool {
		sel, ok := ch.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return false
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return false
		}
		name := named.Obj().Name()
		return strings.Contains(name, "Subscription") || strings.Contains(name, "Subscriber")
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inPublishPath := publishNameRe.MatchString(fd.Name.Name)

			// bounded holds every send that sits in a select with a
			// default arm.
			bounded := map[*ast.SendStmt]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectStmt)
				if !ok {
					return true
				}
				hasDefault := false
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					return true
				}
				for _, c := range sel.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						bounded[send] = true
					}
				}
				return true
			})

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				send, ok := n.(*ast.SendStmt)
				if !ok || bounded[send] {
					return true
				}
				switch {
				case subscriberChan(send.Chan):
					pass.Report(send.Pos(), "blocking send on subscriber queue %s: use select with a default arm and count the drop",
						exprString(send.Chan))
				case inPublishPath:
					pass.Report(send.Pos(), "blocking send in publish path %s: a stuck consumer stalls every producer behind it; use select with a default arm",
						funcName(fd))
				}
				return true
			})
		}
	}
}
