package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCounter enforces the atomics discipline the seq counters,
// metrics and heat clocks rely on. Two rules:
//
//   - mixed access: a struct field that is anywhere accessed through
//     sync/atomic package functions (atomic.AddInt64(&s.clock, 1), the
//     tstore heat-clock style) must be accessed that way everywhere — a
//     single plain read of such a field is a data race the race detector
//     only catches if a test happens to interleave it;
//   - check-then-act: a typed atomic field (atomic.Int64/Uint64/...)
//     that one function both Loads and Stores has a lost-update window
//     between the two; use Add or a CompareAndSwap loop, or justify the
//     single-writer claim with an ignore.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere; no Load-then-Store races",
	Run:  runAtomicCounter,
}

func runAtomicCounter(pass *Pass) {
	pkg := pass.Pkg

	// fieldOf resolves a selector expression to the struct field object
	// it denotes, or nil.
	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}

	// --- rule 1: mixed plain/atomic access ------------------------------

	// Pass one: collect the fields whose address is taken as the first
	// argument of a sync/atomic function, and remember those sanctioned
	// uses so pass two can skip them.
	atomicFields := map[*types.Var]string{} // field -> atomic func name seen
	sanctioned := map[ast.Expr]bool{}       // selector exprs inside atomic calls
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id := calleeIdent(call)
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if v := fieldOf(un.X); v != nil {
					atomicFields[v] = fn.Name()
					sanctioned[un.X] = true
				}
			}
			return true
		})
	}
	// Pass two: every other mention of those fields is a plain access.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			if v := fieldOf(sel); v != nil {
				if fnName, isAtomic := atomicFields[v]; isAtomic {
					pass.Report(sel.Pos(), "plain access of %s.%s, which is accessed via atomic.%s elsewhere: use sync/atomic here too",
						exprString(sel.X), sel.Sel.Name, fnName)
				}
			}
			return true
		})
	}

	// --- rule 2: Load-then-Store on typed atomics -----------------------

	isTypedAtomic := func(v *types.Var) bool {
		t := v.Type()
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		if named.Obj().Pkg().Path() != "sync/atomic" {
			return false
		}
		switch named.Obj().Name() {
		case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Bool":
			return true
		}
		return false
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			loads := map[*types.Var]bool{}
			stores := map[*types.Var]ast.Expr{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				method := sel.Sel.Name
				if method != "Load" && method != "Store" {
					return true
				}
				v := fieldOf(sel.X)
				if v == nil || !isTypedAtomic(v) {
					return true
				}
				if method == "Load" {
					loads[v] = true
				} else {
					stores[v] = sel.X
				}
				return true
			})
			for v, at := range stores {
				if loads[v] {
					pass.Report(at.Pos(), "%s both Loads and Stores atomic field %s: the gap is a lost-update window; use Add or a CompareAndSwap loop (or justify the single writer with an ignore)",
						funcName(fd), exprString(at))
				}
			}
		}
	}
}
