package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot walks up from the test working directory to the go.mod.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// runFixture loads testdata/src/<name>, runs the given analyzers and
// matches the findings against `// want "substring"` comments placed on
// the expected lines. Both directions are checked: a finding without a
// want fails, and a want without a finding fails.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := wantRe.FindStringSubmatch(c.Text); m != nil {
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], m[1])
				}
			}
		}
	}

	for _, d := range RunPackage(pkg, analyzers) {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected a finding containing %q, got none", k.file, k.line, w)
		}
	}
}

// TestAnalyzerFixtures runs each analyzer over its fixture package:
// true positives carry want-comments, true negatives none.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			runFixture(t, a.Name, []*Analyzer{a})
		})
	}
}

// TestIgnoreAudit pins the escape-hatch contract on the ignore fixture:
// an unjustified, unknown-analyzer or malformed directive is a finding,
// and an unjustified directive does not suppress the underlying one.
// Want-comments cannot sit on a directive's own line (they would merge
// into the directive text), so expectations are positional.
func TestIgnoreAudit(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	got := RunPackage(pkg, Analyzers())

	expected := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{8, "ignore", "unjustified"},
		{9, "floateq", "equality on float"},
		{13, "ignore", "unknown analyzer"},
		{14, "floateq", "equality on float"},
		{17, "ignore", "malformed"},
		// line 21 is suppressed by a justified directive: no finding.
	}
	var unmatched []string
	for _, d := range got {
		found := false
		for i, e := range expected {
			if e.line == d.Pos.Line && e.analyzer == d.Analyzer && strings.Contains(d.Message, e.substr) {
				expected = append(expected[:i], expected[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, d.String())
		}
	}
	for _, s := range unmatched {
		t.Errorf("unexpected finding: %s", s)
	}
	for _, e := range expected {
		t.Errorf("missing finding: line %d [%s] containing %q", e.line, e.analyzer, e.substr)
	}
	_ = fmt.Sprintf // keep fmt imported if expectations change
}
