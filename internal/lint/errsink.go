package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrSink enforces the PR 2–5 error-routing contract: background storage
// stages cannot return errors to a caller, so every append / flush /
// spill / upload error must land in a named sink the operator can read
// (FlushErr, PageErr, UploadErr, SourceStats.Err) — a swallowed flush
// error is silent data loss, the exact failure mode the paper's
// data-integrity argument is about.
//
// The analyzer flags a call whose callee name contains one of the
// storage verbs (append, flush, spill, upload, sync, compact, rotate,
// seal, evict, remove, delete, put, migrate, page) when the call returns
// an error that is discarded: a bare expression statement, or an
// assignment sending the error result to blank. Routing the error
// anywhere — a variable, a sink setter, a return — satisfies the rule;
// genuinely ignorable errors take a //lint:ignore errsink <reason>.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "append/flush/spill/upload-family errors must reach a named error sink, not be discarded",
	Run:  runErrSink,
}

var errSinkVerbs = []string{
	"append", "flush", "spill", "upload", "sync", "compact", "rotate",
	"seal", "evict", "remove", "delete", "put", "migrate", "page",
}

func errSinkVerb(name string) string {
	lower := strings.ToLower(name)
	for _, v := range errSinkVerbs {
		if strings.Contains(lower, v) {
			return v
		}
	}
	return ""
}

func runErrSink(pass *Pass) {
	pkg := pass.Pkg

	// errResults returns the indices of error-typed results of the call,
	// or nil if it returns no error.
	errResults := func(call *ast.CallExpr) []int {
		tv, ok := pkg.Info.Types[call]
		if !ok {
			return nil
		}
		var idxs []int
		switch t := tv.Type.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if isErrorType(t.At(i).Type()) {
					idxs = append(idxs, i)
				}
			}
		default:
			if isErrorType(tv.Type) {
				idxs = []int{0}
			}
		}
		return idxs
	}

	check := func(call *ast.CallExpr, discarded func(i int) bool) {
		id := calleeIdent(call)
		if id == nil {
			return
		}
		verb := errSinkVerb(id.Name)
		if verb == "" {
			return
		}
		for _, i := range errResults(call) {
			if discarded(i) {
				pass.Report(call.Pos(), "error from %s discarded: route it to an error sink (FlushErr/PageErr/UploadErr) or //lint:ignore errsink with a reason",
					id.Name)
				return
			}
		}
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					check(call, func(int) bool { return true })
				}
			case *ast.DeferStmt:
				check(stmt.Call, func(int) bool { return true })
			case *ast.GoStmt:
				check(stmt.Call, func(int) bool { return true })
			case *ast.AssignStmt:
				// Single call on the RHS: results map positionally to the
				// LHS; an error landing on blank is discarded.
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				check(call, func(i int) bool {
					if i >= len(stmt.Lhs) {
						return false
					}
					id, ok := stmt.Lhs[i].(*ast.Ident)
					return ok && id.Name == "_"
				})
			}
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
