package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq enforces the PR 1 geometry contract: coordinates are float64
// degrees and propagate rounding from projection, interpolation and
// great-circle math — exact ==/!= on them encodes an assumption the
// arithmetic does not honour. Compare with a tolerance, or use
// math.IsInf/math.IsNaN for sentinel values.
//
// The analyzer flags ==/!= where either operand is a float (or a struct
// or array whose fields include a float — Point identity is coordinate
// equality too). Two exemptions, both "the value was stored verbatim,
// never computed": comparisons against compile-time constants
// (`cfg.Eps == 0` is the idiomatic unset-config check) and against an
// empty composite literal (`p == (geo.Point{})` is the zero-value
// sentinel check).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float64 coordinates outside tests; use a tolerance or math.IsInf/IsNaN",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	pkg := pass.Pkg

	var hasFloat func(t types.Type, depth int) bool
	hasFloat = func(t types.Type, depth int) bool {
		if depth > 4 {
			return false
		}
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Kind() == types.Float32 || u.Kind() == types.Float64 ||
				u.Kind() == types.UntypedFloat
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if hasFloat(u.Field(i).Type(), depth+1) {
					return true
				}
			}
		case *types.Array:
			return hasFloat(u.Elem(), depth+1)
		}
		return false
	}

	isConst := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.Value != nil
	}

	// isZeroLit recognises the zero-value sentinel idiom: an empty
	// (possibly parenthesised) composite literal like (geo.Point{}).
	var isZeroLit func(e ast.Expr) bool
	isZeroLit = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.ParenExpr:
			return isZeroLit(x.X)
		case *ast.CompositeLit:
			return len(x.Elts) == 0
		}
		return false
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isConst(be.X) || isConst(be.Y) || isZeroLit(be.X) || isZeroLit(be.Y) {
				return true
			}
			tv, ok := pkg.Info.Types[be.X]
			if !ok || !hasFloat(tv.Type, 0) {
				return true
			}
			what := "float"
			if _, isStruct := tv.Type.Underlying().(*types.Struct); isStruct {
				what = tv.Type.String() + " (contains floats)"
			}
			pass.Report(be.OpPos, "%s equality on %s: compare with a tolerance (math.Abs(a-b) <= eps) or use math.IsInf/IsNaN for sentinels",
				be.Op, what)
			return true
		})
	}
}
