// Package lint is the project-invariant analyzer suite: six static
// analyzers that machine-check the concurrency and error-handling
// contracts the surrounding packages previously only documented —
// no IO under a lock (lockio), no blocking sends on publish paths
// (boundedsend), contexts threaded not re-rooted (ctxflow), storage
// errors routed to their sinks not dropped (errsink), atomic fields
// accessed atomically (atomiccounter), and no float equality outside
// tests (floateq). See INVARIANTS.md for the contract each rule
// enforces and the PR that introduced it.
//
// The suite is built on the standard library alone (go/parser +
// go/types with the source importer — see load.go), so the module stays
// dependency-free. cmd/maritimelint compiles the analyzers into a
// driver run over ./... in CI; TestRepoIsLintClean pins the committed
// tree to zero findings.
//
// Findings are suppressed one line at a time with a justified escape
// hatch:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line directly above it. An
// ignore directive without a reason, or naming an unknown analyzer, is
// itself a finding — an unjustified suppression is exactly the silent
// contract erosion the suite exists to prevent.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named project-invariant check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run inspects one package, reporting findings through pass.Report.
	Run func(pass *Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockIO,
		BoundedSend,
		CtxFlow,
		ErrSink,
		AtomicCounter,
		FloatEq,
	}
}

// --- ignore directives ---------------------------------------------------------------

const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string
	reason    string
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([A-Za-z0-9_,]+)\s*(.*)$`)

// ignoreSet indexes a package's directives by (file, line): a directive
// suppresses matching findings on its own line and the line below it.
type ignoreSet struct {
	byLine map[string]map[int]*ignoreDirective
	all    []*ignoreDirective
}

func collectIgnores(pkg *Package) *ignoreSet {
	s := &ignoreSet{byLine: make(map[string]map[int]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &ignoreDirective{pos: pos}
				if m := ignoreRe.FindStringSubmatch(c.Text); m != nil {
					for _, name := range strings.Split(m[1], ",") {
						if name != "" {
							d.analyzers = append(d.analyzers, name)
						}
					}
					d.reason = strings.TrimSpace(m[2])
				}
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = make(map[int]*ignoreDirective)
				}
				s.byLine[pos.Filename][pos.Line] = d
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// match reports whether a directive suppresses the diagnostic: same file,
// on the diagnostic's line or the line above, naming its analyzer, with a
// non-empty reason.
func (s *ignoreSet) match(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		dir, ok := lines[line]
		if !ok || dir.reason == "" {
			continue
		}
		for _, name := range dir.analyzers {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// audit reports malformed directives: no analyzer list, an unknown
// analyzer name, or a missing reason. These are findings in their own
// right and cannot be suppressed.
func (s *ignoreSet) audit(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		switch {
		case len(d.analyzers) == 0:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "ignore",
				Message: "malformed //lint:ignore: want //lint:ignore <analyzer> <reason>"})
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "ignore",
				Message: fmt.Sprintf("unjustified //lint:ignore %s: a suppression needs a written reason", strings.Join(d.analyzers, ","))})
		default:
			for _, name := range d.analyzers {
				if !known[name] {
					out = append(out, Diagnostic{Pos: d.pos, Analyzer: "ignore",
						Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", name)})
				}
			}
		}
	}
	return out
}

// --- run -----------------------------------------------------------------------------

// RunPackage runs the analyzers over one package and returns the
// surviving findings (ignore-suppressed ones removed, directive audit
// findings added), sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ignores := collectIgnores(pkg)
	known := make(map[string]bool, len(analyzers))
	var out []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			if !ignores.match(d) {
				out = append(out, d)
			}
		}
	}
	out = append(out, ignores.audit(known)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// --- shared AST/type helpers ---------------------------------------------------------

// funcName renders a function declaration's display name
// ("(*Disk).Append" or "open").
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// typeExprString renders a receiver type expression compactly.
func typeExprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeExprString(t.X)
	case *ast.IndexExpr:
		return typeExprString(t.X)
	case *ast.IndexListExpr:
		return typeExprString(t.X)
	}
	return "?"
}

// recvTypeName returns the receiver's named type ("Disk" for *Disk),
// or "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	name := typeExprString(fd.Recv.List[0].Type)
	return strings.TrimPrefix(name, "*")
}

// exprString renders a (small) expression for use in lock-region keys
// and diagnostics: identifiers and selector chains only.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(x.X) + "[]"
	}
	return "?"
}
