// Fixture for the ignore-directive audit: a suppression without a
// justification is itself a finding, and an unjustified directive does
// not suppress anything. Expected findings are asserted by line in
// TestIgnoreAudit (want-comments cannot sit on a directive's own line).
package ignore

func noReason(x, y float64) bool {
	//lint:ignore floateq
	return x == y
}

func unknownAnalyzer(x, y float64) bool {
	//lint:ignore nosuchcheck the analyzer name is misspelled
	return x == y
}

//lint:ignore

func justified(x, y float64) bool {
	//lint:ignore floateq fixture demonstrates a justified suppression
	return x == y
}
