// Fixture for the ctxflow analyzer: contexts are threaded, not
// re-rooted.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

func query(ctx context.Context, q string) error {
	<-ctx.Done()
	_ = q
	return ctx.Err()
}

func hasParam(ctx context.Context, q string) error {
	return query(context.Background(), q) // want "thread the parameter"
}

func inlineRoot(q string) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want "conjures"
	defer cancel()
	return query(ctx, q)
}

func namedRoot(q string) error {
	ctx := context.Background() // ok: a named root is deliberate
	return query(ctx, q)
}

// Run is the wrapper idiom: callers with a real ctx use RunContext.
func Run(q string) error {
	return query(context.Background(), q) // ok: RunContext sibling exists
}

func RunContext(ctx context.Context, q string) error {
	return query(ctx, q)
}

func buildRequest(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want "NewRequestWithContext"
}

func buildRequestCtx(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil) // ok
}

func inlineIgnored(q string) error {
	//lint:ignore ctxflow fixture demonstrates a justified suppression
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return query(ctx, q)
}
