// Fixture for the boundedsend analyzer: publish paths and subscriber
// queues must not block.
package boundedsend

// Subscription mirrors the project type the analyzer keys on.
type Subscription struct {
	ch      chan int
	dropped int
}

type hub struct {
	subs []*Subscription
}

func (h *hub) publish(v int) {
	for _, s := range h.subs {
		select {
		case s.ch <- v: // ok: default arm bounds the send
		default:
			s.dropped++
		}
	}
}

func (h *hub) publishBlocking(v int) {
	for _, s := range h.subs {
		s.ch <- v // want "subscriber queue"
	}
}

func (h *hub) broadcastResult(out chan int, v int) {
	out <- v // want "publish path"
}

// deliver is not a publish-path name, but the channel is a subscriber
// queue: still flagged (a ctx arm alone does not bound the send).
func deliver(s *Subscription, v int, done chan struct{}) bool {
	select {
	case s.ch <- v: // want "subscriber queue"
		return true
	case <-done:
		return false
	}
}

// worker sends on a plain pipeline channel outside any publish path:
// intentional backpressure, not flagged.
func worker(out chan int, vs []int) {
	for _, v := range vs {
		out <- v // ok
	}
}

func (h *hub) publishIgnored(out chan int, v int) {
	//lint:ignore boundedsend fixture demonstrates a justified suppression
	out <- v // ok: justified ignore
}
