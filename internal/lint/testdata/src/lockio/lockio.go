// Fixture for the lockio analyzer: mutexes held across IO.
package lockio

import (
	"os"
	"sync"
)

// ObjectStore mirrors the project interface the analyzer keys on.
type ObjectStore interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
}

type disk struct {
	mu     sync.Mutex
	remote ObjectStore
}

// uploadLocked runs entirely under the caller's lock by convention.
func (d *disk) uploadLocked(path string) {
	data, err := os.ReadFile(path) // want "os.ReadFile"
	if err != nil {
		return
	}
	d.remote.Put(path, data) // want "ObjectStore.Put"
}

func (d *disk) lockThenIO(key string) {
	d.mu.Lock()
	d.remote.Put(key, nil) // want "ObjectStore.Put"
	d.mu.Unlock()
	d.remote.Put(key, nil) // ok: lock released
}

func (d *disk) deferUnlockInterprocedural(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.helper(key) // want "which does ObjectStore.Put"
}

// helper does direct IO but holds no lock itself: clean on its own.
func (d *disk) helper(key string) {
	d.remote.Put(key, nil) // ok: no lock held here
}

func (d *disk) copyThenRelease(key string) {
	d.mu.Lock()
	k := key + "-suffix"
	d.mu.Unlock()
	d.remote.Put(k, nil) // ok: IO after the critical section
}

func (d *disk) backgroundClosure(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	go func() {
		d.remote.Put(key, nil) // ok: closure runs on another goroutine
	}()
}

func (d *disk) ignored(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	//lint:ignore lockio fixture demonstrates a justified suppression
	d.remote.Put(key, nil) // ok: justified ignore
}
