// Fixture for the errsink analyzer: storage-verb errors must be routed,
// not discarded.
package errsink

import "os"

type backend struct {
	flushErr error
}

func (b *backend) setErr(err error) {
	if b.flushErr == nil {
		b.flushErr = err
	}
}

func flushSegment(f *os.File) error {
	return f.Sync()
}

func uploadSegment(key string) (int, error) {
	return len(key), nil
}

func (b *backend) sealAndMigrate(f *os.File, key string) {
	flushSegment(f)                         // want "error from flushSegment discarded"
	_ = flushSegment(f)                     // want "error from flushSegment discarded"
	_, _ = uploadSegment(key)               // want "error from uploadSegment discarded"
	if err := flushSegment(f); err != nil { // ok: routed to a sink
		b.setErr(err)
	}
	n, err := uploadSegment(key) // ok: error bound to a variable
	_ = n
	if err != nil {
		b.setErr(err)
	}
	//lint:ignore errsink fixture demonstrates a justified suppression
	flushSegment(f) // ok: justified ignore
	b.report()      // ok: no storage verb, no error
}

func (b *backend) deferredFlush(f *os.File) {
	defer flushSegment(f) // want "error from flushSegment discarded"
}

func cleanup(path string) {
	os.Remove(path) // want "error from Remove discarded"
}

func (b *backend) report() {}
