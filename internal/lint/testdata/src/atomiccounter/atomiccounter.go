// Fixture for the atomiccounter analyzer: atomic fields stay atomic.
package atomiccounter

import "sync/atomic"

type metrics struct {
	clock int64         // old-style: accessed via atomic package functions
	hits  atomic.Uint64 // typed atomic
}

func (m *metrics) touch() int64 {
	return atomic.AddInt64(&m.clock, 1) // ok: sanctioned atomic access
}

func (m *metrics) load() int64 {
	return atomic.LoadInt64(&m.clock) // ok
}

func (m *metrics) peek() int64 {
	return m.clock // want "plain access"
}

func (m *metrics) reset() {
	m.clock = 0 // want "plain access"
}

func (m *metrics) bumpMax(n uint64) {
	if n > m.hits.Load() {
		m.hits.Store(n) // want "lost-update window"
	}
}

func (m *metrics) casMax(n uint64) {
	for {
		cur := m.hits.Load()
		if n <= cur || m.hits.CompareAndSwap(cur, n) { // ok: CAS closes the window
			return
		}
	}
}

func (m *metrics) count() uint64 {
	return m.hits.Load() // ok: Load alone is fine
}

func (m *metrics) set(n uint64) {
	m.hits.Store(n) // ok: Store alone is fine
}

func (m *metrics) singleWriter(n uint64) {
	if m.hits.Load() != n {
		//lint:ignore atomiccounter fixture demonstrates a justified suppression
		m.hits.Store(n) // ok: justified ignore
	}
}
