// Fixture for the floateq analyzer: no exact equality on computed
// floats.
package floateq

import "math"

type point struct {
	lat, lon float64
}

func eqFloat(a, b float64) bool {
	return a == b // want "equality on float"
}

func neqFloat(a, b float64) bool {
	return a != b // want "equality on float"
}

func eqPoint(a, b point) bool {
	return a == b // want "contains floats"
}

func withinTolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // ok: the recommended form
}

func sentinelInf(x float64) bool {
	return math.IsInf(x, 1) // ok: the recommended sentinel check
}

func unsetConfig(eps float64) bool {
	return eps == 0 // ok: constant comparison, value stored verbatim
}

func zeroPoint(p point) bool {
	return p == (point{}) // ok: zero-value sentinel, value stored verbatim
}

func eqInt(a, b int) bool {
	return a == b // ok: not a float
}

func tieBreak(a, b float64) bool {
	//lint:ignore floateq fixture demonstrates a justified suppression
	return a == b // ok: justified ignore
}
