package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers
// run over. Only non-test files are loaded — the project contracts the
// suite enforces (no IO under locks, bounded sends, error sinks) are
// production-path invariants, and several analyzers (floateq) are
// explicitly scoped to non-test code.
type Package struct {
	// Path is the import path ("repro/internal/store"), or the directory
	// for packages loaded outside the module (fixtures).
	Path string
	// Dir is the directory the files came from.
	Dir string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries full type information for Files.
	Info *types.Info
	// TypeErrors collects type-checker complaints. The committed tree
	// must check cleanly; the driver surfaces these instead of running
	// analyzers over half-typed syntax.
	TypeErrors []error
}

// Loader loads and type-checks packages of one module without any
// dependency beyond the standard library: module-internal imports are
// resolved by walking the module directory, standard-library imports are
// type-checked from $GOROOT/src via the source importer. Loaded packages
// are memoized, so a whole-module run type-checks each package once.
type Loader struct {
	ModuleDir  string // module root (directory containing go.mod)
	ModulePath string // module path from go.mod ("repro")

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // keyed by import path
	busy map[string]bool     // import-cycle guard
}

// NewLoader builds a loader rooted at moduleDir, reading the module path
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer for the checker: module-internal
// paths load recursively through the loader, everything else resolves
// from the standard library source tree.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}

// LoadPath loads one module-internal package by import path.
func (l *Loader) LoadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
}

// LoadDir loads the package in dir, which may live outside the module
// (analyzer fixtures under testdata). Imports of module-internal paths
// still resolve; fixture-internal imports are not supported.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, err := l.pathOf(abs); err == nil {
		return l.load(p, abs)
	}
	return l.load(abs, abs)
}

// pathOf maps a directory inside the module to its import path.
func (l *Loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath, err
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	// go/build handles build-constraint evaluation (lock_unix.go vs
	// lock_fallback.go) and the test-file split for us; it needs no
	// module resolution to list one directory.
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: listing %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Files = files
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// ModulePackages walks the module and loads every package (every
// directory holding non-test .go files), skipping testdata, hidden and
// vendor directories — the expansion of the "./..." pattern.
func (l *Loader) ModulePackages() ([]*Package, error) {
	var dirs []string
	err := filepath.Walk(l.ModuleDir, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if p != l.ModuleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.pathOf(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
