package semstore

import (
	"sort"

	"repro/internal/registry"
)

// Link is one discovered identity correspondence between two registers.
type Link struct {
	MMSI      uint32 // the anchor identity
	ProviderA string
	ProviderB string
	Score     float64
}

// LinkConfig tunes the link-discovery matcher.
type LinkConfig struct {
	// NameThreshold is the minimum name similarity to accept (0..1).
	NameThreshold float64
	// LengthToleranceM accepts length disagreement up to this many metres.
	LengthToleranceM float64
	// UseBlocking restricts candidate pairs to a cheap blocking key
	// (first letter of the normalised name); turning it off makes the
	// matcher exhaustive — the E12 ablation.
	UseBlocking bool
}

// DefaultLinkConfig returns the settings E12 uses as its baseline.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{NameThreshold: 0.75, LengthToleranceM: 10, UseBlocking: true}
}

// DiscoverLinks finds records in b that describe the same vessel as
// records in a, WITHOUT trusting the MMSI key (the realistic case: one
// register keys by IMO, names drift, MMSIs get reassigned). A candidate
// pair links when the name similarity passes the threshold and the lengths
// agree within tolerance. Returns links keyed by a's MMSI with b's MMSI
// resolved through the match, sorted by MMSI.
func DiscoverLinks(a, b *registry.Register, cfg LinkConfig) []LinkedPair {
	type entry struct {
		rec  *registry.Record
		name string
	}
	block := func(name string) byte {
		n := normaliseName(name)
		if n == "" {
			return 0
		}
		return n[0]
	}
	// Index b by blocking key.
	byBlock := make(map[byte][]entry)
	var all []entry
	for _, mmsi := range b.MMSIs() {
		rec := b.Get(mmsi)
		e := entry{rec: rec, name: rec.Name}
		all = append(all, e)
		byBlock[block(rec.Name)] = append(byBlock[block(rec.Name)], e)
	}
	var out []LinkedPair
	for _, mmsi := range a.MMSIs() {
		ra := a.Get(mmsi)
		candidates := all
		if cfg.UseBlocking {
			candidates = byBlock[block(ra.Name)]
		}
		bestScore := cfg.NameThreshold
		var best *registry.Record
		for _, e := range candidates {
			sim := NameSimilarity(ra.Name, e.name)
			if sim < bestScore {
				continue
			}
			if diff := ra.LengthM - e.rec.LengthM; diff > cfg.LengthToleranceM || diff < -cfg.LengthToleranceM {
				continue
			}
			//lint:ignore floateq deterministic tie-break on equal scores; exact equality is the intent
			if sim > bestScore || (best != nil && sim == bestScore && e.rec.MMSI < best.MMSI) {
				bestScore = sim
				best = e.rec
			}
		}
		if best != nil {
			out = append(out, LinkedPair{
				MMSIA: ra.MMSI, MMSIB: best.MMSI, Score: bestScore,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSIA < out[j].MMSIA })
	return out
}

// LinkedPair records one discovered correspondence between registers.
type LinkedPair struct {
	MMSIA uint32
	MMSIB uint32
	Score float64
}

// LinkQuality scores discovered links against the ground truth that a
// vessel links to itself (the synthetic registers share MMSIs).
type LinkQuality struct {
	Links     int
	Correct   int
	Precision float64
	Recall    float64
	F1        float64
}

// EvaluateLinks computes precision/recall/F1 treating MMSIA==MMSIB as the
// gold standard, with total the number of true linkable vessels.
func EvaluateLinks(links []LinkedPair, total int) LinkQuality {
	q := LinkQuality{Links: len(links)}
	for _, l := range links {
		if l.MMSIA == l.MMSIB {
			q.Correct++
		}
	}
	if q.Links > 0 {
		q.Precision = float64(q.Correct) / float64(q.Links)
	}
	if total > 0 {
		q.Recall = float64(q.Correct) / float64(total)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// MaterialiseLinks writes owl:sameAs triples for the discovered links into
// the store, connecting the two registers' vessel IRIs.
func MaterialiseLinks(st *Store, links []LinkedPair, providerA, providerB string) {
	for _, l := range links {
		st.Add(Triple{
			S: IRI(providerIRI(providerA, l.MMSIA)),
			P: IRI(PredSameAs),
			O: IRI(providerIRI(providerB, l.MMSIB)),
		})
	}
}

func providerIRI(provider string, mmsi uint32) string {
	return "mar:" + provider + "/vessel/" + itoa(mmsi)
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
