// Package semstore is the semantic integration layer of §2.2 and §2.5: an
// in-memory triple store with SPO/POS/OSP indexes and typed literals
// (including space-time points), a small maritime vocabulary, link
// discovery between dirty identity sources, and semantic trajectory
// annotation (stop/move episodes enriched with zone and weather context).
// It plays the role RDF stores with spatio-temporal extensions (Strabon
// et al.) play in the paper's survey, scoped to what the pipeline needs.
package semstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
)

// TermKind discriminates the kinds of RDF-ish terms.
type TermKind int

// Term kinds.
const (
	KindIRI TermKind = iota
	KindString
	KindFloat
	KindTime
	KindPoint
)

// Term is a subject, predicate or object. Predicates and subjects are
// IRIs; objects may be IRIs or typed literals.
type Term struct {
	Kind  TermKind
	IRI   string
	Str   string
	Num   float64
	Time  time.Time
	Point geo.Point
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, IRI: iri} }

// Str returns a string literal term.
func Str(s string) Term { return Term{Kind: KindString, Str: s} }

// Num returns a numeric literal term.
func Num(v float64) Term { return Term{Kind: KindFloat, Num: v} }

// Tim returns a time literal term.
func Tim(t time.Time) Term { return Term{Kind: KindTime, Time: t} }

// Pt returns a geographic point literal term.
func Pt(p geo.Point) Term { return Term{Kind: KindPoint, Point: p} }

// Key returns a canonical string encoding used by the indexes.
func (t Term) Key() string {
	switch t.Kind {
	case KindIRI:
		return "i:" + t.IRI
	case KindString:
		return "s:" + t.Str
	case KindFloat:
		return fmt.Sprintf("f:%g", t.Num)
	case KindTime:
		return "t:" + t.Time.UTC().Format(time.RFC3339Nano)
	case KindPoint:
		return fmt.Sprintf("p:%.6f,%.6f", t.Point.Lat, t.Point.Lon)
	default:
		return "?"
	}
}

// String renders the term for humans.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.IRI + ">"
	case KindString:
		return fmt.Sprintf("%q", t.Str)
	case KindFloat:
		return fmt.Sprintf("%g", t.Num)
	case KindTime:
		return t.Time.UTC().Format(time.RFC3339)
	case KindPoint:
		return t.Point.String()
	default:
		return "?"
	}
}

// Triple is one (subject, predicate, object) statement.
type Triple struct {
	S, P, O Term
}

// Maritime vocabulary: the predicates and classes the pipeline emits.
const (
	ClassVessel  = "mar:Vessel"
	ClassEpisode = "mar:Episode"
	ClassZone    = "mar:Zone"

	PredType       = "rdf:type"
	PredName       = "mar:name"
	PredFlag       = "mar:flag"
	PredShipType   = "mar:shipType"
	PredLengthM    = "mar:lengthM"
	PredHasEpisode = "mar:hasEpisode"
	PredEpisodeOf  = "mar:episodeOf"
	PredActivity   = "mar:activity"
	PredStartTime  = "mar:startTime"
	PredEndTime    = "mar:endTime"
	PredInZone     = "mar:inZone"
	PredAtPoint    = "mar:atPoint"
	PredAvgSpeedKn = "mar:avgSpeedKn"
	PredWindMS     = "mar:windSpeedMS"
	PredSameAs     = "owl:sameAs"
)

// VesselIRI builds the canonical IRI for a vessel.
func VesselIRI(mmsi uint32) string { return fmt.Sprintf("mar:vessel/%d", mmsi) }

// Store is the indexed triple store. It is safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	spo map[string][]Triple // subject key -> triples
	pos map[string][]Triple // predicate key -> triples
	osp map[string][]Triple // object key -> triples
	n   int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		spo: make(map[string][]Triple),
		pos: make(map[string][]Triple),
		osp: make(map[string][]Triple),
	}
}

// Add inserts a triple (duplicates are stored once).
func (st *Store) Add(tr Triple) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sk := tr.S.Key()
	for _, ex := range st.spo[sk] {
		//lint:ignore floateq duplicate detection over stored triples: values are stored verbatim, bitwise identity is the intent
		if ex == tr {
			return
		}
	}
	st.spo[sk] = append(st.spo[sk], tr)
	st.pos[tr.P.Key()] = append(st.pos[tr.P.Key()], tr)
	st.osp[tr.O.Key()] = append(st.osp[tr.O.Key()], tr)
	st.n++
}

// AddAll inserts a batch.
func (st *Store) AddAll(trs []Triple) {
	for _, tr := range trs {
		st.Add(tr)
	}
}

// Len returns the number of stored triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.n
}

// Pattern is a triple query: nil components are wildcards.
type Pattern struct {
	S, P, O *Term
}

// S_ helps build patterns: returns a pointer to the term.
func T(t Term) *Term { return &t }

// Match returns all triples matching the pattern, using the most selective
// available index. Results are sorted deterministically.
func (st *Store) Match(p Pattern) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var candidates []Triple
	switch {
	case p.S != nil:
		candidates = st.spo[p.S.Key()]
	case p.O != nil:
		candidates = st.osp[p.O.Key()]
	case p.P != nil:
		candidates = st.pos[p.P.Key()]
	default:
		for _, trs := range st.spo {
			candidates = append(candidates, trs...)
		}
	}
	var out []Triple
	for _, tr := range candidates {
		if p.S != nil && tr.S.Key() != p.S.Key() {
			continue
		}
		if p.P != nil && tr.P.Key() != p.P.Key() {
			continue
		}
		if p.O != nil && tr.O.Key() != p.O.Key() {
			continue
		}
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.S.Key() != b.S.Key() {
			return a.S.Key() < b.S.Key()
		}
		if a.P.Key() != b.P.Key() {
			return a.P.Key() < b.P.Key()
		}
		return a.O.Key() < b.O.Key()
	})
	return out
}

// MatchFilter returns triples matching the pattern and an arbitrary
// predicate on the object term (e.g. spatial or temporal filters).
func (st *Store) MatchFilter(p Pattern, keep func(Term) bool) []Triple {
	var out []Triple
	for _, tr := range st.Match(p) {
		if keep(tr.O) {
			out = append(out, tr)
		}
	}
	return out
}

// ObjectsWithin is the spatial query of §2.3: all triples with the given
// predicate whose point object lies in the rectangle.
func (st *Store) ObjectsWithin(pred string, r geo.Rect) []Triple {
	return st.MatchFilter(Pattern{P: T(IRI(pred))}, func(o Term) bool {
		return o.Kind == KindPoint && r.Contains(o.Point)
	})
}

// ObjectsDuring returns triples with the given predicate whose time object
// falls in [from, to].
func (st *Store) ObjectsDuring(pred string, from, to time.Time) []Triple {
	return st.MatchFilter(Pattern{P: T(IRI(pred))}, func(o Term) bool {
		return o.Kind == KindTime && !o.Time.Before(from) && !o.Time.After(to)
	})
}

// Describe returns every triple about a subject, the "concise bounded
// description" a UI shows for an entity.
func (st *Store) Describe(subjectIRI string) []Triple {
	return st.Match(Pattern{S: T(IRI(subjectIRI))})
}

// --- string similarity (link discovery substrate) ------------------------------

// Levenshtein returns the edit distance between two strings (bytes).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// NameSimilarity returns a [0,1] similarity between vessel names:
// normalised Levenshtein over upper-cased, squeezed strings.
func NameSimilarity(a, b string) float64 {
	na := normaliseName(a)
	nb := normaliseName(b)
	if na == "" && nb == "" {
		return 1
	}
	maxLen := len(na)
	if len(nb) > maxLen {
		maxLen = len(nb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(na, nb))/float64(maxLen)
}

func normaliseName(s string) string {
	s = strings.ToUpper(strings.TrimSpace(s))
	var sb strings.Builder
	lastSpace := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			if !lastSpace {
				sb.WriteByte(c)
			}
			lastSpace = true
			continue
		}
		lastSpace = false
		if (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
