package semstore

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// seg is a test trajectory leg: n samples a minute at a constant speed.
type seg struct {
	n  int
	kn float64
}

func segTrajectory(segs []seg) *model.Trajectory {
	tr := &model.Trajectory{MMSI: 1}
	at := t0()
	for _, sg := range segs {
		for i := 0; i < sg.n; i++ {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: 1, At: at,
				Pos:     geo.Point{Lat: 42, Lon: 5},
				SpeedKn: sg.kn,
			})
			at = at.Add(time.Minute)
		}
	}
	return tr
}

// TestSegmentEpisodesBoundaries pins the segmenter's edge behavior:
// threshold classification, transition-sample ownership, MinDuration
// filtering and the fate of the trailing in-progress episode.
func TestSegmentEpisodesBoundaries(t *testing.T) {
	cfg := DefaultEpisodeConfig() // stop 0.8 kn, slow 6 kn, min 10m
	cases := []struct {
		name string
		segs []seg
		want []Activity
	}{
		{
			"empty trajectory",
			nil,
			nil,
		},
		{
			"single sample never spans MinDuration",
			[]seg{{1, 12}},
			nil,
		},
		{
			"uniform leg exactly MinDuration is kept",
			// 11 samples span exactly 10 minutes: >= MinDuration.
			[]seg{{11, 12}},
			[]Activity{ActivityUnderway},
		},
		{
			"uniform leg just under MinDuration is dropped",
			[]seg{{10, 12}},
			nil,
		},
		{
			"threshold speeds classify to the slower activity",
			// Exactly StopSpeedKn stops; exactly SlowSpeedKn slow-moves.
			[]seg{{15, cfg.StopSpeedKn}, {15, cfg.SlowSpeedKn}, {15, cfg.SlowSpeedKn + 0.1}},
			[]Activity{ActivityAnchored, ActivitySlowMove, ActivityUnderway},
		},
		{
			"stop/move transitions split episodes",
			[]seg{{15, 12}, {15, 0.2}, {15, 12}},
			[]Activity{ActivityUnderway, ActivityAnchored, ActivityUnderway},
		},
		{
			"short middle episode dropped, neighbours not merged",
			// 5-minute stop vanishes; the two underway legs stay separate
			// episodes rather than fusing into one.
			[]seg{{15, 12}, {5, 0.2}, {15, 12}},
			[]Activity{ActivityUnderway, ActivityUnderway},
		},
		{
			"trailing in-progress episode flushed and kept when long enough",
			[]seg{{15, 0.2}, {15, 12}},
			[]Activity{ActivityAnchored, ActivityUnderway},
		},
		{
			"trailing in-progress episode dropped when too short",
			[]seg{{15, 0.2}, {5, 12}},
			[]Activity{ActivityAnchored},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := SegmentEpisodes(segTrajectory(c.segs), nil, cfg)
			if len(got) != len(c.want) {
				t.Fatalf("got %d episodes %+v, want %d", len(got), got, len(c.want))
			}
			for i, e := range got {
				if e.Activity != c.want[i] {
					t.Fatalf("episode %d is %s, want %s", i, e.Activity, c.want[i])
				}
			}
		})
	}
}

// TestSegmentEpisodesTransitionOwnership pins which episode the
// activity-changing sample belongs to: it ends the previous episode at
// its timestamp but its position and speed count toward the new one.
func TestSegmentEpisodesTransitionOwnership(t *testing.T) {
	cfg := DefaultEpisodeConfig()
	tr := segTrajectory([]seg{{15, 12}, {15, 0.2}})
	eps := SegmentEpisodes(tr, nil, cfg)
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2", len(eps))
	}
	transition := tr.Points[15].At
	if !eps[0].End.Equal(transition) || !eps[1].Start.Equal(transition) {
		t.Fatalf("boundary not at the transition sample: end %v, next start %v, want %v",
			eps[0].End, eps[1].Start, transition)
	}
	// The first episode averages only the 15 underway samples, the second
	// only the 15 stopped ones — the transition sample is not in both.
	if math.Abs(eps[0].AvgSpeed-12) > 1e-9 || math.Abs(eps[1].AvgSpeed-0.2) > 1e-9 {
		t.Fatalf("transition sample leaked across the boundary: avg speeds %v, %v",
			eps[0].AvgSpeed, eps[1].AvgSpeed)
	}
	if !eps[1].End.Equal(tr.Points[29].At) {
		t.Fatalf("trailing episode end %v, want the last sample %v", eps[1].End, tr.Points[29].At)
	}
}
