package semstore

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/zones"
)

// Activity labels a semantic trajectory episode, following the
// stop/move model of Parent et al. [34] specialised to the maritime
// domain.
type Activity string

// Episode activities.
const (
	ActivityMoored   Activity = "moored"    // stop inside a port zone
	ActivityAnchored Activity = "anchored"  // stop outside any port
	ActivityUnderway Activity = "underway"  // move at transit speed
	ActivitySlowMove Activity = "slow-move" // move below transit speed (possibly fishing)
)

// Episode is one semantically annotated trajectory segment.
type Episode struct {
	MMSI     uint32
	Activity Activity
	Start    time.Time
	End      time.Time
	Centroid geo.Point
	AvgSpeed float64  // knots
	ZoneIDs  []string // zones containing the centroid
}

// Duration returns the episode length.
func (e Episode) Duration() time.Duration { return e.End.Sub(e.Start) }

// EpisodeConfig tunes the stop/move segmentation.
type EpisodeConfig struct {
	// StopSpeedKn is the speed below which a sample counts as stopped.
	StopSpeedKn float64
	// SlowSpeedKn separates slow movement (fishing-like) from transit.
	SlowSpeedKn float64
	// MinDuration drops episodes shorter than this.
	MinDuration time.Duration
}

// DefaultEpisodeConfig returns maritime-plausible thresholds.
func DefaultEpisodeConfig() EpisodeConfig {
	return EpisodeConfig{StopSpeedKn: 0.8, SlowSpeedKn: 6, MinDuration: 10 * time.Minute}
}

// SegmentEpisodes converts a trajectory into stop/move episodes and
// annotates each with the zones containing its centroid. This is the
// "semantic trajectory" computation the paper frames as a link-discovery/
// annotation task (§2.2, §3.1).
//
// Boundary semantics (pinned by TestSegmentEpisodesBoundaries): a
// sample at an activity threshold belongs to the slower class (<=
// StopSpeedKn stops, <= SlowSpeedKn slow-moves); the sample that
// changes activity ends the previous episode at its timestamp and opens
// — and counts toward — the new one; episodes strictly shorter than
// MinDuration are dropped without merging their neighbours; and the
// trailing in-progress episode IS flushed at the last sample, kept
// under the same MinDuration filter (the online anomaly fold, which
// cannot see stream end, reports it separately as the provisional
// "current" episode instead).
func SegmentEpisodes(tr *model.Trajectory, zs *zones.ZoneSet, cfg EpisodeConfig) []Episode {
	if tr.Len() == 0 {
		return nil
	}
	classify := func(s model.VesselState) Activity {
		switch {
		case s.SpeedKn <= cfg.StopSpeedKn:
			return ActivityAnchored // refined to moored later via zones
		case s.SpeedKn <= cfg.SlowSpeedKn:
			return ActivitySlowMove
		default:
			return ActivityUnderway
		}
	}
	var out []Episode
	cur := Episode{MMSI: tr.MMSI, Activity: classify(tr.Points[0]), Start: tr.Points[0].At}
	var latSum, lonSum, spdSum float64
	var n int
	flush := func(end time.Time) {
		cur.End = end
		if n > 0 {
			cur.Centroid = geo.Point{Lat: latSum / float64(n), Lon: lonSum / float64(n)}
			cur.AvgSpeed = spdSum / float64(n)
		}
		if cur.End.Sub(cur.Start) >= cfg.MinDuration {
			Annotate(&cur, zs)
			out = append(out, cur)
		}
		latSum, lonSum, spdSum, n = 0, 0, 0, 0
	}
	for i, p := range tr.Points {
		act := classify(p)
		if act != cur.Activity {
			flush(p.At)
			cur = Episode{MMSI: tr.MMSI, Activity: act, Start: p.At}
		}
		latSum += p.Pos.Lat
		lonSum += p.Pos.Lon
		spdSum += p.SpeedKn
		n++
		if i == tr.Len()-1 {
			flush(p.At)
		}
	}
	return out
}

// Annotate refines an episode's activity using zones (anchored inside a
// port becomes moored) and records zone membership. SegmentEpisodes calls
// it for every kept episode; the online anomaly stage calls it on each
// incrementally closed episode so streamed and batch annotations agree.
func Annotate(e *Episode, zs *zones.ZoneSet) {
	if zs == nil {
		return
	}
	for _, z := range zs.At(e.Centroid) {
		e.ZoneIDs = append(e.ZoneIDs, z.ID)
		if e.Activity == ActivityAnchored && z.Kind == zones.KindPort {
			e.Activity = ActivityMoored
		}
	}
}

// EpisodeIRI builds the IRI of an episode entity.
func EpisodeIRI(mmsi uint32, idx int) string {
	return fmt.Sprintf("mar:episode/%d/%d", mmsi, idx)
}

// MaterialiseEpisodes writes the episodes of one vessel into the store as
// linked entities: vessel —hasEpisode→ episode with activity, interval,
// centroid, speed and zone triples. Returns the number of triples added.
func MaterialiseEpisodes(st *Store, episodes []Episode) int {
	before := st.Len()
	for i, e := range episodes {
		MaterialiseEpisode(st, e, i)
	}
	return st.Len() - before
}

// MaterialiseEpisode writes one episode into the store under the IRI
// EpisodeIRI(e.MMSI, idx). The caller owns the per-vessel index: batch
// materialisation numbers a vessel's episodes from zero, while the online
// anomaly stage carries a monotone counter per vessel so incrementally
// closed episodes never collide.
func MaterialiseEpisode(st *Store, e Episode, idx int) {
	epi := EpisodeIRI(e.MMSI, idx)
	ves := VesselIRI(e.MMSI)
	st.Add(Triple{S: IRI(ves), P: IRI(PredHasEpisode), O: IRI(epi)})
	st.Add(Triple{S: IRI(epi), P: IRI(PredType), O: IRI(ClassEpisode)})
	st.Add(Triple{S: IRI(epi), P: IRI(PredEpisodeOf), O: IRI(ves)})
	st.Add(Triple{S: IRI(epi), P: IRI(PredActivity), O: Str(string(e.Activity))})
	st.Add(Triple{S: IRI(epi), P: IRI(PredStartTime), O: Tim(e.Start)})
	st.Add(Triple{S: IRI(epi), P: IRI(PredEndTime), O: Tim(e.End)})
	st.Add(Triple{S: IRI(epi), P: IRI(PredAtPoint), O: Pt(e.Centroid)})
	st.Add(Triple{S: IRI(epi), P: IRI(PredAvgSpeedKn), O: Num(e.AvgSpeed)})
	for _, zid := range e.ZoneIDs {
		st.Add(Triple{S: IRI(epi), P: IRI(PredInZone), O: IRI("mar:zone/" + zid)})
	}
}
