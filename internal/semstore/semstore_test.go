package semstore

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/zones"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func TestStoreAddAndMatch(t *testing.T) {
	st := NewStore()
	v1 := IRI(VesselIRI(227000001))
	st.Add(Triple{S: v1, P: IRI(PredType), O: IRI(ClassVessel)})
	st.Add(Triple{S: v1, P: IRI(PredName), O: Str("NORTHERN STAR")})
	st.Add(Triple{S: v1, P: IRI(PredLengthM), O: Num(180)})
	st.Add(Triple{S: v1, P: IRI(PredName), O: Str("NORTHERN STAR")}) // duplicate

	if st.Len() != 3 {
		t.Fatalf("len %d, duplicates must be dropped", st.Len())
	}
	// By subject.
	if got := st.Match(Pattern{S: T(v1)}); len(got) != 3 {
		t.Errorf("subject match: %d", len(got))
	}
	// By predicate.
	if got := st.Match(Pattern{P: T(IRI(PredName))}); len(got) != 1 || got[0].O.Str != "NORTHERN STAR" {
		t.Errorf("predicate match: %v", got)
	}
	// By object.
	if got := st.Match(Pattern{O: T(IRI(ClassVessel))}); len(got) != 1 {
		t.Errorf("object match: %d", len(got))
	}
	// Fully bound.
	if got := st.Match(Pattern{S: T(v1), P: T(IRI(PredLengthM)), O: T(Num(180))}); len(got) != 1 {
		t.Errorf("exact match: %d", len(got))
	}
	if got := st.Match(Pattern{S: T(v1), P: T(IRI(PredLengthM)), O: T(Num(99))}); len(got) != 0 {
		t.Errorf("wrong object should not match: %v", got)
	}
	// Wildcard-everything.
	if got := st.Match(Pattern{}); len(got) != 3 {
		t.Errorf("full scan: %d", len(got))
	}
}

func TestSpatialTemporalFilters(t *testing.T) {
	st := NewStore()
	for i := 0; i < 10; i++ {
		epi := IRI(EpisodeIRI(1, i))
		st.Add(Triple{S: epi, P: IRI(PredAtPoint), O: Pt(geo.Point{Lat: 40 + float64(i), Lon: 5})})
		st.Add(Triple{S: epi, P: IRI(PredStartTime), O: Tim(t0().Add(time.Duration(i) * time.Hour))})
	}
	within := st.ObjectsWithin(PredAtPoint, geo.Rect{MinLat: 42.5, MinLon: 0, MaxLat: 45.5, MaxLon: 10})
	if len(within) != 3 {
		t.Errorf("spatial filter: %d, want 3", len(within))
	}
	during := st.ObjectsDuring(PredStartTime, t0().Add(2*time.Hour), t0().Add(5*time.Hour))
	if len(during) != 4 {
		t.Errorf("temporal filter: %d, want 4", len(during))
	}
}

func TestDescribe(t *testing.T) {
	st := NewStore()
	v := IRI(VesselIRI(5))
	st.Add(Triple{S: v, P: IRI(PredName), O: Str("X")})
	st.Add(Triple{S: v, P: IRI(PredFlag), O: Str("FR")})
	st.Add(Triple{S: IRI(VesselIRI(6)), P: IRI(PredName), O: Str("Y")})
	if got := st.Describe(VesselIRI(5)); len(got) != 2 {
		t.Errorf("describe: %d", len(got))
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNameSimilarity(t *testing.T) {
	if s := NameSimilarity("EVER GIVEN", "EVER GIVEN"); s != 1 {
		t.Errorf("identical names: %f", s)
	}
	if s := NameSimilarity("EVER GIVEN", "EVR GIVEN"); s < 0.85 {
		t.Errorf("one-typo names: %f", s)
	}
	if s := NameSimilarity("EVER GIVEN", "PACIFIC DAWN"); s > 0.5 {
		t.Errorf("unrelated names: %f", s)
	}
	// Case and punctuation insensitive.
	if s := NameSimilarity("L'Audacieuse", "LAUDACIEUSE"); s != 1 {
		t.Errorf("normalisation: %f", s)
	}
}

func TestDiscoverLinksOnSyntheticRegisters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, ra, rb := registry.SyntheticPair(rng, 300, 0.02, 0.25)
	links := DiscoverLinks(ra, rb, DefaultLinkConfig())
	q := EvaluateLinks(links, 300)
	if q.Precision < 0.97 {
		t.Errorf("link precision %.3f", q.Precision)
	}
	if q.Recall < 0.80 {
		t.Errorf("link recall %.3f", q.Recall)
	}
	t.Logf("E12 mini: links=%d precision=%.3f recall=%.3f f1=%.3f", q.Links, q.Precision, q.Recall, q.F1)
}

func TestBlockingAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, ra, rb := registry.SyntheticPair(rng, 200, 0.02, 0.25)
	withBlocking := DiscoverLinks(ra, rb, DefaultLinkConfig())
	cfg := DefaultLinkConfig()
	cfg.UseBlocking = false
	without := DiscoverLinks(ra, rb, cfg)
	qb := EvaluateLinks(withBlocking, 200)
	qw := EvaluateLinks(without, 200)
	// Exhaustive matching recalls at least as much as blocked matching.
	if qw.Recall < qb.Recall-1e-9 {
		t.Errorf("exhaustive recall %.3f below blocked %.3f", qw.Recall, qb.Recall)
	}
}

func TestMaterialiseLinks(t *testing.T) {
	st := NewStore()
	MaterialiseLinks(st, []LinkedPair{{MMSIA: 1, MMSIB: 1, Score: 1}}, "A", "B")
	got := st.Match(Pattern{P: T(IRI(PredSameAs))})
	if len(got) != 1 {
		t.Fatalf("sameAs triples: %d", len(got))
	}
	if got[0].S.IRI != "mar:A/vessel/1" || got[0].O.IRI != "mar:B/vessel/1" {
		t.Errorf("link triple wrong: %v", got[0])
	}
}

// voyageTrajectory builds: moored in port (20 min) → transit (30 min) →
// slow fishing-like movement (30 min) → transit back (20 min).
func voyageTrajectory() *model.Trajectory {
	tr := &model.Trajectory{MMSI: 9}
	at := t0()
	port := geo.Point{Lat: 43.0, Lon: 5.0}
	add := func(pos geo.Point, speed float64, dur time.Duration, course float64) geo.Point {
		for elapsed := time.Duration(0); elapsed < dur; elapsed += 30 * time.Second {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: 9, At: at, Pos: pos, SpeedKn: speed, CourseDeg: course,
			})
			pos = geo.Project(pos, geo.Velocity{SpeedMS: speed * geo.Knot, CourseDg: course}, 30)
			at = at.Add(30 * time.Second)
		}
		return pos
	}
	pos := add(port, 0.2, 20*time.Minute, 0) // moored
	pos = add(pos, 14, 30*time.Minute, 45)   // transit out
	pos = add(pos, 3.5, 30*time.Minute, 120) // slow / fishing
	_ = add(pos, 14, 20*time.Minute, 225)    // transit back
	return tr
}

func testZones() *zones.ZoneSet {
	return zones.NewZoneSet([]*zones.Zone{
		zones.PortZone("port-mrs", "Marseille", geo.Point{Lat: 43.0, Lon: 5.0}, 5000),
	})
}

func TestSegmentEpisodes(t *testing.T) {
	tr := voyageTrajectory()
	eps := SegmentEpisodes(tr, testZones(), DefaultEpisodeConfig())
	if len(eps) != 4 {
		t.Fatalf("expected 4 episodes, got %d: %+v", len(eps), eps)
	}
	wantOrder := []Activity{ActivityMoored, ActivityUnderway, ActivitySlowMove, ActivityUnderway}
	for i, e := range eps {
		if e.Activity != wantOrder[i] {
			t.Errorf("episode %d activity %s, want %s", i, e.Activity, wantOrder[i])
		}
		if !e.End.After(e.Start) {
			t.Errorf("episode %d has empty interval", i)
		}
	}
	// The moored episode must carry the port zone annotation.
	if len(eps[0].ZoneIDs) == 0 || eps[0].ZoneIDs[0] != "port-mrs" {
		t.Errorf("moored episode zones: %v", eps[0].ZoneIDs)
	}
	// Transit episodes should have transit-like speed.
	if eps[1].AvgSpeed < 10 {
		t.Errorf("transit avg speed %.1f", eps[1].AvgSpeed)
	}
}

func TestSegmentEpisodesMinDuration(t *testing.T) {
	tr := voyageTrajectory()
	cfg := DefaultEpisodeConfig()
	cfg.MinDuration = 25 * time.Minute // drops the 20-minute episodes
	eps := SegmentEpisodes(tr, testZones(), cfg)
	for _, e := range eps {
		if e.Duration() < cfg.MinDuration {
			t.Errorf("episode below min duration survived: %v", e.Duration())
		}
	}
	if got := SegmentEpisodes(&model.Trajectory{}, nil, cfg); got != nil {
		t.Error("empty trajectory should give no episodes")
	}
}

func TestMaterialiseEpisodes(t *testing.T) {
	st := NewStore()
	eps := SegmentEpisodes(voyageTrajectory(), testZones(), DefaultEpisodeConfig())
	n := MaterialiseEpisodes(st, eps)
	if n == 0 {
		t.Fatal("no triples materialised")
	}
	// The vessel must link to every episode.
	got := st.Match(Pattern{S: T(IRI(VesselIRI(9))), P: T(IRI(PredHasEpisode))})
	if len(got) != len(eps) {
		t.Errorf("hasEpisode count %d, want %d", len(got), len(eps))
	}
	// Activity round trip for episode 0.
	acts := st.Match(Pattern{S: T(IRI(EpisodeIRI(9, 0))), P: T(IRI(PredActivity))})
	if len(acts) != 1 || acts[0].O.Str != string(ActivityMoored) {
		t.Errorf("episode 0 activity: %v", acts)
	}
	// Zone annotation queryable by object.
	inPort := st.Match(Pattern{P: T(IRI(PredInZone)), O: T(IRI("mar:zone/port-mrs"))})
	if len(inPort) == 0 {
		t.Error("no episodes annotated with the port zone")
	}
}

func TestMatchDeterministic(t *testing.T) {
	st := NewStore()
	for i := 0; i < 20; i++ {
		st.Add(Triple{S: IRI(VesselIRI(uint32(i % 4))), P: IRI(PredName), O: Str(string(rune('A' + i)))})
	}
	a := st.Match(Pattern{P: T(IRI(PredName))})
	b := st.Match(Pattern{P: T(IRI(PredName))})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("match order nondeterministic")
		}
	}
}

func BenchmarkStoreAdd(b *testing.B) {
	st := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Add(Triple{S: IRI(VesselIRI(uint32(i))), P: IRI(PredLengthM), O: Num(float64(i))})
	}
}

func BenchmarkMatchBySubject(b *testing.B) {
	st := NewStore()
	for i := 0; i < 10000; i++ {
		st.Add(Triple{S: IRI(VesselIRI(uint32(i % 100))), P: IRI(PredLengthM), O: Num(float64(i))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Match(Pattern{S: T(IRI(VesselIRI(50)))})
	}
}

func BenchmarkDiscoverLinks300(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	_, ra, rb := registry.SyntheticPair(rng, 300, 0.02, 0.25)
	cfg := DefaultLinkConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DiscoverLinks(ra, rb, cfg)
	}
}
