// Package forecast implements anticipated-trajectory prediction (§3.1):
// pure kinematics (dead reckoning and a constant-velocity Kalman filter),
// a patterns-of-life route model learned from historical traffic (the
// context-based normalcy of §4 [40]), and a hybrid that follows the route
// model where history exists and falls back to kinematics elsewhere.
// Experiment E9 sweeps prediction horizon and compares the four.
package forecast

import (
	"sort"
	"time"

	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/model"
)

// Predictor forecasts a vessel's position at a future instant from its
// observed history.
type Predictor interface {
	Name() string
	// Predict extrapolates the trajectory (history up to its last point)
	// by horizon. ok is false when the predictor has no basis (empty
	// history, unseen territory).
	Predict(tr *model.Trajectory, horizon time.Duration) (geo.Point, bool)
}

// DeadReckoning projects the last reported velocity forward: the baseline
// every bridge officer runs in their head.
type DeadReckoning struct{}

// Name implements Predictor.
func (DeadReckoning) Name() string { return "dead-reckoning" }

// Predict implements Predictor.
func (DeadReckoning) Predict(tr *model.Trajectory, horizon time.Duration) (geo.Point, bool) {
	n := tr.Len()
	if n == 0 {
		return geo.Point{}, false
	}
	last := tr.Points[n-1]
	return geo.Project(last.Pos, last.Velocity(), horizon.Seconds()), true
}

// Kalman runs a constant-velocity filter over the recent history and
// extrapolates its state: smoother than dead reckoning under noisy
// reports, identical in spirit.
type Kalman struct {
	// Window bounds how much history seeds the filter (default 30 min).
	Window time.Duration
	// ProcessNoise is the filter's manoeuvre allowance (default 0.05).
	ProcessNoise float64
}

// Name implements Predictor.
func (Kalman) Name() string { return "kalman" }

// Predict implements Predictor.
func (k Kalman) Predict(tr *model.Trajectory, horizon time.Duration) (geo.Point, bool) {
	n := tr.Len()
	if n == 0 {
		return geo.Point{}, false
	}
	window := k.Window
	if window == 0 {
		window = 30 * time.Minute
	}
	q := k.ProcessNoise
	if q == 0 {
		q = 0.05
	}
	last := tr.Points[n-1]
	from := last.At.Add(-window)
	f := fusion.NewKalmanCV(last.Pos, q)
	for _, p := range tr.Points {
		if p.At.Before(from) {
			continue
		}
		if !f.Initialised() {
			f.Init(p.At, p.Pos, 15)
			continue
		}
		f.Predict(p.At)
		f.Update(p.Pos, 15)
	}
	if !f.Initialised() {
		return geo.Point{}, false
	}
	return f.PredictedPosition(last.At.Add(horizon)), true
}

// Evaluation harness -----------------------------------------------------------

// HorizonError aggregates prediction error at one horizon for one
// predictor.
type HorizonError struct {
	Predictor string
	Horizon   time.Duration
	N         int
	MeanM     float64
	P90M      float64
}

// Evaluate sweeps horizons over test trajectories: at every eval point
// (each trajectory sampled every step), each predictor sees the history up
// to that instant and is scored against the trajectory's actual position
// at instant+horizon. Trajectory boundaries bound what can be scored.
func Evaluate(predictors []Predictor, trajectories []*model.Trajectory, horizons []time.Duration, step time.Duration) []HorizonError {
	type acc struct {
		errs []float64
	}
	accs := make(map[string]map[time.Duration]*acc)
	for _, p := range predictors {
		accs[p.Name()] = make(map[time.Duration]*acc)
		for _, h := range horizons {
			accs[p.Name()][h] = &acc{}
		}
	}
	for _, tr := range trajectories {
		if tr.Len() < 2 {
			continue
		}
		maxH := horizons[0]
		for _, h := range horizons {
			if h > maxH {
				maxH = h
			}
		}
		for at := tr.Start().Add(step); !at.After(tr.End().Add(-maxH)); at = at.Add(step) {
			history := tr.Slice(tr.Start(), at)
			if history.Len() < 2 {
				continue
			}
			for _, h := range horizons {
				truth, ok := tr.At(at.Add(h))
				if !ok {
					continue
				}
				for _, p := range predictors {
					pred, ok := p.Predict(history, h)
					if !ok {
						continue
					}
					a := accs[p.Name()][h]
					a.errs = append(a.errs, geo.Distance(pred, truth.Pos))
				}
			}
		}
	}
	var out []HorizonError
	for _, p := range predictors {
		for _, h := range horizons {
			a := accs[p.Name()][h]
			he := HorizonError{Predictor: p.Name(), Horizon: h, N: len(a.errs)}
			if len(a.errs) > 0 {
				var sum float64
				for _, e := range a.errs {
					sum += e
				}
				he.MeanM = sum / float64(len(a.errs))
				he.P90M = percentile(a.errs, 0.9)
			}
			out = append(out, he)
		}
	}
	return out
}

func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
