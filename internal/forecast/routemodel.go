package forecast

import (
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// RouteModel is the patterns-of-life predictor: a first-order Markov
// model over grid cells learned from historical trajectories. A state is
// the directed cell transition (from, to); the model learns which cell
// traffic enters next and how fast it moves there, so predictions follow
// the lanes historical traffic followed — including the bends dead
// reckoning cuts.
type RouteModel struct {
	grid geo.Grid
	// next[(prev, cur)] = counts of the cell traffic entered next.
	next map[[2]geo.CellID]map[geo.CellID]int
	// speed[cell] accumulates mean transit speed (m/s).
	speedSum map[geo.CellID]float64
	speedN   map[geo.CellID]int
	trained  int
}

// NewRouteModel returns an untrained model with the given cell size in
// degrees (0.05° ≈ 5.5 km works well for coastal basins).
func NewRouteModel(cellDeg float64) *RouteModel {
	return &RouteModel{
		grid:     geo.NewGrid(cellDeg),
		next:     make(map[[2]geo.CellID]map[geo.CellID]int),
		speedSum: make(map[geo.CellID]float64),
		speedN:   make(map[geo.CellID]int),
	}
}

func transKey(prev, cur geo.CellID) [2]geo.CellID {
	return [2]geo.CellID{prev, cur}
}

// Train ingests one historical trajectory.
func (rm *RouteModel) Train(tr *model.Trajectory) {
	if tr.Len() < 2 {
		return
	}
	rm.trained++
	// Cell sequence with duplicates collapsed.
	var cells []geo.CellID
	var speeds []float64
	for _, p := range tr.Points {
		c := rm.grid.Cell(p.Pos)
		if len(cells) == 0 || cells[len(cells)-1] != c {
			cells = append(cells, c)
			speeds = append(speeds, p.SpeedKn*geo.Knot)
		}
		rm.speedSum[c] += p.SpeedKn * geo.Knot
		rm.speedN[c]++
	}
	for i := 2; i < len(cells); i++ {
		key := transKey(cells[i-2], cells[i-1])
		m, ok := rm.next[key]
		if !ok {
			m = make(map[geo.CellID]int)
			rm.next[key] = m
		}
		m[cells[i]]++
	}
	_ = speeds
}

// TrainAll ingests a batch of trajectories.
func (rm *RouteModel) TrainAll(trs []*model.Trajectory) {
	for _, tr := range trs {
		rm.Train(tr)
	}
}

// Trained returns the number of trajectories ingested.
func (rm *RouteModel) Trained() int { return rm.trained }

// Name implements Predictor.
func (rm *RouteModel) Name() string { return "route-model" }

// mostLikelyNext returns the most frequent successor of the directed
// transition (prev → cur) whose direction stays within ±75° of the
// current walk heading — the gate keeps the walk from being hijacked by
// busier crossing lanes at junctions. Falls back to the unfiltered best
// when no candidate passes the gate. Ties break deterministically.
func (rm *RouteModel) mostLikelyNext(prev, cur geo.CellID, heading float64) (geo.CellID, bool) {
	m, ok := rm.next[transKey(prev, cur)]
	if !ok || len(m) == 0 {
		return 0, false
	}
	from := rm.grid.CellCenter(cur)
	pick := func(gate bool) (geo.CellID, int) {
		var best geo.CellID
		bestN := -1
		for c, n := range m {
			if gate {
				brg := geo.Bearing(from, rm.grid.CellCenter(c))
				diff := geo.NormalizeBearing(brg - heading)
				if diff > 180 {
					diff = 360 - diff
				}
				if diff > 75 {
					continue
				}
			}
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		return best, bestN
	}
	if best, n := pick(true); n >= 0 {
		return best, true
	}
	best, _ := pick(false)
	return best, true
}

// transitionSupport returns the total training count behind (prev → cur).
func (rm *RouteModel) transitionSupport(prev, cur geo.CellID) int {
	total := 0
	for _, n := range rm.next[transKey(prev, cur)] {
		total += n
	}
	return total
}

// cellSpeed returns the historical mean speed in the cell, or fallback.
func (rm *RouteModel) cellSpeed(c geo.CellID, fallback float64) float64 {
	if n := rm.speedN[c]; n > 0 {
		if v := rm.speedSum[c] / float64(n); v > 0.5 {
			return v
		}
	}
	return fallback
}

// Predict implements Predictor: walk the most probable cell chain from
// the vessel's current directed transition, spending the horizon at the
// historical per-cell speeds, and land proportionally inside the final
// leg. ok is false when the vessel's situation has no history.
func (rm *RouteModel) Predict(tr *model.Trajectory, horizon time.Duration) (geo.Point, bool) {
	n := tr.Len()
	if n == 0 {
		return geo.Point{}, false
	}
	last := tr.Points[n-1]
	cur := rm.grid.Cell(last.Pos)
	// Find the previous distinct cell for direction.
	prev := cur
	for i := n - 2; i >= 0; i-- {
		if c := rm.grid.Cell(tr.Points[i].Pos); c != cur {
			prev = c
			break
		}
	}
	if prev == cur {
		return geo.Point{}, false // no direction information
	}
	fallbackSpeed := last.SpeedKn * geo.Knot
	if fallbackSpeed < 0.5 {
		// Stationary vessel: predict staying put.
		return last.Pos, true
	}
	// Abstain when the vessel's current directed transition has thin
	// support: off-lane behaviour (fishing wander, manoeuvring) has no
	// pattern-of-life to follow, and a confident-looking walk would run
	// away from a vessel that is actually orbiting. The hybrid falls back
	// to kinematics in that case.
	if support := rm.transitionSupport(prev, cur); support < 3 {
		return geo.Point{}, false
	}
	remaining := horizon.Seconds()
	pos := last.Pos
	heading := last.CourseDeg
	a, b := prev, cur
	for remaining > 0 {
		nxt, ok := rm.mostLikelyNext(a, b, heading)
		if !ok {
			// History runs out: dead-reckon the remainder along the last
			// inter-cell direction.
			brg := geo.Bearing(rm.grid.CellCenter(a), rm.grid.CellCenter(b))
			speed := rm.cellSpeed(b, fallbackSpeed)
			return geo.Destination(pos, brg, speed*remaining), true
		}
		target := rm.grid.CellCenter(nxt)
		dist := geo.Distance(pos, target)
		speed := rm.cellSpeed(b, fallbackSpeed)
		legTime := dist / speed
		if legTime >= remaining {
			frac := remaining / legTime
			return geo.Interpolate(pos, target, frac), true
		}
		remaining -= legTime
		heading = geo.Bearing(pos, target)
		pos = target
		a, b = b, nxt
	}
	return pos, true
}

// Hybrid blends the route model with a kinematic fallback: the route
// model answers where it has history; the fallback covers everything
// else. This is the §4 prescription — context (patterns-of-life) as the
// reference for expectation, kinematics as the floor.
type Hybrid struct {
	Route    *RouteModel
	Fallback Predictor
}

// Name implements Predictor.
func (Hybrid) Name() string { return "hybrid" }

// Predict implements Predictor.
func (h Hybrid) Predict(tr *model.Trajectory, horizon time.Duration) (geo.Point, bool) {
	if h.Route != nil {
		if p, ok := h.Route.Predict(tr, horizon); ok {
			return p, true
		}
	}
	if h.Fallback == nil {
		return DeadReckoning{}.Predict(tr, horizon)
	}
	return h.Fallback.Predict(tr, horizon)
}
