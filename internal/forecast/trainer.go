package forecast

import (
	"repro/internal/geo"
	"repro/internal/model"
)

// Trainer feeds one vessel's samples into a RouteModel incrementally, as
// they arrive, accumulating exactly the statistics Train would for the
// same point sequence: per-cell speed sums for every point, and directed
// cell-transition counts once three distinct cells have been crossed.
// The online tracker stage keeps one Trainer per vessel over a shared
// per-shard model, so the route prior grows with the feed instead of
// requiring an offline training pass.
//
// A Trainer is not safe for concurrent use; callers serialise Observe
// with their own lock (the stage holds its shard mutex).
type Trainer struct {
	rm *RouteModel
	// first buffers the opening sample: Train ignores one-point
	// trajectories entirely, so nothing is committed to the model until
	// a second sample proves the vessel has a track.
	first     *model.VesselState
	started   bool
	prev, cur geo.CellID
	distinct  int
}

// NewTrainer returns an incremental feeder for one vessel's samples.
func (rm *RouteModel) NewTrainer() *Trainer { return &Trainer{rm: rm} }

// Observe ingests the vessel's next sample (callers feed points in time
// order, as Train does).
func (t *Trainer) Observe(p model.VesselState) {
	if !t.started {
		if t.first == nil {
			cp := p
			t.first = &cp
			return
		}
		t.started = true
		t.rm.trained++
		first := *t.first
		t.first = nil
		t.observe(first)
	}
	t.observe(p)
}

func (t *Trainer) observe(p model.VesselState) {
	rm := t.rm
	c := rm.grid.Cell(p.Pos)
	rm.speedSum[c] += p.SpeedKn * geo.Knot
	rm.speedN[c]++
	if t.distinct > 0 && c == t.cur {
		return
	}
	t.distinct++
	if t.distinct >= 3 {
		key := transKey(t.prev, t.cur)
		m, ok := rm.next[key]
		if !ok {
			m = make(map[geo.CellID]int)
			rm.next[key] = m
		}
		m[c]++
	}
	t.prev, t.cur = t.cur, c
}
