package forecast

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

// straight builds a constant-velocity trajectory.
func straight(mmsi uint32, start geo.Point, course, speedKn float64, n int, stepSec float64) *model.Trajectory {
	tr := &model.Trajectory{MMSI: mmsi}
	pos := start
	at := t0()
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, model.VesselState{
			MMSI: mmsi, At: at, Pos: pos, SpeedKn: speedKn, CourseDeg: course,
		})
		pos = geo.Project(pos, geo.Velocity{SpeedMS: speedKn * geo.Knot, CourseDg: course}, stepSec)
		at = at.Add(time.Duration(stepSec) * time.Second)
	}
	return tr
}

// dogleg builds a route with a 90° turn at the midpoint — the shape that
// separates route-following prediction from dead reckoning.
func dogleg(mmsi uint32, start geo.Point, speedKn float64, legN int, stepSec float64, startAt time.Time) *model.Trajectory {
	tr := &model.Trajectory{MMSI: mmsi}
	pos := start
	at := startAt
	addLeg := func(course float64) {
		for i := 0; i < legN; i++ {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: mmsi, At: at, Pos: pos, SpeedKn: speedKn, CourseDeg: course,
			})
			pos = geo.Project(pos, geo.Velocity{SpeedMS: speedKn * geo.Knot, CourseDg: course}, stepSec)
			at = at.Add(time.Duration(stepSec) * time.Second)
		}
	}
	addLeg(90)
	addLeg(0)
	return tr
}

func TestDeadReckoningStraight(t *testing.T) {
	tr := straight(1, geo.Point{Lat: 41, Lon: 6}, 90, 12, 60, 30)
	horizon := 20 * time.Minute
	pred, ok := DeadReckoning{}.Predict(tr, horizon)
	if !ok {
		t.Fatal("prediction failed")
	}
	last := tr.Points[tr.Len()-1]
	truth := geo.Project(last.Pos, last.Velocity(), horizon.Seconds())
	if d := geo.Distance(pred, truth); d > 1 {
		t.Errorf("DR prediction off by %.1f m on straight track", d)
	}
	if _, ok := (DeadReckoning{}).Predict(&model.Trajectory{}, horizon); ok {
		t.Error("empty history must fail")
	}
}

func TestKalmanPredictorStraight(t *testing.T) {
	tr := straight(1, geo.Point{Lat: 41, Lon: 6}, 45, 10, 60, 30)
	pred, ok := Kalman{}.Predict(tr, 15*time.Minute)
	if !ok {
		t.Fatal("prediction failed")
	}
	last := tr.Points[tr.Len()-1]
	truth := geo.Project(last.Pos, last.Velocity(), (15 * time.Minute).Seconds())
	if d := geo.Distance(pred, truth); d > 200 {
		t.Errorf("Kalman prediction off by %.0f m on straight noise-free track", d)
	}
}

func TestRouteModelLearnsTheTurn(t *testing.T) {
	rm := NewRouteModel(0.05)
	// Train on 30 historical voyages over the same dogleg.
	start := geo.Point{Lat: 41, Lon: 6}
	for i := 0; i < 30; i++ {
		jitter := geo.Destination(start, float64(i*12%360), float64(i%5)*200)
		rm.Train(dogleg(uint32(100+i), jitter, 12, 80, 30, t0()))
	}
	if rm.Trained() != 30 {
		t.Fatalf("trained %d", rm.Trained())
	}
	// Test vessel: currently approaching the turn on the first leg.
	test := dogleg(999, start, 12, 80, 30, t0())
	// History: first 70 points (before the turn at point 80).
	histEnd := test.Points[69].At
	history := test.Slice(test.Start(), histEnd)
	// Predict 40 minutes ahead: the truth is well into the second leg.
	horizon := 40 * time.Minute
	truth, _ := test.At(histEnd.Add(horizon))

	drPred, _ := DeadReckoning{}.Predict(history, horizon)
	rmPred, ok := rm.Predict(history, horizon)
	if !ok {
		t.Fatal("route model should know this territory")
	}
	drErr := geo.Distance(drPred, truth.Pos)
	rmErr := geo.Distance(rmPred, truth.Pos)
	if rmErr >= drErr {
		t.Errorf("route model (%.0f m) should beat dead reckoning (%.0f m) across the turn", rmErr, drErr)
	}
	// The route model must land within a few cells of the truth.
	if rmErr > 15000 {
		t.Errorf("route model error %.0f m too large", rmErr)
	}
}

func TestRouteModelUnknownTerritory(t *testing.T) {
	rm := NewRouteModel(0.05)
	rm.Train(straight(1, geo.Point{Lat: 41, Lon: 6}, 90, 12, 60, 30))
	// A vessel in a completely different area: no direction history match.
	foreign := straight(2, geo.Point{Lat: 50, Lon: -20}, 90, 12, 60, 30)
	if _, ok := rm.Predict(foreign, 10*time.Minute); ok {
		// Prediction may still succeed via DR extension if cell transition
		// unknown — but the vessel's own cells give direction, so the
		// model extends by dead reckoning. That is acceptable; verify it
		// does not crash and lands somewhere plausible.
		t.Log("route model extrapolated in unknown territory (DR extension)")
	}
	// A stationary vessel predicts staying put.
	stopped := straight(3, geo.Point{Lat: 41, Lon: 6}, 90, 0, 10, 30)
	// Give it direction history first by prepending movement.
	moving := straight(3, geo.Point{Lat: 41, Lon: 5.9}, 90, 10, 20, 30)
	tr := &model.Trajectory{MMSI: 3, Points: append(moving.Points, stopped.Points...)}
	p, ok := rm.Predict(tr, 30*time.Minute)
	if ok {
		last := tr.Points[tr.Len()-1]
		if geo.Distance(p, last.Pos) > 100 {
			t.Errorf("stationary vessel should be predicted in place, moved %.0f m", geo.Distance(p, last.Pos))
		}
	}
}

func TestHybridFallsBack(t *testing.T) {
	h := Hybrid{Route: NewRouteModel(0.05), Fallback: DeadReckoning{}}
	tr := straight(1, geo.Point{Lat: 41, Lon: 6}, 90, 12, 60, 30)
	if _, ok := h.Predict(tr, 10*time.Minute); !ok {
		t.Error("hybrid must fall back to DR when the route model abstains")
	}
	// Nil fallback defaults to DR.
	h2 := Hybrid{Route: NewRouteModel(0.05)}
	if _, ok := h2.Predict(tr, 10*time.Minute); !ok {
		t.Error("hybrid with nil fallback must still predict")
	}
}

func TestEvaluateHorizonSweep(t *testing.T) {
	// On dogleg traffic: route model error at long horizon must undercut
	// dead reckoning; at short horizon both are decent.
	start := geo.Point{Lat: 41, Lon: 6}
	rm := NewRouteModel(0.05)
	for i := 0; i < 25; i++ {
		jitter := geo.Destination(start, float64(i*17%360), float64(i%4)*200)
		rm.Train(dogleg(uint32(100+i), jitter, 12, 80, 30, t0()))
	}
	test := []*model.Trajectory{dogleg(999, start, 12, 80, 30, t0())}
	horizons := []time.Duration{10 * time.Minute, 40 * time.Minute}
	results := Evaluate(
		[]Predictor{DeadReckoning{}, rm, Hybrid{Route: rm, Fallback: DeadReckoning{}}},
		test, horizons, 5*time.Minute)

	get := func(name string, h time.Duration) HorizonError {
		for _, r := range results {
			if r.Predictor == name && r.Horizon == h {
				return r
			}
		}
		t.Fatalf("missing result %s/%v", name, h)
		return HorizonError{}
	}
	for _, r := range results {
		if r.N == 0 {
			t.Fatalf("no evaluations for %s at %v", r.Predictor, r.Horizon)
		}
		if math.IsNaN(r.MeanM) {
			t.Fatalf("NaN error for %s", r.Predictor)
		}
	}
	dr40 := get("dead-reckoning", 40*time.Minute)
	rm40 := get("route-model", 40*time.Minute)
	if rm40.MeanM >= dr40.MeanM {
		t.Errorf("at 40 min, route model (%.0f m) should beat DR (%.0f m)", rm40.MeanM, dr40.MeanM)
	}
	// Error grows with horizon for DR.
	dr10 := get("dead-reckoning", 10*time.Minute)
	if dr40.MeanM <= dr10.MeanM {
		t.Errorf("DR error should grow with horizon: %.0f vs %.0f", dr40.MeanM, dr10.MeanM)
	}
	t.Logf("E9 mini: DR10=%.0fm DR40=%.0fm RM40=%.0fm", dr10.MeanM, dr40.MeanM, rm40.MeanM)
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	// Floor-index convention: idx = int(0.9 * 4) = 3 → value 4.
	if p := percentile(vals, 0.9); p != 4 {
		t.Errorf("p90 of 1..5 = %f", p)
	}
	if p := percentile(vals, 1); p != 5 {
		t.Errorf("p100 = %f", p)
	}
	if p := percentile(vals, 0); p != 1 {
		t.Errorf("p0 = %f", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %f", p)
	}
}

func BenchmarkRouteModelPredict(b *testing.B) {
	start := geo.Point{Lat: 41, Lon: 6}
	rm := NewRouteModel(0.05)
	for i := 0; i < 25; i++ {
		rm.Train(dogleg(uint32(100+i), start, 12, 80, 30, t0()))
	}
	history := dogleg(999, start, 12, 80, 30, t0()).Slice(t0(), t0().Add(30*time.Minute))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rm.Predict(history, 40*time.Minute); !ok {
			b.Fatal("prediction failed")
		}
	}
}

func BenchmarkRouteModelTrain(b *testing.B) {
	start := geo.Point{Lat: 41, Lon: 6}
	tr := dogleg(1, start, 12, 200, 30, t0())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm := NewRouteModel(0.05)
		rm.Train(tr)
	}
}
