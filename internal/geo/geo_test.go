package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPoint returns a random point away from the poles and antimeridian so
// that planar approximations behave; the library's maritime basins live
// there too.
func randPoint(r *rand.Rand) Point {
	return Point{Lat: r.Float64()*140 - 70, Lon: r.Float64()*340 - 170}
}

func TestDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64 // metres
		tol  float64
	}{
		{Point{0, 0}, Point{0, 0}, 0, 0.001},
		{Point{0, 0}, Point{0, 1}, 111195, 200},                          // one degree of longitude at equator
		{Point{0, 0}, Point{1, 0}, 111195, 200},                          // one degree of latitude
		{Point{50.0359, -5.4253}, Point{58.3838, -3.0412}, 940000, 5000}, // Cornwall→Caithness, ~940 km
	}
	for i, c := range cases {
		got := Distance(c.a, c.b)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("case %d: Distance(%v,%v) = %.1f, want %.1f ± %.1f", i, c.a, c.b, got, c.want, c.tol)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := randPoint(r), randPoint(r)
		d1, d2 := Distance(a, b), Distance(b, a)
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("Distance not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b, c := randPoint(r), randPoint(r), randPoint(r)
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a := randPoint(r)
		brg := r.Float64() * 360
		dist := r.Float64() * 500000 // up to 500 km
		b := Destination(a, brg, dist)
		got := Distance(a, b)
		if math.Abs(got-dist) > dist*1e-6+0.01 {
			t.Fatalf("Destination distance mismatch: want %.3f got %.3f", dist, got)
		}
		// Initial bearing should match the requested bearing.
		if dist > 1000 {
			gotBrg := Bearing(a, b)
			diff := math.Abs(gotBrg - brg)
			if diff > 180 {
				diff = 360 - diff
			}
			if diff > 0.01 {
				t.Fatalf("bearing mismatch: want %.4f got %.4f", brg, gotBrg)
			}
		}
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a, b := randPoint(r), randPoint(r)
		if d := Distance(Interpolate(a, b, 0), a); d > 0.5 {
			t.Fatalf("Interpolate(...,0) should be a: off by %.3f m", d)
		}
		if d := Distance(Interpolate(a, b, 1), b); d > 0.5 {
			t.Fatalf("Interpolate(...,1) should be b: off by %.3f m", d)
		}
	}
}

func TestInterpolateMidpointOnPath(t *testing.T) {
	a := Point{10, 10}
	b := Point{20, 30}
	m := Midpoint(a, b)
	// The midpoint must be equidistant from both endpoints.
	da, db := Distance(m, a), Distance(m, b)
	if math.Abs(da-db) > 1 {
		t.Fatalf("midpoint not equidistant: %.2f vs %.2f", da, db)
	}
	// And the two halves must sum to the whole within tolerance.
	if math.Abs(da+db-Distance(a, b)) > 1 {
		t.Fatalf("midpoint not on path")
	}
}

func TestNormalizeLonProperty(t *testing.T) {
	f := func(raw float64) bool {
		lon := math.Mod(raw, 1e6) // keep finite range
		n := NormalizeLon(lon)
		return n >= -180 && n < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeBearingProperty(t *testing.T) {
	f := func(raw float64) bool {
		b := math.Mod(raw, 1e6)
		n := NormalizeBearing(b)
		return n >= 0 && n < 360
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossTrackSign(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 10} // path due east along the equator
	right := Point{-1, 5}
	left := Point{1, 5}
	if d := CrossTrackDistance(right, a, b); d <= 0 {
		t.Errorf("point right of track should be positive, got %.1f", d)
	}
	if d := CrossTrackDistance(left, a, b); d >= 0 {
		t.Errorf("point left of track should be negative, got %.1f", d)
	}
}

func TestPointSegmentDistance(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 1}
	// Point beyond the end should measure to the endpoint.
	p := Point{0, 2}
	want := Distance(p, b)
	if got := PointSegmentDistance(p, a, b); math.Abs(got-want) > 1 {
		t.Errorf("beyond-end distance = %.1f, want %.1f", got, want)
	}
	// Point abeam of the middle measures the cross-track distance.
	q := Point{0.5, 0.5}
	got := PointSegmentDistance(q, a, b)
	if math.Abs(got-Distance(q, Point{0, 0.5})) > 100 {
		t.Errorf("abeam distance = %.1f", got)
	}
}

func TestProjectConsistency(t *testing.T) {
	p := Point{45, -30}
	v := Velocity{SpeedMS: 10, CourseDg: 90}
	q := Project(p, v, 3600)
	if d := Distance(p, q); math.Abs(d-36000) > 50 {
		t.Errorf("projected distance %.1f, want ~36000", d)
	}
	got := VelocityBetween(p, q, 3600)
	if math.Abs(got.SpeedMS-10) > 0.05 {
		t.Errorf("recovered speed %.3f, want 10", got.SpeedMS)
	}
}

func TestVelocityBetweenZeroDt(t *testing.T) {
	v := VelocityBetween(Point{1, 1}, Point{2, 2}, 0)
	if v.SpeedMS != 0 || v.CourseDg != 0 {
		t.Errorf("zero dt should give zero velocity, got %+v", v)
	}
}

func TestRectContainsExtend(t *testing.T) {
	r := EmptyRect()
	if !r.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	pts := []Point{{10, 20}, {-5, 40}, {7, -10}}
	for _, p := range pts {
		r = r.Extend(p)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("rect should contain %v", p)
		}
	}
	if r.Contains(Point{50, 50}) {
		t.Error("rect should not contain far point")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	b := Rect{MinLat: 5, MinLon: 5, MaxLat: 15, MaxLon: 15}
	c := Rect{MinLat: 20, MinLon: 20, MaxLat: 30, MaxLon: 30}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if a.Intersects(EmptyRect()) {
		t.Error("nothing intersects the empty rect")
	}
}

func TestRectUnionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p1, p2, p3 := randPoint(r), randPoint(r), randPoint(r)
		a := EmptyRect().Extend(p1).Extend(p2)
		b := EmptyRect().Extend(p3)
		u := a.Union(b)
		for _, p := range []Point{p1, p2, p3} {
			if !u.Contains(p) {
				t.Fatalf("union must contain all source points")
			}
		}
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union must contain both rects")
		}
	}
}

func TestRectAround(t *testing.T) {
	p := Point{40, -70}
	r := RectAround(p, 10000)
	if !r.Contains(p) {
		t.Fatal("RectAround must contain the centre")
	}
	// All destinations at radius must be inside the rect.
	for brg := 0.0; brg < 360; brg += 30 {
		q := Destination(p, brg, 9999)
		if !r.Contains(q) {
			t.Errorf("point at bearing %.0f escaped the rect", brg)
		}
	}
}

func TestRectDistanceToAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		c1, c2 := randPoint(r), randPoint(r)
		box := EmptyRect().Extend(c1).Extend(c2)
		p := randPoint(r)
		lower := box.DistanceTo(p)
		// The lower bound must not exceed the distance to either defining corner.
		if lower > Distance(p, c1)+1e-6 || lower > Distance(p, c2)+1e-6 {
			t.Fatalf("DistanceTo over-estimates: %.1f > min corner dist", lower)
		}
	}
}

func TestPolygonContains(t *testing.T) {
	square := NewPolygon([]Point{{0, 0}, {0, 10}, {10, 10}, {10, 0}})
	inside := []Point{{5, 5}, {1, 1}, {9, 9}}
	outside := []Point{{-1, 5}, {5, 11}, {15, 15}}
	for _, p := range inside {
		if !square.Contains(p) {
			t.Errorf("square should contain %v", p)
		}
	}
	for _, p := range outside {
		if square.Contains(p) {
			t.Errorf("square should not contain %v", p)
		}
	}
}

func TestPolygonConcave(t *testing.T) {
	// An L-shaped polygon.
	l := NewPolygon([]Point{{0, 0}, {0, 10}, {4, 10}, {4, 4}, {10, 4}, {10, 0}})
	if !l.Contains(Point{2, 8}) {
		t.Error("point in the vertical arm should be inside")
	}
	if !l.Contains(Point{8, 2}) {
		t.Error("point in the horizontal arm should be inside")
	}
	if l.Contains(Point{8, 8}) {
		t.Error("point in the notch should be outside")
	}
}

func TestCirclePolygonContainsCentre(t *testing.T) {
	c := Point{30, 30}
	pg := CirclePolygon(c, 50000, 24)
	if !pg.Contains(c) {
		t.Error("circle polygon must contain its centre")
	}
	if pg.Contains(Destination(c, 45, 60000)) {
		t.Error("point beyond the radius must be outside")
	}
	if !pg.Contains(Destination(c, 45, 20000)) {
		t.Error("point well within the radius must be inside")
	}
}

func TestPolygonDistanceToBoundary(t *testing.T) {
	square := NewPolygon([]Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}})
	d := square.DistanceToBoundary(Point{0.5, 0.5})
	// Half a degree of latitude ≈ 55.6 km.
	if math.Abs(d-55597) > 600 {
		t.Errorf("centre-to-edge distance = %.0f, want ≈55597", d)
	}
}

func TestPolylineLengthAndPointAt(t *testing.T) {
	pl := Polyline{Points: []Point{{0, 0}, {0, 1}, {0, 2}}}
	total := pl.Length()
	if math.Abs(total-2*111195) > 500 {
		t.Fatalf("polyline length = %.0f", total)
	}
	mid := pl.PointAt(total / 2)
	if d := Distance(mid, Point{0, 1}); d > 500 {
		t.Errorf("PointAt(middle) off by %.0f m", d)
	}
	if pl.PointAt(-5) != pl.Points[0] {
		t.Error("PointAt clamps to start")
	}
	end := pl.PointAt(total * 2)
	if d := Distance(end, pl.Points[2]); d > 0.5 {
		t.Error("PointAt clamps to end")
	}
}

func TestGridCellRoundTrip(t *testing.T) {
	g := NewGrid(0.5)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := randPoint(r)
		id := g.Cell(p)
		rect := g.CellRect(id)
		if !rect.Contains(p) {
			t.Fatalf("cell rect %v does not contain %v", rect, p)
		}
		c := g.CellCenter(id)
		if g.Cell(c) != id {
			t.Fatalf("cell centre maps to a different cell")
		}
	}
}

func TestGridCellsInRect(t *testing.T) {
	g := NewGrid(1.0)
	r := Rect{MinLat: 0.2, MinLon: 0.2, MaxLat: 2.8, MaxLon: 3.8}
	ids := g.CellsInRect(r, nil)
	if len(ids) != 3*4 {
		t.Fatalf("expected 12 cells, got %d", len(ids))
	}
	seen := map[CellID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate cell id")
		}
		seen[id] = true
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(1.0)
	id := g.Cell(Point{45.5, 45.5})
	nbs := g.Neighbors(id, nil)
	if len(nbs) != 8 {
		t.Fatalf("interior cell should have 8 neighbours, got %d", len(nbs))
	}
	for _, nb := range nbs {
		if nb == id {
			t.Fatal("cell is its own neighbour")
		}
		c1 := g.CellCenter(id)
		c2 := g.CellCenter(nb)
		if math.Abs(c1.Lat-c2.Lat) > 1.5 || math.Abs(c1.Lon-c2.Lon) > 1.5 {
			t.Fatal("neighbour is not adjacent")
		}
	}
}

func TestGridResolutionsDistinct(t *testing.T) {
	g1, g2 := NewGrid(1.0), NewGrid(0.5)
	p := Point{10.25, 10.25}
	if g1.Cell(p) == g2.Cell(p) {
		t.Error("cells of different resolutions must have different IDs")
	}
}

func TestMercatorRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		p := Point{Lat: r.Float64()*160 - 80, Lon: r.Float64()*340 - 170}
		x, y := Mercator(p)
		q := InverseMercator(x, y)
		if d := Distance(p, q); d > 0.5 {
			t.Fatalf("Mercator round trip error %.3f m for %v", d, p)
		}
	}
}

func TestLocalPlaneRoundTrip(t *testing.T) {
	lp := NewLocalPlane(Point{43.5, 5.0})
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p := Point{Lat: 43.5 + r.Float64()*2 - 1, Lon: 5.0 + r.Float64()*2 - 1}
		e, n := lp.Forward(p)
		q := lp.Inverse(e, n)
		if d := Distance(p, q); d > 0.5 {
			t.Fatalf("local plane round trip error %.3f m", d)
		}
	}
}

func TestLocalPlaneDistancePreserved(t *testing.T) {
	lp := NewLocalPlane(Point{40, -5})
	a := Point{40.1, -5.1}
	b := Point{39.9, -4.9}
	ea, na := lp.Forward(a)
	eb, nb := lp.Forward(b)
	planar := math.Hypot(ea-eb, na-nb)
	geodesic := Distance(a, b)
	if math.Abs(planar-geodesic)/geodesic > 0.01 {
		t.Errorf("local plane distorts distance: planar %.1f vs geodesic %.1f", planar, geodesic)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}}
	invalid := []Point{{91, 0}, {0, 181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func BenchmarkDistance(b *testing.B) {
	p1 := Point{43.1, 5.2}
	p2 := Point{43.4, 5.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Distance(p1, p2)
	}
}

func BenchmarkDestination(b *testing.B) {
	p := Point{43.1, 5.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Destination(p, 135, 1852)
	}
}

func BenchmarkGridCell(b *testing.B) {
	g := NewGrid(0.1)
	p := Point{43.1, 5.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Cell(p)
	}
}

func BenchmarkPolygonContains(b *testing.B) {
	pg := CirclePolygon(Point{43, 5}, 50000, 32)
	p := Point{43.1, 5.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pg.Contains(p)
	}
}
