package geo

import "math"

// Polygon is a simple (non-self-intersecting) polygon on the sphere,
// represented by its vertices in order. The ring is implicitly closed; the
// last vertex should not repeat the first. Polygons are assumed small enough
// (sub-continental) that planar point-in-polygon on lat/lon is adequate,
// which holds for every maritime zone this library models (ports, protected
// areas, EEZ bands, lanes).
type Polygon struct {
	Vertices []Point
	bounds   Rect
	hasBound bool
}

// NewPolygon builds a polygon and precomputes its bounding box.
func NewPolygon(vertices []Point) *Polygon {
	p := &Polygon{Vertices: vertices}
	p.bounds = p.computeBounds()
	p.hasBound = true
	return p
}

func (pg *Polygon) computeBounds() Rect {
	r := EmptyRect()
	for _, v := range pg.Vertices {
		r = r.Extend(v)
	}
	return r
}

// Bounds returns the polygon's bounding box.
func (pg *Polygon) Bounds() Rect {
	if !pg.hasBound {
		pg.bounds = pg.computeBounds()
		pg.hasBound = true
	}
	return pg.bounds
}

// Contains reports whether p lies strictly inside the polygon, using the
// even-odd ray-casting rule on the lat/lon plane. Points exactly on an edge
// may be classified either way.
func (pg *Polygon) Contains(p Point) bool {
	if len(pg.Vertices) < 3 {
		return false
	}
	if !pg.Bounds().Contains(p) {
		return false
	}
	inside := false
	n := len(pg.Vertices)
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			xCross := vi.Lon + (p.Lat-vi.Lat)/(vj.Lat-vi.Lat)*(vj.Lon-vi.Lon)
			if p.Lon < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// DistanceToBoundary returns the minimum distance in metres from p to the
// polygon's boundary.
func (pg *Polygon) DistanceToBoundary(p Point) float64 {
	n := len(pg.Vertices)
	if n == 0 {
		return math.Inf(1)
	}
	if n == 1 {
		return Distance(p, pg.Vertices[0])
	}
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		if d := PointSegmentDistance(p, a, b); d < best {
			best = d
		}
	}
	return best
}

// Centroid returns the planar centroid of the polygon's vertices (adequate
// for labelling and zone seeding).
func (pg *Polygon) Centroid() Point {
	var lat, lon float64
	n := float64(len(pg.Vertices))
	if n == 0 {
		return Point{}
	}
	for _, v := range pg.Vertices {
		lat += v.Lat
		lon += v.Lon
	}
	return Point{Lat: lat / n, Lon: lon / n}
}

// CirclePolygon approximates a circle of the given radius in metres centred
// at c by a regular polygon with n vertices (n >= 3).
func CirclePolygon(c Point, radius float64, n int) *Polygon {
	if n < 3 {
		n = 3
	}
	vs := make([]Point, n)
	for i := 0; i < n; i++ {
		vs[i] = Destination(c, float64(i)*360/float64(n), radius)
	}
	return NewPolygon(vs)
}

// RectPolygon converts a Rect into a 4-vertex polygon.
func RectPolygon(r Rect) *Polygon {
	return NewPolygon([]Point{
		{Lat: r.MinLat, Lon: r.MinLon},
		{Lat: r.MinLat, Lon: r.MaxLon},
		{Lat: r.MaxLat, Lon: r.MaxLon},
		{Lat: r.MaxLat, Lon: r.MinLon},
	})
}

// Polyline is an open sequence of points (a route or track geometry).
type Polyline struct {
	Points []Point
}

// Length returns the total great-circle length of the polyline in metres.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl.Points); i++ {
		total += Distance(pl.Points[i-1], pl.Points[i])
	}
	return total
}

// PointAt returns the point at the given distance in metres from the start,
// clamped to the ends of the polyline.
func (pl Polyline) PointAt(dist float64) Point {
	if len(pl.Points) == 0 {
		return Point{}
	}
	if dist <= 0 {
		return pl.Points[0]
	}
	for i := 1; i < len(pl.Points); i++ {
		seg := Distance(pl.Points[i-1], pl.Points[i])
		if dist <= seg {
			if seg == 0 {
				return pl.Points[i]
			}
			return Interpolate(pl.Points[i-1], pl.Points[i], dist/seg)
		}
		dist -= seg
	}
	return pl.Points[len(pl.Points)-1]
}

// DistanceTo returns the minimum distance in metres from p to the polyline.
func (pl Polyline) DistanceTo(p Point) float64 {
	if len(pl.Points) == 0 {
		return math.Inf(1)
	}
	if len(pl.Points) == 1 {
		return Distance(p, pl.Points[0])
	}
	best := math.Inf(1)
	for i := 1; i < len(pl.Points); i++ {
		if d := PointSegmentDistance(p, pl.Points[i-1], pl.Points[i]); d < best {
			best = d
		}
	}
	return best
}

// Bounds returns the bounding box of the polyline.
func (pl Polyline) Bounds() Rect {
	r := EmptyRect()
	for _, p := range pl.Points {
		r = r.Extend(p)
	}
	return r
}
