package geo

import (
	"fmt"
	"math"
)

// CellID identifies a cell of a fixed-resolution global grid. The grid
// divides the world into equal-angle cells; resolution is carried inside the
// ID so that IDs from different resolutions never collide. It is the spatial
// key used by the stream engine for partitioning, by the patterns-of-life
// forecaster for discretising routes, and by the visual-analytics density
// builder for binning.
type CellID uint64

// Grid is an equal-angle global grid with square cells of SizeDeg degrees.
type Grid struct {
	SizeDeg float64
	cols    int
	rows    int
	res     uint64
}

// NewGrid returns a grid with the given cell size in degrees. Cell sizes
// below 0.001° (~100 m) are clamped to keep IDs well within 64 bits.
func NewGrid(sizeDeg float64) Grid {
	if sizeDeg < 0.001 {
		sizeDeg = 0.001
	}
	if sizeDeg > 90 {
		sizeDeg = 90
	}
	cols := int(360/sizeDeg) + 1
	rows := int(180/sizeDeg) + 1
	// Encode the resolution in the top bits: use the integer number of
	// thousandths of a degree, which is unique per grid in practice.
	res := uint64(sizeDeg * 1000)
	return Grid{SizeDeg: sizeDeg, cols: cols, rows: rows, res: res}
}

// Cell returns the ID of the cell containing p.
func (g Grid) Cell(p Point) CellID {
	col := int((p.Lon + 180) / g.SizeDeg)
	row := int((p.Lat + 90) / g.SizeDeg)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return CellID(g.res<<44 | uint64(row)<<22 | uint64(col))
}

// CellRowCol decodes the row and column of a cell ID produced by this grid.
func (g Grid) CellRowCol(id CellID) (row, col int) {
	return int(uint64(id) >> 22 & 0x3FFFFF), int(uint64(id) & 0x3FFFFF)
}

// CellCenter returns the centre point of the cell with the given ID.
func (g Grid) CellCenter(id CellID) Point {
	row, col := g.CellRowCol(id)
	return Point{
		Lat: -90 + (float64(row)+0.5)*g.SizeDeg,
		Lon: -180 + (float64(col)+0.5)*g.SizeDeg,
	}
}

// CellRect returns the bounding box of the cell with the given ID.
func (g Grid) CellRect(id CellID) Rect {
	row, col := g.CellRowCol(id)
	return Rect{
		MinLat: -90 + float64(row)*g.SizeDeg,
		MinLon: -180 + float64(col)*g.SizeDeg,
		MaxLat: -90 + float64(row+1)*g.SizeDeg,
		MaxLon: -180 + float64(col+1)*g.SizeDeg,
	}
}

// CellsInRect appends to dst the IDs of all cells intersecting r and returns
// the extended slice.
func (g Grid) CellsInRect(r Rect, dst []CellID) []CellID {
	if r.IsEmpty() {
		return dst
	}
	c0 := int((r.MinLon + 180) / g.SizeDeg)
	c1 := int((r.MaxLon + 180) / g.SizeDeg)
	r0 := int((r.MinLat + 90) / g.SizeDeg)
	r1 := int((r.MaxLat + 90) / g.SizeDeg)
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= g.cols {
		c1 = g.cols - 1
	}
	if r1 >= g.rows {
		r1 = g.rows - 1
	}
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			dst = append(dst, CellID(g.res<<44|uint64(row)<<22|uint64(col)))
		}
	}
	return dst
}

// Neighbors appends the IDs of the up-to-8 cells adjacent to id (fewer at
// the poles / antimeridian edges) and returns the extended slice.
func (g Grid) Neighbors(id CellID, dst []CellID) []CellID {
	row, col := g.CellRowCol(id)
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			nr, nc := row+dr, col+dc
			if nr < 0 || nr >= g.rows || nc < 0 || nc >= g.cols {
				continue
			}
			dst = append(dst, CellID(g.res<<44|uint64(nr)<<22|uint64(nc)))
		}
	}
	return dst
}

// String renders the cell ID with its resolution for debugging.
func (c CellID) String() string {
	return fmt.Sprintf("cell(res=%d,row=%d,col=%d)",
		uint64(c)>>44, uint64(c)>>22&0x3FFFFF, uint64(c)&0x3FFFFF)
}

// Mercator projects p to Web-Mercator-like planar coordinates in metres.
// Useful for local planar computations (Kalman filtering, CPA) where a
// conformal projection keeps angles honest. Latitudes are clamped to ±85°.
func Mercator(p Point) (x, y float64) {
	lat := clamp(p.Lat, -85, 85)
	x = EarthRadius * Radians(p.Lon)
	y = EarthRadius * mercatorY(Radians(lat))
	return x, y
}

// InverseMercator converts planar Mercator coordinates back to a Point.
func InverseMercator(x, y float64) Point {
	lon := Degrees(x / EarthRadius)
	lat := Degrees(invMercatorY(y / EarthRadius))
	return Point{Lat: lat, Lon: NormalizeLon(lon)}
}

func mercatorY(latRad float64) float64 {
	return math.Log(math.Tan(latRad/2 + math.Pi/4))
}

func invMercatorY(y float64) float64 {
	return 2*math.Atan(math.Exp(y)) - math.Pi/2
}

// LocalPlane is a tangent-plane approximation centred at Origin: positions
// are expressed as east/north offsets in metres. It is accurate to well
// under 1% within a few hundred kilometres of the origin, which covers a
// surveillance area of interest, and it is what the fusion Kalman filters
// operate in.
type LocalPlane struct {
	Origin Point
	cosLat float64
}

// NewLocalPlane returns a tangent plane centred at origin.
func NewLocalPlane(origin Point) LocalPlane {
	return LocalPlane{Origin: origin, cosLat: cosDeg(origin.Lat)}
}

// Forward converts a geographic point to east/north metres.
func (lp LocalPlane) Forward(p Point) (east, north float64) {
	north = Radians(p.Lat-lp.Origin.Lat) * EarthRadius
	east = Radians(NormalizeLon(p.Lon-lp.Origin.Lon)) * EarthRadius * lp.cosLat
	return east, north
}

// Inverse converts east/north metres back to a geographic point.
func (lp LocalPlane) Inverse(east, north float64) Point {
	lat := lp.Origin.Lat + Degrees(north/EarthRadius)
	lon := lp.Origin.Lon
	if lp.cosLat > 1e-9 {
		lon += Degrees(east / (EarthRadius * lp.cosLat))
	}
	return Point{Lat: lat, Lon: NormalizeLon(lon)}
}

func cosDeg(d float64) float64 { return math.Cos(Radians(d)) }
