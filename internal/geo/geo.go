// Package geo provides the geodetic substrate for the maritime library:
// positions on the WGS-84 sphere, great-circle distance and interpolation,
// bearings, projections, bounding boxes, polygons and polylines.
//
// All angular quantities in the public API are expressed in degrees
// (latitude in [-90, 90], longitude in [-180, 180], bearings in [0, 360)),
// distances in metres and speeds in metres per second, unless a name says
// otherwise. The Earth is modelled as a sphere of radius EarthRadius, which
// is accurate to ~0.5% — more than enough for maritime surveillance work
// where AIS GPS accuracy is itself on the order of 10 m.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in metres (IUGG value).
const EarthRadius = 6371008.8

// NauticalMile is one nautical mile in metres.
const NauticalMile = 1852.0

// Knot is one knot in metres per second.
const Knot = NauticalMile / 3600.0

// Point is a geographic position in degrees.
type Point struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// String implements fmt.Stringer with a compact "lat,lon" rendering.
func (p Point) String() string {
	return fmt.Sprintf("%.5f,%.5f", p.Lat, p.Lon)
}

// Valid reports whether p is a plausible geographic coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// NormalizeLon wraps a longitude into [-180, 180).
func NormalizeLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

// NormalizeBearing wraps a bearing into [0, 360).
func NormalizeBearing(b float64) float64 {
	b = math.Mod(b, 360)
	if b < 0 {
		b += 360
	}
	return b
}

// Distance returns the great-circle distance between a and b in metres,
// computed with the haversine formula (stable for small distances).
func Distance(a, b Point) float64 {
	la1, lo1 := Radians(a.Lat), Radians(a.Lon)
	la2, lo2 := Radians(b.Lat), Radians(b.Lon)
	dla := la2 - la1
	dlo := lo2 - lo1
	s1 := math.Sin(dla / 2)
	s2 := math.Sin(dlo / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from true north, in [0, 360).
func Bearing(a, b Point) float64 {
	la1, lo1 := Radians(a.Lat), Radians(a.Lon)
	la2, lo2 := Radians(b.Lat), Radians(b.Lon)
	dlo := lo2 - lo1
	y := math.Sin(dlo) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dlo)
	return NormalizeBearing(Degrees(math.Atan2(y, x)))
}

// Destination returns the point reached travelling dist metres from p on the
// initial bearing (degrees).
func Destination(p Point, bearing, dist float64) Point {
	la1, lo1 := Radians(p.Lat), Radians(p.Lon)
	br := Radians(bearing)
	ad := dist / EarthRadius
	la2 := math.Asin(math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(br))
	lo2 := lo1 + math.Atan2(math.Sin(br)*math.Sin(ad)*math.Cos(la1),
		math.Cos(ad)-math.Sin(la1)*math.Sin(la2))
	return Point{Lat: Degrees(la2), Lon: NormalizeLon(Degrees(lo2))}
}

// Interpolate returns the point a fraction f (0..1) of the way along the
// great circle from a to b. f outside [0,1] extrapolates.
func Interpolate(a, b Point, f float64) Point {
	//lint:ignore floateq identical-endpoint fast path: only bitwise-equal inputs may skip the spherical math
	if a == b {
		return a
	}
	d := Distance(a, b) / EarthRadius // angular distance
	if d == 0 {
		return a
	}
	la1, lo1 := Radians(a.Lat), Radians(a.Lon)
	la2, lo2 := Radians(b.Lat), Radians(b.Lon)
	sinD := math.Sin(d)
	if sinD == 0 {
		return a
	}
	A := math.Sin((1-f)*d) / sinD
	B := math.Sin(f*d) / sinD
	x := A*math.Cos(la1)*math.Cos(lo1) + B*math.Cos(la2)*math.Cos(lo2)
	y := A*math.Cos(la1)*math.Sin(lo1) + B*math.Cos(la2)*math.Sin(lo2)
	z := A*math.Sin(la1) + B*math.Sin(la2)
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lon := math.Atan2(y, x)
	return Point{Lat: Degrees(lat), Lon: NormalizeLon(Degrees(lon))}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point { return Interpolate(a, b, 0.5) }

// CrossTrackDistance returns the signed distance in metres of point p from
// the great-circle path through a and b. Positive means p lies to the right
// of the path (as seen travelling a→b).
func CrossTrackDistance(p, a, b Point) float64 {
	d13 := Distance(a, p) / EarthRadius
	th13 := Radians(Bearing(a, p))
	th12 := Radians(Bearing(a, b))
	dxt := math.Asin(math.Sin(d13) * math.Sin(th13-th12))
	return dxt * EarthRadius
}

// AlongTrackDistance returns the distance in metres from a to the closest
// point on the path a→b to p, measured along the path.
func AlongTrackDistance(p, a, b Point) float64 {
	d13 := Distance(a, p) / EarthRadius
	dxt := CrossTrackDistance(p, a, b) / EarthRadius
	cosd13 := math.Cos(d13)
	cosdxt := math.Cos(dxt)
	if cosdxt == 0 {
		return 0
	}
	v := cosd13 / cosdxt
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	return math.Acos(v) * EarthRadius
}

// PointSegmentDistance returns the minimum distance in metres from p to the
// great-circle segment a→b (not the infinite great circle).
func PointSegmentDistance(p, a, b Point) float64 {
	//lint:ignore floateq degenerate-segment fast path: only bitwise-equal endpoints may collapse to point distance
	if a == b {
		return Distance(p, a)
	}
	along := AlongTrackDistance(p, a, b)
	total := Distance(a, b)
	if along <= 0 {
		return Distance(p, a)
	}
	if along >= total {
		return Distance(p, b)
	}
	return math.Abs(CrossTrackDistance(p, a, b))
}

// Velocity describes motion over ground.
type Velocity struct {
	SpeedMS  float64 // speed over ground, m/s
	CourseDg float64 // course over ground, degrees true
}

// Project advances p by v for dt seconds using dead reckoning on the sphere.
func Project(p Point, v Velocity, dt float64) Point {
	return Destination(p, v.CourseDg, v.SpeedMS*dt)
}

// VelocityBetween estimates the velocity implied by moving from a to b in
// dt seconds. dt must be positive; a zero dt yields a zero velocity.
func VelocityBetween(a, b Point, dt float64) Velocity {
	if dt <= 0 {
		return Velocity{}
	}
	return Velocity{
		SpeedMS:  Distance(a, b) / dt,
		CourseDg: Bearing(a, b),
	}
}
