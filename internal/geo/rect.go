package geo

import "math"

// Rect is an axis-aligned geographic bounding box. MinLon may exceed MaxLon
// only for boxes produced by external code; the constructors in this package
// never produce antimeridian-crossing boxes (the simulator confines traffic
// to non-crossing basins, which keeps every index simple and correct).
type Rect struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// EmptyRect returns a rectangle that contains nothing and can be extended.
func EmptyRect() Rect {
	return Rect{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
}

// RectAround returns the bounding box of a circle of radius metres centred
// on p, clamped to valid latitudes.
func RectAround(p Point, radius float64) Rect {
	dLat := Degrees(radius / EarthRadius)
	cos := math.Cos(Radians(p.Lat))
	dLon := 180.0
	if cos > 1e-9 {
		dLon = Degrees(radius / (EarthRadius * cos))
	}
	r := Rect{
		MinLat: p.Lat - dLat, MaxLat: p.Lat + dLat,
		MinLon: p.Lon - dLon, MaxLon: p.Lon + dLon,
	}
	if r.MinLat < -90 {
		r.MinLat = -90
	}
	if r.MaxLat > 90 {
		r.MaxLat = 90
	}
	if r.MinLon < -180 {
		r.MinLon = -180
	}
	if r.MaxLon > 180 {
		r.MaxLon = 180
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinLat > r.MaxLat || r.MinLon > r.MaxLon }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Intersects reports whether r and o share any point.
func (r Rect) Intersects(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.MinLat <= o.MaxLat && o.MinLat <= r.MaxLat &&
		r.MinLon <= o.MaxLon && o.MinLon <= r.MaxLon
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return o.MinLat >= r.MinLat && o.MaxLat <= r.MaxLat &&
		o.MinLon >= r.MinLon && o.MaxLon <= r.MaxLon
}

// Extend returns the smallest rectangle containing both r and p.
func (r Rect) Extend(p Point) Rect {
	if p.Lat < r.MinLat {
		r.MinLat = p.Lat
	}
	if p.Lat > r.MaxLat {
		r.MaxLat = p.Lat
	}
	if p.Lon < r.MinLon {
		r.MinLon = p.Lon
	}
	if p.Lon > r.MaxLon {
		r.MaxLon = p.Lon
	}
	return r
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	return Rect{
		MinLat: math.Min(r.MinLat, o.MinLat),
		MinLon: math.Min(r.MinLon, o.MinLon),
		MaxLat: math.Max(r.MaxLat, o.MaxLat),
		MaxLon: math.Max(r.MaxLon, o.MaxLon),
	}
}

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Area returns a planar pseudo-area in square degrees, used only for index
// heuristics (split quality), never for geodesy.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
}

// Margin returns the half-perimeter in degrees, an R*-tree split heuristic.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxLat - r.MinLat) + (r.MaxLon - r.MinLon)
}

// DistanceTo returns an admissible lower bound, in metres, of the
// great-circle distance from p to the nearest point of r: it never
// over-estimates, which is the property kNN search needs for pruning, and it
// is tight when the separation is dominated by either latitude or longitude
// alone.
func (r Rect) DistanceTo(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	if r.Contains(p) {
		return 0
	}
	// Latitude bound: the meridional component alone is a lower bound on
	// the central angle.
	var dLat float64
	switch {
	case p.Lat < r.MinLat:
		dLat = r.MinLat - p.Lat
	case p.Lat > r.MaxLat:
		dLat = p.Lat - r.MaxLat
	}
	latBound := Radians(dLat) * EarthRadius

	// Longitude bound: haversine(angle) >= cosφ1·cosφ2·sin²(Δλ/2). To
	// lower-bound the right-hand side over every rect point, take the
	// minimum cos(lat) the rect can reach and the minimum wrapped
	// longitude separation.
	dLon := lonSeparation(p.Lon, r.MinLon, r.MaxLon)
	lonBound := 0.0
	if dLon > 0 {
		cosP := math.Cos(Radians(p.Lat))
		cosR := minCosLat(r.MinLat, r.MaxLat)
		s := math.Sqrt(cosP*cosR) * math.Abs(math.Sin(Radians(dLon)/2))
		if s > 1 {
			s = 1
		}
		lonBound = 2 * math.Asin(s) * EarthRadius
	}
	return math.Max(latBound, lonBound)
}

// lonSeparation returns the minimal wrapped angular separation in degrees
// between lon and the interval [minLon, maxLon], 0 if inside.
func lonSeparation(lon, minLon, maxLon float64) float64 {
	if lon >= minLon && lon <= maxLon {
		return 0
	}
	d1 := wrappedLonDiff(lon, minLon)
	d2 := wrappedLonDiff(lon, maxLon)
	return math.Min(d1, d2)
}

func wrappedLonDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 360 {
		d = math.Mod(d, 360)
	}
	if d > 180 {
		d = 360 - d
	}
	return d
}

// minCosLat returns the minimum of cos(lat) over [minLat, maxLat]; cos is
// unimodal with its peak at the equator, so the minimum sits at whichever
// endpoint is farther from it.
func minCosLat(minLat, maxLat float64) float64 {
	return math.Min(math.Cos(Radians(minLat)), math.Cos(Radians(maxLat)))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
