// Package tstore is the moving-object store of the infrastructure (§2.3):
// an append-optimised archive of vessel trajectories supporting
// time-range, space-time-range and k-nearest-vessel queries, a live layer
// holding the current fleet picture under a grid index, and a compact
// binary snapshot format for persistence. It is safe for concurrent use.
package tstore

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/model"
)

// Sink receives the records appended to a Store (or the updates applied
// to a Live) — the hook a persistence backend attaches to. The canonical
// implementation is internal/store's Flusher, which queues records for an
// asynchronous write-ahead log; implementations must be safe for
// concurrent use when the owning store is used concurrently.
type Sink interface {
	Append(recs ...model.VesselState) error
}

// Tee fans appended records out to several sinks: every sink sees every
// record, and the first error any sink reports is returned (the remaining
// sinks still receive the batch). Nil sinks are skipped, so callers can
// compose optional stages without branching:
//
//	store.Attach(tstore.Tee(hub, flusher)) // publish + persist
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Append(recs ...model.VesselState) error {
	var first error
	for _, s := range t {
		if s == nil {
			continue
		}
		if err := s.Append(recs...); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Store archives trajectories keyed by vessel.
type Store struct {
	mu      sync.RWMutex
	vessels map[uint32]*series
	total   int
	sink    Sink
	sinkErr error

	// fwdMu serialises sink forwarding in append order without holding
	// mu: readers proceed while a slow sink (or a wide pub/sub fan-out)
	// works, yet the sink still sees batches in the order they were
	// inserted and a blocking sink still backpressures the appender.
	fwdMu sync.Mutex
}

// series holds one vessel's points, kept sorted by time. AIS streams are
// near-ordered, so the common append cost is O(1) with a short
// insertion-sort tail for stragglers.
type series struct {
	points []model.VesselState
}

func (s *series) insert(st model.VesselState) {
	s.points = append(s.points, st)
	for i := len(s.points) - 1; i > 0 && s.points[i].At.Before(s.points[i-1].At); i-- {
		s.points[i], s.points[i-1] = s.points[i-1], s.points[i]
	}
}

// rangeIdx returns the half-open index range of points in [from, to].
func (s *series) rangeIdx(from, to time.Time) (lo, hi int) {
	lo = sort.Search(len(s.points), func(i int) bool { return !s.points[i].At.Before(from) })
	hi = sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(to) })
	return lo, hi
}

// New returns an empty store.
func New() *Store {
	return &Store{vessels: make(map[uint32]*series)}
}

// Attach installs a persistence sink: every record appended from now on
// is forwarded to it after insertion (nil detaches). Attach before
// feeding the store — records appended earlier are not replayed into the
// sink. Forwarding errors are retained for SinkErr rather than failing
// the append; the in-memory insert always happens. The sink is called
// after the store lock is released (reads proceed while it works) but
// under a dedicated forwarding lock, so it sees appends in insertion
// order and a blocking sink (a full flush queue) still backpressures the
// appender — attach an asynchronous stage (store.Flusher), not a raw
// disk writer, when ingest latency matters. Note: concurrent appends of
// the *same* vessel from different goroutines have no defined forward
// order (the shipped ingest engine serialises per vessel by sharding).
func (st *Store) Attach(s Sink) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sink = s
}

// SinkErr returns the first error the attached sink reported.
func (st *Store) SinkErr() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.sinkErr
}

// Append inserts one state sample.
func (st *Store) Append(s model.VesselState) {
	st.mu.Lock()
	st.insertLocked(s)
	sink := st.sink
	st.mu.Unlock()
	if sink != nil {
		st.forward(sink, s)
	}
}

func (st *Store) insertLocked(s model.VesselState) {
	ser, ok := st.vessels[s.MMSI]
	if !ok {
		ser = &series{}
		st.vessels[s.MMSI] = ser
	}
	ser.insert(s)
	st.total++
}

// forward hands records to the sink outside the store lock, serialised
// in append order by fwdMu; the first error parks in sinkErr.
func (st *Store) forward(sink Sink, recs ...model.VesselState) {
	st.fwdMu.Lock()
	err := sink.Append(recs...)
	st.fwdMu.Unlock()
	if err != nil {
		st.mu.Lock()
		if st.sinkErr == nil {
			st.sinkErr = err
		}
		st.mu.Unlock()
	}
}

// AppendAll inserts a batch of samples, forwarding the whole batch to the
// attached sink in one call.
func (st *Store) AppendAll(states []model.VesselState) {
	st.mu.Lock()
	for _, s := range states {
		st.insertLocked(s)
	}
	sink := st.sink
	st.mu.Unlock()
	if sink != nil && len(states) > 0 {
		st.forward(sink, states...)
	}
}

// Len returns the total number of stored points.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.total
}

// VesselCount returns the number of distinct vessels.
func (st *Store) VesselCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.vessels)
}

// MMSIs returns the sorted vessel identifiers present.
func (st *Store) MMSIs() []uint32 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]uint32, 0, len(st.vessels))
	for m := range st.vessels {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Trajectory returns a copy of the vessel's full trajectory (nil points if
// unknown vessel).
func (st *Store) Trajectory(mmsi uint32) *model.Trajectory {
	st.mu.RLock()
	defer st.mu.RUnlock()
	tr := &model.Trajectory{MMSI: mmsi}
	if ser, ok := st.vessels[mmsi]; ok {
		tr.Points = append(tr.Points, ser.points...)
	}
	return tr
}

// Latest returns the vessel's newest sample without copying the
// trajectory (false for an unknown vessel).
func (st *Store) Latest(mmsi uint32) (model.VesselState, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ser, ok := st.vessels[mmsi]
	if !ok || len(ser.points) == 0 {
		return model.VesselState{}, false
	}
	return ser.points[len(ser.points)-1], true
}

// LatestStates returns every vessel's newest sample, ordered by MMSI —
// the archive's "current picture", at O(vessels) instead of the
// O(points) a per-vessel Trajectory walk would copy.
func (st *Store) LatestStates() []model.VesselState {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]model.VesselState, 0, len(st.vessels))
	for _, ser := range st.vessels {
		if len(ser.points) > 0 {
			out = append(out, ser.points[len(ser.points)-1])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// TimeRange returns the vessel's samples in [from, to].
func (st *Store) TimeRange(mmsi uint32, from, to time.Time) []model.VesselState {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ser, ok := st.vessels[mmsi]
	if !ok {
		return nil
	}
	lo, hi := ser.rangeIdx(from, to)
	out := make([]model.VesselState, hi-lo)
	copy(out, ser.points[lo:hi])
	return out
}

// SpaceTime returns all samples inside the box during [from, to], ordered
// by (MMSI, time). It scans per-vessel time ranges, which is the right
// plan when the time window is selective; use SpatialSnapshot for
// space-selective archival queries.
func (st *Store) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []model.VesselState
	mmsis := make([]uint32, 0, len(st.vessels))
	for m := range st.vessels {
		mmsis = append(mmsis, m)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	for _, m := range mmsis {
		ser := st.vessels[m]
		lo, hi := ser.rangeIdx(from, to)
		for _, p := range ser.points[lo:hi] {
			if r.Contains(p.Pos) {
				out = append(out, p)
			}
		}
	}
	return out
}

// Snapshot is an immutable spatial view over the archive at build time:
// an R-tree whose item IDs encode (vessel, point) so results map back to
// full states, plus a per-vessel time-chunked directory (bounding
// rectangle and time span per run of consecutive samples) that
// NearestVessels searches — candidates are pre-partitioned by time, so a
// selective window prunes whole chunks instead of filtering fetched
// points one by one.
type Snapshot struct {
	rt     *index.RTree
	states []model.VesselState // (MMSI, time)-ordered
	chunks []snapChunk         // per-vessel runs, grouped by vessel
}

// snapChunk summarises up to nearestChunkLen consecutive samples of one
// vessel: their bounding rectangle, time span and index range in states.
type snapChunk struct {
	mmsi     uint32
	rect     geo.Rect
	from, to time.Time
	lo, hi   int // states[lo:hi]
}

// nearestChunkLen balances directory size against scan width: chunks are
// small enough that rect lower bounds stay tight and a window scan stays
// cheap, large enough that the directory is ~2% of the point count.
const nearestChunkLen = 64

// SpatialSnapshot builds a snapshot over all points currently stored.
func (st *Store) SpatialSnapshot() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	states := make([]model.VesselState, 0, st.total)
	mmsis := make([]uint32, 0, len(st.vessels))
	for m := range st.vessels {
		mmsis = append(mmsis, m)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	sn := &Snapshot{}
	for _, m := range mmsis {
		pts := st.vessels[m].points
		base := len(states)
		states = append(states, pts...)
		for lo := 0; lo < len(pts); lo += nearestChunkLen {
			hi := lo + nearestChunkLen
			if hi > len(pts) {
				hi = len(pts)
			}
			c := snapChunk{
				mmsi: m, rect: geo.EmptyRect(),
				from: pts[lo].At, to: pts[hi-1].At,
				lo: base + lo, hi: base + hi,
			}
			for _, p := range pts[lo:hi] {
				c.rect = c.rect.Extend(p.Pos)
			}
			sn.chunks = append(sn.chunks, c)
		}
	}
	items := make([]index.Item, len(states))
	for i, s := range states {
		items[i] = index.Item{Pos: s.Pos, ID: uint64(i)}
	}
	sn.rt = index.BuildRTree(items)
	sn.states = states
	return sn
}

// Len returns the number of points in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.states) }

// Search returns the states inside the box during [from, to].
func (sn *Snapshot) Search(r geo.Rect, from, to time.Time) []model.VesselState {
	var out []model.VesselState
	for _, it := range sn.rt.Search(r, nil) {
		s := sn.states[it.ID]
		if !s.At.Before(from) && !s.At.After(to) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MMSI != out[j].MMSI {
			return out[i].MMSI < out[j].MMSI
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

// NearestVessels returns up to k distinct vessels with a sample within tol
// of the instant `at`, ordered by the distance of that sample to p.
//
// The search runs over the snapshot's per-vessel time-chunk directory,
// not the raw point R-tree: chunks whose time span misses the window are
// pruned outright (candidates pre-partitioned by time), the rest enter a
// best-first queue keyed by their rectangle's admissible lower-bound
// distance, and popping a chunk resolves it to the vessel's nearest
// in-window sample, re-queued at its true distance. A chunk of an
// already-emitted vessel is skipped without scanning. This replaces the
// old fetch-then-filter loop over the point R-tree, which re-fetched 4×
// more candidates each round and waded through hundreds of co-located
// same-vessel samples — ms-range where this is µs-range (E16/E17).
func (sn *Snapshot) NearestVessels(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	if k <= 0 || len(sn.states) == 0 {
		return nil
	}
	// time.Time.Sub saturates, so the max-duration tolerance used for
	// time-agnostic searches admits every dt without overflow.
	admit := func(t time.Time) bool {
		dt := t.Sub(at)
		if dt < 0 {
			dt = -dt
		}
		return dt <= tol
	}
	q := make(nvQueue, 0, 64)
	for i := range sn.chunks {
		c := &sn.chunks[i]
		// Chunk-level time pruning: the nearest instant of [from, to]
		// to `at` must be admissible.
		switch {
		case at.Before(c.from):
			if c.from.Sub(at) > tol {
				continue
			}
		case at.After(c.to):
			if at.Sub(c.to) > tol {
				continue
			}
		}
		q = append(q, nvEntry{dist: c.rect.DistanceTo(p), chunk: i, mmsi: c.mmsi})
	}
	heap.Init(&q)
	seen := make(map[uint32]bool, k)
	out := make([]model.VesselState, 0, k)
	for q.Len() > 0 && len(out) < k {
		e := heap.Pop(&q).(nvEntry)
		if seen[e.mmsi] {
			continue
		}
		if e.chunk < 0 { // resolved: this is the vessel's nearest admissible sample
			seen[e.mmsi] = true
			out = append(out, sn.states[e.state])
			continue
		}
		c := &sn.chunks[e.chunk]
		best, bd := -1, math.Inf(1)
		for i := c.lo; i < c.hi; i++ {
			if !admit(sn.states[i].At) {
				continue
			}
			if d := geo.Distance(p, sn.states[i].Pos); d < bd {
				best, bd = i, d
			}
		}
		if best >= 0 {
			heap.Push(&q, nvEntry{dist: bd, chunk: -1, state: best, mmsi: c.mmsi})
		}
	}
	return out
}

// nvEntry is a best-first queue entry of NearestVessels: an unresolved
// chunk (rect lower bound) or a resolved sample (true distance).
type nvEntry struct {
	dist  float64
	chunk int // chunk index, or -1 once resolved
	state int // resolved sample index into states
	mmsi  uint32
}

type nvQueue []nvEntry

func (q nvQueue) Len() int           { return len(q) }
func (q nvQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nvQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nvQueue) Push(x any)        { *q = append(*q, x.(nvEntry)) }
func (q *nvQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// --- live layer ---------------------------------------------------------------

// Live maintains the current picture: the latest state per vessel under a
// grid index for range and proximity queries over "now".
type Live struct {
	mu      sync.RWMutex
	latest  map[uint32]model.VesselState
	grid    *index.GridIndex
	sink    Sink
	sinkErr error
}

// NewLive returns an empty live layer with the given index cell size.
func NewLive(cellDeg float64) *Live {
	return &Live{
		latest: make(map[uint32]model.VesselState),
		grid:   index.NewGridIndex(cellDeg),
	}
}

// Attach installs a persistence sink receiving every subsequent Update —
// a full-rate journal of the live picture, unlike the Store's
// post-synopsis archive stream (nil detaches). Same contract as
// Store.Attach: errors park in SinkErr, a blocking sink backpressures.
func (l *Live) Attach(s Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = s
}

// SinkErr returns the first error the attached sink reported.
func (l *Live) SinkErr() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sinkErr
}

// Update replaces the vessel's current state.
func (l *Live) Update(s model.VesselState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.latest[s.MMSI]; ok {
		l.grid.Remove(prev.Pos, uint64(s.MMSI))
	}
	l.latest[s.MMSI] = s
	l.grid.Insert(index.Item{Pos: s.Pos, ID: uint64(s.MMSI)})
	if l.sink != nil {
		if err := l.sink.Append(s); err != nil && l.sinkErr == nil {
			l.sinkErr = err
		}
	}
}

// Get returns the vessel's current state.
func (l *Live) Get(mmsi uint32) (model.VesselState, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s, ok := l.latest[mmsi]
	return s, ok
}

// Count returns the number of tracked vessels.
func (l *Live) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.latest)
}

// InRect returns the current states inside the box, ordered by MMSI.
func (l *Live) InRect(r geo.Rect) []model.VesselState {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []model.VesselState
	for _, it := range l.grid.Search(r, nil) {
		out = append(out, l.latest[uint32(it.ID)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// Nearest returns the k vessels currently closest to p.
func (l *Live) Nearest(p geo.Point, k int) []model.VesselState {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []model.VesselState
	for _, it := range l.grid.Nearest(p, k) {
		out = append(out, l.latest[uint32(it.ID)])
	}
	return out
}

// Stale returns vessels whose latest report is older than maxAge relative
// to now — the live layer's view of "possibly gone dark".
func (l *Live) Stale(now time.Time, maxAge time.Duration) []model.VesselState {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []model.VesselState
	for _, s := range l.latest {
		if now.Sub(s.At) > maxAge {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// --- persistence ----------------------------------------------------------------

const (
	snapshotMagic   = 0x4D415254 // "MART"
	snapshotVersion = 1
)

// WriteTo serialises the archive in a compact binary layout. It returns
// the number of bytes written.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(snapshotMagic)); err != nil {
		return n, err
	}
	if err := write(uint16(snapshotVersion)); err != nil {
		return n, err
	}
	if err := write(uint32(len(st.vessels))); err != nil {
		return n, err
	}
	mmsis := make([]uint32, 0, len(st.vessels))
	for m := range st.vessels {
		mmsis = append(mmsis, m)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	for _, m := range mmsis {
		ser := st.vessels[m]
		if err := write(m); err != nil {
			return n, err
		}
		if err := write(uint32(len(ser.points))); err != nil {
			return n, err
		}
		for _, p := range ser.points {
			rec := diskRecord{
				UnixNano:  p.At.UnixNano(),
				Lat:       p.Pos.Lat,
				Lon:       p.Pos.Lon,
				SpeedCKn:  uint16(math.Round(clampF(p.SpeedKn, 0, 655.35) * 100)),
				CourseCDg: uint16(math.Round(clampF(p.CourseDeg, 0, 655.35) * 100)),
				Status:    uint8(p.Status),
			}
			if err := write(rec); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// diskRecord is the on-disk point layout: 27 bytes per point.
type diskRecord struct {
	UnixNano  int64
	Lat, Lon  float64
	SpeedCKn  uint16 // centi-knots
	CourseCDg uint16 // centi-degrees
	Status    uint8
}

// Load deserialises an archive produced by WriteTo into the store. Its
// semantics are APPEND-MERGE, not replace: every loaded point is inserted
// into per-vessel time order alongside whatever the store already holds,
// existing points are never removed or overwritten, and loading the same
// archive twice therefore duplicates every point (Len doubles). Load into
// a fresh New() store for replace semantics; TestLoadMergesIntoNonEmpty
// pins this contract. Loaded points are forwarded to an attached Sink
// like any other append — load before Attach to avoid re-persisting an
// archive you just read. It returns the number of points read. (Named
// Load rather than ReadFrom to avoid colliding with io.ReaderFrom's
// contract, which counts bytes, not points.)
func (st *Store) Load(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var magic uint32
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return 0, fmt.Errorf("tstore: reading magic: %w", err)
	}
	if magic != snapshotMagic {
		return 0, fmt.Errorf("tstore: bad magic %08x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return 0, err
	}
	if version != snapshotVersion {
		return 0, fmt.Errorf("tstore: unsupported version %d", version)
	}
	var nVessels uint32
	if err := binary.Read(br, binary.LittleEndian, &nVessels); err != nil {
		return 0, err
	}
	total := 0
	for v := uint32(0); v < nVessels; v++ {
		var mmsi, nPoints uint32
		if err := binary.Read(br, binary.LittleEndian, &mmsi); err != nil {
			return total, err
		}
		if err := binary.Read(br, binary.LittleEndian, &nPoints); err != nil {
			return total, err
		}
		for i := uint32(0); i < nPoints; i++ {
			var rec diskRecord
			if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
				return total, fmt.Errorf("tstore: point %d of vessel %d: %w", i, mmsi, err)
			}
			st.Append(model.VesselState{
				MMSI:      mmsi,
				At:        time.Unix(0, rec.UnixNano).UTC(),
				Pos:       geo.Point{Lat: rec.Lat, Lon: rec.Lon},
				SpeedKn:   float64(rec.SpeedCKn) / 100,
				CourseDeg: float64(rec.CourseCDg) / 100,
				Status:    ais.NavStatus(rec.Status),
			})
			total++
		}
	}
	return total, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
