// Package tstore is the moving-object store of the infrastructure (§2.3):
// an append-optimised archive of vessel trajectories supporting
// time-range, space-time-range and k-nearest-vessel queries, a live layer
// holding the current fleet picture under a grid index, and a compact
// binary snapshot format for persistence. It is safe for concurrent use.
//
// The archive is tierable: a Store with a ChunkStore attached can evict
// cold vessels down to a compact stub (chunk directory + newest sample +
// counts) and every read pages the evicted spans back in transparently,
// reading only the chunks its window and box actually reach — memory
// becomes a cache over the durable store instead of the store itself.
// internal/tier drives eviction (heat tracking, memory budget) and
// implements the chunk store over an object store.
package tstore

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/model"
)

// Sink receives the records appended to a Store (or the updates applied
// to a Live) — the hook a persistence backend attaches to. The canonical
// implementation is internal/store's Flusher, which queues records for an
// asynchronous write-ahead log; implementations must be safe for
// concurrent use when the owning store is used concurrently.
type Sink interface {
	Append(recs ...model.VesselState) error
}

// Tee fans appended records out to several sinks: every sink sees every
// record, and the first error any sink reports is returned (the remaining
// sinks still receive the batch). Nil sinks are skipped, so callers can
// compose optional stages without branching:
//
//	store.Attach(tstore.Tee(hub, flusher)) // publish + persist
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Append(recs ...model.VesselState) error {
	var first error
	for _, s := range t {
		if s == nil {
			continue
		}
		if err := s.Append(recs...); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ChunkStore pages evicted trajectory spans out of a Store and back in —
// the hook the tiered-archive layer (internal/tier) attaches. Spill
// persists one immutable run of a single vessel's time-ordered points
// and returns the key that fetches it back; Fetch must return exactly
// the points Spill was given for that key, bit-for-bit (eviction is
// invisible to every query only if paging is lossless, so chunk
// encodings keep full float64 fidelity — unlike the quantised WAL
// encoding, which only needs restart fidelity). Implementations must be
// safe for concurrent use and should single-flight Fetch per key so
// concurrent queries of the same evicted vessel don't double-load.
type ChunkStore interface {
	Spill(mmsi uint32, pts []model.VesselState) (key string, err error)
	Fetch(key string, mmsi uint32, n int) ([]model.VesselState, error)
}

// ErrVesselHot reports an eviction abandoned because the vessel was
// appended to or read mid-spill — it is hot again, exactly the vessel an
// eviction manager should not be evicting. The spilled objects of the
// abandoned attempt become garbage (reclaimed at the next process
// start).
var ErrVesselHot = errors.New("tstore: vessel touched during eviction")

// tierChunkLen is the spill-run length: large enough that a page-in is
// one sensible object read, small enough that chunk rectangles stay
// tight for nearest/space-time pruning (the spill analogue of
// nearestChunkLen).
const tierChunkLen = 256

// Store archives trajectories keyed by vessel.
type Store struct {
	mu      sync.RWMutex
	vessels map[uint32]*series
	total   int
	sink    Sink
	sinkErr error

	// Tiered-archive state: resident counts points currently held in
	// memory (total keeps counting evicted ones), chunkStore pages
	// evicted spans, clock is the logical last-touch clock eviction
	// ranks vessels by.
	resident   int
	chunkStore ChunkStore
	clock      int64 // atomic
	pageErr    error
	pageIns    atomic.Uint64
	pagedPts   atomic.Uint64

	// fwdMu serialises sink forwarding in append order without holding
	// mu: readers proceed while a slow sink (or a wide pub/sub fan-out)
	// works, yet the sink still sees batches in the order they were
	// inserted and a blocking sink still backpressures the appender.
	fwdMu sync.Mutex
}

// series holds one vessel's points, kept sorted by time. AIS streams are
// near-ordered, so the common append cost is O(1) with a short
// insertion-sort tail for stragglers.
//
// Under tiered storage a series may be partially evicted: chunks
// describes the spilled prefix (immutable runs held by the chunk store)
// and points the resident tail. A fully evicted vessel is the "compact
// stub" of the tiered archive: its chunk directory, its newest sample
// (last) and its counts — everything the live picture, stats and query
// pruning need without paging anything in.
type series struct {
	points    []model.VesselState
	chunks    []evChunk
	last      model.VesselState // newest sample, resident or not
	n         int               // total points, resident + evicted
	lastTouch int64             // atomic: store clock at last append/read
}

// evChunk is one spilled run: its key in the chunk store plus the
// summary (count, bounding rectangle, time span) reads prune by.
type evChunk struct {
	key      string
	n        int
	rect     geo.Rect
	from, to time.Time
}

func (s *series) insert(st model.VesselState) {
	s.points = append(s.points, st)
	for i := len(s.points) - 1; i > 0 && s.points[i].At.Before(s.points[i-1].At); i-- {
		s.points[i], s.points[i-1] = s.points[i-1], s.points[i]
	}
	if s.n == 0 || !st.At.Before(s.last.At) {
		s.last = st
	}
	s.n++
}

// rangeIdx returns the half-open index range of points in [from, to].
func (s *series) rangeIdx(from, to time.Time) (lo, hi int) {
	lo = sort.Search(len(s.points), func(i int) bool { return !s.points[i].At.Before(from) })
	hi = sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(to) })
	return lo, hi
}

// chunksInWindow returns copies of the spilled-chunk descriptors whose
// time span overlaps [from, to] and, when r is non-nil, whose bounding
// rectangle intersects it — the set a windowed read has to page in.
func (s *series) chunksInWindow(from, to time.Time, r *geo.Rect) []evChunk {
	var need []evChunk
	for _, c := range s.chunks {
		if c.to.Before(from) || c.from.After(to) {
			continue
		}
		if r != nil && !r.Intersects(c.rect) {
			continue
		}
		need = append(need, c)
	}
	return need
}

// New returns an empty store.
func New() *Store {
	return &Store{vessels: make(map[uint32]*series)}
}

// Attach installs a persistence sink: every record appended from now on
// is forwarded to it after insertion (nil detaches). Attach before
// feeding the store — records appended earlier are not replayed into the
// sink. Forwarding errors are retained for SinkErr rather than failing
// the append; the in-memory insert always happens. The sink is called
// after the store lock is released (reads proceed while it works) but
// under a dedicated forwarding lock, so it sees appends in insertion
// order and a blocking sink (a full flush queue) still backpressures the
// appender — attach an asynchronous stage (store.Flusher), not a raw
// disk writer, when ingest latency matters. Note: concurrent appends of
// the *same* vessel from different goroutines have no defined forward
// order (the shipped ingest engine serialises per vessel by sharding).
func (st *Store) Attach(s Sink) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sink = s
}

// SinkErr returns the first error the attached sink reported.
func (st *Store) SinkErr() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.sinkErr
}

// Append inserts one state sample.
func (st *Store) Append(s model.VesselState) {
	st.mu.Lock()
	st.insertLocked(s)
	sink := st.sink
	st.mu.Unlock()
	if sink != nil {
		st.forward(sink, s)
	}
}

func (st *Store) insertLocked(s model.VesselState) {
	ser, ok := st.vessels[s.MMSI]
	if !ok {
		ser = &series{}
		st.vessels[s.MMSI] = ser
	}
	ser.insert(s)
	st.total++
	st.resident++
	st.touchLocked(ser)
}

// touchLocked advances the vessel's last-touch clock. Callers hold mu in
// either mode (the fields are atomics so read paths can touch under the
// read lock).
func (st *Store) touchLocked(ser *series) {
	atomic.StoreInt64(&ser.lastTouch, atomic.AddInt64(&st.clock, 1))
}

// --- tiered storage: eviction + page-back ----------------------------------------

// SetChunkStore attaches the paging layer evictions spill to and reads
// page back from (nil detaches; eviction then fails, already-spilled
// chunks become unreadable). Attach before the first EvictVessel.
func (st *Store) SetChunkStore(cs ChunkStore) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.chunkStore = cs
}

// EvictVessel spills the vessel's resident points to the chunk store and
// drops them from memory, leaving the compact stub (chunk directory +
// newest sample + counts). Every read keeps working — windowed reads
// page back only the chunks overlapping their window, the live picture
// and stats answer from the stub alone. It returns the number of points
// evicted: 0 when the vessel is unknown or already fully evicted, and
// ErrVesselHot when the vessel was appended to or read mid-spill (the
// caller should simply skip it — it is not cold). Spilling does IO and
// runs outside the store locks, so reads and appends of other vessels
// proceed throughout.
func (st *Store) EvictVessel(mmsi uint32) (int, error) {
	st.mu.RLock()
	cs := st.chunkStore
	ser, ok := st.vessels[mmsi]
	if cs == nil {
		st.mu.RUnlock()
		return 0, fmt.Errorf("tstore: EvictVessel(%d): no chunk store attached", mmsi)
	}
	if !ok || len(ser.points) == 0 {
		st.mu.RUnlock()
		return 0, nil
	}
	snap := append([]model.VesselState(nil), ser.points...)
	touch := atomic.LoadInt64(&ser.lastTouch)
	st.mu.RUnlock()

	var spilled []evChunk
	for lo := 0; lo < len(snap); lo += tierChunkLen {
		hi := lo + tierChunkLen
		if hi > len(snap) {
			hi = len(snap)
		}
		run := snap[lo:hi]
		key, err := cs.Spill(mmsi, run)
		if err != nil {
			return 0, fmt.Errorf("tstore: spilling vessel %d: %w", mmsi, err)
		}
		rect := geo.EmptyRect()
		for _, p := range run {
			rect = rect.Extend(p.Pos)
		}
		spilled = append(spilled, evChunk{
			key: key, n: len(run), rect: rect,
			from: run[0].At, to: run[len(run)-1].At,
		})
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.vessels[mmsi]
	if cur == nil || atomic.LoadInt64(&cur.lastTouch) != touch || len(cur.points) != len(snap) {
		return 0, ErrVesselHot
	}
	cur.chunks = append(cur.chunks, spilled...)
	cur.points = nil
	st.resident -= len(snap)
	return len(snap), nil
}

// fetchChunk pages one spilled run back in (a read, so it heats the
// vessel). Errors park in PageErr as well as being returned, so a
// degraded read surface still shows why it is partial.
func (st *Store) fetchChunk(mmsi uint32, c evChunk) ([]model.VesselState, error) {
	st.mu.RLock()
	cs := st.chunkStore
	if ser, ok := st.vessels[mmsi]; ok {
		st.touchLocked(ser)
	}
	st.mu.RUnlock()
	if cs == nil {
		err := fmt.Errorf("tstore: vessel %d has spilled chunks but no chunk store attached", mmsi)
		st.recordPageErr(err)
		return nil, err
	}
	pts, err := cs.Fetch(c.key, mmsi, c.n)
	if err != nil {
		st.recordPageErr(fmt.Errorf("tstore: paging vessel %d back in: %w", mmsi, err))
		return nil, err
	}
	st.pageIns.Add(1)
	st.pagedPts.Add(uint64(len(pts)))
	return pts, nil
}

// fetchChunks pages a descriptor list back in, degrading on error: a
// failed chunk contributes nothing (PageErr says why) while the rest of
// the read proceeds — the same degraded-not-fatal stance as a federation
// peer outage.
func (st *Store) fetchChunks(mmsi uint32, need []evChunk) [][]model.VesselState {
	parts := make([][]model.VesselState, 0, len(need))
	for _, c := range need {
		if pts, err := st.fetchChunk(mmsi, c); err == nil {
			parts = append(parts, pts)
		}
	}
	return parts
}

func (st *Store) recordPageErr(err error) {
	st.mu.Lock()
	if st.pageErr == nil {
		st.pageErr = err
	}
	st.mu.Unlock()
}

// PageErr returns the first chunk page-back failure (nil while paging is
// healthy). A non-nil value means some read returned resident data only.
func (st *Store) PageErr() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.pageErr
}

// mergeByTime merges time-sorted runs into one time-sorted slice,
// breaking ties in favour of earlier runs — spill order first, resident
// tail last, which reproduces exactly the order insertion built before
// eviction.
func mergeByTime(parts [][]model.VesselState) []model.VesselState {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		out := make([]model.VesselState, len(parts[0]))
		copy(out, parts[0])
		return out
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]model.VesselState, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || p[idx[i]].At.Before(parts[best][idx[best]].At) {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// trimWindow narrows a time-sorted run to [from, to].
func trimWindow(pts []model.VesselState, from, to time.Time) []model.VesselState {
	lo := sort.Search(len(pts), func(i int) bool { return !pts[i].At.Before(from) })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].At.After(to) })
	return pts[lo:hi]
}

// VesselHeat is one vessel's eviction-relevant state: how many points it
// holds in memory and when it was last appended to or read, on the
// store's logical clock.
type VesselHeat struct {
	MMSI      uint32
	Resident  int
	LastTouch int64
}

// Heat returns the vessels currently holding resident points, the
// candidate set an eviction manager ranks by LastTouch.
func (st *Store) Heat() []VesselHeat {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]VesselHeat, 0, len(st.vessels))
	for m, ser := range st.vessels {
		if len(ser.points) == 0 {
			continue
		}
		out = append(out, VesselHeat{
			MMSI: m, Resident: len(ser.points),
			LastTouch: atomic.LoadInt64(&ser.lastTouch),
		})
	}
	return out
}

// Clock returns the store's logical touch clock (advances on every
// append and vessel read).
func (st *Store) Clock() int64 { return atomic.LoadInt64(&st.clock) }

// TierCounters snapshots the store's tiered-storage state.
type TierCounters struct {
	ResidentPoints  int
	EvictedPoints   int
	ResidentVessels int    // vessels with at least one resident point
	EvictedVessels  int    // vessels holding history but zero resident points
	SpilledChunks   int    // chunk-directory entries across all stubs
	PageIns         uint64 // chunk fetches served (cache hits included)
	PagedPoints     uint64 // points those fetches carried
}

// Tier snapshots the store's tiered-storage counters.
func (st *Store) Tier() TierCounters {
	st.mu.RLock()
	defer st.mu.RUnlock()
	tc := TierCounters{
		ResidentPoints: st.resident,
		EvictedPoints:  st.total - st.resident,
		PageIns:        st.pageIns.Load(),
		PagedPoints:    st.pagedPts.Load(),
	}
	for _, ser := range st.vessels {
		tc.SpilledChunks += len(ser.chunks)
		switch {
		case len(ser.points) > 0:
			tc.ResidentVessels++
		case ser.n > 0:
			tc.EvictedVessels++
		}
	}
	return tc
}

// ResidentPoints returns the number of points currently held in memory
// (Len counts evicted points too).
func (st *Store) ResidentPoints() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.resident
}

// forward hands records to the sink outside the store lock, serialised
// in append order by fwdMu; the first error parks in sinkErr.
func (st *Store) forward(sink Sink, recs ...model.VesselState) {
	st.fwdMu.Lock()
	err := sink.Append(recs...)
	st.fwdMu.Unlock()
	if err != nil {
		st.mu.Lock()
		if st.sinkErr == nil {
			st.sinkErr = err
		}
		st.mu.Unlock()
	}
}

// AppendAll inserts a batch of samples, forwarding the whole batch to the
// attached sink in one call.
func (st *Store) AppendAll(states []model.VesselState) {
	st.mu.Lock()
	for _, s := range states {
		st.insertLocked(s)
	}
	sink := st.sink
	st.mu.Unlock()
	if sink != nil && len(states) > 0 {
		st.forward(sink, states...)
	}
}

// Len returns the total number of stored points.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.total
}

// VesselCount returns the number of distinct vessels.
func (st *Store) VesselCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.vessels)
}

// MMSIs returns the sorted vessel identifiers present.
func (st *Store) MMSIs() []uint32 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]uint32, 0, len(st.vessels))
	for m := range st.vessels {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Trajectory returns a copy of the vessel's full trajectory (nil points if
// unknown vessel), paging any evicted spans back in.
func (st *Store) Trajectory(mmsi uint32) *model.Trajectory {
	st.mu.RLock()
	tr := &model.Trajectory{MMSI: mmsi}
	ser, ok := st.vessels[mmsi]
	if !ok {
		st.mu.RUnlock()
		return tr
	}
	st.touchLocked(ser)
	resident := make([]model.VesselState, len(ser.points))
	copy(resident, ser.points)
	need := append([]evChunk(nil), ser.chunks...)
	st.mu.RUnlock()
	if len(need) == 0 {
		tr.Points = resident
		return tr
	}
	parts := st.fetchChunks(mmsi, need)
	parts = append(parts, resident)
	tr.Points = mergeByTime(parts)
	return tr
}

// Latest returns the vessel's newest sample without copying the
// trajectory (false for an unknown vessel). The stub keeps the newest
// sample resident, so this never pages.
func (st *Store) Latest(mmsi uint32) (model.VesselState, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ser, ok := st.vessels[mmsi]
	if !ok || ser.n == 0 {
		return model.VesselState{}, false
	}
	st.touchLocked(ser)
	return ser.last, true
}

// LatestStates returns every vessel's newest sample, ordered by MMSI —
// the archive's "current picture", at O(vessels) instead of the
// O(points) a per-vessel Trajectory walk would copy. Stubs answer from
// their retained newest sample: a fully evicted archive still serves its
// live picture without one page-in.
func (st *Store) LatestStates() []model.VesselState {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]model.VesselState, 0, len(st.vessels))
	for _, ser := range st.vessels {
		if ser.n > 0 {
			out = append(out, ser.last)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// TimeRange returns the vessel's samples in [from, to], paging in only
// the evicted chunks whose span overlaps the window.
func (st *Store) TimeRange(mmsi uint32, from, to time.Time) []model.VesselState {
	st.mu.RLock()
	ser, ok := st.vessels[mmsi]
	if !ok {
		st.mu.RUnlock()
		return nil
	}
	st.touchLocked(ser)
	lo, hi := ser.rangeIdx(from, to)
	resident := make([]model.VesselState, hi-lo)
	copy(resident, ser.points[lo:hi])
	need := ser.chunksInWindow(from, to, nil)
	st.mu.RUnlock()
	if len(need) == 0 {
		return resident
	}
	parts := st.fetchChunks(mmsi, need)
	for i, p := range parts {
		parts[i] = trimWindow(p, from, to)
	}
	parts = append(parts, resident)
	return mergeByTime(parts)
}

// SpaceTime returns all samples inside the box during [from, to], ordered
// by (MMSI, time). It scans per-vessel time ranges, which is the right
// plan when the time window is selective; use SpatialSnapshot for
// space-selective archival queries. Evicted chunks are paged in only
// when their time span overlaps the window AND their bounding rectangle
// intersects the box — the chunk directory prunes the rest unread.
func (st *Store) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	type vesselRead struct {
		mmsi     uint32
		resident []model.VesselState // in-window copy, rect not yet applied
		need     []evChunk
	}
	st.mu.RLock()
	reads := make([]vesselRead, 0, len(st.vessels))
	for m, ser := range st.vessels {
		lo, hi := ser.rangeIdx(from, to)
		need := ser.chunksInWindow(from, to, &r)
		if hi == lo && len(need) == 0 {
			continue
		}
		vr := vesselRead{mmsi: m, need: need}
		vr.resident = make([]model.VesselState, hi-lo)
		copy(vr.resident, ser.points[lo:hi])
		st.touchLocked(ser)
		reads = append(reads, vr)
	}
	st.mu.RUnlock()
	sort.Slice(reads, func(i, j int) bool { return reads[i].mmsi < reads[j].mmsi })
	var out []model.VesselState
	for _, vr := range reads {
		merged := vr.resident
		if len(vr.need) > 0 {
			parts := st.fetchChunks(vr.mmsi, vr.need)
			for i, p := range parts {
				parts[i] = trimWindow(p, from, to)
			}
			parts = append(parts, vr.resident)
			merged = mergeByTime(parts)
		}
		for _, p := range merged {
			if r.Contains(p.Pos) {
				out = append(out, p)
			}
		}
	}
	return out
}

// Snapshot is an immutable spatial view over the archive at build time:
// an R-tree whose item IDs encode (vessel, point) so results map back to
// full states, plus a per-vessel time-chunked directory (bounding
// rectangle and time span per run of consecutive samples) that
// NearestVessels searches — candidates are pre-partitioned by time, so a
// selective window prunes whole chunks instead of filtering fetched
// points one by one.
//
// Evicted spans join the same directory as unresolved entries carrying
// their chunk-store key: their rectangle and span still prune and bound
// the best-first search, and their points are paged in only when the
// search actually pops them (or a Search window reaches them) — a
// nearest query over a mostly evicted archive reads back just the
// chunks it would have scanned anyway. Resolution is cached per chunk
// inside the snapshot (sync.Once), so a shared snapshot pages each
// chunk at most once however many queries run over it.
type Snapshot struct {
	rt     *index.RTree
	states []model.VesselState // resident points, (MMSI, time)-ordered
	chunks []snapChunk         // per-vessel runs, grouped by vessel
	total  int                 // resident + evicted points
	fetch  func(mmsi uint32, key string, n int) []model.VesselState
}

// snapChunk summarises up to nearestChunkLen consecutive samples of one
// vessel: their bounding rectangle, time span and either an index range
// in states (resident) or a lazily resolved spilled chunk (evicted).
type snapChunk struct {
	mmsi     uint32
	rect     geo.Rect
	from, to time.Time
	lo, hi   int        // states[lo:hi] when lazy is nil
	lazy     *lazyChunk // non-nil: evicted span, resolved on first use
}

// lazyChunk resolves one evicted span at most once per snapshot.
type lazyChunk struct {
	key  string
	n    int
	once sync.Once
	pts  []model.VesselState
}

// resolve returns the chunk's points, paging an evicted span in on first
// use (nil on page failure — the store records why in PageErr).
func (sn *Snapshot) resolve(c *snapChunk) []model.VesselState {
	if c.lazy == nil {
		return sn.states[c.lo:c.hi]
	}
	c.lazy.once.Do(func() {
		if sn.fetch != nil {
			c.lazy.pts = sn.fetch(c.mmsi, c.lazy.key, c.lazy.n)
		}
	})
	return c.lazy.pts
}

// nearestChunkLen balances directory size against scan width: chunks are
// small enough that rect lower bounds stay tight and a window scan stays
// cheap, large enough that the directory is ~2% of the point count.
const nearestChunkLen = 64

// PointBytes is the in-memory footprint of one resident point (the
// series slice element), the unit eviction memory budgets are accounted
// in. Map, slice-header and stub overheads ride on top, so a budget is a
// floor on what eviction can reclaim, not an exact RSS bound.
var PointBytes = int(unsafe.Sizeof(model.VesselState{}))

// SpatialSnapshot builds a snapshot over all points currently stored.
// Evicted spans are not paged in at build time — they enter the chunk
// directory as lazy entries resolved only if a query reaches them.
func (st *Store) SpatialSnapshot() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	states := make([]model.VesselState, 0, st.resident)
	mmsis := make([]uint32, 0, len(st.vessels))
	for m := range st.vessels {
		mmsis = append(mmsis, m)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	sn := &Snapshot{total: st.total}
	anyLazy := false
	for _, m := range mmsis {
		ser := st.vessels[m]
		for _, c := range ser.chunks {
			sn.chunks = append(sn.chunks, snapChunk{
				mmsi: m, rect: c.rect, from: c.from, to: c.to,
				lazy: &lazyChunk{key: c.key, n: c.n},
			})
			anyLazy = true
		}
		pts := ser.points
		base := len(states)
		states = append(states, pts...)
		for lo := 0; lo < len(pts); lo += nearestChunkLen {
			hi := lo + nearestChunkLen
			if hi > len(pts) {
				hi = len(pts)
			}
			c := snapChunk{
				mmsi: m, rect: geo.EmptyRect(),
				from: pts[lo].At, to: pts[hi-1].At,
				lo: base + lo, hi: base + hi,
			}
			for _, p := range pts[lo:hi] {
				c.rect = c.rect.Extend(p.Pos)
			}
			sn.chunks = append(sn.chunks, c)
		}
	}
	items := make([]index.Item, len(states))
	for i, s := range states {
		items[i] = index.Item{Pos: s.Pos, ID: uint64(i)}
	}
	sn.rt = index.BuildRTree(items)
	sn.states = states
	if anyLazy {
		sn.fetch = func(mmsi uint32, key string, n int) []model.VesselState {
			pts, _ := st.fetchChunk(mmsi, evChunk{key: key, n: n})
			return pts
		}
	}
	return sn
}

// Len returns the number of points the snapshot covers, resident and
// evicted alike.
func (sn *Snapshot) Len() int { return sn.total }

// Search returns the states inside the box during [from, to]. Resident
// points come from the R-tree; evicted chunks are paged in only when
// both their rectangle and their span overlap the query.
func (sn *Snapshot) Search(r geo.Rect, from, to time.Time) []model.VesselState {
	var out []model.VesselState
	for _, it := range sn.rt.Search(r, nil) {
		s := sn.states[it.ID]
		if !s.At.Before(from) && !s.At.After(to) {
			out = append(out, s)
		}
	}
	for i := range sn.chunks {
		c := &sn.chunks[i]
		if c.lazy == nil || c.to.Before(from) || c.from.After(to) || !r.Intersects(c.rect) {
			continue
		}
		for _, s := range sn.resolve(c) {
			if !s.At.Before(from) && !s.At.After(to) && r.Contains(s.Pos) {
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MMSI != out[j].MMSI {
			return out[i].MMSI < out[j].MMSI
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

// NearestVessels returns up to k distinct vessels with a sample within tol
// of the instant `at`, ordered by the distance of that sample to p.
//
// The search runs over the snapshot's per-vessel time-chunk directory,
// not the raw point R-tree: chunks whose time span misses the window are
// pruned outright (candidates pre-partitioned by time), the rest enter a
// best-first queue keyed by their rectangle's admissible lower-bound
// distance, and popping a chunk resolves it to the vessel's nearest
// in-window sample, re-queued at its true distance. A chunk of an
// already-emitted vessel is skipped without scanning. This replaces the
// old fetch-then-filter loop over the point R-tree, which re-fetched 4×
// more candidates each round and waded through hundreds of co-located
// same-vessel samples — ms-range where this is µs-range (E16/E17).
func (sn *Snapshot) NearestVessels(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	if k <= 0 || len(sn.chunks) == 0 {
		return nil
	}
	// time.Time.Sub saturates, so the max-duration tolerance used for
	// time-agnostic searches admits every dt without overflow.
	admit := func(t time.Time) bool {
		dt := t.Sub(at)
		if dt < 0 {
			dt = -dt
		}
		return dt <= tol
	}
	q := make(nvQueue, 0, 64)
	for i := range sn.chunks {
		c := &sn.chunks[i]
		// Chunk-level time pruning: the nearest instant of [from, to]
		// to `at` must be admissible.
		switch {
		case at.Before(c.from):
			if c.from.Sub(at) > tol {
				continue
			}
		case at.After(c.to):
			if at.Sub(c.to) > tol {
				continue
			}
		}
		q = append(q, nvEntry{dist: c.rect.DistanceTo(p), chunk: i, mmsi: c.mmsi})
	}
	heap.Init(&q)
	seen := make(map[uint32]bool, k)
	out := make([]model.VesselState, 0, k)
	for q.Len() > 0 && len(out) < k {
		e := heap.Pop(&q).(nvEntry)
		if seen[e.mmsi] {
			continue
		}
		if e.chunk < 0 { // resolved: this is the vessel's nearest admissible sample
			seen[e.mmsi] = true
			out = append(out, e.state)
			continue
		}
		// Resolving an evicted chunk pages it in here — and only here:
		// chunks whose rectangle lower bound never reaches the front of
		// the queue are never read back.
		c := &sn.chunks[e.chunk]
		var best model.VesselState
		found, bd := false, math.Inf(1)
		for _, s := range sn.resolve(c) {
			if !admit(s.At) {
				continue
			}
			if d := geo.Distance(p, s.Pos); d < bd {
				best, bd, found = s, d, true
			}
		}
		if found {
			heap.Push(&q, nvEntry{dist: bd, chunk: -1, state: best, mmsi: c.mmsi})
		}
	}
	return out
}

// nvEntry is a best-first queue entry of NearestVessels: an unresolved
// chunk (rect lower bound) or a resolved sample (true distance).
type nvEntry struct {
	dist  float64
	chunk int // chunk index, or -1 once resolved
	state model.VesselState
	mmsi  uint32
}

type nvQueue []nvEntry

func (q nvQueue) Len() int           { return len(q) }
func (q nvQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nvQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nvQueue) Push(x any)        { *q = append(*q, x.(nvEntry)) }
func (q *nvQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// --- live layer ---------------------------------------------------------------

// Live maintains the current picture: the latest state per vessel under a
// grid index for range and proximity queries over "now".
type Live struct {
	mu      sync.RWMutex
	latest  map[uint32]model.VesselState
	grid    *index.GridIndex
	sink    Sink
	sinkErr error
}

// NewLive returns an empty live layer with the given index cell size.
func NewLive(cellDeg float64) *Live {
	return &Live{
		latest: make(map[uint32]model.VesselState),
		grid:   index.NewGridIndex(cellDeg),
	}
}

// Attach installs a persistence sink receiving every subsequent Update —
// a full-rate journal of the live picture, unlike the Store's
// post-synopsis archive stream (nil detaches). Same contract as
// Store.Attach: errors park in SinkErr, a blocking sink backpressures.
func (l *Live) Attach(s Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = s
}

// SinkErr returns the first error the attached sink reported.
func (l *Live) SinkErr() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sinkErr
}

// Update replaces the vessel's current state.
func (l *Live) Update(s model.VesselState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.latest[s.MMSI]; ok {
		l.grid.Remove(prev.Pos, uint64(s.MMSI))
	}
	l.latest[s.MMSI] = s
	l.grid.Insert(index.Item{Pos: s.Pos, ID: uint64(s.MMSI)})
	if l.sink != nil {
		if err := l.sink.Append(s); err != nil && l.sinkErr == nil {
			l.sinkErr = err
		}
	}
}

// Get returns the vessel's current state.
func (l *Live) Get(mmsi uint32) (model.VesselState, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s, ok := l.latest[mmsi]
	return s, ok
}

// Count returns the number of tracked vessels.
func (l *Live) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.latest)
}

// MMSIs returns the sorted identifiers of the tracked vessels — the
// distinct-count read stats aggregation uses (O(vessels) integers, no
// state copies).
func (l *Live) MMSIs() []uint32 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]uint32, 0, len(l.latest))
	for m := range l.latest {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InRect returns the current states inside the box, ordered by MMSI.
func (l *Live) InRect(r geo.Rect) []model.VesselState {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []model.VesselState
	for _, it := range l.grid.Search(r, nil) {
		out = append(out, l.latest[uint32(it.ID)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// Nearest returns the k vessels currently closest to p.
func (l *Live) Nearest(p geo.Point, k int) []model.VesselState {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []model.VesselState
	for _, it := range l.grid.Nearest(p, k) {
		out = append(out, l.latest[uint32(it.ID)])
	}
	return out
}

// Stale returns vessels whose latest report is older than maxAge relative
// to now — the live layer's view of "possibly gone dark".
func (l *Live) Stale(now time.Time, maxAge time.Duration) []model.VesselState {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []model.VesselState
	for _, s := range l.latest {
		if now.Sub(s.At) > maxAge {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// --- persistence ----------------------------------------------------------------

const (
	snapshotMagic   = 0x4D415254 // "MART"
	snapshotVersion = 1
)

// WriteTo serialises the archive in a compact binary layout, paging any
// evicted spans back in (a snapshot must be complete, so unlike the
// query paths a page-back failure here is an error, not a degradation).
// It returns the number of bytes written.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	st.mu.RLock()
	// Capture per-vessel state so spilled chunks can be fetched without
	// holding the lock; a fully resident store captures only slice
	// references it then copies out (the common case: compaction folds and
	// snapshot writes run over never-evicted stores).
	type vcap struct {
		mmsi     uint32
		resident []model.VesselState
		chunks   []evChunk
	}
	caps := make([]vcap, 0, len(st.vessels))
	for m, ser := range st.vessels {
		vc := vcap{mmsi: m, chunks: append([]evChunk(nil), ser.chunks...)}
		vc.resident = make([]model.VesselState, len(ser.points))
		copy(vc.resident, ser.points)
		caps = append(caps, vc)
	}
	st.mu.RUnlock()
	sort.Slice(caps, func(i, j int) bool { return caps[i].mmsi < caps[j].mmsi })

	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(snapshotMagic)); err != nil {
		return n, err
	}
	if err := write(uint16(snapshotVersion)); err != nil {
		return n, err
	}
	if err := write(uint32(len(caps))); err != nil {
		return n, err
	}
	for _, vc := range caps {
		pts := vc.resident
		if len(vc.chunks) > 0 {
			parts := make([][]model.VesselState, 0, len(vc.chunks)+1)
			for _, c := range vc.chunks {
				cp, err := st.fetchChunk(vc.mmsi, c)
				if err != nil {
					return n, err
				}
				parts = append(parts, cp)
			}
			parts = append(parts, vc.resident)
			pts = mergeByTime(parts)
		}
		if err := write(vc.mmsi); err != nil {
			return n, err
		}
		if err := write(uint32(len(pts))); err != nil {
			return n, err
		}
		for _, p := range pts {
			rec := diskRecord{
				UnixNano:  p.At.UnixNano(),
				Lat:       p.Pos.Lat,
				Lon:       p.Pos.Lon,
				SpeedCKn:  uint16(math.Round(clampF(p.SpeedKn, 0, 655.35) * 100)),
				CourseCDg: uint16(math.Round(clampF(p.CourseDeg, 0, 655.35) * 100)),
				Status:    uint8(p.Status),
			}
			if err := write(rec); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// diskRecord is the on-disk point layout: 27 bytes per point.
type diskRecord struct {
	UnixNano  int64
	Lat, Lon  float64
	SpeedCKn  uint16 // centi-knots
	CourseCDg uint16 // centi-degrees
	Status    uint8
}

// Load deserialises an archive produced by WriteTo into the store. Its
// semantics are APPEND-MERGE, not replace: every loaded point is inserted
// into per-vessel time order alongside whatever the store already holds,
// existing points are never removed or overwritten, and loading the same
// archive twice therefore duplicates every point (Len doubles). Load into
// a fresh New() store for replace semantics; TestLoadMergesIntoNonEmpty
// pins this contract. Loaded points are forwarded to an attached Sink
// like any other append — load before Attach to avoid re-persisting an
// archive you just read. It returns the number of points read. (Named
// Load rather than ReadFrom to avoid colliding with io.ReaderFrom's
// contract, which counts bytes, not points.)
func (st *Store) Load(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var magic uint32
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return 0, fmt.Errorf("tstore: reading magic: %w", err)
	}
	if magic != snapshotMagic {
		return 0, fmt.Errorf("tstore: bad magic %08x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return 0, err
	}
	if version != snapshotVersion {
		return 0, fmt.Errorf("tstore: unsupported version %d", version)
	}
	var nVessels uint32
	if err := binary.Read(br, binary.LittleEndian, &nVessels); err != nil {
		return 0, err
	}
	total := 0
	for v := uint32(0); v < nVessels; v++ {
		var mmsi, nPoints uint32
		if err := binary.Read(br, binary.LittleEndian, &mmsi); err != nil {
			return total, err
		}
		if err := binary.Read(br, binary.LittleEndian, &nPoints); err != nil {
			return total, err
		}
		for i := uint32(0); i < nPoints; i++ {
			var rec diskRecord
			if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
				return total, fmt.Errorf("tstore: point %d of vessel %d: %w", i, mmsi, err)
			}
			st.Append(model.VesselState{
				MMSI:      mmsi,
				At:        time.Unix(0, rec.UnixNano).UTC(),
				Pos:       geo.Point{Lat: rec.Lat, Lon: rec.Lon},
				SpeedKn:   float64(rec.SpeedCKn) / 100,
				CourseDeg: float64(rec.CourseCDg) / 100,
				Status:    ais.NavStatus(rec.Status),
			})
			total++
		}
	}
	return total, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
