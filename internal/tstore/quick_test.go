package tstore

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
)

// TestQuickPersistenceRoundTrip property-checks WriteTo/Load over randomly
// generated stores: every structural property (vessel set, per-vessel
// counts, point identity up to quantisation) must survive the disk format.
func TestQuickPersistenceRoundTrip(t *testing.T) {
	f := func(seeds []uint16, latRaw, lonRaw float64) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 60 {
			seeds = seeds[:60]
		}
		lat := math.Mod(math.Abs(latRaw), 80)
		lon := math.Mod(math.Abs(lonRaw), 170)
		st := New()
		base := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
		for i, sd := range seeds {
			st.Append(model.VesselState{
				MMSI:      uint32(201000000 + int(sd)%7),
				At:        base.Add(time.Duration(i) * 13 * time.Second),
				Pos:       geo.Point{Lat: lat - float64(sd%100)*0.01, Lon: lon - float64(sd%90)*0.01},
				SpeedKn:   float64(sd%300) / 10,
				CourseDeg: float64(sd%3600) / 10,
				Status:    ais.NavStatus(sd % 9),
			})
		}
		var buf bytes.Buffer
		if _, err := st.WriteTo(&buf); err != nil {
			return false
		}
		st2 := New()
		n, err := st2.Load(&buf)
		if err != nil || n != st.Len() {
			return false
		}
		if st2.VesselCount() != st.VesselCount() {
			return false
		}
		for _, m := range st.MMSIs() {
			a, b := st.Trajectory(m), st2.Trajectory(m)
			if a.Len() != b.Len() {
				return false
			}
			for i := range a.Points {
				pa, pb := a.Points[i], b.Points[i]
				if !pa.At.Equal(pb.At) || pa.Pos != pb.Pos || pa.Status != pb.Status {
					return false
				}
				if math.Abs(pa.SpeedKn-pb.SpeedKn) > 0.006 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimeRangeInvariants property-checks TimeRange against the full
// trajectory: results are exactly the points inside the window, in order.
func TestQuickTimeRangeInvariants(t *testing.T) {
	f := func(offsets []uint8, fromSec, spanSec uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		st := New()
		base := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
		for _, off := range offsets {
			st.Append(model.VesselState{
				MMSI: 1, At: base.Add(time.Duration(off) * time.Second),
				Pos: geo.Point{Lat: 40, Lon: 5},
			})
		}
		from := base.Add(time.Duration(fromSec%300) * time.Second)
		to := from.Add(time.Duration(spanSec%300) * time.Second)
		got := st.TimeRange(1, from, to)
		// Count expected from the full trajectory.
		want := 0
		for _, p := range st.Trajectory(1).Points {
			if !p.At.Before(from) && !p.At.After(to) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].At.Before(got[i-1].At) {
				return false
			}
		}
		for _, p := range got {
			if p.At.Before(from) || p.At.After(to) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
