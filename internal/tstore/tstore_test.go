package tstore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
)

func t0() time.Time { return time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC) }

func sample(mmsi uint32, sec int, lat, lon float64) model.VesselState {
	return model.VesselState{
		MMSI: mmsi, At: t0().Add(time.Duration(sec) * time.Second),
		Pos: geo.Point{Lat: lat, Lon: lon}, SpeedKn: 10, CourseDeg: 90,
		Status: ais.StatusUnderWayEngine,
	}
}

func populated(rng *rand.Rand, vessels, pointsPer int) *Store {
	st := New()
	for v := 0; v < vessels; v++ {
		mmsi := uint32(201000000 + v)
		lat := 35 + rng.Float64()*8
		lon := rng.Float64() * 20
		for i := 0; i < pointsPer; i++ {
			st.Append(sample(mmsi, i*10, lat+float64(i)*0.001, lon))
		}
	}
	return st
}

func TestAppendAndTrajectory(t *testing.T) {
	st := New()
	st.Append(sample(1, 10, 40, 5))
	st.Append(sample(1, 30, 40.01, 5))
	st.Append(sample(1, 20, 40.005, 5)) // out of order
	st.Append(sample(2, 5, 41, 6))

	if st.Len() != 4 || st.VesselCount() != 2 {
		t.Fatalf("len=%d vessels=%d", st.Len(), st.VesselCount())
	}
	tr := st.Trajectory(1)
	if tr.Len() != 3 {
		t.Fatalf("trajectory len %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].At.Before(tr.Points[i-1].At) {
			t.Fatal("out-of-order append not repaired")
		}
	}
	if got := st.Trajectory(99); got.Len() != 0 {
		t.Error("unknown vessel should have empty trajectory")
	}
	// The returned trajectory must be a copy: mutating it must not corrupt
	// the store.
	tr.Points[0].Pos.Lat = -77
	if st.Trajectory(1).Points[0].Pos.Lat == -77 {
		t.Error("Trajectory should return a copy")
	}
}

func TestTimeRange(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		st.Append(sample(1, i*10, 40, 5))
	}
	got := st.TimeRange(1, t0().Add(100*time.Second), t0().Add(200*time.Second))
	if len(got) != 11 {
		t.Fatalf("time range returned %d, want 11", len(got))
	}
	for _, p := range got {
		if p.At.Before(t0().Add(100*time.Second)) || p.At.After(t0().Add(200*time.Second)) {
			t.Fatal("point outside requested range")
		}
	}
	if got := st.TimeRange(1, t0().Add(time.Hour), t0().Add(2*time.Hour)); len(got) != 0 {
		t.Error("empty range expected")
	}
}

func TestSpaceTimeMatchesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := populated(rng, 50, 60)
	sn := st.SpatialSnapshot()
	if sn.Len() != st.Len() {
		t.Fatalf("snapshot len %d != store %d", sn.Len(), st.Len())
	}
	for trial := 0; trial < 20; trial++ {
		c := geo.Point{Lat: 35 + rng.Float64()*8, Lon: rng.Float64() * 20}
		r := geo.RectAround(c, 100000)
		from := t0().Add(time.Duration(rng.Intn(300)) * time.Second)
		to := from.Add(time.Duration(rng.Intn(300)) * time.Second)
		a := st.SpaceTime(r, from, to)
		b := sn.Search(r, from, to)
		if len(a) != len(b) {
			t.Fatalf("trial %d: SpaceTime %d vs Snapshot %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].MMSI != b[i].MMSI || !a[i].At.Equal(b[i].At) {
				t.Fatalf("trial %d: result %d differs", trial, i)
			}
		}
	}
}

func TestNearestVessels(t *testing.T) {
	st := New()
	// Three vessels at increasing distance from the query point, all at t0.
	st.Append(sample(1, 0, 40.0, 5.0))
	st.Append(sample(2, 0, 40.1, 5.0))
	st.Append(sample(3, 0, 40.5, 5.0))
	// A fourth very close but far in time.
	st.Append(sample(4, 7200, 40.0, 5.001))
	sn := st.SpatialSnapshot()
	got := sn.NearestVessels(geo.Point{Lat: 40, Lon: 5}, t0(), time.Minute, 2)
	if len(got) != 2 {
		t.Fatalf("got %d vessels", len(got))
	}
	if got[0].MMSI != 1 || got[1].MMSI != 2 {
		t.Errorf("wrong order: %d, %d", got[0].MMSI, got[1].MMSI)
	}
	for _, s := range got {
		if s.MMSI == 4 {
			t.Error("time-filtered vessel leaked into results")
		}
	}
}

func TestLiveLayer(t *testing.T) {
	l := NewLive(0.5)
	l.Update(sample(1, 0, 40, 5))
	l.Update(sample(2, 0, 41, 6))
	l.Update(sample(1, 60, 40.5, 5.5)) // moves vessel 1

	if l.Count() != 2 {
		t.Fatalf("count %d", l.Count())
	}
	s, ok := l.Get(1)
	if !ok || s.Pos.Lat != 40.5 {
		t.Errorf("latest state not updated: %+v", s)
	}
	// The old position must no longer be indexed.
	old := l.InRect(geo.RectAround(geo.Point{Lat: 40, Lon: 5}, 10000))
	for _, v := range old {
		if v.MMSI == 1 {
			t.Error("stale position still indexed")
		}
	}
	got := l.InRect(geo.RectAround(geo.Point{Lat: 40.5, Lon: 5.5}, 10000))
	if len(got) != 1 || got[0].MMSI != 1 {
		t.Errorf("new position not indexed: %+v", got)
	}
	nn := l.Nearest(geo.Point{Lat: 41.01, Lon: 6.01}, 1)
	if len(nn) != 1 || nn[0].MMSI != 2 {
		t.Errorf("nearest wrong: %+v", nn)
	}
}

func TestLiveStale(t *testing.T) {
	l := NewLive(0.5)
	l.Update(sample(1, 0, 40, 5))
	l.Update(sample(2, 3600, 41, 6))
	now := t0().Add(2 * time.Hour)
	stale := l.Stale(now, 90*time.Minute)
	if len(stale) != 1 || stale[0].MMSI != 1 {
		t.Errorf("stale detection wrong: %+v", stale)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := populated(rng, 20, 50)
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	n, err := st2.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Len() {
		t.Fatalf("read %d points, want %d", n, st.Len())
	}
	for _, mmsi := range st.MMSIs() {
		a := st.Trajectory(mmsi)
		b := st2.Trajectory(mmsi)
		if a.Len() != b.Len() {
			t.Fatalf("vessel %d: %d vs %d points", mmsi, a.Len(), b.Len())
		}
		for i := range a.Points {
			pa, pb := a.Points[i], b.Points[i]
			if !pa.At.Equal(pb.At) || pa.Pos != pb.Pos || pa.Status != pb.Status {
				t.Fatalf("vessel %d point %d differs: %+v vs %+v", mmsi, i, pa, pb)
			}
			// Speed/course survive at centi-unit precision.
			if diff := pa.SpeedKn - pb.SpeedKn; diff > 0.006 || diff < -0.006 {
				t.Fatalf("speed lost precision: %f vs %f", pa.SpeedKn, pb.SpeedKn)
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	st := New()
	if _, err := st.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input must error")
	}
	if _, err := st.Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must error")
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	st := New()
	l := NewLive(0.5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := sample(uint32(201000000+w), i*10, 40+float64(w)*0.1, 5)
				st.Append(s)
				l.Update(s)
				if i%50 == 0 {
					_ = st.TimeRange(uint32(201000000+w), t0(), t0().Add(time.Hour))
					_ = l.InRect(geo.RectAround(geo.Point{Lat: 40, Lon: 5}, 100000))
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != 8*500 {
		t.Fatalf("lost appends: %d", st.Len())
	}
	if l.Count() != 8 {
		t.Fatalf("live count %d", l.Count())
	}
}

func TestMMSIsSorted(t *testing.T) {
	st := New()
	for _, m := range []uint32{5, 1, 9, 3} {
		st.Append(sample(m, 0, 40, 5))
	}
	got := st.MMSIs()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("MMSIs not sorted")
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	st := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Append(sample(uint32(201000000+i%500), i, 40, 5))
	}
}

func BenchmarkTimeRange(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	st := populated(rng, 100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.TimeRange(201000050, t0().Add(100*time.Second), t0().Add(500*time.Second))
	}
}

func BenchmarkSnapshotSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	st := populated(rng, 100, 1000)
	sn := st.SpatialSnapshot()
	r := geo.RectAround(geo.Point{Lat: 39, Lon: 10}, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sn.Search(r, t0(), t0().Add(time.Hour))
	}
}

func BenchmarkLiveUpdate(b *testing.B) {
	l := NewLive(0.25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Update(sample(uint32(201000000+i%2000), i, 40+float64(i%100)*0.01, 5))
	}
}

// TestLoadMergesIntoNonEmpty pins Load's append-merge contract: loading
// into a non-empty store inserts alongside existing points in per-vessel
// time order, never replacing, and a double Load duplicates every point.
func TestLoadMergesIntoNonEmpty(t *testing.T) {
	src := New()
	src.Append(sample(1, 10, 40, 5))
	src.Append(sample(1, 30, 40.1, 5))
	src.Append(sample(2, 20, 41, 6))
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	dst := New()
	dst.Append(sample(1, 20, 39, 4)) // interleaves between the loaded 10s and 30s points
	dst.Append(sample(3, 5, 42, 7))  // vessel absent from the archive
	n, err := dst.Load(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Load returned %d points, want 3", n)
	}
	if dst.Len() != 5 || dst.VesselCount() != 3 {
		t.Fatalf("after merge: Len=%d VesselCount=%d, want 5 and 3", dst.Len(), dst.VesselCount())
	}
	tr := dst.Trajectory(1)
	if len(tr.Points) != 3 {
		t.Fatalf("vessel 1 has %d points, want 3 (merged)", len(tr.Points))
	}
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].At.Before(tr.Points[i-1].At) {
			t.Fatalf("vessel 1 points out of time order after merge: %v", tr.Points)
		}
	}
	if tr.Points[1].Pos.Lat != 39 {
		t.Fatalf("pre-existing point not preserved in order: %v", tr.Points)
	}

	// Loading the same archive again duplicates every archived point.
	if _, err := dst.Load(bytes.NewReader(encoded)); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 8 {
		t.Fatalf("after double load: Len=%d, want 8 (duplicates appended)", dst.Len())
	}
	if got := len(dst.Trajectory(1).Points); got != 5 {
		t.Fatalf("vessel 1 has %d points after double load, want 5", got)
	}
}

// sinkRecorder is a test Sink capturing forwarded records.
type sinkRecorder struct {
	mu   sync.Mutex
	recs []model.VesselState
	err  error
}

func (r *sinkRecorder) Append(recs ...model.VesselState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, recs...)
	return r.err
}

func TestStoreAttachForwards(t *testing.T) {
	st := New()
	st.Append(sample(1, 0, 40, 5)) // before Attach: not forwarded
	rec := &sinkRecorder{}
	st.Attach(rec)
	st.Append(sample(1, 10, 40.1, 5))
	st.AppendAll([]model.VesselState{sample(2, 20, 41, 6), sample(2, 30, 41.1, 6)})
	if len(rec.recs) != 3 {
		t.Fatalf("sink saw %d records, want 3", len(rec.recs))
	}
	if st.SinkErr() != nil {
		t.Fatalf("unexpected sink error: %v", st.SinkErr())
	}
	st.Attach(nil)
	st.Append(sample(1, 40, 40.2, 5))
	if len(rec.recs) != 3 {
		t.Fatalf("detached sink still saw appends: %d records", len(rec.recs))
	}
}

func TestLiveAttachForwards(t *testing.T) {
	l := NewLive(0.25)
	rec := &sinkRecorder{}
	l.Attach(rec)
	l.Update(sample(1, 0, 40, 5))
	l.Update(sample(1, 10, 40.1, 5))
	if len(rec.recs) != 2 {
		t.Fatalf("sink saw %d updates, want 2", len(rec.recs))
	}
	if l.SinkErr() != nil {
		t.Fatalf("unexpected sink error: %v", l.SinkErr())
	}
}
