package tstore

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
)

// bruteNearest is the reference implementation of NearestVessels: scan
// everything, keep in-window samples, order by distance, take the nearest
// sample of up to k distinct vessels.
func bruteNearest(states []model.VesselState, p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	cands := append([]model.VesselState(nil), states...)
	sort.SliceStable(cands, func(i, j int) bool {
		return geo.Distance(p, cands[i].Pos) < geo.Distance(p, cands[j].Pos)
	})
	seen := map[uint32]bool{}
	var out []model.VesselState
	for _, s := range cands {
		dt := s.At.Sub(at)
		if dt < 0 {
			dt = -dt
		}
		if dt > tol || seen[s.MMSI] {
			continue
		}
		seen[s.MMSI] = true
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out
}

// TestNearestVesselsMatchesBruteForce pins the traversal-filtered kNN
// (the fetch-then-filter replacement) against the brute-force reference
// across random windows, ks and reference points.
func TestNearestVesselsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := New()
	var all []model.VesselState
	for v := 0; v < 40; v++ {
		mmsi := uint32(201000000 + v)
		lat, lon := 35+rng.Float64()*8, rng.Float64()*20
		for i := 0; i < 50; i++ {
			s := sample(mmsi, i*60, lat+float64(i)*0.002, lon+float64(i)*0.001)
			st.Append(s)
			all = append(all, s)
		}
	}
	sn := st.SpatialSnapshot()
	for trial := 0; trial < 50; trial++ {
		p := geo.Point{Lat: 35 + rng.Float64()*8, Lon: rng.Float64() * 20}
		at := t0().Add(time.Duration(rng.Intn(3000)) * time.Second)
		tol := time.Duration(1+rng.Intn(20)) * time.Minute
		k := 1 + rng.Intn(12)
		got := sn.NearestVessels(p, at, tol, k)
		want := bruteNearest(all, p, at, tol, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d tol=%v): got %d vessels, want %d", trial, k, tol, len(got), len(want))
		}
		for i := range got {
			// Distance ties can order differently; compare distances and
			// membership rather than exact identity.
			if dg, dw := geo.Distance(p, got[i].Pos), geo.Distance(p, want[i].Pos); dg != dw {
				t.Fatalf("trial %d: result %d at distance %f, want %f", trial, i, dg, dw)
			}
			dt := got[i].At.Sub(at)
			if dt < 0 {
				dt = -dt
			}
			if dt > tol {
				t.Fatalf("trial %d: result %d outside the time window", trial, i)
			}
		}
		seen := map[uint32]bool{}
		for _, s := range got {
			if seen[s.MMSI] {
				t.Fatalf("trial %d: vessel %d appears twice", trial, s.MMSI)
			}
			seen[s.MMSI] = true
		}
	}
	// Time-agnostic (max tolerance) still behaves.
	got := sn.NearestVessels(geo.Point{Lat: 39, Lon: 10}, time.Time{}, 1<<63-1, 5)
	if len(got) != 5 {
		t.Fatalf("time-agnostic nearest returned %d vessels, want 5", len(got))
	}
}

// BenchmarkNearestVesselsTimeWindow pins the satellite target: a
// selective time window over a sizeable archive must answer in the
// microsecond range (the old fetch-then-filter loop sat at ms because it
// repeatedly re-fetched 4× more candidates and re-filtered from scratch).
func BenchmarkNearestVesselsTimeWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	st := populated(rng, 200, 600) // 120k points over ~100 minutes
	sn := st.SpatialSnapshot()
	p := geo.Point{Lat: 39, Lon: 10}
	at := t0().Add(50 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.NearestVessels(p, at, 15*time.Minute, 10)
	}
}

// BenchmarkNearestVesselsTimeAgnostic is the easy case (every sample
// admissible) for comparison.
func BenchmarkNearestVesselsTimeAgnostic(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	st := populated(rng, 200, 600)
	sn := st.SpatialSnapshot()
	p := geo.Point{Lat: 39, Lon: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.NearestVessels(p, time.Time{}, 1<<63-1, 10)
	}
}
