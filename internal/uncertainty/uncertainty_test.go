package uncertainty

import (
	"math"
	"testing"
	"testing/quick"
)

var frame = Frame{"cargo", "fishing", "smuggler"}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistBasics(t *testing.T) {
	d := UniformDist(frame)
	if !almostEq(d.P[0], 1.0/3) {
		t.Error("uniform wrong")
	}
	d2 := NewDist(frame, map[Hypothesis]float64{"cargo": 3, "fishing": 1})
	if !almostEq(d2.P[0], 0.75) || !almostEq(d2.P[1], 0.25) || d2.P[2] != 0 {
		t.Errorf("normalisation wrong: %v", d2.P)
	}
	h, p := d2.MAP()
	if h != "cargo" || !almostEq(p, 0.75) {
		t.Errorf("MAP wrong: %s %f", h, p)
	}
}

func TestBayesUpdate(t *testing.T) {
	prior := UniformDist(frame)
	post, ok := prior.BayesUpdate([]float64{0.9, 0.05, 0.05})
	if !ok {
		t.Fatal("update failed")
	}
	if h, _ := post.MAP(); h != "cargo" {
		t.Errorf("MAP after cargo-likelihood: %s", h)
	}
	// Contradiction: zero likelihood everywhere.
	_, ok = prior.BayesUpdate([]float64{0, 0, 0})
	if ok {
		t.Error("total contradiction should report !ok")
	}
	// Entropy decreases with informative evidence.
	if post.Entropy() >= prior.Entropy() {
		t.Error("informative update must reduce entropy")
	}
}

func TestMassNormalisation(t *testing.T) {
	m := NewMass(frame, map[Set]float64{
		SetOf(frame, "cargo"): 0.6,
	})
	full := Set(1)<<uint(len(frame)) - 1
	if !almostEq(m.M[full], 0.4) {
		t.Errorf("missing mass should go to ignorance: %v", m.M)
	}
	var sum float64
	for _, v := range m.M {
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Errorf("mass must sum to 1: %f", sum)
	}
}

func TestBeliefPlausibilitySandwich(t *testing.T) {
	m := NewMass(frame, map[Set]float64{
		SetOf(frame, "cargo"):            0.5,
		SetOf(frame, "cargo", "fishing"): 0.3,
		// 0.2 to ignorance
	})
	a := SetOf(frame, "cargo")
	bel, pl := m.Belief(a), m.Plausibility(a)
	if !(bel <= pl) {
		t.Fatalf("Bel (%f) must not exceed Pl (%f)", bel, pl)
	}
	if !almostEq(bel, 0.5) {
		t.Errorf("Bel(cargo) = %f, want 0.5", bel)
	}
	if !almostEq(pl, 1.0) {
		t.Errorf("Pl(cargo) = %f, want 1.0 (all masses intersect)", pl)
	}
}

func TestDempsterAgreeingSources(t *testing.T) {
	m1 := NewMass(frame, map[Set]float64{SetOf(frame, "smuggler"): 0.7})
	m2 := NewMass(frame, map[Set]float64{SetOf(frame, "smuggler"): 0.6})
	c, err := m1.CombineDempster(m2)
	if err != nil {
		t.Fatal(err)
	}
	// Agreement must reinforce belief.
	if c.Belief(SetOf(frame, "smuggler")) <= 0.7 {
		t.Errorf("combined belief %f should exceed individual 0.7",
			c.Belief(SetOf(frame, "smuggler")))
	}
}

func TestZadehParadox(t *testing.T) {
	// Zadeh's example: two experts agree only on a hypothesis both think
	// near-impossible. Dempster's rule concludes it with certainty; Yager
	// keeps the conflict as ignorance. Frame: {A, B, C}.
	f := Frame{"A", "B", "C"}
	m1 := NewMass(f, map[Set]float64{
		SetOf(f, "A"): 0.99,
		SetOf(f, "B"): 0.01,
	})
	m2 := NewMass(f, map[Set]float64{
		SetOf(f, "C"): 0.99,
		SetOf(f, "B"): 0.01,
	})
	k := m1.Conflict(m2)
	if k < 0.99 {
		t.Fatalf("conflict should be ≈0.9999, got %f", k)
	}
	d, err := m1.CombineDempster(m2)
	if err != nil {
		t.Fatal(err)
	}
	// The paradox: B gets certainty under Dempster.
	if !almostEq(d.Belief(SetOf(f, "B")), 1) {
		t.Errorf("Dempster should assign B belief 1 (the paradox), got %f",
			d.Belief(SetOf(f, "B")))
	}
	// Yager: almost everything becomes ignorance instead.
	y := m1.CombineYager(m2)
	full := Set(1)<<uint(len(f)) - 1
	if y.M[full] < 0.99 {
		t.Errorf("Yager should move conflict to ignorance, full-frame mass %f", y.M[full])
	}
	if y.Belief(SetOf(f, "B")) > 0.01 {
		t.Errorf("Yager belief in B should stay tiny: %f", y.Belief(SetOf(f, "B")))
	}
}

func TestTotalConflictFailsDempster(t *testing.T) {
	f := Frame{"A", "B"}
	m1 := NewMass(f, map[Set]float64{SetOf(f, "A"): 1})
	m2 := NewMass(f, map[Set]float64{SetOf(f, "B"): 1})
	if _, err := m1.CombineDempster(m2); err == nil {
		t.Error("total conflict must make Dempster fail")
	}
}

func TestDiscounting(t *testing.T) {
	m := NewMass(frame, map[Set]float64{SetOf(frame, "smuggler"): 0.9})
	d := m.Discount(0.5)
	full := Set(1)<<uint(len(frame)) - 1
	if !almostEq(d.M[SetOf(frame, "smuggler")], 0.45) {
		t.Errorf("discounted mass wrong: %v", d.M)
	}
	if d.M[full] < 0.5 {
		t.Errorf("ignorance should absorb discount: %v", d.M)
	}
	// r=0 reduces everything to ignorance.
	z := m.Discount(0)
	if !almostEq(z.M[full], 1) {
		t.Errorf("zero reliability should give vacuous mass: %v", z.M)
	}
	// Discounting keeps the mass normalised.
	var sum float64
	for _, v := range d.M {
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Errorf("discounted mass sums to %f", sum)
	}
}

func TestDiscountedDempsterSurvivesZadeh(t *testing.T) {
	// The §4 prescription: with source-quality knowledge, discounting
	// before combining defuses the paradox.
	f := Frame{"A", "B", "C"}
	m1 := NewMass(f, map[Set]float64{SetOf(f, "A"): 0.99, SetOf(f, "B"): 0.01})
	m2 := NewMass(f, map[Set]float64{SetOf(f, "C"): 0.99, SetOf(f, "B"): 0.01})
	d1 := m1.Discount(0.7)
	d2 := m2.Discount(0.7)
	c, err := d1.CombineDempster(d2)
	if err != nil {
		t.Fatal(err)
	}
	// B must no longer be certain.
	if c.Belief(SetOf(f, "B")) > 0.5 {
		t.Errorf("discounting should defuse the paradox, Bel(B)=%f", c.Belief(SetOf(f, "B")))
	}
}

func TestPignistic(t *testing.T) {
	m := NewMass(frame, map[Set]float64{
		SetOf(frame, "cargo"):            0.4,
		SetOf(frame, "cargo", "fishing"): 0.4,
		// 0.2 ignorance over all 3
	})
	d := m.Pignistic()
	var sum float64
	for _, p := range d.P {
		sum += p
	}
	if !almostEq(sum, 1) {
		t.Fatalf("pignistic must be a distribution, sums to %f", sum)
	}
	// cargo: 0.4 + 0.2 + 0.0667 ≈ 0.667
	if math.Abs(d.P[0]-(0.4+0.2+0.2/3)) > 1e-9 {
		t.Errorf("BetP(cargo) = %f", d.P[0])
	}
	if h, _ := d.MAP(); h != "cargo" {
		t.Errorf("pignistic MAP = %s", h)
	}
}

func TestPossibilityNecessityDuality(t *testing.T) {
	p := NewPossibility(frame, map[Hypothesis]float64{
		"cargo": 1, "fishing": 0.6, "smuggler": 0.2,
	})
	a := SetOf(frame, "cargo")
	full := Set(1)<<uint(len(frame)) - 1
	// N(A) = 1 - Π(Ā) by construction; check the sandwich N ≤ Π.
	if p.NecessityOf(a) > p.PossibilityOf(a) {
		t.Error("necessity cannot exceed possibility")
	}
	if !almostEq(p.PossibilityOf(full), 1) {
		t.Error("possibility of the frame must be 1")
	}
	if !almostEq(p.NecessityOf(full), 1) {
		t.Error("necessity of the frame must be 1")
	}
	if !almostEq(p.PossibilityOf(0), 0) {
		t.Error("possibility of the empty set must be 0")
	}
}

func TestPossibilisticFusion(t *testing.T) {
	p1 := NewPossibility(frame, map[Hypothesis]float64{"cargo": 1, "fishing": 0.8, "smuggler": 0.1})
	p2 := NewPossibility(frame, map[Hypothesis]float64{"cargo": 0.9, "fishing": 1, "smuggler": 0.1})
	min, h, err := p1.CombineMin(p2)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.8 {
		t.Errorf("agreement degree %f too low for compatible sources", h)
	}
	best, _ := min.Best()
	if best != "cargo" && best != "fishing" {
		t.Errorf("conjunctive best = %s", best)
	}
	// Disjunctive fusion never decreases possibility.
	max := p1.CombineMax(p2)
	for i := range max.Pi {
		if max.Pi[i] < p1.Pi[i] || max.Pi[i] < p2.Pi[i] {
			t.Fatal("max fusion must dominate both inputs")
		}
	}
	// Total conflict.
	q1 := NewPossibility(frame, map[Hypothesis]float64{"cargo": 1})
	q2 := NewPossibility(frame, map[Hypothesis]float64{"smuggler": 1})
	if _, _, err := q1.CombineMin(q2); err == nil {
		t.Error("total possibilistic conflict must fail")
	}
}

func TestBetaSecondOrder(t *testing.T) {
	b := NewBeta()
	if !almostEq(b.Mean(), 0.5) {
		t.Error("prior mean should be 0.5")
	}
	// 90 successes, 10 failures: mean ≈ 0.89, tight.
	b2 := b.Observe(90, 10)
	if math.Abs(b2.Mean()-91.0/102) > 1e-9 {
		t.Errorf("posterior mean %f", b2.Mean())
	}
	if b2.Variance() >= b.Variance() {
		t.Error("evidence must shrink variance")
	}
	lb := b2.LowerBound(2)
	if lb >= b2.Mean() || lb <= 0 {
		t.Errorf("lower bound %f should sit below the mean", lb)
	}
	// Few observations: wide bound.
	b3 := NewBeta().Observe(2, 0)
	if b3.LowerBound(2) >= b2.LowerBound(2) {
		t.Error("scarce evidence should give a more cautious bound")
	}
}

func TestCombineDempsterPropertyMassSumsToOne(t *testing.T) {
	f := Frame{"A", "B", "C"}
	check := func(a1, a2, b1, b2 float64) bool {
		m1 := NewMass(f, map[Set]float64{
			SetOf(f, "A"): math.Abs(a1),
			SetOf(f, "B"): math.Abs(a2),
		})
		m2 := NewMass(f, map[Set]float64{
			SetOf(f, "B"): math.Abs(b1),
			SetOf(f, "C"): math.Abs(b2),
		})
		c, err := m1.CombineDempster(m2)
		if err != nil {
			return true // total conflict is a legal outcome
		}
		var sum float64
		for _, v := range c.M {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a1, a2, b1, b2 float64) bool {
		// Bound the values to avoid NaN extremes from quick's generator.
		n := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.3
			}
			return math.Mod(math.Abs(x), 1)
		}
		return check(n(a1), n(a2), n(b1), n(b2))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestSetOps(t *testing.T) {
	s := SetOf(frame, "cargo", "smuggler")
	if s.Card() != 2 {
		t.Errorf("card %d", s.Card())
	}
	if !s.Contains(0) || s.Contains(1) || !s.Contains(2) {
		t.Error("contains wrong")
	}
	if s.Format(frame) != "{cargo,smuggler}" {
		t.Errorf("format: %s", s.Format(frame))
	}
	if Set(0).Format(frame) != "∅" {
		t.Error("empty set format")
	}
	if got := SetOf(frame, "nonexistent"); got != 0 {
		t.Error("unknown hypothesis should map to empty set")
	}
}

func BenchmarkCombineDempster(b *testing.B) {
	m1 := NewMass(frame, map[Set]float64{
		SetOf(frame, "cargo"):            0.5,
		SetOf(frame, "cargo", "fishing"): 0.3,
	})
	m2 := NewMass(frame, map[Set]float64{
		SetOf(frame, "fishing"):  0.4,
		SetOf(frame, "smuggler"): 0.2,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m1.CombineDempster(m2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPignistic(b *testing.B) {
	m := NewMass(frame, map[Set]float64{
		SetOf(frame, "cargo"):            0.4,
		SetOf(frame, "cargo", "fishing"): 0.4,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Pignistic()
	}
}
