// Package uncertainty implements the three uncertainty calculi the paper's
// §4 asks a maritime decision-support system to support side by side —
// Bayesian probability, Dempster–Shafer evidence theory and possibility
// theory — plus reliability discounting and a second-order (Beta) model of
// source quality. Experiment E10 compares their decisions under
// increasing inter-source conflict, including the classic Zadeh paradox
// configuration where naive Dempster combination goes pathological.
package uncertainty

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hypothesis is an element of the frame of discernment (e.g. a vessel
// class: "cargo", "fishing", "smuggler").
type Hypothesis string

// Frame is an ordered set of mutually exclusive hypotheses.
type Frame []Hypothesis

// Index returns the position of h in the frame, or -1.
func (f Frame) Index(h Hypothesis) int {
	for i, x := range f {
		if x == h {
			return i
		}
	}
	return -1
}

// --- Bayesian probability -----------------------------------------------------

// Dist is a discrete probability distribution over a frame.
type Dist struct {
	Frame Frame
	P     []float64
}

// UniformDist returns the maximum-entropy distribution.
func UniformDist(f Frame) Dist {
	p := make([]float64, len(f))
	for i := range p {
		p[i] = 1 / float64(len(f))
	}
	return Dist{Frame: f, P: p}
}

// NewDist builds a distribution from hypothesis→probability pairs,
// normalising; missing hypotheses get zero.
func NewDist(f Frame, probs map[Hypothesis]float64) Dist {
	d := Dist{Frame: f, P: make([]float64, len(f))}
	var sum float64
	for i, h := range f {
		d.P[i] = probs[h]
		sum += d.P[i]
	}
	if sum > 0 {
		for i := range d.P {
			d.P[i] /= sum
		}
	}
	return d
}

// BayesUpdate multiplies the prior by a likelihood vector (one entry per
// hypothesis) and renormalises. A zero normaliser (total contradiction)
// returns the uniform distribution and false.
func (d Dist) BayesUpdate(likelihood []float64) (Dist, bool) {
	out := Dist{Frame: d.Frame, P: make([]float64, len(d.P))}
	var z float64
	for i := range d.P {
		out.P[i] = d.P[i] * likelihood[i]
		z += out.P[i]
	}
	if z <= 0 {
		return UniformDist(d.Frame), false
	}
	for i := range out.P {
		out.P[i] /= z
	}
	return out, true
}

// MAP returns the maximum a-posteriori hypothesis and its probability.
func (d Dist) MAP() (Hypothesis, float64) {
	best, bestP := -1, -1.0
	for i, p := range d.P {
		if p > bestP {
			best, bestP = i, p
		}
	}
	if best < 0 {
		return "", 0
	}
	return d.Frame[best], bestP
}

// Entropy returns the Shannon entropy in bits.
func (d Dist) Entropy() float64 {
	var h float64
	for _, p := range d.P {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// --- Dempster–Shafer evidence theory -------------------------------------------

// Set is a subset of the frame encoded as a bitmask (bit i = hypothesis i
// of the frame). The empty set is 0; the full frame is (1<<n)-1.
type Set uint64

// SetOf builds a Set from hypotheses.
func SetOf(f Frame, hs ...Hypothesis) Set {
	var s Set
	for _, h := range hs {
		if i := f.Index(h); i >= 0 {
			s |= 1 << uint(i)
		}
	}
	return s
}

// Contains reports whether the set contains hypothesis index i.
func (s Set) Contains(i int) bool { return s&(1<<uint(i)) != 0 }

// Card returns the cardinality of the set.
func (s Set) Card() int {
	n := 0
	for x := s; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Format renders the set against a frame for debugging.
func (s Set) Format(f Frame) string {
	var parts []string
	for i, h := range f {
		if s.Contains(i) {
			parts = append(parts, string(h))
		}
	}
	if len(parts) == 0 {
		return "∅"
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Mass is a Dempster–Shafer basic belief assignment: masses on subsets of
// the frame summing to 1 (the empty set carries no mass).
type Mass struct {
	Frame Frame
	M     map[Set]float64
}

// NewMass builds a normalised mass function from subset→mass pairs. Any
// missing mass is assigned to the full frame (ignorance).
func NewMass(f Frame, m map[Set]float64) Mass {
	out := Mass{Frame: f, M: make(map[Set]float64, len(m)+1)}
	var sum float64
	for s, v := range m {
		if s == 0 || v <= 0 {
			continue
		}
		out.M[s] += v
		sum += v
	}
	full := Set(1)<<uint(len(f)) - 1
	switch {
	case sum < 1:
		out.M[full] += 1 - sum
	case sum > 1:
		for s := range out.M {
			out.M[s] /= sum
		}
	}
	return out
}

// Belief returns Bel(A): the total mass of subsets included in A.
func (m Mass) Belief(a Set) float64 {
	var b float64
	for s, v := range m.M {
		if s&^a == 0 { // s ⊆ a
			b += v
		}
	}
	return b
}

// Plausibility returns Pl(A): the total mass of subsets intersecting A.
func (m Mass) Plausibility(a Set) float64 {
	var p float64
	for s, v := range m.M {
		if s&a != 0 {
			p += v
		}
	}
	return p
}

// Conflict returns the mass assigned to the empty set when combining m and
// o by unnormalised conjunction: the K of Dempster's rule.
func (m Mass) Conflict(o Mass) float64 {
	var k float64
	for s1, v1 := range m.M {
		for s2, v2 := range o.M {
			if s1&s2 == 0 {
				k += v1 * v2
			}
		}
	}
	return k
}

// CombineDempster applies Dempster's rule of combination (conjunctive,
// conflict renormalised away). It fails when the sources fully contradict
// (K = 1).
func (m Mass) CombineDempster(o Mass) (Mass, error) {
	out := Mass{Frame: m.Frame, M: make(map[Set]float64)}
	var k float64
	for s1, v1 := range m.M {
		for s2, v2 := range o.M {
			inter := s1 & s2
			if inter == 0 {
				k += v1 * v2
				continue
			}
			out.M[inter] += v1 * v2
		}
	}
	if k >= 1-1e-12 {
		return Mass{}, fmt.Errorf("uncertainty: total conflict (K=%.6f), Dempster undefined", k)
	}
	norm := 1 - k
	for s := range out.M {
		out.M[s] /= norm
	}
	return out, nil
}

// CombineYager applies Yager's rule: conflict mass is transferred to the
// full frame (ignorance) instead of being renormalised away, which keeps
// high-conflict combinations honest.
func (m Mass) CombineYager(o Mass) Mass {
	out := Mass{Frame: m.Frame, M: make(map[Set]float64)}
	var k float64
	for s1, v1 := range m.M {
		for s2, v2 := range o.M {
			inter := s1 & s2
			if inter == 0 {
				k += v1 * v2
				continue
			}
			out.M[inter] += v1 * v2
		}
	}
	if k > 0 {
		full := Set(1)<<uint(len(m.Frame)) - 1
		out.M[full] += k
	}
	return out
}

// Discount applies Shafer's reliability discounting: masses are scaled by
// the source reliability r∈[0,1] and the removed mass moves to the full
// frame. r=1 trusts the source fully; r=0 reduces it to ignorance.
func (m Mass) Discount(r float64) Mass {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	out := Mass{Frame: m.Frame, M: make(map[Set]float64, len(m.M)+1)}
	full := Set(1)<<uint(len(m.Frame)) - 1
	for s, v := range m.M {
		if s == full {
			out.M[s] += v*r + (1 - r)
		} else {
			out.M[s] += v * r
		}
	}
	if _, ok := out.M[full]; !ok {
		out.M[full] = 1 - r
	}
	return out
}

// Pignistic returns the pignistic probability transform BetP: each mass is
// spread uniformly over the singletons of its subset — the standard bridge
// from belief functions to a decision-ready distribution.
func (m Mass) Pignistic() Dist {
	d := Dist{Frame: m.Frame, P: make([]float64, len(m.Frame))}
	for s, v := range m.M {
		c := s.Card()
		if c == 0 {
			continue
		}
		share := v / float64(c)
		for i := range m.Frame {
			if s.Contains(i) {
				d.P[i] += share
			}
		}
	}
	return d
}

// --- possibility theory ----------------------------------------------------------

// Possibility is a possibility distribution: π(h) ∈ [0,1] with max π = 1
// for a normalised distribution.
type Possibility struct {
	Frame Frame
	Pi    []float64
}

// NewPossibility builds a normalised possibility distribution (scaling so
// the max is 1 when positive).
func NewPossibility(f Frame, pi map[Hypothesis]float64) Possibility {
	p := Possibility{Frame: f, Pi: make([]float64, len(f))}
	maxv := 0.0
	for i, h := range f {
		p.Pi[i] = pi[h]
		if p.Pi[i] > maxv {
			maxv = p.Pi[i]
		}
	}
	if maxv > 0 {
		for i := range p.Pi {
			p.Pi[i] /= maxv
		}
	}
	return p
}

// PossibilityOf returns Π(A) = max over h∈A of π(h).
func (p Possibility) PossibilityOf(a Set) float64 {
	var m float64
	for i := range p.Frame {
		if a.Contains(i) && p.Pi[i] > m {
			m = p.Pi[i]
		}
	}
	return m
}

// NecessityOf returns N(A) = 1 − Π(Ā).
func (p Possibility) NecessityOf(a Set) float64 {
	full := Set(1)<<uint(len(p.Frame)) - 1
	return 1 - p.PossibilityOf(full&^a)
}

// CombineMin is the conjunctive possibilistic fusion (idempotent): the
// pointwise minimum, renormalised. The renormalisation degree h (max of
// the min) measures conflict; h=0 means total conflict and the combination
// fails.
func (p Possibility) CombineMin(o Possibility) (Possibility, float64, error) {
	out := Possibility{Frame: p.Frame, Pi: make([]float64, len(p.Pi))}
	h := 0.0
	for i := range p.Pi {
		out.Pi[i] = math.Min(p.Pi[i], o.Pi[i])
		if out.Pi[i] > h {
			h = out.Pi[i]
		}
	}
	if h == 0 {
		return Possibility{}, 0, fmt.Errorf("uncertainty: possibilistic total conflict")
	}
	for i := range out.Pi {
		out.Pi[i] /= h
	}
	return out, h, nil
}

// CombineMax is the disjunctive possibilistic fusion: pointwise maximum —
// the cautious rule when one of the sources might be wrong.
func (p Possibility) CombineMax(o Possibility) Possibility {
	out := Possibility{Frame: p.Frame, Pi: make([]float64, len(p.Pi))}
	for i := range p.Pi {
		out.Pi[i] = math.Max(p.Pi[i], o.Pi[i])
	}
	return out
}

// Best returns the most possible hypothesis.
func (p Possibility) Best() (Hypothesis, float64) {
	best, bestV := -1, -1.0
	for i, v := range p.Pi {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best < 0 {
		return "", 0
	}
	return p.Frame[best], bestV
}

// --- second-order uncertainty ------------------------------------------------------

// Beta is a Beta(α, β) distribution: the conjugate second-order model of
// a source's reliability (the paper's "second-order uncertainty seems also
// unavoidable"). Observe successes/failures; Mean is the point reliability
// and Variance quantifies how well we know it.
type Beta struct {
	Alpha, Beta float64
}

// NewBeta returns the uninformative prior Beta(1,1).
func NewBeta() Beta { return Beta{Alpha: 1, Beta: 1} }

// Observe updates the distribution with successes s and failures f.
func (b Beta) Observe(s, f float64) Beta {
	return Beta{Alpha: b.Alpha + s, Beta: b.Beta + f}
}

// Mean returns E[p].
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns Var[p].
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// LowerBound returns a conservative reliability estimate: mean minus k
// standard deviations, clamped to [0,1]. Decision layers discount by this
// rather than the mean when acting cautiously.
func (b Beta) LowerBound(k float64) float64 {
	v := b.Mean() - k*math.Sqrt(b.Variance())
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// --- helpers -------------------------------------------------------------------------

// Subsets lists the non-empty subsets with positive mass, sorted for
// deterministic reports.
func (m Mass) Subsets() []Set {
	out := make([]Set, 0, len(m.M))
	for s := range m.M {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
