// Package zones models the quasi-static geographic context maritime
// surveillance correlates vessel movement against: ports, anchorages,
// protected areas, fishing zones, exclusive-economic-zone bands, shipping
// lanes and traffic-separation schemes. A ZoneSet answers point-in-zone and
// proximity queries, accelerated by a coarse grid so that per-position
// enrichment stays O(zones overlapping the cell) instead of O(all zones).
package zones

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// Kind classifies a zone.
type Kind int

// Zone kinds.
const (
	KindPort Kind = iota
	KindAnchorage
	KindProtectedArea
	KindFishingArea
	KindEEZ
	KindShippingLane
	KindSeparationScheme
	KindRestrictedArea
)

var kindNames = map[Kind]string{
	KindPort:             "port",
	KindAnchorage:        "anchorage",
	KindProtectedArea:    "protected-area",
	KindFishingArea:      "fishing-area",
	KindEEZ:              "eez",
	KindShippingLane:     "shipping-lane",
	KindSeparationScheme: "separation-scheme",
	KindRestrictedArea:   "restricted-area",
}

// String returns the kind's canonical name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Zone is a named polygonal area with a kind and free-form attributes.
type Zone struct {
	ID    string
	Name  string
	Kind  Kind
	Area  *geo.Polygon
	Attrs map[string]string // e.g. "country" -> "FR", "speed_limit_kn" -> "12"
}

// Contains reports whether p is inside the zone.
func (z *Zone) Contains(p geo.Point) bool { return z.Area.Contains(p) }

// ZoneSet is an immutable, queryable collection of zones. Build it once
// with NewZoneSet; queries are then safe for concurrent use.
type ZoneSet struct {
	zones []*Zone
	byID  map[string]*Zone
	grid  geo.Grid
	cells map[geo.CellID][]int // cell -> indices of zones whose bbox intersects
}

// NewZoneSet indexes the given zones. The grid resolution is chosen from
// the median zone size; callers can pass zones of wildly different extents.
func NewZoneSet(zs []*Zone) *ZoneSet {
	s := &ZoneSet{
		zones: zs,
		byID:  make(map[string]*Zone, len(zs)),
		grid:  geo.NewGrid(1.0),
		cells: make(map[geo.CellID][]int),
	}
	for i, z := range zs {
		s.byID[z.ID] = z
		for _, c := range s.grid.CellsInRect(z.Area.Bounds(), nil) {
			s.cells[c] = append(s.cells[c], i)
		}
	}
	return s
}

// Len returns the number of zones in the set.
func (s *ZoneSet) Len() int { return len(s.zones) }

// ByID returns the zone with the given ID, or nil.
func (s *ZoneSet) ByID(id string) *Zone { return s.byID[id] }

// All returns the zones in the set (shared slice; do not modify).
func (s *ZoneSet) All() []*Zone { return s.zones }

// At returns every zone containing p, sorted by ID for determinism.
func (s *ZoneSet) At(p geo.Point) []*Zone {
	var out []*Zone
	for _, i := range s.cells[s.grid.Cell(p)] {
		z := s.zones[i]
		if z.Contains(p) {
			out = append(out, z)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// AtKind returns every zone of the given kind containing p.
func (s *ZoneSet) AtKind(p geo.Point, k Kind) []*Zone {
	var out []*Zone
	for _, z := range s.At(p) {
		if z.Kind == k {
			out = append(out, z)
		}
	}
	return out
}

// InAny reports whether p is inside at least one zone of kind k.
func (s *ZoneSet) InAny(p geo.Point, k Kind) bool {
	for _, i := range s.cells[s.grid.Cell(p)] {
		z := s.zones[i]
		if z.Kind == k && z.Contains(p) {
			return true
		}
	}
	return false
}

// Nearest returns the zone of kind k whose boundary is closest to p within
// maxDist metres, together with the distance; ok is false if none qualifies.
// Containment counts as distance zero.
func (s *ZoneSet) Nearest(p geo.Point, k Kind, maxDist float64) (z *Zone, dist float64, ok bool) {
	best := maxDist
	searchRect := geo.RectAround(p, maxDist)
	seen := map[int]bool{}
	for _, c := range s.grid.CellsInRect(searchRect, nil) {
		for _, i := range s.cells[c] {
			if seen[i] {
				continue
			}
			seen[i] = true
			cand := s.zones[i]
			if cand.Kind != k {
				continue
			}
			var d float64
			if cand.Contains(p) {
				d = 0
			} else {
				d = cand.Area.DistanceToBoundary(p)
			}
			if d <= best {
				//lint:ignore floateq deterministic tie-break on equal distances; exact equality is the intent
				if z == nil || d < dist || (d == dist && cand.ID < z.ID) {
					z, dist, ok = cand, d, true
					best = d
				}
			}
		}
	}
	return z, dist, ok
}

// PortZone is a convenience constructor: a circular port area of the given
// radius in metres.
func PortZone(id, name string, center geo.Point, radius float64) *Zone {
	return &Zone{
		ID:   id,
		Name: name,
		Kind: KindPort,
		Area: geo.CirclePolygon(center, radius, 16),
	}
}

// RectZone is a convenience constructor for rectangular areas.
func RectZone(id, name string, k Kind, r geo.Rect) *Zone {
	return &Zone{ID: id, Name: name, Kind: k, Area: geo.RectPolygon(r)}
}

// LaneZone builds a shipping-lane corridor of the given half-width in
// metres around a path.
func LaneZone(id, name string, path []geo.Point, halfWidth float64) *Zone {
	if len(path) < 2 {
		return &Zone{ID: id, Name: name, Kind: KindShippingLane, Area: geo.NewPolygon(nil)}
	}
	// Offset each path vertex perpendicular to the local course, left and
	// right, then stitch the two sides into a ring.
	left := make([]geo.Point, len(path))
	right := make([]geo.Point, len(path))
	for i, p := range path {
		var brg float64
		switch {
		case i == 0:
			brg = geo.Bearing(path[0], path[1])
		case i == len(path)-1:
			brg = geo.Bearing(path[len(path)-2], path[len(path)-1])
		default:
			// Average the in/out bearings for a smooth joint.
			b1 := geo.Bearing(path[i-1], p)
			b2 := geo.Bearing(p, path[i+1])
			brg = meanBearing(b1, b2)
		}
		left[i] = geo.Destination(p, geo.NormalizeBearing(brg-90), halfWidth)
		right[i] = geo.Destination(p, geo.NormalizeBearing(brg+90), halfWidth)
	}
	ring := make([]geo.Point, 0, 2*len(path))
	ring = append(ring, left...)
	for i := len(right) - 1; i >= 0; i-- {
		ring = append(ring, right[i])
	}
	return &Zone{ID: id, Name: name, Kind: KindShippingLane, Area: geo.NewPolygon(ring)}
}

func meanBearing(b1, b2 float64) float64 {
	diff := geo.NormalizeBearing(b2 - b1)
	if diff > 180 {
		diff -= 360
	}
	return geo.NormalizeBearing(b1 + diff/2)
}
