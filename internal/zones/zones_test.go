package zones

import (
	"testing"

	"repro/internal/geo"
)

func testSet() *ZoneSet {
	return NewZoneSet([]*Zone{
		PortZone("port-a", "Port Alpha", geo.Point{Lat: 43.0, Lon: 5.0}, 5000),
		PortZone("port-b", "Port Bravo", geo.Point{Lat: 44.0, Lon: 9.0}, 8000),
		RectZone("mpa-1", "Reserve One", KindProtectedArea,
			geo.Rect{MinLat: 42.0, MinLon: 6.0, MaxLat: 42.5, MaxLon: 6.8}),
		RectZone("eez-1", "EEZ Band", KindEEZ,
			geo.Rect{MinLat: 41.0, MinLon: 3.0, MaxLat: 45.0, MaxLon: 10.0}),
		LaneZone("lane-1", "Coastal Lane",
			[]geo.Point{{Lat: 42.8, Lon: 4.5}, {Lat: 43.2, Lon: 6.5}, {Lat: 43.6, Lon: 8.5}}, 10000),
	})
}

func TestZoneSetAt(t *testing.T) {
	s := testSet()
	inPort := geo.Point{Lat: 43.0, Lon: 5.01}
	got := s.At(inPort)
	ids := map[string]bool{}
	for _, z := range got {
		ids[z.ID] = true
	}
	if !ids["port-a"] {
		t.Errorf("point in port should match port-a, got %v", ids)
	}
	if !ids["eez-1"] {
		t.Errorf("point should also be inside the EEZ band")
	}
	if ids["port-b"] || ids["mpa-1"] {
		t.Errorf("point should not match distant zones: %v", ids)
	}
}

func TestZoneSetDeterministicOrder(t *testing.T) {
	s := testSet()
	p := geo.Point{Lat: 43.0, Lon: 5.01}
	a := s.At(p)
	b := s.At(p)
	if len(a) != len(b) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("non-deterministic order")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].ID >= a[i].ID {
			t.Fatal("results not sorted by ID")
		}
	}
}

func TestInAny(t *testing.T) {
	s := testSet()
	if !s.InAny(geo.Point{Lat: 42.2, Lon: 6.4}, KindProtectedArea) {
		t.Error("point inside reserve should report true")
	}
	if s.InAny(geo.Point{Lat: 43.0, Lon: 5.0}, KindProtectedArea) {
		t.Error("port point is not in a protected area")
	}
	if !s.InAny(geo.Point{Lat: 43.0, Lon: 5.0}, KindEEZ) {
		t.Error("port point is inside the EEZ")
	}
}

func TestNearest(t *testing.T) {
	s := testSet()
	// A point between the two ports, nearer to port-a.
	p := geo.Point{Lat: 43.1, Lon: 5.5}
	z, dist, ok := s.Nearest(p, KindPort, 200000)
	if !ok {
		t.Fatal("should find a port within 200 km")
	}
	if z.ID != "port-a" {
		t.Errorf("nearest port = %s, want port-a", z.ID)
	}
	if dist <= 0 || dist > 60000 {
		t.Errorf("unexpected distance %f", dist)
	}
	// Inside the port the distance must be zero.
	_, dist, ok = s.Nearest(geo.Point{Lat: 43.0, Lon: 5.0}, KindPort, 200000)
	if !ok || dist != 0 {
		t.Errorf("inside port: dist=%f ok=%v", dist, ok)
	}
	// Tiny radius: no match.
	if _, _, ok := s.Nearest(p, KindPort, 100); ok {
		t.Error("no port within 100 m")
	}
}

func TestLaneZoneGeometry(t *testing.T) {
	path := []geo.Point{{Lat: 43.0, Lon: 4.0}, {Lat: 43.0, Lon: 6.0}}
	lane := LaneZone("l", "L", path, 5000)
	mid := geo.Point{Lat: 43.0, Lon: 5.0}
	if !lane.Contains(mid) {
		t.Error("lane must contain its centreline")
	}
	// 3 km either side: inside; 8 km: outside.
	north := geo.Destination(mid, 0, 3000)
	south := geo.Destination(mid, 180, 3000)
	if !lane.Contains(north) || !lane.Contains(south) {
		t.Error("lane must contain points within the half-width")
	}
	far := geo.Destination(mid, 0, 8000)
	if lane.Contains(far) {
		t.Error("lane must not contain points beyond the half-width")
	}
}

func TestLaneZoneDegenerate(t *testing.T) {
	lane := LaneZone("l", "L", []geo.Point{{Lat: 1, Lon: 1}}, 5000)
	if lane.Contains(geo.Point{Lat: 1, Lon: 1}) {
		t.Error("degenerate lane contains nothing")
	}
}

func TestByID(t *testing.T) {
	s := testSet()
	if s.ByID("port-a") == nil || s.ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestKindString(t *testing.T) {
	if KindPort.String() != "port" || KindEEZ.String() != "eez" {
		t.Error("kind names broken")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting broken")
	}
}

func BenchmarkZoneLookup(b *testing.B) {
	s := testSet()
	p := geo.Point{Lat: 43.0, Lon: 5.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.At(p)
	}
}

func BenchmarkInAny(b *testing.B) {
	s := testSet()
	p := geo.Point{Lat: 42.2, Lon: 6.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.InAny(p, KindProtectedArea)
	}
}
