package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// checkTable validates structural invariants every experiment table must
// satisfy: an ID, a title, consistent column counts, and non-empty cells
// in the first column.
func checkTable(t *testing.T, tbl Table) {
	t.Helper()
	if tbl.ID == "" || tbl.Title == "" {
		t.Fatalf("table missing identity: %+v", tbl)
	}
	if len(tbl.Cols) == 0 || len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", tbl.ID)
	}
	for i, r := range tbl.Rows {
		if len(r) > len(tbl.Cols) {
			t.Fatalf("%s row %d has %d cells for %d columns", tbl.ID, i, len(r), len(tbl.Cols))
		}
		if len(r) == 0 || r[0] == "" {
			t.Fatalf("%s row %d has empty label", tbl.ID, i)
		}
	}
	out := tbl.Format()
	if !strings.Contains(out, tbl.ID) || !strings.Contains(out, tbl.Cols[0]) {
		t.Fatalf("%s: Format output malformed:\n%s", tbl.ID, out)
	}
}

func TestE1Shape(t *testing.T) {
	tbl := E1(7, 80, 10*time.Minute)
	checkTable(t, tbl)
	// The coverage note should include a rendered map.
	foundMap := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "\n") {
			foundMap = true
		}
	}
	if !foundMap {
		t.Error("E1 should embed the coverage map")
	}
}

func TestE2Shape(t *testing.T) {
	tbl := E2(7)
	checkTable(t, tbl)
	// At least one configuration must reach the paper's 95% band.
	found := false
	for _, r := range tbl.Rows {
		if strings.HasSuffix(r[2], "%") {
			var v float64
			if _, err := parsePct(r[2], &v); err == nil && v >= 95 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no configuration reached 95%% compression:\n%s", tbl.Format())
	}
}

// parsePct extracts the leading numeric value from strings like "94.3%",
// "5744" or "99.8% …".
func parsePct(s string, v *float64) (int, error) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	x, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("no number in %q: %w", s, err)
	}
	*v = x
	return 1, nil
}

func TestE3RecoversRate(t *testing.T) {
	tbl := E3(7)
	checkTable(t, tbl)
	var est float64
	for _, r := range tbl.Rows {
		if r[0] == "estimated error rate" {
			if _, err := parsePct(r[1], &est); err != nil {
				t.Fatal(err)
			}
		}
	}
	if est < 3 || est > 7 {
		t.Errorf("estimated rate %.1f%% not near 5%%", est)
	}
}

func TestE4OpenWorldBeatsClosed(t *testing.T) {
	tbl := E4(7)
	checkTable(t, tbl)
	var closed, open float64
	for _, r := range tbl.Rows {
		switch r[0] {
		case "closed-world recall":
			parsePct(r[1], &closed)
		case "open-world coverage":
			parsePct(r[1], &open)
		}
	}
	if open < closed {
		t.Errorf("open-world coverage (%.0f%%) below closed-world recall (%.0f%%)", open, closed)
	}
}

func TestE5ThroughputExceedsWorldFeed(t *testing.T) {
	tbl := E5(7, []int{1})
	checkTable(t, tbl)
	// Column 3 is msg/s; the world-average requirement is ~208 msg/s.
	var rate float64
	parsePct(tbl.Rows[0][3], &rate)
	if rate < 10000 {
		t.Errorf("single-shard throughput %.0f msg/s suspiciously low", rate)
	}
}

func TestE7FinerGridsReduceError(t *testing.T) {
	tbl := E7(7)
	checkTable(t, tbl)
	var first, last float64
	parsePct(tbl.Rows[0][2], &first)
	parsePct(tbl.Rows[len(tbl.Rows)-1][2], &last)
	if last >= first {
		t.Errorf("finer grid should reduce RMSE: %.3f -> %.3f", first, last)
	}
}

func TestE10DiscountingWins(t *testing.T) {
	tbl := E10(7)
	checkTable(t, tbl)
	// At the highest conflict row, discounted Dempster must beat naive.
	last := tbl.Rows[len(tbl.Rows)-1]
	var naive, disc float64
	parsePct(last[2], &naive)
	parsePct(last[4], &disc)
	if disc <= naive {
		t.Errorf("discounted Dempster (%.0f%%) should beat naive (%.0f%%) under conflict", disc, naive)
	}
}

func TestE11IndexesBeatScan(t *testing.T) {
	tbl := E11(7, 20000)
	checkTable(t, tbl)
	var scanQ, gridQ float64
	for _, r := range tbl.Rows {
		switch r[0] {
		case "scan":
			parsePct(r[2], &scanQ)
		case "grid":
			parsePct(r[2], &gridQ)
		}
	}
	if gridQ <= scanQ {
		t.Errorf("grid (%.0f q/s) should beat scan (%.0f q/s)", gridQ, scanQ)
	}
}

func TestE12BlockingFaster(t *testing.T) {
	tbl := E12(7, 300)
	checkTable(t, tbl)
	var blocked, exhaustive float64
	for _, r := range tbl.Rows {
		switch r[0] {
		case "blocked":
			parsePct(r[4], &blocked)
		case "exhaustive":
			parsePct(r[4], &exhaustive)
		}
	}
	if blocked <= exhaustive {
		t.Errorf("blocking (%.0f links/s) should beat exhaustive (%.0f links/s)", blocked, exhaustive)
	}
}

func TestE13AllLevelsBuild(t *testing.T) {
	tbl := E13(7)
	checkTable(t, tbl)
	if len(tbl.Rows) != 4 {
		t.Errorf("expected 4 zoom levels, got %d", len(tbl.Rows))
	}
}

func TestStoreForBench(t *testing.T) {
	st := StoreForBench(1, 10, 20)
	if st.Len() != 200 || st.VesselCount() != 10 {
		t.Errorf("store: %d points, %d vessels", st.Len(), st.VesselCount())
	}
}
