// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's index (E1–E22), each returning the
// paper-style table rows that EXPERIMENTS.md records. Everything is
// seeded and deterministic (E5/E14/E15/E16/E17/E18 wall-clock columns
// vary with the hardware; counts do not).
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/forecast"
	"repro/internal/fusion"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/query"
	"repro/internal/registry"
	"repro/internal/semstore"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/synopsis"
	"repro/internal/track"
	"repro/internal/tstore"
	"repro/internal/uncertainty"
	"repro/internal/va"
	"repro/internal/weather"
)

// Table is one experiment's result: a title, column headers and rows.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], v)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Cols)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// percentile reports the p-quantile of the latencies by feeding them
// through the same bounded-bucket histogram the production metrics use
// (obs.Histogram), so experiments and /metrics report percentiles from
// one implementation. Zero on empty input; resolution is the
// histogram's bucket width (≤ ~3.2% relative error).
func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	h := obs.NewHistogram()
	for _, d := range lat {
		h.Observe(int64(d))
	}
	return time.Duration(h.Quantile(p))
}

func truthTrajectories(run *sim.Run) []*model.Trajectory {
	var out []*model.Trajectory
	for mmsi, pts := range run.Truth {
		tr := &model.Trajectory{MMSI: mmsi}
		for _, p := range pts {
			tr.Points = append(tr.Points, model.VesselState{
				MMSI: mmsi, At: p.At, Pos: p.Pos, SpeedKn: p.SpeedKn, CourseDeg: p.CourseDeg,
			})
		}
		tr.Sort()
		out = append(out, tr)
	}
	return out
}

// E1 reproduces Figure 1: worldwide feed volume and coverage. The paper
// cites ~18M received positions/day worldwide [16]; we simulate a global
// window, report rates by receiver path, and extrapolate to a day.
func E1(seed int64, vessels int, window time.Duration) Table {
	cfg := sim.Config{
		Seed: seed, World: sim.GlobalWorld(seed), NumVessels: vessels,
		Duration: window, TickSec: 5,
	}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	var terr, sat, both int
	var pts []geo.Point
	for i := range run.Positions {
		o := &run.Positions[i]
		if o.Terrestrial {
			terr++
		}
		if o.Satellite {
			sat++
		}
		if o.Terrestrial && o.Satellite {
			both++
		}
		pts = append(pts, o.Report.Position)
	}
	density := va.NewDensity(geo.Rect{MinLat: -60, MinLon: -180, MaxLat: 70, MaxLon: 180}, 26, 72)
	for _, p := range pts {
		density.Add(p)
	}
	perDay := float64(len(run.Positions)) / window.Hours() * 24
	emittedPerDay := float64(run.Emitted) / window.Hours() * 24
	t := Table{
		ID:    "E1",
		Title: "worldwide AIS feed (Figure 1)",
		Cols:  []string{"metric", "value"},
		Rows: [][]string{
			{"fleet size", f("%d", vessels)},
			{"window", window.String()},
			{"emitted positions", f("%d", run.Emitted)},
			{"received positions", f("%d", len(run.Positions))},
			{"  via terrestrial", f("%d (%.0f%%)", terr, pct(terr, len(run.Positions)))},
			{"  via satellite", f("%d (%.0f%%)", sat, pct(sat, len(run.Positions)))},
			{"  via both", f("%d", both)},
			{"received/day (extrapolated)", f("%.2fM", perDay/1e6)},
			{"emitted/day (extrapolated)", f("%.2fM", emittedPerDay/1e6)},
			{"covered 5°-cells", f("%d (%.0f%% of ocean grid)", density.NonEmptyBins(), density.CoverageFraction()*100)},
		},
		Notes: []string{
			f("paper claim: ~18M positions/day worldwide [16]; shape check: a %d-vessel world fleet extrapolates to that order at real AIS cadences", vessels),
			"scale the fleet with -vessels to match absolute volume; coverage map below",
		},
	}
	t.Notes = append(t.Notes, "\n"+density.Render())
	return t
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// E2 reproduces the §2.1 synopsis claim: ~95% compression over AIS traces
// without destroying accuracy. Sweep of compressor × tolerance with SED
// error and downstream event-detection fidelity.
func E2(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 60, Duration: 4 * time.Hour, TickSec: 2}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	trs := truthTrajectories(run)
	t := Table{
		ID: "E2", Title: "trajectory synopses (95% claim, §2.1)",
		Cols: []string{"algorithm", "param", "ratio", "meanSED(m)", "maxSED(m)"},
	}
	type cand struct {
		c    synopsis.Compressor
		name string
	}
	var cands []cand
	for _, tol := range []float64{30, 60, 120, 240} {
		cands = append(cands,
			cand{synopsis.DouglasPeucker{ToleranceM: tol}, f("tol=%.0fm", tol)},
			cand{synopsis.DeadReckoning{ToleranceM: tol, MaxGap: 10 * time.Minute}, f("tol=%.0fm", tol)},
		)
	}
	cands = append(cands,
		cand{synopsis.SquishE{Capacity: 50}, "cap=50"},
		cand{synopsis.Uniform{Every: 20}, "every=20"},
	)
	for _, cd := range cands {
		var kept, orig int
		var sumMean, maxSED float64
		n := 0
		for _, tr := range trs {
			if tr.Len() < 50 {
				continue
			}
			comp := cd.c.Compress(tr)
			rep := synopsis.Evaluate(tr, comp, cd.c.Name())
			kept += rep.Kept
			orig += rep.Original
			sumMean += rep.MeanSEDM
			if rep.MaxSEDM > maxSED {
				maxSED = rep.MaxSEDM
			}
			n++
		}
		ratio := 1 - float64(kept)/float64(orig)
		t.Rows = append(t.Rows, []string{
			cd.c.Name(), cd.name, f("%.1f%%", ratio*100), f("%.0f", sumMean/float64(n)), f("%.0f", maxSED),
		})
	}
	t.Notes = append(t.Notes, "paper claim [29]: state of the art reaches 95% compression on AIS traces; DP/DR at 60–120 m tolerance land in that band with bounded error")
	return t
}

// E3 reproduces the ~5% static-error claim [44]: inject at the published
// rate, detect with the rule set, report precision/recall and the
// estimated rate.
func E3(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 150, Duration: 3 * time.Hour, TickSec: 2, StaticErrorRate: 0.05}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	var tp, fp, fn, flagged int
	for i := range run.Statics {
		so := &run.Statics[i]
		bad := len(quality.CheckStatic(&so.Msg)) > 0
		if bad {
			flagged++
		}
		switch {
		case bad && so.Corrupted:
			tp++
		case bad && !so.Corrupted:
			fp++
		case !bad && so.Corrupted:
			fn++
		}
	}
	total := len(run.Statics)
	return Table{
		ID: "E3", Title: "AIS static-data veracity (~5% claim, §1 [44])",
		Cols: []string{"metric", "value"},
		Rows: [][]string{
			{"static messages", f("%d", total)},
			{"injected error rate", "5.0%"},
			{"estimated error rate", f("%.1f%%", pct(flagged, total))},
			{"detector precision", f("%.1f%%", pct(tp, tp+fp))},
			{"detector recall", f("%.1f%%", pct(tp, tp+fn))},
		},
		Notes: []string{"paper claim [44]: ≈5% of AIS static transmissions carry errors; the rule set recovers the rate and attributes the bad field"},
	}
}

// E4 reproduces the open-world argument: 27% of ships dark ≥10% of the
// time [43]; rendezvous recall under closed- vs open-world semantics.
func E4(seed int64) Table {
	cfg := sim.Config{
		Seed: seed, NumVessels: 120, Duration: 4 * time.Hour, TickSec: 2,
		DarkShipFrac: 0.27, DarkTimeFrac: 0.12,
		RendezvousFrac: 0.05, DarkRendezvousFrac: 0.08,
	}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	// Measured go-dark profile from received data.
	from := run.Config.Start
	to := from.Add(run.Config.Duration)
	reportTimes := map[uint32][]time.Time{}
	for i := range run.Positions {
		o := &run.Positions[i]
		reportTimes[o.TrueMMSI] = append(reportTimes[o.TrueMMSI], o.At)
	}
	darkShips := 0
	for _, v := range run.Vessels {
		c := quality.MeasureCompleteness(v.MMSI, reportTimes[v.MMSI], from, to, 30*time.Second, 10*time.Minute)
		if c.DarkFraction >= 0.10 {
			darkShips++
		}
	}
	// Closed-world: detector over received reports only.
	engine := events.NewEngine(&events.Context{Zones: run.Config.World.Zones}, 0.1)
	engine.RegisterPair(&events.RendezvousDetector{})
	trajs := map[uint32]*model.Trajectory{}
	for i := range run.Positions {
		o := &run.Positions[i]
		s := model.FromReport(o.At, &o.Report)
		s.MMSI = o.TrueMMSI // evaluation stream: resolve spoofed ids
		engine.Process(s)
		tr, ok := trajs[s.MMSI]
		if !ok {
			tr = &model.Trajectory{MMSI: s.MMSI}
			trajs[s.MMSI] = tr
		}
		tr.Points = append(tr.Points, s)
	}
	var truths []events.TruthWindow
	rdvTruth := 0
	for _, e := range run.Events {
		truths = append(truths, events.TruthWindow{
			Kind: events.Kind(e.Kind), MMSI: e.MMSI, Other: e.Other, Start: e.Start, End: e.End,
		})
		if e.Kind == sim.EventRendezvous {
			rdvTruth++
		}
	}
	closed := events.Score(events.KindRendezvous, engine.Alerts(), truths, 10*time.Minute)
	// Open-world: add possible-rendezvous qualification over dark gaps.
	qualified := events.QualifyRendezvous(trajs, engine.Alerts(), 10*time.Minute, events.DefaultOpenWorldConfig())
	// A truth rendezvous counts as covered if either detected or qualified
	// as possible.
	covered := 0
	for _, e := range run.Events {
		if e.Kind != sim.EventRendezvous {
			continue
		}
		hit := false
		for _, a := range qualified {
			if a.Kind != events.KindRendezvous && a.Kind != events.KindPossibleRendezvous {
				continue
			}
			if (a.MMSI == e.MMSI && a.Other == e.Other) || (a.MMSI == e.Other && a.Other == e.MMSI) {
				if !a.Start.After(e.End) && !a.At.Before(e.Start) {
					hit = true
					break
				}
			}
		}
		if hit {
			covered++
		}
	}
	possibles := 0
	for _, a := range qualified {
		if a.Kind == events.KindPossibleRendezvous {
			possibles++
		}
	}
	return Table{
		ID: "E4", Title: "go-dark and open-world querying (§4 [43])",
		Cols: []string{"metric", "value"},
		Rows: [][]string{
			{"fleet", f("%d", len(run.Vessels))},
			{"ships dark ≥10% of time", f("%d (%.0f%%)", darkShips, pct(darkShips, len(run.Vessels)))},
			{"true rendezvous", f("%d", rdvTruth)},
			{"closed-world recall", f("%.0f%%", closed.Recall*100)},
			{"open-world coverage", f("%.0f%%", pct(covered, rdvTruth))},
			{"possible-rendezvous answers", f("%d", possibles)},
		},
		Notes: []string{
			"paper claim [43]: 27% of ships go dark ≥10% of the time, so closed-world answers under-report; open-world qualification recovers coverage at the cost of 'possible' answers",
		},
	}
}

// E5 measures the integrated pipeline (Figure 2): throughput and per-stage
// cost versus shard count.
func E5(seed int64, shards []int) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 250, Duration: 90 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID: "E5", Title: "integrated pipeline throughput (Figure 2)",
		Cols: []string{"shards", "msgs", "wall", "msg/s", "archived", "alerts"},
	}
	for _, n := range shards {
		p := core.NewSharded(core.Config{
			Zones: run.Config.World.Zones, SynopsisToleranceM: 60,
		}, n)
		start := time.Now()
		if n == 1 {
			for i := range run.Positions {
				o := &run.Positions[i]
				p.Ingest(o.At, &o.Report)
			}
		} else {
			done := make(chan struct{}, n)
			for w := 0; w < n; w++ {
				go func(w int) {
					for i := range run.Positions {
						o := &run.Positions[i]
						if p.ShardIndex(o.Report.MMSI) == w {
							p.Shards[w].Ingest(o.At, &o.Report)
						}
					}
					done <- struct{}{}
				}(w)
			}
			for w := 0; w < n; w++ {
				<-done
			}
		}
		wall := time.Since(start)
		snap := p.Snapshot()
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", snap.Ingested), wall.Round(time.Millisecond).String(),
			f("%.0f", float64(snap.Ingested)/wall.Seconds()),
			f("%d", snap.Archived), f("%d", snap.Alerts),
		})
	}
	t.Notes = append(t.Notes,
		"the paper's 18M/day world feed averages ~208 msg/s; a single shard exceeds that by orders of magnitude, bursts included",
		"sharding trades cross-shard pairwise detection for linear ingest scaling (see DESIGN.md)")
	return t
}

// E14 measures the asynchronous sharded ingest engine (internal/ingest)
// against the same replayed traffic: wall-clock throughput and speedup by
// shard count, with the alert count as the fidelity check. Dense traffic
// is the point — pairwise detection cost follows local vessel density, and
// partitioning the fleet divides the density each shard's detectors see,
// which is where the single-core speedup comes from (on multi-core
// hardware the shard goroutines additionally run in parallel).
func E14(seed int64, shards []int) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 2500, Duration: 20 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID: "E14", Title: "async sharded ingest engine (internal/ingest)",
		Cols: []string{"shards", "msgs", "wall", "msg/s", "speedup", "alerts"},
	}
	ctx := context.Background()
	base := 0.0
	for _, n := range shards {
		e := ingest.New(ingest.Config{
			Pipeline: core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60},
			Shards:   n,
		})
		e.Start(ctx)
		alerts := 0
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range e.Alerts() {
				alerts++
			}
		}()
		start := time.Now()
		for i := range run.Positions {
			o := &run.Positions[i]
			e.Ingest(ctx, o.At, &o.Report)
		}
		e.Close()
		<-drained
		wall := time.Since(start)
		rate := float64(len(run.Positions)) / wall.Seconds()
		if base == 0 {
			base = rate
		}
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", len(run.Positions)), wall.Round(time.Millisecond).String(),
			f("%.0f", rate), f("%.2fx", rate/base), f("%d", alerts),
		})
	}
	t.Notes = append(t.Notes,
		"same alert multiset as sequential Pipeline.Ingest at 1 shard (pinned by internal/ingest tests); at n>1 pairwise detection is per-shard, the trade-off E5 records",
		"bounded queues backpressure the submitter instead of growing; batched IngestBatch amortises the per-shard lock")
	return t
}

// E6 reproduces the fusion experiment: AIS+radar association accuracy and
// track quality versus single-source; register conflict resolution.
func E6(seed int64) Table {
	cfg := sim.Config{
		Seed: seed, NumVessels: 50, Duration: time.Hour, TickSec: 2,
		RadarRangeM: 60000, NumRadar: 4, RadarNoiseM: 120,
	}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	// Track with AIS only, then AIS+radar; compare RMSE against truth for
	// vessels inside radar coverage.
	type scan struct {
		at    time.Time
		ms    []fusion.Measurement
		truth []uint32
	}
	build := func(withRadar bool) []scan {
		type timed struct {
			at    time.Time
			m     fusion.Measurement
			truth uint32
		}
		var feed []timed
		for i := range run.Positions {
			o := &run.Positions[i]
			feed = append(feed, timed{o.At, fusion.Measurement{
				At: o.At, Pos: o.Report.Position, SigmaM: 10,
				Identity: o.Report.MMSI, Source: "ais",
			}, o.TrueMMSI})
		}
		if withRadar {
			for _, c := range run.Radar {
				feed = append(feed, timed{c.At, fusion.Measurement{
					At: c.At, Pos: c.Pos, SigmaM: 120, Source: "radar",
				}, c.TrueMMSI})
			}
		}
		for i := 1; i < len(feed); i++ {
			for j := i; j > 0 && feed[j].at.Before(feed[j-1].at); j-- {
				feed[j], feed[j-1] = feed[j-1], feed[j]
			}
		}
		var scans []scan
		var cur scan
		for _, fd := range feed {
			if cur.at.IsZero() || fd.at.Sub(cur.at) > 10*time.Second {
				if len(cur.ms) > 0 {
					scans = append(scans, cur)
				}
				cur = scan{at: fd.at}
			}
			cur.ms = append(cur.ms, fd.m)
			cur.truth = append(cur.truth, fd.truth)
		}
		if len(cur.ms) > 0 {
			scans = append(scans, cur)
		}
		return scans
	}
	truthAt := func(mmsi uint32, at time.Time) (geo.Point, bool) {
		pts := run.Truth[mmsi]
		for _, p := range pts {
			d := p.At.Sub(at)
			if d < 0 {
				d = -d
			}
			if d <= 30*time.Second {
				return p.Pos, true
			}
		}
		return geo.Point{}, false
	}
	runTracker := func(withRadar bool) (rmse float64, assocAcc float64, tracks int) {
		tk := fusion.NewTracker(fusion.DefaultTrackerConfig())
		var se, n float64
		var correct, anon int
		for _, sc := range build(withRadar) {
			tk.Process(sc.at, sc.ms)
			for i, m := range sc.ms {
				if m.Identity != 0 {
					continue
				}
				anon++
				want := sc.truth[i]
				for _, tr := range tk.Tracks {
					if tr.Identity == want && geo.Distance(tr.Filter.Position(), m.Pos) < 600 {
						correct++
						break
					}
				}
			}
			for _, tr := range tk.ConfirmedTracks() {
				if tr.Identity == 0 {
					continue
				}
				if tp, ok := truthAt(tr.Identity, sc.at); ok {
					d := geo.Distance(tr.Filter.Position(), tp)
					se += d * d
					n++
				}
			}
		}
		if n > 0 {
			rmse = sqrt(se / n)
		}
		if anon > 0 {
			assocAcc = float64(correct) / float64(anon)
		}
		return rmse, assocAcc, len(tk.ConfirmedTracks())
	}
	rmseAIS, _, trAIS := runTracker(false)
	rmseFused, assoc, trFused := runTracker(true)

	rng := rand.New(rand.NewSource(seed))
	truth, ra, rb := registry.SyntheticPair(rng, 400, 0.02, 0.30)
	resolveAcc := func(rv *registry.Resolver) float64 {
		resolved := map[uint32]*registry.Record{}
		for _, mmsi := range ra.MMSIs() {
			resolved[mmsi] = rv.Resolve(map[string]*registry.Record{"A": ra.Get(mmsi), "B": rb.Get(mmsi)})
		}
		return registry.ResolutionAccuracy(truth, resolved)
	}
	uniform := registry.NewResolver()
	weighted := registry.NewResolver()
	weighted.Reliability["A"] = 0.95
	weighted.Reliability["B"] = 0.40

	return Table{
		ID: "E6", Title: "multi-source fusion (§2.4 [19])",
		Cols: []string{"metric", "AIS only", "AIS+radar"},
		Rows: [][]string{
			{"confirmed tracks", f("%d", trAIS), f("%d", trFused)},
			{"track RMSE vs truth (m)", f("%.0f", rmseAIS), f("%.0f", rmseFused)},
			{"radar→track association", "—", f("%.0f%%", assoc*100)},
			{"register resolution (uniform)", f("%.1f%%", resolveAcc(uniform)*100), ""},
			{"register resolution (weighted)", f("%.1f%%", resolveAcc(weighted)*100), ""},
		},
		Notes: []string{"fusion keeps track quality while absorbing anonymous radar; reliability weighting resolves register conflicts (the MarineTraffic-vs-Lloyd's scenario of §4)"},
	}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// E7 measures multi-granularity enrichment (§2.5): throughput and
// interpolation error versus weather-grid resolution.
func E7(seed int64) Table {
	world := sim.MediterraneanWorld(seed)
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	field := weather.AnalyticField{Base: 10, Amplitude: 5, WaveLatDeg: 5, WaveLonDeg: 8, Period: 12 * time.Hour}
	probe := make([]geo.Point, 0, 1000)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1000; i++ {
		probe = append(probe, geo.Point{
			Lat: 31 + rng.Float64()*14, Lon: -5 + rng.Float64()*40,
		})
	}
	t := Table{
		ID: "E7", Title: "multi-granularity enrichment (§2.5)",
		Cols: []string{"grid", "cells", "RMSE", "lookups/s"},
	}
	for _, cellDeg := range []float64{2.0, 1.0, 0.5, 0.25} {
		s := field.BuildSeries(weather.WindSpeedMS, world.Bounds, cellDeg, t0, time.Hour, 6)
		var se float64
		at := t0.Add(90 * time.Minute)
		start := time.Now()
		const reps = 50
		for r := 0; r < reps; r++ {
			for _, p := range probe {
				got, _ := s.Sample(p, at)
				if r == 0 {
					d := got - field.Eval(p, at)
					se += d * d
				}
			}
		}
		elapsed := time.Since(start)
		cells := s.Slices[0].Rows * s.Slices[0].Cols
		t.Rows = append(t.Rows, []string{
			f("%.2f°", cellDeg), f("%d", cells),
			f("%.3f", sqrt(se/float64(len(probe)))),
			f("%.1fM", float64(reps*len(probe))/elapsed.Seconds()/1e6),
		})
	}
	t.Notes = append(t.Notes, "the km-scale/hourly context of §2.5 joins against 10m/seconds AIS at millions of lookups/s; finer grids cut interpolation error")
	return t
}

// E8 scores the full detector battery against injected anomalies.
func E8(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 200, Duration: 4 * time.Hour, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	p := core.New(core.Config{Zones: run.Config.World.Zones, DarkThreshold: 25 * time.Minute})
	for i := range run.Positions {
		o := &run.Positions[i]
		p.Ingest(o.At, &o.Report)
	}
	var truths []events.TruthWindow
	for _, e := range run.Events {
		truths = append(truths, events.TruthWindow{
			Kind: events.Kind(e.Kind), MMSI: e.MMSI, Other: e.Other, Start: e.Start, End: e.End,
		})
	}
	t := Table{
		ID: "E8", Title: "event recognition scorecard (§3.1)",
		Cols: []string{"kind", "truth", "alerts", "precision", "recall", "latency"},
	}
	for _, kind := range []events.Kind{
		events.KindDark, events.KindTeleport, events.KindIdentity,
		events.KindRendezvous, events.KindLoiter, events.KindDrift,
		events.KindZoneViolation,
	} {
		r := events.Score(kind, p.Alerts(), truths, 5*time.Minute)
		if r.Truth == 0 && r.Alerts == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			string(kind), f("%d", r.Truth), f("%d", r.Alerts),
			f("%.0f%%", r.Precision*100), f("%.0f%%", r.Recall*100),
			r.MeanLatency.Round(time.Second).String(),
		})
	}
	t.Notes = append(t.Notes,
		"dark-detection trades precision against recall with the gap threshold (satellite revisit gaps mimic going dark — exactly the veracity problem §1 describes)")
	return t
}

// E9 sweeps forecasting horizon across the predictor family.
func E9(seed int64) Table {
	// Train and test must share the same world: patterns-of-life are a
	// property of the lanes, and a re-jittered world has different lanes.
	world := sim.MediterraneanWorld(seed)
	hist, err := sim.Simulate(sim.Config{Seed: seed, World: world, NumVessels: 120, Duration: 8 * time.Hour, TickSec: 5})
	if err != nil {
		panic(err)
	}
	rm := forecast.NewRouteModel(0.02)
	rm.TrainAll(truthTrajectories(hist))
	test, err := sim.Simulate(sim.Config{Seed: seed + 7, World: world, NumVessels: 40, Duration: 6 * time.Hour, TickSec: 5})
	if err != nil {
		panic(err)
	}
	predictors := []forecast.Predictor{
		forecast.DeadReckoning{}, forecast.Kalman{}, rm,
		forecast.Hybrid{Route: rm, Fallback: forecast.Kalman{}},
	}
	horizons := []time.Duration{10 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour}
	// Evaluate on transit traffic: "anticipated trajectories" (§3.1) are a
	// lane-traffic problem; orbiting fishing vessels have no route to
	// anticipate (the hybrid handles them by kinematic fallback anyway).
	var transits []*model.Trajectory
	for _, tr := range truthTrajectories(test) {
		if tr.Length() < 20000 {
			continue
		}
		disp := geo.Distance(tr.Points[0].Pos, tr.Points[tr.Len()-1].Pos)
		if disp/tr.Length() > 0.5 {
			transits = append(transits, tr)
		}
	}
	results := forecast.Evaluate(predictors, transits, horizons, 20*time.Minute)
	t := Table{
		ID: "E9", Title: "trajectory forecasting error by horizon (§3.1)",
		Cols: []string{"predictor", "10m", "30m", "1h", "2h"},
	}
	for _, p := range predictors {
		row := []string{p.Name()}
		for _, h := range horizons {
			for _, r := range results {
				if r.Predictor == p.Name() && r.Horizon == h {
					row = append(row, f("%.0fm", r.MeanM))
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"mean error in metres over transit traffic; on this basin's near-straight lanes kinematics dominate and the hybrid's abstention rule keeps it at Kalman quality",
		"the patterns-of-life win appears where lanes bend: the dogleg microbenchmark (forecast tests, TestRouteModelLearnsTheTurn) shows the route model ~6x better than dead reckoning across a turn at 40 min horizon")
	return t
}

// E10 compares uncertainty frameworks under increasing conflict, including
// the Zadeh configuration.
func E10(seed int64) Table {
	frame := uncertainty.Frame{"cargo", "fishing", "smuggler"}
	rng := rand.New(rand.NewSource(seed))
	t := Table{
		ID: "E10", Title: "uncertainty frameworks under conflict (§4 [13][45])",
		Cols: []string{"conflict", "bayes", "dempster", "yager", "disc.dempster", "possibility"},
	}
	const trials = 300
	for _, conflict := range []float64{0.0, 0.3, 0.6, 0.9} {
		var accB, accD, accY, accDD, accP float64
		for trial := 0; trial < trials; trial++ {
			truth := frame[rng.Intn(len(frame))]
			// Source 1 is honest; source 2 is wrong with prob = conflict.
			obs2 := truth
			if rng.Float64() < conflict {
				obs2 = frame[(frame.Index(truth)+1+rng.Intn(2))%3]
			}
			// Bayes: multiply likelihoods (0.8 on observed, 0.1 elsewhere).
			lik := func(h uncertainty.Hypothesis) []float64 {
				out := make([]float64, len(frame))
				for i, x := range frame {
					if x == h {
						out[i] = 0.8
					} else {
						out[i] = 0.1
					}
				}
				return out
			}
			d := uncertainty.UniformDist(frame)
			d, _ = d.BayesUpdate(lik(truth))
			d, _ = d.BayesUpdate(lik(obs2))
			if h, _ := d.MAP(); h == truth {
				accB++
			}
			m1 := uncertainty.NewMass(frame, map[uncertainty.Set]float64{uncertainty.SetOf(frame, truth): 0.8})
			m2 := uncertainty.NewMass(frame, map[uncertainty.Set]float64{uncertainty.SetOf(frame, obs2): 0.8})
			if c, err := m1.CombineDempster(m2); err == nil {
				if h, _ := c.Pignistic().MAP(); h == truth {
					accD++
				}
			}
			if h, _ := m1.CombineYager(m2).Pignistic().MAP(); h == truth {
				accY++
			}
			d1 := m1.Discount(0.9)
			d2 := m2.Discount(0.5) // source 2 known less reliable
			if c, err := d1.CombineDempster(d2); err == nil {
				if h, _ := c.Pignistic().MAP(); h == truth {
					accDD++
				}
			}
			p1 := uncertainty.NewPossibility(frame, map[uncertainty.Hypothesis]float64{truth: 1, frame[(frame.Index(truth)+1)%3]: 0.3, frame[(frame.Index(truth)+2)%3]: 0.3})
			p2 := uncertainty.NewPossibility(frame, map[uncertainty.Hypothesis]float64{obs2: 1, frame[(frame.Index(obs2)+1)%3]: 0.3, frame[(frame.Index(obs2)+2)%3]: 0.3})
			if comb, _, err := p1.CombineMin(p2); err == nil {
				if h, _ := comb.Best(); h == truth {
					accP++
				}
			} else if h, _ := p1.CombineMax(p2).Best(); h == truth {
				accP++
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%.0f%%", conflict*100),
			f("%.0f%%", 100*accB/trials), f("%.0f%%", 100*accD/trials),
			f("%.0f%%", 100*accY/trials), f("%.0f%%", 100*accDD/trials),
			f("%.0f%%", 100*accP/trials),
		})
	}
	t.Notes = append(t.Notes,
		"reliability discounting before combination (§4's prescription) dominates naive Dempster as conflict grows; Zadeh's paradox is exercised in the uncertainty package tests")
	return t
}

// E11 compares archival query plans: scan vs grid vs R-tree.
func E11(seed int64, points int) Table {
	rng := rand.New(rand.NewSource(seed))
	items := make([]index.Item, points)
	for i := range items {
		items[i] = index.Item{Pos: geo.Point{Lat: 31 + rng.Float64()*14, Lon: -5 + rng.Float64()*40}, ID: uint64(i)}
	}
	g := index.NewGridIndex(0.5)
	startBuild := time.Now()
	for _, it := range items {
		g.Insert(it)
	}
	gridBuild := time.Since(startBuild)
	startBuild = time.Now()
	rt := index.BuildRTree(items)
	rtreeBuild := time.Since(startBuild)
	sc := &index.Scan{Items: items}

	idxs := []struct {
		name  string
		ix    index.SpatialIndex
		build time.Duration
	}{
		{"scan", sc, 0}, {"grid", g, gridBuild}, {"rtree", rt, rtreeBuild},
	}
	queries := make([]geo.Rect, 50)
	for i := range queries {
		c := geo.Point{Lat: 31 + rng.Float64()*14, Lon: -5 + rng.Float64()*40}
		queries[i] = geo.RectAround(c, 50000)
	}
	t := Table{
		ID: "E11", Title: f("spatial query plans over %d points (§2.3)", points),
		Cols: []string{"index", "build", "range q/s", "knn q/s"},
	}
	for _, e := range idxs {
		start := time.Now()
		reps := 0
		for time.Since(start) < 200*time.Millisecond {
			_ = e.ix.Search(queries[reps%len(queries)], nil)
			reps++
		}
		rangeQPS := float64(reps) / time.Since(start).Seconds()
		start = time.Now()
		reps = 0
		for time.Since(start) < 200*time.Millisecond {
			q := queries[reps%len(queries)]
			_ = e.ix.Nearest(q.Center(), 10)
			reps++
		}
		knnQPS := float64(reps) / time.Since(start).Seconds()
		t.Rows = append(t.Rows, []string{
			e.name, e.build.Round(time.Millisecond).String(),
			f("%.0f", rangeQPS), f("%.0f", knnQPS),
		})
	}
	return t
}

// E12 measures link discovery between dirty registers.
func E12(seed int64, n int) Table {
	rng := rand.New(rand.NewSource(seed))
	_, ra, rb := registry.SyntheticPair(rng, n, 0.02, 0.25)
	t := Table{
		ID: "E12", Title: f("link discovery across registers (%d vessels, §2.2)", n),
		Cols: []string{"config", "links", "precision", "recall", "links/s"},
	}
	for _, blocking := range []bool{true, false} {
		cfg := semstore.DefaultLinkConfig()
		cfg.UseBlocking = blocking
		start := time.Now()
		links := semstore.DiscoverLinks(ra, rb, cfg)
		elapsed := time.Since(start)
		q := semstore.EvaluateLinks(links, n)
		name := "blocked"
		if !blocking {
			name = "exhaustive"
		}
		t.Rows = append(t.Rows, []string{
			name, f("%d", q.Links), f("%.1f%%", q.Precision*100),
			f("%.1f%%", q.Recall*100), f("%.0f", float64(n)/elapsed.Seconds()),
		})
	}
	t.Notes = append(t.Notes, "blocking trades a little recall for an order of magnitude in throughput — the streaming-rate requirement of §2.2")
	return t
}

// E13 measures multi-scale situation aggregation.
func E13(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 200, Duration: 4 * time.Hour, TickSec: 5}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	var pts []geo.Point
	for _, tps := range run.Truth {
		for _, p := range tps {
			pts = append(pts, p.Pos)
		}
	}
	t := Table{
		ID: "E13", Title: f("multi-scale situation aggregation over %d points (§3.2)", len(pts)),
		Cols: []string{"zoom", "bins", "build", "non-empty"},
	}
	for _, level := range []int{8, 32, 128, 512} {
		start := time.Now()
		d := va.NewDensity(run.Config.World.Bounds, level, level*2)
		for _, p := range pts {
			d.Add(p)
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			f("%d", level), f("%d", level*level*2),
			elapsed.Round(time.Microsecond).String(),
			f("%d (%.1f%%)", d.NonEmptyBins(), d.CoverageFraction()*100),
		})
	}
	t.Notes = append(t.Notes, "all zoom levels build in milliseconds: interactive drill-down is CPU-trivial once the archive is in memory")
	return t
}

// storeForBench exposes a populated store for the E11-adjacent bench in
// bench_test.go.
func StoreForBench(seed int64, vessels, pointsPer int) *tstore.Store {
	rng := rand.New(rand.NewSource(seed))
	st := tstore.New()
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	for v := 0; v < vessels; v++ {
		mmsi := uint32(201000000 + v)
		lat := 32 + rng.Float64()*12
		lon := rng.Float64() * 30
		for i := 0; i < pointsPer; i++ {
			st.Append(model.VesselState{
				MMSI: mmsi, At: t0.Add(time.Duration(i*10) * time.Second),
				Pos:     geo.Point{Lat: lat + float64(i)*0.0005, Lon: lon},
				SpeedKn: 10,
			})
		}
	}
	return st
}

// E15 measures what durability costs: the async ingest engine replaying
// the same feed with persistence off, with the WAL flush stage at the
// default fsync-on-rotate policy, and with fsync after every batch. The
// recovered-record column re-opens each archive afterwards and proves the
// persisted state replays completely (counts are deterministic;
// wall-clock varies with the hardware, like E5/E14).
func E15(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 1500, Duration: 20 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	t := Table{
		ID: "E15", Title: "ingest throughput with persistence flush (internal/store)",
		Cols: []string{"mode", "msgs", "wall", "msg/s", "vs memory", "archived", "recovered"},
	}
	ctx := context.Background()
	modes := []struct {
		name string
		sync store.SyncPolicy
		disk bool
	}{
		{"memory only (no flush)", 0, false},
		{"wal flush, fsync rotate", store.SyncRotate, true},
		{"wal flush, fsync always", store.SyncAlways, true},
	}
	base := 0.0
	for _, m := range modes {
		var arch *store.Archive
		icfg := ingest.Config{
			Pipeline: core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60},
			Shards:   4,
		}
		var dir string
		if m.disk {
			dir, err = os.MkdirTemp("", "e15-*")
			if err != nil {
				panic(err)
			}
			arch, err = store.Open(store.Config{Dir: dir, Sync: m.sync})
			if err != nil {
				panic(err)
			}
			icfg.Backend = arch.Backend
		}
		e := ingest.New(icfg)
		e.Start(ctx)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range e.Alerts() {
			}
		}()
		start := time.Now()
		for i := range run.Positions {
			o := &run.Positions[i]
			e.Ingest(ctx, o.At, &o.Report)
		}
		e.Close()
		<-drained
		e.Wait() // includes flush-stage drain + final sync
		wall := time.Since(start)
		rate := float64(len(run.Positions)) / wall.Seconds()
		if base == 0 {
			base = rate
		}
		archived := e.Snapshot().Archived
		recovered := "—"
		if m.disk {
			if err := arch.Close(); err != nil {
				panic(err)
			}
			re, err := store.Open(store.Config{Dir: dir})
			if err != nil {
				panic(err)
			}
			recovered = f("%d", re.Stats.Total())
			re.Close()
			//lint:ignore errsink scratch-dir cleanup in an experiment harness; the OS temp reaper is the backstop
			os.RemoveAll(dir)
		}
		t.Rows = append(t.Rows, []string{
			m.name, f("%d", len(run.Positions)), wall.Round(time.Millisecond).String(),
			f("%.0f", rate), f("%.0f%%", 100*rate/base), f("%d", archived), recovered,
		})
	}
	t.Notes = append(t.Notes,
		"recovered = records read back by store.Open (snapshot + WAL replay) — must equal archived",
		"the flush stage is asynchronous and batched, so durability rides behind the ingest path; fsync-always bounds loss to one batch at the cost of disk latency per batch")
	return t
}

// E16 measures the unified query surface (internal/query): per-request
// latency of space–time range and k-nearest-vessel queries against a
// 100-vessel / 2-hour archive, answered from the live sharded pipelines,
// from a durable-archive store, and from both merged (deduplicated on
// (MMSI, timestamp)). The archive holds the first 60% of the run and the
// live pipelines the last 60%, so the merged engine spans the whole run
// with a 20% overlap — the post-restart shape maritimed -data-dir -http
// serves.
func E16(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 100, Duration: 2 * time.Hour, TickSec: 2}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	// Ingest without detectors: E16 measures read latency, not events.
	pcfg := core.Config{DisableEvents: true, DisableQuality: true}
	cut1, cut2 := (4*len(run.Positions))/10, (6*len(run.Positions))/10
	arch := tstore.New()
	sharded := core.NewSharded(pcfg, 4)
	for i := range run.Positions {
		o := &run.Positions[i]
		if i < cut2 {
			arch.Append(model.FromReport(o.At, &o.Report))
		}
		if i >= cut1 {
			sharded.Ingest(o.At, &o.Report)
		}
	}
	modes := []struct {
		name string
		eng  *query.Engine
	}{
		{"live", query.NewEngine(query.NewLiveSource(sharded))},
		{"archive", query.NewEngine(query.NewStoreSource("archive", arch))},
		{"merged", query.NewEngine(query.NewLiveSource(sharded), query.NewStoreSource("archive", arch))},
	}
	bounds := run.Config.World.Bounds
	start := run.Positions[0].At
	span := run.Positions[len(run.Positions)-1].At.Sub(start)
	const queries = 200
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]query.Box, queries)
	points := make([][2]float64, queries)
	ats := make([]time.Time, queries)
	for i := 0; i < queries; i++ {
		cLat := bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat)
		cLon := bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon)
		boxes[i] = query.Box{
			MinLat: cLat - 1, MinLon: cLon - 1.5, MaxLat: cLat + 1, MaxLon: cLon + 1.5,
		}
		points[i] = [2]float64{cLat, cLon}
		ats[i] = start.Add(time.Duration(rng.Int63n(int64(span))))
	}
	t := Table{
		ID: "E16", Title: "unified query API throughput (internal/query)",
		Cols: []string{"kind", "source", "queries", "mean hits", "p50", "p99", "qps"},
	}
	for _, kind := range []query.Kind{query.KindSpaceTime, query.KindNearest} {
		for _, m := range modes {
			lats := make([]time.Duration, 0, queries)
			hits := 0
			// Warm once: the first Nearest builds the spatial snapshot;
			// steady-state latency is what the API serves.
			warm := buildE16Request(kind, boxes[0], points[0], ats[0])
			if _, err := m.eng.Query(warm); err != nil {
				panic(err)
			}
			wallStart := time.Now()
			for i := 0; i < queries; i++ {
				req := buildE16Request(kind, boxes[i], points[i], ats[i])
				q0 := time.Now()
				res, err := m.eng.Query(req)
				if err != nil {
					panic(err)
				}
				lats = append(lats, time.Since(q0))
				hits += res.Count
			}
			wall := time.Since(wallStart)
			t.Rows = append(t.Rows, []string{
				string(kind), m.name, f("%d", queries), f("%.0f", float64(hits)/queries),
				percentile(lats, 0.50).Round(time.Microsecond).String(),
				percentile(lats, 0.99).Round(time.Microsecond).String(),
				f("%.0f", float64(queries)/wall.Seconds()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"archive = first 60% of the run, live = last 60% (20% overlap); merged spans the whole run, deduplicated on (MMSI, timestamp)",
		"spacetime: random 2°×3° boxes with 20-minute windows; nearest: k=10 within 15 minutes of a random instant",
		"per-shard/per-store spatial snapshots are cached between queries and invalidated by ingest; the warm-up query builds them")
	return t
}

// buildE16Request builds the E16 query of the given kind over the i-th
// random box/point/instant.
func buildE16Request(kind query.Kind, box query.Box, pt [2]float64, at time.Time) query.Request {
	if kind == query.KindSpaceTime {
		b := box
		return query.Request{
			Kind: query.KindSpaceTime, Box: &b,
			From: at.Add(-10 * time.Minute), To: at.Add(10 * time.Minute),
		}
	}
	return query.Request{
		Kind: query.KindNearest, Lat: pt[0], Lon: pt[1],
		At: at, Tol: query.Duration(15 * time.Minute), K: 10,
	}
}

// E17 measures the continuous half of the query surface (internal/query).
// Section "fanout": a live state stream published into the subscription
// hub with 1, 16 and 128 standing world-box watches, measuring
// publish-to-delivery latency per update (p50/p99) plus slow-consumer
// drops. Section "federation": the same space–time and nearest queries
// answered by one engine holding both halves of a run in-process
// ("local") versus an engine holding one half plus a peer daemon serving
// the other half over HTTP (query.Client as a federated Source) — the
// `maritimed -peer` shape.
func E17(seed int64) Table {
	t := Table{
		ID: "E17", Title: "continuous queries: subscription fan-out + federation (internal/query)",
		Cols: []string{"section", "config", "n", "delivered", "dropped", "p50", "p99"},
	}

	// --- fan-out -----------------------------------------------------------
	run, err := sim.Simulate(sim.Config{Seed: seed, NumVessels: 50, Duration: 30 * time.Minute, TickSec: 5})
	if err != nil {
		panic(err)
	}
	pub := len(run.Positions)
	if pub > 8000 {
		pub = 8000
	}
	states := make([]model.VesselState, pub)
	for i := 0; i < pub; i++ {
		o := &run.Positions[i]
		states[i] = model.FromReport(o.At, &o.Report)
	}
	world := query.Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	for _, nSubs := range []int{1, 16, 128} {
		hub := query.NewHub(query.HubConfig{})
		sentAt := make([]time.Time, pub)
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		subs := make([]*query.Subscription, nSubs)
		for i := range subs {
			sub, err := hub.Subscribe(query.Request{Kind: query.KindLivePicture, Box: &world},
				query.SubOptions{Buffer: 2 * pub})
			if err != nil {
				panic(err)
			}
			subs[i] = sub
			wg.Add(1)
			go func(sub *query.Subscription) {
				defer wg.Done()
				local := make([]time.Duration, 0, pub)
				for u := range sub.Updates() {
					local = append(local, time.Since(sentAt[u.Seq-1]))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(sub)
		}
		for i := range states {
			if i%64 == 63 {
				// Pace the feed in bursts: a flat-out loop would measure
				// backlog drain, not delivery latency.
				time.Sleep(time.Millisecond)
			}
			sentAt[i] = time.Now()
			hub.PublishState(states[i])
		}
		var dropped uint64
		for _, sub := range subs {
			// Give the drained queue a moment, then close the stream.
			for sub.Delivered()+sub.Dropped() < uint64(pub) {
				time.Sleep(time.Millisecond)
			}
			sub.Cancel()
			dropped += sub.Dropped()
		}
		wg.Wait()
		t.Rows = append(t.Rows, []string{
			"fanout", f("subscribers=%d", nSubs), f("%d", pub),
			f("%d", len(lats)), f("%d", dropped),
			percentile(lats, 0.50).Round(time.Microsecond).String(),
			percentile(lats, 0.99).Round(time.Microsecond).String(),
		})
	}

	// --- federation --------------------------------------------------------
	fedRun, err := sim.Simulate(sim.Config{Seed: seed, NumVessels: 60, Duration: time.Hour, TickSec: 2})
	if err != nil {
		panic(err)
	}
	half := len(fedRun.Positions) / 2
	early, late := tstore.New(), tstore.New()
	for i := range fedRun.Positions {
		o := &fedRun.Positions[i]
		if i < half {
			early.Append(model.FromReport(o.At, &o.Report))
		} else {
			late.Append(model.FromReport(o.At, &o.Report))
		}
	}
	remote := httptest.NewServer(query.NewServer(query.NewEngine(query.NewStoreSource("remote", early))))
	defer remote.Close()
	peer := query.NewClient(remote.URL)
	peer.PeerName = "peer"
	modes := []struct {
		name string
		eng  *query.Engine
	}{
		{"local (both halves in-process)", query.NewEngine(
			query.NewStoreSource("early", early), query.NewStoreSource("late", late))},
		{"federated (one half via -peer)", query.NewEngine(
			query.NewStoreSource("late", late), peer)},
	}
	bounds := fedRun.Config.World.Bounds
	start := fedRun.Positions[0].At
	span := fedRun.Positions[len(fedRun.Positions)-1].At.Sub(start)
	const queries = 100
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]query.Request, queries)
	for i := range reqs {
		cLat := bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat)
		cLon := bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon)
		at := start.Add(time.Duration(rng.Int63n(int64(span))))
		if i%2 == 0 {
			reqs[i] = query.Request{
				Kind: query.KindSpaceTime,
				Box:  &query.Box{MinLat: cLat - 1, MinLon: cLon - 1.5, MaxLat: cLat + 1, MaxLon: cLon + 1.5},
				From: at.Add(-10 * time.Minute), To: at.Add(10 * time.Minute),
			}
		} else {
			reqs[i] = query.Request{
				Kind: query.KindNearest, Lat: cLat, Lon: cLon,
				At: at, Tol: query.Duration(15 * time.Minute), K: 10,
			}
		}
	}
	for _, m := range modes {
		for _, kind := range []query.Kind{query.KindSpaceTime, query.KindNearest} {
			var lats []time.Duration
			hits := 0
			n := 0
			warmed := false
			for _, req := range reqs {
				if req.Kind != kind {
					continue
				}
				if !warmed { // first query builds the spatial snapshots
					if _, err := m.eng.Query(req); err != nil {
						panic(err)
					}
					warmed = true
				}
				q0 := time.Now()
				res, err := m.eng.Query(req)
				if err != nil {
					panic(err)
				}
				lats = append(lats, time.Since(q0))
				hits += res.Count
				n++
			}
			t.Rows = append(t.Rows, []string{
				"federation", f("%s %s", kind, m.name), f("%d", n),
				f("%d hits", hits), "0",
				percentile(lats, 0.50).Round(time.Microsecond).String(),
				percentile(lats, 0.99).Round(time.Microsecond).String(),
			})
		}
	}
	t.Notes = append(t.Notes,
		"fanout: world-box watches over the hub; latency = publish call to subscriber receive, feed paced in 64-update bursts, queues sized to avoid drops (the drop column proves it)",
		"publication is serialised per hub, so 128 subscribers pay the fan-out inside the publish call — per-delivery latency grows with fan-out, throughput stays bounded",
		"federation: 60 vessels / 1h split in half; the federated engine reaches the early half through query.Client over HTTP (one-hop, Local-guarded) — the latency gap vs local is the HTTP round trip",
	)
	return t
}

// E18 measures the tiered archive (internal/tier): the async engine
// ingests roughly 4× its configured resident memory budget with the
// eviction manager running, a sampler records the resident and heap
// ceilings throughout, and afterwards the evicted archive is queried
// cold (chunks paged back from the object store) and hot (block cache
// warm). The exceeding-RAM claim is the resident-ceiling row: the
// archive ends ~4× the budget while resident points never settle above
// it.
func E18(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 1000, Duration: 20 * time.Minute, TickSec: 2}
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "e18-*")
	if err != nil {
		panic(err)
	}
	//lint:ignore errsink scratch-dir cleanup in an experiment harness; the OS temp reaper is the backstop
	defer os.RemoveAll(dir)
	// Spill objects are a paging cache (reconstructable, unreachable
	// after a crash), so the no-fsync store is the right fit.
	objects, err := store.NewFSObjectsCache(dir)
	if err != nil {
		panic(err)
	}
	// Archive everything (no synopsis filter): the archive is then
	// len(Positions) points and the budget is set to a quarter of it.
	total := int64(len(run.Positions)) * int64(tstore.PointBytes)
	budget := total / 4
	e := ingest.New(ingest.Config{
		Pipeline:       core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 0, DisableEvents: true, DisableQuality: true},
		Shards:         4,
		MemoryBudget:   budget,
		TierObjects:    objects,
		TierCheckEvery: time.Millisecond, // replay runs the 20-minute feed in ~0.2s; check accordingly
	})
	ctx := context.Background()
	e.Start(ctx)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range e.Alerts() {
		}
	}()
	// Sampler: the resident/heap ceilings while ingest runs.
	var residentCeil, heapCeil uint64
	sampleStop := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		var ms runtime.MemStats
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-tick.C:
				if rb := uint64(e.TierStats().ResidentBytes); rb > residentCeil {
					residentCeil = rb
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > heapCeil {
					heapCeil = ms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	for i := range run.Positions {
		o := &run.Positions[i]
		e.Ingest(ctx, o.At, &o.Report)
	}
	e.Close()
	<-drained
	e.Wait()
	wall := time.Since(start)
	close(sampleStop)
	<-sampleDone
	e.Tier().Check() // cover the final batches appended after the last tick
	ts := e.TierStats()
	if err := e.FlushErr(); err != nil {
		panic(err)
	}

	mib := func(b uint64) string { return f("%.1f MiB", float64(b)/(1<<20)) }
	t := Table{
		ID: "E18", Title: "tiered archive: eviction + page-back under a memory budget (internal/tier)",
		Cols: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"archive", f("%d points = %s (%.1f× the budget); ingest %v",
			len(run.Positions), mib(uint64(total)), float64(total)/float64(budget), wall.Round(time.Millisecond))},
		[]string{"memory budget", mib(uint64(budget))},
		[]string{"resident ceiling (sampled)", mib(residentCeil)},
		[]string{"resident after final check", mib(uint64(ts.ResidentBytes))},
		[]string{"heap ceiling (sampled)", mib(heapCeil)},
		[]string{"evictions", f("%d vessels (%d points, %d hot-skips)", ts.Evictions, ts.EvictedTotal, ts.HotSkips)},
		[]string{"spilled", f("%d chunk objects, %s", ts.SpillObjects, mib(ts.SpilledBytes))},
	)

	// Page-back latency: per-vessel trajectory reads over evicted
	// vessels, cold (object reads) then hot (block cache warm; chunk
	// decode still per read).
	qe := e.QueryEngine()
	world := query.Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	lp, err := qe.Query(query.Request{Kind: query.KindLivePicture, Box: &world})
	if err != nil {
		panic(err)
	}
	nVessels := 200
	if len(lp.States) < nVessels {
		nVessels = len(lp.States)
	}
	measure := func() []time.Duration {
		lats := make([]time.Duration, 0, nVessels)
		for i := 0; i < nVessels; i++ {
			req := query.Request{Kind: query.KindTrajectory, MMSI: lp.States[i].MMSI}
			q0 := time.Now()
			if _, err := qe.Query(req); err != nil {
				panic(err)
			}
			lats = append(lats, time.Since(q0))
		}
		return lats
	}
	cold := measure()
	hot := measure()
	pct := func(l []time.Duration, q float64) string {
		return percentile(l, q).Round(time.Microsecond).String()
	}
	t.Rows = append(t.Rows,
		[]string{"trajectory page-back p50/p99 (cold)", f("%s / %s", pct(cold, 0.50), pct(cold, 0.99))},
		[]string{"trajectory page-back p50/p99 (cached)", f("%s / %s", pct(hot, 0.50), pct(hot, 0.99))},
	)

	// Query latency over the evicted archive, cold vs hot: the same
	// spacetime and nearest shapes E16 measures, on fresh snapshots
	// (cold pages chunks in; hot rides the caches).
	bounds := run.Config.World.Bounds
	startAt := run.Positions[0].At
	span := run.Positions[len(run.Positions)-1].At.Sub(startAt)
	rng := rand.New(rand.NewSource(seed))
	const queries = 100
	reqs := make([]query.Request, queries)
	for i := range reqs {
		cLat := bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat)
		cLon := bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon)
		at := startAt.Add(time.Duration(rng.Int63n(int64(span))))
		if i%2 == 0 {
			reqs[i] = query.Request{
				Kind: query.KindSpaceTime,
				Box:  &query.Box{MinLat: cLat - 1, MinLon: cLon - 1.5, MaxLat: cLat + 1, MaxLon: cLon + 1.5},
				From: at.Add(-10 * time.Minute), To: at.Add(10 * time.Minute),
			}
		} else {
			reqs[i] = query.Request{
				Kind: query.KindNearest, Lat: cLat, Lon: cLon,
				At: at, Tol: query.Duration(15 * time.Minute), K: 10,
			}
		}
	}
	for pass, label := range []string{"cold", "hot"} {
		var stLat, nvLat []time.Duration
		for _, req := range reqs {
			q0 := time.Now()
			if _, err := qe.Query(req); err != nil {
				panic(err)
			}
			d := time.Since(q0)
			if req.Kind == query.KindSpaceTime {
				stLat = append(stLat, d)
			} else {
				nvLat = append(nvLat, d)
			}
		}
		_ = pass
		t.Rows = append(t.Rows,
			[]string{f("spacetime p50/p99 (%s)", label), f("%s / %s", pct(stLat, 0.50), pct(stLat, 0.99))},
			[]string{f("nearest p50/p99 (%s)", label), f("%s / %s", pct(nvLat, 0.50), pct(nvLat, 0.99))},
		)
	}
	t.Notes = append(t.Notes,
		"budget = archive/4: the in-memory layer holds at most a quarter of what the archive accumulates; eviction keeps resident points at the budget while ingest runs 4× past it",
		"resident ceiling is sampled every 10ms and includes the transient overshoot of replay-speed ingest (the 20-minute feed arrives in ~0.3s, so arrival-rate × spill-pass-duration of backlog accumulates between eviction passes); at real-time feed rates the ceiling sits at the budget, which is where every pass returns it (the 'after final check' row)",
		"cold = first read after eviction (chunks fetched from the object store); cached = same reads with the block cache warm (chunk decode still runs per read)",
		"page-back is singleflighted per chunk: concurrent queries of one evicted vessel share a single object read",
	)
	return t
}

// E19 measures what full observability costs: the same replayed traffic
// through two identical ingest engines — one with Config.Obs nil (every
// hot-path instrumentation site reduces to a nil check), one reporting
// through a live obs.Registry that a background goroutine scrapes the
// way Prometheus would — and the same spacetime query mix against both.
// The target that justifies maritimed wiring the registry in
// unconditionally is ≤3% ingest-throughput overhead; decode/shard-wait
// sampling (1 in 64) and per-batch (not per-message) timing are what
// keep it there. Each config runs reps times and reports its best rate,
// squeezing scheduler noise out of a ratio of two wall-clocks.
func E19(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 1500, Duration: 20 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	bounds := run.Config.World.Bounds
	start := run.Positions[0].At
	span := run.Positions[len(run.Positions)-1].At.Sub(start)
	const queries = 200
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]query.Request, queries)
	for i := range reqs {
		cLat := bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat)
		cLon := bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon)
		at := start.Add(time.Duration(rng.Int63n(int64(span))))
		reqs[i] = query.Request{
			Kind: query.KindSpaceTime,
			Box:  &query.Box{MinLat: cLat - 1, MinLon: cLon - 1.5, MaxLat: cLat + 1, MaxLon: cLon + 1.5},
			From: at.Add(-10 * time.Minute), To: at.Add(10 * time.Minute),
		}
	}

	ctx := context.Background()
	const reps = 3
	measure := func(instrument bool) (rate float64, p50 time.Duration) {
		for rep := 0; rep < reps; rep++ {
			var reg *obs.Registry
			if instrument {
				reg = obs.NewRegistry()
			}
			e := ingest.New(ingest.Config{
				Pipeline: core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60},
				Obs:      reg,
			})
			e.Start(ctx)
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for range e.Alerts() {
				}
			}()
			scrapeDone := make(chan struct{})
			if reg != nil {
				// A live scraper, so the measured overhead includes what a
				// real /metrics consumer costs the hot paths.
				go func() {
					tick := time.NewTicker(50 * time.Millisecond)
					defer tick.Stop()
					for {
						select {
						case <-scrapeDone:
							return
						case <-tick.C:
							var sb strings.Builder
							if err := reg.WritePrometheus(&sb); err != nil {
								panic(err)
							}
						}
					}
				}()
			}
			t0 := time.Now()
			for i := range run.Positions {
				o := &run.Positions[i]
				e.Ingest(ctx, o.At, &o.Report)
			}
			e.Close()
			<-drained
			wall := time.Since(t0)
			if r := float64(len(run.Positions)) / wall.Seconds(); r > rate {
				rate = r
			}
			qe := e.QueryEngine()
			if _, err := qe.Query(reqs[0]); err != nil { // warm the spatial snapshot
				panic(err)
			}
			lats := make([]time.Duration, 0, queries)
			for _, req := range reqs {
				q0 := time.Now()
				if _, err := qe.Query(req); err != nil {
					panic(err)
				}
				lats = append(lats, time.Since(q0))
			}
			if p := percentile(lats, 0.50); p50 == 0 || p < p50 {
				p50 = p
			}
			if reg != nil {
				close(scrapeDone)
			}
			e.Wait()
		}
		return rate, p50
	}

	offRate, offP50 := measure(false)
	onRate, onP50 := measure(true)
	t := Table{
		ID: "E19", Title: "observability overhead (obs registry on vs off)",
		Cols: []string{"config", "msgs", "msg/s", "ingest overhead", "spacetime p50", "query overhead"},
	}
	t.Rows = append(t.Rows,
		[]string{"obs off", f("%d", len(run.Positions)), f("%.0f", offRate), "—",
			offP50.Round(time.Microsecond).String(), "—"},
		[]string{"obs on + scrape", f("%d", len(run.Positions)), f("%.0f", onRate),
			f("%+.1f%%", 100*(offRate-onRate)/offRate),
			onP50.Round(time.Microsecond).String(),
			f("%+.1f%%", 100*(float64(onP50)-float64(offP50))/float64(offP50))},
	)
	t.Notes = append(t.Notes,
		f("best of %d runs per config; 'obs on' includes a 50ms-interval Prometheus-text scrape running concurrently with ingest", reps),
		"instrumented sites: message counters, sampled (1/64) decode + shard-wait latency, per-batch pipeline timing, flush/WAL/tier/hub/query series — all single atomic ops on the hot path",
		"target: ≤3% ingest-throughput overhead (positive = instrumented slower)")
	return t
}

// E20 characterises the track-intelligence stage along the two axes the
// design cares about: what the online tracker costs the ingest hot path
// (the stage is a tee sink — Config.Track set vs nil, same feed), and
// what its forecasts are worth (predict error against simulator ground
// truth by horizon, the stage's hybrid route-prior/dead-reckoning
// predictor vs the pure dead-reckoning baseline it falls back to).
func E20(seed int64) Table {
	ctx := context.Background()

	// --- (a) ingest overhead: stage on vs off -------------------------------
	cfg := sim.Config{Seed: seed, NumVessels: 1500, Duration: 20 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	const reps = 5
	var offRate, onRate float64
	var tracked int
	oneRun := func(withTrack bool) float64 {
		icfg := ingest.Config{
			Pipeline: core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60},
		}
		if withTrack {
			icfg.Track = &track.Config{}
		}
		// Level the heap between runs so one config doesn't inherit the
		// other's (or an earlier experiment's) GC debt.
		runtime.GC()
		e := ingest.New(icfg)
		e.Start(ctx)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range e.Alerts() {
			}
		}()
		t0 := time.Now()
		for i := range run.Positions {
			o := &run.Positions[i]
			e.Ingest(ctx, o.At, &o.Report)
		}
		e.Close()
		<-drained
		wall := time.Since(t0)
		if ts := e.Tracks(); ts != nil {
			tracked = ts.VesselCount()
		}
		e.Wait()
		return float64(len(run.Positions)) / wall.Seconds()
	}
	// Interleave the configs rep by rep (best-of-reps each) so slow
	// machine-level drift hits both sides symmetrically instead of
	// biasing whichever config runs second.
	for rep := 0; rep < reps; rep++ {
		if r := oneRun(false); r > offRate {
			offRate = r
		}
		if r := oneRun(true); r > onRate {
			onRate = r
		}
	}

	// --- (b) predict error vs horizon ---------------------------------------
	// A clean fleet (no spoofing, so reported identity == truth identity),
	// long enough that a 30-minute horizon still has ground truth.
	pcfg := sim.Config{Seed: seed + 1, NumVessels: 150, Duration: 2 * time.Hour, TickSec: 2}
	prun, err := sim.Simulate(pcfg)
	if err != nil {
		panic(err)
	}
	cut := prun.Config.Start.Add(80 * time.Minute)
	stage := track.NewStage(track.Config{})
	histories := map[uint32][]model.VesselState{}
	for i := range prun.Positions {
		o := &prun.Positions[i]
		if o.At.After(cut) {
			break
		}
		st := model.FromReport(o.At, &o.Report)
		if err := stage.Append(st); err != nil {
			panic(err)
		}
		histories[st.MMSI] = append(histories[st.MMSI], st)
	}
	truthAt := func(pts []sim.TruthPoint, at time.Time) (geo.Point, bool) {
		for i := 1; i < len(pts); i++ {
			if pts[i].At.Before(at) {
				continue
			}
			a, b := pts[i-1], pts[i]
			span := b.At.Sub(a.At).Seconds()
			if span <= 0 {
				return b.Pos, true
			}
			frac := at.Sub(a.At).Seconds() / span
			return geo.Point{
				Lat: a.Pos.Lat + (b.Pos.Lat-a.Pos.Lat)*frac,
				Lon: a.Pos.Lon + (b.Pos.Lon-a.Pos.Lon)*frac,
			}, true
		}
		return geo.Point{}, false
	}

	t := Table{
		ID: "E20", Title: "track-intelligence stage: ingest overhead and predict error",
		Cols: []string{"measurement", "n", "result", "baseline", "delta"},
	}
	t.Rows = append(t.Rows,
		[]string{"ingest msg/s, track stage off", f("%d msgs", len(run.Positions)),
			f("%.0f msg/s", offRate), "—", "—"},
		[]string{"ingest msg/s, track stage on", f("%d vessels tracked", tracked),
			f("%.0f msg/s", onRate), f("%.0f msg/s", offRate),
			f("%+.1f%% overhead", 100*(offRate-onRate)/offRate)},
	)
	for _, horizon := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, 30 * time.Minute} {
		var stageSum, drSum float64
		var n, routeHits int
		for mmsi, pts := range histories {
			last := pts[len(pts)-1]
			if len(pts) < 10 || cut.Sub(last.At) > 10*time.Minute {
				continue
			}
			truth, ok := truthAt(prun.Truth[mmsi], last.At.Add(horizon))
			if !ok {
				continue
			}
			p, ok := stage.Predict(mmsi, horizon)
			if !ok {
				continue
			}
			drPos, ok := (forecast.DeadReckoning{}).Predict(
				&model.Trajectory{MMSI: mmsi, Points: pts}, horizon)
			if !ok {
				continue
			}
			if p.Method != (forecast.DeadReckoning{}).Name() {
				routeHits++
			}
			stageSum += geo.Distance(geo.Point{Lat: p.Lat, Lon: p.Lon}, truth)
			drSum += geo.Distance(drPos, truth)
			n++
		}
		if n == 0 {
			continue
		}
		stageMean, drMean := stageSum/float64(n), drSum/float64(n)
		t.Rows = append(t.Rows, []string{
			f("predict error @ %s", horizon), f("%d vessels (%d route-model)", n, routeHits),
			f("%.0f m hybrid", stageMean), f("%.0f m dead-reckoning", drMean),
			f("%+.1f%%", 100*(stageMean-drMean)/drMean),
		})
	}
	t.Notes = append(t.Notes,
		f("overhead is best-of-%d full-feed ingest runs per config, configs interleaved rep by rep, stage on vs off in the post-synopsis tee (positive = stage slower); target ≤5%%", reps),
		"predict rows: fleet simulated 2h, history cut at 80min, stage forecasts compared to interpolated ground truth at cut+horizon",
		"hybrid = the stage's shard-shared route prior with dead-reckoning fallback; negative delta = hybrid beats pure dead reckoning")
	return t
}

// E21 characterises the streaming anomaly lane along the two axes the
// design cares about: what the always-on stage costs the ingest hot
// path (Config.Anomaly set vs nil, same feed), and what its continuous
// detectors are worth against injected ground truth — reporting-gap
// recognition against scheduled dark windows, the possible-rendezvous
// CEP against dark meetings, and behavior-profile score separation for
// vessels steered far off their own history.
func E21(seed int64) Table {
	ctx := context.Background()

	// --- (a) ingest overhead: anomaly stage on vs off -----------------------
	cfg := sim.Config{Seed: seed, NumVessels: 1500, Duration: 20 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	const reps = 5
	var offRate, onRate float64
	var profiled int
	oneRun := func(withAnomaly bool) float64 {
		icfg := ingest.Config{
			Pipeline: core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60},
		}
		if withAnomaly {
			icfg.Anomaly = &anomaly.Config{}
		}
		// Level the heap between runs so one config doesn't inherit the
		// other's (or an earlier experiment's) GC debt.
		runtime.GC()
		e := ingest.New(icfg)
		e.Start(ctx)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range e.Alerts() {
			}
		}()
		t0 := time.Now()
		for i := range run.Positions {
			o := &run.Positions[i]
			e.Ingest(ctx, o.At, &o.Report)
		}
		e.Close()
		<-drained
		wall := time.Since(t0)
		if as := e.Anomalies(); as != nil {
			profiled = as.VesselCount()
		}
		e.Wait()
		return float64(len(run.Positions)) / wall.Seconds()
	}
	// Interleave the configs rep by rep (best-of-reps each) so slow
	// machine-level drift hits both sides symmetrically instead of
	// biasing whichever config runs second.
	for rep := 0; rep < reps; rep++ {
		if r := oneRun(false); r > offRate {
			offRate = r
		}
		if r := oneRun(true); r > onRate {
			onRate = r
		}
	}

	// --- (b) detection quality vs injected truth ----------------------------
	// Identity spoofing silences the true MMSI without a dark label, which
	// would miscount honest gap detections as false positives — off here.
	// Dark rendezvous are scheduled explicitly (DefaultAnomalyRates leaves
	// them to the operator) so the CEP matcher has labelled meetings.
	dcfg := sim.Config{Seed: seed + 1, NumVessels: 300, Duration: 3 * time.Hour, TickSec: 5}
	dcfg.DefaultAnomalyRates()
	dcfg.SpoofShipFrac = 0
	dcfg.DarkRendezvousFrac = 0.08
	drun, err := sim.Simulate(dcfg)
	if err != nil {
		panic(err)
	}
	stages := anomaly.NewStages(4, anomaly.Config{RecentGaps: 1 << 14})
	for i := range drun.Positions {
		o := &drun.Positions[i]
		st := model.FromReport(o.At, &o.Report)
		if err := stages.ShardFor(st.MMSI).Append(st); err != nil {
			panic(err)
		}
	}
	firstAt, lastAt := map[uint32]time.Time{}, map[uint32]time.Time{}
	for i := range drun.Positions {
		o := &drun.Positions[i]
		if _, ok := firstAt[o.Report.MMSI]; !ok {
			firstAt[o.Report.MMSI] = o.At
		}
		lastAt[o.Report.MMSI] = o.At
	}
	overlaps := func(aFrom, aTo, bFrom, bTo time.Time) bool {
		return aFrom.Before(bTo) && bFrom.Before(aTo)
	}

	// Gap recognition vs scheduled dark windows. The truth denominator
	// counts only windows the stream can reveal: long enough to cross the
	// gap threshold, started after the vessel's first received report and
	// ended before its last (the silence has a closing edge).
	darks := map[uint32][]sim.TruthEvent{}
	for _, ev := range drun.Events {
		if ev.Kind == sim.EventDark {
			darks[ev.MMSI] = append(darks[ev.MMSI], ev)
		}
	}
	gaps := stages.RecentGaps()
	gapTP := 0
	for _, g := range gaps {
		for _, ev := range darks[g.MMSI] {
			if overlaps(g.Before.At, g.After.At, ev.Start, ev.End) {
				gapTP++
				break
			}
		}
	}
	revealable := func(ev sim.TruthEvent) bool {
		return ev.End.Sub(ev.Start) >= query.AnomalyGapThreshold &&
			ev.Start.After(firstAt[ev.MMSI]) && ev.End.Before(lastAt[ev.MMSI])
	}
	var darkWindows, darkHit int
	for _, evs := range darks {
		for _, ev := range evs {
			if !revealable(ev) {
				continue
			}
			darkWindows++
			for _, g := range gaps {
				if g.MMSI == ev.MMSI && overlaps(g.Before.At, g.After.At, ev.Start, ev.End) {
					darkHit++
					break
				}
			}
		}
	}

	// Possible-rendezvous CEP vs dark meetings: the truth set is the
	// rendezvous whose both participants hold a dark window over the
	// meeting (revealable as above); an alert matches on the unordered
	// pair plus window overlap.
	type pair struct{ a, b uint32 }
	norm := func(a, b uint32) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	coverDark := func(mmsi uint32, ev sim.TruthEvent) bool {
		for _, d := range darks[mmsi] {
			if overlaps(d.Start, d.End, ev.Start, ev.End) && revealable(d) {
				return true
			}
		}
		return false
	}
	meetings := map[pair]sim.TruthEvent{}
	for _, ev := range drun.Events {
		if ev.Kind == sim.EventRendezvous && coverDark(ev.MMSI, ev) && coverDark(ev.Other, ev) {
			meetings[norm(ev.MMSI, ev.Other)] = ev
		}
	}
	alerts := stages.Alerts()
	alertTP, meetingsHit := 0, map[pair]bool{}
	for _, a := range alerts {
		ev, ok := meetings[norm(a.MMSI, a.Other)]
		if ok && overlaps(a.Start, a.At, ev.Start, ev.End) {
			alertTP++
			meetingsHit[norm(a.MMSI, a.Other)] = true
		}
	}

	// Behavior-profile separation: vessels steered off course while
	// transmitting honestly vs vessels with no injected behaviour at all.
	devSet, anomalous := map[uint32]bool{}, map[uint32]bool{}
	for _, ev := range drun.Events {
		if ev.Kind == sim.EventCourseDeviation {
			devSet[ev.MMSI] = true
		}
		anomalous[ev.MMSI] = true
		if ev.Other != 0 {
			anomalous[ev.Other] = true
		}
	}
	ranked, _ := stages.RankedAnomalies(0)
	var devSum, cleanSum float64
	var devN, cleanN int
	for _, v := range ranked {
		switch {
		case devSet[v.MMSI]:
			devSum += v.Score
			devN++
		case !anomalous[v.MMSI]:
			cleanSum += v.Score
			cleanN++
		}
	}

	t := Table{
		ID: "E21", Title: "streaming anomaly lane: ingest overhead and detection quality",
		Cols: []string{"measurement", "n", "result", "baseline", "delta"},
	}
	t.Rows = append(t.Rows,
		[]string{"ingest msg/s, anomaly stage off", f("%d msgs", len(run.Positions)),
			f("%.0f msg/s", offRate), "—", "—"},
		[]string{"ingest msg/s, anomaly stage on", f("%d vessels profiled", profiled),
			f("%.0f msg/s", onRate), f("%.0f msg/s", offRate),
			f("%+.1f%% overhead", 100*(offRate-onRate)/offRate)},
		[]string{"gap recognition vs dark windows", f("%d gaps / %d windows", len(gaps), darkWindows),
			f("%.2f recall", ratio(darkHit, darkWindows)),
			f("%.2f dark base rate", ratio(gapTP, len(gaps))), "—"},
		[]string{"possible-rendezvous CEP vs dark meetings", f("%d alerts / %d meetings", len(alerts), len(meetings)),
			f("%.2f precision", ratio(alertTP, len(alerts))),
			f("%.2f recall", ratio(len(meetingsHit), len(meetings))),
			f("%.0f× over base rate", ratio(alertTP, len(alerts))/ratio(gapTP, len(gaps)))},
	)
	if devN > 0 && cleanN > 0 && cleanSum > 0 {
		devMean, cleanMean := devSum/float64(devN), cleanSum/float64(cleanN)
		t.Rows = append(t.Rows, []string{
			"profile shift score, course-deviation vs clean", f("%d dev / %d clean vessels", devN, cleanN),
			f("%.3f mean score", devMean), f("%.3f mean score", cleanMean),
			f("%.1f× separation", devMean/cleanMean)})
	}
	t.Notes = append(t.Notes,
		f("overhead is best-of-%d full-feed ingest runs per config, configs interleaved rep by rep, stage on vs off in the post-synopsis tee (positive = stage slower); target ≤5%%", reps),
		"gap recall counts revealable dark windows (≥ gap threshold, closed by a later report) the stage recognised; most detected gaps are honest satellite-coverage silences, so the labelled share is a base rate, not detector precision — a silence alone is weak evidence, which is why the CEP correlates pairs",
		"rendezvous truth = scheduled meetings whose both participants hold a revealable dark window over the meeting; alerts match on the unordered pair plus window overlap",
		"profile row: mean distribution-shift score of honestly-transmitting course-deviation vessels vs vessels with no injected behaviour (higher separation = better ranking)")
	return t
}

// ratio is a safe divide for precision/recall rows (0/0 reads as 0).
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// E22 prices the incident-observability surface the way E19 priced the
// metrics registry: full-feed ingest with the flight recorder attached
// to every layer and the health surface evaluated by a live consumer,
// against the identical engine with both absent. The always-on bet is
// that a Record is one atomic add plus a short slot lock, so the
// recorder can stay armed in production and the ring already holds the
// incident when one happens; this experiment is the bet's receipt.
func E22(seed int64) Table {
	cfg := sim.Config{Seed: seed, NumVessels: 1500, Duration: 20 * time.Minute, TickSec: 2}
	cfg.DefaultAnomalyRates()
	run, err := sim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	const reps = 15
	var recorded uint64
	oneRun := func(withFlight bool) float64 {
		// A wired stack on both sides — persistence flush plus a tiered
		// store whose 1/16th budget keeps evictions firing — so the
		// flight-on run has real transitions to record instead of pricing
		// an idle ring against an idle engine. Everything stays in memory
		// (Mem backend, map-backed spill objects): the experiment prices
		// the recorder, not the disk, and disk jitter would swamp a
		// sub-percent signal.
		icfg := ingest.Config{
			// Event/quality detection stays off (E18's idiom): neither is
			// flight-instrumented, and their bursty CPU would only add
			// variance to a sub-percent comparison.
			Pipeline:       core.Config{Zones: run.Config.World.Zones, SynopsisToleranceM: 60, DisableEvents: true, DisableQuality: true},
			Shards:         2,
			Backend:        store.NewMem(),
			Flush:          store.FlushConfig{Queue: 1024, Batch: 256},
			MemoryBudget:   int64(len(run.Positions)) * int64(tstore.PointBytes) / 16,
			TierObjects:    newMemObjects(),
			TierCheckEvery: 10 * time.Millisecond,
		}
		var flight *obs.Flight
		if withFlight {
			flight = obs.NewFlight(4096)
			icfg.Flight = flight
		}
		runtime.GC()
		e := ingest.New(icfg)
		e.Start(ctx)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range e.Alerts() {
			}
		}()
		scrapeDone := make(chan struct{})
		var scraped sync.WaitGroup
		if withFlight {
			// A live consumer, like E19's scraper: /readyz evaluated and
			// /debug/flight rendered twice a second while ingest runs, so
			// the measured overhead includes what the surfaces cost to
			// serve, not just to feed. (Twice a second is already several
			// times hotter than a real readiness prober; a 50ms cadence
			// would price the consumer, not the recorder.)
			h := e.Health(ingest.HealthOptions{})
			scraped.Add(1)
			go func() {
				defer scraped.Done()
				tick := time.NewTicker(500 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-scrapeDone:
						return
					case <-tick.C:
						h.Evaluate()
						var sb strings.Builder
						if err := flight.WriteJSON(&sb, obs.FlightFilter{}); err != nil {
							panic(err)
						}
					}
				}
			}()
		}
		// Replay the feed several times per run (the bench-smoke idiom:
		// repeats dedupe in the archive but still pay the full decode/
		// shard/live path), so one measurement spans seconds instead of
		// sub-second slices that machine jitter dominates.
		const passes = 12
		t0 := time.Now()
		for pass := 0; pass < passes; pass++ {
			for i := range run.Positions {
				o := &run.Positions[i]
				e.Ingest(ctx, o.At, &o.Report)
			}
		}
		e.Close()
		<-drained
		wall := time.Since(t0)
		close(scrapeDone)
		scraped.Wait()
		if withFlight {
			recorded = flight.Len()
		}
		e.Wait()
		return float64(passes*len(run.Positions)) / wall.Seconds()
	}
	// Paired design: each rep runs both configs back to back (order
	// alternating rep by rep, so page-cache warm-up favours neither side)
	// and contributes one on/off throughput ratio. The reported overhead
	// is the median paired ratio — machine-level drift between reps
	// cancels inside each pair instead of contaminating a best-of.
	offRates := make([]float64, 0, reps)
	onRates := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		if rep%2 == 0 {
			offRates = append(offRates, oneRun(false))
			onRates = append(onRates, oneRun(true))
		} else {
			onRates = append(onRates, oneRun(true))
			offRates = append(offRates, oneRun(false))
		}
	}
	ratios := make([]float64, reps)
	for i := range ratios {
		ratios[i] = onRates[i] / offRates[i]
	}
	sortFloats(ratios)
	sortFloats(offRates)
	sortFloats(onRates)
	// Trimmed mean of the paired ratios: drop the top and bottom fifth
	// (scheduler outliers on a busy host), average the core.
	trim := reps / 5
	var ratioSum float64
	for _, r := range ratios[trim : reps-trim] {
		ratioSum += r
	}
	medOff, medOn := offRates[reps/2], onRates[reps/2]
	medRatio := ratioSum / float64(reps-2*trim)
	t := Table{
		ID: "E22", Title: "incident observability overhead (flight recorder + health surface on vs off)",
		Cols: []string{"config", "msgs", "median msg/s", "ingest overhead", "flight events"},
	}
	t.Rows = append(t.Rows,
		[]string{"flight+health off", f("%d", len(run.Positions)), f("%.0f", medOff), "—", "—"},
		[]string{"flight+health on + consumer", f("%d", len(run.Positions)), f("%.0f", medOn),
			f("%+.1f%%", 100*(1-medRatio)), f("%d", recorded)},
	)
	t.Notes = append(t.Notes,
		f("%d paired runs, order alternating within each pair; overhead is the trimmed mean of per-pair on/off throughput ratios, so drift between pairs cancels; 'on' wires a 4096-slot flight ring into every layer (flush, tier, hub, ingest stages) plus a 500ms-interval consumer evaluating the readiness checks and rendering the full ring as JSON", reps),
		"flight events counts transitions recorded over one full feed — load-bearing edges only (seals, stalls, evictions, drops), not per-message traffic, which is why the ring stays cheap",
		"target: ≤1% ingest-throughput overhead (positive = instrumented slower)")
	return t
}

// sortFloats orders a sample in place (E22's median-of-pairs reporting).
func sortFloats(xs []float64) { sort.Float64s(xs) }

// memObjects is a map-backed ObjectStore for E22's harness: the tier
// spills and pages against memory, so the measured overhead prices the
// flight recorder rather than temp-filesystem jitter.
type memObjects struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemObjects() *memObjects { return &memObjects{m: map[string][]byte{}} }

func (s *memObjects) Put(key string, data []byte) error {
	s.mu.Lock()
	s.m[key] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

func (s *memObjects) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), b...), nil
}

func (s *memObjects) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *memObjects) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}
