package anomaly

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/semstore"
	"repro/internal/stream"
)

var t0 = time.Date(2017, 3, 21, 12, 0, 0, 0, time.UTC)

// leg appends n samples, one a minute starting at `at`, holding speed and
// course while drifting north-east, and returns the next free instant.
func leg(out *[]model.VesselState, mmsi uint32, at time.Time, n int, lat, lon, kn, course float64) time.Time {
	for i := 0; i < n; i++ {
		*out = append(*out, model.VesselState{
			MMSI: mmsi, At: at,
			Pos:     geo.Point{Lat: lat + float64(i)*0.0004, Lon: lon + float64(i)*0.0006},
			SpeedKn: kn, CourseDeg: course,
			Status: ais.StatusUnderWayEngine,
		})
		at = at.Add(time.Minute)
	}
	return at
}

// anomalyFleet builds a deterministic fleet exercising the whole fold:
// vessel 1 stops mid-voyage (closed stop/move episodes), vessels 2 and 3
// go dark over overlapping windows close together (a feasible
// rendezvous), vessel 4 sails clean.
func anomalyFleet() map[uint32][]model.VesselState {
	fleet := make(map[uint32][]model.VesselState)

	var a []model.VesselState
	at := leg(&a, 201000001, t0, 20, 42.00, 5.00, 12, 45) // underway: closed at the stop
	at = leg(&a, 201000001, at, 15, 42.008, 5.012, 0.2, 45)
	leg(&a, 201000001, at, 20, 42.008, 5.012, 12, 45)
	fleet[201000001] = a

	var b []model.VesselState
	at = leg(&b, 201000002, t0, 11, 42.10, 5.10, 10, 30)
	leg(&b, 201000002, at.Add(40*time.Minute), 11, 42.11, 5.101, 10, 30)
	fleet[201000002] = b

	var c []model.VesselState
	at = leg(&c, 201000003, t0.Add(2*time.Minute), 11, 42.105, 5.102, 9, 210)
	leg(&c, 201000003, at.Add(38*time.Minute), 11, 42.112, 5.103, 9, 210)
	fleet[201000003] = c

	var d []model.VesselState
	leg(&d, 201000004, t0, 30, 42.30, 5.30, 14, 60)
	fleet[201000004] = d

	return fleet
}

// interleave flattens a fleet into one time-ordered feed (MMSI breaks
// ties), the order the sharded pipelines would tee records in.
func interleave(fleet map[uint32][]model.VesselState) []model.VesselState {
	var all []model.VesselState
	for _, pts := range fleet {
		all = append(all, pts...)
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].At.Before(all[j-1].At) ||
			(all[j].At.Equal(all[j-1].At) && all[j].MMSI < all[j-1].MMSI)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}

// feed routes a time-ordered feed through the stage set the way the
// ingest tee does: each record appended to its vessel's owning shard,
// shards running concurrently (per-vessel order is preserved because a
// vessel lives on exactly one shard).
func feed(ss *Stages, all []model.VesselState) {
	perShard := make([][]model.VesselState, ss.Len())
	for _, s := range all {
		i := stream.ShardOf(uint64(s.MMSI), ss.Len())
		perShard[i] = append(perShard[i], s)
	}
	var wg sync.WaitGroup
	for i, recs := range perShard {
		wg.Add(1)
		go func(st *Stage, recs []model.VesselState) {
			defer wg.Done()
			for _, r := range recs {
				st.Append(r)
			}
		}(ss.Stage(i), recs)
	}
	wg.Wait()
}

// TestStageMatchesOfflineReplay pins the anomalies equivalence contract
// at the stage level: the online fold, fed shard-concurrently, renders
// byte-identical reports to query.DeriveAnomalies replaying the same
// histories — per vessel and for the fleet ranking. Run under -race this
// also exercises the stage/shared locking.
func TestStageMatchesOfflineReplay(t *testing.T) {
	fleet := anomalyFleet()
	ss := NewStages(4, Config{})
	feed(ss, interleave(fleet))

	var derived []query.VesselAnomaly
	for mmsi, pts := range fleet {
		want := query.DeriveAnomalies(mmsi, pts)
		got, ok := ss.VesselAnomaly(mmsi)
		if !ok || got == nil {
			t.Fatalf("vessel %d missing from the stage", mmsi)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("vessel %d online report diverged from replay:\n%s\n%s", mmsi, gj, wj)
		}
		derived = append(derived, *want)
	}

	query.SortRankedAnomalies(derived)
	ranked, ok := ss.RankedAnomalies(0)
	if !ok {
		t.Fatal("stage ranking not ok")
	}
	gj, _ := json.Marshal(ranked)
	wj, _ := json.Marshal(derived)
	if string(gj) != string(wj) {
		t.Fatalf("online ranking diverged from replay:\n%s\n%s", gj, wj)
	}

	if top, _ := ss.RankedAnomalies(2); len(top) != 2 {
		t.Fatalf("limit 2 returned %d entries", len(top))
	}
	if _, ok := ss.VesselAnomaly(999); ok {
		t.Fatal("unknown vessel reported a profile")
	}
	if ss.VesselCount() != len(fleet) {
		t.Fatalf("VesselCount %d, want %d", ss.VesselCount(), len(fleet))
	}
}

// TestStageMaterialisesEpisodes pins continuous materialisation: the
// triples the stage writes as episodes close equal the batch pipeline
// (SegmentEpisodes + MaterialiseEpisodes) over the same history. The
// trailing underway leg is shorter than MinDuration, so batch drops it
// and online (which never materialises the open episode) agrees.
func TestStageMaterialisesEpisodes(t *testing.T) {
	const mmsi = 201000001
	var pts []model.VesselState
	at := leg(&pts, mmsi, t0, 20, 42.0, 5.0, 12, 45)
	at = leg(&pts, mmsi, at, 15, 42.008, 5.012, 0.2, 45)
	leg(&pts, mmsi, at, 5, 42.008, 5.012, 12, 45) // 4 min span: below MinDuration

	online := semstore.NewStore()
	ss := NewStages(1, Config{Semantic: online})
	for _, p := range pts {
		ss.Stage(0).Append(p)
	}

	batch := semstore.NewStore()
	eps := semstore.SegmentEpisodes(&model.Trajectory{MMSI: mmsi, Points: pts}, nil, semstore.DefaultEpisodeConfig())
	n := semstore.MaterialiseEpisodes(batch, eps)

	if int64(len(eps)) != ss.EpisodeCount() {
		t.Fatalf("stage closed %d episodes, batch segmenter found %d", ss.EpisodeCount(), len(eps))
	}
	if online.Len() != n {
		t.Fatalf("online store has %d triples, batch wrote %d", online.Len(), n)
	}
	gj, _ := json.Marshal(online.Match(semstore.Pattern{}))
	wj, _ := json.Marshal(batch.Match(semstore.Pattern{}))
	if string(gj) != string(wj) {
		t.Fatalf("online triples diverged from batch materialisation:\n%s\n%s", gj, wj)
	}
}

// TestStageContinuousRendezvous pins the online CEP against the offline
// sweep: the alerts the stage fires as gaps close are exactly
// events.QualifyRendezvous over the reconstructed trajectories, pushed
// through OnAlert and retained for pull readers.
func TestStageContinuousRendezvous(t *testing.T) {
	fleet := anomalyFleet()
	trajectories := make(map[uint32]*model.Trajectory)
	for mmsi, pts := range fleet {
		trajectories[mmsi] = &model.Trajectory{MMSI: mmsi, Points: pts}
	}
	want := events.QualifyRendezvous(trajectories, nil, query.AnomalyGapThreshold, events.DefaultOpenWorldConfig())
	if len(want) == 0 {
		t.Fatal("fixture produced no offline rendezvous — the test has no oracle")
	}

	ss := NewStages(2, Config{})
	var mu sync.Mutex
	var pushed []events.Alert
	ss.OnAlert(func(a events.Alert) {
		mu.Lock()
		pushed = append(pushed, a)
		mu.Unlock()
	})
	// Sequential time-ordered feed: gap closing order is deterministic,
	// so the fired alerts compare exactly.
	for _, s := range interleave(fleet) {
		ss.Stage(int(stream.ShardOf(uint64(s.MMSI), ss.Len()))).Append(s)
	}

	gj, _ := json.Marshal(pushed)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("online alerts diverged from the offline sweep:\n%s\n%s", gj, wj)
	}
	rj, _ := json.Marshal(ss.Alerts())
	if string(rj) != string(wj) {
		t.Fatalf("retained alerts diverged from the offline sweep:\n%s\n%s", rj, wj)
	}
	if ss.RendezvousCount() != int64(len(want)) {
		t.Fatalf("RendezvousCount %d, want %d", ss.RendezvousCount(), len(want))
	}
	if ss.GapCount() != 2 {
		t.Fatalf("GapCount %d, want 2", ss.GapCount())
	}
}

// BenchmarkAnomalyStage measures the per-record fold cost on the ingest
// hot path — the overhead a -anomaly daemon pays per archived record.
func BenchmarkAnomalyStage(b *testing.B) {
	var pts []model.VesselState
	leg(&pts, 201000001, t0, 2048, 42.0, 5.0, 12, 45)
	ss := NewStages(1, Config{})
	st := ss.Stage(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(pts[i%len(pts)])
	}
}
