// Package anomaly is the streaming anomaly lane: a per-shard sink
// behind the ingest engine's post-synopsis tee (alongside the hub, the
// persistence flusher and the track stage) that watches the live feed
// for behavioral anomalies as records arrive —
//
//   - a behavior profile per vessel (query.AnomalyAccumulator): sliding-
//     window distribution shift over speed/heading/position against the
//     vessel's own history, the unsupervised behavior-change blueprint
//     of Petry et al.;
//   - incremental stop/move episode extraction: every episode the
//     accumulator closes is zone-annotated and materialised into a
//     semstore.Store as it closes, instead of by offline batch
//     segmentation;
//   - continuous open-world CEP: reporting gaps are recognised the
//     moment the first sample after the silence arrives, and each
//     closed gap is matched against recent gaps of other vessels for
//     physically feasible covert meetings (events.PossibleRendezvous) —
//     the offline E13 sweep, folded into the stream.
//
// The stage answers the engine's anomalies kind through
// query.AnomalySource (Stages routes each vessel to its owning shard's
// stage), so one-shot HTTP, standing /v1/stream subscriptions,
// federation and tiering all read the same state — and the profile fold
// itself lives in internal/query, shared with the offline replay
// (query.DeriveAnomalies), so online and replayed reports are
// byte-identical. Everything is off-switchable: a nil ingest
// Config.Anomaly means no stage in the tee and zero cost.
package anomaly

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/semstore"
	"repro/internal/stream"
	"repro/internal/tstore"
	"repro/internal/zones"
)

// retainedAlerts bounds the CEP alerts the stage set keeps for pull
// readers (oldest dropped first); push consumers get every alert
// through OnAlert regardless.
const retainedAlerts = 1024

// Config tunes what the stage DOES with the stream facts the fold
// surfaces — never the fold itself. Profile thresholds, bin layouts and
// the gap threshold are query package constants, so configuring a stage
// differently cannot break the online==offline equivalence the
// anomalies kind is pinned to. The zero value is usable: default
// open-world qualification, no zone annotation, no semantic
// materialisation.
type Config struct {
	// OpenWorld tunes the continuous possible-rendezvous qualification;
	// zero value = events.DefaultOpenWorldConfig().
	OpenWorld events.OpenWorldConfig
	// Zones annotates each incrementally closed episode (an anchored
	// stop inside a port becomes moored) before materialisation; nil
	// skips annotation. Annotation happens after the fold, so reports
	// stay zone-free either way.
	Zones *zones.ZoneSet
	// Semantic, when non-nil, receives every closed episode as linked
	// triples (semstore.MaterialiseEpisode) the moment it closes — the
	// continuous version of batch materialisation. The store locks
	// internally; it may be shared with readers.
	Semantic *semstore.Store
	// RecentGaps bounds the cross-vessel ring of closed reporting gaps
	// the rendezvous matcher pairs each fresh gap against (default 256).
	RecentGaps int
}

func (c Config) normalize() Config {
	if c.OpenWorld == (events.OpenWorldConfig{}) {
		c.OpenWorld = events.DefaultOpenWorldConfig()
	}
	if c.RecentGaps <= 0 {
		c.RecentGaps = 256
	}
	return c
}

// vesselProfile is one vessel's stage state: the shared fold plus the
// monotone index the next closed episode materialises under (batch
// materialisation numbers a vessel's episodes from zero; the online
// counter does the same, one episode at a time).
type vesselProfile struct {
	acc      *query.AnomalyAccumulator
	episodes int
}

// Stage is one shard's online anomaly stage. It implements tstore.Sink,
// so the ingest engine tees archived records into it; per-vessel state
// lives here, while episode materialisation and gap matching cross
// shards through the set's shared core.
type Stage struct {
	shared *shared

	mu      sync.Mutex
	vessels map[uint32]*vesselProfile

	appends  atomic.Int64
	appendNS *obs.Histogram // sampled (1/64); nil when uninstrumented
}

var _ tstore.Sink = (*Stage)(nil)

// closedEpisode pairs an episode the fold closed with its
// materialisation index, carried out of the stage lock.
type closedEpisode struct {
	ep  semstore.Episode
	idx int
}

// Append implements tstore.Sink: every archived record advances its
// vessel's behavior profile. It never fails — like the hub, a stage
// cannot refuse traffic. Closed episodes and gaps are collected under
// the stage lock but acted on (materialised, matched, alerted) after
// release, so the ingest hot path never blocks on the shared core.
func (s *Stage) Append(recs ...model.VesselState) error {
	if len(recs) == 0 {
		return nil
	}
	var t0 time.Time
	timed := s.appendNS != nil && s.appends.Add(1)&63 == 0
	if timed {
		t0 = time.Now()
	}
	var eps []closedEpisode
	var gaps []events.Gap
	s.mu.Lock()
	for i := range recs {
		rec := recs[i]
		v, ok := s.vessels[rec.MMSI]
		if !ok {
			v = &vesselProfile{acc: query.NewAnomalyAccumulator(rec.MMSI)}
			s.vessels[rec.MMSI] = v
		}
		ep, gap := v.acc.Observe(rec)
		if ep != nil {
			eps = append(eps, closedEpisode{ep: *ep, idx: v.episodes})
			v.episodes++
		}
		if gap != nil {
			gaps = append(gaps, *gap)
		}
	}
	s.mu.Unlock()
	if timed {
		s.appendNS.ObserveSince(t0)
	}
	for _, ce := range eps {
		s.shared.episodeClosed(ce.ep, ce.idx)
	}
	for _, g := range gaps {
		s.shared.gapClosed(g)
	}
	return nil
}

// VesselAnomaly renders one vessel's report (nil, false when unknown).
func (s *Stage) VesselAnomaly(mmsi uint32) (*query.VesselAnomaly, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vessels[mmsi]
	if !ok {
		return nil, false
	}
	va := v.acc.Report()
	return va, va != nil
}

// reports renders every vessel of this shard (order unspecified; the
// set sorts the merged answer).
func (s *Stage) reports() []query.VesselAnomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]query.VesselAnomaly, 0, len(s.vessels))
	for _, v := range s.vessels {
		if va := v.acc.Report(); va != nil {
			out = append(out, *va)
		}
	}
	return out
}

// VesselCount returns the number of profiled vessels in this shard.
func (s *Stage) VesselCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vessels)
}

// shared is the cross-shard core of a stage set: episode
// materialisation and the continuous rendezvous matcher. Gaps of two
// vessels land on different shards, so pairing them has to cross the
// shard boundary; stages call in only after releasing their own lock
// (lock order: stage.mu strictly before shared.mu, never nested).
type shared struct {
	cfg     Config
	onAlert func(events.Alert) // set before traffic; nil = retain only

	episodes   atomic.Int64
	gaps       atomic.Int64
	rendezvous atomic.Int64

	mu     sync.Mutex
	recent []events.Gap // ring of the last RecentGaps closed gaps
	head   int
	alerts []events.Alert // ring of the last retainedAlerts CEP alerts
	ahead  int
}

// episodeClosed counts, annotates and (when configured) materialises
// one closed episode.
func (sh *shared) episodeClosed(e semstore.Episode, idx int) {
	sh.episodes.Add(1)
	if sh.cfg.Semantic == nil {
		return
	}
	semstore.Annotate(&e, sh.cfg.Zones)
	semstore.MaterialiseEpisode(sh.cfg.Semantic, e, idx)
}

// gapClosed matches one freshly closed gap against the recent gaps of
// every other vessel — the QualifyRendezvous pair sweep, restricted to
// pairs the new gap completes. The pair is ordered lower MMSI first and
// pruned by the same reachability heuristic, so a continuous run fires
// exactly the alerts the offline sweep finds.
func (sh *shared) gapClosed(g events.Gap) {
	sh.gaps.Add(1)
	var fired []events.Alert
	sh.mu.Lock()
	for _, h := range sh.recent {
		if h.MMSI == g.MMSI {
			continue
		}
		reach := sh.cfg.OpenWorld.MaxSpeedKn * geo.Knot *
			(g.Duration().Seconds() + h.Duration().Seconds()) / 2
		if geo.Distance(g.Before.Pos, h.Before.Pos) > reach {
			continue
		}
		a, b := h, g
		if g.MMSI < h.MMSI {
			a, b = g, h
		}
		if alert, ok := events.PossibleRendezvous(a, b, sh.cfg.OpenWorld); ok {
			fired = append(fired, alert)
		}
	}
	if len(sh.recent) < sh.cfg.RecentGaps {
		sh.recent = append(sh.recent, g)
	} else {
		sh.recent[sh.head] = g
		sh.head = (sh.head + 1) % len(sh.recent)
	}
	for _, a := range fired {
		if len(sh.alerts) < retainedAlerts {
			sh.alerts = append(sh.alerts, a)
		} else {
			sh.alerts[sh.ahead] = a
			sh.ahead = (sh.ahead + 1) % len(sh.alerts)
		}
	}
	sh.mu.Unlock()
	sh.rendezvous.Add(int64(len(fired)))
	if sh.onAlert != nil {
		for _, a := range fired {
			sh.onAlert(a)
		}
	}
}

// Stages is the sharded stage set: one Stage per ingest shard, vessels
// routed by the same hash the pipelines shard by, plus the shared
// materialisation/CEP core. It implements query.AnomalySource, so the
// engine's live source reads behavior profiles straight from it.
type Stages struct {
	stages []*Stage
	shared *shared
}

var _ query.AnomalySource = (*Stages)(nil)

// NewStages builds n stages (one per shard) over one shared core.
func NewStages(n int, cfg Config) *Stages {
	if n < 1 {
		n = 1
	}
	sh := &shared{cfg: cfg.normalize()}
	ss := &Stages{stages: make([]*Stage, n), shared: sh}
	for i := range ss.stages {
		ss.stages[i] = &Stage{shared: sh, vessels: make(map[uint32]*vesselProfile)}
	}
	return ss
}

// Len returns the shard count.
func (ss *Stages) Len() int { return len(ss.stages) }

// Stage returns shard i's stage (for tee attachment).
func (ss *Stages) Stage(i int) *Stage { return ss.stages[i] }

// ShardFor returns the stage owning a vessel.
func (ss *Stages) ShardFor(mmsi uint32) *Stage {
	return ss.stages[stream.ShardOf(uint64(mmsi), len(ss.stages))]
}

// OnAlert installs the CEP alert consumer (the ingest engine wires the
// hub's alert fan-out here). Set before the stages receive traffic; it
// is called outside every stage lock.
func (ss *Stages) OnAlert(fn func(events.Alert)) { ss.shared.onAlert = fn }

// VesselAnomaly implements query.AnomalySource.
func (ss *Stages) VesselAnomaly(mmsi uint32) (*query.VesselAnomaly, bool) {
	return ss.ShardFor(mmsi).VesselAnomaly(mmsi)
}

// RankedAnomalies implements query.AnomalySource: every shard's reports
// merged, sorted score-descending (MMSI ascending on ties) and
// truncated to limit when limit > 0.
func (ss *Stages) RankedAnomalies(limit int) ([]query.VesselAnomaly, bool) {
	var out []query.VesselAnomaly
	for _, st := range ss.stages {
		out = append(out, st.reports()...)
	}
	query.SortRankedAnomalies(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, true
}

// VesselCount sums profiled vessels across stages.
func (ss *Stages) VesselCount() int {
	n := 0
	for _, st := range ss.stages {
		n += st.VesselCount()
	}
	return n
}

// EpisodeCount returns closed (kept) stop/move episodes so far.
func (ss *Stages) EpisodeCount() int64 { return ss.shared.episodes.Load() }

// GapCount returns reporting gaps recognised so far.
func (ss *Stages) GapCount() int64 { return ss.shared.gaps.Load() }

// RendezvousCount returns possible-rendezvous alerts fired so far.
func (ss *Stages) RendezvousCount() int64 { return ss.shared.rendezvous.Load() }

// RecentGaps returns the cross-vessel ring of closed reporting gaps,
// oldest first (at most Config.RecentGaps — raise it when scoring a
// whole run, as E21 does).
func (ss *Stages) RecentGaps() []events.Gap {
	sh := ss.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]events.Gap, 0, len(sh.recent))
	out = append(out, sh.recent[sh.head:]...)
	out = append(out, sh.recent[:sh.head]...)
	return out
}

// Alerts returns the retained CEP alerts, oldest first (at most the
// last retainedAlerts; push consumers via OnAlert see every alert).
func (ss *Stages) Alerts() []events.Alert {
	sh := ss.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]events.Alert, 0, len(sh.alerts))
	out = append(out, sh.alerts[sh.ahead:]...)
	out = append(out, sh.alerts[:sh.ahead]...)
	return out
}

// Instrument registers the stage-set series with reg: profiled-vessel
// gauge, episode/gap/rendezvous counters, sampled append cost, and the
// semantic-store triple gauge when materialisation is on.
func (ss *Stages) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("anomaly_vessels", func() float64 { return float64(ss.VesselCount()) })
	reg.CounterFunc("anomaly_episodes_total", func() float64 { return float64(ss.EpisodeCount()) })
	reg.CounterFunc("anomaly_gaps_total", func() float64 { return float64(ss.GapCount()) })
	reg.CounterFunc("anomaly_rendezvous_total", func() float64 { return float64(ss.RendezvousCount()) })
	if st := ss.shared.cfg.Semantic; st != nil {
		reg.GaugeFunc("anomaly_semantic_triples", func() float64 { return float64(st.Len()) })
	}
	appendNS := reg.Histogram("anomaly_append_ns")
	for _, st := range ss.stages {
		st.appendNS = appendNS
	}
}
