// Package model defines the canonical moving-object types shared by the
// analytical layers: the timestamped kinematic state of a vessel and the
// trajectory (time-ordered state sequence). Keeping them in one small
// package lets the store, synopsis, event, forecast and visual-analytics
// layers interoperate without conversion glue.
package model

import (
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// VesselState is one timestamped kinematic sample of one vessel.
type VesselState struct {
	MMSI      uint32
	At        time.Time
	Pos       geo.Point
	SpeedKn   float64
	CourseDeg float64
	Status    ais.NavStatus
}

// Velocity returns the state's velocity in SI units.
func (s VesselState) Velocity() geo.Velocity {
	return geo.Velocity{SpeedMS: s.SpeedKn * geo.Knot, CourseDg: s.CourseDeg}
}

// FromReport converts a received position report into a state sample.
func FromReport(at time.Time, r *ais.PositionReport) VesselState {
	return VesselState{
		MMSI:      r.MMSI,
		At:        at,
		Pos:       r.Position,
		SpeedKn:   r.SpeedKn,
		CourseDeg: r.CourseDeg,
		Status:    r.Status,
	}
}

// Trajectory is a time-ordered sequence of states of one vessel.
type Trajectory struct {
	MMSI   uint32
	Points []VesselState
}

// Len returns the number of points.
func (t *Trajectory) Len() int { return len(t.Points) }

// Start returns the first sample time (zero if empty).
func (t *Trajectory) Start() time.Time {
	if len(t.Points) == 0 {
		return time.Time{}
	}
	return t.Points[0].At
}

// End returns the last sample time (zero if empty).
func (t *Trajectory) End() time.Time {
	if len(t.Points) == 0 {
		return time.Time{}
	}
	return t.Points[len(t.Points)-1].At
}

// Duration returns End − Start.
func (t *Trajectory) Duration() time.Duration { return t.End().Sub(t.Start()) }

// Bounds returns the spatial bounding box of the trajectory.
func (t *Trajectory) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, p := range t.Points {
		r = r.Extend(p.Pos)
	}
	return r
}

// Length returns the travelled great-circle length in metres.
func (t *Trajectory) Length() float64 {
	var total float64
	for i := 1; i < len(t.Points); i++ {
		total += geo.Distance(t.Points[i-1].Pos, t.Points[i].Pos)
	}
	return total
}

// Sort orders the points by time (stable) in place.
func (t *Trajectory) Sort() {
	sort.SliceStable(t.Points, func(i, j int) bool {
		return t.Points[i].At.Before(t.Points[j].At)
	})
}

// At interpolates the vessel state at the given time: positions follow the
// great circle between the bracketing samples, speeds and courses are held
// from the earlier sample. Times outside the trajectory clamp to the ends;
// ok is false only for an empty trajectory.
func (t *Trajectory) At(at time.Time) (VesselState, bool) {
	n := len(t.Points)
	if n == 0 {
		return VesselState{}, false
	}
	if !at.After(t.Points[0].At) {
		return t.Points[0], true
	}
	if !at.Before(t.Points[n-1].At) {
		return t.Points[n-1], true
	}
	// Binary search for the bracketing pair.
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if t.Points[mid].At.After(at) {
			hi = mid
		} else {
			lo = mid
		}
	}
	a, b := t.Points[lo], t.Points[hi]
	span := b.At.Sub(a.At).Seconds()
	if span <= 0 {
		return a, true
	}
	f := at.Sub(a.At).Seconds() / span
	out := a
	out.At = at
	out.Pos = geo.Interpolate(a.Pos, b.Pos, f)
	return out, true
}

// Slice returns the sub-trajectory with points in [from, to].
func (t *Trajectory) Slice(from, to time.Time) *Trajectory {
	out := &Trajectory{MMSI: t.MMSI}
	for _, p := range t.Points {
		if !p.At.Before(from) && !p.At.After(to) {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Resample returns the trajectory sampled at fixed intervals across its
// duration (inclusive of both ends when possible).
func (t *Trajectory) Resample(every time.Duration) *Trajectory {
	out := &Trajectory{MMSI: t.MMSI}
	if len(t.Points) == 0 || every <= 0 {
		return out
	}
	for at := t.Start(); !at.After(t.End()); at = at.Add(every) {
		s, _ := t.At(at)
		out.Points = append(out.Points, s)
	}
	return out
}
