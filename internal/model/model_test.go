package model

import (
	"math"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

func t0() time.Time { return time.Date(2017, 3, 21, 12, 0, 0, 0, time.UTC) }

func straightTrajectory(n int, stepSec float64, speedKn float64) *Trajectory {
	tr := &Trajectory{MMSI: 1}
	pos := geo.Point{Lat: 43, Lon: 5}
	v := geo.Velocity{SpeedMS: speedKn * geo.Knot, CourseDg: 90}
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, VesselState{
			MMSI: 1, At: t0().Add(time.Duration(float64(i)*stepSec) * time.Second),
			Pos: pos, SpeedKn: speedKn, CourseDeg: 90,
		})
		pos = geo.Project(pos, v, stepSec)
	}
	return tr
}

func TestTrajectoryBasics(t *testing.T) {
	tr := straightTrajectory(10, 60, 12)
	if tr.Len() != 10 {
		t.Fatalf("len %d", tr.Len())
	}
	if got := tr.Duration(); got != 9*time.Minute {
		t.Errorf("duration %v", got)
	}
	// 12 kn for 9 minutes ≈ 3333 m.
	wantLen := 12 * geo.Knot * 9 * 60
	if math.Abs(tr.Length()-wantLen) > wantLen*0.01 {
		t.Errorf("length %.0f, want ≈%.0f", tr.Length(), wantLen)
	}
	if !tr.Bounds().Contains(tr.Points[5].Pos) {
		t.Error("bounds must contain interior points")
	}
}

func TestTrajectoryAtInterpolates(t *testing.T) {
	tr := straightTrajectory(10, 60, 12)
	mid := t0().Add(90 * time.Second) // halfway between samples 1 and 2
	s, ok := tr.At(mid)
	if !ok {
		t.Fatal("At failed")
	}
	expected := geo.Midpoint(tr.Points[1].Pos, tr.Points[2].Pos)
	if d := geo.Distance(s.Pos, expected); d > 1 {
		t.Errorf("interpolated position off by %.2f m", d)
	}
	if s.At != mid {
		t.Error("interpolated state should carry the query time")
	}
}

func TestTrajectoryAtClamps(t *testing.T) {
	tr := straightTrajectory(5, 60, 10)
	before, _ := tr.At(t0().Add(-time.Hour))
	after, _ := tr.At(t0().Add(time.Hour))
	if before.Pos != tr.Points[0].Pos || after.Pos != tr.Points[4].Pos {
		t.Error("At should clamp outside the time span")
	}
	var empty Trajectory
	if _, ok := empty.At(t0()); ok {
		t.Error("empty trajectory should report !ok")
	}
}

func TestTrajectorySliceAndSort(t *testing.T) {
	tr := straightTrajectory(10, 60, 10)
	sub := tr.Slice(t0().Add(2*time.Minute), t0().Add(5*time.Minute))
	if sub.Len() != 4 {
		t.Fatalf("slice len %d, want 4", sub.Len())
	}
	// Shuffle then sort restores order.
	tr.Points[0], tr.Points[9] = tr.Points[9], tr.Points[0]
	tr.Sort()
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].At.Before(tr.Points[i-1].At) {
			t.Fatal("Sort failed")
		}
	}
}

func TestResample(t *testing.T) {
	tr := straightTrajectory(10, 60, 10) // 9 minutes
	rs := tr.Resample(30 * time.Second)
	if rs.Len() != 19 {
		t.Fatalf("resample len %d, want 19", rs.Len())
	}
	for i := 1; i < rs.Len(); i++ {
		if got := rs.Points[i].At.Sub(rs.Points[i-1].At); got != 30*time.Second {
			t.Fatalf("uneven resample step %v", got)
		}
	}
	if (&Trajectory{}).Resample(time.Second).Len() != 0 {
		t.Error("empty resample should be empty")
	}
}

func TestFromReport(t *testing.T) {
	r := &ais.PositionReport{
		MMSI: 7, Position: geo.Point{Lat: 1, Lon: 2},
		SpeedKn: 9.5, CourseDeg: 45, Status: ais.StatusFishing,
	}
	s := FromReport(t0(), r)
	if s.MMSI != 7 || s.Pos != r.Position || s.SpeedKn != 9.5 || s.Status != ais.StatusFishing {
		t.Errorf("conversion lost fields: %+v", s)
	}
	v := s.Velocity()
	if math.Abs(v.SpeedMS-9.5*geo.Knot) > 1e-9 {
		t.Error("velocity conversion wrong")
	}
}
