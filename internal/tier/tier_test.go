package tier_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tier"
	"repro/internal/tstore"
)

// fillStores builds two identical archives (control stays fully
// resident, tiered gets evicted) from a deterministic synthetic fleet
// with full-precision floats and unique per-vessel timestamps.
func fillStores(seed int64, vessels, pointsPer int) (control, tiered *tstore.Store) {
	rng := rand.New(rand.NewSource(seed))
	control, tiered = tstore.New(), tstore.New()
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	for v := 0; v < vessels; v++ {
		mmsi := uint32(201000000 + v)
		lat := 32 + rng.Float64()*12
		lon := rng.Float64() * 30
		for i := 0; i < pointsPer; i++ {
			s := model.VesselState{
				MMSI: mmsi,
				At:   t0.Add(time.Duration(v) * time.Millisecond).Add(time.Duration(i*10) * time.Second),
				Pos: geo.Point{
					Lat: lat + float64(i)*0.0004 + rng.Float64()*1e-6,
					Lon: lon + rng.Float64()*1e-6,
				},
				SpeedKn:   10 + rng.Float64(),
				CourseDeg: rng.Float64() * 360,
				Status:    0,
			}
			control.Append(s)
			tiered.Append(s)
		}
	}
	return control, tiered
}

func newManager(t *testing.T, budget int64, stores ...*tstore.Store) *tier.Manager {
	t.Helper()
	objects, err := store.NewFSObjects(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := tier.NewManager(tier.Config{
		Budget: budget, CheckEvery: -1, Objects: objects,
	}, stores...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func statesEqual(t *testing.T, what string, got, want []model.VesselState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d states, want %d", what, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.MMSI != w.MMSI || !g.At.Equal(w.At) || g.Pos != w.Pos ||
			g.SpeedKn != w.SpeedKn || g.CourseDeg != w.CourseDeg || g.Status != w.Status {
			t.Fatalf("%s: state %d differs:\n got %+v\nwant %+v", what, i, g, w)
		}
	}
}

// TestEvictionIsInvisible evicts every vessel down to its stub and
// checks each read kind returns exactly what the fully resident control
// store returns — including the float64 bits the WAL encoding would have
// quantised away.
func TestEvictionIsInvisible(t *testing.T) {
	control, tiered := fillStores(1, 30, 300)
	m := newManager(t, 1, tiered) // 1-byte budget: evict everything evictable

	if n := m.Check(); n == 0 {
		t.Fatal("expected evictions under a 1-byte budget")
	}
	tc := tiered.Tier()
	if tc.ResidentPoints != 0 || tc.EvictedVessels != 30 {
		t.Fatalf("expected a fully evicted archive, got %+v", tc)
	}
	if tiered.Len() != control.Len() {
		t.Fatalf("Len changed across eviction: %d != %d", tiered.Len(), control.Len())
	}

	mmsi := uint32(201000007)
	statesEqual(t, "Trajectory",
		tiered.Trajectory(mmsi).Points, control.Trajectory(mmsi).Points)

	from := time.Date(2017, 3, 21, 0, 10, 0, 0, time.UTC)
	to := from.Add(20 * time.Minute)
	statesEqual(t, "TimeRange",
		tiered.TimeRange(mmsi, from, to), control.TimeRange(mmsi, from, to))

	box := geo.Rect{MinLat: 33, MinLon: 2, MaxLat: 41, MaxLon: 22}
	statesEqual(t, "SpaceTime",
		tiered.SpaceTime(box, from, to), control.SpaceTime(box, from, to))

	statesEqual(t, "LatestStates", tiered.LatestStates(), control.LatestStates())

	gl, okG := tiered.Latest(mmsi)
	wl, okW := control.Latest(mmsi)
	if okG != okW || gl != wl {
		t.Fatalf("Latest differs: %v/%v vs %v/%v", gl, okG, wl, okW)
	}

	snG, snW := tiered.SpatialSnapshot(), control.SpatialSnapshot()
	if snG.Len() != snW.Len() {
		t.Fatalf("snapshot Len: %d != %d", snG.Len(), snW.Len())
	}
	statesEqual(t, "Snapshot.Search", snG.Search(box, from, to), snW.Search(box, from, to))
	p := geo.Point{Lat: 38, Lon: 12}
	at := from.Add(5 * time.Minute)
	statesEqual(t, "NearestVessels",
		snG.NearestVessels(p, at, 15*time.Minute, 7),
		snW.NearestVessels(p, at, 15*time.Minute, 7))

	if err := tiered.PageErr(); err != nil {
		t.Fatalf("page error: %v", err)
	}
	if st := m.Stats(); st.PageIns == 0 {
		t.Fatalf("expected page-ins to be counted, got %+v", st)
	}
}

// TestAppendAfterEvictionMerges checks the stub + fresh-resident-tail
// shape: appends to an evicted vessel land resident and reads merge them
// with the spilled history.
func TestAppendAfterEvictionMerges(t *testing.T) {
	control, tiered := fillStores(2, 4, 100)
	m := newManager(t, 1, tiered)
	if n := m.Check(); n == 0 {
		t.Fatal("expected evictions")
	}
	// New traffic for one vessel, including a straggler that is older
	// than the evicted span's end.
	mmsi := uint32(201000002)
	last, _ := control.Latest(mmsi)
	fresh := []model.VesselState{
		{MMSI: mmsi, At: last.At.Add(-5 * time.Second), Pos: geo.Point{Lat: 35, Lon: 5}, SpeedKn: 1.25},
		{MMSI: mmsi, At: last.At.Add(10 * time.Second), Pos: geo.Point{Lat: 35.1, Lon: 5.1}, SpeedKn: 2.5},
	}
	for _, s := range fresh {
		control.Append(s)
		tiered.Append(s)
	}
	statesEqual(t, "Trajectory after append",
		tiered.Trajectory(mmsi).Points, control.Trajectory(mmsi).Points)
	if tiered.Tier().ResidentPoints != len(fresh) {
		t.Fatalf("expected %d resident points, got %+v", len(fresh), tiered.Tier())
	}
	// Re-evicting spills only the fresh tail into new chunks.
	if n := m.Check(); n == 0 {
		t.Fatal("expected the fresh tail to evict")
	}
	statesEqual(t, "Trajectory after re-eviction",
		tiered.Trajectory(mmsi).Points, control.Trajectory(mmsi).Points)
}

// TestWriteToPagesEvicted checks snapshot serialisation over a partially
// evicted store matches the control byte-for-byte.
func TestWriteToPagesEvicted(t *testing.T) {
	control, tiered := fillStores(3, 6, 120)
	m := newManager(t, int64(tstore.PointBytes)*200, tiered)
	if n := m.Check(); n == 0 {
		t.Fatal("expected evictions")
	}
	var a, b bytesBuffer
	if _, err := control.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := tiered.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !a.equal(&b) {
		t.Fatal("WriteTo bytes differ between evicted and resident stores")
	}
}

type bytesBuffer struct{ data []byte }

func (b *bytesBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *bytesBuffer) equal(o *bytesBuffer) bool {
	if len(b.data) != len(o.data) {
		return false
	}
	for i := range b.data {
		if b.data[i] != o.data[i] {
			return false
		}
	}
	return true
}
