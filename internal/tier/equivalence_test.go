package tier_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/tstore"
)

// TestQueryEquivalenceUnderEviction is the tiered-archive acceptance
// property: every query kind of the unified read surface returns
// byte-identical JSON over a store being aggressively evicted (a
// ~1-vessel memory budget, so almost the whole archive lives as stubs)
// and over a fully resident control. The first phase churns — concurrent
// appends, eviction passes and queries, which is what -race is pointed
// at; the second phase quiesces, forces a final eviction pass and
// compares the wire bytes kind by kind. Stats is compared with the
// eviction-observability fields (resident_points, evicted_vessels)
// blanked: reporting the tier IS the difference, everything else must
// match.
func TestQueryEquivalenceUnderEviction(t *testing.T) {
	const vessels, pointsPer = 40, 250
	control, tiered := fillStores(11, vessels, pointsPer)
	m := newManager(t, int64(tstore.PointBytes), tiered)

	ctrlEng := query.NewEngine(query.NewStoreSource("archive", control))
	tierEng := query.NewEngine(query.NewStoreSource("archive", tiered))

	// --- churn phase: eviction, page-back and appends race ------------------
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	box := query.Box{MinLat: 33, MinLon: 2, MaxLat: 41, MaxLon: 22}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // evictor
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Check()
			}
		}
	}()
	go func() { // reader: page-back under way while eviction runs
		defer wg.Done()
		reqs := []query.Request{
			{Kind: query.KindTrajectory, MMSI: 201000003},
			{Kind: query.KindSpaceTime, Box: &box, From: t0, To: t0.Add(20 * time.Minute)},
			{Kind: query.KindNearest, Lat: 38, Lon: 12, At: t0.Add(10 * time.Minute), Tol: query.Duration(15 * time.Minute), K: 5},
			{Kind: query.KindLivePicture, Box: &box},
			{Kind: query.KindStats},
			{Kind: query.KindTrack, MMSI: 201000003},
			{Kind: query.KindPredict, MMSI: 201000005, Horizon: query.Duration(15 * time.Minute)},
			{Kind: query.KindQuality, MMSI: 201000007},
			{Kind: query.KindAnomalies, MMSI: 201000009},
			{Kind: query.KindAnomalies, Limit: 5},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if _, err := tierEng.Query(reqs[i%len(reqs)]); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	appended := make([]model.VesselState, 0, 200)
	go func() { // appender: fresh traffic keeps some vessels hot mid-eviction
		defer wg.Done()
		at := t0.Add(time.Duration(pointsPer*10) * time.Second)
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := model.VesselState{
				MMSI: uint32(201000000 + i%vessels),
				At:   at.Add(time.Duration(i) * 17 * time.Millisecond),
				// i-scaled epsilon keeps every appended coordinate unique:
				// co-located points tie on distance, and tie order is
				// heap-order dependent in any snapshot, evicted or not.
				Pos: geo.Point{
					Lat: 36 + float64(i%7)*0.3 + float64(i)*1e-8,
					Lon: 8 + float64(i%11)*0.2 + float64(i)*1e-8,
				},
				SpeedKn: 12.345 + float64(i)/1000, CourseDeg: float64(i % 360),
			}
			// Tiered first so the control store never leads: at quiesce
			// both hold the identical set either way.
			tiered.Append(s)
			control.Append(s)
			appended = append(appended, s)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Drain: make sure every appended state reached both stores (the
	// appender may have been stopped early; appended tracks reality).
	if tiered.Len() != control.Len() {
		t.Fatalf("churn desynced the stores: %d vs %d", tiered.Len(), control.Len())
	}
	if err := tiered.PageErr(); err != nil {
		t.Fatalf("page error during churn: %v", err)
	}

	// --- equivalence phase: evict hard, then compare wire bytes -------------
	m.Check()
	if tc := tiered.Tier(); tc.EvictedPoints == 0 {
		t.Fatalf("nothing evicted before the comparison: %+v", tc)
	}

	reqs := map[string]query.Request{
		"trajectory":          {Kind: query.KindTrajectory, MMSI: 201000003},
		"trajectory-windowed": {Kind: query.KindTrajectory, MMSI: 201000017, From: t0.Add(5 * time.Minute), To: t0.Add(25 * time.Minute)},
		"spacetime":           {Kind: query.KindSpaceTime, Box: &box, From: t0.Add(3 * time.Minute), To: t0.Add(30 * time.Minute)},
		"spacetime-unbounded": {Kind: query.KindSpaceTime, Box: &box},
		"nearest":             {Kind: query.KindNearest, Lat: 38, Lon: 12, At: t0.Add(10 * time.Minute), Tol: query.Duration(15 * time.Minute), K: 7},
		// Off the appender's lat/lon grid: vessels at identical distances
		// tie, and tie order among equal distances is heap-order
		// dependent in any snapshot — not an eviction property.
		"nearest-timeless": {Kind: query.KindNearest, Lat: 36.051, Lon: 10.037, K: 5},
		"live":             {Kind: query.KindLivePicture, Box: &box},
		"situation":        {Kind: query.KindSituation, Box: &box, At: t0.Add(30 * time.Minute), Rows: 8, Cols: 16},
		"alerts":           {Kind: query.KindAlertHistory},
		"stats":            {Kind: query.KindStats},
		// Track intelligence replays the full trajectory, so an evicted
		// vessel's fused state, forecast and integrity score are rebuilt
		// from paged-back points — byte-identical or the page-back lost data.
		"track":   {Kind: query.KindTrack, MMSI: 201000003},
		"predict": {Kind: query.KindPredict, MMSI: 201000005, Horizon: query.Duration(15 * time.Minute)},
		"quality": {Kind: query.KindQuality, MMSI: 201000007},
		// Anomalies replay the full history through the behavior fold, so
		// an evicted vessel's deviation report — and the fleet ranking,
		// which replays every vessel — rebuild from paged-back points.
		"anomalies-vessel": {Kind: query.KindAnomalies, MMSI: 201000009},
		"anomalies-ranked": {Kind: query.KindAnomalies, Limit: 5},
	}
	for name, req := range reqs {
		wantRes, err := ctrlEng.Query(req)
		if err != nil {
			t.Fatalf("%s (control): %v", name, err)
		}
		gotRes, err := tierEng.Query(req)
		if err != nil {
			t.Fatalf("%s (tiered): %v", name, err)
		}
		if req.Kind == query.KindStats {
			// The tier-observability fields are supposed to differ —
			// they report the eviction itself. Everything else must not.
			blankTierFields(wantRes)
			blankTierFields(gotRes)
		}
		want, err := json.Marshal(wantRes)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(gotRes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wire bytes differ under eviction\n got: %.400s\nwant: %.400s", name, got, want)
		}
	}
	if err := tiered.PageErr(); err != nil {
		t.Fatalf("page error during comparison: %v", err)
	}
}

func blankTierFields(res *query.Result) {
	for i := range res.Stats.Sources {
		res.Stats.Sources[i].ResidentPoints = 0
		res.Stats.Sources[i].EvictedVessels = 0
	}
}
