package tier_test

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tier"
	"repro/internal/tstore"
)

func benchRun(n int) []model.VesselState {
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	pts := make([]model.VesselState, n)
	for i := range pts {
		pts[i] = model.VesselState{
			MMSI: 201000001, At: t0.Add(time.Duration(i*10) * time.Second),
			Pos:     geo.Point{Lat: 38 + float64(i)*0.0004, Lon: 12 + float64(i)*0.0002},
			SpeedKn: 12.3, CourseDeg: 41.5,
		}
	}
	return pts
}

func benchChunkStore(b *testing.B) *tier.ChunkStore {
	b.Helper()
	objects, err := store.NewFSObjectsCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	return tier.NewChunkStore(objects, 32<<20)
}

// BenchmarkChunkSpill is the per-run eviction cost: encode one 256-point
// run and Put it as an immutable object (no fsync — spill stores are
// caches).
func BenchmarkChunkSpill(b *testing.B) {
	cs := benchChunkStore(b)
	run := benchRun(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Spill(201000001, run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkFetch is the per-chunk page-back cost with the block
// cache warm: decode 256 records out of the cached object bytes.
func BenchmarkChunkFetch(b *testing.B) {
	cs := benchChunkStore(b)
	run := benchRun(256)
	key, err := cs.Spill(201000001, run)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Fetch(key, 201000001, len(run)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEvictedStore builds a store whose single vessel is fully evicted.
func benchEvictedStore(b *testing.B, points int) *tstore.Store {
	b.Helper()
	st := tstore.New()
	for _, s := range benchRun(points) {
		st.Append(s)
	}
	objects, err := store.NewFSObjectsCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	m, err := tier.NewManager(tier.Config{Budget: 1, CheckEvery: -1, Objects: objects}, st)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	if n := m.Check(); n == 0 {
		b.Fatal("nothing evicted")
	}
	return st
}

// BenchmarkTrajectoryPageBack reads a fully evicted 4096-point vessel
// back end to end: chunk fetches (cached), decode and merge.
func BenchmarkTrajectoryPageBack(b *testing.B) {
	st := benchEvictedStore(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr := st.Trajectory(201000001); len(tr.Points) != 4096 {
			b.Fatalf("paged %d points", len(tr.Points))
		}
	}
}

// BenchmarkSpaceTimeEvicted vs ...Resident: the same windowed box read
// over an evicted and a resident archive — the price of answering from
// stubs.
func BenchmarkSpaceTimeEvicted(b *testing.B) {
	st := benchEvictedStore(b, 4096)
	benchSpaceTime(b, st)
}

func BenchmarkSpaceTimeResident(b *testing.B) {
	st := tstore.New()
	for _, s := range benchRun(4096) {
		st.Append(s)
	}
	benchSpaceTime(b, st)
}

func benchSpaceTime(b *testing.B, st *tstore.Store) {
	b.Helper()
	t0 := time.Date(2017, 3, 21, 0, 0, 0, 0, time.UTC)
	box := geo.Rect{MinLat: 38, MinLon: 12, MaxLat: 39, MaxLon: 13}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := st.SpaceTime(box, t0, t0.Add(3*time.Hour)); len(out) == 0 {
			b.Fatal("empty window")
		}
	}
}
