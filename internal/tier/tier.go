// Package tier makes the in-memory trajectory archive a cache over the
// durable store instead of the store itself — the exceeding-RAM layer of
// the storage stack.
//
// Two pieces:
//
//   - ChunkStore spills evicted trajectory runs as immutable objects
//     into a store.ObjectStore (a local directory, or wherever sealed
//     WAL segments migrate) in a full-fidelity encoding, and pages them
//     back through a read-through block cache with per-key singleflight
//     — concurrent queries of one evicted vessel share a single load.
//   - Manager watches the per-vessel heat of one or more tstore.Store
//     archives (last-touch clock driven by ingest appends and query
//     reads) against a resident-memory budget, and evicts the coldest
//     vessels down to their compact stubs until the archive fits.
//
// Eviction is invisible to every query kind: reads page the spans they
// need back in (and only those — the stub's chunk directory carries a
// bounding rectangle and time span per run, so windowed, boxed and
// best-first nearest reads prune unread chunks), the live picture and
// stats answer from the stub alone, and the chunk encoding preserves
// full float64 fidelity so paged-back answers are byte-identical to
// never-evicted ones. Crash durability is unchanged — the WAL/snapshot
// store (internal/store) still holds the full history; spilled chunks
// are a paging representation rebuilt after restart (stale ones are
// garbage-collected when a new Manager opens the same object store).
package tier

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tstore"
)

// chunkPrefix namespaces spill objects away from the WAL segment and
// snapshot objects that may share the ObjectStore.
const chunkPrefix = "tier/"

// Chunk object layout (version 1), little-endian:
//
//	header: magic u32 "MTCH" | version u16 | mmsi u32 | count u32
//	record: unixnano i64 | lat f64 | lon f64 | speed f64 | course f64 |
//	        status u8
//
// Unlike the WAL's quantised 33-byte record, spill records keep speed
// and course as raw float64: a page-back must reproduce the evicted
// points bit-for-bit, not merely restart-accurately.
const (
	chunkMagic      = 0x4D544348 // "MTCH"
	chunkVersion    = 1
	chunkHeaderSize = 14
	chunkRecSize    = 41
)

// ChunkStore spills evicted runs to an ObjectStore and pages them back
// through a block cache. It implements tstore.ChunkStore. Safe for
// concurrent use.
type ChunkStore struct {
	objects store.ObjectStore
	cache   *store.BlockCache

	seq         atomic.Uint64
	spills      atomic.Uint64
	spillBytes  atomic.Uint64
	fetches     atomic.Uint64
	fetchBytes  atomic.Uint64
	liveObjects atomic.Int64

	// Page-back timing (Manager.Instrument): cold fetches hit the
	// object store, cached ones are served by the block cache. Atomic
	// pointers because the manager's budget loop is already running
	// when instrumentation attaches.
	fetchColdNS   atomic.Pointer[obs.Histogram]
	fetchCachedNS atomic.Pointer[obs.Histogram]

	// flight, when attached (Manager.SetFlight), records page-back
	// failures — the moment a query needed a spilled run and the object
	// store (or the chunk itself) let it down.
	flight atomic.Pointer[obs.Flight]
}

// failFetch records one page-back failure in the flight ring and
// returns it — every Fetch error path funnels through here so the
// black box sees the incident whichever check tripped.
func (cs *ChunkStore) failFetch(key string, err error) ([]model.VesselState, error) {
	cs.flight.Load().Record(obs.FlightError, "tier", "page-back failed",
		obs.FS("key", key), obs.FS("error", err.Error()))
	return nil, err
}

// NewChunkStore builds a spill store over objects with a read cache of
// cacheBytes (default 32 MiB when <= 0).
func NewChunkStore(objects store.ObjectStore, cacheBytes int64) *ChunkStore {
	if cacheBytes <= 0 {
		cacheBytes = 32 << 20
	}
	return &ChunkStore{objects: objects, cache: store.NewBlockCache(cacheBytes)}
}

// GC deletes every spill object in the store. Stubs referencing spilled
// chunks live only in process memory, so after a restart all previous
// spill objects are unreachable garbage — a new Manager calls this once
// before its first eviction. Never call it while a Store with live stubs
// is attached.
func (cs *ChunkStore) GC() (int, error) {
	keys, err := cs.objects.List(chunkPrefix)
	if err != nil {
		return 0, err
	}
	for _, key := range keys {
		if err := cs.objects.Delete(key); err != nil {
			return 0, err
		}
		cs.cache.Drop(key)
	}
	return len(keys), nil
}

// Spill implements tstore.ChunkStore: one immutable object per run.
func (cs *ChunkStore) Spill(mmsi uint32, pts []model.VesselState) (string, error) {
	if len(pts) == 0 {
		return "", fmt.Errorf("tier: refusing to spill an empty run")
	}
	data := make([]byte, chunkHeaderSize+len(pts)*chunkRecSize)
	binary.LittleEndian.PutUint32(data[0:], chunkMagic)
	binary.LittleEndian.PutUint16(data[4:], chunkVersion)
	binary.LittleEndian.PutUint32(data[6:], mmsi)
	binary.LittleEndian.PutUint32(data[10:], uint32(len(pts)))
	off := chunkHeaderSize
	for _, p := range pts {
		binary.LittleEndian.PutUint64(data[off:], uint64(p.At.UnixNano()))
		binary.LittleEndian.PutUint64(data[off+8:], math.Float64bits(p.Pos.Lat))
		binary.LittleEndian.PutUint64(data[off+16:], math.Float64bits(p.Pos.Lon))
		binary.LittleEndian.PutUint64(data[off+24:], math.Float64bits(p.SpeedKn))
		binary.LittleEndian.PutUint64(data[off+32:], math.Float64bits(p.CourseDeg))
		data[off+40] = uint8(p.Status)
		off += chunkRecSize
	}
	key := fmt.Sprintf("%s%09d/%012d.chk", chunkPrefix, mmsi, cs.seq.Add(1))
	if err := cs.objects.Put(key, data); err != nil {
		return "", err
	}
	cs.spills.Add(1)
	cs.spillBytes.Add(uint64(len(data)))
	cs.liveObjects.Add(1)
	return key, nil
}

// Fetch implements tstore.ChunkStore: page one run back, through the
// cache (concurrent fetches of the same key share one object read).
func (cs *ChunkStore) Fetch(key string, mmsi uint32, n int) ([]model.VesselState, error) {
	coldH, cachedH := cs.fetchColdNS.Load(), cs.fetchCachedNS.Load()
	var t0 time.Time
	if coldH != nil || cachedH != nil {
		t0 = time.Now()
	}
	// missed records whether our loader ran: under singleflight a
	// concurrent fetch of the same key may do the load for us, which
	// counts as cached here — this goroutine never touched the object
	// store.
	missed := false
	data, err := cs.cache.Get(key, func() ([]byte, error) { missed = true; return cs.objects.Get(key) })
	if err != nil {
		return cs.failFetch(key, err)
	}
	if coldH != nil || cachedH != nil {
		defer func() {
			h := cachedH
			if missed {
				h = coldH
			}
			if h != nil {
				h.ObserveSince(t0) // decode included: the cost a query waits for
			}
		}()
	}
	if len(data) < chunkHeaderSize {
		return cs.failFetch(key, fmt.Errorf("tier: chunk %s shorter than its header", key))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != chunkMagic {
		return cs.failFetch(key, fmt.Errorf("tier: chunk %s has bad magic %08x", key, m))
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != chunkVersion {
		return cs.failFetch(key, fmt.Errorf("tier: chunk %s has unsupported version %d", key, v))
	}
	if m := binary.LittleEndian.Uint32(data[6:]); m != mmsi {
		return cs.failFetch(key, fmt.Errorf("tier: chunk %s belongs to vessel %d, wanted %d", key, m, mmsi))
	}
	count := int(binary.LittleEndian.Uint32(data[10:]))
	if count != n || len(data) != chunkHeaderSize+count*chunkRecSize {
		return cs.failFetch(key, fmt.Errorf("tier: chunk %s carries %d records in %d bytes, wanted %d",
			key, count, len(data), n))
	}
	pts := make([]model.VesselState, count)
	off := chunkHeaderSize
	for i := range pts {
		pts[i] = model.VesselState{
			MMSI: mmsi,
			At:   time.Unix(0, int64(binary.LittleEndian.Uint64(data[off:]))).UTC(),
			Pos: geo.Point{
				Lat: math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
				Lon: math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			},
			SpeedKn:   math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:])),
			CourseDeg: math.Float64frombits(binary.LittleEndian.Uint64(data[off+32:])),
			Status:    ais.NavStatus(data[off+40]),
		}
		off += chunkRecSize
	}
	cs.fetches.Add(1)
	cs.fetchBytes.Add(uint64(len(data)))
	return pts, nil
}

// CacheStats returns the read-cache counters.
func (cs *ChunkStore) CacheStats() store.CacheStats { return cs.cache.Stats() }

// --- eviction manager ----------------------------------------------------------

// Config parameterises a Manager. Budget is required; everything else
// defaults.
type Config struct {
	// Budget is the resident-point memory budget, in bytes, summed across
	// every watched store (floor, not exact RSS: tstore.PointBytes per
	// resident point; map, index and stub overheads ride on top).
	Budget int64
	// CheckEvery is the cadence of the background budget check (default
	// 2s; <0 disables the loop — call Check explicitly, as tests and
	// benchmarks do).
	CheckEvery time.Duration
	// Objects is where evicted runs spill (required): typically the same
	// object store sealed WAL segments migrate to, under the "tier/"
	// prefix.
	Objects store.ObjectStore
	// CacheBytes bounds the page-back block cache (default 32 MiB).
	CacheBytes int64
}

// Manager enforces a memory budget over one or more trajectory stores by
// evicting the coldest vessels (least recently appended-to or read) down
// to their stubs. One Manager owns the spill namespace of its object
// store: creating it garbage-collects spill objects left by a previous
// process.
type Manager struct {
	cfg    Config
	chunks *ChunkStore
	stores []*tstore.Store

	evictions   atomic.Uint64
	evictedPts  atomic.Uint64
	hotSkips    atomic.Uint64
	checks      atomic.Uint64
	lastEvictNs atomic.Int64 // wall ns spent inside the last eviction pass

	errMu sync.Mutex
	err   error

	// flight, when attached (SetFlight), records eviction passes and
	// spill failures; page-back failures go through the chunk store's
	// own pointer.
	flight atomic.Pointer[obs.Flight]

	closeOnce sync.Once
	done      chan struct{}
	stopped   chan struct{}
}

// SetFlight attaches a flight recorder to the manager and its chunk
// store. Safe on a live manager — the budget loop and concurrent
// fetches pick it up atomically.
func (m *Manager) SetFlight(f *obs.Flight) {
	m.flight.Store(f)
	m.chunks.flight.Store(f)
}

// NewManager builds the manager, attaches its chunk store to every
// store, garbage-collects stale spill objects, and starts the budget
// loop (unless CheckEvery < 0).
func NewManager(cfg Config, stores ...*tstore.Store) (*Manager, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("tier: Config.Budget is required")
	}
	if cfg.Objects == nil {
		return nil, fmt.Errorf("tier: Config.Objects is required")
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 2 * time.Second
	}
	if len(stores) == 0 {
		return nil, fmt.Errorf("tier: at least one store to watch is required")
	}
	m := &Manager{
		cfg:     cfg,
		chunks:  NewChunkStore(cfg.Objects, cfg.CacheBytes),
		stores:  stores,
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if _, err := m.chunks.GC(); err != nil {
		return nil, fmt.Errorf("tier: collecting stale spill objects: %w", err)
	}
	for _, st := range stores {
		st.SetChunkStore(m.chunks)
	}
	if cfg.CheckEvery > 0 {
		go m.loop()
	} else {
		close(m.stopped)
	}
	return m, nil
}

// Chunks returns the spill store (shared with the watched stores).
func (m *Manager) Chunks() *ChunkStore { return m.chunks }

// Instrument registers the tiered-archive series with reg: eviction and
// spill counters, resident/evicted gauges aggregated across the watched
// stores at scrape time, block-cache hit accounting, and the page-back
// latency histograms (tier_pageback_ns{path="cold"|"cached"}, the
// fetch+decode cost a query waits for). Safe on a live manager.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.chunks.fetchColdNS.Store(reg.Histogram("tier_pageback_ns", "path", "cold"))
	m.chunks.fetchCachedNS.Store(reg.Histogram("tier_pageback_ns", "path", "cached"))
	reg.CounterFunc("tier_evictions_total", func() float64 { return float64(m.evictions.Load()) })
	reg.CounterFunc("tier_evicted_points_total", func() float64 { return float64(m.evictedPts.Load()) })
	reg.CounterFunc("tier_hot_skips_total", func() float64 { return float64(m.hotSkips.Load()) })
	reg.CounterFunc("tier_checks_total", func() float64 { return float64(m.checks.Load()) })
	reg.CounterFunc("tier_spill_objects_total", func() float64 { return float64(m.chunks.spills.Load()) })
	reg.CounterFunc("tier_spilled_bytes_total", func() float64 { return float64(m.chunks.spillBytes.Load()) })
	reg.CounterFunc("tier_fetches_total", func() float64 { return float64(m.chunks.fetches.Load()) })
	reg.CounterFunc("tier_fetched_bytes_total", func() float64 { return float64(m.chunks.fetchBytes.Load()) })
	reg.CounterFunc("tier_cache_hits_total", func() float64 { return float64(m.chunks.CacheStats().Hits) })
	reg.CounterFunc("tier_cache_misses_total", func() float64 { return float64(m.chunks.CacheStats().Misses) })
	reg.GaugeFunc("tier_cache_bytes", func() float64 { return float64(m.chunks.CacheStats().Bytes) })
	reg.GaugeFunc("tier_budget_bytes", func() float64 { return float64(m.cfg.Budget) })
	reg.GaugeFunc("tier_resident_points", m.sumTier(func(tc tstore.TierCounters) float64 { return float64(tc.ResidentPoints) }))
	reg.GaugeFunc("tier_evicted_points", m.sumTier(func(tc tstore.TierCounters) float64 { return float64(tc.EvictedPoints) }))
	reg.GaugeFunc("tier_resident_vessels", m.sumTier(func(tc tstore.TierCounters) float64 { return float64(tc.ResidentVessels) }))
	reg.GaugeFunc("tier_evicted_vessels", m.sumTier(func(tc tstore.TierCounters) float64 { return float64(tc.EvictedVessels) }))
	reg.CounterFunc("tier_pageins_total", m.sumTier(func(tc tstore.TierCounters) float64 { return float64(tc.PageIns) }))
	reg.CounterFunc("tier_paged_points_total", m.sumTier(func(tc tstore.TierCounters) float64 { return float64(tc.PagedPoints) }))
}

// sumTier builds a scrape-time aggregator over the watched stores'
// tier counters.
func (m *Manager) sumTier(pick func(tstore.TierCounters) float64) func() float64 {
	return func() float64 {
		var total float64
		for _, st := range m.stores {
			total += pick(st.Tier())
		}
		return total
	}
}

func (m *Manager) loop() {
	defer close(m.stopped)
	tick := time.NewTicker(m.cfg.CheckEvery)
	defer tick.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-tick.C:
			m.Check()
		}
	}
}

// Close stops the budget loop. Stubs stay paged-in-able (the chunk store
// remains attached); nothing new is evicted.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.done) })
	<-m.stopped
}

// Check runs one budget pass: if resident bytes exceed the budget, evict
// the coldest vessels (across all watched stores, ranked by last touch)
// until the archive fits or no evictable vessel remains. It returns the
// number of vessels evicted. Safe to call concurrently with ingest and
// queries — a vessel touched mid-spill is skipped, not corrupted.
func (m *Manager) Check() int {
	m.checks.Add(1)
	start := time.Now()
	defer func() { m.lastEvictNs.Store(time.Since(start).Nanoseconds()) }()

	type cand struct {
		st *tstore.Store
		h  tstore.VesselHeat
	}
	pointBytes := int64(tstore.PointBytes)
	var resident int64
	var cands []cand
	for _, st := range m.stores {
		for _, h := range st.Heat() {
			resident += int64(h.Resident) * pointBytes
			cands = append(cands, cand{st: st, h: h})
		}
	}
	if resident <= m.cfg.Budget {
		return 0
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].h.LastTouch < cands[j].h.LastTouch })
	evicted, pts := 0, 0
	over := resident - m.cfg.Budget
	for _, c := range cands {
		if resident <= m.cfg.Budget {
			break
		}
		n, err := c.st.EvictVessel(c.h.MMSI)
		switch {
		case err == tstore.ErrVesselHot:
			m.hotSkips.Add(1)
			continue
		case err != nil:
			m.setErr(err)
			m.flight.Load().Record(obs.FlightError, "tier", "eviction spill failed",
				obs.FI("mmsi", int64(c.h.MMSI)), obs.FS("error", err.Error()))
			return evicted
		case n == 0:
			continue
		}
		resident -= int64(n) * pointBytes
		evicted++
		m.evictions.Add(1)
		m.evictedPts.Add(uint64(n))
		pts += n
	}
	if evicted > 0 {
		m.flight.Load().Record(obs.FlightInfo, "tier", "eviction pass",
			obs.FI("vessels", int64(evicted)), obs.FI("points", int64(pts)),
			obs.FI("over_bytes", over))
	}
	return evicted
}

func (m *Manager) setErr(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
}

// Err returns the first eviction failure (spill IO); nil while healthy.
// Hot-skip races are not errors.
func (m *Manager) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// Stats aggregates the tiered-archive state across the watched stores.
type Stats struct {
	Budget        int64 `json:"budget"`
	ResidentBytes int64 `json:"resident_bytes"`

	ResidentPoints  int `json:"resident_points"`
	EvictedPoints   int `json:"evicted_points"`
	ResidentVessels int `json:"resident_vessels"`
	EvictedVessels  int `json:"evicted_vessels"`
	SpilledChunks   int `json:"spilled_chunks"`

	Evictions      uint64 `json:"evictions"`
	EvictedTotal   uint64 `json:"evicted_points_total"`
	HotSkips       uint64 `json:"hot_skips"`
	Checks         uint64 `json:"checks"`
	PageIns        uint64 `json:"page_ins"`
	PagedPoints    uint64 `json:"paged_points"`
	SpillObjects   uint64 `json:"spill_objects"`
	SpilledBytes   uint64 `json:"spilled_bytes"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheBytes     int64  `json:"cache_bytes"`
	LastCheckNanos int64  `json:"last_check_ns"`
}

// Stats snapshots the manager and its stores.
func (m *Manager) Stats() Stats {
	s := Stats{
		Budget:         m.cfg.Budget,
		Evictions:      m.evictions.Load(),
		EvictedTotal:   m.evictedPts.Load(),
		HotSkips:       m.hotSkips.Load(),
		Checks:         m.checks.Load(),
		SpillObjects:   m.chunks.spills.Load(),
		SpilledBytes:   m.chunks.spillBytes.Load(),
		LastCheckNanos: m.lastEvictNs.Load(),
	}
	for _, st := range m.stores {
		tc := st.Tier()
		s.ResidentPoints += tc.ResidentPoints
		s.EvictedPoints += tc.EvictedPoints
		s.ResidentVessels += tc.ResidentVessels
		s.EvictedVessels += tc.EvictedVessels
		s.SpilledChunks += tc.SpilledChunks
		s.PageIns += tc.PageIns
		s.PagedPoints += tc.PagedPoints
	}
	s.ResidentBytes = int64(s.ResidentPoints) * int64(tstore.PointBytes)
	cs := m.chunks.CacheStats()
	s.CacheHits, s.CacheMisses, s.CacheBytes = cs.Hits, cs.Misses, cs.Bytes
	return s
}
