package registry

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFindConflictsDetectsDisagreement(t *testing.T) {
	a := NewRegister("A")
	b := NewRegister("B")
	a.Put(&Record{MMSI: 1, Name: "ALPHA", Flag: "FR", LengthM: 100, ShipType: "cargo", CallSign: "AA"})
	b.Put(&Record{MMSI: 1, Name: "ALPHA", Flag: "IT", LengthM: 100.5, ShipType: "cargo", CallSign: "AA"})
	conflicts := FindConflicts(a, b)
	if len(conflicts) != 1 {
		t.Fatalf("expected exactly the flag conflict, got %d: %v", len(conflicts), conflicts)
	}
	if conflicts[0].Field != FieldFlag {
		t.Errorf("conflict field = %s", conflicts[0].Field)
	}
	if !strings.Contains(conflicts[0].String(), "flag") {
		t.Errorf("conflict string should mention the field: %s", conflicts[0])
	}
}

func TestFindConflictsLengthTolerance(t *testing.T) {
	a := NewRegister("A")
	b := NewRegister("B")
	// 1.5 m apart: benign. 10 m apart: conflict.
	a.Put(&Record{MMSI: 1, Name: "X", Flag: "FR", LengthM: 100, ShipType: "cargo"})
	b.Put(&Record{MMSI: 1, Name: "X", Flag: "FR", LengthM: 101.5, ShipType: "cargo"})
	if c := FindConflicts(a, b); len(c) != 0 {
		t.Errorf("small length delta should not conflict: %v", c)
	}
	b.Put(&Record{MMSI: 1, Name: "X", Flag: "FR", LengthM: 110, ShipType: "cargo"})
	if c := FindConflicts(a, b); len(c) != 1 || c[0].Field != FieldLength {
		t.Errorf("large length delta should conflict: %v", c)
	}
}

func TestFindConflictsSkipsSingleProvider(t *testing.T) {
	a := NewRegister("A")
	b := NewRegister("B")
	a.Put(&Record{MMSI: 1, Name: "ONLY-A", Flag: "FR"})
	b.Put(&Record{MMSI: 2, Name: "ONLY-B", Flag: "IT"})
	if c := FindConflicts(a, b); len(c) != 0 {
		t.Errorf("no overlap means no conflicts: %v", c)
	}
	if c := FindConflicts(a); len(c) != 0 {
		t.Errorf("single register can't conflict: %v", c)
	}
}

func TestResolverWeightedVote(t *testing.T) {
	rv := NewResolver()
	rv.Reliability["good"] = 0.9
	rv.Reliability["bad"] = 0.2
	recs := map[string]*Record{
		"good": {MMSI: 1, Name: "TRUTH", Flag: "FR", LengthM: 100, ShipType: "cargo"},
		"bad":  {MMSI: 1, Name: "TYPO", Flag: "IT", LengthM: 120, ShipType: "tanker"},
	}
	got := rv.Resolve(recs)
	if got.Name != "TRUTH" || got.Flag != "FR" || got.ShipType != "cargo" {
		t.Errorf("reliable provider should win: %+v", got)
	}
	if got.LengthM != 100 {
		t.Errorf("length should come from the winning cluster: %f", got.LengthM)
	}
}

func TestResolverNumericClusterMean(t *testing.T) {
	rv := NewResolver()
	rv.Reliability["a"] = 0.5
	rv.Reliability["b"] = 0.5
	rv.Reliability["c"] = 0.3
	recs := map[string]*Record{
		"a": {MMSI: 1, LengthM: 100},
		"b": {MMSI: 1, LengthM: 101}, // same cluster as a
		"c": {MMSI: 1, LengthM: 150}, // outlier
	}
	got := rv.Resolve(recs)
	want := (100*0.5 + 101*0.5) / 1.0
	if abs(got.LengthM-want) > 1e-9 {
		t.Errorf("length = %f, want weighted cluster mean %f", got.LengthM, want)
	}
}

func TestResolveEmpty(t *testing.T) {
	rv := NewResolver()
	if rv.Resolve(nil) != nil {
		t.Error("resolving nothing should give nil")
	}
}

func TestResolveDeterministic(t *testing.T) {
	rv := NewResolver() // uniform weights: tie
	recs := map[string]*Record{
		"a": {MMSI: 1, Name: "AAA", Flag: "FR"},
		"b": {MMSI: 1, Name: "BBB", Flag: "IT"},
	}
	first := rv.Resolve(recs).Name
	for i := 0; i < 20; i++ {
		if rv.Resolve(recs).Name != first {
			t.Fatal("tie resolution must be deterministic")
		}
	}
}

func TestSyntheticPairConflictRates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth, ra, rb := SyntheticPair(rng, 500, 0.02, 0.30)
	if ra.Len() != 500 || rb.Len() != 500 || len(truth) != 500 {
		t.Fatal("sizes mismatch")
	}
	conflicts := FindConflicts(ra, rb)
	// With 2% + 30% corruption the conflict count should be in the broad
	// vicinity of 150; assert a sane band rather than a point.
	if len(conflicts) < 60 || len(conflicts) > 260 {
		t.Errorf("conflict count %d outside plausible band", len(conflicts))
	}
}

func TestReliabilityWeightedResolutionBeatsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	truth, ra, rb := SyntheticPair(rng, 800, 0.02, 0.35)

	resolveAll := func(rv *Resolver) map[uint32]*Record {
		out := make(map[uint32]*Record)
		for _, mmsi := range ra.MMSIs() {
			recs := map[string]*Record{}
			if r := ra.Get(mmsi); r != nil {
				recs["A"] = r
			}
			if r := rb.Get(mmsi); r != nil {
				recs["B"] = r
			}
			out[mmsi] = rv.Resolve(recs)
		}
		return out
	}

	weighted := NewResolver()
	weighted.Reliability["A"] = 0.95
	weighted.Reliability["B"] = 0.40
	accWeighted := ResolutionAccuracy(truth, resolveAll(weighted))

	uniform := NewResolver()
	accUniform := ResolutionAccuracy(truth, resolveAll(uniform))

	if accWeighted <= accUniform {
		t.Errorf("reliability weighting should beat uniform: weighted=%.3f uniform=%.3f",
			accWeighted, accUniform)
	}
	if accWeighted < 0.95 {
		t.Errorf("weighted resolution accuracy too low: %.3f", accWeighted)
	}
}

func TestResolutionAccuracyEdges(t *testing.T) {
	if ResolutionAccuracy(nil, nil) != 0 {
		t.Error("empty truth should score 0")
	}
	truth := map[uint32]*Record{1: {MMSI: 1, Name: "A", Flag: "FR", ShipType: "cargo", LengthM: 50}}
	if got := ResolutionAccuracy(truth, map[uint32]*Record{}); got != 0 {
		t.Errorf("missing resolution should score 0, got %f", got)
	}
	perfect := map[uint32]*Record{1: {MMSI: 1, Name: "A", Flag: "FR", ShipType: "cargo", LengthM: 50}}
	if got := ResolutionAccuracy(truth, perfect); got != 1 {
		t.Errorf("perfect resolution should score 1, got %f", got)
	}
}

func BenchmarkFindConflicts(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	_, ra, rb := SyntheticPair(rng, 1000, 0.05, 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FindConflicts(ra, rb)
	}
}

func BenchmarkResolve(b *testing.B) {
	rv := NewResolver()
	rv.Reliability["A"] = 0.9
	rv.Reliability["B"] = 0.4
	recs := map[string]*Record{
		"A": {MMSI: 1, Name: "TRUTH", Flag: "FR", LengthM: 100, ShipType: "cargo"},
		"B": {MMSI: 1, Name: "TYPO", Flag: "IT", LengthM: 120, ShipType: "tanker"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rv.Resolve(recs)
	}
}
