// Package registry models institutional vessel registers — the
// MarineTraffic-versus-Lloyd's scenario of the paper's §4, where two
// sources disagree on a ship's length or flag because one lags on updates.
// It provides the record model, conflict detection between providers, and
// reliability-weighted resolution, plus a synthetic register pair generator
// with known ground truth so resolution accuracy is measurable (E6, E10).
package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Record is one register entry for a vessel.
type Record struct {
	MMSI     uint32
	IMO      uint32
	Name     string
	CallSign string
	Flag     string  // ISO country code
	LengthM  float64 // overall length
	BeamM    float64
	ShipType string // coarse class: cargo, tanker, fishing, passenger, tug
}

// Register is a provider's view of the world fleet.
type Register struct {
	Provider string
	records  map[uint32]*Record
}

// NewRegister returns an empty register for the named provider.
func NewRegister(provider string) *Register {
	return &Register{Provider: provider, records: make(map[uint32]*Record)}
}

// Put inserts or replaces a record.
func (r *Register) Put(rec *Record) { r.records[rec.MMSI] = rec }

// Get returns the record for an MMSI, or nil.
func (r *Register) Get(mmsi uint32) *Record { return r.records[mmsi] }

// Len returns the number of records.
func (r *Register) Len() int { return len(r.records) }

// MMSIs returns the sorted MMSIs present in the register.
func (r *Register) MMSIs() []uint32 {
	out := make([]uint32, 0, len(r.records))
	for m := range r.records {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Field names used in conflict reports.
const (
	FieldName     = "name"
	FieldFlag     = "flag"
	FieldLength   = "length"
	FieldShipType = "ship_type"
	FieldCallSign = "call_sign"
)

// Conflict describes a disagreement between two providers on one field of
// one vessel.
type Conflict struct {
	MMSI   uint32
	Field  string
	Values map[string]string // provider -> value as string
}

// String renders the conflict for logs.
func (c Conflict) String() string {
	parts := make([]string, 0, len(c.Values))
	provs := make([]string, 0, len(c.Values))
	for p := range c.Values {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		parts = append(parts, fmt.Sprintf("%s=%q", p, c.Values[p]))
	}
	return fmt.Sprintf("mmsi %d %s: %s", c.MMSI, c.Field, strings.Join(parts, " vs "))
}

// lengthToleranceM is the slack allowed before two length values count as
// conflicting; the paper notes lengths "may differ slightly" benignly.
const lengthToleranceM = 2.0

// FindConflicts compares registers pairwise and reports every field-level
// disagreement on vessels both providers know.
func FindConflicts(regs ...*Register) []Conflict {
	var out []Conflict
	if len(regs) < 2 {
		return out
	}
	base := regs[0]
	for _, mmsi := range base.MMSIs() {
		recs := make(map[string]*Record)
		for _, r := range regs {
			if rec := r.Get(mmsi); rec != nil {
				recs[r.Provider] = rec
			}
		}
		if len(recs) < 2 {
			continue
		}
		out = append(out, conflictsFor(mmsi, recs)...)
	}
	return out
}

func conflictsFor(mmsi uint32, recs map[string]*Record) []Conflict {
	var out []Conflict
	check := func(field string, get func(*Record) string, eq func(a, b string) bool) {
		vals := make(map[string]string, len(recs))
		distinct := []string{}
		for p, rec := range recs {
			v := get(rec)
			vals[p] = v
			found := false
			for _, d := range distinct {
				if eq(d, v) {
					found = true
					break
				}
			}
			if !found {
				distinct = append(distinct, v)
			}
		}
		if len(distinct) > 1 {
			out = append(out, Conflict{MMSI: mmsi, Field: field, Values: vals})
		}
	}
	strEq := func(a, b string) bool { return strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b)) }
	check(FieldName, func(r *Record) string { return r.Name }, strEq)
	check(FieldFlag, func(r *Record) string { return r.Flag }, strEq)
	check(FieldCallSign, func(r *Record) string { return r.CallSign }, strEq)
	check(FieldShipType, func(r *Record) string { return r.ShipType }, strEq)
	check(FieldLength, func(r *Record) string { return fmt.Sprintf("%.1f", r.LengthM) },
		func(a, b string) bool {
			var fa, fb float64
			fmt.Sscanf(a, "%f", &fa)
			fmt.Sscanf(b, "%f", &fb)
			return abs(fa-fb) <= lengthToleranceM
		})
	return out
}

// Resolver merges conflicting records using per-provider reliability
// weights (the paper's "additional knowledge on sources' quality may help
// solving the issue").
type Resolver struct {
	// Reliability maps provider -> weight in (0,1]; missing providers get
	// DefaultReliability.
	Reliability        map[string]float64
	DefaultReliability float64
}

// NewResolver returns a resolver with uniform default reliability.
func NewResolver() *Resolver {
	return &Resolver{Reliability: make(map[string]float64), DefaultReliability: 0.5}
}

func (rv *Resolver) weight(provider string) float64 {
	if w, ok := rv.Reliability[provider]; ok && w > 0 {
		return w
	}
	return rv.DefaultReliability
}

// Resolve merges the providers' records for one vessel into a single
// record: for each field, the value backed by the highest total provider
// reliability wins (weighted vote; ties break on provider name for
// determinism). Numeric fields use the reliability-weighted mean of values
// within tolerance of the winning cluster.
func (rv *Resolver) Resolve(recs map[string]*Record) *Record {
	if len(recs) == 0 {
		return nil
	}
	providers := make([]string, 0, len(recs))
	for p := range recs {
		providers = append(providers, p)
	}
	sort.Strings(providers)

	out := &Record{}
	first := recs[providers[0]]
	out.MMSI = first.MMSI
	out.IMO = first.IMO

	out.Name = rv.voteString(providers, recs, func(r *Record) string { return r.Name })
	out.Flag = rv.voteString(providers, recs, func(r *Record) string { return r.Flag })
	out.CallSign = rv.voteString(providers, recs, func(r *Record) string { return r.CallSign })
	out.ShipType = rv.voteString(providers, recs, func(r *Record) string { return r.ShipType })
	out.LengthM = rv.voteNumeric(providers, recs, func(r *Record) float64 { return r.LengthM })
	out.BeamM = rv.voteNumeric(providers, recs, func(r *Record) float64 { return r.BeamM })
	return out
}

func (rv *Resolver) voteString(providers []string, recs map[string]*Record, get func(*Record) string) string {
	scores := map[string]float64{}
	for _, p := range providers {
		v := strings.TrimSpace(get(recs[p]))
		key := strings.ToUpper(v)
		scores[key] += rv.weight(p)
	}
	bestKey, bestScore := "", -1.0
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if scores[k] > bestScore {
			bestKey, bestScore = k, scores[k]
		}
	}
	// Return the original-cased variant from the most reliable provider.
	bestW := -1.0
	result := bestKey
	for _, p := range providers {
		v := strings.TrimSpace(get(recs[p]))
		if strings.ToUpper(v) == bestKey && rv.weight(p) > bestW {
			bestW = rv.weight(p)
			result = v
		}
	}
	return result
}

func (rv *Resolver) voteNumeric(providers []string, recs map[string]*Record, get func(*Record) float64) float64 {
	// Cluster values within tolerance, score clusters by total weight, then
	// return the weighted mean of the winning cluster.
	type cluster struct {
		centre float64
		weight float64
		sum    float64
	}
	var clusters []*cluster
	for _, p := range providers {
		v := get(recs[p])
		w := rv.weight(p)
		var found *cluster
		for _, c := range clusters {
			if abs(c.centre-v) <= lengthToleranceM {
				found = c
				break
			}
		}
		if found == nil {
			found = &cluster{centre: v}
			clusters = append(clusters, found)
		}
		found.weight += w
		found.sum += v * w
	}
	var best *cluster
	for _, c := range clusters {
		if best == nil || c.weight > best.weight {
			best = c
		}
	}
	if best == nil || best.weight == 0 {
		return 0
	}
	return best.sum / best.weight
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SyntheticPair generates ground truth plus two registers that disagree on
// a controlled fraction of fields. Provider B is the lower-quality source:
// corruptFracB of its records carry a corrupted field, versus
// corruptFracA for provider A. Returns (truth, registerA, registerB).
func SyntheticPair(rng *rand.Rand, n int, corruptFracA, corruptFracB float64) (map[uint32]*Record, *Register, *Register) {
	flags := []string{"FR", "IT", "GR", "MT", "PA", "LR", "NL", "DE"}
	types := []string{"cargo", "tanker", "fishing", "passenger", "tug"}
	prefixes := []string{"NORTHERN", "PACIFIC", "ATLANTIC", "GOLDEN", "SILVER",
		"BLUE", "CRIMSON", "EASTERN", "ROYAL", "COASTAL", "GRAND", "SWIFT"}
	suffixes := []string{"STAR", "WAVE", "HORIZON", "SPIRIT", "PIONEER",
		"TRADER", "GULL", "DOLPHIN", "MERIDIAN", "VOYAGER", "CREST", "DAWN"}
	truth := make(map[uint32]*Record, n)
	ra := NewRegister("A")
	rb := NewRegister("B")
	for i := 0; i < n; i++ {
		mmsi := uint32(201000000 + i*37)
		rec := &Record{
			MMSI: mmsi,
			IMO:  uint32(9000000 + i),
			Name: fmt.Sprintf("%s %s %d",
				prefixes[rng.Intn(len(prefixes))], suffixes[rng.Intn(len(suffixes))], i),
			CallSign: fmt.Sprintf("C%04d", i),
			Flag:     flags[rng.Intn(len(flags))],
			LengthM:  30 + rng.Float64()*270,
			BeamM:    6 + rng.Float64()*40,
			ShipType: types[rng.Intn(len(types))],
		}
		truth[mmsi] = rec
		ra.Put(corrupt(rng, rec, corruptFracA, flags, types))
		rb.Put(corrupt(rng, rec, corruptFracB, flags, types))
	}
	return truth, ra, rb
}

// corrupt returns a copy of rec, with one random field corrupted with
// probability frac.
func corrupt(rng *rand.Rand, rec *Record, frac float64, flags, types []string) *Record {
	c := *rec
	if rng.Float64() >= frac {
		return &c
	}
	switch rng.Intn(4) {
	case 0: // stale flag
		c.Flag = flags[rng.Intn(len(flags))]
	case 1: // length off by 5–25 m
		c.LengthM += 5 + rng.Float64()*20
	case 2: // name typo: drop a character
		if len(c.Name) > 3 {
			i := 1 + rng.Intn(len(c.Name)-2)
			c.Name = c.Name[:i] + c.Name[i+1:]
		}
	case 3: // misclassified type
		c.ShipType = types[rng.Intn(len(types))]
	}
	return &c
}

// ResolutionAccuracy scores resolved records against ground truth: the
// fraction of (vessel, field) pairs resolved to the true value, over the
// four corruptible fields.
func ResolutionAccuracy(truth map[uint32]*Record, resolved map[uint32]*Record) float64 {
	if len(truth) == 0 {
		return 0
	}
	var correct, total float64
	for mmsi, tr := range truth {
		rec, ok := resolved[mmsi]
		if !ok {
			total += 4
			continue
		}
		total += 4
		if strings.EqualFold(rec.Flag, tr.Flag) {
			correct++
		}
		if strings.EqualFold(rec.Name, tr.Name) {
			correct++
		}
		if strings.EqualFold(rec.ShipType, tr.ShipType) {
			correct++
		}
		if abs(rec.LengthM-tr.LengthM) <= lengthToleranceM {
			correct++
		}
	}
	return correct / total
}
