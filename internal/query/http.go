package query

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Executor is anything that can answer a Request: the in-process Engine,
// the ingest engine's read surface, or a Client talking to a remote
// daemon. The HTTP server serves any of them.
type Executor interface {
	Query(Request) (*Result, error)
}

// ContextExecutor is the context-aware executor. When the server's
// executor implements it (Engine and the ingest engine do), requests
// run under the HTTP request context, so traces started there propagate
// and client disconnects can cancel.
type ContextExecutor interface {
	QueryContext(ctx context.Context, req Request) (*Result, error)
}

// Server serves the unified query surface over HTTP as JSON:
//
//	POST /v1/query        body = Request            (the canonical route)
//	POST /v1/stream       body = StreamRequest      (standing query, NDJSON)
//	GET  /v1/trajectory   ?mmsi=&from=&to=&limit=
//	GET  /v1/spacetime    ?box=&from=&to=&limit=
//	GET  /v1/nearest      ?point=lat,lon&at=&tol=&k=
//	GET  /v1/live         ?box=&limit=
//	GET  /v1/situation    ?box=&rows=&cols=&severity=
//	GET  /v1/alerts       ?from=&to=&severity=&limit=
//	GET  /v1/stats
//	GET  /v1/track        ?mmsi=
//	GET  /v1/predict      ?mmsi=&horizon=
//	GET  /v1/quality      ?mmsi=
//	GET  /v1/anomalies    ?mmsi=&limit=     (mmsi optional: omitted = ranked)
//
// ServeMetrics adds GET /metrics and GET /debug/vars; ServePprof adds
// /debug/pprof/ (both opt-in mounts on the same mux). Every GET query
// route accepts &trace=1 to request a Result.Trace stage breakdown.
//
// Every one-shot route returns a Result; the GET routes are conveniences
// that build the same Request the POST route accepts (times are RFC 3339,
// tol is a Go duration, box is minLat,minLon,maxLat,maxLon). /v1/stream
// turns the same Request into a standing query and pushes incremental
// Updates as NDJSON (stream_http.go) — served when the executor also
// implements Subscriber, 501 otherwise. Errors come back as
// {"error": "..."} with status 400 (bad request), 405 (method), 500
// (execution) or 501 (streaming unsupported).
type Server struct {
	exec Executor
	sub  Subscriber // non-nil when exec can serve standing queries
	mux  *http.ServeMux

	// Slow-query hook (RecordSlowQueries): any query whose execution
	// exceeds slowAfter lands in slowFlight with its full stage trace.
	slowAfter  time.Duration
	slowFlight *obs.Flight
}

// NewServer builds the HTTP surface over an executor. When the executor
// also implements Subscriber (the ingest engine does, and so does any
// Streamer), /v1/stream serves standing queries over it.
func NewServer(exec Executor) *Server {
	s := &Server{exec: exec, mux: http.NewServeMux()}
	s.sub, _ = exec.(Subscriber)
	s.mux.HandleFunc("/v1/query", s.handlePost)
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/v1/trajectory", s.handleGet(parseTrajectory))
	s.mux.HandleFunc("/v1/spacetime", s.handleGet(parseSpaceTime))
	s.mux.HandleFunc("/v1/nearest", s.handleGet(parseNearest))
	s.mux.HandleFunc("/v1/live", s.handleGet(parseLive))
	s.mux.HandleFunc("/v1/situation", s.handleGet(parseSituation))
	s.mux.HandleFunc("/v1/alerts", s.handleGet(parseAlerts))
	s.mux.HandleFunc("/v1/stats", s.handleGet(parseStats))
	s.mux.HandleFunc("/v1/track", s.handleGet(parseTrack))
	s.mux.HandleFunc("/v1/predict", s.handleGet(parsePredict))
	s.mux.HandleFunc("/v1/quality", s.handleGet(parseQuality))
	s.mux.HandleFunc("/v1/anomalies", s.handleGet(parseAnomalies))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ServeMetrics mounts the observability read surface on the server's
// mux: GET /metrics (Prometheus text exposition) and GET /debug/vars
// (JSON snapshot of the same registry, histograms as
// count/sum/max/p50/p90/p99 objects).
func (s *Server) ServeMetrics(reg *obs.Registry) {
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			return // headers are gone; nothing more to do
		}
	})
	s.mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return
		}
	})
}

// ServeHealth mounts the health surface on the server's mux:
//
//	GET /healthz   liveness  — 200 whenever the process answers
//	GET /readyz    readiness — 200/503 from h.Evaluate(), JSON verdict
//
// Liveness is intentionally unconditional: a process that can run the
// handler is alive. Readiness aggregates the registered per-layer
// checks; the body carries the per-check detail either way, so a 503
// names the failing check instead of leaving the operator to guess.
func (s *Server) ServeHealth(h *obs.Health) {
	start := time.Now()
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"alive":          true,
			"uptime_seconds": time.Since(start).Seconds(),
		})
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		v := h.Evaluate()
		w.Header().Set("Content-Type", "application/json")
		if !v.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(v)
	})
}

// ServeFlight mounts GET /debug/flight: the flight recorder's retained
// events as JSON, oldest first. Query params filter the dump:
// ?layer= (exact match), ?level=info|warn|error (minimum), ?since=
// (RFC 3339 wall-clock floor).
func (s *Server) ServeFlight(f *obs.Flight) {
	s.mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		u := urlValues{r.URL.Query()}
		flt := obs.FlightFilter{
			Layer:    u.str("layer"),
			MinLevel: obs.ParseFlightLevel(u.str("level")),
		}
		var err error
		if flt.Since, err = u.timeAt("since"); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := f.WriteJSON(w, flt); err != nil {
			return // headers are gone; nothing more to do
		}
	})
}

// RecordSlowQueries arms the slow-query hook: any query that takes
// longer than threshold is recorded into f as a warn-level flight event
// carrying its kind, duration and full stage trace. While armed, every
// request is traced internally (the trace is stripped from the response
// unless the caller asked for it), so the evidence exists by the time
// the query turns out to have been slow. threshold <= 0 disarms.
func (s *Server) RecordSlowQueries(threshold time.Duration, f *obs.Flight) {
	s.slowAfter, s.slowFlight = threshold, f
}

// ServePprof mounts net/http/pprof under /debug/pprof/ — opt-in
// (maritimed -pprof) because profiles expose internals and cost CPU.
func (s *Server) ServePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handlePost decodes a Request body and executes it.
func (s *Server) handlePost(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST (GET routes are per-kind: /v1/%s ...)", KindTrajectory))
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.run(w, r, req)
}

// handleGet adapts a per-kind query-string parser into a handler.
func (s *Server) handleGet(parse func(qs urlValues) (Request, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		u := urlValues{r.URL.Query()}
		req, err := parse(u)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if b, _ := strconv.ParseBool(u.str("trace")); b {
			req.Trace = true
		}
		s.run(w, r, req)
	}
}

func (s *Server) run(w http.ResponseWriter, r *http.Request, req Request) {
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// While the slow-query hook is armed, trace every request so the
	// stage breakdown exists by the time the query proves slow; forced
	// traces are stripped from the response (the caller didn't ask).
	forced := false
	if s.slowAfter > 0 && !req.Trace {
		req.Trace, forced = true, true
	}
	t0 := time.Now()
	var res *Result
	var err error
	if cx, ok := s.exec.(ContextExecutor); ok {
		res, err = cx.QueryContext(r.Context(), req)
	} else {
		res, err = s.exec.Query(req)
	}
	if elapsed := time.Since(t0); s.slowAfter > 0 && elapsed >= s.slowAfter {
		s.recordSlow(req, res, err, elapsed)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if forced {
		res.Trace = nil
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(res); err != nil {
		// Headers are gone; nothing more to do than note it server-side.
		return
	}
}

// recordSlow lands one over-threshold query in the flight ring with its
// stage trace rendered compactly (name@start+dur, semicolon-joined).
func (s *Server) recordSlow(req Request, res *Result, err error, elapsed time.Duration) {
	fields := []obs.KV{
		obs.FS("kind", string(req.Kind)),
		obs.FI("ms", elapsed.Milliseconds()),
	}
	switch {
	case err != nil:
		fields = append(fields, obs.FS("error", err.Error()))
	case res != nil && len(res.Trace) > 0:
		var b []byte
		for i, sp := range res.Trace {
			if i > 0 {
				b = append(b, ';')
			}
			b = fmt.Appendf(b, "%s@%v+%v", sp.Name,
				time.Duration(sp.StartNS).Round(time.Microsecond),
				time.Duration(sp.DurNS).Round(time.Microsecond))
		}
		fields = append(fields, obs.FS("trace", string(b)))
	}
	s.slowFlight.Record(obs.FlightWarn, "query", "slow query", fields...)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// urlValues wraps url.Values with typed, error-reporting accessors.
type urlValues struct{ v map[string][]string }

func (u urlValues) str(key string) string {
	if vs := u.v[key]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

func (u urlValues) timeAt(key string) (time.Time, error) {
	s := u.str(key)
	if s == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("query: %s must be RFC 3339 (got %q): %w", key, s, err)
	}
	return t, nil
}

func (u urlValues) intAt(key string) (int, error) {
	s := u.str(key)
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("query: %s must be an integer (got %q)", key, s)
	}
	return n, nil
}

func (u urlValues) uint32At(key string) (uint32, error) {
	s := u.str(key)
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("query: %s must be an unsigned 32-bit integer (got %q)", key, s)
	}
	return uint32(n), nil
}

func (u urlValues) boxAt(key string) (*Box, error) {
	s := u.str(key)
	if s == "" {
		return nil, nil
	}
	b, err := ParseBox(s)
	if err != nil {
		return nil, err
	}
	return &b, nil
}

// timeBounds parses the shared from/to pair.
func (u urlValues) timeBounds(req *Request) error {
	var err error
	if req.From, err = u.timeAt("from"); err != nil {
		return err
	}
	req.To, err = u.timeAt("to")
	return err
}

func parseTrajectory(u urlValues) (Request, error) {
	req := Request{Kind: KindTrajectory}
	var err error
	if req.MMSI, err = u.uint32At("mmsi"); err != nil {
		return req, err
	}
	if err := u.timeBounds(&req); err != nil {
		return req, err
	}
	req.Limit, err = u.intAt("limit")
	return req, err
}

func parseSpaceTime(u urlValues) (Request, error) {
	req := Request{Kind: KindSpaceTime}
	var err error
	if req.Box, err = u.boxAt("box"); err != nil {
		return req, err
	}
	if err := u.timeBounds(&req); err != nil {
		return req, err
	}
	req.Limit, err = u.intAt("limit")
	return req, err
}

func parseNearest(u urlValues) (Request, error) {
	req := Request{Kind: KindNearest}
	s := u.str("point")
	if s == "" {
		return req, fmt.Errorf("query: nearest requires point=lat,lon")
	}
	p, err := ParsePoint(s)
	if err != nil {
		return req, err
	}
	req.Lat, req.Lon = p.Lat, p.Lon
	if req.At, err = u.timeAt("at"); err != nil {
		return req, err
	}
	if s := u.str("tol"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return req, fmt.Errorf("query: tol must be a duration (got %q)", s)
		}
		req.Tol = Duration(d)
	}
	req.K, err = u.intAt("k")
	return req, err
}

func parseLive(u urlValues) (Request, error) {
	req := Request{Kind: KindLivePicture}
	var err error
	if req.Box, err = u.boxAt("box"); err != nil {
		return req, err
	}
	req.Limit, err = u.intAt("limit")
	return req, err
}

func parseSituation(u urlValues) (Request, error) {
	req := Request{Kind: KindSituation}
	var err error
	if req.Box, err = u.boxAt("box"); err != nil {
		return req, err
	}
	if req.Rows, err = u.intAt("rows"); err != nil {
		return req, err
	}
	if req.Cols, err = u.intAt("cols"); err != nil {
		return req, err
	}
	req.MinSeverity, err = u.intAt("severity")
	return req, err
}

func parseAlerts(u urlValues) (Request, error) {
	req := Request{Kind: KindAlertHistory}
	if err := u.timeBounds(&req); err != nil {
		return req, err
	}
	var err error
	if req.MinSeverity, err = u.intAt("severity"); err != nil {
		return req, err
	}
	req.Limit, err = u.intAt("limit")
	return req, err
}

func parseStats(urlValues) (Request, error) { return Request{Kind: KindStats}, nil }

func parseTrack(u urlValues) (Request, error) {
	req := Request{Kind: KindTrack}
	var err error
	req.MMSI, err = u.uint32At("mmsi")
	return req, err
}

func parsePredict(u urlValues) (Request, error) {
	req := Request{Kind: KindPredict}
	var err error
	if req.MMSI, err = u.uint32At("mmsi"); err != nil {
		return req, err
	}
	if s := u.str("horizon"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return req, fmt.Errorf("query: horizon must be a duration (got %q)", s)
		}
		req.Horizon = Duration(d)
	}
	return req, nil
}

func parseQuality(u urlValues) (Request, error) {
	req := Request{Kind: KindQuality}
	var err error
	req.MMSI, err = u.uint32At("mmsi")
	return req, err
}

func parseAnomalies(u urlValues) (Request, error) {
	req := Request{Kind: KindAnomalies}
	var err error
	if req.MMSI, err = u.uint32At("mmsi"); err != nil {
		return req, err
	}
	req.Limit, err = u.intAt("limit")
	return req, err
}
