// Package query is the unified read surface of the infrastructure, in
// two modes over one typed request vocabulary.
//
// One-shot: a Request — trajectory retrieval, space–time range, nearest
// vessel, the live picture, situation assembly, alert history, store
// statistics (the §2.3 moving-object queries) — answered from the live
// sharded pipelines, the durable archive, federation peers, or any mix,
// merged and deduplicated on (MMSI, timestamp) (engine.go), servable
// over HTTP (http.go / client.go):
//
//	res, err := eng.Query(query.Request{
//	    Kind: query.KindSpaceTime,
//	    Box:  &query.Box{MinLat: 42, MinLon: 4, MaxLat: 44, MaxLon: 9},
//	    From: t0, To: t1,
//	})
//
// Continuous: the same Request, subscribed instead of executed, becomes
// a standing query whose incremental results are pushed as they happen —
// a box watch, a per-vessel follow, an alert feed, a situation ticker
// (sub.go). A Hub fans published records out through bounded
// per-subscriber queues (slow consumers drop, counted, never blocking
// the publisher) with a replay ring for resume-from-sequence; the HTTP
// form is /v1/stream NDJSON (stream_http.go) and Client.Subscribe is the
// remote peer with automatic resume:
//
//	sub, err := e.Subscribe(req, query.SubOptions{})
//	for u := range sub.Updates() { ... }
//
// The read API is also the system's composition boundary: a Client is
// itself a Source (federate.go), so `maritimed -peer URL` merges another
// daemon's picture into local answers — one hop deep, degraded rather
// than fatal when the peer misbehaves.
//
// Results and updates carry a stable JSON encoding (lower-snake field
// names, RFC 3339 timestamps, durations as Go duration strings), so the
// wire form of an HTTP answer is byte-comparable with a locally
// marshalled in-process answer — the contract the round-trip tests pin.
// Any future storage backend (remote segments, object stores) plugs in
// as a Source and inherits the whole surface.
package query

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/ais"
	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/va"
)

// Kind selects the query a Request performs.
type Kind string

// The request kinds of the unified read surface.
const (
	// KindTrajectory retrieves one vessel's samples in [From, To]
	// (zero times = unbounded).
	KindTrajectory Kind = "trajectory"
	// KindSpaceTime retrieves every sample inside Box during [From, To],
	// ordered by (MMSI, time).
	KindSpaceTime Kind = "spacetime"
	// KindNearest retrieves up to K distinct vessels with a sample within
	// Tol of instant At, ordered by the distance of that sample to
	// (Lat, Lon). A zero At (with no Tol) searches time-agnostically:
	// every sample qualifies, whatever its age.
	KindNearest Kind = "nearest"
	// KindLivePicture retrieves the current (newest-known) state of every
	// vessel inside Box, one state per vessel, ordered by MMSI.
	KindLivePicture Kind = "live"
	// KindSituation assembles the operational picture over Box: live
	// states, a Rows×Cols density surface and the alert board.
	KindSituation Kind = "situation"
	// KindAlertHistory retrieves recognised alerts in [From, To] with
	// severity ≥ MinSeverity, time-ordered.
	KindAlertHistory Kind = "alerts"
	// KindStats reports per-source and aggregate store statistics.
	KindStats Kind = "stats"
	// KindTrack retrieves one vessel's fused track state: the smoothed
	// position/velocity estimate and its covariance ellipse (trackintel.go).
	KindTrack Kind = "track"
	// KindPredict forecasts one vessel's position Horizon ahead of its last
	// fix, with a 1-sigma confidence envelope radius.
	KindPredict Kind = "predict"
	// KindQuality reports one vessel's data-integrity score: a Beta-mean
	// reliability with a conservative lower bound, plus per-rule issue
	// counts from the kinematic checks.
	KindQuality Kind = "quality"
	// KindAnomalies reports behavioral deviation (anomaly.go): with MMSI
	// set, one vessel's deviation score, reporting gaps and recent
	// stop/move episodes; without, the fleet ranked by deviation score
	// (Limit-capped, default DefaultAnomalyLimit).
	KindAnomalies Kind = "anomalies"
)

// Kinds lists every request kind (stable order, used by CLIs and docs).
func Kinds() []Kind {
	return []Kind{KindTrajectory, KindSpaceTime, KindNearest,
		KindLivePicture, KindSituation, KindAlertHistory, KindStats,
		KindTrack, KindPredict, KindQuality, KindAnomalies}
}

// Duration is a time.Duration with a human-readable JSON encoding: it
// marshals as a Go duration string ("30m0s") and unmarshals from either a
// duration string or a number of nanoseconds.
type Duration time.Duration

// MarshalJSON encodes the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30m", "1h30m0s" or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("query: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("query: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// Box is the wire form of a geographic bounding box. Unlike geo.Rect it
// validates (ParseBox, Validate) and carries stable JSON field names.
type Box struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

// BoxOf converts a geo.Rect into its wire form.
func BoxOf(r geo.Rect) Box {
	return Box{MinLat: r.MinLat, MinLon: r.MinLon, MaxLat: r.MaxLat, MaxLon: r.MaxLon}
}

// Rect converts the box back to the geodesy type.
func (b Box) Rect() geo.Rect {
	return geo.Rect{MinLat: b.MinLat, MinLon: b.MinLon, MaxLat: b.MaxLat, MaxLon: b.MaxLon}
}

// Validate rejects inverted or out-of-range bounds with a descriptive
// error — a query against an accidentally empty box should fail loudly,
// not return zero rows.
func (b Box) Validate() error {
	switch {
	case b.MinLat > b.MaxLat:
		return fmt.Errorf("query: box has minLat %g > maxLat %g", b.MinLat, b.MaxLat)
	case b.MinLon > b.MaxLon:
		return fmt.Errorf("query: box has minLon %g > maxLon %g", b.MinLon, b.MaxLon)
	case b.MinLat < -90 || b.MaxLat > 90:
		return fmt.Errorf("query: box latitude out of range [-90, 90]: %g..%g", b.MinLat, b.MaxLat)
	case b.MinLon < -180 || b.MaxLon > 180:
		return fmt.Errorf("query: box longitude out of range [-180, 180]: %g..%g", b.MinLon, b.MaxLon)
	}
	return nil
}

// ParseBox parses "minLat,minLon,maxLat,maxLon" strictly: exactly four
// numeric fields (spaces around commas tolerated) and validated bounds.
func ParseBox(s string) (Box, error) {
	fields, err := splitFloats(s, 4)
	if err != nil {
		return Box{}, fmt.Errorf("query: box must be minLat,minLon,maxLat,maxLon: %w", err)
	}
	b := Box{MinLat: fields[0], MinLon: fields[1], MaxLat: fields[2], MaxLon: fields[3]}
	if err := b.Validate(); err != nil {
		return Box{}, err
	}
	return b, nil
}

// ParsePoint parses "lat,lon" strictly, validating the coordinate range.
func ParsePoint(s string) (geo.Point, error) {
	fields, err := splitFloats(s, 2)
	if err != nil {
		return geo.Point{}, fmt.Errorf("query: point must be lat,lon: %w", err)
	}
	p := geo.Point{Lat: fields[0], Lon: fields[1]}
	if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
		return geo.Point{}, fmt.Errorf("query: point out of range: %g,%g", p.Lat, p.Lon)
	}
	return p, nil
}

// splitFloats splits a comma-separated list into exactly n floats,
// rejecting missing, extra or non-numeric fields.
func splitFloats(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("expected %d comma-separated fields, got %d in %q", n, len(parts), s)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("field %d (%q) is not a number", i+1, strings.TrimSpace(p))
		}
		out[i] = v
	}
	return out, nil
}

// Request is one typed read against the unified surface. Zero-valued
// fields that a kind does not use are ignored; fields a kind requires are
// checked by Validate (the Engine and the HTTP server both call it).
type Request struct {
	Kind Kind `json:"kind"`

	// MMSI selects the vessel for KindTrajectory.
	MMSI uint32 `json:"mmsi,omitempty"`

	// From/To bound event time (trajectory, space–time, alert history).
	// Zero means unbounded on that side.
	From time.Time `json:"from,omitempty"`
	To   time.Time `json:"to,omitempty"`

	// Box bounds space (space–time, live picture, situation).
	Box *Box `json:"box,omitempty"`

	// Lat/Lon is the reference point and At the reference instant for
	// KindNearest; Tol is the half-width of the admissible time window
	// around At (default 30m) and K the number of vessels (default 5).
	// An omitted point searches from (0,0) — the GET route and the CLI
	// require it explicitly, the typed/JSON form trusts the caller.
	Lat float64   `json:"lat,omitempty"`
	Lon float64   `json:"lon,omitempty"`
	At  time.Time `json:"at,omitempty"`
	Tol Duration  `json:"tol,omitempty"`
	K   int       `json:"k,omitempty"`

	// Rows/Cols set the situation density resolution (default 12×48).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`

	// Horizon is how far ahead of the vessel's last fix a KindPredict
	// request forecasts (required, positive, at most MaxPredictHorizon).
	Horizon Duration `json:"horizon,omitempty"`

	// MinSeverity filters alerts (history and situation boards).
	MinSeverity int `json:"min_severity,omitempty"`

	// Limit caps the number of states/alerts returned (0 = unlimited).
	// Truncation is recorded in Result.Truncated.
	Limit int `json:"limit,omitempty"`

	// MMSIs asks a KindStats request to include the distinct vessel
	// identifier sets (per source, and their union in Stats.MMSIs). This
	// is the cheap federation read: a peer polling stats fetches one
	// sorted uint32 list per poll instead of the worldwide live picture.
	MMSIs bool `json:"mmsis,omitempty"`

	// Local restricts the answer to this daemon's own sources: federation
	// peers are skipped. Peer sources set it on every outgoing federated
	// read, which keeps federation one hop deep — mutually-peered daemons
	// cannot create a query cycle.
	Local bool `json:"local,omitempty"`

	// Trace asks the engine to record a per-stage breakdown (source
	// fan-out, merge, total) into Result.Trace — `msaquery -trace`.
	Trace bool `json:"trace,omitempty"`
}

// normalize fills kind-specific defaults; called after Validate.
func (r Request) normalize() Request {
	if r.Kind == KindNearest {
		if r.K <= 0 {
			r.K = 5
		}
		if r.Tol <= 0 {
			if r.At.IsZero() {
				// No reference instant: time-agnostic nearest (any
				// sample qualifies; time.Time.Sub saturates, so the
				// max-duration tolerance admits every dt).
				r.Tol = Duration(1<<63 - 1)
			} else {
				r.Tol = Duration(30 * time.Minute)
			}
		}
	}
	if r.Kind == KindSituation {
		if r.Rows <= 0 {
			r.Rows = 12
		}
		if r.Cols <= 0 {
			r.Cols = 48
		}
	}
	if r.Kind == KindAnomalies && r.MMSI == 0 && r.Limit <= 0 {
		r.Limit = DefaultAnomalyLimit
	}
	return r
}

// Validate checks that the request names a known kind and carries the
// fields that kind requires, with every bound in range.
func (r Request) Validate() error {
	switch r.Kind {
	case KindTrajectory:
		if r.MMSI == 0 {
			return fmt.Errorf("query: trajectory requires mmsi")
		}
	case KindSpaceTime:
		if r.Box == nil {
			return fmt.Errorf("query: spacetime requires box")
		}
	case KindNearest:
		// (0,0) is a legitimate reference point (Gulf of Guinea), so an
		// omitted point is indistinguishable from it here; the HTTP GET
		// route and the CLI require the point parameter explicitly.
		if r.Lat < -90 || r.Lat > 90 || r.Lon < -180 || r.Lon > 180 {
			return fmt.Errorf("query: nearest point out of range: %g,%g", r.Lat, r.Lon)
		}
		if r.K < 0 {
			return fmt.Errorf("query: nearest k must be positive, got %d", r.K)
		}
	case KindLivePicture, KindSituation:
		if r.Box == nil {
			return fmt.Errorf("query: %s requires box", r.Kind)
		}
	case KindAlertHistory, KindStats:
		// No required fields.
	case KindAnomalies:
		// MMSI is optional: set, the per-vessel report; unset, the
		// fleet-ranked form.
	case KindTrack, KindQuality:
		if r.MMSI == 0 {
			return fmt.Errorf("query: %s requires mmsi", r.Kind)
		}
	case KindPredict:
		if r.MMSI == 0 {
			return fmt.Errorf("query: predict requires mmsi")
		}
		if r.Horizon <= 0 {
			return fmt.Errorf("query: predict requires a positive horizon")
		}
		if time.Duration(r.Horizon) > MaxPredictHorizon {
			return fmt.Errorf("query: predict horizon %s exceeds %s",
				time.Duration(r.Horizon), MaxPredictHorizon)
		}
	case "":
		return fmt.Errorf("query: missing kind (one of %v)", Kinds())
	default:
		return fmt.Errorf("query: unknown kind %q (one of %v)", r.Kind, Kinds())
	}
	if r.Box != nil {
		if err := r.Box.Validate(); err != nil {
			return err
		}
	}
	if !r.From.IsZero() && !r.To.IsZero() && r.To.Before(r.From) {
		return fmt.Errorf("query: to %s precedes from %s", r.To.Format(time.RFC3339), r.From.Format(time.RFC3339))
	}
	if r.Limit < 0 {
		return fmt.Errorf("query: negative limit %d", r.Limit)
	}
	return nil
}

// timeRange returns the effective [from, to] with zero values widened to
// unbounded (the zero time is before every sample; year 9999 is after).
func (r Request) timeRange() (time.Time, time.Time) {
	from, to := r.From, r.To
	if to.IsZero() {
		to = time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC)
	}
	return from, to
}

// State is the wire form of one vessel state sample.
type State struct {
	MMSI      uint32    `json:"mmsi"`
	At        time.Time `json:"at"`
	Lat       float64   `json:"lat"`
	Lon       float64   `json:"lon"`
	SpeedKn   float64   `json:"speed_kn"`
	CourseDeg float64   `json:"course_deg"`
	Status    int       `json:"status"`
}

// StateOf converts a model state into its wire form.
func StateOf(s model.VesselState) State {
	return State{
		MMSI: s.MMSI, At: s.At, Lat: s.Pos.Lat, Lon: s.Pos.Lon,
		SpeedKn: s.SpeedKn, CourseDeg: s.CourseDeg, Status: int(s.Status),
	}
}

// Model converts the wire state back into the model type.
func (s State) Model() model.VesselState {
	return model.VesselState{
		MMSI: s.MMSI, At: s.At, Pos: geo.Point{Lat: s.Lat, Lon: s.Lon},
		SpeedKn: s.SpeedKn, CourseDeg: s.CourseDeg, Status: ais.NavStatus(s.Status),
	}
}

// Alert is the wire form of one recognised event.
type Alert struct {
	Kind     string    `json:"kind"`
	MMSI     uint32    `json:"mmsi"`
	Other    uint32    `json:"other,omitempty"`
	At       time.Time `json:"at"`
	Lat      float64   `json:"lat"`
	Lon      float64   `json:"lon"`
	Severity int       `json:"severity"`
	Note     string    `json:"note,omitempty"`
}

// AlertOf converts an events.Alert into its wire form.
func AlertOf(a events.Alert) Alert {
	return Alert{
		Kind: string(a.Kind), MMSI: a.MMSI, Other: a.Other, At: a.At,
		Lat: a.Where.Lat, Lon: a.Where.Lon, Severity: a.Severity, Note: a.Note,
	}
}

// Model converts the wire alert back into the events type.
func (a Alert) Model() events.Alert {
	return events.Alert{
		Kind: events.Kind(a.Kind), MMSI: a.MMSI, Other: a.Other, At: a.At,
		Where: geo.Point{Lat: a.Lat, Lon: a.Lon}, Severity: a.Severity, Note: a.Note,
	}
}

// Situation is the wire form of an assembled operational picture: the
// vessels, the row-major Rows×Cols density surface (row 0 = south) and
// the severity-ordered alert board.
type Situation struct {
	At      time.Time `json:"at"`
	Box     Box       `json:"box"`
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Density []int     `json:"density"`
	Vessels []State   `json:"vessels"`
	Alerts  []Alert   `json:"alerts"`
}

// SituationOf converts a va.Situation into its wire form.
func SituationOf(s *va.Situation) *Situation {
	out := &Situation{
		At: s.At, Box: BoxOf(s.Bounds),
		Rows: s.Density.Rows, Cols: s.Density.Cols,
		Density: append([]int(nil), s.Density.Counts...),
	}
	for _, v := range s.Vessels {
		out.Vessels = append(out.Vessels, StateOf(v))
	}
	for _, a := range s.Alerts {
		out.Alerts = append(out.Alerts, Alert{
			Kind: a.Kind, MMSI: a.MMSI, At: a.At,
			Lat: a.Where.Lat, Lon: a.Where.Lon, Severity: a.Severity, Note: a.Note,
		})
	}
	return out
}

// SourceStats describes one source's holdings. Err reports a degraded
// federation peer: the engine kept answering without it, and this is
// where the operator sees why the picture may be partial.
//
// ResidentPoints and EvictedVessels surface the tiered archive: Points
// counts everything the source holds, ResidentPoints the subset actually
// in memory, and EvictedVessels the vessels reduced to stubs (both
// omitted while nothing is evicted — a fully resident source reports
// bytes-identically to a pre-tiering one).
type SourceStats struct {
	Name    string `json:"name"`
	Points  int    `json:"points"`
	Vessels int    `json:"vessels"`
	Live    int    `json:"live"`
	Alerts  int    `json:"alerts"`
	Err     string `json:"err,omitempty"`

	ResidentPoints int `json:"resident_points,omitempty"`
	EvictedVessels int `json:"evicted_vessels,omitempty"`

	// MMSIs is the source's distinct vessel identifier set, sorted —
	// populated only when the request set Request.MMSIs.
	MMSIs []uint32 `json:"mmsis,omitempty"`
}

// Stats aggregates the sources a query engine answers from. Points and
// Alerts are sums (overlapping sources may hold the same record twice);
// Vessels and Live count distinct MMSIs across sources, computed from
// the per-source identifier sets (an O(vessels) integer read per source,
// never a worldwide state fetch).
type Stats struct {
	Points  int           `json:"points"`
	Vessels int           `json:"vessels"`
	Live    int           `json:"live"`
	Alerts  int           `json:"alerts"`
	Sources []SourceStats `json:"sources"`

	// MMSIs is the distinct-vessel union across sources, sorted —
	// populated only when the request set Request.MMSIs (the read
	// federation peers poll).
	MMSIs []uint32 `json:"mmsis,omitempty"`
}

// Result is the answer to one Request. Exactly the fields relevant to
// the request's kind are populated; Count is the number of states or
// alerts (or live vessels for situations) before Limit truncation.
type Result struct {
	Kind    Kind     `json:"kind"`
	Sources []string `json:"sources"`
	Count   int      `json:"count"`
	// Truncated reports that Limit cut the answer short.
	Truncated bool `json:"truncated,omitempty"`

	States    []State    `json:"states,omitempty"`
	Alerts    []Alert    `json:"alerts,omitempty"`
	Situation *Situation `json:"situation,omitempty"`
	Stats     *Stats     `json:"stats,omitempty"`

	// Track intelligence payloads (trackintel.go), one per kind.
	Track      *TrackState   `json:"track,omitempty"`
	Prediction *Prediction   `json:"prediction,omitempty"`
	Quality    *QualityScore `json:"quality,omitempty"`

	// Anomalies is the behavioral-deviation payload (anomaly.go).
	Anomalies *AnomalyReport `json:"anomalies,omitempty"`

	// Trace is the per-stage breakdown, present when the request set
	// Trace: true. Spans are sorted by (start, name); "total" is last.
	Trace []TraceSpan `json:"trace,omitempty"`
}

// TraceSpan is one named stage of a traced request as it appears on the
/// wire: offset from request start and duration, both in nanoseconds.
// Parent names the span this one nests under ("" = root) — federated
// traces use it to hang a peer's stages below its peer/<addr> span.
type TraceSpan struct {
	Name    string `json:"name"`
	Parent  string `json:"parent,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// ModelStates converts the result's states back into model form.
func (r *Result) ModelStates() []model.VesselState {
	out := make([]model.VesselState, len(r.States))
	for i, s := range r.States {
		out[i] = s.Model()
	}
	return out
}
