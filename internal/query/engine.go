package query

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tstore"
	"repro/internal/va"
)

// Source is one store the engine can answer from. The three shipped
// implementations are NewLiveSource (the sharded in-process pipelines,
// fanned out per shard and merged), NewStoreSource (a recovered or
// loaded tstore archive) and Client (another daemon as a federation
// member — see federate.go); any future backend implements the same six
// reads and inherits the whole query surface. Implementations must be
// safe for concurrent use: the engine fans a multi-source read out to
// all sources at once.
//
// Contracts: Trajectory and SpaceTime return samples in [from, to]
// ordered by (MMSI, time); Nearest returns up to k distinct vessels
// each with a sample within tol of at, ordered by that sample's
// distance to p; Live returns at most one (the newest known) state per
// vessel inside r, ordered by MMSI; Alerts returns the recognised-event
// history (nil for sources that do not track events); DistinctMMSI
// returns the sorted identifiers of exactly the vessels a worldwide
// Live read would report — the cheap distinct-count read stats
// aggregation uses instead of fetching every source's live picture
// (nil on a degraded peer).
type Source interface {
	Name() string
	Trajectory(mmsi uint32, from, to time.Time) []model.VesselState
	SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState
	Nearest(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState
	Live(r geo.Rect) []model.VesselState
	Alerts() []events.Alert
	Stats() SourceStats
	DistinctMMSI() []uint32
}

// StatsSetSource is the optional combined read: Stats and DistinctMMSI
// answered in one exchange. Sources whose reads each cost a round trip
// implement it (Client does — one stats poll per peer instead of two);
// the engine falls back to the two Source calls otherwise.
type StatsSetSource interface {
	StatsWithMMSI() (SourceStats, []uint32)
}

// Engine executes Requests against one or more Sources, merging and
// deduplicating on (MMSI, timestamp) so a sample present both in a live
// shard and in the durable archive appears once. It is safe for
// concurrent use when its sources are (both shipped sources are).
type Engine struct {
	sources []Source
	reg     *obs.Registry // nil when uninstrumented
}

// NewEngine builds an engine over the given sources (at least one).
func NewEngine(sources ...Source) *Engine {
	return &Engine{sources: sources}
}

// Instrument points the engine at a metrics registry: every query then
// records per-kind end-to-end latency (query_latency_ns), per-source
// fan-out latency (query_source_ns) and request/error counts. Call
// before serving; the field is read without synchronisation.
func (e *Engine) Instrument(reg *obs.Registry) { e.reg = reg }

// Sources returns the source names in answer order.
func (e *Engine) Sources() []string {
	out := make([]string, len(e.sources))
	for i, s := range e.sources {
		out[i] = s.Name()
	}
	return out
}

// sourcesFor returns the sources a request is answered from: all of them
// normally, the non-peer ones when the request is marked Local — the
// federation loop guard (see PeerSource).
func (e *Engine) sourcesFor(req Request) []Source {
	if !req.Local {
		return e.sources
	}
	local := make([]Source, 0, len(e.sources))
	for _, s := range e.sources {
		if _, remote := s.(PeerSource); !remote {
			local = append(local, s)
		}
	}
	return local
}

// qobs carries the per-request observability hooks through the helper
// chain: the engine's registry (nil when uninstrumented) and the
// request's trace (nil when untraced). The zero value records nothing,
// so the uninstrumented path pays only nil checks.
type qobs struct {
	reg *obs.Registry
	tr  *obs.Trace
}

// span starts a named stage span; ending it is the returned func.
func (q qobs) span(name string) func() { return q.tr.StartSpan(name) }

// sourceStart begins the per-source measurement inside a gather
// goroutine: a query_source_ns sample and a "source:<name>" span.
func (q qobs) sourceStart(s Source) func() {
	if q.reg == nil && q.tr == nil {
		return func() {}
	}
	var h *obs.Histogram
	if q.reg != nil {
		h = q.reg.Histogram("query_source_ns", "source", s.Name())
	}
	end := q.tr.StartSpan("source:" + s.Name())
	t0 := time.Now()
	return func() {
		if h != nil {
			h.ObserveSince(t0)
		}
		end()
	}
}

// gather runs one read against every source concurrently and returns the
// per-source results in source order (so downstream merges stay
// deterministic). Sources are required to be safe for concurrent use
// already; fanning out bounds a multi-source query at its slowest source
// — with federation peers in the mix, a timing-out peer costs one
// PeerTimeout, not one per peer serially.
func gather[T any](q qobs, srcs []Source, read func(Source) T) []T {
	out := make([]T, len(srcs))
	if len(srcs) == 1 { // common case: no goroutine overhead
		done := q.sourceStart(srcs[0])
		out[0] = read(srcs[0])
		done()
		return out
	}
	var wg sync.WaitGroup
	for i, s := range srcs {
		wg.Add(1)
		go func(i int, s Source) {
			defer wg.Done()
			done := q.sourceStart(s)
			out[i] = read(s)
			done()
		}(i, s)
	}
	wg.Wait()
	return out
}

// Query validates and executes one request.
func (e *Engine) Query(req Request) (*Result, error) {
	return e.QueryContext(context.Background(), req)
}

// QueryContext validates and executes one request. A trace carried by
// ctx (obs.WithTrace) collects stage spans; setting req.Trace without
// one starts a fresh trace and returns its spans in Result.Trace.
func (e *Engine) QueryContext(ctx context.Context, req Request) (*Result, error) {
	if len(e.sources) == 0 {
		return nil, fmt.Errorf("query: engine has no sources")
	}
	if err := req.Validate(); err != nil {
		if e.reg != nil {
			e.reg.Counter("query_errors_total").Inc()
		}
		return nil, err
	}
	req = req.normalize()
	tr := obs.FromContext(ctx)
	if tr == nil && req.Trace {
		tr = obs.NewTrace()
	}
	q := qobs{reg: e.reg, tr: tr}
	t0 := time.Now()
	srcs := e.sourcesFor(req)
	if tr != nil {
		srcs = tracedSources(srcs, tr)
	}
	names := make([]string, len(srcs))
	for i, s := range srcs {
		names[i] = s.Name()
	}
	res := &Result{Kind: req.Kind, Sources: names}
	switch req.Kind {
	case KindTrajectory:
		from, to := req.timeRange()
		lists := gather(q, srcs, func(s Source) []model.VesselState {
			return s.Trajectory(req.MMSI, from, to)
		})
		finishStates(q, req, res, flatten(lists))
	case KindSpaceTime:
		from, to := req.timeRange()
		lists := gather(q, srcs, func(s Source) []model.VesselState {
			return s.SpaceTime(req.Box.Rect(), from, to)
		})
		finishStates(q, req, res, flatten(lists))
	case KindNearest:
		nearest(q, srcs, req, res)
	case KindLivePicture:
		states := livePicture(q, srcs, req.Box.Rect())
		res.Count = len(states)
		for _, s := range truncateStates(states, req.Limit, res) {
			res.States = append(res.States, StateOf(s))
		}
	case KindSituation:
		res.Situation = situation(q, srcs, req)
		res.Count = len(res.Situation.Vessels)
	case KindAlertHistory:
		alertHistory(q, srcs, req, res)
	case KindStats:
		res.Stats = stats(q, srcs, req.MMSIs)
		res.Count = res.Stats.Points
	case KindTrack:
		res.Track = bestAnswer(q, srcs,
			func(s Source) *TrackState { return trackFrom(s, req.MMSI) },
			func(a, b *TrackState) bool { return a.At.After(b.At) })
		if res.Track != nil {
			res.Count = 1
		}
	case KindPredict:
		res.Prediction = bestAnswer(q, srcs,
			func(s Source) *Prediction { return predictFrom(s, req.MMSI, time.Duration(req.Horizon)) },
			func(a, b *Prediction) bool { return a.From.After(b.From) })
		if res.Prediction != nil {
			res.Count = 1
		}
	case KindQuality:
		res.Quality = bestAnswer(q, srcs,
			func(s Source) *QualityScore { return qualityFrom(s, req.MMSI) },
			func(a, b *QualityScore) bool { return a.Checked > b.Checked })
		if res.Quality != nil {
			res.Count = 1
		}
	case KindAnomalies:
		if req.MMSI != 0 {
			va := bestAnswer(q, srcs,
				func(s Source) *VesselAnomaly { return vesselAnomalyFrom(s, req.MMSI) },
				betterVesselAnomaly)
			if va != nil {
				res.Anomalies = &AnomalyReport{Vessel: va}
				res.Count = 1
			}
		} else {
			lists := gather(q, srcs, func(s Source) []VesselAnomaly {
				return rankedAnomaliesFrom(s, req.Limit)
			})
			res.Anomalies = &AnomalyReport{Ranked: mergeRankedAnomalies(q, lists, req.Limit, res)}
			res.Count = len(res.Anomalies.Ranked)
		}
	}
	if e.reg != nil {
		e.reg.Counter("query_requests_total", "kind", string(req.Kind)).Inc()
		e.reg.Histogram("query_latency_ns", "kind", string(req.Kind)).ObserveSince(t0)
	}
	if req.Trace && tr != nil {
		for _, sp := range tr.Spans() {
			res.Trace = append(res.Trace, TraceSpan{
				Name: sp.Name, Parent: sp.Parent, StartNS: int64(sp.Start), DurNS: int64(sp.Dur),
			})
		}
		res.Trace = append(res.Trace, TraceSpan{Name: "total", DurNS: int64(time.Since(t0))})
	}
	return res, nil
}

// tracedSources substitutes trace-bound views for sources that forward
// trace context across a remote hop (federation clients), so a traced
// request comes back with one span tree covering every daemon it
// touched. The engine's own slice is never mutated.
func tracedSources(srcs []Source, tr *obs.Trace) []Source {
	out := srcs
	copied := false
	for i, s := range srcs {
		ts, ok := s.(traceSource)
		if !ok {
			continue
		}
		if !copied {
			out = make([]Source, len(srcs))
			copy(out, srcs)
			copied = true
		}
		out[i] = ts.withTrace(tr)
	}
	return out
}

// finishStates dedupes, orders, truncates and encodes a merged sample set.
func finishStates(q qobs, req Request, res *Result, merged []model.VesselState) {
	defer q.span("merge")()
	merged = DedupeStates(merged)
	res.Count = len(merged)
	for _, s := range truncateStates(merged, req.Limit, res) {
		res.States = append(res.States, StateOf(s))
	}
}

// DedupeStates sorts samples by (MMSI, time) and removes (MMSI,
// timestamp) duplicates in place — the merge step between overlapping
// sources. Exported for tests and for callers composing their own reads.
func DedupeStates(states []model.VesselState) []model.VesselState {
	sort.Slice(states, func(i, j int) bool {
		if states[i].MMSI != states[j].MMSI {
			return states[i].MMSI < states[j].MMSI
		}
		return states[i].At.Before(states[j].At)
	})
	out := states[:0]
	for _, s := range states {
		if n := len(out); n > 0 && out[n-1].MMSI == s.MMSI && out[n-1].At.Equal(s.At) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// truncateStates applies the request limit, recording the cut.
func truncateStates(states []model.VesselState, limit int, res *Result) []model.VesselState {
	if limit > 0 && len(states) > limit {
		res.Truncated = true
		return states[:limit]
	}
	return states
}

// flatten concatenates per-source result lists in source order.
func flatten(lists [][]model.VesselState) []model.VesselState {
	if len(lists) == 1 {
		return lists[0]
	}
	var out []model.VesselState
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// nearest merges per-source candidate lists: order every candidate by
// distance to the reference point, keep the nearest sample per vessel,
// take k.
func nearest(q qobs, srcs []Source, req Request, res *Result) {
	p := geo.Point{Lat: req.Lat, Lon: req.Lon}
	cands := flatten(gather(q, srcs, func(s Source) []model.VesselState {
		return s.Nearest(p, req.At, time.Duration(req.Tol), req.K)
	}))
	defer q.span("merge")()
	sort.SliceStable(cands, func(i, j int) bool {
		return geo.Distance(p, cands[i].Pos) < geo.Distance(p, cands[j].Pos)
	})
	seen := make(map[uint32]bool, req.K)
	for _, c := range cands {
		if seen[c.MMSI] {
			continue
		}
		seen[c.MMSI] = true
		res.States = append(res.States, StateOf(c))
		if len(res.States) == req.K {
			break
		}
	}
	res.Count = len(res.States)
}

// livePicture merges the sources' current pictures, keeping the newest
// state per vessel (a live pipeline beats a stale archive), MMSI-ordered.
func livePicture(q qobs, srcs []Source, r geo.Rect) []model.VesselState {
	lists := gather(q, srcs, func(s Source) []model.VesselState { return s.Live(r) })
	defer q.span("merge")()
	newest := make(map[uint32]model.VesselState)
	for _, states := range lists {
		for _, st := range states {
			if prev, ok := newest[st.MMSI]; !ok || st.At.After(prev.At) {
				newest[st.MMSI] = st
			}
		}
	}
	out := make([]model.VesselState, 0, len(newest))
	for _, st := range newest {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

// situation assembles the merged operational picture: the deduplicated
// live states plus the merged alert board, aggregated exactly as
// core.Pipeline.Situation aggregates a single pipeline's.
func situation(q qobs, srcs []Source, req Request) *Situation {
	bounds := req.Box.Rect()
	// Like stats: the two fan-outs run concurrently so a hanging peer
	// costs one timeout per situation, not two.
	var vessels []model.VesselState
	var merged []events.Alert
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		vessels = livePicture(q, srcs, bounds)
	}()
	go func() {
		defer wg.Done()
		merged = mergedAlerts(q, srcs)
	}()
	wg.Wait()
	defer q.span("assemble")()
	at := req.At
	if at.IsZero() {
		for _, v := range vessels {
			if v.At.After(at) {
				at = v.At
			}
		}
	}
	var alerts []va.SituationAlert
	for _, a := range merged {
		if a.Severity < req.MinSeverity {
			continue
		}
		alerts = append(alerts, va.SituationAlert{
			At: a.At, Kind: string(a.Kind), MMSI: a.MMSI,
			Where: a.Where, Severity: a.Severity, Note: a.Note,
		})
	}
	return SituationOf(va.BuildSituation(at, bounds, vessels, alerts, req.Rows, req.Cols))
}

// alertHistory merges, filters and time-orders the sources' alerts.
func alertHistory(q qobs, srcs []Source, req Request, res *Result) {
	from, to := req.timeRange()
	merged := mergedAlerts(q, srcs)
	defer q.span("merge")()
	var kept []events.Alert
	for _, a := range merged {
		if a.Severity < req.MinSeverity || a.At.Before(from) || a.At.After(to) {
			continue
		}
		kept = append(kept, a)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].At.Before(kept[j].At) })
	res.Count = len(kept)
	if req.Limit > 0 && len(kept) > req.Limit {
		res.Truncated = true
		kept = kept[:req.Limit]
	}
	for _, a := range kept {
		res.Alerts = append(res.Alerts, AlertOf(a))
	}
}

// mergedAlerts concatenates the sources' alert histories, dropping exact
// duplicates (same kind, vessels and instant) from overlapping sources.
func mergedAlerts(q qobs, srcs []Source) []events.Alert {
	type key struct {
		kind        events.Kind
		mmsi, other uint32
		unixNano    int64
	}
	var out []events.Alert
	seen := make(map[key]bool)
	for _, alerts := range gather(q, srcs, func(s Source) []events.Alert { return s.Alerts() }) {
		for _, a := range alerts {
			k := key{kind: a.Kind, mmsi: a.MMSI, other: a.Other, unixNano: a.At.UnixNano()}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// --- track intelligence fan-out (trackintel.go holds the types) -----------------

// bestAnswer fans a per-vessel track-intelligence read out to every
// source and keeps the best non-nil answer under the given ordering
// (ties keep the earlier source, so merged answers are deterministic).
func bestAnswer[T any](q qobs, srcs []Source, read func(Source) *T, better func(a, b *T) bool) *T {
	answers := gather(q, srcs, read)
	defer q.span("merge")()
	var best *T
	for _, a := range answers {
		if a == nil {
			continue
		}
		if best == nil || better(a, best) {
			best = a
		}
	}
	return best
}

// fullHistory reads a source's entire stored trajectory for one vessel
// (the track-intelligence kinds always score the whole known history).
func fullHistory(s Source, mmsi uint32) []model.VesselState {
	return s.Trajectory(mmsi, time.Time{}, time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC))
}

// trackFrom answers one source: live fused state when the source
// maintains one (TrackIntelSource — its answer is authoritative, nil
// included), a deterministic replay of its stored trajectory otherwise.
func trackFrom(s Source, mmsi uint32) *TrackState {
	if ti, ok := s.(TrackIntelSource); ok {
		ts, _ := ti.Track(mmsi)
		return ts
	}
	return DeriveTrack(mmsi, fullHistory(s, mmsi))
}

func predictFrom(s Source, mmsi uint32, horizon time.Duration) *Prediction {
	if ti, ok := s.(TrackIntelSource); ok {
		p, _ := ti.Predict(mmsi, horizon)
		return p
	}
	return DerivePredict(mmsi, fullHistory(s, mmsi), horizon)
}

func qualityFrom(s Source, mmsi uint32) *QualityScore {
	if ti, ok := s.(TrackIntelSource); ok {
		qs, _ := ti.Quality(mmsi)
		return qs
	}
	return DeriveQuality(mmsi, fullHistory(s, mmsi))
}

// --- anomaly fan-out (anomaly.go holds the types) --------------------------------

// vesselAnomalyFrom answers one source: the live behavior profile when
// the source maintains one (AnomalySource — authoritative, nil
// included), a deterministic replay of its stored trajectory otherwise.
func vesselAnomalyFrom(s Source, mmsi uint32) *VesselAnomaly {
	if as, ok := s.(AnomalySource); ok {
		va, _ := as.VesselAnomaly(mmsi)
		return va
	}
	return DeriveAnomalies(mmsi, fullHistory(s, mmsi))
}

// betterVesselAnomaly prefers the fresher (then deeper) answer when
// sources overlap.
func betterVesselAnomaly(a, b *VesselAnomaly) bool {
	if !a.At.Equal(b.At) {
		return a.At.After(b.At)
	}
	return a.Samples > b.Samples
}

// rankedAnomaliesFrom answers one source's fleet ranking: the live
// stage's when it maintains one, a replay over the source's distinct
// vessels otherwise. A degraded AnomalySource (ok=false) contributes
// nothing, like every other degraded peer read.
func rankedAnomaliesFrom(s Source, limit int) []VesselAnomaly {
	if as, ok := s.(AnomalySource); ok {
		ranked, _ := as.RankedAnomalies(limit)
		return ranked
	}
	return DeriveRankedAnomalies(s, limit)
}

// mergeRankedAnomalies merges per-source rankings: one entry per vessel
// (the fresher answer wins, earlier source on ties), re-sorted by score
// and truncated to limit.
func mergeRankedAnomalies(q qobs, lists [][]VesselAnomaly, limit int, res *Result) []VesselAnomaly {
	defer q.span("merge")()
	best := make(map[uint32]VesselAnomaly)
	for _, l := range lists {
		for _, va := range l {
			if prev, ok := best[va.MMSI]; !ok || betterVesselAnomaly(&va, &prev) {
				best[va.MMSI] = va
			}
		}
	}
	out := make([]VesselAnomaly, 0, len(best))
	for _, va := range best {
		out = append(out, va)
	}
	SortRankedAnomalies(out)
	if limit > 0 && len(out) > limit {
		res.Truncated = true
		out = out[:limit]
	}
	return out
}

// stats aggregates per-source statistics. Vessels and Live are distinct
// counts and therefore computed from merged per-source identifier sets,
// not summed — DistinctMMSI moves one sorted uint32 list per source, so
// a stats poll against an N-vessel federation peer costs O(N) integers
// instead of the N full states the worldwide live picture used to
// fetch. Exactness of the headline counts is unchanged (and stays
// test-pinned): every shipped source reports exactly the vessels its
// worldwide Live read would.
func stats(q qobs, srcs []Source, withSets bool) *Stats {
	st := &Stats{}
	// One combined fan-out: a source implementing StatsWithMMSI (peers
	// do) answers both reads in one exchange, everything else pays two
	// cheap local calls — and a hanging peer still costs one timeout per
	// stats query.
	type combined struct {
		ss  SourceStats
		set []uint32
	}
	list := gather(q, srcs, func(s Source) combined {
		if c, ok := s.(StatsSetSource); ok {
			ss, set := c.StatsWithMMSI()
			return combined{ss: ss, set: set}
		}
		return combined{ss: s.Stats(), set: s.DistinctMMSI()}
	})
	defer q.span("merge")()
	union := make(map[uint32]bool)
	for _, c := range list {
		ss := c.ss
		if withSets {
			ss.MMSIs = c.set
		}
		st.Sources = append(st.Sources, ss)
		st.Points += ss.Points
		st.Alerts += ss.Alerts
		for _, m := range c.set {
			union[m] = true
		}
	}
	st.Vessels = len(union)
	st.Live = len(union)
	if withSets {
		st.MMSIs = make([]uint32, 0, len(union))
		for m := range union {
			st.MMSIs = append(st.MMSIs, m)
		}
		sort.Slice(st.MMSIs, func(i, j int) bool { return st.MMSIs[i] < st.MMSIs[j] })
	}
	return st
}

// --- live source (core.Sharded fan-out) -----------------------------------------

// liveSource answers from the running sharded pipelines: per-vessel
// reads route to the owning shard, set reads fan out across every
// shard's consistent view and merge.
type liveSource struct {
	sharded   *core.Sharded
	snaps     []*snapshotCache
	tracks    TrackIntelSource // nil without an online track stage
	anomalies AnomalySource    // nil without an online anomaly stage
}

// NewLiveSource builds a Source over the sharded pipelines (the
// in-process live picture plus each shard's in-memory archive). Nearest
// queries build per-shard spatial snapshots, cached until the shard's
// archive grows.
func NewLiveSource(s *core.Sharded) Source {
	return NewLiveSourceIntel(s, nil, nil)
}

// NewLiveSourceTracked builds the live Source with an online track
// stage behind it: the track-intelligence reads answer from the stage's
// fused state where it knows the vessel, and fall back to a
// deterministic store replay where it does not (stage disabled, or
// history preloaded before the stage started observing the feed).
func NewLiveSourceTracked(s *core.Sharded, tracks TrackIntelSource) Source {
	return NewLiveSourceIntel(s, tracks, nil)
}

// NewLiveSourceIntel builds the live Source with both online inference
// stages behind it — track intelligence and behavior anomalies — each
// individually optional under the same contract: answer from the stage
// where it knows the vessel, fall back to a deterministic store replay
// where it does not.
func NewLiveSourceIntel(s *core.Sharded, tracks TrackIntelSource, anomalies AnomalySource) Source {
	src := &liveSource{sharded: s, tracks: tracks, anomalies: anomalies}
	for _, p := range s.Shards {
		src.snaps = append(src.snaps, &snapshotCache{store: p.Store})
	}
	return src
}

func (l *liveSource) Name() string { return "live" }

func (l *liveSource) Trajectory(mmsi uint32, from, to time.Time) []model.VesselState {
	return l.sharded.ShardFor(mmsi).Store.TimeRange(mmsi, from, to)
}

func (l *liveSource) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	var out []model.VesselState
	for _, p := range l.sharded.Shards {
		out = append(out, p.Store.SpaceTime(r, from, to)...)
	}
	// Shards partition the fleet, so per-shard (MMSI, time) order merges
	// into global order by a plain sort without ties to break.
	sort.Slice(out, func(i, j int) bool {
		if out[i].MMSI != out[j].MMSI {
			return out[i].MMSI < out[j].MMSI
		}
		return out[i].At.Before(out[j].At)
	})
	return out
}

func (l *liveSource) Nearest(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	var cands []model.VesselState
	for _, sc := range l.snaps {
		cands = append(cands, sc.get().NearestVessels(p, at, tol, k)...)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return geo.Distance(p, cands[i].Pos) < geo.Distance(p, cands[j].Pos)
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

func (l *liveSource) Live(r geo.Rect) []model.VesselState {
	var out []model.VesselState
	for _, p := range l.sharded.Shards {
		out = append(out, p.Live.InRect(r)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MMSI < out[j].MMSI })
	return out
}

func (l *liveSource) Alerts() []events.Alert { return l.sharded.Alerts() }

func (l *liveSource) Stats() SourceStats {
	st := SourceStats{Name: l.Name()}
	resident, evicted := 0, 0
	for _, p := range l.sharded.Shards {
		st.Points += p.Store.Len()
		st.Vessels += p.Store.VesselCount() // shards partition the fleet: no double count
		st.Live += p.Live.Count()
		tc := p.Store.Tier()
		resident += tc.ResidentPoints
		evicted += tc.EvictedPoints
		st.EvictedVessels += tc.EvictedVessels
	}
	if evicted > 0 { // fully resident sources report bytes-identically to pre-tiering
		st.ResidentPoints = resident
	}
	st.Alerts = len(l.sharded.Alerts())
	return st
}

// Track implements TrackIntelSource: the online stage's fused state,
// else a replay of the owning shard's store (which pages back evicted
// history, so tiering keeps these reads exact).
func (l *liveSource) Track(mmsi uint32) (*TrackState, bool) {
	if l.tracks != nil {
		if ts, ok := l.tracks.Track(mmsi); ok {
			return ts, true
		}
	}
	ts := DeriveTrack(mmsi, fullHistory(l, mmsi))
	return ts, ts != nil
}

// Predict implements TrackIntelSource.
func (l *liveSource) Predict(mmsi uint32, horizon time.Duration) (*Prediction, bool) {
	if l.tracks != nil {
		if p, ok := l.tracks.Predict(mmsi, horizon); ok {
			return p, true
		}
	}
	p := DerivePredict(mmsi, fullHistory(l, mmsi), horizon)
	return p, p != nil
}

// Quality implements TrackIntelSource.
func (l *liveSource) Quality(mmsi uint32) (*QualityScore, bool) {
	if l.tracks != nil {
		if qs, ok := l.tracks.Quality(mmsi); ok {
			return qs, true
		}
	}
	qs := DeriveQuality(mmsi, fullHistory(l, mmsi))
	return qs, qs != nil
}

// VesselAnomaly implements AnomalySource: the online stage's profile,
// else a replay of the owning shard's store (which pages back evicted
// history, so tiering keeps the read exact).
func (l *liveSource) VesselAnomaly(mmsi uint32) (*VesselAnomaly, bool) {
	if l.anomalies != nil {
		if va, ok := l.anomalies.VesselAnomaly(mmsi); ok {
			return va, true
		}
	}
	va := DeriveAnomalies(mmsi, fullHistory(l, mmsi))
	return va, va != nil
}

// RankedAnomalies implements AnomalySource. With a stage attached the
// ranking covers the vessels the stage has observed; without one it is
// derived from the live picture's distinct vessels.
func (l *liveSource) RankedAnomalies(limit int) ([]VesselAnomaly, bool) {
	if l.anomalies != nil {
		return l.anomalies.RankedAnomalies(limit)
	}
	return DeriveRankedAnomalies(l, limit), true
}

func (l *liveSource) DistinctMMSI() []uint32 {
	var out []uint32
	for _, p := range l.sharded.Shards {
		out = append(out, p.Live.MMSIs()...) // shards partition the fleet: no duplicates
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- archive source (tstore.Store) ----------------------------------------------

// storeSource answers from a trajectory archive — typically one
// recovered by store.OpenReadOnly or loaded from a snapshot file. The
// "live picture" of an archive is each vessel's newest persisted state.
type storeSource struct {
	name  string
	store *tstore.Store
	snap  snapshotCache
}

// NewStoreSource builds a Source over a trajectory archive. The name
// labels it in Result.Sources ("archive" when empty).
func NewStoreSource(name string, st *tstore.Store) Source {
	if name == "" {
		name = "archive"
	}
	return &storeSource{name: name, store: st, snap: snapshotCache{store: st}}
}

func (a *storeSource) Name() string { return a.name }

func (a *storeSource) Trajectory(mmsi uint32, from, to time.Time) []model.VesselState {
	return a.store.TimeRange(mmsi, from, to)
}

func (a *storeSource) SpaceTime(r geo.Rect, from, to time.Time) []model.VesselState {
	return a.store.SpaceTime(r, from, to)
}

func (a *storeSource) Nearest(p geo.Point, at time.Time, tol time.Duration, k int) []model.VesselState {
	return a.snap.get().NearestVessels(p, at, tol, k)
}

func (a *storeSource) Live(r geo.Rect) []model.VesselState {
	latest := a.store.LatestStates() // O(vessels), already MMSI-ordered
	out := latest[:0]
	for _, s := range latest {
		if r.Contains(s.Pos) {
			out = append(out, s)
		}
	}
	return out
}

func (a *storeSource) Alerts() []events.Alert { return nil }

func (a *storeSource) Stats() SourceStats {
	ss := SourceStats{
		Name: a.name, Points: a.store.Len(), Vessels: a.store.VesselCount(),
	}
	tc := a.store.Tier()
	if tc.EvictedPoints > 0 {
		ss.ResidentPoints = tc.ResidentPoints
		ss.EvictedVessels = tc.EvictedVessels
	}
	return ss
}

func (a *storeSource) DistinctMMSI() []uint32 { return a.store.MMSIs() }

// snapshotCache lazily builds a store's spatial snapshot and reuses it
// until the store grows — archives are static after recovery, so their
// snapshot builds once; live shard stores rebuild only when queried
// after new appends.
type snapshotCache struct {
	store *tstore.Store

	mu    sync.Mutex
	built *tstore.Snapshot
	atLen int
}

func (c *snapshotCache) get() *tstore.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.store.Len(); c.built == nil || n != c.atLen {
		c.built = c.store.SpatialSnapshot()
		c.atLen = n
	}
	return c.built
}
