package query

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tstore"
)

func testServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	st := fill(tstore.New(), testStates(8, 30))
	eng := NewEngine(NewStoreSource("archive", st))
	ts := httptest.NewServer(NewServer(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestHTTPRoundTripMatchesInProcess pins acceptance criterion 2: for
// every request kind, the /v1/query round-trip produces a Result whose
// JSON encoding is byte-identical to the in-process answer's.
func TestHTTPRoundTripMatchesInProcess(t *testing.T) {
	ts, eng := testServer(t)
	client := NewClient(ts.URL)
	box := Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}
	reqs := []Request{
		{Kind: KindTrajectory, MMSI: 201000003},
		{Kind: KindTrajectory, MMSI: 201000003, From: t0.Add(3 * time.Minute), To: t0.Add(9 * time.Minute)},
		{Kind: KindSpaceTime, Box: &box, From: t0, To: t0.Add(20 * time.Minute)},
		{Kind: KindNearest, Lat: 42.2, Lon: 5.3, At: t0.Add(10 * time.Minute), Tol: Duration(5 * time.Minute), K: 3},
		{Kind: KindLivePicture, Box: &box},
		{Kind: KindSituation, Box: &box, Rows: 6, Cols: 12},
		{Kind: KindAlertHistory},
		{Kind: KindStats},
		{Kind: KindTrack, MMSI: 201000003},
		{Kind: KindPredict, MMSI: 201000003, Horizon: Duration(15 * time.Minute)},
		{Kind: KindQuality, MMSI: 201000003},
		{Kind: KindSpaceTime, Box: &box, Limit: 5},
	}
	for _, req := range reqs {
		t.Run(string(req.Kind), func(t *testing.T) {
			local, err := eng.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := client.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			lj, err := json.Marshal(local)
			if err != nil {
				t.Fatal(err)
			}
			rj, err := json.Marshal(remote)
			if err != nil {
				t.Fatal(err)
			}
			if string(lj) != string(rj) {
				t.Fatalf("HTTP round trip diverged:\nlocal:  %s\nremote: %s", lj, rj)
			}
		})
	}
}

// TestHTTPGetRoutesMatchPost pins that the per-kind GET conveniences
// build the same request the canonical POST route executes.
func TestHTTPGetRoutesMatchPost(t *testing.T) {
	ts, eng := testServer(t)
	atStr := t0.Add(10 * time.Minute).UTC().Format(time.RFC3339)
	cases := []struct {
		url string
		req Request
	}{
		{"/v1/trajectory?mmsi=201000003", Request{Kind: KindTrajectory, MMSI: 201000003}},
		{"/v1/spacetime?box=41,4,45,9&to=" + atStr,
			Request{Kind: KindSpaceTime, Box: &Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}, To: t0.Add(10 * time.Minute).UTC()}},
		{"/v1/nearest?point=42.2,5.3&at=" + atStr + "&tol=5m&k=3",
			Request{Kind: KindNearest, Lat: 42.2, Lon: 5.3, At: t0.Add(10 * time.Minute).UTC(), Tol: Duration(5 * time.Minute), K: 3}},
		{"/v1/live?box=41,4,45,9", Request{Kind: KindLivePicture, Box: &Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}}},
		{"/v1/situation?box=41,4,45,9&rows=6&cols=12",
			Request{Kind: KindSituation, Box: &Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}, Rows: 6, Cols: 12}},
		{"/v1/alerts?severity=2", Request{Kind: KindAlertHistory, MinSeverity: 2}},
		{"/v1/stats", Request{Kind: KindStats}},
		{"/v1/track?mmsi=201000003", Request{Kind: KindTrack, MMSI: 201000003}},
		{"/v1/predict?mmsi=201000003&horizon=15m",
			Request{Kind: KindPredict, MMSI: 201000003, Horizon: Duration(15 * time.Minute)}},
		{"/v1/quality?mmsi=201000003", Request{Kind: KindQuality, MMSI: 201000003}},
	}
	for _, c := range cases {
		t.Run(c.url, func(t *testing.T) {
			resp, err := http.Get(ts.URL + c.url)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %s — %s", c.url, resp.Status, body)
			}
			want, err := eng.Query(c.req)
			if err != nil {
				t.Fatal(err)
			}
			wj, _ := json.Marshal(want)
			if strings.TrimSpace(string(body)) != string(wj) {
				t.Fatalf("GET %s diverged from POST:\nGET:  %s\nPOST: %s", c.url, body, wj)
			}
		})
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := testServer(t)
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	cases := []struct {
		path       string
		wantStatus int
		wantSubstr string
	}{
		{"/v1/spacetime?box=44,4,42,9", http.StatusBadRequest, "minLat"},
		{"/v1/spacetime?box=42,4,nope,9", http.StatusBadRequest, "not a number"},
		{"/v1/spacetime", http.StatusBadRequest, "requires box"},
		{"/v1/trajectory", http.StatusBadRequest, "requires mmsi"},
		{"/v1/trajectory?mmsi=abc", http.StatusBadRequest, "integer"},
		{"/v1/nearest?point=42.2", http.StatusBadRequest, "lat,lon"},
		{"/v1/nearest", http.StatusBadRequest, "requires point"},
		{"/v1/trajectory?mmsi=-1", http.StatusBadRequest, "unsigned"},
		{"/v1/trajectory?mmsi=4294967297", http.StatusBadRequest, "unsigned"},
		{"/v1/alerts?from=yesterday", http.StatusBadRequest, "RFC 3339"},
		{"/v1/query", http.StatusMethodNotAllowed, "POST"},
	}
	for _, c := range cases {
		status, body := get(c.path)
		if status != c.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", c.path, status, c.wantStatus, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON {error}: %s", c.path, body)
		} else if !strings.Contains(e.Error, c.wantSubstr) {
			t.Errorf("%s: error %q does not mention %q", c.path, e.Error, c.wantSubstr)
		}
	}

	// POST with an invalid body and an unknown kind.
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if status, body := post("{"); status != http.StatusBadRequest {
		t.Errorf("truncated body: status %d (%s)", status, body)
	}
	if status, body := post(`{"kind":"bogus"}`); status != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d (%s)", status, body)
	}
	if status, body := post(`{"kind":"stats","nonsense":1}`); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d (%s)", status, body)
	}

	// (0,0) is a legitimate nearest reference point when given explicitly.
	if status, body := get2(ts, "/v1/nearest?point=0,0&k=1"); status != http.StatusOK {
		t.Errorf("nearest at (0,0): status %d (%s)", status, body)
	}
}

func get2(ts *httptest.Server, path string) (int, string) {
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestClientErrorsAreDescriptive(t *testing.T) {
	ts, _ := testServer(t)
	client := NewClient(ts.URL)
	_, err := client.Query(Request{Kind: KindSpaceTime})
	if err == nil || !strings.Contains(err.Error(), "requires box") {
		t.Fatalf("client should surface the server's validation error, got %v", err)
	}
}
