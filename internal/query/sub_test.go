package query

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/tstore"
)

// collect drains n updates (with a deadline) from a subscription.
func collect(t *testing.T, sub *Subscription, n int) []Update {
	t.Helper()
	var out []Update
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("subscription closed after %d of %d updates (err: %v)", len(out), n, sub.Err())
			}
			out = append(out, u)
		case <-deadline:
			t.Fatalf("timed out after %d of %d updates", len(out), n)
		}
	}
	return out
}

func TestHubFiltersByKind(t *testing.T) {
	hub := NewHub(HubConfig{})
	states := testStates(4, 10)                                       // vessels 201000001..4 marching NE
	box := Box{MinLat: 42.0, MinLon: 5.0, MaxLat: 42.04, MaxLon: 5.2} // vessel 1's lane only

	follow, err := hub.Subscribe(Request{Kind: KindTrajectory, MMSI: 201000002}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	watch, err := hub.Subscribe(Request{Kind: KindSpaceTime, Box: &box}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := hub.Subscribe(Request{
		Kind: KindTrajectory, MMSI: 201000002, From: t0, To: t0.Add(4 * time.Minute),
	}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alerts, err := hub.Subscribe(Request{Kind: KindAlertHistory, MinSeverity: 3}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range states {
		hub.PublishState(s)
	}
	hub.PublishAlert(events.Alert{Kind: "rendezvous", MMSI: 7, At: t0, Severity: 2})
	hub.PublishAlert(events.Alert{Kind: "dark-period", MMSI: 8, At: t0, Severity: 4})

	for _, u := range collect(t, follow, 10) {
		if u.Kind != UpdateState || u.State.MMSI != 201000002 {
			t.Fatalf("follow leaked %+v", u)
		}
	}
	inBox := 0
	for _, s := range states {
		if box.Rect().Contains(s.Pos) {
			inBox++
		}
	}
	got := collect(t, watch, inBox)
	for _, u := range got {
		if !box.Rect().Contains(u.State.Model().Pos) {
			t.Fatalf("box watch leaked %+v", u.State)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("updates out of sequence: %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}
	for _, u := range collect(t, windowed, 5) { // minutes 0..4 inclusive
		if u.State.At.After(t0.Add(4 * time.Minute)) {
			t.Fatalf("time-windowed follow leaked %+v", u.State)
		}
	}
	au := collect(t, alerts, 1)
	if au[0].Alert.Kind != "dark-period" || au[0].Alert.Severity != 4 {
		t.Fatalf("alert feed delivered %+v, want the sev4 dark-period only", au[0].Alert)
	}
	if d := follow.Dropped() + watch.Dropped() + windowed.Dropped() + alerts.Dropped(); d != 0 {
		t.Fatalf("unexpected drops: %d", d)
	}
}

func TestHubRejectsUnstreamableKinds(t *testing.T) {
	hub := NewHub(HubConfig{})
	for _, k := range []Kind{KindNearest, KindStats} {
		req := Request{Kind: k, K: 1}
		if _, err := hub.Subscribe(req, SubOptions{}); err == nil ||
			!strings.Contains(err.Error(), "not streamable") {
			t.Fatalf("kind %s: want not-streamable error, got %v", k, err)
		}
	}
	// Situation needs an executor: hub alone refuses, a Streamer serves it.
	box := Box{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	if _, err := hub.Subscribe(Request{Kind: KindSituation, Box: &box}, SubOptions{}); err == nil {
		t.Fatal("hub should refuse situation subscriptions")
	}
	// Invalid requests are rejected exactly like one-shot queries.
	if _, err := hub.Subscribe(Request{Kind: KindSpaceTime}, SubOptions{}); err == nil ||
		!strings.Contains(err.Error(), "requires box") {
		t.Fatalf("want validation error, got %v", err)
	}
}

func TestHubSlowConsumerDropsNotBlocks(t *testing.T) {
	hub := NewHub(HubConfig{})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	sub, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	states := testStates(2, 50)
	done := make(chan struct{})
	go func() { // must complete even though nobody drains the subscription
		for _, s := range states {
			hub.PublishState(s)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow consumer")
	}
	if got := sub.Delivered() + sub.Dropped(); got != uint64(len(states)) {
		t.Fatalf("delivered %d + dropped %d != published %d", sub.Delivered(), sub.Dropped(), len(states))
	}
	if sub.Dropped() == 0 {
		t.Fatal("expected drops with buffer 4 and 100 updates")
	}
	m := hub.Metrics.Snapshot()
	if m.In != int64(len(states)) || m.Dropped != int64(sub.Dropped()) || m.Out != int64(sub.Delivered()) {
		t.Fatalf("hub metrics %+v inconsistent with subscription (delivered %d, dropped %d)",
			m, sub.Delivered(), sub.Dropped())
	}
}

func TestHubResumeFromSequence(t *testing.T) {
	hub := NewHub(HubConfig{})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	// Arm the hub so publications are retained for replay.
	first, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	states := testStates(1, 20)
	for _, s := range states {
		hub.PublishState(s)
	}
	got := collect(t, first, 20)
	cut := got[11].Seq // "disconnect" after the 12th update
	first.Cancel()

	resumed, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{FromSeq: cut})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.StartSeq() != cut {
		t.Fatalf("resume start seq %d, want %d", resumed.StartSeq(), cut)
	}
	replay := collect(t, resumed, 8)
	for i, u := range replay {
		if want := cut + uint64(i) + 1; u.Seq != want {
			t.Fatalf("replay seq %d at %d, want %d", u.Seq, i, want)
		}
		if !u.State.At.Equal(states[12+i].At) {
			t.Fatalf("replayed state %d is %v, want %v", i, u.State.At, states[12+i].At)
		}
	}
	// And the stream continues live after the replay.
	hub.PublishState(states[0])
	if u := collect(t, resumed, 1)[0]; u.Seq != got[19].Seq+1 {
		t.Fatalf("post-replay live update seq %d, want %d", u.Seq, got[19].Seq+1)
	}
}

// TestHubResumeFromZero pins the Resume flag: a subscriber that attached
// at sequence 0 and lost its stream before receiving anything resumes
// with FromSeq 0 — which must replay everything retained, not silently
// re-subscribe "from now".
func TestHubResumeFromZero(t *testing.T) {
	hub := NewHub(HubConfig{})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	first, _ := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{})
	states := testStates(1, 10)
	for _, s := range states {
		hub.PublishState(s)
	}
	first.Cancel() // "disconnected" having delivered nothing to the consumer

	fresh, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{FromSeq: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Cancel()
	if got := len(fresh.Updates()); got != 0 {
		t.Fatalf("fresh subscribe (no Resume) replayed %d updates, want 0", got)
	}
	resumed, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world},
		SubOptions{FromSeq: 0, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Cancel()
	replay := collect(t, resumed, 10)
	for i, u := range replay {
		if u.Seq != uint64(i+1) {
			t.Fatalf("resume-from-zero replay seq %d at %d, want %d", u.Seq, i, i+1)
		}
	}
}

func TestHubReplayIsBoundedByRing(t *testing.T) {
	hub := NewHub(HubConfig{Replay: 8})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	armed, _ := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{Buffer: 64})
	defer armed.Cancel()
	states := testStates(1, 30)
	for _, s := range states {
		hub.PublishState(s)
	}
	// Ask for everything: only the last 8 survive the ring.
	sub, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{FromSeq: 1, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	replay := collect(t, sub, 8)
	if first := replay[0].Seq; first != 23 { // seqs 23..30 of 30
		t.Fatalf("bounded replay starts at seq %d, want 23 (gap detectable: FromSeq+1 was 2)", first)
	}
}

func TestSubscriptionCancelIsCleanAndIdempotent(t *testing.T) {
	hub := NewHub(HubConfig{})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	sub, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.Updates(); ok {
		t.Fatal("updates channel should be closed after Cancel")
	}
	if hub.Subscribers() != 0 {
		t.Fatalf("hub still tracks %d subscribers", hub.Subscribers())
	}
	hub.PublishState(testStates(1, 1)[0]) // must not panic on the closed sub
	if err := sub.Err(); err != nil {
		t.Fatalf("plain cancel should leave Err nil, got %v", err)
	}
}

// benchmarkHubFanout measures publish cost with n live subscribers all
// matching every update (the E17 fan-out section's inner loop).
func benchmarkHubFanout(b *testing.B, subs int) {
	hub := NewHub(HubConfig{})
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	for i := 0; i < subs; i++ {
		sub, err := hub.Subscribe(Request{Kind: KindLivePicture, Box: &world}, SubOptions{Buffer: 1024})
		if err != nil {
			b.Fatal(err)
		}
		defer sub.Cancel() // drainers exit when the deferred Cancels close their channels
		go func() {
			for range sub.Updates() {
			}
		}()
	}
	s := testStates(1, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.PublishState(s)
	}
}

func BenchmarkHubFanout1(b *testing.B)   { benchmarkHubFanout(b, 1) }
func BenchmarkHubFanout16(b *testing.B)  { benchmarkHubFanout(b, 16) }
func BenchmarkHubFanout128(b *testing.B) { benchmarkHubFanout(b, 128) }

func TestStreamerSituationTicker(t *testing.T) {
	st := fill(tstore.New(), testStates(6, 12))
	eng := NewEngine(NewStoreSource("archive", st))
	hub := NewHub(HubConfig{})
	str := NewStreamer(hub, eng)
	box := Box{MinLat: 41, MinLon: 4, MaxLat: 45, MaxLon: 9}
	sub, err := str.Subscribe(Request{Kind: KindSituation, Box: &box}, SubOptions{Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	ticks := collect(t, sub, 3)
	for _, u := range ticks {
		if u.Kind != UpdateSituation || u.Situation == nil {
			t.Fatalf("situation ticker pushed %+v", u)
		}
		if len(u.Situation.Vessels) != 6 {
			t.Fatalf("situation has %d vessels, want 6", len(u.Situation.Vessels))
		}
	}
	// The ticker pushes the same picture a one-shot situation query returns.
	res, err := eng.Query(Request{Kind: KindSituation, Box: &box})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Situation.Vessels) != fmt.Sprint(ticks[0].Situation.Vessels) {
		t.Fatal("ticker situation diverges from the one-shot answer")
	}
	sub.Cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-sub.Updates():
			if !ok {
				return // closed after cancel: ticker stopped
			}
		case <-deadline:
			t.Fatal("situation ticker did not stop after Cancel")
		}
	}
}
