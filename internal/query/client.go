package query

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Client answers Requests by POSTing them to a Server's /v1/query route
// and turns them into standing queries through /v1/stream — the remote
// half of both the Executor and Subscriber contracts, so a CLI or another
// service talks to a running daemon with exactly the code it would use
// in-process. A Client is also a Source (federate.go): hand it to
// NewEngine and the remote daemon's picture merges into local answers,
// which is what `maritimed -peer` does.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080" (a bare
	// host:port is promoted to http://).
	Base string
	// HTTP overrides the transport. When nil a shared client with a
	// 30-second overall timeout is used for one-shot queries, so a
	// stalled daemon fails the query instead of hanging the caller
	// forever. Streams always run without an overall timeout (they are
	// unbounded by design) on the same transport.
	HTTP *http.Client
	// Retry governs transient transport failures (connection refused or
	// reset, DNS hiccups, timeouts): the attempt is repeated with
	// exponential backoff. An HTTP error status is never retried — the
	// server answered; its error comes back verbatim.
	Retry RetryPolicy

	// PeerName labels this client when it serves as a federation Source
	// in Result.Sources ("peer:<base>" when empty). See federate.go.
	PeerName string
	// PeerTimeout bounds each federated read when this client serves as
	// a Source (default 5s): a slow peer degrades — its contribution is
	// skipped and the error surfaced in Stats — instead of stalling the
	// local query.
	PeerTimeout time.Duration
	// Flight, when set, records peer degraded/recovered transitions and
	// stream epoch rewinds into the flight ring. Set before first use.
	Flight *obs.Flight

	peerMu   sync.Mutex
	peerErr  error // last federated-read failure (nil once recovered)
	peerDown bool  // tracks the degraded<->healthy edge for flight events
}

// RetryPolicy is an exponential backoff over transient transport errors.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// BaseDelay seeds the backoff (default 100ms); each retry doubles
	// it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

// delay returns the backoff before retry number attempt (0-based).
func (p RetryPolicy) delay(attempt int) time.Duration {
	base, ceil := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	d := base << attempt
	if d <= 0 || d > ceil { // shift overflow or past the cap
		d = ceil
	}
	return d
}

// defaultHTTPClient bounds queries against unresponsive daemons; large
// archive answers stream well inside this on any sane link.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// NewClient builds a client for a server root or host:port, with a
// modest default retry budget (3 attempts over ~700ms) against transient
// connection errors. Set Retry to the zero RetryPolicy to fail fast.
func NewClient(base string) *Client {
	return &Client{Base: base, Retry: RetryPolicy{Max: 2}}
}

// url resolves the client's base URL.
func (c *Client) url() (string, error) {
	base := strings.TrimRight(c.Base, "/")
	if base == "" {
		return "", fmt.Errorf("query: client has no base URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base, nil
}

// queryClient returns the HTTP client for one-shot requests.
func (c *Client) queryClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// streamTransport bounds the connect, TLS and header phases of a stream
// without bounding the (deliberately unbounded) body: a daemon that is
// blackholed, or accepts the connection but never answers, must fail the
// subscribe attempt within a known window, not hang it for the kernel's
// connect timeout.
var streamTransport = &http.Transport{
	Proxy:                 http.ProxyFromEnvironment,
	DialContext:           (&net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
	TLSHandshakeTimeout:   10 * time.Second,
	ResponseHeaderTimeout: 30 * time.Second,
}

// streamClient returns an HTTP client with no overall timeout — a
// standing query is supposed to outlive any deadline — reusing the
// caller's transport when one was provided. A caller who only set a
// Timeout (Transport nil) still gets the header-bounded stream
// transport, not the unbounded default.
func (c *Client) streamClient() *http.Client {
	if c.HTTP != nil && c.HTTP.Transport != nil {
		return &http.Client{Transport: c.HTTP.Transport}
	}
	return &http.Client{Transport: streamTransport}
}

// post issues one POST with the given retry policy applied: transport
// errors back off and retry (until the budget or the context ends); any
// HTTP response, success or error, is returned as-is.
func (c *Client) post(ctx context.Context, hc *http.Client, path string, body []byte, retry RetryPolicy) (*http.Response, error) {
	base, err := c.url()
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("query: building request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		attemptStart := time.Now()
		resp, err := hc.Do(req)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("query: %w", ctx.Err())
		}
		if attempt >= retry.Max {
			return nil, fmt.Errorf("query: %w", err)
		}
		// Retry only fast failures (refused/reset connections). An
		// attempt that burned seconds before failing hit a timeout, not
		// a blip — repeating it would multiply the caller's worst-case
		// wait well past the per-attempt bound.
		if time.Since(attemptStart) > 5*time.Second {
			return nil, fmt.Errorf("query: %w", err)
		}
		select {
		case <-time.After(retry.delay(attempt)):
		case <-ctx.Done():
			return nil, fmt.Errorf("query: %w", ctx.Err())
		}
	}
}

// Query executes the request against the remote server. Server-side
// validation errors come back verbatim as errors here.
func (c *Client) Query(req Request) (*Result, error) {
	return c.QueryContext(context.Background(), req)
}

// QueryContext is Query with caller-controlled cancellation: the context
// bounds the whole exchange, including retry backoff.
func (c *Client) QueryContext(ctx context.Context, req Request) (*Result, error) {
	return c.queryContext(ctx, req, c.Retry)
}

// queryContext executes one request under an explicit retry policy —
// federated reads (federate.go) pass the zero policy so a dead peer
// degrades in one connection attempt instead of paying backoff per read.
func (c *Client) queryContext(ctx context.Context, req Request, retry RetryPolicy) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("query: encoding request: %w", err)
	}
	resp, err := c.post(ctx, c.queryClient(), "/v1/query", body, retry)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("query: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, serverError(resp, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("query: decoding response: %w", err)
	}
	return &res, nil
}

// serverError converts a non-200 response into a descriptive error.
func serverError(resp *http.Response, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("query: server: %s", e.Error)
	}
	return fmt.Errorf("query: server returned %s", resp.Status)
}

// Wait polls the server's stats until it answers or the timeout elapses —
// a readiness probe for daemons that bind asynchronously. See WaitContext.
func (c *Client) Wait(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := c.WaitContext(ctx); err != nil {
		return fmt.Errorf("query: server not ready after %v: %w", timeout, err)
	}
	return nil
}

// WaitContext polls the server's stats until it answers or ctx is done,
// returning the last poll error in the latter case. WaitContext is its
// own retry loop, so each poll runs without the client's retry policy
// and under the caller's ctx budget.
func (c *Client) WaitContext(ctx context.Context) error {
	for {
		_, err := c.queryContext(ctx, Request{Kind: KindStats}, RetryPolicy{})
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return err
		}
	}
}

// --- standing queries (Subscriber over /v1/stream) -------------------------------

// Subscribe turns req into a standing query against the remote daemon:
// the same Request a one-shot Query answers, delivered incrementally over
// /v1/stream. See SubscribeContext.
func (c *Client) Subscribe(req Request, opt SubOptions) (*Subscription, error) {
	return c.SubscribeContext(context.Background(), req, opt)
}

// SubscribeContext opens the stream (retrying transient connection
// errors under the client's policy) and pumps Updates into the returned
// subscription. Heartbeats are consumed by the client itself: they keep
// the resume cursor and the remote drop counter current, and do not
// appear on Updates.
//
// If the stream breaks mid-flight, the client resumes automatically from
// the last sequence it saw (again under the retry policy); replayed
// updates still retained by the server arrive exactly once. (Dropped is
// an upper bound across such resumes — an update dropped server-side
// and then recovered by the replay stays counted.) Only when resumption
// exhausts the budget does the subscription end: Updates closes and Err
// reports the cause. Cancelling the context or calling Cancel closes it
// cleanly (nil Err).
func (c *Client) SubscribeContext(ctx context.Context, req Request, opt SubOptions) (*Subscription, error) {
	ctx, cancel := context.WithCancel(ctx)
	conn, first, err := c.openStream(ctx, req, opt, opt.FromSeq, opt.Resume)
	if err != nil {
		cancel()
		return nil, err
	}
	sub := &Subscription{req: req, ch: make(chan Update, 16), startSeq: first.Seq}
	sub.epoch.Store(first.Epoch)
	sub.stop = cancel
	go c.streamLoop(ctx, sub, conn, first, req, opt)
	return sub, nil
}

// streamConn is one live NDJSON stream.
type streamConn struct {
	resp *http.Response
	br   *bufio.Reader
}

func (sc *streamConn) next() (Update, error) {
	line, err := sc.br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return Update{}, err
	}
	var u Update
	if jerr := json.Unmarshal(line, &u); jerr != nil {
		return Update{}, fmt.Errorf("query: decoding update: %w", jerr)
	}
	return u, nil
}

// close aborts the stream. No draining: Close unblocks a pending read,
// which is exactly what the silence watchdog needs on a half-open
// connection (a drain would block on the same dead socket), and stream
// connections are not keep-alive-reusable anyway.
func (sc *streamConn) close() {
	sc.resp.Body.Close()
}

// openStream POSTs the StreamRequest and reads the opening update
// (normally the heartbeat acknowledging the start sequence). resume
// marks fromSeq authoritative even at 0 — a reconnect that had received
// nothing yet still wants everything the server retained.
func (c *Client) openStream(ctx context.Context, req Request, opt SubOptions, fromSeq uint64, resume bool) (*streamConn, Update, error) {
	sr := StreamRequest{
		Request: req, FromSeq: fromSeq, Resume: resume, Buffer: opt.Buffer,
		Heartbeat: Duration(opt.Heartbeat), Tick: Duration(opt.Tick),
	}
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, Update{}, fmt.Errorf("query: encoding stream request: %w", err)
	}
	resp, err := c.post(ctx, c.streamClient(), "/v1/stream", body, c.Retry)
	if err != nil {
		return nil, Update{}, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, Update{}, serverError(resp, data)
	}
	conn := &streamConn{resp: resp, br: bufio.NewReader(resp.Body)}
	// The server writes the opening heartbeat immediately; a connection
	// that answers headers but then stalls must not hang the subscribe
	// (or a mid-stream resume, where the silence watchdog is disarmed).
	guard := time.AfterFunc(3*opt.heartbeat(), func() { conn.close() })
	first, err := conn.next()
	guard.Stop()
	if err != nil {
		conn.close()
		return nil, Update{}, fmt.Errorf("query: reading stream opening: %w", err)
	}
	if first.Kind == UpdateError {
		conn.close()
		return nil, Update{}, fmt.Errorf("query: server: %s", first.Error)
	}
	return conn, first, nil
}

// streamLoop pumps one subscription: deliver updates, absorb heartbeats,
// resume on transport loss, close on cancellation or exhaustion. A
// watchdog armed at 3× the heartbeat cadence force-closes a connection
// that has gone silent — a half-open TCP path (NAT drop, power loss)
// produces no error on its own, and closing the body turns the stall
// into a read error the resume path handles. (A local consumer stalled
// past the watchdog causes a harmless reconnect: resume continues from
// the last sequence.)
func (c *Client) streamLoop(ctx context.Context, sub *Subscription, conn *streamConn,
	first Update, req Request, opt SubOptions) {
	defer close(sub.ch)
	// Release the derived cancel context however the pump exits (terminal
	// server error, exhausted resume budget) — not only via user Cancel —
	// so no dead child context stays registered on the caller's parent.
	defer sub.Cancel()
	defer func() { conn.close() }()
	quiet := 3 * opt.heartbeat()
	watch := func(sc *streamConn) *time.Timer {
		return time.AfterFunc(quiet, func() { sc.close() })
	}
	wd := watch(conn)
	defer func() { wd.Stop() }()
	lastSeq := first.Seq
	// Each resumed connection gets a fresh server-side subscription whose
	// drop counter restarts at zero, so accumulate: this connection's
	// heartbeat count on top of everything lost before the reconnect.
	var dropBase uint64
	deliver := func(u Update) bool {
		if u.Kind == UpdateHeartbeat {
			// Transport bookkeeping, not a result: fold the server-side
			// drop count into the local counter and move on. Monotonic
			// max via CAS — a plain Load/Store pair would lose a
			// concurrent increment on the same counter.
			for {
				cur := sub.dropped.Load()
				d := dropBase + u.Dropped
				if d <= cur || sub.dropped.CompareAndSwap(cur, d) {
					break
				}
			}
			return true
		}
		select {
		//lint:ignore boundedsend ordered-delivery pump: blocking here is the remote backpressure contract, bounded by ctx; drops are accounted server-side and folded in via heartbeats
		case sub.ch <- u:
			sub.delivered.Add(1)
			return true
		case <-ctx.Done():
			return false
		}
	}
	if !deliver(first) {
		return
	}
	for {
		u, err := conn.next()
		if err == nil {
			wd.Reset(quiet)
			if u.Kind == UpdateError {
				// Terminal: the subscription failed server-side. Not a
				// transport loss — do not resume.
				sub.setErr(fmt.Errorf("query: server: %s", u.Error))
				return
			}
			if u.Seq > lastSeq {
				lastSeq = u.Seq
			}
			if !deliver(u) {
				return
			}
			continue
		}
		if ctx.Err() != nil {
			return // cancelled: clean close
		}
		// Transport loss (or watchdog-declared silence): resume from the
		// last sequence we saw. The retry policy inside openStream paces
		// the reconnect attempts.
		wd.Stop()
		conn.close()
		dropBase = sub.dropped.Load()
		nc, f, rerr := c.openStream(ctx, req, opt, lastSeq, true)
		if rerr != nil {
			if ctx.Err() == nil {
				sub.setErr(fmt.Errorf("query: stream lost (%v); resume failed: %w", err, rerr))
			}
			return
		}
		conn = nc
		wd = watch(conn)
		if prev := sub.epoch.Load(); prev != 0 && f.Epoch != 0 && f.Epoch != prev {
			// The resume crossed a daemon epoch: the daemon restarted (or
			// the reconnect landed elsewhere), so our cursor numbers a
			// sequence space that no longer exists. Reset it to the new
			// epoch's opening position and surface the discontinuity —
			// silently continuing live-only is exactly the PR 4 gap this
			// closes. Server-side drops also restarted with the epoch, so
			// the accumulated base already covers everything older.
			lastSeq = f.Seq
			//lint:ignore atomiccounter single-writer: only this pump goroutine stores epoch; readers are concurrent, writers are not
			sub.epoch.Store(f.Epoch)
			sub.rewinds.Add(1)
			c.Flight.Record(obs.FlightWarn, "hub", "stream epoch rewind",
				obs.FS("peer", c.Base), obs.FI("seq", int64(f.Seq)))
			if !deliver(Update{Kind: UpdateRewound, Seq: f.Seq, Epoch: f.Epoch}) {
				return
			}
		} else if f.Seq > lastSeq {
			lastSeq = f.Seq
		}
		if !deliver(f) {
			return
		}
	}
}
