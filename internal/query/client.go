package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client answers Requests by POSTing them to a Server's /v1/query route —
// the remote half of the Executor contract, so a CLI or another service
// queries a running daemon with exactly the code it would use in-process.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080" (a bare
	// host:port is promoted to http://).
	Base string
	// HTTP overrides the transport. When nil a shared client with a
	// 30-second overall timeout is used, so a stalled daemon fails the
	// query instead of hanging the caller forever.
	HTTP *http.Client
}

// defaultHTTPClient bounds queries against unresponsive daemons; large
// archive answers stream well inside this on any sane link.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// NewClient builds a client for a server root or host:port.
func NewClient(base string) *Client { return &Client{Base: base} }

// Query executes the request against the remote server. Server-side
// validation errors come back verbatim as errors here.
func (c *Client) Query(req Request) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("query: encoding request: %w", err)
	}
	base := strings.TrimRight(c.Base, "/")
	if base == "" {
		return nil, fmt.Errorf("query: client has no base URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	hc := c.HTTP
	if hc == nil {
		hc = defaultHTTPClient
	}
	resp, err := hc.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("query: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("query: server: %s", e.Error)
		}
		return nil, fmt.Errorf("query: server returned %s", resp.Status)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("query: decoding response: %w", err)
	}
	return &res, nil
}

// Wait polls the server's /v1/stats route until it answers or the
// timeout elapses — a readiness probe for daemons that bind asynchronously.
func (c *Client) Wait(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.Query(Request{Kind: KindStats}); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("query: server not ready after %v: %w", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
