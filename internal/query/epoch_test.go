package query

import (
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/tstore"
)

// startStreamServerOn binds a hub-backed streaming server to a specific
// address — the restart half of the epoch test needs the replacement
// daemon to come up where the old one died.
func startStreamServerOn(t *testing.T, addr string) (*httptest.Server, *Hub) {
	t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-listening on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	hub := NewHub(HubConfig{})
	eng := NewEngine(NewStoreSource("archive", tstore.New()))
	srv := httptest.NewUnstartedServer(NewServer(NewStreamer(hub, eng)))
	srv.Listener.Close()
	srv.Listener = ln
	srv.Start()
	return srv, hub
}

// TestStreamResumeAcrossEpochRewinds pins the daemon-restart behaviour
// of a standing query: the replacement daemon has a fresh epoch and a
// fresh sequence space, so the client's cursor is meaningless. Before
// epochs, the resume silently continued live-only with a stale cursor;
// now the client detects the epoch change on the opening heartbeat,
// resets its cursor, counts the rewind and delivers an UpdateRewound
// marker so the consumer sees the discontinuity.
func TestStreamResumeAcrossEpochRewinds(t *testing.T) {
	first, hub1 := startStreamServerOn(t, "127.0.0.1:0")
	addr := first.Listener.Addr().String()

	c := NewClient(first.URL)
	c.Retry = RetryPolicy{Max: 10, BaseDelay: 20 * time.Millisecond}
	world := Box{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	sub, err := c.Subscribe(Request{Kind: KindLivePicture, Box: &world},
		SubOptions{Heartbeat: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	if sub.Epoch() == 0 || sub.Epoch() != hub1.Epoch() {
		t.Fatalf("subscription epoch %x, want hub epoch %x", sub.Epoch(), hub1.Epoch())
	}

	states := testStates(1, 10)
	for _, s := range states[:5] {
		hub1.PublishState(s)
	}
	before := collect(t, sub, 5)
	if last := before[len(before)-1].Seq; last != 5 {
		t.Fatalf("pre-restart cursor is %d, want 5", last)
	}

	// "Restart" the daemon: kill the first server outright and bring a
	// fresh one (new hub, new epoch, sequences starting over) up on the
	// same address. The client's auto-resume lands on it carrying the
	// old cursor. (Listener first, then connections — and no blocking
	// Close(), which would deadlock against the client's immediate
	// re-subscribe attempts racing onto the dying server.)
	first.Listener.Close()
	first.CloseClientConnections()
	second, hub2 := startStreamServerOn(t, addr)
	defer func() {
		// Cancel the standing stream before Close — Close waits for
		// connections to idle, and a live stream never does.
		sub.Cancel()
		second.CloseClientConnections()
		second.Close()
	}()

	// Wait for the resumed subscription to attach before publishing —
	// a hub publishes to subscribers only.
	deadline := time.Now().Add(10 * time.Second)
	for hub2.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client never resumed onto the restarted daemon (err: %v)", sub.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, s := range states[5:] {
		hub2.PublishState(s)
	}

	after := collect(t, sub, 6)
	if after[0].Kind != UpdateRewound {
		t.Fatalf("first post-restart update is %s, want %s", after[0].Kind, UpdateRewound)
	}
	if after[0].Epoch != hub2.Epoch() {
		t.Fatalf("rewound marker carries epoch %x, want %x", after[0].Epoch, hub2.Epoch())
	}
	for i, u := range after[1:] {
		if u.Kind != UpdateState {
			t.Fatalf("post-rewind update %d is %s, want state", i, u.Kind)
		}
		if want := uint64(i + 1); u.Seq != want {
			t.Fatalf("post-rewind update %d has seq %d, want %d (cursor must reset into the new sequence space)", i, u.Seq, want)
		}
		if !u.State.At.Equal(states[5+i].At) {
			t.Fatalf("post-rewind update %d carries state at %v, want %v", i, u.State.At, states[5+i].At)
		}
	}
	if got := sub.Rewound(); got != 1 {
		t.Fatalf("Rewound() = %d, want 1", got)
	}
	if sub.Epoch() != hub2.Epoch() {
		t.Fatalf("subscription epoch %x after rewind, want %x", sub.Epoch(), hub2.Epoch())
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("rewound stream must stay healthy, got %v", err)
	}
}

// TestHubEpochsDistinct guards the nonce: two hubs in one process (let
// alone across restarts) never share an epoch, and zero is reserved.
func TestHubEpochsDistinct(t *testing.T) {
	a, b := NewHub(HubConfig{}), NewHub(HubConfig{})
	if a.Epoch() == 0 || b.Epoch() == 0 {
		t.Fatal("epoch 0 is reserved for unknown")
	}
	if a.Epoch() == b.Epoch() {
		t.Fatal("two hubs drew the same epoch nonce")
	}
}
